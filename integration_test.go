package ccomm_test

// End-to-end integration tests that cross every module boundary: frontend
// IR -> pattern extraction -> scheduling -> switch-program lowering ->
// optical verification -> simulation, plus compiled-vs-dynamic consistency
// on the public API.

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	ccomm "repro"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/frontend"
	"repro/internal/network"
	"repro/internal/optics"
	"repro/internal/redist"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/switchprog"
	"repro/internal/topology"
)

// TestPipelineWholeProgram drives the complete compiled-communication
// pipeline for a multi-phase program and checks cross-module invariants at
// every stage.
func TestPipelineWholeProgram(t *testing.T) {
	byRows, err := redist.NewDist([3]redist.DimDist{{P: 64, B: 2}, {P: 1, B: 128}, {P: 1, B: 1}})
	if err != nil {
		t.Fatal(err)
	}
	byCols, err := redist.NewDist([3]redist.DimDist{{P: 1, B: 128}, {P: 64, B: 2}, {P: 1, B: 1}})
	if err != nil {
		t.Fatal(err)
	}
	prog := frontend.Program{
		Name:   "integration",
		PEs:    64,
		Arrays: []frontend.Array{{Name: "u", Shape: [3]int{128, 128, 1}, Dist: byRows}},
		Stmts: []frontend.Stmt{
			frontend.ShiftRef{Name: "sweep", Array: "u", Offsets: [][3]int{{-1, 0, 0}, {1, 0, 0}}},
			frontend.Redistribute{Name: "transpose", Array: "u", To: byCols},
			frontend.IrregularRef{Name: "gather", Array: "u"},
		},
	}
	extracted, err := frontend.Extract(prog, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}

	torus := topology.NewTorus(8, 8)
	cp, err := core.Compiler{Topology: torus}.Compile(extracted)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cp.Phases {
		ph := &cp.Phases[i]
		// Schedule validity against the phase's own request set; the AAPC
		// fallback covers a superset of the phase's requests, so it is
		// validated against the union of its own configurations instead
		// (checking conflict-freeness and the partition structure).
		if ph.UsedFallback {
			var covered ccomm.RequestSet
			for _, cfg := range ph.Schedule.Configs {
				covered = append(covered, cfg...)
			}
			if err := ph.Schedule.Validate(covered); err != nil {
				t.Fatalf("phase %s: fallback: %v", ph.Phase.Name, err)
			}
		} else {
			if err := ph.Schedule.Validate(ph.Phase.Requests()); err != nil {
				t.Fatalf("phase %s: %v", ph.Phase.Name, err)
			}
		}
		// Lowered registers must deliver every scheduled circuit,
		// physically.
		tracer := optics.NewTracer(ph.Program)
		if _, err := tracer.VerifySchedule(ph.Schedule.Slot); err != nil {
			t.Fatalf("phase %s: %v", ph.Phase.Name, err)
		}
		// Every slot's physically realized configuration must be exactly
		// the scheduled one.
		for slot, cfg := range ph.Schedule.Configs {
			census, err := tracer.SlotCensus(slot)
			if err != nil {
				t.Fatalf("phase %s slot %d: %v", ph.Phase.Name, slot, err)
			}
			if len(census) != len(cfg) {
				t.Fatalf("phase %s slot %d: %d circuits live, %d scheduled",
					ph.Phase.Name, slot, len(census), len(cfg))
			}
		}
		// Simulation must complete and respect the degree-time relation.
		out, err := sim.RunCompiled(ph.Schedule, ph.Phase.Messages)
		if err != nil {
			t.Fatalf("phase %s: %v", ph.Phase.Name, err)
		}
		maxFlits := 0
		for _, m := range ph.Phase.Messages {
			if m.Flits > maxFlits {
				maxFlits = m.Flits
			}
		}
		if out.Time > ph.Degree()*maxFlits {
			t.Fatalf("phase %s: time %d exceeds degree*maxFlits %d",
				ph.Phase.Name, out.Time, ph.Degree()*maxFlits)
		}
	}
}

// TestCompiledBeatsDynamicAcrossWorkloads is the paper's headline claim,
// asserted end to end over every application workload at every fixed
// degree.
func TestCompiledBeatsDynamicAcrossWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	torus := topology.NewTorus(8, 8)
	var phases []apps.Phase
	gs, err := apps.GS(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	tscf, err := apps.TSCF(64)
	if err != nil {
		t.Fatal(err)
	}
	p3m, err := apps.P3M(32)
	if err != nil {
		t.Fatal(err)
	}
	phases = append(phases, gs, tscf)
	phases = append(phases, p3m...)
	for _, ph := range phases {
		pattern := ph.Pattern().Dedup()
		res, err := schedule.Combined{}.Schedule(torus, pattern)
		if err != nil {
			t.Fatalf("%s: %v", ph.Name, err)
		}
		if err := res.Validate(pattern); err != nil {
			t.Fatalf("%s: schedule invalid: %v", ph.Name, err)
		}
		comp, err := sim.RunCompiled(res, ph.Messages)
		if err != nil {
			t.Fatalf("%s: %v", ph.Name, err)
		}
		for _, k := range []int{1, 2, 5, 10} {
			dyn, err := sim.Dynamic{Topology: torus, Params: sim.DefaultParams(k)}.Run(ph.Messages)
			if err != nil {
				t.Fatalf("%s K=%d: %v", ph.Name, k, err)
			}
			if dyn.TimedOut {
				t.Fatalf("%s K=%d timed out", ph.Name, k)
			}
			if dyn.Time <= comp.Time {
				t.Errorf("%s K=%d: dynamic %d not slower than compiled %d",
					ph.Name, k, dyn.Time, comp.Time)
			}
		}
	}
}

// TestPublicAPISwitchProgramsAreTraceable: the facade's compiled phases
// carry registers an optical trace can verify.
func TestPublicAPISwitchProgramsAreTraceable(t *testing.T) {
	comp := ccomm.Compiler{Topology: ccomm.NewTorus8x8()}
	rng := rand.New(rand.NewSource(99))
	set, err := ccomm.RandomPattern(rng, 64, 600)
	if err != nil {
		t.Fatal(err)
	}
	phase, err := comp.Compile(set)
	if err != nil {
		t.Fatal(err)
	}
	if err := phase.Schedule.Validate(set.Dedup()); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	tracer := optics.NewTracer(phase.Program)
	n, err := tracer.VerifySchedule(phase.Schedule.Slot)
	if err != nil {
		t.Fatal(err)
	}
	if n != 600 {
		t.Errorf("verified %d circuits", n)
	}
}

// TestCompileAllMatchesSequentialCompile: the concurrent batch compiler
// returns, phase for phase, exactly what a sequential Compile loop returns —
// same algorithm choice, same configurations, same switch programs' degree —
// and every batch-compiled schedule validates.
func TestCompileAllMatchesSequentialCompile(t *testing.T) {
	torus := ccomm.NewTorus8x8()
	comp := ccomm.Compiler{Topology: torus}
	rng := rand.New(rand.NewSource(2026))
	var sets []ccomm.RequestSet
	for _, n := range []int{50, 200, 400, 800, 1200, 1600} {
		set, err := ccomm.RandomPattern(rng, 64, n)
		if err != nil {
			t.Fatal(err)
		}
		sets = append(sets, set)
	}
	batch, err := comp.CompileAll(sets)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(sets) {
		t.Fatalf("batch returned %d phases for %d patterns", len(batch), len(sets))
	}
	for i, set := range sets {
		single, err := comp.Compile(set)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Schedule.Algorithm != single.Schedule.Algorithm {
			t.Fatalf("pattern %d: algorithm %q batched vs %q sequential",
				i, batch[i].Schedule.Algorithm, single.Schedule.Algorithm)
		}
		if !reflect.DeepEqual(batch[i].Schedule.Configs, single.Schedule.Configs) {
			t.Fatalf("pattern %d: batched schedule diverged from sequential", i)
		}
		if batch[i].Program.Degree != single.Program.Degree {
			t.Fatalf("pattern %d: program degree %d batched vs %d sequential",
				i, batch[i].Program.Degree, single.Program.Degree)
		}
		if err := batch[i].Schedule.Validate(set.Dedup()); err != nil {
			t.Fatalf("pattern %d: %v", i, err)
		}
		// The lowered registers of the batch-compiled phase must deliver
		// every circuit, physically.
		tracer := optics.NewTracer(batch[i].Program)
		if _, err := tracer.VerifySchedule(batch[i].Schedule.Slot); err != nil {
			t.Fatalf("pattern %d: %v", i, err)
		}
	}
}

// TestCompileAllErrorIsLowestIndex: determinism extends to failures — the
// reported error names the first failing pattern in input order, not
// whichever goroutine lost the race.
func TestCompileAllErrorIsLowestIndex(t *testing.T) {
	comp := ccomm.Compiler{Topology: ccomm.NewTorus(4, 4)}
	good := ccomm.RequestSet{{Src: 0, Dst: 1}}
	bad1 := ccomm.RequestSet{{Src: 0, Dst: 99}} // out of range
	bad2 := ccomm.RequestSet{{Src: 0, Dst: 77}}
	for run := 0; run < 10; run++ {
		_, err := comp.CompileAll([]ccomm.RequestSet{good, bad1, good, bad2})
		if err == nil {
			t.Fatal("batch with invalid patterns compiled")
		}
		if !strings.Contains(err.Error(), "pattern 1") {
			t.Fatalf("error %q does not name the lowest failing pattern", err)
		}
	}
}

// TestSwitchprogMatchesOpticsOnEveryTopology cross-checks the two
// independent verifiers (route-following vs light-following).
func TestSwitchprogMatchesOpticsOnEveryTopology(t *testing.T) {
	topos := []ccomm.Topology{
		topology.NewTorus(4, 6),
		topology.NewTorus3D(3, 3, 3),
		topology.NewMesh(5, 3),
		topology.NewRing(9),
		topology.NewHypercube(5),
		topology.NewOmega(16),
	}
	rng := rand.New(rand.NewSource(7))
	for _, topo := range topos {
		n := network.TerminalCount(topo)
		set, err := ccomm.RandomPattern(rng, n, n*2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := schedule.Combined{}.Schedule(topo, set)
		if err != nil {
			t.Fatalf("%s: %v", topo.Name(), err)
		}
		if err := res.Validate(set); err != nil {
			t.Fatalf("%s: schedule invalid: %v", topo.Name(), err)
		}
		prog, err := switchprog.Compile(res)
		if err != nil {
			t.Fatalf("%s: %v", topo.Name(), err)
		}
		tracer := optics.NewTracer(prog)
		for r, slot := range res.Slot {
			if _, err := prog.CircuitPorts(r.Src, r.Dst, slot); err != nil {
				t.Fatalf("%s: switchprog: %v", topo.Name(), err)
			}
			dst, _, err := tracer.Trace(r.Src, slot)
			if err != nil {
				t.Fatalf("%s: optics: %v", topo.Name(), err)
			}
			if dst != r.Dst {
				t.Fatalf("%s: circuit %v lands at %d", topo.Name(), r, dst)
			}
		}
	}
}

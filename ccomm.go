// Package ccomm is the public entry point of the compiled-communication
// library, a reproduction of "Compiled Communication for All-Optical TDM
// Networks" (Yuan, Melhem, Gupta — SC'96).
//
// The library answers two questions the paper studies:
//
//  1. Off-line connection scheduling: given a static communication pattern
//     and a switched all-optical topology, how few TDM configurations
//     (equivalently, how small a multiplexing degree) suffice to establish
//     every connection? See Compiler and the Algorithm constants.
//
//  2. Compiled vs. dynamic control: how long does a communication phase
//     take when circuits are compiled in ahead of time, compared to a
//     runtime path-reservation protocol on a fixed-degree network? See
//     CompiledPhase.Simulate and SimulateDynamic.
//
// A minimal session:
//
//	torus := ccomm.NewTorus8x8()
//	comp := ccomm.Compiler{Topology: torus, Algorithm: ccomm.Combined}
//	phase, err := comp.Compile(ccomm.RingPattern(64))
//	// phase.Degree() is the multiplexing degree;
//	// phase.Program holds the per-switch shift-register contents.
package ccomm

import (
	"fmt"
	"sync"

	"repro/internal/cliutil"
	"repro/internal/network"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/switchprog"
	"repro/internal/topology"
)

// Re-exported core types. The library's packages under internal/ hold the
// implementations; these aliases make the public surface self-contained.
type (
	// Request is a connection request (s, d).
	Request = request.Request
	// RequestSet is an ordered set of connection requests.
	RequestSet = request.Set
	// NodeID identifies a PE/switch pair.
	NodeID = network.NodeID
	// Topology is a switched network with deterministic routing.
	Topology = network.Topology
	// Schedule is a partition of a request set into conflict-free
	// configurations, one per TDM slot.
	Schedule = schedule.Result
	// SwitchProgram is the compiled control-register content of the
	// network for one communication phase.
	SwitchProgram = switchprog.Program
	// Message is a point-to-point transfer measured in flits.
	Message = sim.Message
	// SimParams are the simulator's system parameters.
	SimParams = sim.Params
)

// Algorithm selects a connection-scheduling heuristic.
type Algorithm string

// The paper's schedulers.
const (
	// Greedy is the first-fit algorithm of Fig. 2.
	Greedy Algorithm = "greedy"
	// Coloring is the conflict-graph coloring heuristic of Fig. 4.
	Coloring Algorithm = "coloring"
	// AAPC is the ordered all-to-all-based algorithm of Fig. 5.
	AAPC Algorithm = "aapc"
	// Combined runs Coloring and AAPC and keeps the better schedule; the
	// paper's compiler uses this.
	Combined Algorithm = "combined"
	// Exact is a branch-and-bound optimal scheduler for small request sets
	// (testing and gap measurement only).
	Exact Algorithm = "exact"
)

// scheduler returns the implementation of an Algorithm.
func (a Algorithm) scheduler() (schedule.Scheduler, error) {
	switch a {
	case Greedy:
		return schedule.Greedy{}, nil
	case Coloring:
		return schedule.Coloring{}, nil
	case AAPC:
		return schedule.OrderedAAPC{}, nil
	case Combined, "":
		return schedule.Combined{}, nil
	case Exact:
		return schedule.Exact{}, nil
	default:
		return nil, fmt.Errorf("ccomm: unknown algorithm %q", string(a))
	}
}

// NewTorus returns a w x h torus of 5x5 electro-optical crossbar switches.
func NewTorus(w, h int) *topology.Torus { return topology.NewTorus(w, h) }

// NewTorus8x8 returns the 8x8 torus used throughout the paper's evaluation.
func NewTorus8x8() *topology.Torus { return topology.NewTorus(8, 8) }

// NewLinear returns the linear array topology of the Fig. 3 example.
func NewLinear(n int) *topology.Linear { return topology.NewLinear(n) }

// Compiler compiles static communication patterns into TDM schedules and
// switch programs for a topology.
type Compiler struct {
	// Topology the code is compiled for.
	Topology Topology
	// Algorithm selects the scheduler; the zero value means Combined,
	// which is what the paper's compiler uses.
	Algorithm Algorithm
	// Workers bounds the number of phases CompileAll compiles concurrently;
	// zero means runtime.GOMAXPROCS(0). Compile ignores it.
	Workers int
}

// CompiledPhase is the result of compiling one static communication phase:
// the connection schedule plus the lowered switch programs.
type CompiledPhase struct {
	Schedule *Schedule
	Program  *SwitchProgram
}

// Degree returns the phase's TDM multiplexing degree.
func (p *CompiledPhase) Degree() int { return p.Schedule.Degree() }

// Compile schedules the pattern and lowers it to switch programs.
func (c Compiler) Compile(reqs RequestSet) (*CompiledPhase, error) {
	if c.Topology == nil {
		return nil, fmt.Errorf("ccomm: Compiler.Topology is nil")
	}
	s, err := c.Algorithm.scheduler()
	if err != nil {
		return nil, err
	}
	res, err := s.Schedule(c.Topology, reqs.Dedup())
	if err != nil {
		return nil, err
	}
	prog, err := switchprog.Compile(res)
	if err != nil {
		return nil, err
	}
	return &CompiledPhase{Schedule: res, Program: prog}, nil
}

// CompileAll compiles many independent communication phases concurrently,
// one CompiledPhase per input pattern, in input order. Schedulers are pure,
// so phases parallelize with no coordination beyond the shared route and
// decomposition caches; a worker pool of Workers goroutines (default
// GOMAXPROCS) drains the batch. The result is deterministic and identical
// to calling Compile on each pattern in a loop: output order matches input
// order, and on failure the error of the lowest-index failing pattern is
// returned, regardless of completion timing.
func (c Compiler) CompileAll(patterns []RequestSet) ([]*CompiledPhase, error) {
	if c.Topology == nil {
		return nil, fmt.Errorf("ccomm: Compiler.Topology is nil")
	}
	if _, err := c.Algorithm.scheduler(); err != nil {
		return nil, err
	}
	out := make([]*CompiledPhase, len(patterns))
	errs := make([]error, len(patterns))
	workers := cliutil.Workers(c.Workers)
	if workers > len(patterns) {
		workers = len(patterns)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i], errs[i] = c.Compile(patterns[i])
			}
		}()
	}
	for i := range patterns {
		next <- i
	}
	close(next)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("ccomm: pattern %d: %w", i, err)
		}
	}
	return out, nil
}

// Simulate runs the phase's messages under compiled communication: all
// circuits pre-established, every message streaming in its compiled slot
// from time 0. It returns the communication time in slots.
func (p *CompiledPhase) Simulate(msgs []Message) (*sim.CompiledResult, error) {
	return sim.RunCompiled(p.Schedule, msgs)
}

// SimulateDynamic runs the messages under runtime control: a distributed
// path-reservation protocol on a network with the fixed multiplexing degree
// of params.
func SimulateDynamic(t Topology, msgs []Message, params SimParams) (*sim.DynamicResult, error) {
	return sim.Dynamic{Topology: t, Params: params}.Run(msgs)
}

// DefaultSimParams returns the documented simulator defaults for a given
// fixed multiplexing degree.
func DefaultSimParams(degree int) SimParams { return sim.DefaultParams(degree) }

// MultiplexingDegree is a convenience that compiles the pattern with the
// given algorithm and reports only the resulting degree — the metric of
// Tables 1-3.
func MultiplexingDegree(t Topology, reqs RequestSet, a Algorithm) (int, error) {
	s, err := a.scheduler()
	if err != nil {
		return 0, err
	}
	res, err := s.Schedule(t, reqs.Dedup())
	if err != nil {
		return 0, err
	}
	return res.Degree(), nil
}

package ccomm_test

import (
	"math/rand"
	"testing"

	ccomm "repro"
)

func TestCompileRingOnTorus(t *testing.T) {
	comp := ccomm.Compiler{Topology: ccomm.NewTorus8x8(), Algorithm: ccomm.Combined}
	phase, err := comp.Compile(ccomm.RingPattern(64))
	if err != nil {
		t.Fatal(err)
	}
	if phase.Degree() != 2 {
		t.Errorf("ring degree = %d, want 2 (Table 3 combined)", phase.Degree())
	}
	if phase.Program == nil {
		t.Fatal("no switch program")
	}
}

func TestAllAlgorithms(t *testing.T) {
	torus := ccomm.NewTorus8x8()
	set, err := ccomm.HypercubePattern(64)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []ccomm.Algorithm{ccomm.Greedy, ccomm.Coloring, ccomm.AAPC, ccomm.Combined} {
		deg, err := ccomm.MultiplexingDegree(torus, set, a)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if deg < 6 || deg > 12 {
			t.Errorf("%s: hypercube degree %d out of plausible range", a, deg)
		}
	}
	if _, err := ccomm.MultiplexingDegree(torus, set, ccomm.Algorithm("nope")); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestDefaultAlgorithmIsCombined(t *testing.T) {
	comp := ccomm.Compiler{Topology: ccomm.NewTorus8x8()}
	phase, err := comp.Compile(ccomm.AllToAllPattern(64))
	if err != nil {
		t.Fatal(err)
	}
	if phase.Degree() != 64 {
		t.Errorf("default compile of all-to-all = %d, want 64", phase.Degree())
	}
}

func TestCompilerNilTopology(t *testing.T) {
	if _, err := (ccomm.Compiler{}).Compile(ccomm.RingPattern(8)); err == nil {
		t.Error("nil topology accepted")
	}
}

func TestCompileDedupsRequests(t *testing.T) {
	comp := ccomm.Compiler{Topology: ccomm.NewTorus8x8()}
	set := ccomm.RequestSet{{Src: 0, Dst: 1}, {Src: 0, Dst: 1}}
	phase, err := comp.Compile(set)
	if err != nil {
		t.Fatal(err)
	}
	if phase.Degree() != 1 {
		t.Errorf("duplicate requests not deduplicated: degree %d", phase.Degree())
	}
}

func TestSimulateCompiledVsDynamic(t *testing.T) {
	torus := ccomm.NewTorus8x8()
	comp := ccomm.Compiler{Topology: torus}
	set := ccomm.RingPattern(64)
	phase, err := comp.Compile(set)
	if err != nil {
		t.Fatal(err)
	}
	msgs := make([]ccomm.Message, len(set))
	for i, r := range set {
		msgs[i] = ccomm.Message{Src: int(r.Src), Dst: int(r.Dst), Flits: 16}
	}
	compiled, err := phase.Simulate(msgs)
	if err != nil {
		t.Fatal(err)
	}
	dynamic, err := ccomm.SimulateDynamic(torus, msgs, ccomm.DefaultSimParams(1))
	if err != nil {
		t.Fatal(err)
	}
	if compiled.Time >= dynamic.Time {
		t.Errorf("compiled (%d) not faster than dynamic (%d)", compiled.Time, dynamic.Time)
	}
}

func TestExactAlgorithmOnFig3(t *testing.T) {
	lin := ccomm.NewLinear(5)
	set := ccomm.RequestSet{{Src: 0, Dst: 2}, {Src: 1, Dst: 3}, {Src: 3, Dst: 4}, {Src: 2, Dst: 4}}
	deg, err := ccomm.MultiplexingDegree(lin, set, ccomm.Exact)
	if err != nil {
		t.Fatal(err)
	}
	if deg != 2 {
		t.Errorf("exact degree = %d, want 2", deg)
	}
}

func TestRandomPatternHelper(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	set, err := ccomm.RandomPattern(rng, 64, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 100 {
		t.Fatalf("got %d requests", len(set))
	}
}

func TestRedistributeHelper(t *testing.T) {
	from, err := ccomm.BlockCyclic(4, 16, 4, 16, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	to, err := ccomm.BlockCyclic(1, 64, 1, 64, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	pat, err := ccomm.Redistribute([3]int{64, 64, 64}, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if len(pat.Reqs) == 0 {
		t.Error("redistribution produced no communication")
	}
	comp := ccomm.Compiler{Topology: ccomm.NewTorus8x8()}
	phase, err := comp.Compile(pat.Reqs)
	if err != nil {
		t.Fatal(err)
	}
	if phase.Degree() < 1 {
		t.Error("degree must be positive")
	}
}

func TestBenesScheduleFacade(t *testing.T) {
	set, err := ccomm.HypercubePattern(64)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ccomm.BenesSchedule(64, set)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Degree() != 6 {
		t.Errorf("hypercube on Benes = %d slots, want the port bound 6", plan.Degree())
	}
	if _, err := ccomm.BenesSchedule(48, set); err == nil {
		t.Error("non-power-of-two size accepted")
	}
}

package ccomm_test

import (
	"fmt"
	"log"

	ccomm "repro"
)

// The quickstart in miniature: compile the logical-ring pattern for the
// paper's 8x8 torus and report the multiplexing degree.
func ExampleCompiler_Compile() {
	comp := ccomm.Compiler{Topology: ccomm.NewTorus8x8(), Algorithm: ccomm.Combined}
	phase, err := comp.Compile(ccomm.RingPattern(64))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("multiplexing degree:", phase.Degree())
	// Output: multiplexing degree: 2
}

// MultiplexingDegree answers the Tables 1-3 question for one pattern and
// one algorithm.
func ExampleMultiplexingDegree() {
	torus := ccomm.NewTorus8x8()
	deg, err := ccomm.MultiplexingDegree(torus, ccomm.AllToAllPattern(64), ccomm.AAPC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("all-to-all degree:", deg)
	// Output: all-to-all degree: 64
}

// The Fig. 3 example: greedy needs 3 slots where 2 suffice.
func ExampleMultiplexingDegree_figure3() {
	lin := ccomm.NewLinear(5)
	reqs := ccomm.RequestSet{{Src: 0, Dst: 2}, {Src: 1, Dst: 3}, {Src: 3, Dst: 4}, {Src: 2, Dst: 4}}
	greedy, err := ccomm.MultiplexingDegree(lin, reqs, ccomm.Greedy)
	if err != nil {
		log.Fatal(err)
	}
	optimal, err := ccomm.MultiplexingDegree(lin, reqs, ccomm.Exact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy: %d, optimal: %d\n", greedy, optimal)
	// Output: greedy: 3, optimal: 2
}

// Compiled communication versus runtime control on one pattern.
func ExampleSimulateDynamic() {
	torus := ccomm.NewTorus8x8()
	comp := ccomm.Compiler{Topology: torus}
	set := ccomm.RingPattern(64)
	phase, err := comp.Compile(set)
	if err != nil {
		log.Fatal(err)
	}
	msgs := make([]ccomm.Message, len(set))
	for i, r := range set {
		msgs[i] = ccomm.Message{Src: int(r.Src), Dst: int(r.Dst), Flits: 16}
	}
	compiled, err := phase.Simulate(msgs)
	if err != nil {
		log.Fatal(err)
	}
	dynamic, err := ccomm.SimulateDynamic(torus, msgs, ccomm.DefaultSimParams(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d slots, dynamic: %d slots\n", compiled.Time, dynamic.Time)
	// Output: compiled: 32 slots, dynamic: 80 slots
}

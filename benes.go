package ccomm

import (
	"repro/internal/benes"
)

// BenesPlan is a compiled-communication plan on a Beneš rearrangeable
// network: one switch configuration per TDM slot, provably using the
// minimum number of slots (the injection/ejection port bound) for any
// pattern.
type BenesPlan = benes.Plan

// BenesSchedule compiles a pattern for an n-terminal Beneš network
// (n a power of two). Unlike the torus schedulers, the result is optimal
// for every pattern: the request set is partitioned into port-bound many
// partial permutations by bipartite edge coloring, and each permutation is
// realized in one slot by the looping algorithm.
func BenesSchedule(n int, reqs RequestSet) (*BenesPlan, error) {
	net, err := benes.New(n)
	if err != nil {
		return nil, err
	}
	plan, err := net.Schedule(reqs)
	if err != nil {
		return nil, err
	}
	if err := plan.Verify(); err != nil {
		return nil, err
	}
	return plan, nil
}

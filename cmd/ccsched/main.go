// Command ccsched compiles a single communication pattern for a topology:
// it runs a connection-scheduling algorithm, reports the multiplexing
// degree and per-slot configurations, and optionally dumps the compiled
// switch shift-register programs.
//
// Usage:
//
//	ccsched -pattern ring                        # ring on the 8x8 torus
//	ccsched -pattern alltoall -alg aapc
//	ccsched -pattern random -n 500 -seed 7
//	ccsched -topology torus -w 4 -h 4 -pattern transpose -dump
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/network"
	"repro/internal/patterns"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/switchprog"
	"repro/internal/topology"
)

var (
	topoFlag    = flag.String("topology", "torus", "topology: torus, torus3d, mesh, ring, linear, hypercube, or a full spec like dragonfly:8,16,4, fattree:8, torus-16x16")
	wFlag       = flag.Int("w", 8, "torus/mesh width")
	hFlag       = flag.Int("h", 8, "torus/mesh height")
	nodesFlag   = flag.Int("nodes", 0, "node count for ring/linear/hypercube-dim (default: w*h)")
	patternFlag = flag.String("pattern", "ring", "pattern: ring, nn2d, nn3d, hypercube, shuffle, alltoall, transpose, bitrev, random")
	nFlag       = flag.Int("n", 100, "connection count for -pattern random")
	seedFlag    = flag.Int64("seed", 1996, "seed for -pattern random")
	algFlag     = flag.String("alg", "combined", "algorithm: greedy, coloring, aapc, combined, exact")
	dumpFlag    = flag.Bool("dump", false, "dump the compiled switch programs")
	slotsFlag   = flag.Bool("slots", false, "print the per-slot configurations")
)

func main() {
	flag.Parse()
	topo := buildTopology()
	// Patterns address PEs, not internal fabric switches (omega, dragonfly,
	// fat-tree).
	set := buildPattern(network.TerminalCount(topo))
	sched := buildScheduler()

	res, err := sched.Schedule(topo, set)
	check(err)
	check(res.Validate(set))
	lb, err := schedule.LowerBound(topo, set)
	check(err)

	fmt.Printf("topology:            %s\n", topo.Name())
	fmt.Printf("pattern:             %s (%d connections)\n", *patternFlag, len(set))
	fmt.Printf("algorithm:           %s\n", res.Algorithm)
	fmt.Printf("multiplexing degree: %d (lower bound %d)\n", res.Degree(), lb)

	if *slotsFlag {
		for k, cfg := range res.Configs {
			fmt.Printf("slot %2d (%3d connections):", k, len(cfg))
			for _, r := range cfg {
				fmt.Printf(" %v", r)
			}
			fmt.Println()
		}
	}
	if *dumpFlag {
		prog, err := switchprog.Compile(res)
		check(err)
		fmt.Print(prog.Dump())
	}
}

func buildTopology() network.Topology {
	nodes := *nodesFlag
	if nodes == 0 {
		nodes = *wFlag * *hFlag
	}
	switch *topoFlag {
	case "torus":
		return topology.NewTorus(*wFlag, *hFlag)
	case "torus3d":
		side := 1
		for side*side*side < nodes {
			side++
		}
		return topology.NewTorus3D(side, side, side)
	case "mesh":
		return topology.NewMesh(*wFlag, *hFlag)
	case "omega":
		return topology.NewOmega(nodes)
	case "ring":
		return topology.NewRing(nodes)
	case "linear":
		return topology.NewLinear(nodes)
	case "hypercube":
		dim := 0
		for 1<<dim < nodes {
			dim++
		}
		return topology.NewHypercube(dim)
	default:
		// Full specs — "dragonfly:8,16,4", "fattree:8", "torus-16x16" —
		// resolve through the shared parser.
		topo, err := topology.Parse(*topoFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccsched: %v\n", err)
			os.Exit(2)
		}
		return topo
	}
}

func buildPattern(nodes int) request.Set {
	switch *patternFlag {
	case "ring":
		return patterns.Ring(nodes)
	case "nn2d":
		return patterns.NearestNeighbor2D(*wFlag, *hFlag)
	case "nn3d":
		side := 1
		for side*side*side < nodes {
			side++
		}
		return patterns.NearestNeighbor3D(side, side, side)
	case "hypercube":
		set, err := patterns.Hypercube(nodes)
		check(err)
		return set
	case "shuffle":
		set, err := patterns.ShuffleExchange(nodes)
		check(err)
		return set
	case "alltoall":
		return patterns.AllToAll(nodes)
	case "transpose":
		side := 1
		for side*side < nodes {
			side++
		}
		return patterns.Transpose(side)
	case "bitrev":
		set, err := patterns.BitReversal(nodes)
		check(err)
		return set
	case "random":
		set, err := patterns.Random(rand.New(rand.NewSource(*seedFlag)), nodes, *nFlag)
		check(err)
		return set
	default:
		fmt.Fprintf(os.Stderr, "ccsched: unknown pattern %q\n", *patternFlag)
		os.Exit(2)
		return nil
	}
}

func buildScheduler() schedule.Scheduler {
	sch, err := schedule.ParseScheduler(*algFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccsched: %v\n", err)
		os.Exit(2)
	}
	return sch
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccsched:", err)
		os.Exit(1)
	}
}

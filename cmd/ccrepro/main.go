// Command ccrepro regenerates the paper's entire evaluation in one run and
// emits a self-contained Markdown report: Tables 1-5 plus the figure
// artifacts, with the configuration recorded. This is the release artifact
// a reader diffs against EXPERIMENTS.md.
//
// Usage:
//
//	ccrepro > report.md
//	ccrepro -trials 20 -redists 50     # faster, noisier
package main

import (
	"flag"
	"fmt"
	"os"

	ccomm "repro"
	"repro/internal/apps"
	"repro/internal/experiments"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/topology"
)

var (
	trialsFlag  = flag.Int("trials", 100, "random patterns per Table 1 row")
	redistsFlag = flag.Int("redists", 500, "random redistributions in Table 2")
	seedFlag    = flag.Int64("seed", 1996, "random seed")
	workersFlag = flag.Int("workers", 0, "trial worker pool size (0 = GOMAXPROCS); the numbers are identical for any value")
)

func main() {
	flag.Parse()
	torus := topology.NewTorus(8, 8)

	fmt.Println("# Reproduction report — Compiled Communication for All-Optical TDM Networks")
	fmt.Println()
	fmt.Printf("Configuration: 8x8 torus, seed %d, %d Table-1 trials, %d Table-2 redistributions,\n",
		*seedFlag, *trialsFlag, *redistsFlag)
	p := sim.DefaultParams(1)
	fmt.Printf("simulator: control hop delay %d slots, retry backoff %d slots, flit = %d elements.\n\n",
		p.CtlHopDelay, p.RetryBackoff, apps.FlitElements)

	table1(torus)
	table2(torus)
	table3(torus)
	table5(torus)
	figures(torus)
}

func table1(torus *topology.Torus) {
	rows, err := experiments.Table1(torus, experiments.Table1Config{Trials: *trialsFlag, Seed: *seedFlag, Workers: *workersFlag})
	check(err)
	fmt.Println("## Table 1 — random patterns (avg multiplexing degree)")
	fmt.Println()
	fmt.Println("| conns | greedy | coloring | aapc | combined | improvement |")
	fmt.Println("|---|---|---|---|---|---|")
	for _, r := range rows {
		fmt.Printf("| %d | %.1f ± %.1f | %.1f ± %.1f | %.1f ± %.1f | %.1f ± %.1f | %.1f%% |\n",
			r.Conns,
			r.Spread[0].Mean, r.Spread[0].StdDev,
			r.Spread[1].Mean, r.Spread[1].StdDev,
			r.Spread[2].Mean, r.Spread[2].StdDev,
			r.Spread[3].Mean, r.Spread[3].StdDev,
			r.Improvement)
	}
	fmt.Println()
}

func table2(torus *topology.Torus) {
	rows, err := experiments.Table2(torus, experiments.Table2Config{Redistributions: *redistsFlag, Seed: *seedFlag, Workers: *workersFlag})
	check(err)
	fmt.Println("## Table 2 — random block-cyclic redistributions (64³ array, 64 PEs)")
	fmt.Println()
	fmt.Println("| conns | patterns | greedy | coloring | aapc | combined | improvement |")
	fmt.Println("|---|---|---|---|---|---|---|")
	for _, r := range rows {
		label := fmt.Sprintf("%d–%d", r.Lo, r.Hi)
		if r.Lo == r.Hi {
			label = fmt.Sprintf("%d", r.Lo)
		}
		if r.Patterns == 0 {
			fmt.Printf("| %s | 0 | – | – | – | – | – |\n", label)
			continue
		}
		fmt.Printf("| %s | %d | %.1f | %.1f | %.1f | %.1f | %.1f%% |\n",
			label, r.Patterns, r.Degrees[0], r.Degrees[1], r.Degrees[2], r.Degrees[3], r.Improvement)
	}
	fmt.Println()
}

// table3Rows recomputes Table 3 through the public batch compiler
// (ccomm.Compiler.CompileAll): each pattern is compiled as an independent
// phase, one concurrent batch per algorithm column, exercising the same
// parallel pipeline production phase compilation uses.
func table3Rows(torus *topology.Torus) ([]experiments.Table3Row, error) {
	entries, err := experiments.Table3Patterns(torus)
	if err != nil {
		return nil, err
	}
	sets := make([]ccomm.RequestSet, len(entries))
	for i, e := range entries {
		sets[i] = e.Set
	}
	algs := []ccomm.Algorithm{ccomm.Greedy, ccomm.Coloring, ccomm.AAPC, ccomm.Combined}
	rows := make([]experiments.Table3Row, len(entries))
	for i, e := range entries {
		rows[i] = experiments.Table3Row{Name: e.Name, Conns: len(e.Set), Degrees: make([]int, len(algs))}
	}
	for a, alg := range algs {
		phases, err := ccomm.Compiler{Topology: torus, Algorithm: alg}.CompileAll(sets)
		if err != nil {
			return nil, err
		}
		for i, ph := range phases {
			rows[i].Degrees[a] = ph.Degree()
		}
	}
	for i := range rows {
		rows[i].Improvement = experiments.Improvement(float64(rows[i].Degrees[0]), float64(rows[i].Degrees[3]))
	}
	return rows, nil
}

func table3(torus *topology.Torus) {
	rows, err := table3Rows(torus)
	check(err)
	fmt.Println("## Table 3 — frequently used patterns")
	fmt.Println()
	fmt.Println("| pattern | conns | greedy | coloring | aapc | combined | improvement |")
	fmt.Println("|---|---|---|---|---|---|---|")
	for _, r := range rows {
		fmt.Printf("| %s | %d | %d | %d | %d | %d | %.1f%% |\n",
			r.Name, r.Conns, r.Degrees[0], r.Degrees[1], r.Degrees[2], r.Degrees[3], r.Improvement)
	}
	fmt.Println()
}

func table5(torus *topology.Torus) {
	rows, err := experiments.Table5(torus, experiments.Table5Config{Workers: *workersFlag})
	check(err)
	fmt.Println("## Table 5 — compiled vs dynamic communication time (slots)")
	fmt.Println()
	fmt.Println("| pattern | size | degree | compiled | dyn K=1 | dyn K=2 | dyn K=5 | dyn K=10 |")
	fmt.Println("|---|---|---|---|---|---|---|---|")
	for _, r := range rows {
		fmt.Printf("| %s | %s | %d | %d |", r.Pattern, r.Size, r.Degree, r.Compiled)
		for _, k := range []int{1, 2, 5, 10} {
			if t, ok := r.Dynamic[k]; ok {
				fmt.Printf(" %d |", t)
			} else {
				fmt.Printf(" timeout |")
			}
		}
		fmt.Println()
	}
	fmt.Println()
}

func figures(torus *topology.Torus) {
	fmt.Println("## Figures")
	fmt.Println()
	// Fig. 1: the example configuration is conflict-free.
	fig1 := request.Set{{Src: 4, Dst: 1}, {Src: 5, Dst: 3}, {Src: 6, Dst: 10}, {Src: 8, Dst: 9}, {Src: 11, Dst: 2}}
	small := topology.NewTorus(4, 4)
	res, err := schedule.Greedy{}.Schedule(small, fig1)
	check(err)
	fmt.Printf("- Fig. 1: configuration {(4,1),(5,3),(6,10),(8,9),(11,2)} on the 4x4 torus schedules in %d slot(s)\n", res.Degree())
	// Fig. 3: greedy vs optimal.
	lin := topology.NewLinear(5)
	reqs := request.Set{{Src: 0, Dst: 2}, {Src: 1, Dst: 3}, {Src: 3, Dst: 4}, {Src: 2, Dst: 4}}
	g, err := schedule.Greedy{}.Schedule(lin, reqs)
	check(err)
	e, err := schedule.Exact{}.Schedule(lin, reqs)
	check(err)
	fmt.Printf("- Fig. 3: greedy %d slots, optimal %d slots on the 5-node linear array\n", g.Degree(), e.Degree())
	fmt.Println()
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccrepro:", err)
		os.Exit(1)
	}
}

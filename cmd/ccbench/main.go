// Command ccbench runs the pinned simulator benchmark set and writes the
// results as BENCH_sim.json: single-run dynamic-control simulations on the
// 8x8 torus (the acceptance workloads of the zero-allocation engine),
// compiled-execution replays, and parallel-sweep wall clocks at increasing
// worker counts. The JSON is the perf baseline a reviewer diffs across
// commits; the committed BENCH_sim.json records the numbers of this
// revision's machine.
//
// Usage:
//
//	ccbench                       # full run, ~200ms per benchmark
//	ccbench -quick                # single iteration per benchmark (CI smoke)
//	ccbench -o BENCH_sim.json     # write the report here (default)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"runtime"
	"sync/atomic"
	"text/tabwriter"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/optics"
	"repro/internal/patterns"
	"repro/internal/perf"
	"repro/internal/qos"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/sim"
	"repro/internal/switchprog"
	"repro/internal/topology"
	"repro/internal/trace"
)

var (
	outFlag   = flag.String("o", "BENCH_sim.json", "output file; - means stdout only")
	quickFlag = flag.Bool("quick", false, "run each benchmark once (CI smoke mode)")
)

// clusterSwap defers handler installation on a httptest server: member
// URLs must exist before the cluster nodes that answer on them.
type clusterSwap struct{ h atomic.Value }

func (s *clusterSwap) set(h http.Handler) { s.h.Store(&h) }

func (s *clusterSwap) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := s.h.Load().(*http.Handler); ok {
		(*h).ServeHTTP(w, r)
		return
	}
	http.Error(w, "not ready", http.StatusServiceUnavailable)
}

// ringMessages is the light-contention acceptance workload: every terminal
// of the 8x8 torus sends to its successor.
func ringMessages(terminals, flits int) []sim.Message {
	msgs := make([]sim.Message, terminals)
	for i := range msgs {
		msgs[i] = sim.Message{Src: i, Dst: (i + 1) % terminals, Flits: flits}
	}
	return msgs
}

// denseMessages is the heavy-contention acceptance workload; the generator
// matches internal/sim's differential-test workload (seed 1996) so ccbench
// and `go test -bench` measure the same simulation.
func denseMessages(seed int64, terminals, count int) []sim.Message {
	rng := rand.New(rand.NewSource(seed))
	msgs := make([]sim.Message, count)
	for i := range msgs {
		src := rng.Intn(terminals)
		dst := rng.Intn(terminals - 1)
		if dst >= src {
			dst++
		}
		msgs[i] = sim.Message{Src: src, Dst: dst, Flits: 1 + rng.Intn(6), Start: rng.Intn(64)}
	}
	return msgs
}

func main() {
	flag.Parse()
	torus := topology.NewTorus(8, 8)
	report := perf.NewReport(*quickFlag)

	ring := ringMessages(64, 7)
	dense := denseMessages(1996, 64, 192)

	// Dynamic control, reused simulator: the zero-allocation hot path.
	for _, w := range []struct {
		name   string
		degree int
		msgs   []sim.Message
	}{
		{"dynamic/ring64/K=2", 2, ring},
		{"dynamic/dense192/K=5", 5, dense},
	} {
		s, err := sim.NewSimulator(torus, sim.DefaultParams(w.degree))
		check(err)
		var res sim.DynamicResult
		msgs := w.msgs
		check(report.Run(w.name, func() error { return s.RunInto(msgs, &res) }))
	}

	// Dynamic control, fresh simulator per run: what a caller pays without
	// reuse (construction, routing, first-run growth).
	check(report.Run("dynamic-cold/ring64/K=2", func() error {
		_, err := sim.Dynamic{Topology: torus, Params: sim.DefaultParams(2)}.Run(ring)
		return err
	}))

	// Compiled execution replay on a reused CompiledSim.
	ring32 := ringMessages(64, 32)
	var set request.Set
	for _, m := range ring32 {
		set = append(set, request.Request{Src: network.NodeID(m.Src), Dst: network.NodeID(m.Dst)})
	}
	sched, err := schedule.Combined{}.Schedule(torus, set.Dedup())
	check(err)
	cs := sim.NewCompiledSim()
	var out sim.CompiledResult
	check(report.Run("compiled/ring64", func() error { return cs.RunInto(sched, ring32, sim.TDM, &out) }))

	// Modern-fabric workload path: the seeded MoE exchange generated on 512
	// ranks (the trace-construction cost a workload driver pays per step),
	// and its dispatch round scheduled on the 512-PE dragonfly — the
	// fabric/collective pairing of the crossover atlas, with every ordered
	// group pair funneled through a single global link.
	{
		df := topology.NewDragonfly(8, 16, 4)
		moe, err := collective.MoEAllToAll(512, 4, 4, 1996)
		check(err)
		dispatch := moe.Rounds[0]
		check(report.Run("collective/moe-alltoall", func() error {
			_, err := collective.MoEAllToAll(512, 4, 4, 1996)
			return err
		}))
		check(report.Run("fabric/dragonfly-compile", func() error {
			_, err := schedule.Combined{}.Schedule(df, dispatch)
			return err
		}))
	}

	// Recompile-after-failure: the host-side reaction to a link failure —
	// mask the dead links, reschedule the surviving traffic, lower it to
	// switch programs and verify the light trace. Each iteration builds a
	// fresh masked view, so the routes are recomputed cold, as they would
	// be for a failure the compiler has never seen.
	hyper, err := patterns.Hypercube(64)
	check(err)
	failset := fault.SetOf(fault.RandomLinkPlan(torus, 1996, 6, 0))
	check(report.Run("fault/recompile/hypercube64", func() error {
		_, _, err := fault.Recompile(fault.NewMasked(torus, failset), hyper, nil)
		return err
	}))

	// Incremental recompilation: patch a drifted hypercube pattern onto its
	// compiled base (internal/delta) vs scheduling the drifted target from
	// scratch. The spread is the amortization the delta compiler buys a
	// family of nearby patterns.
	{
		baseRes, err := schedule.Combined{}.Schedule(torus, hyper)
		check(err)
		drift := hyper.Clone()[:len(hyper)-4]
		drift = append(drift, request.Set{{Src: 0, Dst: 63}, {Src: 17, Dst: 42}}...)
		check(report.Run("delta/patch/hypercube64", func() error {
			_, st, err := delta.Recompile(torus, baseRes, drift, delta.Options{})
			if err == nil && !st.Patched {
				return fmt.Errorf("patch rejected: %s", st.Fallback)
			}
			return err
		}))
		check(report.Run("delta/full/hypercube64", func() error {
			_, err := schedule.Combined{}.Schedule(torus, drift)
			return err
		}))

		// Scheduling core, no HTTP in the way: the arena compile the service
		// runs per cache miss, next to the retained map-based oracle core the
		// differential suite compares it against. The ratio between the two
		// rows is the bitset-core speedup, locked into the JSON.
		st := schedule.NewCompileState()
		var combined schedule.Scheduler = schedule.Combined{}
		check(report.Run("sched/compile/hypercube64", func() error {
			_, err := st.Compile(combined, torus, hyper)
			return err
		}))
		check(report.Run("sched/compile-oracle/hypercube64", func() error {
			_, err := schedule.OracleCombined{}.Schedule(torus, hyper)
			return err
		}))

		// Streaming incremental recompilation: a delta.Session absorbing an
		// alternating pattern drift, against the stateless patch above. The
		// session keeps the colored schedule alive between calls, so each
		// iteration pays only the diff.
		sess, err := delta.NewSession(torus, baseRes, delta.Options{})
		check(err)
		targets := [2]request.Set{drift, hyper}
		flip := 0
		check(report.Run("delta/session/hypercube64", func() error {
			flip++
			_, sst, err := sess.Recompile(targets[flip%2])
			if err == nil && !sst.Patched {
				return fmt.Errorf("session patch rejected: %s", sst.Fallback)
			}
			return err
		}))
	}

	// Dynamic control under fault injection on a reused simulator: the
	// mid-run teardown/reroute machinery on top of the ring workload.
	{
		s, err := sim.NewSimulator(torus, sim.DefaultParams(2))
		check(err)
		plan := fault.SimPlan(torus, fault.RandomLinkPlan(torus, 7, 4, 50))
		var res sim.DynamicResult
		check(report.Run("fault/dynamic/ring64/K=2", func() error { return s.RunFaulted(ring, plan, &res) }))
	}

	// Serving layer: the compile daemon end to end over loopback HTTP — a
	// cold compile (a fresh content key every iteration) vs a cache hit of
	// the same artifact. The spread between the two is the amortization the
	// content-addressed cache buys a long-running daemon.
	{
		svc, err := service.New(service.Config{Topology: torus})
		check(err)
		ts := httptest.NewServer(svc)
		c := &client.Client{BaseURL: ts.URL, HTTPClient: ts.Client()}
		doc := trace.FromProgram(core.Program{
			Name:   "ring64",
			Phases: []core.Phase{{Name: "ring", Messages: ring}},
		}, 64)
		ctx := context.Background()
		cold := 0
		check(report.Run("service/compile-miss/ring64", func() error {
			cold++
			d := doc
			d.Name = fmt.Sprintf("ring64-cold-%d", cold)
			_, _, err := c.Compile(ctx, d, client.Options{})
			return err
		}))
		if _, _, err := c.Compile(ctx, doc, client.Options{}); err != nil {
			check(err)
		}
		check(report.Run("service/compile-hit/ring64", func() error {
			resp, _, err := c.Compile(ctx, doc, client.Options{})
			if err == nil && resp.Cache != service.CacheHit {
				return fmt.Errorf("expected a cache hit, got %q", resp.Cache)
			}
			return err
		}))
		ts.Close()
		svc.Close()
	}

	// Cluster serving: three federated daemons over loopback HTTP with a
	// replica set of 1, so every key has exactly one home and requests to
	// the wrong node must cross the wire. Three rows bracket the costs: a
	// cold compile reached through a forward (cold-forward), a forward that
	// lands on a warm owner (forward-hit — the entry node's cache is pinned
	// to one slot so alternating two keys always evicts and re-forwards),
	// and a plain local hit through the same cluster handler (local-hit,
	// the routing layer's overhead floor).
	{
		const members = 3
		swaps := make([]*clusterSwap, members)
		servers := make([]*httptest.Server, members)
		urls := make([]string, members)
		for i := range swaps {
			swaps[i] = &clusterSwap{}
			servers[i] = httptest.NewServer(swaps[i])
			urls[i] = servers[i].URL
		}
		svcs := make([]*service.Server, members)
		nodes := make([]*cluster.Node, members)
		for i := range svcs {
			cfg := service.Config{Topology: torus}
			if i == 0 {
				cfg.CacheEntries = 1
			}
			svc, err := service.New(cfg)
			check(err)
			node, err := cluster.NewNode(svc, cluster.Config{Self: urls[i], Peers: urls, Replication: 1})
			check(err)
			svc.SetPeers(node)
			swaps[i].set(node)
			svcs[i], nodes[i] = svc, node
		}
		hashRing := cluster.NewRing(urls, cluster.DefaultVNodes)
		ctx := context.Background()
		mkDoc := func(name string) trace.Document {
			return trace.FromProgram(core.Program{
				Name:   name,
				Phases: []core.Phase{{Name: "ring", Messages: ring}},
			}, 64)
		}
		// mint scans names for a document whose content key satisfies want.
		mint := func(prefix string, want func(owner string) bool) trace.Document {
			for i := 0; ; i++ {
				d := mkDoc(fmt.Sprintf("%s-%d", prefix, i))
				key, err := service.KeyForDocument(d, torus.Name(), "combined")
				check(err)
				if want(hashRing.Owner(key)) {
					return d
				}
			}
		}
		entry := &client.Client{BaseURL: urls[0], HTTPClient: servers[0].Client()}

		coldN := 0
		check(report.Run("cluster/compile-cold-forward/ring64", func() error {
			for {
				coldN++
				d := mkDoc(fmt.Sprintf("cluster-cold-%d", coldN))
				key, err := service.KeyForDocument(d, torus.Name(), "combined")
				if err != nil {
					return err
				}
				if hashRing.Owner(key) == urls[0] {
					continue // needs the wire: skip keys the entry node owns
				}
				resp, _, err := entry.Compile(ctx, d, client.Options{})
				if err != nil {
					return err
				}
				if resp.Cache != service.CachePeer {
					return fmt.Errorf("expected a peer forward, got %q", resp.Cache)
				}
				return nil
			}
		}))

		// Two keys homed on member 2, pre-warmed there; the entry node's
		// single cache slot guarantees every alternation misses locally and
		// forwards to the warm owner.
		warmA := mint("cluster-warm-a", func(o string) bool { return o == urls[2] })
		warmB := mint("cluster-warm-b", func(o string) bool { return o == urls[2] })
		owner2 := &client.Client{BaseURL: urls[2], HTTPClient: servers[2].Client()}
		for _, d := range []trace.Document{warmA, warmB} {
			_, _, err := owner2.Compile(ctx, d, client.Options{})
			check(err)
		}
		flip := 0
		check(report.Run("cluster/forward-hit/ring64", func() error {
			flip++
			d := warmA
			if flip%2 == 0 {
				d = warmB
			}
			resp, _, err := entry.Compile(ctx, d, client.Options{})
			if err != nil {
				return err
			}
			if resp.Cache != service.CachePeer {
				return fmt.Errorf("expected a peer forward, got %q", resp.Cache)
			}
			return nil
		}))

		check(report.Run("cluster/local-hit/ring64", func() error {
			resp, _, err := owner2.Compile(ctx, warmA, client.Options{})
			if err != nil {
				return err
			}
			if resp.Cache != service.CacheHit {
				return fmt.Errorf("expected a local hit, got %q", resp.Cache)
			}
			return nil
		}))

		for i := range svcs {
			nodes[i].Stop()
			servers[i].Close()
			svcs[i].Close()
		}
	}

	// Multi-tenant QoS: the weighted-fair queue's dispatch hot path (a
	// two-class backlog enqueued and drained per iteration — the admission
	// work every compile submission pays under -qos), and the guaranteed-
	// bandwidth reservation compile (the reserved pattern pinned to its slot
	// window, the background pattern packed into the complement). After the
	// timed rows, VerifyInvariance is the subsystem's acceptance assertion:
	// the reserved tenant's simulated delivery slots must be identical with
	// and without background load, or the run fails.
	{
		reg, err := qos.NewRegistry([]qos.Class{
			{Name: "gold", Weight: 8, QueueDepth: 512},
			{Name: "bronze", Weight: 1, QueueDepth: 512},
		}, qos.Defaults{})
		check(err)
		classes := [2]string{"gold", "bronze"}
		check(report.Run("qos/wfq-dispatch/256", func() error {
			q := qos.NewWFQ(reg)
			for i := 0; i < 256; i++ {
				if err := q.Enqueue(classes[i%2], i); err != nil {
					return err
				}
			}
			for i := 0; i < 256; i++ {
				if _, _, _, ok := q.Dequeue(); !ok {
					return fmt.Errorf("queue drained early at %d", i)
				}
			}
			q.Close()
			return nil
		}))

		reserved := request.Set{{Src: 0, Dst: 9}, {Src: 9, Dst: 18}, {Src: 18, Dst: 27}}
		var background request.Set
		for i := 0; i < 16; i++ {
			background = append(background, request.Request{
				Src: network.NodeID(32 + i), Dst: network.NodeID(32 + (i+5)%16),
			})
		}
		rsv := qos.Reserve{Tenant: "gold", Frame: 8, Lo: 2, Hi: 4}
		check(rsv.Admit(torus, reserved))
		check(report.Run("qos/reserved-compile/torus64", func() error {
			_, err := rsv.Schedule(torus, schedule.Combined{}, reserved, background)
			return err
		}))
		var rmsgs []sim.Message
		for _, rq := range reserved {
			rmsgs = append(rmsgs, sim.Message{Src: int(rq.Src), Dst: int(rq.Dst), Flits: 3})
		}
		check(rsv.VerifyInvariance(torus, schedule.Combined{}, reserved, background, rmsgs))
	}

	// Overlap-aware iteration time: the reconfigure-or-not planner against
	// the paper's model of a full register load at every phase boundary.
	// Three totals per workload go into the JSON: the overlap plan
	// (keep/patch/recompile with loads hidden under idle TDM slots), the
	// same plan with serialized loading, and the per-phase full-load
	// baseline (IterationTime). The ring all-reduce is the circuit-sharing
	// workload the planner must win outright: after round one the circuits
	// never change, so every boundary is a keep and the baseline's 2(n-1)
	// reconfigurations collapse to one.
	{
		rc := core.DefaultReconfigCost
		coll, err := collective.RingAllReduce(64, 64)
		check(err)
		ringAR := coll.Program(1)
		ringAR.Phases = ringAR.Phases[:8]
		ag, err := collective.AllGather(64, 8)
		check(err)
		p3mPhases, err := apps.P3M(32)
		check(err)
		p3m := core.Program{Name: "p3m-32"}
		for _, ph := range p3mPhases {
			p3m.Phases = append(p3m.Phases, core.Phase{Name: ph.Name, Messages: ph.Messages})
		}
		for _, w := range []struct {
			name string
			prog core.Program
		}{
			{"ring-allreduce64", ringAR},
			{"allgather64", ag.Program(1)},
			{"p3m64", p3m},
		} {
			cp, err := core.Compiler{Topology: torus, Scheduler: schedule.Combined{}}.Compile(w.prog)
			check(err)
			var plan *core.OverlapPlan
			check(report.Run("overlap/plan/"+w.name, func() error {
				plan, err = cp.PlanOverlap(rc)
				return err
			}))
			if plan.Total > plan.Serialized {
				check(fmt.Errorf("overlap/%s: overlap total %d exceeds serialized %d", w.name, plan.Total, plan.Serialized))
			}
			report.AddValue("overlap/"+w.name+"/overlapped", float64(plan.Total), "slots")
			report.AddValue("overlap/"+w.name+"/serialized", float64(plan.Serialized), "slots")
			report.AddValue("overlap/"+w.name+"/baseline", float64(plan.Baseline), "slots")
		}
		// The headline acceptance number: on the circuit-sharing workload
		// the planned iteration must be strictly cheaper than serialized
		// per-phase reconfiguration.
		cp, err := core.Compiler{Topology: torus, Scheduler: schedule.Combined{}}.Compile(ringAR)
		check(err)
		plan, err := cp.PlanOverlap(rc)
		check(err)
		if plan.Total >= plan.Baseline {
			check(fmt.Errorf("overlap/ring-allreduce64: planned %d slots does not beat the %d-slot full-reconfiguration baseline", plan.Total, plan.Baseline))
		}
	}

	// Multi-phase serving: one pipelined /session stream against the same
	// phase sequence issued as independent /compile calls (fresh names per
	// iteration so neither path hits the artifact cache). Two workloads: the
	// ring all-reduce, where after round one every phase is byte-identical
	// and the session skips the compile entirely (the amortization headline
	// — asserted to win in full mode, after a one-shot check that the
	// session's schedules really are the ones the N compiles return), and
	// p3m, where every phase differs and the session pays a compile plus
	// candidate pricing per boundary (the honest overhead row).
	{
		coll, err := collective.RingAllReduce(64, 64)
		check(err)
		ringAR := coll.Program(1)
		ringAR.Phases = ringAR.Phases[:8]
		p3mPhases, err := apps.P3M(32)
		check(err)
		p3m := core.Program{Name: "p3m-32"}
		for _, ph := range p3mPhases {
			p3m.Phases = append(p3m.Phases, core.Phase{Name: ph.Name, Messages: ph.Messages})
		}
		svc, err := service.New(service.Config{Topology: torus})
		check(err)
		ts := httptest.NewServer(svc)
		c := &client.Client{BaseURL: ts.URL, HTTPClient: ts.Client()}
		ctx := context.Background()
		for _, w := range []struct {
			name string
			prog core.Program
		}{
			{"ring-allreduce64", ringAR},
			{"p3m64", p3m},
		} {
			doc := trace.FromProgram(w.prog, 64)
			perPhaseDocs := func(n int) []trace.Document {
				docs := make([]trace.Document, len(doc.Phases))
				for i := range doc.Phases {
					docs[i] = trace.Document{
						Name:   fmt.Sprintf("%s/%d/%d", doc.Name, n, i),
						PEs:    doc.PEs,
						Phases: []trace.Phase{doc.Phases[i]},
					}
				}
				return docs
			}
			// One untimed pass proving the session serves byte-identical
			// schedules to what N independent compiles return.
			sessRes, err := c.Session(ctx, doc, client.Options{}, nil)
			check(err)
			for i, d := range perPhaseDocs(0) {
				_, res, err := c.Compile(ctx, d, client.Options{})
				check(err)
				if !reflect.DeepEqual(sessRes.Phases[i].Result.Configs, res.Phases[0].Configs) {
					check(fmt.Errorf("service/session/%s: phase %d schedule differs from its independent compile", w.name, i))
				}
			}
			check(report.Run("service/session/"+w.name, func() error {
				res, err := c.Session(ctx, doc, client.Options{}, nil)
				if err != nil {
					return err
				}
				if len(res.Phases) != len(doc.Phases) {
					return fmt.Errorf("session served %d phases, want %d", len(res.Phases), len(doc.Phases))
				}
				return nil
			}))
			n := 0
			check(report.Run("service/compile-per-phase/"+w.name, func() error {
				n++
				for i, d := range perPhaseDocs(n) {
					if _, _, err := c.Compile(ctx, d, client.Options{}); err != nil {
						return fmt.Errorf("phase %d: %w", i, err)
					}
				}
				return nil
			}))
		}
		ts.Close()
		svc.Close()
		if !*quickFlag {
			sess, ok1 := report.LastResult("service/session/ring-allreduce64")
			perPhase, ok2 := report.LastResult("service/compile-per-phase/ring-allreduce64")
			if !ok1 || !ok2 {
				check(fmt.Errorf("session benchmark rows missing"))
			}
			if sess.NsPerOp >= perPhase.NsPerOp {
				check(fmt.Errorf("/session (%.0f ns) not faster than %d independent /compile calls (%.0f ns)",
					sess.NsPerOp, len(ringAR.Phases), perPhase.NsPerOp))
			}
		}
	}

	// Fault-masked recompilation through the daemon, on the paper's p3m64
	// trace with a single failed link: with a schedule store the daemon
	// rebases the stored healthy schedules onto the mask (the delta path);
	// without one every request runs fault.Recompile from scratch. Fresh
	// program names defeat the artifact cache so each iteration really
	// recompiles.
	{
		phases, err := apps.P3M(32)
		check(err)
		prog := core.Program{Name: "p3m-32"}
		for _, ph := range phases {
			prog.Phases = append(prog.Phases, core.Phase{Name: ph.Name, Messages: ph.Messages})
		}
		doc := trace.FromProgram(prog, 64)
		mask := service.FaultMask{Links: []int{3}}
		ctx := context.Background()
		for _, mode := range []struct {
			name  string
			store bool
		}{
			{"service/recompile-full/p3m64", false},
			{"service/recompile-delta/p3m64", true},
		} {
			cfg := service.Config{Topology: torus}
			if mode.store {
				dir, err := os.MkdirTemp("", "ccbench-store-*")
				check(err)
				defer os.RemoveAll(dir)
				cfg.StoreDir = dir
			}
			svc, err := service.New(cfg)
			check(err)
			ts := httptest.NewServer(svc)
			c := &client.Client{BaseURL: ts.URL, HTTPClient: ts.Client()}
			if mode.store {
				// The healthy compile seeds the base store the delta path
				// rebases from.
				_, _, err := c.Compile(ctx, doc, client.Options{})
				check(err)
			}
			n := 0
			check(report.Run(mode.name, func() error {
				n++
				d := doc
				d.Name = fmt.Sprintf("p3m-32-mask-%d", n)
				_, res, err := c.Recompile(ctx, d, mask, client.Options{})
				if err == nil && res.MaxDegree < 1 {
					return fmt.Errorf("degenerate recompile result")
				}
				return err
			}))
			ts.Close()
			svc.Close()
		}

		// The same two recompile paths with the protocol stripped away: the
		// HTTP rows above pay a shared JSON-parse/encode/transport floor on
		// both sides that compresses their ratio; these rows isolate what
		// the compiler itself does per request. Full runs fault.Recompile
		// (schedule from scratch on the masked view, lower, verify) per
		// static phase; delta rebases each phase's stored healthy schedule
		// (delta.Recompile, then the same lowering and light-trace check the
		// service performs).
		{
			failset := fault.NewSet()
			failset.FailLink(3)
			masked := fault.NewMasked(torus, failset)
			var phaseReqs []request.Set
			var bases []*schedule.Result
			for _, ph := range prog.Phases {
				reqs := ph.Requests()
				base, err := schedule.Combined{}.Schedule(torus, reqs)
				check(err)
				phaseReqs = append(phaseReqs, reqs)
				bases = append(bases, base)
			}
			check(report.Run("fault/recompile-full/p3m64", func() error {
				for i := range phaseReqs {
					if _, _, err := fault.Recompile(masked, phaseReqs[i], nil); err != nil {
						return fmt.Errorf("phase %d: %w", i, err)
					}
				}
				return nil
			}))
			patched := 0
			check(report.Run("fault/recompile-delta/p3m64", func() error {
				patched = 0
				for i := range phaseReqs {
					res, st, err := delta.Recompile(masked, bases[i], phaseReqs[i], delta.Options{})
					if err != nil {
						return fmt.Errorf("phase %d: %w", i, err)
					}
					if st.Patched {
						patched++
					}
					sp, err := switchprog.Compile(res)
					if err != nil {
						return fmt.Errorf("phase %d: %w", i, err)
					}
					if _, err := optics.NewTracer(sp).VerifySchedule(res.Slot); err != nil {
						return fmt.Errorf("phase %d: %w", i, err)
					}
				}
				return nil
			}))
			if patched == 0 {
				check(fmt.Errorf("delta recompile never patched: every phase fell back to full scheduling"))
			}
		}
	}

	// Sweep wall clock: 16 open-loop trials, serial vs the full pool. Quick
	// mode shrinks the trial count; the JSON records whichever ran.
	trials := 16
	if *quickFlag {
		trials = 4
	}
	// Always measure a multi-worker rung even on one core (it can at best
	// break even there, which the JSON then records honestly).
	workerCounts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		w := workers
		check(report.RunSweep("sweep/openloop64", w, trials, func() error {
			return sim.Sweep(trials, w, 1996, func(trial int, rng *rand.Rand) error {
				msgs, err := sim.OpenLoop(rng, sim.OpenLoopConfig{Nodes: 64, MessagesPerNode: 2, Flits: 2, MeanGap: 400})
				if err != nil {
					return err
				}
				s, err := sim.NewSimulator(torus, sim.DefaultParams(2))
				if err != nil {
					return err
				}
				var res sim.DynamicResult
				return s.RunInto(msgs, &res)
			})
		}))
	}

	print(report)
	if *outFlag != "-" {
		data, err := json.MarshalIndent(report, "", "  ")
		check(err)
		check(os.WriteFile(*outFlag, append(data, '\n'), 0o644))
		fmt.Printf("\nwrote %s\n", *outFlag)
	}
}

func print(r *perf.Report) {
	fmt.Printf("ccbench: %s, GOMAXPROCS=%d, quick=%v\n\n", r.GoVersion, r.GOMAXPROCS, r.Quick)
	w := tabwriter.NewWriter(os.Stdout, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "benchmark\titers\tns/op\tB/op\tallocs/op\t")
	for _, b := range r.Benchmarks {
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%.0f\t%.1f\t\n", b.Name, b.Iterations, b.NsPerOp, b.BytesPerOp, b.AllocsPerOp)
	}
	check(w.Flush())
	if len(r.Sweeps) > 0 {
		fmt.Println()
		fmt.Fprintln(w, "sweep\tworkers\ttrials\twall ms\t")
		for _, s := range r.Sweeps {
			fmt.Fprintf(w, "%s\t%d\t%d\t%.2f\t\n", s.Name, s.Workers, s.Trials, s.WallMs)
		}
		check(w.Flush())
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccbench:", err)
		os.Exit(1)
	}
}

// Command ccfault prints the fault-degradation table: how compiled
// communication and dynamic control degrade on a time-multiplexed fabric
// (the paper's 8x8 torus by default; any -topology spec, including the
// dragonfly and fat-tree families, works) as link failures accumulate
// mid-phase. The compiled side pays an
// explicit recompile-and-reload stall per failure burst (optionally
// overlapped with the predetermined AAPC fallback); the dynamic side pays
// reservation aborts, reroutes over the surviving links, and outright
// message loss when a pair is disconnected. The data comes from
// internal/experiments.FaultTable; this command only renders it.
//
// Usage:
//
//	ccfault                          # default table: 1,2,4,8 link faults
//	ccfault -faults 4,16,64 -trials 20
//	ccfault -fallback -detect 64 -compile 256
//	ccfault -alg combined -stride 5 -flits 64
//	ccfault -topology dragonfly:8,16,4 -faults 1,4,16
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/schedule"
	"repro/internal/topology"
)

var (
	faultsFlag   = flag.String("faults", "1,2,4,8", "injected link-failure counts, one table row each")
	trialsFlag   = flag.Int("trials", 50, "random fault plans averaged per row")
	seedFlag     = flag.Int64("seed", 1996, "fault plan seed")
	strideFlag   = flag.Int("stride", 9, "workload: shift-by-stride permutation")
	flitsFlag    = flag.Int("flits", 32, "workload: flits per message")
	degreeFlag   = flag.Int("degree", 0, "dynamic-control multiplexing degree (0 = match the healthy compiled degree)")
	maxSlotFlag  = flag.Int("maxslot", 0, "latest fault-injection slot (0 = half the healthy compiled time)")
	algFlag      = flag.String("alg", "coloring", "recompilation scheduler: greedy, coloring, aapc, combined")
	detectFlag   = flag.Int("detect", 0, "failure-detection latency (slots)")
	compileFlag  = flag.Int("compile", 0, "host recompilation time (slots)")
	perSlotFlag  = flag.Int("reload-perslot", core.DefaultReconfigCost.PerSlot, "register reload cost per TDM slot of the recompiled schedule")
	barrierFlag  = flag.Int("reload-barrier", core.DefaultReconfigCost.Barrier, "register reload synchronization barrier (slots)")
	fallbackFlag = flag.Bool("fallback", false, "overlap recompilation stalls with the predetermined AAPC fallback")
	workersFlag  = flag.Int("workers", 0, "trial worker pool size (0 = GOMAXPROCS); the table is identical for any value")
	topoFlag     = flag.String("topology", "torus-8x8", "fabric to degrade, e.g. torus-8x8, dragonfly:8,16,4, fattree:8")
)

func scheduler(name string) (schedule.Scheduler, error) {
	return schedule.ParseScheduler(name)
}

func main() {
	flag.Parse()
	counts, err := cliutil.ParseIntList(*faultsFlag)
	usage(err)
	for _, n := range counts {
		if n < 1 {
			usage(fmt.Errorf("fault count %d < 1", n))
		}
	}
	alg, err := scheduler(*algFlag)
	usage(err)

	topo, err := topology.Parse(*topoFlag)
	usage(err)
	res, err := experiments.FaultTable(topo, experiments.FaultConfig{
		FaultCounts: counts,
		Trials:      *trialsFlag,
		Seed:        *seedFlag,
		Stride:      *strideFlag,
		Flits:       *flitsFlag,
		Degree:      *degreeFlag,
		MaxSlot:     *maxSlotFlag,
		Recovery: fault.Options{
			Scheduler:    alg,
			Reconfig:     core.ReconfigCost{PerSlot: *perSlotFlag, Barrier: *barrierFlag},
			DetectSlots:  *detectFlag,
			CompileSlots: *compileFlag,
			Fallback:     *fallbackFlag,
		},
		Workers: *workersFlag,
	})
	check(err)

	fmt.Printf("fault degradation on %s: shift-by-%d, %d flits, %d trials/row, scheduler %s\n",
		topo.Name(), *strideFlag, *flitsFlag, *trialsFlag, *algFlag)
	fmt.Print(experiments.FormatFaultTable(res))
}

// usage rejects bad command-line input with exit status 2, matching the
// other CLIs; check reports runtime failures with exit status 1.
func usage(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccfault:", err)
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccfault:", err)
		os.Exit(1)
	}
}

// Command ccsim regenerates Table 5 of the paper: communication time of the
// static application patterns (GS, TSCF, P3M 1-5) under compiled
// communication versus dynamically controlled communication at fixed
// multiplexing degrees, on a slot-level simulator of the 8x8 time-
// multiplexed torus. The data comes from internal/experiments; this command
// only renders it.
//
// Usage:
//
//	ccsim                     # the full Table 5
//	ccsim -degrees 1,2,4      # different fixed degrees for dynamic control
//	ccsim -hopdelay 8 -backoff 16 -queued -backward
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/topology"
)

var (
	degreesFlag  = flag.String("degrees", "1,2,5,10", "fixed multiplexing degrees for dynamic control")
	hopFlag      = flag.Int("hopdelay", 8, "control packet per-hop delay (slots)")
	backoffFlag  = flag.Int("backoff", 16, "reservation retry backoff base (slots)")
	queuedFlag   = flag.Bool("queued", false, "model contention on the electronic shadow network")
	backwardFlag = flag.Bool("backward", false, "use the observe-then-lock (backward) reservation variant")
	workersFlag  = flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS); the numbers are identical for any value")
)

func main() {
	flag.Parse()
	fixed, err := cliutil.ParseIntList(*degreesFlag)
	check(err)
	params := func(k int) sim.Params {
		p := sim.DefaultParams(k)
		p.CtlHopDelay = *hopFlag
		p.RetryBackoff = *backoffFlag
		p.ShadowQueuing = *queuedFlag
		if *backwardFlag {
			p.Reservation = sim.LockBackward
		}
		return p
	}

	torus := topology.NewTorus(8, 8)
	rows, err := experiments.Table5(torus, experiments.Table5Config{
		FixedDegrees: fixed,
		Params:       params,
		Workers:      *workersFlag,
	})
	check(err)

	fmt.Println("Table 5: communication time for static patterns (slots, 8x8 torus)")
	fmt.Printf("control hop delay %d slots, retry backoff %d slots, shadow queuing %v, scheme %s\n",
		*hopFlag, *backoffFlag, *queuedFlag, params(1).Reservation)
	w := tabwriter.NewWriter(os.Stdout, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "pattern\tsize\tdegree\tcompiled\t")
	for _, k := range fixed {
		fmt.Fprintf(w, "dyn K=%d\t", k)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t", r.Pattern, r.Size, r.Degree, r.Compiled)
		for _, k := range fixed {
			if t, ok := r.Dynamic[k]; ok {
				fmt.Fprintf(w, "%d\t", t)
			} else {
				fmt.Fprintf(w, "timeout\t")
			}
		}
		fmt.Fprintln(w)
	}
	check(w.Flush())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccsim:", err)
		os.Exit(1)
	}
}

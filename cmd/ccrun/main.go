// Command ccrun compiles and simulates a communication trace: a JSON
// program description (see internal/trace) is compiled phase by phase —
// minimal multiplexing degree, switch programs, AAPC fallback for phases
// marked dynamic — and run under compiled communication and, optionally,
// the dynamic-control baseline.
//
// Usage:
//
//	ccrun -trace prog.json
//	ccrun -trace prog.json -degrees 1,5 -iterations 10
//	ccrun -emit gs256 > gs.json      # export a built-in workload as a trace
//
// Built-in workloads for -emit: gs64, gs128, gs256, tscf, fft, p3m32, p3m64.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/apps"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

var (
	traceFlag   = flag.String("trace", "", "trace file to compile and run")
	emitFlag    = flag.String("emit", "", "emit a built-in workload as a trace: gs64, gs128, gs256, tscf, fft, p3m32, p3m64")
	degreesFlag = flag.String("degrees", "", "also simulate dynamic control at these fixed degrees (comma separated)")
	itersFlag   = flag.Int("iterations", 1, "program main-loop iterations for the total-time estimate")
)

func main() {
	flag.Parse()
	switch {
	case *emitFlag != "":
		emit(*emitFlag)
	case *traceFlag != "":
		run(*traceFlag)
	default:
		fmt.Fprintln(os.Stderr, "ccrun: need -trace FILE or -emit WORKLOAD")
		os.Exit(2)
	}
}

func emit(name string) {
	var prog core.Program
	add := func(ph apps.Phase, err error) {
		check(err)
		prog.Phases = append(prog.Phases, core.Phase{Name: ph.Name, Messages: ph.Messages})
	}
	switch name {
	case "gs64":
		prog.Name = "gs-64"
		add(apps.GS(64, 64))
	case "gs128":
		prog.Name = "gs-128"
		add(apps.GS(128, 64))
	case "gs256":
		prog.Name = "gs-256"
		add(apps.GS(256, 64))
	case "tscf":
		prog.Name = "tscf"
		add(apps.TSCF(64))
	case "fft":
		prog.Name = "fft-4096"
		phases, err := apps.FFT(4096, 64)
		check(err)
		for _, ph := range phases {
			add(ph, nil)
		}
	case "p3m32", "p3m64":
		n := 32
		if name == "p3m64" {
			n = 64
		}
		prog.Name = fmt.Sprintf("p3m-%d", n)
		phases, err := apps.P3M(n)
		check(err)
		for _, ph := range phases {
			add(ph, nil)
		}
	default:
		fmt.Fprintf(os.Stderr, "ccrun: unknown workload %q\n", name)
		os.Exit(2)
	}
	check(trace.Write(os.Stdout, trace.FromProgram(prog, 64)))
}

func run(path string) {
	f, err := os.Open(path)
	check(err)
	defer f.Close()
	doc, err := trace.Read(f)
	check(err)
	prog, err := doc.Program()
	check(err)

	fixed, err := cliutil.ParseIntList(*degreesFlag)
	check(err)

	// The 8x8 torus hosts 64 PEs; reject traces for other machine sizes.
	if doc.PEs != 64 {
		fmt.Fprintf(os.Stderr, "ccrun: trace targets %d PEs; this build simulates the paper's 64-PE torus\n", doc.PEs)
		os.Exit(2)
	}
	torus := topology.NewTorus(8, 8)
	cp, err := core.Compiler{Topology: torus}.Compile(prog)
	check(err)

	fmt.Printf("program %q: %d phases on %s\n\n", prog.Name, len(cp.Phases), torus.Name())
	w := tabwriter.NewWriter(os.Stdout, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "phase\tkind\tconns\tdegree\tcompiled\t")
	for _, k := range fixed {
		fmt.Fprintf(w, "dyn K=%d\t", k)
	}
	fmt.Fprintln(w)
	for i := range cp.Phases {
		ph := &cp.Phases[i]
		kind := "static"
		if ph.UsedFallback {
			kind = "dynamic"
		}
		out, err := sim.RunCompiled(ph.Schedule, ph.Phase.Messages)
		check(err)
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t", ph.Phase.Name, kind, len(ph.Phase.Messages), ph.Degree(), out.Time)
		for _, k := range fixed {
			dyn, err := sim.Dynamic{Topology: torus, Params: sim.DefaultParams(k)}.Run(ph.Phase.Messages)
			check(err)
			if dyn.TimedOut {
				fmt.Fprintf(w, "timeout\t")
			} else {
				fmt.Fprintf(w, "%d\t", dyn.Time)
			}
		}
		fmt.Fprintln(w)
	}
	check(w.Flush())

	total, err := cp.ProgramTime(*itersFlag, core.DefaultReconfigCost)
	check(err)
	fmt.Printf("\ntotal for %d iteration(s) incl. reconfiguration: %d slots\n", *itersFlag, total)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccrun:", err)
		os.Exit(1)
	}
}

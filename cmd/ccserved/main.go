// Command ccserved is the compile daemon: an HTTP/JSON server that accepts
// communication programs in the internal/trace format and serves compiled
// TDM schedules with content-addressed caching, request coalescing and
// admission control (internal/service).
//
// Usage:
//
//	ccserved -addr :8080
//	ccserved -addr :8080 -topology torus-8x8 -alg combined -workers 4 -queue 64 -cache 256
//	curl -s -XPOST --data-binary @prog.json http://localhost:8080/compile | jq .
//
// On SIGINT/SIGTERM the daemon drains: the listener stops accepting, queued
// and running compiles finish, then the process exits.
//
// Cluster mode federates several daemons into one logical cache
// (internal/cluster): pass the full roster and this node's own advertised
// URL and each key gets a deterministic owner on a consistent-hash ring,
// misses are forwarded to the owner, and background gossip replicates
// artifacts to their replica set so a node's keys stay warm after it dies:
//
//	ccserved -addr :8080 -self http://10.0.0.1:8080 \
//	  -peers http://10.0.0.1:8080,http://10.0.0.2:8080,http://10.0.0.3:8080 \
//	  -replication 2 -gossip-interval 1s
//	curl -s http://10.0.0.1:8080/cluster | jq .
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/qos"
	"repro/internal/schedule"
	"repro/internal/service"
	"repro/internal/topology"
)

var (
	addrFlag     = flag.String("addr", ":8080", "listen address")
	topologyFlag = flag.String("topology", "torus-8x8", "default network compiled against")
	algFlag      = flag.String("alg", "combined", "default scheduling algorithm: combined, combined-seq, greedy, coloring, aapc, exact")
	workersFlag  = flag.Int("workers", 0, "compile worker pool size (0 = GOMAXPROCS)")
	queueFlag    = flag.Int("queue", 64, "admission queue depth; requests beyond workers+queue get 429")
	cacheFlag    = flag.Int("cache", 256, "schedule cache entries (LRU)")
	retryFlag    = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 replies")
	qosFlag      = flag.String("qos", "", "QoS classes, e.g. \"gold:weight=8,queue=64,cache=256;bronze:weight=1,queue=16\"; empty = single default class")
	pprofFlag    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	drainFlag    = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")

	storeDirFlag   = flag.String("store-dir", "", "persistent schedule store directory (empty = memory-only)")
	storeMaxFlag   = flag.Int("store-max-entries", 0, "store GC: keep at most this many entries (0 = unbounded)")
	storeAgeFlag   = flag.Duration("store-max-age", 0, "store GC: expire entries older than this (0 = unbounded)")
	deltaBoundFlag = flag.Float64("delta-bound", 0, "accept an incrementally patched schedule when its degree is within this factor of the from-scratch estimate (0 = default 1.5)")

	reconfigPerSlotFlag = flag.Int("reconfig-perslot", core.DefaultReconfigCost.PerSlot, "register-load slots charged per TDM slot entry at a /session phase boundary")
	reconfigBarrierFlag = flag.Int("reconfig-barrier", core.DefaultReconfigCost.Barrier, "barrier slots charged when any register write occurs at a /session phase boundary")

	selfFlag        = flag.String("self", "", "this node's advertised base URL in cluster mode (e.g. http://10.0.0.1:8080)")
	peersFlag       = flag.String("peers", "", "comma-separated base URLs of every cluster member including self; empty = standalone")
	replicationFlag = flag.Int("replication", cluster.DefaultReplication, "cluster replica set size per key (owner + R-1 gossip replicas)")
	gossipFlag      = flag.Duration("gossip-interval", cluster.DefaultGossipInterval, "cluster probe + anti-entropy period")
	vnodesFlag      = flag.Int("vnodes", cluster.DefaultVNodes, "consistent-hash virtual nodes per member")
)

func main() {
	flag.Parse()
	log.SetPrefix("ccserved: ")
	log.SetFlags(log.LstdFlags)

	topo, err := topology.Parse(*topologyFlag)
	check(err)
	sched, err := schedule.ParseScheduler(*algFlag)
	check(err)
	classes, err := qos.ParseClasses(*qosFlag)
	check(err)

	svc, err := service.New(service.Config{
		Topology:        topo,
		Scheduler:       sched,
		Workers:         *workersFlag,
		QueueDepth:      *queueFlag,
		CacheEntries:    *cacheFlag,
		RetryAfter:      *retryFlag,
		QoS:             classes,
		EnablePprof:     *pprofFlag,
		StoreDir:        *storeDirFlag,
		StoreMaxEntries: *storeMaxFlag,
		StoreMaxAge:     *storeAgeFlag,
		DeltaBound:      *deltaBoundFlag,
		Reconfig:        core.ReconfigCost{PerSlot: *reconfigPerSlotFlag, Barrier: *reconfigBarrierFlag},
	})
	check(err)
	if *storeDirFlag != "" {
		log.Printf("schedule store at %s", *storeDirFlag)
	}
	for _, c := range classes {
		log.Printf("qos class %s", c)
	}

	var handler http.Handler = svc
	var node *cluster.Node
	if *peersFlag != "" {
		if *selfFlag == "" {
			check(errors.New("-peers requires -self (this node's advertised URL)"))
		}
		node, err = cluster.NewNode(svc, cluster.Config{
			Self:           *selfFlag,
			Peers:          strings.Split(*peersFlag, ","),
			Replication:    *replicationFlag,
			VNodes:         *vnodesFlag,
			GossipInterval: *gossipFlag,
			Logf:           log.Printf,
		})
		check(err)
		svc.SetPeers(node)
		handler = node
		node.Start()
		log.Printf("cluster mode: self=%s peers=%d replication=%d gossip=%s",
			node.Self(), len(strings.Split(*peersFlag, ",")), node.Replication(), *gossipFlag)
	}

	ln, err := net.Listen("tcp", *addrFlag)
	check(err)
	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	log.Printf("serving %s with %s on %s", topo.Name(), sched.Name(), ln.Addr())

	select {
	case err := <-done:
		check(err)
	case <-ctx.Done():
	}
	log.Printf("draining (up to %s)...", *drainFlag)
	if node != nil {
		// Advertise draining first so peers stop forwarding here, then stop
		// gossip; in-flight requests still finish below.
		node.SetDraining(true)
		node.Stop()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFlag)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	svc.Close()
	log.Print("drained, bye")
}

func check(err error) {
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "ccserved:", err)
		os.Exit(1)
	}
}

// Command cctables regenerates the scheduling-quality tables of the paper
// (Tables 1-4): multiplexing degrees of the greedy, coloring, ordered-AAPC
// and combined algorithms on random patterns, random data-redistribution
// patterns, and the frequently used patterns, plus the application pattern
// inventory. It also hosts the post-paper experiment sweeps that extend
// those tables to modern fabrics, currently the compiled-vs-dynamic
// crossover atlas. The data comes from internal/experiments; this command
// only renders it.
//
// Usage:
//
//	cctables -table 1 [-trials 100] [-seed 1996]
//	cctables -table 2 [-redists 500] [-seed 1996]
//	cctables -table 3
//	cctables -table 4
//	cctables -table all
//	cctables -experiment crossover
//	cctables -experiment crossover -topologies torus-8x8,dragonfly:4,8,2 -topk 2,4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	ccomm "repro"
	"repro/internal/apps"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/topology"
)

var (
	tableFlag      = flag.String("table", "all", "table to regenerate: 1, 2, 3, 4 or all")
	trialsFlag     = flag.Int("trials", 100, "random patterns per row in Table 1")
	redistsFlag    = flag.Int("redists", 500, "random redistributions in Table 2")
	seedFlag       = flag.Int64("seed", 1996, "random seed")
	spreadFlag     = flag.Bool("spread", false, "show mean±stddev in Table 1")
	workersFlag    = flag.Int("workers", 0, "trial worker pool size (0 = GOMAXPROCS); the numbers are identical for any value")
	experimentFlag = flag.String("experiment", "", "post-paper experiment to run instead of the tables: crossover")

	// Crossover-atlas knobs, used only with -experiment crossover.
	topologiesFlag = flag.String("topologies", "", "comma-separated topology specs for the atlas (default: the built-in 3-family grid)")
	topkFlag       = flag.String("topk", "", "comma-separated MoE top-k sparsity levels (default: 2,8)")
	flitsFlag      = flag.Int("flits", 0, "flits per selected expert in the MoE exchange (0 = default 4)")
	perSlotFlag    = flag.Int("reconfig-perslot", experiments.CrossoverReconfig.PerSlot, "compiled side's reconfiguration cost per TDM slot")
	barrierFlag    = flag.Int("reconfig-barrier", experiments.CrossoverReconfig.Barrier, "compiled side's reconfiguration barrier (slots)")
)

func main() {
	flag.Parse()
	if *experimentFlag != "" {
		switch *experimentFlag {
		case "crossover":
			crossover()
		default:
			fmt.Fprintf(os.Stderr, "cctables: unknown experiment %q (supported: crossover)\n", *experimentFlag)
			os.Exit(2)
		}
		return
	}
	torus := topology.NewTorus(8, 8)
	switch *tableFlag {
	case "1":
		table1(torus)
	case "2":
		table2(torus)
	case "3":
		table3(torus)
	case "4":
		table4()
	case "all":
		table1(torus)
		fmt.Println()
		table2(torus)
		fmt.Println()
		table3(torus)
		fmt.Println()
		table4()
	default:
		fmt.Fprintf(os.Stderr, "cctables: unknown table %q\n", *tableFlag)
		os.Exit(2)
	}
}

func header(w *tabwriter.Writer, first ...string) {
	for _, f := range first {
		fmt.Fprintf(w, "%s\t", f)
	}
	for _, name := range experiments.AlgorithmNames() {
		fmt.Fprintf(w, "%s\t", name)
	}
	fmt.Fprintln(w, "improvement\t")
}

func table1(torus *topology.Torus) {
	fmt.Printf("Table 1: multiplexing degree for random patterns (8x8 torus, %d patterns per row)\n", *trialsFlag)
	rows, err := experiments.Table1(torus, experiments.Table1Config{Trials: *trialsFlag, Seed: *seedFlag, Workers: *workersFlag})
	check(err)
	w := tabwriter.NewWriter(os.Stdout, 4, 0, 2, ' ', tabwriter.AlignRight)
	header(w, "conns")
	for _, r := range rows {
		if *spreadFlag {
			fmt.Fprintf(w, "%d\t%.1f±%.1f\t%.1f±%.1f\t%.1f±%.1f\t%.1f±%.1f\t%.1f%%\t\n",
				r.Conns,
				r.Spread[0].Mean, r.Spread[0].StdDev,
				r.Spread[1].Mean, r.Spread[1].StdDev,
				r.Spread[2].Mean, r.Spread[2].StdDev,
				r.Spread[3].Mean, r.Spread[3].StdDev,
				r.Improvement)
			continue
		}
		fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f%%\t\n",
			r.Conns, r.Degrees[0], r.Degrees[1], r.Degrees[2], r.Degrees[3], r.Improvement)
	}
	check(w.Flush())
}

func table2(torus *topology.Torus) {
	fmt.Println("Table 2: multiplexing degree for random data redistribution patterns")
	fmt.Printf("(64^3 array over 64 PEs, %d random redistributions)\n", *redistsFlag)
	rows, err := experiments.Table2(torus, experiments.Table2Config{Redistributions: *redistsFlag, Seed: *seedFlag, Workers: *workersFlag})
	check(err)
	w := tabwriter.NewWriter(os.Stdout, 4, 0, 2, ' ', tabwriter.AlignRight)
	header(w, "conns", "patterns")
	for _, r := range rows {
		label := fmt.Sprintf("%d-%d", r.Lo, r.Hi)
		if r.Lo == r.Hi {
			label = fmt.Sprintf("%d", r.Lo)
		}
		if r.Patterns == 0 {
			fmt.Fprintf(w, "%s\t0\t-\t-\t-\t-\t-\t\n", label)
			continue
		}
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f%%\t\n",
			label, r.Patterns, r.Degrees[0], r.Degrees[1], r.Degrees[2], r.Degrees[3], r.Improvement)
	}
	check(w.Flush())
}

// table3Rows recomputes Table 3 through the public batch compiler: every
// pattern of the table is compiled as an independent phase by
// ccomm.Compiler.CompileAll, one concurrent batch per algorithm column, so
// the sweep exercises the same parallel pipeline (schedule plus switch
// program lowering) that production phase compilation uses.
func table3Rows(torus *topology.Torus) ([]experiments.Table3Row, error) {
	entries, err := experiments.Table3Patterns(torus)
	if err != nil {
		return nil, err
	}
	sets := make([]ccomm.RequestSet, len(entries))
	for i, e := range entries {
		sets[i] = e.Set
	}
	algs := []ccomm.Algorithm{ccomm.Greedy, ccomm.Coloring, ccomm.AAPC, ccomm.Combined}
	rows := make([]experiments.Table3Row, len(entries))
	for i, e := range entries {
		rows[i] = experiments.Table3Row{Name: e.Name, Conns: len(e.Set), Degrees: make([]int, len(algs))}
	}
	for a, alg := range algs {
		phases, err := ccomm.Compiler{Topology: torus, Algorithm: alg}.CompileAll(sets)
		if err != nil {
			return nil, err
		}
		for i, ph := range phases {
			rows[i].Degrees[a] = ph.Degree()
		}
	}
	for i := range rows {
		rows[i].Improvement = experiments.Improvement(float64(rows[i].Degrees[0]), float64(rows[i].Degrees[3]))
	}
	return rows, nil
}

func table3(torus *topology.Torus) {
	fmt.Println("Table 3: multiplexing degree for frequently used patterns (8x8 torus)")
	rows, err := table3Rows(torus)
	check(err)
	w := tabwriter.NewWriter(os.Stdout, 4, 0, 2, ' ', tabwriter.AlignRight)
	header(w, "pattern", "conns")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%.1f%%\t\n",
			r.Name, r.Conns, r.Degrees[0], r.Degrees[1], r.Degrees[2], r.Degrees[3], r.Improvement)
	}
	check(w.Flush())
}

func table4() {
	fmt.Println("Table 4: application communication patterns")
	w := tabwriter.NewWriter(os.Stdout, 4, 0, 2, ' ', 0)
	fmt.Fprintln(w, "pattern\ttype\tconns\tdescription\t")
	gs, err := apps.GS(64, 64)
	check(err)
	fmt.Fprintf(w, "GS\tshared array ref.\t%d\t%s\t\n", len(gs.Messages), gs.Description)
	tscf, err := apps.TSCF(64)
	check(err)
	fmt.Fprintf(w, "TSCF\texplicit send/recv\t%d\t%s\t\n", len(tscf.Messages), tscf.Description)
	p3m, err := apps.P3M(32)
	check(err)
	kinds := []string{"data distrib.", "data distrib.", "data distrib.", "data distrib.", "shared array ref."}
	for i, ph := range p3m {
		fmt.Fprintf(w, "%s\t%s\t%d\t%s\t\n", ph.Name, kinds[i], len(ph.Messages), ph.Description)
	}
	check(w.Flush())
}

// crossover renders the compiled-vs-dynamic crossover atlas over modern
// fabrics (see internal/experiments/crossover.go for the economics).
func crossover() {
	cfg := experiments.CrossoverConfig{
		Flits:   *flitsFlag,
		Seed:    uint64(*seedFlag),
		Workers: *workersFlag,
	}
	if *topologiesFlag != "" {
		cfg.Topologies = strings.Split(*topologiesFlag, ",")
	}
	if *topkFlag != "" {
		topks, err := cliutil.ParseIntList(*topkFlag)
		usage(err)
		cfg.TopKs = topks
	}
	rc := core.ReconfigCost{PerSlot: *perSlotFlag, Barrier: *barrierFlag}
	cfg.Reconfig = &rc

	rows, err := experiments.Crossover(cfg)
	check(err)
	fmt.Printf("Crossover atlas: compiled vs dynamic slot totals for the MoE exchange (seed %d)\n", *seedFlag)
	fmt.Printf("reconfiguration cost: %d/slot + %d barrier; dynamic cut off at 2x the compiled total\n",
		rc.PerSlot, rc.Barrier)
	fmt.Print(experiments.FormatCrossoverTable(rows))
}

func usage(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cctables:", err)
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cctables:", err)
		os.Exit(1)
	}
}

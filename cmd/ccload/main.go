// Command ccload sweeps offered load with an open-loop random workload and
// prints mean message latency under three ways of serving traffic that is
// unknown at compile time:
//
//   - the compiled AAPC fallback (the paper's section 3.3 strategy: a
//     predetermined all-to-all configuration set gives every PE a slot to
//     every other PE, no runtime control at all),
//   - dynamic path reservation (forward locking, the section 4.1 protocol),
//   - dynamic path reservation with the backward (observe-then-lock)
//     variant.
//
// Usage:
//
//	ccload
//	ccload -flits 4 -messages 30 -degree 5 -gaps 3200,1600,800,400,200
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"

	"repro/internal/cliutil"
	"repro/internal/patterns"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/topology"
)

var (
	flitsFlag    = flag.Int("flits", 2, "message length in flits")
	messagesFlag = flag.Int("messages", 20, "messages injected per PE")
	degreeFlag   = flag.Int("degree", 10, "fixed multiplexing degree for dynamic control")
	gapsFlag     = flag.String("gaps", "3200,1600,800,400,200", "mean inter-arrival gaps (slots), heaviest last")
	seedFlag     = flag.Int64("seed", 2026, "workload seed")
)

func main() {
	flag.Parse()
	torus := topology.NewTorus(8, 8)
	fallback, err := schedule.OrderedAAPC{}.Schedule(torus, patterns.AllToAll(64))
	check(err)

	fmt.Printf("open-loop uniform traffic on the 8x8 torus: %d msgs/PE, %d flits each\n",
		*messagesFlag, *flitsFlag)
	fmt.Printf("compiled fallback degree %d; dynamic control fixed degree %d\n\n",
		fallback.Degree(), *degreeFlag)

	w := tabwriter.NewWriter(os.Stdout, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "mean gap\toffered load\taapc fallback\tdyn fwd\tdyn bwd\t")
	gaps, err := cliutil.ParseIntList(*gapsFlag)
	check(err)
	for _, gap := range gaps {
		rng := rand.New(rand.NewSource(*seedFlag))
		msgs, err := sim.OpenLoop(rng, sim.OpenLoopConfig{
			Nodes: 64, MessagesPerNode: *messagesFlag, Flits: *flitsFlag, MeanGap: gap,
		})
		check(err)
		// Offered load: flits per slot per PE.
		load := float64(*flitsFlag) / float64(gap)

		comp, err := sim.RunCompiled(fallback, msgs)
		check(err)
		compLat, err := sim.MeanLatency(msgs, comp.Finish)
		check(err)

		lat := func(scheme sim.ReservationScheme) float64 {
			p := sim.DefaultParams(*degreeFlag)
			p.Reservation = scheme
			out, err := sim.Dynamic{Topology: torus, Params: p}.Run(msgs)
			check(err)
			if out.TimedOut {
				return -1
			}
			l, err := sim.MeanLatency(msgs, out.Finish)
			check(err)
			return l
		}
		fwd := lat(sim.LockForward)
		bwd := lat(sim.LockBackward)
		fmt.Fprintf(w, "%d\t%.4f\t%.1f\t%s\t%s\t\n", gap, load, compLat, cell(fwd), cell(bwd))
	}
	check(w.Flush())
	fmt.Println("\nlatency in slots per message; the compiled fallback pays a constant")
	fmt.Println("frame latency while reservation latency grows with offered load")
}

func cell(v float64) string {
	if v < 0 {
		return "saturated"
	}
	return fmt.Sprintf("%.1f", v)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccload:", err)
		os.Exit(1)
	}
}

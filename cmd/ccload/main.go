// Command ccload drives load at the compiled-communication stack, in one of
// two modes.
//
// Sweep mode (default) sweeps offered load with an open-loop random workload
// and prints mean message latency under three ways of serving traffic that
// is unknown at compile time:
//
//   - the compiled AAPC fallback (the paper's section 3.3 strategy: a
//     predetermined all-to-all configuration set gives every PE a slot to
//     every other PE, no runtime control at all),
//   - dynamic path reservation (forward locking, the section 4.1 protocol),
//   - dynamic path reservation with the backward (observe-then-lock)
//     variant.
//
// Stress mode (-server URL) is an open-loop HTTP driver for a ccserved
// daemon: it posts trace documents at a fixed rate, cycling through a
// configurable number of distinct programs (distinct cache keys), and
// reports latency percentiles, cache-state counts and 429 rejections.
//
// Phases mode (-server URL -phases) replays the multi-phase trace through
// the streaming /session endpoint instead of per-phase /compile calls: each
// request is one whole program iteration, the driver reads phase chunks as
// they arrive, and the report shows the keep/patch/recompile decision mix,
// the overlapped vs serialized vs independent-compile slot totals from the
// trailer, time-to-first-phase (the streaming head start), and how many
// compiles the daemon ran pipelined behind the stream.
//
// Cluster stress mode (-servers URL,URL,...) drives a federated ccserved
// cluster instead of a single daemon: requests rotate round-robin across
// the roster, a node that fails retryably (transport error, 5xx, 429) is
// skipped for that request in favor of the next replica, and the report
// adds the per-node serve distribution plus peer-forward and store cache
// states. Every per-request error line names the node and endpoint that
// produced it.
//
// Multi-tenant stress mode (-tenants SPEC) runs several independent open
// loops at once, each billed to one QoS class via the X-Ccomm-Tenant
// header and minting keys in its own namespace, and breaks the report down
// per tenant (p50/p99, cache mix, 429s). This is the driver for isolation
// experiments: a flooder class at several times the victim's rate, then
// compare the victim's percentiles against its solo baseline. A single
// -tenant NAME tags every request of an ordinary stress run instead.
//
// Usage:
//
//	ccload
//	ccload -flits 4 -messages 30 -degree 5 -gaps 3200,1600,800,400,200 -json
//	ccload -server http://localhost:8080 -requests 200 -rate 100 -distinct 8 -verify
//	ccload -server http://localhost:8080 -phases -requests 50 -rate 20 -verify
//	ccload -servers http://localhost:8080,http://localhost:8081,http://localhost:8082 -requests 300 -verify
//	ccload -server http://localhost:8080 -tenants "gold:rate=100,requests=200,distinct=8;bronze:rate=25,requests=50,distinct=4"
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/apps"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/patterns"
	"repro/internal/schedule"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
)

var (
	flitsFlag    = flag.Int("flits", 2, "message length in flits")
	messagesFlag = flag.Int("messages", 20, "messages injected per PE")
	degreeFlag   = flag.Int("degree", 10, "fixed multiplexing degree for dynamic control")
	gapsFlag     = flag.String("gaps", "3200,1600,800,400,200", "mean inter-arrival gaps (slots), heaviest last")
	seedFlag     = flag.Int64("seed", 2026, "workload seed")
	jsonFlag     = flag.Bool("json", false, "emit results as JSON instead of a table")
	topoFlag     = flag.String("topology", "torus-8x8", "sweep mode: fabric to load, e.g. torus-8x8, dragonfly:8,16,4, fattree:8")

	serverFlag   = flag.String("server", "", "stress mode: base URL of a ccserved daemon")
	serversFlag  = flag.String("servers", "", "cluster stress mode: comma-separated base URLs of ccserved cluster members; rotates with retry-on-next-replica")
	phasesFlag   = flag.Bool("phases", false, "with -server: replay the multi-phase trace through /session")
	requestsFlag = flag.Int("requests", 100, "stress mode: total requests to send")
	rateFlag     = flag.Float64("rate", 50, "stress mode: offered request rate per second")
	distinctFlag = flag.Int("distinct", 4, "stress mode: distinct programs (cache keys) to cycle through")
	traceFlag    = flag.String("trace", "", "stress mode: trace file to post (default: built-in p3m-32 on 64 PEs)")
	verifyFlag   = flag.Bool("verify", false, "stress mode: validate every returned schedule client-side")
	tenantFlag   = flag.String("tenant", "", "stress mode: QoS class to bill every request to (X-Ccomm-Tenant header)")
	tenantsFlag  = flag.String("tenants", "", "multi-tenant stress mode: per-tenant streams, e.g. \"gold:rate=100,requests=200,distinct=8;bronze:rate=25,requests=50\" (unset options inherit -rate/-requests/-distinct)")
)

func main() {
	flag.Parse()
	if *serverFlag != "" || *serversFlag != "" {
		if *phasesFlag {
			if *serverFlag == "" {
				check(errors.New("-phases needs -server (sessions are sticky to one node)"))
			}
			replayPhases()
		} else {
			stress()
		}
		return
	}
	sweep()
}

// sweepPoint is one row of the sweep: one mean inter-arrival gap.
type sweepPoint struct {
	MeanGap     int     `json:"mean_gap"`
	OfferedLoad float64 `json:"offered_load"`
	// Latencies are mean slots per message; negative means the scheme
	// saturated (simulation timed out).
	AAPCFallback    float64 `json:"aapc_fallback"`
	DynamicForward  float64 `json:"dynamic_forward"`
	DynamicBackward float64 `json:"dynamic_backward"`
}

func sweep() {
	topo, err := topology.Parse(*topoFlag)
	check(err)
	nodes := network.TerminalCount(topo)
	fallback, err := schedule.OrderedAAPC{}.Schedule(topo, patterns.AllToAll(nodes))
	check(err)

	gaps, err := cliutil.ParseIntList(*gapsFlag)
	check(err)
	var points []sweepPoint
	for _, gap := range gaps {
		rng := rand.New(rand.NewSource(*seedFlag))
		msgs, err := sim.OpenLoop(rng, sim.OpenLoopConfig{
			Nodes: nodes, MessagesPerNode: *messagesFlag, Flits: *flitsFlag, MeanGap: gap,
		})
		check(err)

		comp, err := sim.RunCompiled(fallback, msgs)
		check(err)
		compLat, err := sim.MeanLatency(msgs, comp.Finish)
		check(err)

		lat := func(scheme sim.ReservationScheme) float64 {
			p := sim.DefaultParams(*degreeFlag)
			p.Reservation = scheme
			out, err := sim.Dynamic{Topology: topo, Params: p}.Run(msgs)
			check(err)
			if out.TimedOut {
				return -1
			}
			l, err := sim.MeanLatency(msgs, out.Finish)
			check(err)
			return l
		}
		points = append(points, sweepPoint{
			MeanGap: gap,
			// Offered load: flits per slot per PE.
			OfferedLoad:     float64(*flitsFlag) / float64(gap),
			AAPCFallback:    compLat,
			DynamicForward:  lat(sim.LockForward),
			DynamicBackward: lat(sim.LockBackward),
		})
	}

	if *jsonFlag {
		out := struct {
			Topology        string       `json:"topology"`
			MessagesPerPE   int          `json:"messages_per_pe"`
			Flits           int          `json:"flits"`
			FallbackDegree  int          `json:"fallback_degree"`
			DynamicDegree   int          `json:"dynamic_degree"`
			Seed            int64        `json:"seed"`
			Points          []sweepPoint `json:"points"`
			SaturatedMarker float64      `json:"saturated_marker"`
		}{
			Topology: topo.Name(), MessagesPerPE: *messagesFlag, Flits: *flitsFlag,
			FallbackDegree: fallback.Degree(), DynamicDegree: *degreeFlag, Seed: *seedFlag,
			Points: points, SaturatedMarker: -1,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		check(enc.Encode(out))
		return
	}

	fmt.Printf("open-loop uniform traffic on %s: %d msgs/PE, %d flits each\n",
		topo.Name(), *messagesFlag, *flitsFlag)
	fmt.Printf("compiled fallback degree %d; dynamic control fixed degree %d\n\n",
		fallback.Degree(), *degreeFlag)
	w := tabwriter.NewWriter(os.Stdout, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "mean gap\toffered load\taapc fallback\tdyn fwd\tdyn bwd\t")
	for _, p := range points {
		fmt.Fprintf(w, "%d\t%.4f\t%.1f\t%s\t%s\t\n",
			p.MeanGap, p.OfferedLoad, p.AAPCFallback, cell(p.DynamicForward), cell(p.DynamicBackward))
	}
	check(w.Flush())
	fmt.Println("\nlatency in slots per message; the compiled fallback pays a constant")
	fmt.Println("frame latency while reservation latency grows with offered load")
}

// stressReport is the stress driver's result document.
type stressReport struct {
	Server      string  `json:"server"`
	Requests    int     `json:"requests"`
	Distinct    int     `json:"distinct"`
	RatePerSec  float64 `json:"rate_per_sec"`
	DurationSec float64 `json:"duration_sec"`

	OK        int `json:"ok"`
	Misses    int `json:"misses"`
	Hits      int `json:"hits"`
	Coalesced int `json:"coalesced"`
	StoreHits int `json:"store_hits,omitempty"`
	PeerHits  int `json:"peer_hits,omitempty"`
	Rejected  int `json:"rejected"` // 429s
	Errors    int `json:"errors"`
	Verified  int `json:"verified,omitempty"`

	// Nodes is the per-node count of successfully served requests — in
	// cluster mode it shows how the roster shared the load.
	Nodes map[string]int `json:"nodes,omitempty"`

	// Tenant tags a single-tenant run (-tenant); Tenants is the per-class
	// breakdown of a multi-tenant run (-tenants), in spec order.
	Tenant  string        `json:"tenant,omitempty"`
	Tenants []tenantStats `json:"tenants,omitempty"`

	LatencyUsMean float64 `json:"latency_us_mean"`
	LatencyUsP50  int     `json:"latency_us_p50"`
	LatencyUsP95  int     `json:"latency_us_p95"`
	LatencyUsP99  int     `json:"latency_us_p99"`
	LatencyUsMax  int     `json:"latency_us_max"`
}

// tenantStats is one tenant's slice of a multi-tenant stress run.
type tenantStats struct {
	Tenant     string  `json:"tenant"`
	Requests   int     `json:"requests"`
	RatePerSec float64 `json:"rate_per_sec"`

	OK        int `json:"ok"`
	Misses    int `json:"misses"`
	Hits      int `json:"hits"`
	Coalesced int `json:"coalesced"`
	StoreHits int `json:"store_hits,omitempty"`
	PeerHits  int `json:"peer_hits,omitempty"`
	Rejected  int `json:"rejected"`
	Errors    int `json:"errors"`

	LatencyUsMean float64 `json:"latency_us_mean"`
	LatencyUsP50  int     `json:"latency_us_p50"`
	LatencyUsP99  int     `json:"latency_us_p99"`
	LatencyUsMax  int     `json:"latency_us_max"`
}

// tenantSpec is one -tenants stream: an independent open loop billed to one
// QoS class, with its own rate, request count and key namespace.
type tenantSpec struct {
	Name     string
	Rate     float64
	Requests int
	Distinct int
}

// parseTenantSpecs parses "gold:rate=100,requests=200,distinct=8;bronze"
// — per-tenant options default to the global -rate/-requests/-distinct.
func parseTenantSpecs(spec string) ([]tenantSpec, error) {
	var out []tenantSpec
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ts := tenantSpec{Rate: *rateFlag, Requests: *requestsFlag, Distinct: *distinctFlag}
		head, rest, _ := strings.Cut(part, ":")
		ts.Name = strings.TrimSpace(head)
		if ts.Name == "" {
			return nil, fmt.Errorf("tenant spec %q: empty tenant name", part)
		}
		if seen[ts.Name] {
			return nil, fmt.Errorf("tenant %q listed twice", ts.Name)
		}
		seen[ts.Name] = true
		if rest != "" {
			for _, kv := range strings.Split(rest, ",") {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("tenant %q: option %q is not key=value", ts.Name, kv)
				}
				k, v = strings.TrimSpace(k), strings.TrimSpace(v)
				switch k {
				case "rate":
					f, err := strconv.ParseFloat(v, 64)
					if err != nil || f <= 0 {
						return nil, fmt.Errorf("tenant %q: bad rate %q", ts.Name, v)
					}
					ts.Rate = f
				case "requests":
					n, err := strconv.Atoi(v)
					if err != nil || n <= 0 {
						return nil, fmt.Errorf("tenant %q: bad requests %q", ts.Name, v)
					}
					ts.Requests = n
				case "distinct":
					n, err := strconv.Atoi(v)
					if err != nil || n <= 0 {
						return nil, fmt.Errorf("tenant %q: bad distinct %q", ts.Name, v)
					}
					ts.Distinct = n
				default:
					return nil, fmt.Errorf("tenant %q: unknown option %q", ts.Name, k)
				}
			}
		}
		out = append(out, ts)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-tenants %q names no tenants", spec)
	}
	return out, nil
}

func stress() {
	// One stream per tenant; an ordinary run is the degenerate single
	// stream (optionally tagged by -tenant).
	specs := []tenantSpec{{Name: *tenantFlag, Rate: *rateFlag, Requests: *requestsFlag, Distinct: *distinctFlag}}
	if *tenantsFlag != "" {
		var err error
		specs, err = parseTenantSpecs(*tenantsFlag)
		check(err)
	}
	base := stressDoc()

	// One dispatch signature for both modes: compile the document, report
	// which node answered (or was last tried, on failure). Cluster mode
	// pins request i to start at node i mod N — a deterministic round-robin
	// that survives goroutine scheduling, so a run's node pairing (and with
	// it the compile placement) is reproducible.
	target := *serverFlag
	do := func(ctx context.Context, i int, doc trace.Document, tenant string) (*service.Response, *service.Result, string, error) {
		resp, res, err := (&client.Client{BaseURL: *serverFlag}).Compile(ctx, doc, client.Options{Tenant: tenant})
		return resp, res, *serverFlag, err
	}
	if *serversFlag != "" {
		cc := &client.Cluster{Nodes: strings.Split(*serversFlag, ",")}
		target = *serversFlag
		do = func(ctx context.Context, i int, doc trace.Document, tenant string) (*service.Response, *service.Result, string, error) {
			return cc.CompileFrom(ctx, i, doc, client.Options{Tenant: tenant})
		}
	}

	type outcome struct {
		state     string // cache state, "" on failure
		node      string // node that served (or last failed)
		rejected  bool
		err       error
		latencyUs int
		verifyErr error
	}
	streams := make([][]outcome, len(specs))
	var wg sync.WaitGroup
	start := time.Now()
	for si, ts := range specs {
		// D distinct programs per tenant: the name participates in the
		// content hash, so renaming the document is the cheapest way to mint
		// distinct cache keys with identical compile cost — and prefixing the
		// tenant keeps each stream in its own key namespace, so tenants never
		// share artifacts and isolation claims are about scheduling and
		// partitions, not cache luck.
		docs := make([]trace.Document, ts.Distinct)
		for i := range docs {
			docs[i] = base
			if ts.Name == "" {
				docs[i].Name = fmt.Sprintf("%s/stress-%d", base.Name, i)
			} else {
				docs[i].Name = fmt.Sprintf("%s/%s-%d", base.Name, ts.Name, i)
			}
		}
		streams[si] = make([]outcome, ts.Requests)
		wg.Add(1)
		go func(ts tenantSpec, docs []trace.Document, outcomes []outcome) {
			defer wg.Done()
			ticker := time.NewTicker(time.Duration(float64(time.Second) / ts.Rate))
			defer ticker.Stop()
			var inner sync.WaitGroup
			for i := 0; i < ts.Requests; i++ {
				if i > 0 {
					<-ticker.C // open loop: fire on schedule, never wait for replies
				}
				inner.Add(1)
				go func(i int) {
					defer inner.Done()
					doc := docs[i%len(docs)]
					t0 := time.Now()
					resp, res, node, err := do(context.Background(), i, doc, ts.Name)
					outcomes[i].latencyUs = int(time.Since(t0).Microseconds())
					outcomes[i].node = node
					if err != nil {
						var he *client.HTTPError
						if errors.As(err, &he) && he.IsOverloaded() {
							outcomes[i].rejected = true
						} else {
							outcomes[i].err = err
						}
						return
					}
					outcomes[i].state = resp.Cache
					if *verifyFlag {
						outcomes[i].verifyErr = client.Verify(doc, res)
					}
				}(i)
			}
			inner.Wait()
		}(ts, docs, streams[si])
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := stressReport{
		Server: target, Distinct: *distinctFlag,
		DurationSec: elapsed.Seconds(),
		Nodes:       map[string]int{},
		Tenant:      *tenantFlag,
	}
	var latencies []int
	for si, ts := range specs {
		tr := tenantStats{Tenant: ts.Name, Requests: ts.Requests, RatePerSec: ts.Rate}
		rep.Requests += ts.Requests
		rep.RatePerSec += ts.Rate
		var tenantLat []int
		for _, o := range streams[si] {
			switch {
			case o.rejected:
				tr.Rejected++
			case o.err != nil:
				tr.Errors++
				if ts.Name != "" {
					fmt.Fprintf(os.Stderr, "ccload: tenant=%s %s /compile: %v\n", ts.Name, o.node, o.err)
				} else {
					fmt.Fprintf(os.Stderr, "ccload: %s /compile: %v\n", o.node, o.err)
				}
			default:
				tr.OK++
				rep.Nodes[o.node]++
				tenantLat = append(tenantLat, o.latencyUs)
				switch o.state {
				case service.CacheMiss:
					tr.Misses++
				case service.CacheHit:
					tr.Hits++
				case service.CacheCoalesced:
					tr.Coalesced++
				case service.CacheStore:
					tr.StoreHits++
				case service.CachePeer:
					tr.PeerHits++
				}
				if *verifyFlag {
					if o.verifyErr != nil {
						check(fmt.Errorf("schedule failed client-side validation: %w", o.verifyErr))
					}
					rep.Verified++
				}
			}
		}
		if len(tenantLat) > 0 {
			s := stats.Summarize(tenantLat)
			tr.LatencyUsMean = s.Mean
			tr.LatencyUsMax = s.Max
			tr.LatencyUsP50 = stats.Percentile(tenantLat, 50)
			tr.LatencyUsP99 = stats.Percentile(tenantLat, 99)
		}
		rep.OK += tr.OK
		rep.Misses += tr.Misses
		rep.Hits += tr.Hits
		rep.Coalesced += tr.Coalesced
		rep.StoreHits += tr.StoreHits
		rep.PeerHits += tr.PeerHits
		rep.Rejected += tr.Rejected
		rep.Errors += tr.Errors
		latencies = append(latencies, tenantLat...)
		if *tenantsFlag != "" {
			rep.Tenants = append(rep.Tenants, tr)
		}
	}
	if len(latencies) > 0 {
		s := stats.Summarize(latencies)
		rep.LatencyUsMean = s.Mean
		rep.LatencyUsMax = s.Max
		rep.LatencyUsP50 = stats.Percentile(latencies, 50)
		rep.LatencyUsP95 = stats.Percentile(latencies, 95)
		rep.LatencyUsP99 = stats.Percentile(latencies, 99)
	}
	if rep.Errors > 0 {
		defer os.Exit(1)
	}

	if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		check(enc.Encode(rep))
		return
	}
	fmt.Printf("%d requests to %s at %.0f/s over %.2fs (%d distinct programs)\n",
		rep.Requests, rep.Server, rep.RatePerSec, rep.DurationSec, rep.Distinct)
	fmt.Printf("  ok %d (miss %d, hit %d, coalesced %d, store %d, peer %d)   429 %d   errors %d\n",
		rep.OK, rep.Misses, rep.Hits, rep.Coalesced, rep.StoreHits, rep.PeerHits, rep.Rejected, rep.Errors)
	for _, tr := range rep.Tenants {
		fmt.Printf("  tenant %s: %d req at %.0f/s  ok %d (miss %d, hit %d)  429 %d  errors %d  latency µs: mean %.0f  p50 %d  p99 %d\n",
			tr.Tenant, tr.Requests, tr.RatePerSec, tr.OK, tr.Misses, tr.Hits,
			tr.Rejected, tr.Errors, tr.LatencyUsMean, tr.LatencyUsP50, tr.LatencyUsP99)
	}
	if *serversFlag != "" {
		nodes := make([]string, 0, len(rep.Nodes))
		for n := range rep.Nodes {
			nodes = append(nodes, n)
		}
		sort.Strings(nodes)
		fmt.Print("  served by:")
		for _, n := range nodes {
			fmt.Printf("  %s %d", n, rep.Nodes[n])
		}
		fmt.Println()
	}
	if *verifyFlag {
		fmt.Printf("  verified %d schedules client-side\n", rep.Verified)
	}
	if len(latencies) > 0 {
		fmt.Printf("  latency µs: mean %.0f  p50 %d  p95 %d  p99 %d  max %d\n",
			rep.LatencyUsMean, rep.LatencyUsP50, rep.LatencyUsP95, rep.LatencyUsP99, rep.LatencyUsMax)
	}
}

// phasesReport is the phases-mode result document: one row per replayed
// program iteration is collapsed into latency percentiles, and the
// model-level numbers (decision mix, slot totals) come from the trailer of
// the last successful session — they are a property of the trace, identical
// across iterations, which the driver asserts.
type phasesReport struct {
	Server      string  `json:"server"`
	Sessions    int     `json:"sessions"`
	Phases      int     `json:"phases"`
	Distinct    int     `json:"distinct"`
	RatePerSec  float64 `json:"rate_per_sec"`
	DurationSec float64 `json:"duration_sec"`

	OK       int `json:"ok"`
	Errors   int `json:"errors"`
	Verified int `json:"verified,omitempty"`

	Decisions         map[string]int `json:"decisions"`
	TotalSlots        int            `json:"total_slots"`
	SerializedSlots   int            `json:"serialized_slots"`
	BaselineSlots     int            `json:"baseline_slots"`
	PipelinedCompiles uint64         `json:"pipelined_compiles"`

	LatencyUsMean    float64 `json:"latency_us_mean"`
	LatencyUsP50     int     `json:"latency_us_p50"`
	LatencyUsP95     int     `json:"latency_us_p95"`
	LatencyUsMax     int     `json:"latency_us_max"`
	FirstPhaseUsMean float64 `json:"first_phase_us_mean"`
}

func replayPhases() {
	doc := stressDoc()
	docs := make([]trace.Document, *distinctFlag)
	for i := range docs {
		docs[i] = doc
		docs[i].Name = fmt.Sprintf("%s/replay-%d", doc.Name, i)
	}

	c := &client.Client{BaseURL: *serverFlag}
	before, err := c.Metrics(context.Background())
	check(err)

	type outcome struct {
		res          *client.SessionResult
		err          error
		latencyUs    int
		firstPhaseUs int
	}
	outcomes := make([]outcome, *requestsFlag)
	interval := time.Duration(float64(time.Second) / *rateFlag)
	var wg sync.WaitGroup
	start := time.Now()
	ticker := time.NewTicker(interval)
	for i := 0; i < *requestsFlag; i++ {
		if i > 0 {
			<-ticker.C
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			first := false
			res, err := c.Session(context.Background(), docs[i%len(docs)], client.Options{Tenant: *tenantFlag},
				func(service.SessionChunk) {
					if !first {
						outcomes[i].firstPhaseUs = int(time.Since(t0).Microseconds())
						first = true
					}
				})
			outcomes[i].latencyUs = int(time.Since(t0).Microseconds())
			outcomes[i].res, outcomes[i].err = res, err
		}(i)
	}
	wg.Wait()
	ticker.Stop()
	elapsed := time.Since(start)

	after, err := c.Metrics(context.Background())
	check(err)

	rep := phasesReport{
		Server: *serverFlag, Sessions: *requestsFlag, Phases: len(doc.Phases),
		Distinct: *distinctFlag, RatePerSec: *rateFlag, DurationSec: elapsed.Seconds(),
		PipelinedCompiles: after.Session.PipelinedCompiles - before.Session.PipelinedCompiles,
	}
	var latencies, firsts []int
	for i, o := range outcomes {
		if o.err != nil {
			rep.Errors++
			if *tenantFlag != "" {
				fmt.Fprintf(os.Stderr, "ccload: tenant=%s %s /session: %v\n", *tenantFlag, *serverFlag, o.err)
			} else {
				fmt.Fprintf(os.Stderr, "ccload: %s /session: %v\n", *serverFlag, o.err)
			}
			continue
		}
		rep.OK++
		latencies = append(latencies, o.latencyUs)
		firsts = append(firsts, o.firstPhaseUs)
		rep.Decisions = o.res.Decisions()
		rep.TotalSlots = o.res.Trailer.TotalSlots
		rep.SerializedSlots = o.res.Trailer.SerializedSlots
		rep.BaselineSlots = o.res.Trailer.BaselineSlots
		if *verifyFlag {
			if err := client.VerifySession(docs[i%len(docs)], o.res); err != nil {
				check(fmt.Errorf("session failed client-side validation: %w", err))
			}
			rep.Verified++
		}
	}
	if len(latencies) > 0 {
		rep.LatencyUsMean = stats.Summarize(latencies).Mean
		rep.LatencyUsMax = stats.Summarize(latencies).Max
		rep.LatencyUsP50 = stats.Percentile(latencies, 50)
		rep.LatencyUsP95 = stats.Percentile(latencies, 95)
		rep.FirstPhaseUsMean = stats.Summarize(firsts).Mean
	}
	if rep.Errors > 0 {
		defer os.Exit(1)
	}

	if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		check(enc.Encode(rep))
		return
	}
	fmt.Printf("%d session replays of %q (%d phases) to %s at %.0f/s over %.2fs\n",
		rep.Sessions, doc.Name, rep.Phases, rep.Server, rep.RatePerSec, rep.DurationSec)
	fmt.Printf("  ok %d   errors %d   decisions %v\n", rep.OK, rep.Errors, rep.Decisions)
	fmt.Printf("  iteration slots: overlapped %d, serialized %d, independent compiles %d\n",
		rep.TotalSlots, rep.SerializedSlots, rep.BaselineSlots)
	fmt.Printf("  daemon ran %d compiles pipelined behind the stream\n", rep.PipelinedCompiles)
	if *verifyFlag {
		fmt.Printf("  verified %d sessions client-side\n", rep.Verified)
	}
	if len(latencies) > 0 {
		fmt.Printf("  latency µs: mean %.0f  p50 %d  p95 %d  max %d   first phase mean %.0f\n",
			rep.LatencyUsMean, rep.LatencyUsP50, rep.LatencyUsP95, rep.LatencyUsMax, rep.FirstPhaseUsMean)
	}
}

// stressDoc loads -trace, or builds the p3m-32 workload on 64 PEs — the
// same document `ccrun -emit p3m32` writes.
func stressDoc() trace.Document {
	if *traceFlag != "" {
		f, err := os.Open(*traceFlag)
		check(err)
		defer f.Close()
		doc, err := trace.Read(f)
		check(err)
		return doc
	}
	phases, err := apps.P3M(32)
	check(err)
	prog := core.Program{Name: "p3m-32"}
	for _, ph := range phases {
		prog.Phases = append(prog.Phases, core.Phase{Name: ph.Name, Messages: ph.Messages})
	}
	return trace.FromProgram(prog, 64)
}

func cell(v float64) string {
	if v < 0 {
		return "saturated"
	}
	return fmt.Sprintf("%.1f", v)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccload:", err)
		os.Exit(1)
	}
}

// Command ccviz renders a compiled schedule as text: per-slot occupancy
// bars, a per-slot map of the torus showing which switches carry circuits,
// and the schedule's utilization metrics. Useful for eyeballing what the
// heuristics actually produce. Any -topology spec works; the per-slot
// switch map is drawn only for 2D tori, other fabrics get the occupancy
// bars and metrics.
//
// Usage:
//
//	ccviz -pattern hypercube
//	ccviz -pattern random -n 300 -alg coloring -slots 0,1,2
//	ccviz -topology dragonfly:8,16,4 -pattern ring
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/network"
	"repro/internal/patterns"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/topology"
)

var (
	patternFlag = flag.String("pattern", "hypercube", "pattern: ring, nn2d, hypercube, shuffle, alltoall, random")
	nFlag       = flag.Int("n", 200, "connections for -pattern random")
	seedFlag    = flag.Int64("seed", 1996, "seed for -pattern random")
	algFlag     = flag.String("alg", "combined", "algorithm: greedy, coloring, aapc, combined")
	slotsFlag   = flag.String("slots", "", "comma-separated slot indices to map on the torus (default: first 2)")
	topoFlag    = flag.String("topology", "torus-8x8", "fabric to schedule on, e.g. torus-8x8, dragonfly:8,16,4, fattree:8")
)

func main() {
	flag.Parse()
	topo, err := topology.Parse(*topoFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccviz: %v\n", err)
		os.Exit(2)
	}
	set := buildPattern(network.TerminalCount(topo))
	sched := buildScheduler()
	res, err := sched.Schedule(topo, set)
	check(err)
	m, err := schedule.ComputeMetrics(res)
	check(err)

	fmt.Printf("%s on %s via %s\n", *patternFlag, topo.Name(), res.Algorithm)
	fmt.Println(m)
	fmt.Println()

	// Occupancy bars, widest slot = 60 chars.
	max := 0
	for _, o := range m.SlotOccupancy {
		if o > max {
			max = o
		}
	}
	fmt.Println("slot occupancy (connections per TDM slot):")
	for k, o := range m.SlotOccupancy {
		bar := strings.Repeat("#", o*60/maxi(max, 1))
		fmt.Printf("  %2d |%-60s| %d\n", k, bar, o)
	}

	// Per-slot switch maps are a 2D-grid rendering; other fabrics stop at
	// the occupancy bars.
	torus, isTorus := topo.(*topology.Torus)
	if !isTorus {
		fmt.Printf("\n(per-slot switch maps are drawn for 2D tori only; %s has no grid rendering)\n", topo.Name())
		return
	}
	var slots []int
	if *slotsFlag == "" {
		slots = []int{0}
		if res.Degree() > 1 {
			slots = append(slots, 1)
		}
	} else {
		parsed, err := cliutil.ParseIntList(*slotsFlag)
		check(err)
		for _, v := range parsed {
			if v < 0 || v >= res.Degree() {
				fmt.Fprintf(os.Stderr, "ccviz: slot %d outside degree %d\n", v, res.Degree())
				os.Exit(2)
			}
		}
		slots = parsed
	}
	for _, k := range slots {
		fmt.Printf("\nslot %d: S = circuit source, D = destination, * = both, + = transit only, . = idle\n", k)
		printSlotMap(torus, res, k)
	}
}

// printSlotMap draws the 8x8 grid annotating each switch's role in the
// slot's configuration.
func printSlotMap(torus *topology.Torus, res *schedule.Result, slot int) {
	role := map[network.NodeID]byte{}
	mark := func(n network.NodeID, r byte) {
		cur, ok := role[n]
		switch {
		case !ok:
			role[n] = r
		case cur != r && (r == 'S' || r == 'D') && (cur == 'S' || cur == 'D'):
			role[n] = '*'
		case cur == '+' && (r == 'S' || r == 'D'):
			role[n] = r
		}
	}
	for _, req := range res.Configs[slot] {
		p, err := torus.Route(req.Src, req.Dst)
		check(err)
		mark(req.Src, 'S')
		mark(req.Dst, 'D')
		for _, l := range p.Links {
			li := torus.Link(l)
			if li.To != req.Dst {
				mark(li.To, '+')
			}
		}
	}
	for r := 0; r < torus.H; r++ {
		fmt.Print("  ")
		for c := 0; c < torus.W; c++ {
			ch, ok := role[torus.Node(r, c)]
			if !ok {
				ch = '.'
			}
			fmt.Printf("%c ", ch)
		}
		fmt.Println()
	}
}

func buildPattern(nodes int) request.Set {
	switch *patternFlag {
	case "ring":
		return patterns.Ring(nodes)
	case "nn2d":
		side := 1
		for side*side < nodes {
			side++
		}
		return patterns.NearestNeighbor2D(side, nodes/side)
	case "hypercube":
		set, err := patterns.Hypercube(nodes)
		check(err)
		return set
	case "shuffle":
		set, err := patterns.ShuffleExchange(nodes)
		check(err)
		return set
	case "alltoall":
		return patterns.AllToAll(nodes)
	case "random":
		set, err := patterns.Random(rand.New(rand.NewSource(*seedFlag)), nodes, *nFlag)
		check(err)
		return set
	default:
		fmt.Fprintf(os.Stderr, "ccviz: unknown pattern %q\n", *patternFlag)
		os.Exit(2)
		return nil
	}
}

func buildScheduler() schedule.Scheduler {
	sch, err := schedule.ParseScheduler(*algFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccviz: %v\n", err)
		os.Exit(2)
	}
	return sch
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccviz:", err)
		os.Exit(1)
	}
}

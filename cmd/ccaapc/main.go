// Command ccaapc inspects the all-to-all (AAPC) decomposition of a torus:
// the contention-free phase set that bounds the ordered-AAPC scheduler and
// serves as the predetermined configuration set for dynamic patterns. It
// verifies the decomposition, reports phase statistics against the paper's
// N^3/8 bound, and can print the per-dimension ring Latin square the tight
// construction is built from.
//
// Usage:
//
//	ccaapc                 # the paper's 8x8 torus
//	ccaapc -w 4 -h 4
//	ccaapc -latin          # also print the ring Latin square
//	ccaapc -phases         # also print every phase
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/aapc"
	"repro/internal/network"
	"repro/internal/topology"
)

var (
	wFlag      = flag.Int("w", 8, "torus width")
	hFlag      = flag.Int("h", 8, "torus height")
	latinFlag  = flag.Bool("latin", false, "print the ring Latin squares")
	phasesFlag = flag.Bool("phases", false, "print every phase's connections")
)

func main() {
	flag.Parse()
	torus := topology.NewTorus(*wFlag, *hFlag)
	set, err := aapc.Decompose(torus)
	check(err)
	check(set.Validate())

	n := torus.NumNodes()
	pairs := n * (n - 1)
	linkBound := linkLoadBound(torus)
	paperBound := *wFlag * *hFlag * maxInt(*wFlag, *hFlag) / 8

	fmt.Printf("topology:        %s (%d PEs, %d directed links)\n", torus.Name(), n, torus.NumLinks())
	fmt.Printf("all-to-all:      %d connections\n", pairs)
	fmt.Printf("phases:          %d\n", set.NumPhases())
	fmt.Printf("link-load bound: %d   paper bound N^3/8: %d\n", linkBound, paperBound)

	min, max, sum := pairs, 0, 0
	for _, ph := range set.Phases {
		if len(ph) < min {
			min = len(ph)
		}
		if len(ph) > max {
			max = len(ph)
		}
		sum += len(ph)
	}
	fmt.Printf("phase size:      min %d, max %d, mean %.1f\n", min, max, float64(sum)/float64(set.NumPhases()))

	if *latinFlag {
		printLatin(*wFlag, "width")
		if *hFlag != *wFlag {
			printLatin(*hFlag, "height")
		}
	}
	if *phasesFlag {
		for k, ph := range set.Phases {
			fmt.Printf("phase %2d (%3d):", k, len(ph))
			for _, r := range ph {
				fmt.Printf(" %v", r)
			}
			fmt.Println()
		}
	}
}

// linkLoadBound computes the max per-link load of the all-to-all under the
// torus's routing — the hard floor for the number of phases.
func linkLoadBound(t *topology.Torus) int {
	load := make([]int, t.NumLinks())
	bound := 0
	n := t.NumNodes()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			p, err := t.Route(network.NodeID(s), network.NodeID(d))
			check(err)
			for _, l := range p.Links {
				load[l]++
				if load[l] > bound {
					bound = load[l]
				}
			}
		}
	}
	return bound
}

func printLatin(n int, label string) {
	sq, ok := aapc.RingLatin(n)
	if !ok {
		fmt.Printf("ring Latin square (%s, order %d): none — first-fit fallback in use\n", label, n)
		return
	}
	fmt.Printf("ring Latin square (%s, order %d): L[a][b] = slot of ring pair (a, b)\n", label, n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			fmt.Printf(" %2d", sq[a][b])
		}
		fmt.Println()
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccaapc:", err)
		os.Exit(1)
	}
}

// Command ccstore administers a persistent schedule store (internal/store)
// — the on-disk half of the compile daemon's caching: content-addressed
// compiled artifacts and delta-recompilation base schedules.
//
// Usage:
//
//	ccstore -dir /var/cc/store inspect            # list every live entry
//	ccstore -dir /var/cc/store inspect <key>      # decode one entry
//	ccstore -dir /var/cc/store verify             # digest-check everything
//	ccstore -dir /var/cc/store gc -max-entries 1000 -max-age 168h
//
// verify exits nonzero when any entry fails its integrity check (the bad
// file is quarantined, exactly as a serving daemon would on read).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/store"
)

func main() {
	fs := flag.NewFlagSet("ccstore", flag.ExitOnError)
	dirFlag := fs.String("dir", "", "store directory (required)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ccstore -dir DIR <inspect [key] | verify | gc [-max-entries N] [-max-age D]>")
		fs.PrintDefaults()
	}
	_ = fs.Parse(os.Args[1:])
	if *dirFlag == "" || fs.NArg() < 1 {
		fs.Usage()
		os.Exit(2)
	}
	st, err := store.Open(*dirFlag, store.Options{})
	check(err)

	cmd, args := fs.Arg(0), fs.Args()[1:]
	switch cmd {
	case "inspect":
		if len(args) > 0 {
			check(inspectOne(st, args[0]))
			return
		}
		inspectAll(st)
	case "verify":
		ok, quarantined := st.VerifyAll()
		fmt.Printf("verified %d entries intact, %d quarantined\n", ok, quarantined)
		if quarantined > 0 {
			os.Exit(1)
		}
	case "gc":
		gcFlags := flag.NewFlagSet("ccstore gc", flag.ExitOnError)
		maxEntries := gcFlags.Int("max-entries", 0, "keep at most this many entries (0 = unbounded)")
		maxAge := gcFlags.Duration("max-age", 0, "expire entries older than this (0 = unbounded)")
		_ = gcFlags.Parse(args)
		stats, err := st.GCWith(*maxEntries, *maxAge)
		check(err)
		fmt.Printf("removed %d entries, kept %d\n", stats.Removed, stats.Kept)
	default:
		fs.Usage()
		os.Exit(2)
	}
}

// inspectAll lists every live entry, oldest first.
func inspectAll(st *store.Store) {
	entries := st.Entries("")
	for _, e := range entries {
		fmt.Printf("%-9s %s  %6d B  %s\n", e.Kind, e.Key, e.Size, e.ModTime.Format(time.RFC3339))
	}
	m := st.Metrics()
	fmt.Printf("%d entries, %d bytes\n", m.Entries, m.Bytes)
}

// inspectOne decodes one entry by key, trying both kinds: schedule entries
// print their compiled shape, artifact entries their payload size (the
// payload is the service's JSON artifact, opaque here).
func inspectOne(st *store.Store, key string) error {
	if payload, ok := st.Get(store.KindSchedule, key); ok {
		dec, err := store.DecodeResult(payload)
		if err != nil {
			return fmt.Errorf("schedule entry %s: %w", key, err)
		}
		reqs := dec.Requests()
		fmt.Printf("kind:      %s\n", store.KindSchedule)
		fmt.Printf("key:       %s\n", key)
		fmt.Printf("algorithm: %s\n", dec.Algorithm)
		fmt.Printf("topology:  %s\n", dec.Topology)
		fmt.Printf("configs:   %d (degree)\n", len(dec.Configs))
		fmt.Printf("requests:  %d\n", len(reqs))
		for k, cfg := range dec.Configs {
			fmt.Printf("  slot %d: %d circuits\n", k, len(cfg))
		}
		return nil
	}
	if payload, ok := st.Get(store.KindArtifact, key); ok {
		fmt.Printf("kind:    %s\n", store.KindArtifact)
		fmt.Printf("key:     %s\n", key)
		fmt.Printf("payload: %d bytes of service artifact JSON\n", len(payload))
		return nil
	}
	return fmt.Errorf("no live entry under key %s (corrupt entries quarantine on read)", key)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccstore:", err)
		os.Exit(1)
	}
}

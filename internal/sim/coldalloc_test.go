package sim_test

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// TestDynamicColdAllocBound pins the cold-start cost of the dynamic
// simulator: constructing a Simulator and running one pattern on it. The
// tables are cut from per-type slabs sized by the topology's dimensions and
// the run buffers are pre-sized at construction, leaving ~8 allocations —
// the slabs, the states/heap/lock buffers, and the result. The bound has
// headroom for map/grow noise, not for a new per-table allocation pattern.
func TestDynamicColdAllocBound(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting under -short")
	}
	torus := topology.NewTorus(8, 8)
	msgs := make([]sim.Message, 64)
	for i := range msgs {
		msgs[i] = sim.Message{Src: i, Dst: (i + 1) % 64, Flits: 32}
	}
	run := func() {
		if _, err := (sim.Dynamic{Topology: torus, Params: sim.DefaultParams(2)}).Run(msgs); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the shared route cache; cold start should not pay routing
	const bound = 12
	if avg := testing.AllocsPerRun(10, run); avg > bound {
		t.Errorf("cold Dynamic.Run allocates %.0f times, bound %d", avg, bound)
	}
}

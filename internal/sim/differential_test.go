package sim

// Differential test layer for the zero-allocation simulator: the flat-array
// Simulator of simulator.go must be event-for-event identical to the
// pre-refactor container/heap implementation kept in oracle_test.go, across
// the same five topology families the scheduling pipeline's determinism
// tests sweep, for every reservation variant, and across repeated runs of
// one reused Simulator value (locking in Reset correctness).

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/network"
	"repro/internal/topology"
)

// differentialTopologies mirrors internal/schedule/determinism_test.go.
func differentialTopologies() []network.Topology {
	return []network.Topology{
		topology.NewLinear(8),
		topology.NewTorus(4, 4),
		topology.NewTorus3D(3, 3, 3),
		topology.NewHypercube(4),
		topology.NewOmega(16),
	}
}

// randomMessages draws a workload over the topology's terminals: random
// pairs, random lengths, staggered starts — enough contention to exercise
// retries, nacks and (under LockBackward) ack races.
func randomMessages(rng *rand.Rand, terminals, count int) []Message {
	msgs := make([]Message, count)
	for i := range msgs {
		src := rng.Intn(terminals)
		dst := rng.Intn(terminals - 1)
		if dst >= src {
			dst++
		}
		msgs[i] = Message{
			Src:   src,
			Dst:   dst,
			Flits: 1 + rng.Intn(6),
			Start: rng.Intn(64),
		}
	}
	return msgs
}

// ringMessages is the deterministic closed workload: every terminal sends
// to its successor.
func ringMessages(terminals, flits int) []Message {
	msgs := make([]Message, terminals)
	for i := range msgs {
		msgs[i] = Message{Src: i, Dst: (i + 1) % terminals, Flits: flits}
	}
	return msgs
}

func requireEqualResults(t *testing.T, label string, want, got *DynamicResult) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: simulator diverged from oracle:\noracle:    %+v\nsimulator: %+v", label, want, got)
	}
}

// TestSimulatorMatchesOracle sweeps (topology family x degree x reservation
// variant x shadow queuing x workload) and requires exact equality of every
// result field, including the channel-slot accounting. Each Simulator is
// run twice on the same input to prove the per-run reset leaks nothing.
func TestSimulatorMatchesOracle(t *testing.T) {
	for _, topo := range differentialTopologies() {
		n := network.TerminalCount(topo)
		rng := rand.New(rand.NewSource(1996))
		workloads := [][]Message{
			ringMessages(n, 5),
			randomMessages(rng, n, 3*n),
			randomMessages(rng, n, 3*n),
		}
		for _, k := range []int{1, 2, 5} {
			for _, variant := range []struct {
				name string
				mut  func(*Params)
			}{
				{"forward", func(*Params) {}},
				{"backward", func(p *Params) { p.Reservation = LockBackward }},
				{"queued", func(p *Params) { p.ShadowQueuing = true }},
				{"wdm", func(p *Params) { p.Mode = WDM }},
			} {
				params := DefaultParams(k)
				variant.mut(&params)
				s, err := NewSimulator(topo, params)
				if err != nil {
					t.Fatal(err)
				}
				for wi, msgs := range workloads {
					label := fmt.Sprintf("%s/K=%d/%s/workload-%d", topo.Name(), k, variant.name, wi)
					want, err := runDynamicOracle(topo, params, msgs)
					if err != nil {
						t.Fatalf("%s: oracle: %v", label, err)
					}
					got, err := s.Run(msgs)
					if err != nil {
						t.Fatalf("%s: simulator: %v", label, err)
					}
					requireEqualResults(t, label, want, got)
					again, err := s.Run(msgs)
					if err != nil {
						t.Fatalf("%s: simulator rerun: %v", label, err)
					}
					requireEqualResults(t, label+"/rerun", want, again)
				}
			}
		}
	}
}

// TestSimulatorMatchesOracleOnTimeout: the truncated-run path must agree
// too (TimedOut flag, clamped Time, partial Finish).
func TestSimulatorMatchesOracleOnTimeout(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	params := DefaultParams(1)
	params.MaxTime = 40
	msgs := randomMessages(rand.New(rand.NewSource(7)), 16, 48)
	want, err := runDynamicOracle(torus, params, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if !want.TimedOut {
		t.Fatal("workload expected to time out under MaxTime=40")
	}
	s, err := NewSimulator(torus, params)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Run(msgs)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, "timeout", want, got)
}

// TestSimulatorRunIntoSteadyStateAllocs: after a warm-up run, RunInto on a
// reused Simulator and result must not touch the heap. This is the
// zero-allocation contract the sweep engine relies on.
func TestSimulatorRunIntoSteadyStateAllocs(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	msgs := ringMessages(64, 7)
	s, err := NewSimulator(torus, DefaultParams(2))
	if err != nil {
		t.Fatal(err)
	}
	var res DynamicResult
	if err := s.RunInto(msgs, &res); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := s.RunInto(msgs, &res); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state RunInto allocates %.1f objects/run, want 0", allocs)
	}
}

// TestSweepDeterministicAcrossWorkers: a sweep that generates its own
// random workloads must produce byte-identical per-trial results for 1, 4
// and NumCPU workers, and at different GOMAXPROCS settings. Runs under
// -race in CI, which also proves the worker pool clean.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	const trials = 12
	collect := func(workers int) ([]DynamicResult, error) {
		out := make([]DynamicResult, trials)
		err := Sweep(trials, workers, 1996, func(trial int, rng *rand.Rand) error {
			msgs, err := OpenLoop(rng, OpenLoopConfig{Nodes: 64, MessagesPerNode: 2, Flits: 2, MeanGap: 400})
			if err != nil {
				return err
			}
			s, err := NewSimulator(torus, DefaultParams(2+trial%3))
			if err != nil {
				return err
			}
			return s.RunInto(msgs, &out[trial])
		})
		return out, err
	}
	ref, err := collect(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		for _, workers := range []int{1, 4, runtime.NumCPU()} {
			got, err := collect(workers)
			if err != nil {
				runtime.GOMAXPROCS(old)
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref, got) {
				runtime.GOMAXPROCS(old)
				t.Fatalf("GOMAXPROCS=%d workers=%d: sweep results differ from the serial reference", procs, workers)
			}
		}
		runtime.GOMAXPROCS(old)
	}
}

// TestSweepErrorIsDeterministic: when trials fail, the reported error is
// the lowest-numbered failing trial's, regardless of worker count.
func TestSweepErrorIsDeterministic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := Sweep(8, workers, 0, func(trial int, _ *rand.Rand) error {
			if trial%2 == 1 {
				return fmt.Errorf("boom %d", trial)
			}
			return nil
		})
		if err == nil || err.Error() != "sim: sweep trial 1: boom 1" {
			t.Errorf("workers=%d: error %v, want trial 1's", workers, err)
		}
	}
}

// TestTrialSeedDecorrelated: distinct trials must not share seeds, and the
// same (seed, trial) must always map to the same value.
func TestTrialSeedDecorrelated(t *testing.T) {
	seen := make(map[int64]int)
	for trial := 0; trial < 10_000; trial++ {
		s := TrialSeed(42, trial)
		if prev, ok := seen[s]; ok {
			t.Fatalf("trials %d and %d collide on seed %d", prev, trial, s)
		}
		seen[s] = trial
	}
	if TrialSeed(42, 7) != TrialSeed(42, 7) {
		t.Fatal("TrialSeed not deterministic")
	}
	if TrialSeed(42, 7) == TrialSeed(43, 7) {
		t.Fatal("TrialSeed ignores the sweep seed")
	}
}

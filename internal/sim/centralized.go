package sim

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/request"
	"repro/internal/schedule"
)

// CentralizedParams model a single network controller (the alternative the
// paper dismisses in Section 2 because "it does not scale with the system
// size").
type CentralizedParams struct {
	// RoundTrip is the request/grant latency between a PE and the
	// controller, in slots. Default 16.
	RoundTrip int
	// Service is the controller's serial processing time per connection
	// request (decode, allocate, write switch state), in slots. Default 4.
	Service int
}

// DefaultCentralizedParams returns the documented defaults.
func DefaultCentralizedParams() CentralizedParams {
	return CentralizedParams{RoundTrip: 16, Service: 4}
}

// RunCentralized simulates centralized dynamic control: every PE ships its
// requests to one controller, which — having global knowledge — computes
// the same minimal configuration set the compiler would (it can even pick
// the multiplexing degree per pattern), but must process the requests
// serially. Setup therefore costs RoundTrip + |R|*Service slots before the
// first flit moves, which is the non-scaling term: for dense patterns the
// controller, not the optics, dominates.
func RunCentralized(t network.Topology, msgs []Message, p CentralizedParams) (*CompiledResult, error) {
	if p.RoundTrip < 0 || p.Service < 1 {
		return nil, fmt.Errorf("sim: bad centralized params %+v", p)
	}
	var reqs request.Set
	for _, m := range msgs {
		if err := m.validate(); err != nil {
			return nil, err
		}
		reqs = append(reqs, request.Request{Src: nodeID(m.Src), Dst: nodeID(m.Dst)})
	}
	res, err := schedule.Combined{}.Schedule(t, reqs.Dedup())
	if err != nil {
		return nil, err
	}
	setup := p.RoundTrip + len(reqs.Dedup())*p.Service
	// The data phase is the compiled data plane shifted by the setup time.
	shifted := make([]Message, len(msgs))
	for i, m := range msgs {
		shifted[i] = m
		shifted[i].Start = m.Start + setup
	}
	out, err := RunCompiled(res, shifted)
	if err != nil {
		return nil, err
	}
	return out, nil
}

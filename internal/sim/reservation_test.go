package sim_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestReservationSchemeString(t *testing.T) {
	if sim.LockForward.String() != "lock-forward" || sim.LockBackward.String() != "lock-backward" {
		t.Error("ReservationScheme.String broken")
	}
	if sim.ReservationScheme(5).String() != "ReservationScheme(5)" {
		t.Error("unknown scheme string broken")
	}
	p := sim.DefaultParams(2)
	p.Reservation = sim.ReservationScheme(5)
	torus := topology.NewTorus(8, 8)
	if _, err := (sim.Dynamic{Topology: torus, Params: p}).Run([]sim.Message{{Src: 0, Dst: 1, Flits: 1}}); err == nil {
		t.Error("invalid scheme accepted")
	}
}

func TestBackwardReservationLoneMessageMatchesForward(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	msg := []sim.Message{{Src: 0, Dst: 27, Flits: 7}}
	fwd := sim.DefaultParams(2)
	bwd := sim.DefaultParams(2)
	bwd.Reservation = sim.LockBackward
	a, err := sim.Dynamic{Topology: torus, Params: fwd}.Run(msg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Dynamic{Topology: torus, Params: bwd}.Run(msg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time {
		t.Errorf("uncontended message: forward %d vs backward %d must match", a.Time, b.Time)
	}
}

// TestBackwardReservationCompletesAllWorkloads: the alternative protocol
// must be livelock-free on the contended application patterns.
func TestBackwardReservationCompletesAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	torus := topology.NewTorus(8, 8)
	tscf, err := apps.TSCF(64)
	if err != nil {
		t.Fatal(err)
	}
	p3m, err := apps.P3M(32)
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range []apps.Phase{tscf, p3m[1], p3m[4]} {
		for _, k := range []int{1, 5} {
			p := sim.DefaultParams(k)
			p.Reservation = sim.LockBackward
			out, err := sim.Dynamic{Topology: torus, Params: p}.Run(ph.Messages)
			if err != nil {
				t.Fatalf("%s K=%d: %v", ph.Name, k, err)
			}
			if out.TimedOut {
				t.Fatalf("%s K=%d: timed out", ph.Name, k)
			}
			for i, f := range out.Finish {
				if f <= 0 {
					t.Fatalf("%s K=%d: message %d unfinished", ph.Name, k, i)
				}
			}
		}
	}
}

// TestBackwardReservationLessBlockingOnObservation: under moderate
// contention the backward scheme's reservation packets never block each
// other in flight (they only observe), so its blocked count at the
// reservation stage differs from forward locking. Both must finish; the
// relative performance is workload-dependent and reported, not asserted.
func TestBackwardVsForwardUnderContention(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	tscf, err := apps.TSCF(64)
	if err != nil {
		t.Fatal(err)
	}
	fwd := sim.DefaultParams(5)
	bwd := sim.DefaultParams(5)
	bwd.Reservation = sim.LockBackward
	a, err := sim.Dynamic{Topology: torus, Params: fwd}.Run(tscf.Messages)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Dynamic{Topology: torus, Params: bwd}.Run(tscf.Messages)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("TSCF K=5: forward %d slots (%d blocked), backward %d slots (%d blocked)",
		a.Time, a.Blocked, b.Time, b.Blocked)
	if a.Time <= 0 || b.Time <= 0 {
		t.Error("both schemes must complete")
	}
}

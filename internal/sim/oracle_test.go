package sim

// The pre-refactor dynamic-control simulator, kept verbatim (modulo
// renames) as the differential-testing oracle for the zero-allocation
// Simulator in simulator.go. It is the original container/heap + per-run
// allocation implementation: slower, but independently derived from the
// Section 4.1 protocol description. TestSimulatorMatchesOracle holds the
// two engines equal field-for-field across topology families, degrees and
// reservation variants; BenchmarkDynamicOracle preserves the "before"
// number of the refactor.

import (
	"container/heap"
	"fmt"
	"math/bits"

	"repro/internal/network"
)

type oracleEvent struct {
	time int
	kind int
	msg  int // message index
	hop  int // path hop index for the *_Hop kinds
	seq  int // tie-breaker for determinism
}

type oracleEventQueue []oracleEvent

func (q oracleEventQueue) Len() int { return len(q) }
func (q oracleEventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q oracleEventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *oracleEventQueue) Push(x any)   { *q = append(*q, x.(oracleEvent)) }
func (q *oracleEventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

type oracleLinkState struct {
	free uint64
}

type oracleMsgState struct {
	links    []network.LinkID
	flits    int
	carried  uint64
	locked   []uint64
	lockTime []int
	attempts int
	slot     int
}

// runDynamicOracle executes the pre-refactor event loop.
func runDynamicOracle(top network.Topology, params Params, msgs []Message) (*DynamicResult, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	k := params.Degree
	fullMask := uint64(1)<<uint(k) - 1
	hopDelay := params.CtlHopDelay

	links := make([]oracleLinkState, top.NumLinks())
	for i := range links {
		links[i].free = fullMask
	}

	states := make([]oracleMsgState, len(msgs))
	queues := make(map[network.NodeID][]int) // per-source FIFO of message indices
	order := make([]network.NodeID, 0)
	for i, m := range msgs {
		if err := m.validate(); err != nil {
			return nil, err
		}
		p, err := top.Route(nodeID(m.Src), nodeID(m.Dst))
		if err != nil {
			return nil, fmt.Errorf("sim: message %d->%d: %w", m.Src, m.Dst, err)
		}
		states[i] = oracleMsgState{
			links:    p.Links,
			flits:    m.Flits,
			locked:   make([]uint64, len(p.Links)),
			lockTime: make([]int, len(p.Links)),
		}
		src := nodeID(m.Src)
		if _, ok := queues[src]; !ok {
			order = append(order, src)
		}
		queues[src] = append(queues[src], i)
	}

	var q oracleEventQueue
	seq := 0
	push := func(t, kind, msg, hop int) {
		heap.Push(&q, oracleEvent{time: t, kind: kind, msg: msg, hop: hop, seq: seq})
		seq++
	}
	for _, src := range order {
		head := queues[src][0]
		push(msgs[head].Start, evStart, head, 0)
	}

	res := &DynamicResult{Finish: make([]int, len(msgs))}
	remaining := len(msgs)
	startNext := func(t, msg int) {
		src := nodeID(msgs[msg].Src)
		fifo := queues[src]
		if len(fifo) == 0 || fifo[0] != msg {
			return
		}
		queues[src] = fifo[1:]
		if len(queues[src]) > 0 {
			next := queues[src][0]
			at := t
			if msgs[next].Start > at {
				at = msgs[next].Start
			}
			push(at, evStart, next, 0)
		}
	}

	var busyUntil []int
	if params.ShadowQueuing {
		busyUntil = make([]int, top.NumNodes())
	}

	for q.Len() > 0 {
		e := heap.Pop(&q).(oracleEvent)
		if e.time > params.MaxTime {
			res.TimedOut = true
			res.Time = params.MaxTime
			return res, nil
		}
		st := &states[e.msg]
		if busyUntil != nil {
			switch e.kind {
			case evResHop, evAckHop, evNackHop, evRelHop, evAbortHop:
				li := top.Link(st.links[e.hop])
				node := li.From
				if e.kind == evAckHop || e.kind == evNackHop {
					node = li.To
				}
				if busyUntil[node] > e.time {
					push(busyUntil[node], e.kind, e.msg, e.hop)
					continue
				}
				busyUntil[node] = e.time + hopDelay
			}
		}
		switch e.kind {
		case evStart:
			st.attempts++
			res.Attempts++
			st.carried = fullMask
			push(e.time+hopDelay, evResHop, e.msg, 0)

		case evResHop:
			l := &links[st.links[e.hop]]
			avail := l.free & st.carried
			if avail == 0 {
				res.Blocked++
				if e.hop == 0 {
					push(e.time+backoff(params.RetryBackoff, st.attempts, e.msg), evStart, e.msg, 0)
				} else {
					push(e.time+hopDelay, evNackHop, e.msg, e.hop-1)
				}
				continue
			}
			if params.Reservation == LockForward {
				l.free &^= avail
				st.locked[e.hop] = avail
				st.lockTime[e.hop] = e.time
			}
			st.carried = avail
			if e.hop == len(st.links)-1 {
				st.slot = bits.TrailingZeros64(st.carried)
				push(e.time+hopDelay, evAckHop, e.msg, e.hop)
			} else {
				push(e.time+hopDelay, evResHop, e.msg, e.hop+1)
			}

		case evNackHop:
			l := &links[st.links[e.hop]]
			l.free |= st.locked[e.hop]
			res.WastedChannelSlots += (e.time - st.lockTime[e.hop]) * bits.OnesCount64(st.locked[e.hop])
			st.locked[e.hop] = 0
			if e.hop == 0 {
				push(e.time+backoff(params.RetryBackoff, st.attempts, e.msg), evStart, e.msg, 0)
			} else {
				push(e.time+hopDelay, evNackHop, e.msg, e.hop-1)
			}

		case evAckHop:
			l := &links[st.links[e.hop]]
			sel := uint64(1) << uint(st.slot)
			if params.Reservation == LockBackward {
				if l.free&sel == 0 {
					res.Blocked++
					if e.hop+1 < len(st.links) {
						push(e.time+hopDelay, evAbortHop, e.msg, e.hop+1)
					}
					push(e.time+(e.hop+1)*hopDelay+backoff(params.RetryBackoff, st.attempts, e.msg), evStart, e.msg, 0)
					continue
				}
				l.free &^= sel
				st.locked[e.hop] = sel
				st.lockTime[e.hop] = e.time
			} else {
				released := st.locked[e.hop] &^ sel
				l.free |= released
				res.WastedChannelSlots += (e.time - st.lockTime[e.hop]) * bits.OnesCount64(released)
				st.locked[e.hop] = sel
			}
			if e.hop == 0 {
				var finish int
				if params.Mode == WDM {
					finish = e.time + st.flits
				} else {
					first := align(e.time, st.slot, k)
					finish = first + 1 + (st.flits-1)*k
				}
				push(finish, evDataDone, e.msg, 0)
			} else {
				push(e.time+hopDelay, evAckHop, e.msg, e.hop-1)
			}

		case evDataDone:
			res.UsefulChannelSlots += st.flits * len(st.links)
			res.Finish[e.msg] = e.time
			if e.time > res.Time {
				res.Time = e.time
			}
			remaining--
			push(e.time+hopDelay, evRelHop, e.msg, 0)
			startNext(e.time, e.msg)

		case evRelHop:
			l := &links[st.links[e.hop]]
			l.free |= st.locked[e.hop]
			res.HeldChannelSlots += (e.time - st.lockTime[e.hop]) * bits.OnesCount64(st.locked[e.hop])
			st.locked[e.hop] = 0
			if e.hop < len(st.links)-1 {
				push(e.time+hopDelay, evRelHop, e.msg, e.hop+1)
			}

		case evAbortHop:
			l := &links[st.links[e.hop]]
			l.free |= st.locked[e.hop]
			res.WastedChannelSlots += (e.time - st.lockTime[e.hop]) * bits.OnesCount64(st.locked[e.hop])
			st.locked[e.hop] = 0
			if e.hop < len(st.links)-1 {
				push(e.time+hopDelay, evAbortHop, e.msg, e.hop+1)
			}
		}
	}
	if remaining != 0 {
		return nil, fmt.Errorf("sim: %d messages never completed (internal error)", remaining)
	}
	for i := range links {
		if links[i].free != fullMask {
			return nil, fmt.Errorf("sim: link %d leaked channels (free mask %b, want %b)",
				i, links[i].free, fullMask)
		}
	}
	return res, nil
}

package sim_test

import (
	"math/rand"
	"testing"

	"repro/internal/patterns"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestRunCompiledWDMSingleMessage(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	set := patterns.AllToAll(64)
	res := compile(t, torus, set)
	if res.Degree() != 64 {
		t.Fatalf("degree %d", res.Degree())
	}
	msgs := []sim.Message{{Src: 0, Dst: 37, Flits: 10}}
	tdm, err := sim.RunCompiled(res, msgs)
	if err != nil {
		t.Fatal(err)
	}
	wdm, err := sim.RunCompiledWDM(res, msgs)
	if err != nil {
		t.Fatal(err)
	}
	// WDM gives the circuit a full-rate channel: 10 slots regardless of
	// the 64-way multiplexing that TDM pays for.
	if wdm.Time != 10 {
		t.Errorf("WDM time = %d, want 10", wdm.Time)
	}
	if tdm.Time <= wdm.Time {
		t.Errorf("TDM (%d) should be slower than WDM (%d) for a lone message on a deep schedule", tdm.Time, wdm.Time)
	}
}

func TestRunCompiledWDMFullPattern(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	set := patterns.AllToAll(64)
	res := compile(t, torus, set)
	msgs := make([]sim.Message, len(set))
	for i, r := range set {
		msgs[i] = sim.Message{Src: int(r.Src), Dst: int(r.Dst), Flits: 4}
	}
	wdm, err := sim.RunCompiledWDM(res, msgs)
	if err != nil {
		t.Fatal(err)
	}
	// Every circuit has its own wavelength, so the whole all-to-all takes
	// just the message length.
	if wdm.Time != 4 {
		t.Errorf("WDM all-to-all time = %d, want 4", wdm.Time)
	}
}

func TestCompiledStartTimesDelayMessages(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	res := compile(t, torus, patterns.Ring(64))
	msgs := []sim.Message{
		{Src: 0, Dst: 1, Flits: 4},
		{Src: 1, Dst: 2, Flits: 4, Start: 100},
	}
	out, err := sim.RunCompiled(res, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Finish[1] < 100+4 {
		t.Errorf("delayed message finished at %d, cannot finish before %d", out.Finish[1], 104)
	}
	if out.Finish[0] > 10 {
		t.Errorf("undelayed message finished at %d; should not wait for the delayed one", out.Finish[0])
	}
}

func TestCompiledSameCircuitMessagesSerialize(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	res := compile(t, torus, patterns.Ring(64))
	// Two messages on the same circuit: the circuit moves one flit per
	// frame, so they cannot overlap.
	msgs := []sim.Message{
		{Src: 0, Dst: 1, Flits: 10},
		{Src: 0, Dst: 1, Flits: 10},
	}
	out, err := sim.RunCompiled(res, msgs)
	if err != nil {
		t.Fatal(err)
	}
	k := res.Degree()
	if out.Time < 20*k-k {
		t.Errorf("two 10-flit messages on one circuit finished in %d slots; %d flit-opportunities needed", out.Time, 20)
	}
}

func TestDynamicWDMMode(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	p := sim.DefaultParams(10)
	p.Mode = sim.WDM
	out, err := sim.Dynamic{Topology: torus, Params: p}.Run([]sim.Message{{Src: 0, Dst: 1, Flits: 100}})
	if err != nil {
		t.Fatal(err)
	}
	// WDM: control round trip + 100 full-rate slots.
	want := 2*p.CtlHopDelay + 100
	if out.Time != want {
		t.Errorf("WDM dynamic time = %d, want %d", out.Time, want)
	}
	pT := sim.DefaultParams(10)
	tdm, err := sim.Dynamic{Topology: torus, Params: pT}.Run([]sim.Message{{Src: 0, Dst: 1, Flits: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if tdm.Time <= out.Time {
		t.Errorf("TDM K=10 (%d) should be slower than WDM with 10 wavelengths (%d)", tdm.Time, out.Time)
	}
}

func TestDynamicStartTimes(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	p := sim.DefaultParams(1)
	out, err := sim.Dynamic{Topology: torus, Params: p}.Run([]sim.Message{{Src: 0, Dst: 1, Flits: 3, Start: 500}})
	if err != nil {
		t.Fatal(err)
	}
	want := 500 + 2*p.CtlHopDelay + 3
	if out.Time != want {
		t.Errorf("time = %d, want %d", out.Time, want)
	}
}

func TestModeString(t *testing.T) {
	if sim.TDM.String() != "tdm" || sim.WDM.String() != "wdm" {
		t.Error("Mode.String broken")
	}
	if sim.Mode(7).String() != "Mode(7)" {
		t.Error("unknown mode string broken")
	}
	p := sim.DefaultParams(2)
	p.Mode = sim.Mode(7)
	torus := topology.NewTorus(8, 8)
	if _, err := (sim.Dynamic{Topology: torus, Params: p}).Run([]sim.Message{{Src: 0, Dst: 1, Flits: 1}}); err == nil {
		t.Error("invalid mode accepted")
	}
}

func TestOpenLoopWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	msgs, err := sim.OpenLoop(rng, sim.OpenLoopConfig{Nodes: 64, MessagesPerNode: 10, Flits: 4, MeanGap: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 640 {
		t.Fatalf("got %d messages", len(msgs))
	}
	perSource := map[int]int{}
	lastStart := map[int]int{}
	for _, m := range msgs {
		if m.Src == m.Dst {
			t.Fatal("self-loop generated")
		}
		if m.Start <= lastStart[m.Src] {
			t.Fatalf("source %d injections not strictly increasing", m.Src)
		}
		lastStart[m.Src] = m.Start
		perSource[m.Src]++
	}
	for src, n := range perSource {
		if n != 10 {
			t.Fatalf("source %d injected %d messages", src, n)
		}
	}
	if _, err := sim.OpenLoop(rng, sim.OpenLoopConfig{Nodes: 1, MessagesPerNode: 1, Flits: 1, MeanGap: 1}); err == nil {
		t.Error("single-node workload accepted")
	}
}

func TestOpenLoopLatencyCompiledFallbackVsDynamic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// The section 3.3 dynamic-pattern strategy: serve unknown traffic with
	// the predetermined AAPC configuration set (64 slots) and compare mean
	// latency against runtime reservations at moderate load.
	torus := topology.NewTorus(8, 8)
	// Compiling the full all-to-all pattern yields exactly the AAPC
	// decomposition (64 slots), i.e. the predetermined fallback schedule.
	full := compile(t, torus, patterns.AllToAll(64))

	rng := rand.New(rand.NewSource(2))
	msgs, err := sim.OpenLoop(rng, sim.OpenLoopConfig{Nodes: 64, MessagesPerNode: 20, Flits: 2, MeanGap: 400})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := sim.RunCompiled(full, msgs)
	if err != nil {
		t.Fatal(err)
	}
	compLat, err := sim.MeanLatency(msgs, comp.Finish)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := sim.Dynamic{Topology: torus, Params: sim.DefaultParams(10)}.Run(msgs)
	if err != nil {
		t.Fatal(err)
	}
	dynLat, err := sim.MeanLatency(msgs, dyn.Finish)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("mean latency at light load: AAPC fallback %.1f slots, dynamic K=10 %.1f slots", compLat, dynLat)
	if compLat <= 0 || dynLat <= 0 {
		t.Error("latencies must be positive")
	}
}

func TestMeanLatencyErrors(t *testing.T) {
	if _, err := sim.MeanLatency([]sim.Message{{Src: 0, Dst: 1, Flits: 1}}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := sim.MeanLatency([]sim.Message{{Src: 0, Dst: 1, Flits: 1}}, []int{0}); err == nil {
		t.Error("unfinished message accepted")
	}
	if v, err := sim.MeanLatency(nil, nil); err != nil || v != 0 {
		t.Error("empty input should yield 0")
	}
}

package sim

import (
	"fmt"
	"math/rand"
)

// OpenLoopConfig describes an open-loop random workload: each PE generates
// messages to uniformly random destinations with exponential-ish
// inter-arrival gaps, for the latency-versus-offered-load experiments that
// evaluate how compiled communication's predetermined AAPC configurations
// serve patterns unknown at compile time.
type OpenLoopConfig struct {
	// Nodes is the PE count.
	Nodes int
	// MessagesPerNode is how many messages each PE injects.
	MessagesPerNode int
	// Flits is the fixed message length.
	Flits int
	// MeanGap is the mean inter-arrival gap in slots between consecutive
	// messages of one PE; larger means lighter offered load.
	MeanGap int
}

// OpenLoop draws a deterministic open-loop workload. Messages are returned
// grouped by source in injection order, which is the order the dynamic
// protocol's per-source queues expect.
func OpenLoop(rng *rand.Rand, cfg OpenLoopConfig) ([]Message, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("sim: open-loop workload needs >= 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.MessagesPerNode < 1 || cfg.Flits < 1 || cfg.MeanGap < 1 {
		return nil, fmt.Errorf("sim: open-loop workload parameters must be positive: %+v", cfg)
	}
	var msgs []Message
	for src := 0; src < cfg.Nodes; src++ {
		t := 0
		for i := 0; i < cfg.MessagesPerNode; i++ {
			// Geometric gap with the requested mean approximates Poisson
			// arrivals while staying integral.
			gap := 1
			for rng.Intn(cfg.MeanGap) != 0 {
				gap++
			}
			t += gap
			dst := rng.Intn(cfg.Nodes - 1)
			if dst >= src {
				dst++
			}
			msgs = append(msgs, Message{Src: src, Dst: dst, Flits: cfg.Flits, Start: t})
		}
	}
	return msgs, nil
}

// MeanLatency returns the average of finish-start over all messages given
// the per-message finish times; messages with finish 0 (unfinished) are an
// error.
func MeanLatency(msgs []Message, finish []int) (float64, error) {
	if len(msgs) != len(finish) {
		return 0, fmt.Errorf("sim: %d messages but %d finish times", len(msgs), len(finish))
	}
	if len(msgs) == 0 {
		return 0, nil
	}
	sum := 0
	for i, m := range msgs {
		if finish[i] <= 0 {
			return 0, fmt.Errorf("sim: message %d (%d->%d) never finished", i, m.Src, m.Dst)
		}
		sum += finish[i] - m.Start
	}
	return float64(sum) / float64(len(msgs)), nil
}

package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/cliutil"
)

// TrialSeed derives the RNG seed of one trial from a sweep's master seed
// using the SplitMix64 finalizer, so trial streams are decorrelated and a
// trial's randomness depends only on (seed, trial) — never on which worker
// ran it or in what order. This is what makes parallel sweeps byte-identical
// to serial ones.
func TrialSeed(seed int64, trial int) int64 {
	z := uint64(seed) + (uint64(trial)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Sweep runs fn(trial, rng) for every trial in [0, trials) on a pool of
// workers. Each invocation receives a private *rand.Rand seeded with
// TrialSeed(seed, trial), so the outcome of a trial is independent of the
// worker count and of scheduling; callers that write results into a
// trial-indexed slice get byte-identical sweeps for 1, 4 or NumCPU workers.
//
// workers <= 0 means GOMAXPROCS. When several trials fail, the error of the
// lowest-numbered trial is returned (again independent of scheduling). fn
// must not retain or share its rng across trials.
func Sweep(trials, workers int, seed int64, fn func(trial int, rng *rand.Rand) error) error {
	if trials < 0 {
		return fmt.Errorf("sim: negative trial count %d", trials)
	}
	if trials == 0 {
		return nil
	}
	workers = cliutil.Workers(workers)
	if workers > trials {
		workers = trials
	}
	if workers == 1 {
		for trial := 0; trial < trials; trial++ {
			if err := fn(trial, rand.New(rand.NewSource(TrialSeed(seed, trial)))); err != nil {
				return fmt.Errorf("sim: sweep trial %d: %w", trial, err)
			}
		}
		return nil
	}
	errs := make([]error, trials)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				trial := int(next.Add(1)) - 1
				if trial >= trials {
					return
				}
				errs[trial] = fn(trial, rand.New(rand.NewSource(TrialSeed(seed, trial))))
			}
		}()
	}
	wg.Wait()
	for trial, err := range errs {
		if err != nil {
			return fmt.Errorf("sim: sweep trial %d: %w", trial, err)
		}
	}
	return nil
}

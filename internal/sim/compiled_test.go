package sim_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/network"
	"repro/internal/patterns"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/topology"
)

func compile(t *testing.T, topo *topology.Torus, set request.Set) *schedule.Result {
	t.Helper()
	res, err := schedule.Combined{}.Schedule(topo, set)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunCompiledSingleMessage(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	set := request.Set{{Src: 0, Dst: 1}}
	res := compile(t, torus, set)
	out, err := sim.RunCompiled(res, []sim.Message{{Src: 0, Dst: 1, Flits: 10}})
	if err != nil {
		t.Fatal(err)
	}
	// Degree 1, slot 0: flit f completes at slot f+1.
	if out.Time != 10 {
		t.Errorf("time = %d, want 10", out.Time)
	}
	if out.Degree != 1 {
		t.Errorf("degree = %d, want 1", out.Degree)
	}
}

// TestRunCompiledMatchesClosedForm: the slot-stepping simulation must agree
// with the analytic finish time for every message.
func TestRunCompiledMatchesClosedForm(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	rng := rand.New(rand.NewSource(23))
	set, err := patterns.Random(rng, 64, 700)
	if err != nil {
		t.Fatal(err)
	}
	res := compile(t, torus, set)
	msgs := make([]sim.Message, len(set))
	for i, r := range set {
		msgs[i] = sim.Message{Src: int(r.Src), Dst: int(r.Dst), Flits: 1 + rng.Intn(40)}
	}
	out, err := sim.RunCompiled(res, msgs)
	if err != nil {
		t.Fatal(err)
	}
	k := res.Degree()
	for i, m := range msgs {
		u := res.Slot[request.Request{Src: network.NodeID(m.Src), Dst: network.NodeID(m.Dst)}]
		want := sim.CompiledTimeClosedForm(u, k, m.Flits)
		if out.Finish[i] != want {
			t.Fatalf("message %d finish %d, closed form %d", i, out.Finish[i], want)
		}
	}
}

func TestRunCompiledRejectsUnscheduledMessage(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	res := compile(t, torus, request.Set{{Src: 0, Dst: 1}})
	if _, err := sim.RunCompiled(res, []sim.Message{{Src: 2, Dst: 3, Flits: 1}}); err == nil {
		t.Error("message without a circuit accepted")
	}
}

func TestRunCompiledRejectsBadMessages(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	res := compile(t, torus, request.Set{{Src: 0, Dst: 1}})
	if _, err := sim.RunCompiled(res, []sim.Message{{Src: 0, Dst: 1, Flits: 0}}); err == nil {
		t.Error("zero-flit message accepted")
	}
	if _, err := sim.RunCompiled(res, []sim.Message{{Src: 1, Dst: 1, Flits: 1}}); err == nil {
		t.Error("self-loop message accepted")
	}
}

// TestRunCompiledTimeIsDegreeTimesFlits: with equal messages on every
// circuit, total time is (maxFlits-1)*K + lastSlot + 1 <= K*maxFlits.
func TestRunCompiledTimeBound(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	f := func(flits8 uint8, seed int64) bool {
		flits := int(flits8%50) + 1
		rng := rand.New(rand.NewSource(seed))
		set, err := patterns.Random(rng, 64, 300)
		if err != nil {
			return false
		}
		res, err := schedule.Combined{}.Schedule(torus, set)
		if err != nil {
			return false
		}
		msgs := make([]sim.Message, len(set))
		for i, r := range set {
			msgs[i] = sim.Message{Src: int(r.Src), Dst: int(r.Dst), Flits: flits}
		}
		out, err := sim.RunCompiled(res, msgs)
		if err != nil {
			return false
		}
		k := res.Degree()
		return out.Time <= k*flits && out.Time >= (flits-1)*k+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestCompiledTimeClosedForm(t *testing.T) {
	cases := []struct{ u, k, flits, want int }{
		{0, 1, 1, 1},
		{0, 1, 10, 10},
		{1, 2, 16, 32},
		{3, 4, 1, 4},
		{63, 64, 2, 128},
	}
	for _, c := range cases {
		if got := sim.CompiledTimeClosedForm(c.u, c.k, c.flits); got != c.want {
			t.Errorf("CompiledTimeClosedForm(%d,%d,%d) = %d, want %d", c.u, c.k, c.flits, got, c.want)
		}
	}
}

// TestCompiledConservation: every injected flit is delivered exactly once —
// the sum of per-message flits equals total delivered work inferred from
// finish times.
func TestCompiledConservation(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	set := patterns.Ring(64)
	res := compile(t, torus, set)
	msgs := make([]sim.Message, len(set))
	for i, r := range set {
		msgs[i] = sim.Message{Src: int(r.Src), Dst: int(r.Dst), Flits: 5}
	}
	out, err := sim.RunCompiled(res, msgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range msgs {
		if out.Finish[i] <= 0 {
			t.Fatalf("message %d never finished", i)
		}
		if out.Finish[i] > out.Time {
			t.Fatalf("message %d finished after the reported completion time", i)
		}
	}
}

package sim

import (
	"testing"

	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/topology"
)

// compile schedules reqs on topo with the default combined algorithm.
func compileFor(t *testing.T, topo *topology.Ring, reqs request.Set) *schedule.Result {
	t.Helper()
	res, err := schedule.Combined{}.Schedule(topo, reqs)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	return res
}

func ringReqs(n int) request.Set {
	set := make(request.Set, n)
	for i := 0; i < n; i++ {
		set[i] = request.Request{Src: nodeID(i), Dst: nodeID((i + 1) % n)}
	}
	return set
}

func ringMsgs(n, flits int) []Message {
	msgs := make([]Message, n)
	for i := 0; i < n; i++ {
		msgs[i] = Message{Src: i, Dst: (i + 1) % n, Flits: flits}
	}
	return msgs
}

func TestRegisterDeltaIdenticalIsZero(t *testing.T) {
	topo := topology.NewRing(8)
	res := compileFor(t, topo, ringReqs(8))
	load, err := RegisterDelta(res, res)
	if err != nil {
		t.Fatal(err)
	}
	if load.Total != 0 || load.Max != 0 {
		t.Fatalf("identical schedules need %d register writes (max %d), want 0", load.Total, load.Max)
	}
	// An equal but distinct copy must also be a zero delta: the comparison
	// is structural, not pointer identity.
	clone := &schedule.Result{
		Algorithm: res.Algorithm,
		Topology:  res.Topology,
		Configs:   make([]request.Set, len(res.Configs)),
		Slot:      res.Slot,
	}
	for i, cfg := range res.Configs {
		clone.Configs[i] = cfg.Clone()
	}
	load, err = RegisterDelta(res, clone)
	if err != nil {
		t.Fatal(err)
	}
	if load.Total != 0 {
		t.Fatalf("structurally equal schedules need %d register writes, want 0", load.Total)
	}
}

func TestRegisterDeltaDegreeChangeIsFullLoad(t *testing.T) {
	topo := topology.NewRing(8)
	a := compileFor(t, topo, ringReqs(8))
	// Two circuits from the same source force degree >= 2.
	b := compileFor(t, topo, request.Set{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2}})
	if a.Degree() == b.Degree() {
		t.Fatalf("test needs differing degrees, both %d", a.Degree())
	}
	load, err := RegisterDelta(a, b)
	if err != nil {
		t.Fatal(err)
	}
	full, err := RegisterLoad(b)
	if err != nil {
		t.Fatal(err)
	}
	if load.Total != full.Total || load.Max != full.Max {
		t.Fatalf("degree change delta = %+v, want full load %+v", load, full)
	}
	if full.Max != b.Degree() {
		t.Fatalf("full load max = %d, want degree %d", full.Max, b.Degree())
	}
}

func TestRegisterDeltaCountsOnlyTouchedSlots(t *testing.T) {
	// Hand-built degree-1 schedules on an 8-ring: the base carries the
	// full ring; the target swaps one circuit (0->1 becomes 0->2, routed
	// through switch 1). Only the switches on the changed routes may
	// charge writes, and at most one slot each.
	topo := topology.NewRing(8)
	base := ringReqs(8)
	baseRes := manualSchedule(topo, base)
	target := append(ringReqs(8)[1:], request.Request{Src: 0, Dst: 2})
	targetRes := manualSchedule(topo, target)
	load, err := RegisterDelta(baseRes, targetRes)
	if err != nil {
		t.Fatal(err)
	}
	if load.Max != 1 {
		t.Fatalf("single-slot change has per-switch max %d, want 1", load.Max)
	}
	// 0->2 traverses switches 0, 1, 2; the circuit set changed at each
	// (0 lost 0->1 gained 0->2; 1 lost nothing but gained the transit; 2
	// gained the ejection). Switch 1's set changed from {0->1, 1->2} to
	// {0->2, 1->2}; switches far from the change are untouched.
	if load.PerSwitch[5] != 0 || load.PerSwitch[6] != 0 {
		t.Fatalf("untouched switches charged writes: %v", load.PerSwitch)
	}
	if load.PerSwitch[1] != 1 {
		t.Fatalf("switch 1 charged %d writes, want 1", load.PerSwitch[1])
	}
}

// manualSchedule builds a degree-1 schedule (all requests in slot 0) —
// valid only when the requests are pairwise conflict-free.
func manualSchedule(topo *topology.Ring, reqs request.Set) *schedule.Result {
	slot := make(map[request.Request]int, len(reqs))
	for _, r := range reqs {
		slot[r] = 0
	}
	return &schedule.Result{
		Algorithm: "manual",
		Topology:  topo,
		Configs:   []request.Set{reqs.Clone()},
		Slot:      slot,
	}
}

func TestOverlapStallColdStartMatchesSerialized(t *testing.T) {
	topo := topology.NewRing(8)
	res := compileFor(t, topo, ringReqs(8))
	load, err := RegisterLoad(res)
	if err != nil {
		t.Fatal(err)
	}
	stall, hidden, err := OverlapStall(nil, 0, load, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	want := SerializedStall(load, 1, 16)
	if stall != want || hidden != 0 {
		t.Fatalf("cold start stall = %d hidden = %d, want %d and 0", stall, hidden, want)
	}
}

func TestOverlapStallZeroLoadIsFree(t *testing.T) {
	topo := topology.NewRing(8)
	res := compileFor(t, topo, ringReqs(8))
	stall, hidden, err := OverlapStall(res, 100, PhaseLoad{}, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	if stall != 0 || hidden != 0 {
		t.Fatalf("zero load stall = %d hidden = %d, want 0, 0 (no barrier without writes)", stall, hidden)
	}
}

func TestOverlapStallHidesBehindIdleSlots(t *testing.T) {
	// Previous phase: a lone long-running circuit 0->1 on an 8-ring,
	// schedule degree 2 (second slot empty via manual construction), so
	// every switch except 0 and 1 is idle in both slots and switches 0, 1
	// idle in one of two. A follow-on load of 2 entries per switch hides
	// fully on idle switches when the previous phase runs long enough.
	topo := topology.NewRing(8)
	prev := &schedule.Result{
		Algorithm: "manual",
		Topology:  topo,
		Configs:   []request.Set{{{Src: 0, Dst: 1}}, {}},
		Slot:      map[request.Request]int{{Src: 0, Dst: 1}: 0},
	}
	next := manual2Slot(topo, request.Set{{Src: 4, Dst: 5}}, request.Set{{Src: 5, Dst: 6}})
	load, err := RegisterDelta(prev, next)
	if err != nil {
		t.Fatal(err)
	}
	if load.Max == 0 {
		t.Fatal("expected register writes for disjoint circuits")
	}
	const perSlot, barrier = 1, 16
	// With 100 comm slots, idle switches (4, 5, 6 are untouched by the
	// 0->1 circuit) absorb 100*2/2 = 100 >= their entries; the stall
	// collapses to the bare barrier.
	stall, hidden, err := OverlapStall(prev, 100, load, perSlot, barrier)
	if err != nil {
		t.Fatal(err)
	}
	if stall != barrier {
		t.Fatalf("fully hidden stall = %d, want barrier %d", stall, barrier)
	}
	if want := SerializedStall(load, perSlot, barrier) - barrier; hidden != want {
		t.Fatalf("hidden = %d, want %d", hidden, want)
	}
	// With zero comm slots nothing hides.
	stall, hidden, err = OverlapStall(prev, 0, load, perSlot, barrier)
	if err != nil {
		t.Fatal(err)
	}
	if stall != SerializedStall(load, perSlot, barrier) || hidden != 0 {
		t.Fatalf("no-comm stall = %d hidden = %d, want fully serialized", stall, hidden)
	}
}

func manual2Slot(topo *topology.Ring, a, b request.Set) *schedule.Result {
	slot := make(map[request.Request]int)
	for _, r := range a {
		slot[r] = 0
	}
	for _, r := range b {
		slot[r] = 1
	}
	return &schedule.Result{
		Algorithm: "manual",
		Topology:  topo,
		Configs:   []request.Set{a.Clone(), b.Clone()},
		Slot:      slot,
	}
}

func TestRunProgramOverlapVsSerializedDeliveryIdentical(t *testing.T) {
	topo := topology.NewRing(16)
	ring := compileFor(t, topo, ringReqs(16))
	// Shifted ring: i -> i+2, a different circuit set on the same switches.
	shift := make(request.Set, 16)
	for i := 0; i < 16; i++ {
		shift[i] = request.Request{Src: nodeID(i), Dst: nodeID((i + 2) % 16)}
	}
	shifted, err := schedule.Combined{}.Schedule(topo, shift)
	if err != nil {
		t.Fatal(err)
	}
	shiftMsgs := make([]Message, 16)
	for i := 0; i < 16; i++ {
		shiftMsgs[i] = Message{Src: i, Dst: (i + 2) % 16, Flits: 6}
	}
	specs := []PhaseSpec{
		{Schedule: ring, Messages: ringMsgs(16, 8)},
		{Schedule: ring, Messages: ringMsgs(16, 8)}, // kept boundary: zero load
		{Schedule: shifted, Messages: shiftMsgs},    // patched/recompiled boundary
		{Schedule: ring, Messages: ringMsgs(16, 8)},
	}
	over, err := RunProgram(specs, 1, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := RunProgram(specs, 1, 16, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(over.Finish) != len(ser.Finish) {
		t.Fatalf("phase counts differ: %d vs %d", len(over.Finish), len(ser.Finish))
	}
	for i := range over.Finish {
		if len(over.Finish[i]) != len(ser.Finish[i]) {
			t.Fatalf("phase %d finish lengths differ", i)
		}
		for j := range over.Finish[i] {
			if over.Finish[i][j] != ser.Finish[i][j] {
				t.Fatalf("phase %d message %d delivered at %d overlapped vs %d serialized",
					i, j, over.Finish[i][j], ser.Finish[i][j])
			}
		}
		if over.Costs[i].Comm != ser.Costs[i].Comm {
			t.Fatalf("phase %d comm differs: %d vs %d", i, over.Costs[i].Comm, ser.Costs[i].Comm)
		}
	}
	if over.Total > ser.Total {
		t.Fatalf("overlapped total %d exceeds serialized %d", over.Total, ser.Total)
	}
	if over.Serialized != ser.Total {
		t.Fatalf("overlap run reports serialized %d, serialized run totals %d", over.Serialized, ser.Total)
	}
	// The kept boundary (phase 1) writes nothing in either mode; the
	// changed boundary (phase 2) must hide something: the ring leaves
	// every switch idle in some slots when the degree exceeds its busy
	// count — if not fully, at least the accounting must not exceed
	// serialized.
	if over.Costs[1].Stall != 0 || ser.Costs[1].Stall != 0 {
		t.Fatalf("identical-schedule boundary charged stall: overlap %d serialized %d",
			over.Costs[1].Stall, ser.Costs[1].Stall)
	}
	if over.Costs[2].Stall > ser.Costs[2].Stall {
		t.Fatalf("overlap stall %d exceeds serialized %d at changed boundary",
			over.Costs[2].Stall, ser.Costs[2].Stall)
	}
	if over.Costs[0].Stall != ser.Costs[0].Stall {
		t.Fatalf("cold start must be serialized in both modes: %d vs %d",
			over.Costs[0].Stall, ser.Costs[0].Stall)
	}
}

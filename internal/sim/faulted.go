package sim

import (
	"math/bits"

	"repro/internal/network"
)

// FaultEvent is a permanent failure injected into a dynamic run: at slot
// Slot, the channels in Mask of link Link go dark (Mask == 0 means the whole
// link). Faults are link-centric at this level; internal/fault expands node
// failures into the incident link set before handing a plan to the
// simulator.
type FaultEvent struct {
	Slot int
	Link network.LinkID
	Mask uint64
}

// RunFaulted runs the dynamic protocol with mid-run fault injection. It is
// RunInto plus a fault timeline: when a fault fires, channels vanish from
// the free pool, circuits and reservations crossing the dead resource are
// torn down, and their messages retry — over a surviving detour if the
// deterministic route died, or not at all (Lost) if no surviving path
// exists. The run is deterministic for a fixed (msgs, faults) input: faults
// fire before same-slot protocol events, in input order.
//
// The degradation the dynamic protocol pays appears in the result as
// FaultAborts (torn-down attempts), Rerouted (detoured messages), Lost
// (disconnected messages, Finish == 0), and in the usual contention
// metrics, which now reflect the thinner surviving network.
func (s *Simulator) RunFaulted(msgs []Message, faults []FaultEvent, res *DynamicResult) error {
	return s.run(msgs, faults, res)
}

// blockedLink is the BFS avoid-predicate for fault rerouting: only links
// with every channel failed are unusable; partially-failed links still
// route at reduced capacity.
func (s *Simulator) blockedLink(li network.LinkInfo) bool {
	return s.failedMask[li.ID] == s.fullMask
}

// applyFault makes a fault permanent: it removes the failed channels from
// the free pool and tears down every message whose current attempt touches
// the dead resource — in-flight events are cancelled by bumping the
// message's generation, surviving locked channels return to the pool, and
// the message either restarts (same route if it survives, else a BFS detour
// over the surviving links) or is declared lost when the failure
// disconnects its endpoints. Messages already delivered keep draining their
// release chain; the alive() guard drops their failed channels on the way.
func (s *Simulator) applyFault(f FaultEvent, now int, msgs []Message, res *DynamicResult, remaining *int) {
	mask := f.Mask & s.fullMask
	if f.Mask == 0 {
		mask = s.fullMask
	}
	newly := mask &^ s.failedMask[f.Link]
	if newly == 0 {
		return
	}
	s.failedMask[f.Link] |= newly
	s.links[f.Link] &^= newly

	hopDelay := s.params.CtlHopDelay
	for i := range s.states {
		st := &s.states[i]
		if st.state == stDone || st.state == stLost {
			continue
		}
		// A message is affected if its route crosses a fully-dead link (it
		// can never complete on that route) or if it holds a lock on a
		// now-failed channel (its circuit or reservation just broke).
		routeDead := false
		hit := false
		for h, lk := range st.links {
			fm := s.failedMask[lk]
			if fm == 0 {
				continue
			}
			if fm == s.fullMask {
				routeDead = true
			}
			if st.locked[h]&fm != 0 {
				hit = true
			}
		}
		if !routeDead && !hit {
			continue
		}
		// Tear down the current attempt: cancel its in-flight events and
		// return the surviving locked channels to the pool.
		st.gen++
		for h, lk := range st.links {
			if st.locked[h] == 0 {
				continue
			}
			s.links[lk] |= st.locked[h] &^ s.failedMask[lk]
			res.WastedChannelSlots += (now - st.lockTime[h]) * bits.OnesCount64(st.locked[h])
			st.locked[h] = 0
		}
		if st.state == stActive {
			res.FaultAborts++
		}
		if routeDead {
			p, err := network.BFSRoute(s.top, nodeID(msgs[i].Src), nodeID(msgs[i].Dst), s.blockedLink)
			if err != nil {
				// Disconnected: the message can never be delivered.
				wasActive := st.state == stActive
				st.state = stLost
				res.Lost++
				*remaining--
				if wasActive {
					s.startSuccessor(st, now+hopDelay, msgs)
				}
				continue
			}
			st.links = p.Links
			st.locked = make([]uint64, len(p.Links))
			st.lockTime = make([]int, len(p.Links))
			res.Rerouted++
		}
		if st.state == stActive {
			at := now + hopDelay
			if msgs[i].Start > at {
				at = msgs[i].Start
			}
			s.push(at, evStart, int32(i), 0)
		}
	}
}

package sim

// Simulation-engine benchmarks. BenchmarkDynamicOracle is the pre-refactor
// implementation (oracle_test.go); BenchmarkDynamic is the zero-allocation
// Simulator on the same workloads, so one `go test -bench 'Dynamic|Sweep'
// -benchmem` run shows the before/after pair. cmd/ccbench pins a subset of
// these into BENCH_sim.json.

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/topology"
)

// scheduleFor compiles the schedule covering the given messages.
func scheduleFor(b *testing.B, torus *topology.Torus, msgs []Message) *schedule.Result {
	b.Helper()
	var set request.Set
	for _, m := range msgs {
		set = append(set, request.Request{Src: nodeID(m.Src), Dst: nodeID(m.Dst)})
	}
	res, err := schedule.Combined{}.Schedule(torus, set.Dedup())
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// benchWorkloads are the single-run 8x8-torus workloads the acceptance
// numbers quote: the 64-node ring (light contention) and a 192-message
// hypercube-style random workload (heavy contention).
func benchWorkloads() []struct {
	name   string
	degree int
	msgs   []Message
} {
	ring := ringMessages(64, 7)
	dense := randomMessages(rand.New(rand.NewSource(1996)), 64, 192)
	return []struct {
		name   string
		degree int
		msgs   []Message
	}{
		{"ring64/K=2", 2, ring},
		{"dense192/K=5", 5, dense},
	}
}

func BenchmarkDynamic(b *testing.B) {
	torus := topology.NewTorus(8, 8)
	for _, w := range benchWorkloads() {
		b.Run(w.name, func(b *testing.B) {
			s, err := NewSimulator(torus, DefaultParams(w.degree))
			if err != nil {
				b.Fatal(err)
			}
			var res DynamicResult
			if err := s.RunInto(w.msgs, &res); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.RunInto(w.msgs, &res); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(res.Time), "slots")
		})
	}
}

func BenchmarkDynamicOracle(b *testing.B) {
	torus := topology.NewTorus(8, 8)
	for _, w := range benchWorkloads() {
		b.Run(w.name, func(b *testing.B) {
			params := DefaultParams(w.degree)
			var last int
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := runDynamicOracle(torus, params, w.msgs)
				if err != nil {
					b.Fatal(err)
				}
				last = res.Time
			}
			b.StopTimer()
			b.ReportMetric(float64(last), "slots")
		})
	}
}

func BenchmarkCompiledSim(b *testing.B) {
	torus := topology.NewTorus(8, 8)
	msgs := ringMessages(64, 32)
	sched := scheduleFor(b, torus, msgs)
	b.Run("ring64-reused", func(b *testing.B) {
		cs := NewCompiledSim()
		var out CompiledResult
		if err := cs.RunInto(sched, msgs, TDM, &out); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := cs.RunInto(sched, msgs, TDM, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSweep measures the worker-pool engine on a fixed 16-trial
// dynamic-simulation sweep; the workers=N rungs show the wall-clock win of
// parallel trials on multi-core machines (they can at best break even at
// GOMAXPROCS=1).
func BenchmarkSweep(b *testing.B) {
	torus := topology.NewTorus(8, 8)
	const trials = 16
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := Sweep(trials, workers, 1996, func(trial int, rng *rand.Rand) error {
					msgs, err := OpenLoop(rng, OpenLoopConfig{Nodes: 64, MessagesPerNode: 2, Flits: 2, MeanGap: 400})
					if err != nil {
						return err
					}
					s, err := NewSimulator(torus, DefaultParams(2))
					if err != nil {
						return err
					}
					var res DynamicResult
					return s.RunInto(msgs, &res)
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

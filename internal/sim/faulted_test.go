package sim

import (
	"reflect"
	"testing"

	"repro/internal/network"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/topology"
)

func faultParams() Params { return DefaultParams(2) }

// routeOf returns the deterministic route the simulator will use.
func routeOf(t *testing.T, top network.Topology, src, dst int) network.Path {
	t.Helper()
	p, err := top.Route(network.NodeID(src), network.NodeID(dst))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunFaultedEmptyMatchesRunInto(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	s, err := NewSimulator(torus, faultParams())
	if err != nil {
		t.Fatal(err)
	}
	msgs := []Message{{Src: 0, Dst: 5, Flits: 8}, {Src: 3, Dst: 9, Flits: 4}, {Src: 0, Dst: 10, Flits: 2}}
	var plain, faulted DynamicResult
	if err := s.RunInto(msgs, &plain); err != nil {
		t.Fatal(err)
	}
	if err := s.RunFaulted(msgs, nil, &faulted); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, faulted) {
		t.Fatalf("fault-free RunFaulted differs from RunInto:\n%+v\n%+v", plain, faulted)
	}
}

func TestRunFaultedReroutes(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	s, err := NewSimulator(torus, faultParams())
	if err != nil {
		t.Fatal(err)
	}
	direct := routeOf(t, torus, 0, 3)
	msgs := []Message{{Src: 0, Dst: 3, Flits: 1000}}
	// Kill the first link of the route mid-transmission.
	faults := []FaultEvent{{Slot: 200, Link: direct.Links[0]}}
	var res DynamicResult
	if err := s.RunFaulted(msgs, faults, &res); err != nil {
		t.Fatal(err)
	}
	if res.Lost != 0 {
		t.Fatalf("lost %d messages on a connected network", res.Lost)
	}
	if res.Rerouted != 1 {
		t.Fatalf("Rerouted = %d, want 1", res.Rerouted)
	}
	if res.FaultAborts != 1 {
		t.Fatalf("FaultAborts = %d, want 1", res.FaultAborts)
	}
	if res.Finish[0] == 0 || res.TimedOut {
		t.Fatalf("message not delivered after reroute: %+v", res)
	}
	// The detour is longer (or equal) and the restart costs time: delivery
	// must be later than the healthy run's.
	var healthy DynamicResult
	if err := s.RunInto(msgs, &healthy); err != nil {
		t.Fatal(err)
	}
	if res.Finish[0] <= healthy.Finish[0] {
		t.Fatalf("faulted finish %d not after healthy finish %d", res.Finish[0], healthy.Finish[0])
	}
}

func TestRunFaultedLostAndQueueSkip(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	s, err := NewSimulator(torus, faultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Sever node 5 from the network at slot 10: every incident link dies.
	var faults []FaultEvent
	for id := 0; id < torus.NumLinks(); id++ {
		li := torus.Link(network.LinkID(id))
		if li.From == 5 || li.To == 5 {
			faults = append(faults, FaultEvent{Slot: 10, Link: li.ID})
		}
	}
	// Source 0 queues a doomed message to 5 and then one to 10; the doomed
	// one must be declared lost and the queue must move on.
	msgs := []Message{
		{Src: 0, Dst: 5, Flits: 500},
		{Src: 0, Dst: 10, Flits: 5},
	}
	var res DynamicResult
	if err := s.RunFaulted(msgs, faults, &res); err != nil {
		t.Fatal(err)
	}
	if res.Lost != 1 {
		t.Fatalf("Lost = %d, want 1", res.Lost)
	}
	if res.Finish[0] != 0 {
		t.Fatalf("lost message has finish time %d", res.Finish[0])
	}
	if res.Finish[1] == 0 || res.TimedOut {
		t.Fatalf("queued successor of a lost message never delivered: %+v", res)
	}
}

func TestRunFaultedWaitingMessageLost(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	s, err := NewSimulator(torus, faultParams())
	if err != nil {
		t.Fatal(err)
	}
	var faults []FaultEvent
	for id := 0; id < torus.NumLinks(); id++ {
		li := torus.Link(network.LinkID(id))
		if li.From == 6 || li.To == 6 {
			faults = append(faults, FaultEvent{Slot: 3, Link: li.ID})
		}
	}
	// The doomed message is still queued behind a long one when its
	// destination dies; it must be skipped, not started.
	msgs := []Message{
		{Src: 1, Dst: 2, Flits: 300},
		{Src: 1, Dst: 6, Flits: 5},
		{Src: 1, Dst: 13, Flits: 5},
	}
	var res DynamicResult
	if err := s.RunFaulted(msgs, faults, &res); err != nil {
		t.Fatal(err)
	}
	if res.Lost != 1 || res.Finish[1] != 0 {
		t.Fatalf("waiting doomed message: Lost=%d Finish=%v", res.Lost, res.Finish)
	}
	if res.Finish[0] == 0 || res.Finish[2] == 0 || res.TimedOut {
		t.Fatalf("deliverable messages stalled: %+v", res)
	}
}

func TestRunFaultedPartialChannel(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	s, err := NewSimulator(torus, faultParams())
	if err != nil {
		t.Fatal(err)
	}
	direct := routeOf(t, torus, 0, 1)
	msgs := []Message{{Src: 0, Dst: 1, Flits: 400}}
	// Channel 0 of the first link dies mid-flight; the circuit holds the
	// lowest free channel, so it breaks and must re-reserve channel 1.
	faults := []FaultEvent{{Slot: 50, Link: direct.Links[0], Mask: 1}}
	var res DynamicResult
	if err := s.RunFaulted(msgs, faults, &res); err != nil {
		t.Fatal(err)
	}
	if res.Lost != 0 || res.Rerouted != 0 {
		t.Fatalf("partial channel fault should not lose or reroute: %+v", res)
	}
	if res.FaultAborts != 1 {
		t.Fatalf("FaultAborts = %d, want 1", res.FaultAborts)
	}
	if res.Finish[0] == 0 || res.TimedOut {
		t.Fatalf("message not delivered on the surviving channel: %+v", res)
	}
}

func TestRunFaultedDeterministic(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	s, err := NewSimulator(torus, faultParams())
	if err != nil {
		t.Fatal(err)
	}
	var msgs []Message
	for i := 0; i < 64; i++ {
		msgs = append(msgs, Message{Src: i, Dst: (i + 9) % 64, Flits: 64})
	}
	var faults []FaultEvent
	for _, l := range []network.LinkID{3, 40, 77, 120} {
		faults = append(faults, FaultEvent{Slot: 30, Link: l})
	}
	var a, b DynamicResult
	if err := s.RunFaulted(msgs, faults, &a); err != nil {
		t.Fatal(err)
	}
	finishA := append([]int(nil), a.Finish...)
	if err := s.RunFaulted(msgs, faults, &b); err != nil {
		t.Fatal(err)
	}
	a.Finish = finishA
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical faulted runs differ:\n%+v\n%+v", a, b)
	}
	if a.FaultAborts == 0 && a.Rerouted == 0 {
		t.Fatal("fault plan did not perturb the run; test is vacuous")
	}
}

func TestRunFaultedBadFault(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	s, err := NewSimulator(torus, faultParams())
	if err != nil {
		t.Fatal(err)
	}
	msgs := []Message{{Src: 0, Dst: 1, Flits: 1}}
	var res DynamicResult
	if err := s.RunFaulted(msgs, []FaultEvent{{Slot: 0, Link: 9999}}, &res); err == nil {
		t.Fatal("out-of-range fault link accepted")
	}
	if err := s.RunFaulted(msgs, []FaultEvent{{Slot: -1, Link: 0}}, &res); err == nil {
		t.Fatal("negative fault slot accepted")
	}
}

func TestRunUntilPartialProgress(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	msgs := []Message{{Src: 0, Dst: 5, Flits: 10}, {Src: 3, Dst: 9, Flits: 2}}
	sched, err := schedule.Combined{}.Schedule(torus, request.Set{{Src: 0, Dst: 5}, {Src: 3, Dst: 9}})
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCompiledSim()
	full, err := cs.Run(sched, msgs, TDM)
	if err != nil {
		t.Fatal(err)
	}
	// Stop halfway: some flits must remain, and finished messages keep
	// their full-run finish times.
	var out CompiledResult
	rem, err := cs.RunUntil(sched, msgs, TDM, full.Time/2, &out)
	if err != nil {
		t.Fatal(err)
	}
	if rem == nil {
		t.Fatal("no remaining flits at half time")
	}
	totalRem := 0
	for i, r := range rem {
		if r < 0 || r > msgs[i].Flits {
			t.Fatalf("remaining[%d] = %d out of range", i, r)
		}
		totalRem += r
		if r == 0 && out.Finish[i] != full.Finish[i] {
			t.Fatalf("finished message %d: bounded finish %d != full finish %d", i, out.Finish[i], full.Finish[i])
		}
		if r > 0 && out.Finish[i] != 0 {
			t.Fatalf("unfinished message %d has finish %d", i, out.Finish[i])
		}
	}
	if totalRem == 0 {
		t.Fatal("rem returned but sums to zero")
	}
	// Stopping after the natural end is a no-op.
	rem, err = cs.RunUntil(sched, msgs, TDM, full.Time+1, &out)
	if err != nil {
		t.Fatal(err)
	}
	if rem != nil {
		t.Fatalf("remaining flits after the phase completed: %v", rem)
	}
	if out.Time != full.Time {
		t.Fatalf("bounded Time %d != full Time %d", out.Time, full.Time)
	}
}

package sim_test

import (
	"math/rand"
	"testing"

	"repro/internal/patterns"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/topology"
)

// TestCheckedMatchesUnchecked: on valid schedules the physically-checked
// simulator produces identical timing.
func TestCheckedMatchesUnchecked(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	rng := rand.New(rand.NewSource(55))
	set, err := patterns.Random(rng, 64, 900)
	if err != nil {
		t.Fatal(err)
	}
	res := compile(t, torus, set)
	msgs := make([]sim.Message, len(set))
	for i, r := range set {
		msgs[i] = sim.Message{Src: int(r.Src), Dst: int(r.Dst), Flits: 1 + rng.Intn(20)}
	}
	a, err := sim.RunCompiled(res, msgs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.RunCompiledChecked(res, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time {
		t.Fatalf("checked time %d vs unchecked %d", b.Time, a.Time)
	}
	for i := range msgs {
		if a.Finish[i] != b.Finish[i] {
			t.Fatalf("message %d: checked %d vs unchecked %d", i, b.Finish[i], a.Finish[i])
		}
	}
}

// TestCheckedCatchesConflictingSchedule: a hand-corrupted schedule that
// puts two conflicting circuits in one slot must be caught at "runtime".
func TestCheckedCatchesConflictingSchedule(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	// Two circuits sharing a link: (0,0)->(0,2) and (0,1)->(0,3).
	a := request.Request{Src: torus.Node(0, 0), Dst: torus.Node(0, 2)}
	b := request.Request{Src: torus.Node(0, 1), Dst: torus.Node(0, 3)}
	bad := &schedule.Result{
		Algorithm: "corrupt",
		Topology:  torus,
		Configs:   []request.Set{{a, b}},
		Slot:      map[request.Request]int{a: 0, b: 0},
	}
	msgs := []sim.Message{
		{Src: int(a.Src), Dst: int(a.Dst), Flits: 2},
		{Src: int(b.Src), Dst: int(b.Dst), Flits: 2},
	}
	if _, err := sim.RunCompiledChecked(bad, msgs); err == nil {
		t.Error("checked simulator accepted a link conflict")
	}
	// Sanity: the unchecked simulator (trusting the schedule) runs it.
	if _, err := sim.RunCompiled(bad, msgs); err != nil {
		t.Fatalf("unchecked: %v", err)
	}
}

func TestCheckedCatchesPortConflicts(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	a := request.Request{Src: 0, Dst: 1}
	b := request.Request{Src: 0, Dst: 9}
	bad := &schedule.Result{
		Algorithm: "corrupt",
		Topology:  torus,
		Configs:   []request.Set{{a, b}},
		Slot:      map[request.Request]int{a: 0, b: 0},
	}
	msgs := []sim.Message{
		{Src: 0, Dst: 1, Flits: 1},
		{Src: 0, Dst: 9, Flits: 1},
	}
	if _, err := sim.RunCompiledChecked(bad, msgs); err == nil {
		t.Error("checked simulator accepted an injection-port conflict")
	}
}

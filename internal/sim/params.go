// Package sim is a slot-level simulator of a time-division-multiplexed
// all-optical network. It evaluates the two control regimes the paper
// compares in Section 4:
//
//   - Compiled communication: the compiler has already scheduled every
//     connection of the (static) pattern into a TDM slot and loaded the
//     switch programs, so every circuit exists when the communication phase
//     starts. Messages stream one flit per TDM frame through their slot.
//
//   - Dynamic control: the network runs with a fixed multiplexing degree
//     and circuits are established at runtime by a distributed path
//     reservation protocol over an electronic shadow network (reservation,
//     acknowledgement and release packets; see Section 4.1 of the paper).
//
// Time is measured in TDM slots throughout, matching the paper's unit. A
// frame is Degree consecutive slots; a circuit assigned slot u carries one
// flit in every frame's slot u.
package sim

import "fmt"

// Mode selects the multiplexing technology. The paper evaluates TDM;
// wavelength-division multiplexing (WDM) is provided as the natural
// companion model (same connection scheduling, different data plane).
type Mode int

const (
	// TDM shares each link in time: a circuit in slot u of a degree-K
	// network moves one flit every K slots.
	TDM Mode = iota
	// WDM gives each circuit a full-rate wavelength channel: one flit per
	// slot regardless of the multiplexing degree.
	WDM
)

func (m Mode) String() string {
	switch m {
	case TDM:
		return "tdm"
	case WDM:
		return "wdm"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ReservationScheme selects how the dynamic protocol claims virtual
// channels, the two classic variants of the distributed-reservation
// literature the paper builds on ([15, 17]).
type ReservationScheme int

const (
	// LockForward is the paper's Section 4.1 protocol: the reservation
	// packet locks every available channel of each link on its way to the
	// destination; the acknowledgement releases the non-selected ones.
	// Aggressive locking avoids ack-time races at the price of
	// over-reserving while the control packet is in flight.
	LockForward ReservationScheme = iota
	// LockBackward is the holding-free variant: the reservation packet
	// only observes availability; the acknowledgement locks the selected
	// channel on its way back and may itself fail if a competitor claimed
	// the channel first (the race forward locking prevents), triggering a
	// retry from the source.
	LockBackward
)

func (r ReservationScheme) String() string {
	switch r {
	case LockForward:
		return "lock-forward"
	case LockBackward:
		return "lock-backward"
	default:
		return fmt.Sprintf("ReservationScheme(%d)", int(r))
	}
}

// Params are the simulator's system parameters. The paper's own parameter
// list did not survive in the available text, so defaults are chosen to be
// plausible for the hardware the paper assumes (electronic control an order
// of magnitude slower than optical slot time) and are documented here; the
// EXPERIMENTS.md table records the shape sensitivity.
type Params struct {
	// Mode is the multiplexing technology; the zero value is TDM, the
	// paper's subject.
	Mode Mode
	// Degree is the TDM multiplexing degree. For compiled communication it
	// is the degree of the compiled schedule; for dynamic control it is the
	// fixed degree the network was built with (1, 2, 5, 10 in Table 5).
	Degree int
	// CtlHopDelay is the time, in slots, for a control packet (reservation,
	// ack, nack, release) to be processed and forwarded across one hop of
	// the electronic shadow network. Default 8.
	CtlHopDelay int
	// RetryBackoff is the base delay, in slots, a source waits after a
	// failed reservation before retrying. The k-th retry of a message waits
	// RetryBackoff*min(k,8) plus a deterministic per-message jitter.
	// Default 16.
	RetryBackoff int
	// ShadowQueuing, when set, models contention on the electronic shadow
	// network: each switch's control processor serves one packet at a
	// time (a single queue, the head-of-line bottleneck of Sivalingam &
	// Dowd that the paper cites), so concurrent control packets through
	// one switch serialize. Off by default, matching the paper's
	// light-shadow-traffic assumption.
	ShadowQueuing bool
	// Reservation selects the path-reservation variant; the zero value is
	// the paper's forward-locking protocol.
	Reservation ReservationScheme
	// MaxTime aborts the simulation when the clock passes it, guarding
	// against livelock. Default 50_000_000.
	MaxTime int
}

// DefaultParams returns the documented defaults with the given multiplexing
// degree.
func DefaultParams(degree int) Params {
	return Params{
		Degree:       degree,
		CtlHopDelay:  8,
		RetryBackoff: 16,
		MaxTime:      50_000_000,
	}
}

// Validate checks the parameters for the nonsensical values that would
// otherwise surface only as a silent timeout or an endless run (zero slot
// lengths, non-positive control latency, MaxTime < 1, degrees outside the
// 64-slot register model). Every error names the offending parameter and
// its value. NewSimulator and Dynamic.Run call it; construction-time
// callers can invoke it directly to fail fast.
func (p Params) Validate() error {
	if p.Degree < 1 {
		return fmt.Errorf("sim: multiplexing degree %d < 1", p.Degree)
	}
	if p.Degree > 64 {
		return fmt.Errorf("sim: multiplexing degree %d exceeds the 64-slot register model", p.Degree)
	}
	if p.CtlHopDelay < 1 {
		return fmt.Errorf("sim: control hop delay %d < 1", p.CtlHopDelay)
	}
	if p.RetryBackoff < 1 {
		return fmt.Errorf("sim: retry backoff %d < 1", p.RetryBackoff)
	}
	if p.MaxTime < 1 {
		return fmt.Errorf("sim: max time %d < 1", p.MaxTime)
	}
	if p.Mode != TDM && p.Mode != WDM {
		return fmt.Errorf("sim: unknown multiplexing mode %d", int(p.Mode))
	}
	if p.Reservation != LockForward && p.Reservation != LockBackward {
		return fmt.Errorf("sim: unknown reservation scheme %d", int(p.Reservation))
	}
	return nil
}

// Message is one point-to-point transfer of Flits flits. A flit is the unit
// transferred over a circuit in one slot.
type Message struct {
	Src, Dst int
	Flits    int
	// Start is the slot at which the message becomes ready at its source;
	// zero means available when the communication phase begins. Non-zero
	// starts model open-loop workloads for the latency-vs-load experiments.
	Start int
}

func (m Message) validate() error {
	if m.Flits < 1 {
		return fmt.Errorf("sim: message %d->%d has %d flits", m.Src, m.Dst, m.Flits)
	}
	if m.Src == m.Dst {
		return fmt.Errorf("sim: message %d->%d is a self-loop", m.Src, m.Dst)
	}
	if m.Start < 0 {
		return fmt.Errorf("sim: message %d->%d starts at negative slot %d", m.Src, m.Dst, m.Start)
	}
	return nil
}

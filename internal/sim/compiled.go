package sim

import (
	"fmt"

	"repro/internal/request"
	"repro/internal/schedule"
)

// CompiledResult reports a compiled-communication run.
type CompiledResult struct {
	// Time is the slot at which the last flit of the last message was
	// delivered (the pattern's communication time).
	Time int
	// Degree is the multiplexing degree of the compiled schedule.
	Degree int
	// Finish holds each message's delivery time, indexed like the input.
	Finish []int
}

// CompiledSim is a reusable engine for the compiled-communication data
// plane. Like Simulator it owns flat preallocated arrays — per-circuit
// message queues, per-slot circuit groups, remaining-flit counters — so
// repeated runs reuse the same storage. Messages of one circuit serialize
// in start order; a TDM circuit moves one flit in its slot of every frame,
// a WDM circuit one flit every slot.
//
// A CompiledSim is NOT safe for concurrent use; give each sweep worker its
// own.
type CompiledSim struct {
	idx       map[request.Request]int32 // circuit index per (src, dst)
	slots     []int32                   // per circuit: assigned TDM slot
	qhead     []int32                   // per circuit: head index into order
	qend      []int32                   // per circuit: end index (exclusive)
	order     []int32                   // message indices grouped by circuit, start-ordered
	remaining []int32                   // per message: flits still to deliver
	slotOff   []int32                   // per TDM slot: offset into slotCircuits
	slotCirc  []int32                   // circuit ids grouped by slot
	counts    []int32                   // scratch for the grouping counting sorts
}

// NewCompiledSim returns an empty reusable compiled-communication engine.
func NewCompiledSim() *CompiledSim {
	return &CompiledSim{idx: make(map[request.Request]int32)}
}

// Run executes the compiled data plane into a fresh result.
func (cs *CompiledSim) Run(res *schedule.Result, msgs []Message, mode Mode) (*CompiledResult, error) {
	out := &CompiledResult{}
	if err := cs.RunInto(res, msgs, mode, out); err != nil {
		return nil, err
	}
	return out, nil
}

// grow reslices an int32 buffer to n, reallocating only when capacity is
// exceeded.
func grow(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// RunInto is Run with a caller-owned result; out and every internal buffer
// are reused across calls.
func (cs *CompiledSim) RunInto(res *schedule.Result, msgs []Message, mode Mode, out *CompiledResult) error {
	_, err := cs.runBounded(res, msgs, mode, -1, out)
	return err
}

// RunUntil is RunInto stopped at the start of slot stop: only slots
// 0..stop-1 execute. It returns the per-message flit counts still
// undelivered when the clock hit stop (all zeros if the pattern finished
// early); messages with remaining flits have Finish == 0. This is the
// partial-progress primitive of fault recovery: a failure at slot T is
// simulated by running the healthy schedule until T, recompiling, and
// re-running the remainders on the degraded schedule.
//
// The returned slice is freshly allocated when any message is unfinished
// (nil when the phase completed), so callers may keep it across further
// runs of the engine.
func (cs *CompiledSim) RunUntil(res *schedule.Result, msgs []Message, mode Mode, stop int, out *CompiledResult) ([]int, error) {
	if stop < 0 {
		return nil, fmt.Errorf("sim: negative stop slot %d", stop)
	}
	total, err := cs.runBounded(res, msgs, mode, stop, out)
	if err != nil {
		return nil, err
	}
	if total == 0 {
		return nil, nil
	}
	rem := make([]int, len(msgs))
	for i := range msgs {
		rem[i] = int(cs.remaining[i])
	}
	return rem, nil
}

// runBounded is the engine shared by RunInto (limit < 0: run to completion)
// and RunUntil (limit >= 0: run slots [0, limit)). It returns the number of
// flits still undelivered.
func (cs *CompiledSim) runBounded(res *schedule.Result, msgs []Message, mode Mode, limit int, out *CompiledResult) (int, error) {
	k := res.Degree()
	if k == 0 {
		return 0, fmt.Errorf("sim: empty schedule")
	}

	// Assign a dense circuit index to every distinct (src, dst) and count
	// the messages per circuit.
	clear(cs.idx)
	cs.slots = cs.slots[:0]
	total := 0
	cs.remaining = grow(cs.remaining, len(msgs))
	cs.counts = grow(cs.counts, len(msgs))
	circuitOf := cs.counts // per message: its circuit
	for i, m := range msgs {
		if err := m.validate(); err != nil {
			return 0, err
		}
		r := request.Request{Src: nodeID(m.Src), Dst: nodeID(m.Dst)}
		c, ok := cs.idx[r]
		if !ok {
			u, scheduled := res.Slot[r]
			if !scheduled {
				return 0, fmt.Errorf("sim: message %d->%d has no circuit in the compiled schedule", m.Src, m.Dst)
			}
			c = int32(len(cs.slots))
			cs.slots = append(cs.slots, int32(u))
			cs.idx[r] = c
		}
		circuitOf[i] = c
		cs.remaining[i] = int32(m.Flits)
		total += m.Flits
	}
	nc := len(cs.slots)

	// Group message indices by circuit (counting sort keeps input order,
	// i.e. the grouping is stable), then order each circuit's window by
	// Start with an in-place stable insertion sort — windows are short and
	// already sorted in the common all-start-at-zero workloads.
	cs.qhead = grow(cs.qhead, nc+1)
	cs.qend = grow(cs.qend, nc)
	cs.order = grow(cs.order, len(msgs))
	for c := 0; c <= nc; c++ {
		cs.qhead[c] = 0
	}
	for _, c := range circuitOf[:len(msgs)] {
		cs.qhead[c]++
	}
	off := int32(0)
	for c := 0; c < nc; c++ {
		n := cs.qhead[c]
		cs.qhead[c] = off
		off += n
	}
	for i := range msgs {
		c := circuitOf[i]
		cs.order[cs.qhead[c]] = int32(i)
		cs.qhead[c]++
	}
	start := int32(0)
	for c := 0; c < nc; c++ {
		end := cs.qhead[c]
		cs.qend[c] = end
		w := cs.order[start:end]
		for i := 1; i < len(w); i++ {
			j := i
			for j > 0 && msgs[w[j-1]].Start > msgs[w[j]].Start {
				w[j-1], w[j] = w[j], w[j-1]
				j--
			}
		}
		cs.qhead[c] = start
		start = end
	}
	cs.qhead = cs.qhead[:nc]

	// Group circuits by TDM slot so each frame position scans only the
	// circuits that may move in it (in WDM mode every circuit moves every
	// slot and the grouping is bypassed).
	if mode == TDM {
		cs.slotOff = grow(cs.slotOff, k+1)
		cs.slotCirc = grow(cs.slotCirc, nc)
		for u := 0; u <= k; u++ {
			cs.slotOff[u] = 0
		}
		for _, u := range cs.slots {
			cs.slotOff[u]++
		}
		off = 0
		for u := 0; u < k; u++ {
			n := cs.slotOff[u]
			cs.slotOff[u] = off
			off += n
		}
		cs.slotOff[k] = off
		tmp := cs.slotOff
		for c, u := range cs.slots {
			cs.slotCirc[tmp[u]] = int32(c)
			tmp[u]++
		}
		// Restore the offsets shifted by the fill pass.
		for u := k; u > 0; u-- {
			cs.slotOff[u] = cs.slotOff[u-1]
		}
		cs.slotOff[0] = 0
	} else {
		cs.slotCirc = grow(cs.slotCirc, nc)
		for c := 0; c < nc; c++ {
			cs.slotCirc[c] = int32(c)
		}
	}

	if cap(out.Finish) < len(msgs) {
		out.Finish = make([]int, len(msgs))
	} else {
		out.Finish = out.Finish[:len(msgs)]
		for i := range out.Finish {
			out.Finish[i] = 0
		}
	}
	out.Degree = k
	last := 0
	for t := 0; total > 0 && (limit < 0 || t < limit); t++ {
		group := cs.slotCirc[:len(cs.slots)]
		if mode == TDM {
			u := t % k
			group = cs.slotCirc[cs.slotOff[u]:cs.slotOff[u+1]]
		}
		for _, c := range group {
			h := cs.qhead[c]
			if h == cs.qend[c] {
				continue
			}
			i := cs.order[h]
			if msgs[i].Start > t {
				continue
			}
			cs.remaining[i]--
			total--
			if cs.remaining[i] == 0 {
				out.Finish[i] = t + 1 // delivered at the end of slot t
				if t+1 > last {
					last = t + 1
				}
				cs.qhead[c] = h + 1
			}
		}
	}
	out.Time = last
	return total, nil
}

// RunCompiled simulates a communication phase under compiled communication
// on a TDM network. The schedule must cover every message's (src, dst)
// pair; all circuits are established before slot 0 (the switch registers
// were loaded by compiled code), and a message whose connection was
// assigned TDM slot u delivers one flit at the end of every slot t with
// t mod K == u once the message has started. Messages sharing a circuit
// serialize in start order.
//
// The simulation steps slots explicitly rather than using the closed form
// (finish = u+1 + (flits-1)*K for a lone message starting at 0) so that the
// data plane stays observable; the equivalence with the closed form is
// asserted by tests.
func RunCompiled(res *schedule.Result, msgs []Message) (*CompiledResult, error) {
	return NewCompiledSim().Run(res, msgs, TDM)
}

// RunCompiledWDM simulates the same compiled schedule on a
// wavelength-division multiplexed network: configuration k's circuits use
// wavelength k, so all configurations are active simultaneously and every
// circuit moves one flit per slot. The multiplexing degree then costs
// hardware (wavelengths) instead of time.
func RunCompiledWDM(res *schedule.Result, msgs []Message) (*CompiledResult, error) {
	return NewCompiledSim().Run(res, msgs, WDM)
}

// CompiledTimeClosedForm predicts the finish time of a lone message with
// the given flit count on a TDM circuit in slot u of a degree-k schedule,
// starting at slot 0: the first flit completes at slot u+1 and each further
// flit costs one frame.
func CompiledTimeClosedForm(u, k, flits int) int {
	return u + 1 + (flits-1)*k
}

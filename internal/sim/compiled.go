package sim

import (
	"fmt"
	"sort"

	"repro/internal/request"
	"repro/internal/schedule"
)

// CompiledResult reports a compiled-communication run.
type CompiledResult struct {
	// Time is the slot at which the last flit of the last message was
	// delivered (the pattern's communication time).
	Time int
	// Degree is the multiplexing degree of the compiled schedule.
	Degree int
	// Finish holds each message's delivery time, indexed like the input.
	Finish []int
}

// circuitQueue carries the messages of one compiled circuit in start order;
// a circuit moves one flit per opportunity, so same-circuit messages
// serialize.
type circuitQueue struct {
	slot int
	msgs []int // indices into the message slice, ordered by Start
}

// runCompiled is the shared data-plane loop for both multiplexing modes.
// In TDM mode a circuit's opportunity comes once per frame (its slot); in
// WDM mode every circuit owns a full-rate wavelength and moves one flit
// every slot.
func runCompiled(res *schedule.Result, msgs []Message, mode Mode) (*CompiledResult, error) {
	k := res.Degree()
	if k == 0 {
		return nil, fmt.Errorf("sim: empty schedule")
	}
	byCircuit := make(map[request.Request]*circuitQueue)
	total := 0
	for i, m := range msgs {
		if err := m.validate(); err != nil {
			return nil, err
		}
		r := request.Request{Src: nodeID(m.Src), Dst: nodeID(m.Dst)}
		q, ok := byCircuit[r]
		if !ok {
			u, scheduled := res.Slot[r]
			if !scheduled {
				return nil, fmt.Errorf("sim: message %d->%d has no circuit in the compiled schedule", m.Src, m.Dst)
			}
			q = &circuitQueue{slot: u}
			byCircuit[r] = q
		}
		q.msgs = append(q.msgs, i)
		total += m.Flits
	}
	queues := make([]*circuitQueue, 0, len(byCircuit))
	for _, q := range byCircuit {
		sort.SliceStable(q.msgs, func(a, b int) bool { return msgs[q.msgs[a]].Start < msgs[q.msgs[b]].Start })
		queues = append(queues, q)
	}

	remaining := make([]int, len(msgs))
	for i, m := range msgs {
		remaining[i] = m.Flits
	}
	finish := make([]int, len(msgs))
	last := 0
	for t := 0; total > 0; t++ {
		for _, q := range queues {
			if len(q.msgs) == 0 {
				continue
			}
			if mode == TDM && t%k != q.slot {
				continue
			}
			i := q.msgs[0]
			if msgs[i].Start > t {
				continue
			}
			remaining[i]--
			total--
			if remaining[i] == 0 {
				finish[i] = t + 1 // delivered at the end of slot t
				if t+1 > last {
					last = t + 1
				}
				q.msgs = q.msgs[1:]
			}
		}
	}
	return &CompiledResult{Time: last, Degree: k, Finish: finish}, nil
}

// RunCompiled simulates a communication phase under compiled communication
// on a TDM network. The schedule must cover every message's (src, dst)
// pair; all circuits are established before slot 0 (the switch registers
// were loaded by compiled code), and a message whose connection was
// assigned TDM slot u delivers one flit at the end of every slot t with
// t mod K == u once the message has started. Messages sharing a circuit
// serialize in start order.
//
// The simulation steps slots explicitly rather than using the closed form
// (finish = u+1 + (flits-1)*K for a lone message starting at 0) so that the
// data plane stays observable; the equivalence with the closed form is
// asserted by tests.
func RunCompiled(res *schedule.Result, msgs []Message) (*CompiledResult, error) {
	return runCompiled(res, msgs, TDM)
}

// RunCompiledWDM simulates the same compiled schedule on a
// wavelength-division multiplexed network: configuration k's circuits use
// wavelength k, so all configurations are active simultaneously and every
// circuit moves one flit per slot. The multiplexing degree then costs
// hardware (wavelengths) instead of time.
func RunCompiledWDM(res *schedule.Result, msgs []Message) (*CompiledResult, error) {
	return runCompiled(res, msgs, WDM)
}

// CompiledTimeClosedForm predicts the finish time of a lone message with
// the given flit count on a TDM circuit in slot u of a degree-k schedule,
// starting at slot 0: the first flit completes at slot u+1 and each further
// flit costs one frame.
func CompiledTimeClosedForm(u, k, flits int) int {
	return u + 1 + (flits-1)*k
}

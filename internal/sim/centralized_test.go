package sim_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestCentralizedAddsSerialSetup(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	gs, err := apps.GS(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	p := sim.DefaultCentralizedParams()
	out, err := sim.RunCentralized(torus, gs.Messages, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := schedule.Combined{}.Schedule(torus, (apps.Phase{Messages: gs.Messages}).Pattern().Dedup())
	if err != nil {
		t.Fatal(err)
	}
	comp, err := sim.RunCompiled(res, gs.Messages)
	if err != nil {
		t.Fatal(err)
	}
	setup := p.RoundTrip + 126*p.Service
	if out.Time < comp.Time+setup-res.Degree() || out.Time > comp.Time+setup+res.Degree() {
		t.Errorf("centralized time %d, want roughly compiled %d + setup %d", out.Time, comp.Time, setup)
	}
}

// TestCentralizedDoesNotScale is the paper's Section 2 claim in numbers:
// as the pattern densifies, the serial controller term dominates and the
// compiled/centralized gap widens.
func TestCentralizedDoesNotScale(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	p := sim.DefaultCentralizedParams()
	ratios := make([]float64, 0, 2)
	for _, build := range []func() apps.Phase{
		func() apps.Phase { ph, _ := apps.GS(64, 64); return ph },   // 126 connections
		func() apps.Phase { phs, _ := apps.P3M(32); return phs[1] }, // 2016 connections
	} {
		ph := build()
		cen, err := sim.RunCentralized(torus, ph.Messages, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := schedule.Combined{}.Schedule(torus, ph.Pattern().Dedup())
		if err != nil {
			t.Fatal(err)
		}
		comp, err := sim.RunCompiled(res, ph.Messages)
		if err != nil {
			t.Fatal(err)
		}
		ratios = append(ratios, float64(cen.Time)/float64(comp.Time))
	}
	t.Logf("centralized/compiled ratio: sparse %.1fx, dense %.1fx", ratios[0], ratios[1])
	if ratios[1] <= ratios[0] {
		t.Errorf("controller serialization should hurt dense patterns more: %.2f vs %.2f", ratios[1], ratios[0])
	}
}

func TestCentralizedBadParams(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	msg := []sim.Message{{Src: 0, Dst: 1, Flits: 1}}
	if _, err := sim.RunCentralized(torus, msg, sim.CentralizedParams{RoundTrip: -1, Service: 1}); err == nil {
		t.Error("negative round trip accepted")
	}
	if _, err := sim.RunCentralized(torus, msg, sim.CentralizedParams{RoundTrip: 1, Service: 0}); err == nil {
		t.Error("zero service time accepted")
	}
}

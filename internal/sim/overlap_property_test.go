package sim_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/network"
	"repro/internal/patterns"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/topology"
)

// TestOverlapSerializedEquivalenceAcrossFamilies is the property the whole
// overlap model rests on: overlapped register loading changes WHEN a phase
// may start, never WHAT the network delivers. For multi-phase programs over
// three topology families — mixing repeated, drifted, and random patterns
// so boundaries of every kind occur — the overlapped and serialized runs
// must produce byte-identical per-phase schedules and message finish times;
// only the stall accounting may differ, and only downward.
func TestOverlapSerializedEquivalenceAcrossFamilies(t *testing.T) {
	families := []struct {
		name string
		topo network.Topology
	}{
		{"ring-16", topology.NewRing(16)},
		{"torus-8x8", topology.NewTorus(8, 8)},
		{"hypercube-32", topology.NewHypercube(5)},
	}
	for _, f := range families {
		f := f
		t.Run(f.name, func(t *testing.T) {
			n := f.topo.NumNodes()
			rng := rand.New(rand.NewSource(int64(7 * n)))
			ring := patterns.Ring(n)
			drift := ring.Clone()
			drift[0].Dst = network.NodeID(2) // one circuit replaced
			randA, err := patterns.Random(rng, n, n)
			if err != nil {
				t.Fatal(err)
			}
			// Phase sequence with keep-shaped (repeat), patch-shaped
			// (drift), and recompile-shaped (random) boundaries.
			sets := []request.Set{ring, ring, drift, randA, randA, ring}
			specs := make([]sim.PhaseSpec, len(sets))
			for i, set := range sets {
				res, err := schedule.Combined{}.Schedule(f.topo, set.Dedup())
				if err != nil {
					t.Fatal(err)
				}
				msgs := make([]sim.Message, len(set))
				for j, r := range set {
					msgs[j] = sim.Message{Src: int(r.Src), Dst: int(r.Dst), Flits: 1 + (i+j)%5}
				}
				specs[i] = sim.PhaseSpec{Schedule: res, Messages: msgs}
			}
			over, err := sim.RunProgram(specs, 1, 16, true)
			if err != nil {
				t.Fatal(err)
			}
			ser, err := sim.RunProgram(specs, 1, 16, false)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(over.Finish, ser.Finish) {
				t.Fatal("overlapped and serialized runs deliver different finish times")
			}
			for i := range over.Costs {
				if over.Costs[i].Comm != ser.Costs[i].Comm {
					t.Fatalf("phase %d: comm %d vs %d", i, over.Costs[i].Comm, ser.Costs[i].Comm)
				}
				if over.Costs[i].Stall > over.Costs[i].SerializedStall {
					t.Fatalf("phase %d: overlap stall %d above serialized %d", i, over.Costs[i].Stall, over.Costs[i].SerializedStall)
				}
				if over.Costs[i].SerializedStall != ser.Costs[i].Stall {
					t.Fatalf("phase %d: serialized accounting disagrees between modes", i)
				}
			}
			if over.Total > ser.Total {
				t.Fatalf("overlap total %d exceeds serialized %d", over.Total, ser.Total)
			}
			if over.Serialized != ser.Total {
				t.Fatalf("overlap run reports serialized %d, serialized run %d", over.Serialized, ser.Total)
			}
		})
	}
}

// TestRunProgramDeterministic: the accounting path is a pure function — two
// runs over the same specs are identical in every field.
func TestRunProgramDeterministic(t *testing.T) {
	topo := topology.NewTorus(4, 4)
	rng := rand.New(rand.NewSource(99))
	var specs []sim.PhaseSpec
	for i := 0; i < 4; i++ {
		set, err := patterns.Random(rng, 16, 20)
		if err != nil {
			t.Fatal(err)
		}
		res, err := schedule.Combined{}.Schedule(topo, set.Dedup())
		if err != nil {
			t.Fatal(err)
		}
		msgs := make([]sim.Message, len(set))
		for j, r := range set {
			msgs[j] = sim.Message{Src: int(r.Src), Dst: int(r.Dst), Flits: 2}
		}
		specs = append(specs, sim.PhaseSpec{Schedule: res, Messages: msgs})
	}
	a, err := sim.RunProgram(specs, 1, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.RunProgram(specs, 1, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("RunProgram is not deterministic")
	}
}

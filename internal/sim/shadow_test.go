package sim_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestShadowQueuingNoEffectOnLoneMessage(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	msg := []sim.Message{{Src: 0, Dst: 3, Flits: 5}}
	plain := sim.DefaultParams(1)
	queued := sim.DefaultParams(1)
	queued.ShadowQueuing = true
	a, err := sim.Dynamic{Topology: torus, Params: plain}.Run(msg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Dynamic{Topology: torus, Params: queued}.Run(msg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time {
		t.Errorf("lone message: plain %d vs queued %d; no contention, times must match", a.Time, b.Time)
	}
}

func TestShadowQueuingSlowsControlStorms(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	tscf, err := apps.TSCF(64)
	if err != nil {
		t.Fatal(err)
	}
	plain := sim.DefaultParams(5)
	queued := sim.DefaultParams(5)
	queued.ShadowQueuing = true
	a, err := sim.Dynamic{Topology: torus, Params: plain}.Run(tscf.Messages)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Dynamic{Topology: torus, Params: queued}.Run(tscf.Messages)
	if err != nil {
		t.Fatal(err)
	}
	if b.TimedOut {
		t.Fatal("queued run timed out")
	}
	if b.Time <= a.Time {
		t.Errorf("384 simultaneous reservations: queued shadow network (%d) should be slower than contention-free (%d)",
			b.Time, a.Time)
	}
	t.Logf("TSCF dynamic K=5: contention-free control %d slots, queued control %d slots", a.Time, b.Time)
}

func TestShadowQueuingDeterministic(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	gs, err := apps.GS(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	p := sim.DefaultParams(2)
	p.ShadowQueuing = true
	d := sim.Dynamic{Topology: torus, Params: p}
	a, err := d.Run(gs.Messages)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Run(gs.Messages)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time || a.Attempts != b.Attempts {
		t.Error("queued simulation not deterministic")
	}
}

package sim

import (
	"fmt"
	"sort"

	"repro/internal/network"
	"repro/internal/request"
	"repro/internal/schedule"
)

// This file is the simulator-level accounting path for overlap-aware
// reconfiguration. Between two compiled phases the switches must rewrite
// the shift-register entries that differ; each switch owns its register
// write port, so switches load in parallel while the entries of one switch
// load serially (one entry per ReconfigCost.PerSlot slots). A switch that
// sits idle in some TDM slots of the *current* phase can absorb register
// writes during those slots, so the next phase only stalls for the largest
// per-switch remainder that could not be hidden, plus the epoch barrier.

// Request returns the message's connection request — the (src, dst) pair a
// compiled schedule must hold a circuit for.
func (m Message) Request() request.Request {
	return request.Request{Src: network.NodeID(m.Src), Dst: network.NodeID(m.Dst)}
}

// PhaseLoad describes the register writes needed to move the network into a
// phase: per-switch entry counts plus their total and maximum.
type PhaseLoad struct {
	// PerSwitch holds, indexed by switch (node) id, the number of register
	// entries that switch must write. Nil when no writes are needed.
	PerSwitch []int
	// Total is the sum over all switches.
	Total int
	// Max is the largest per-switch count; serialized loading stalls for
	// Max*PerSlot + Barrier because switches write in parallel.
	Max int
}

// pathSwitches calls visit for every switch traversed by the circuit of r:
// the source switch plus the destination switch of every link on the
// deterministic route.
func pathSwitches(topo network.Topology, r request.Request, visit func(network.NodeID)) error {
	p, err := network.CachedRoute(topo, r.Src, r.Dst)
	if err != nil {
		return err
	}
	visit(p.Src)
	for _, l := range p.Links {
		visit(topo.Link(l).To)
	}
	return nil
}

// RegisterLoad is the cold-start load of a schedule: every switch traversed
// by any of its circuits writes its full K-entry register. With no previous
// phase to hide behind this costs Max*PerSlot + Barrier, matching
// core.ReconfigCost.Cost(K).
func RegisterLoad(res *schedule.Result) (PhaseLoad, error) {
	k := res.Degree()
	if k == 0 {
		return PhaseLoad{}, nil
	}
	per := make([]int, res.Topology.NumNodes())
	for _, cfg := range res.Configs {
		for _, r := range cfg {
			if err := pathSwitches(res.Topology, r, func(s network.NodeID) {
				per[s] = k
			}); err != nil {
				return PhaseLoad{}, err
			}
		}
	}
	return tallyLoad(per), nil
}

func tallyLoad(per []int) PhaseLoad {
	l := PhaseLoad{PerSwitch: per}
	for _, n := range per {
		l.Total += n
		if n > l.Max {
			l.Max = n
		}
	}
	if l.Total == 0 {
		l.PerSwitch = nil
	}
	return l
}

// slotKey identifies one register entry position: switch s, TDM slot u.
func slotKey(s network.NodeID, k int, u int) int64 { return int64(s)*int64(k) + int64(u) }

// circuitSets builds the canonical per-(switch, slot) circuit sets of a
// schedule: which circuits cross each switch in each TDM slot. Two equal
// sets imply byte-identical crossbar register entries because routing is
// deterministic.
func circuitSets(res *schedule.Result) (map[int64]request.Set, error) {
	k := res.Degree()
	sets := make(map[int64]request.Set)
	for u, cfg := range res.Configs {
		for _, r := range cfg {
			if err := pathSwitches(res.Topology, r, func(s network.NodeID) {
				sets[slotKey(s, k, u)] = append(sets[slotKey(s, k, u)], r)
			}); err != nil {
				return nil, err
			}
		}
	}
	for key, set := range sets {
		sort.Slice(set, func(i, j int) bool {
			if set[i].Src != set[j].Src {
				return set[i].Src < set[j].Src
			}
			return set[i].Dst < set[j].Dst
		})
		sets[key] = set
	}
	return sets, nil
}

func sameSet(a, b request.Set) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RegisterDelta is the load needed to move from schedule prev to schedule
// next: for every switch, the number of TDM slots whose crossing-circuit set
// changed. A degree change rewrites the whole register of every switch next
// uses (the frame length is a global property), so the delta degrades to
// RegisterLoad(next). Entries that next leaves dark need no clearing: light
// only enters the network through PE injection ports, and the PEs transmit
// only on next's circuits, so stale entries on otherwise-dark paths never
// see a photon.
//
// prev == nil means cold start and yields RegisterLoad(next).
func RegisterDelta(prev, next *schedule.Result) (PhaseLoad, error) {
	if prev == nil || prev.Degree() != next.Degree() {
		return RegisterLoad(next)
	}
	if prev == next {
		return PhaseLoad{}, nil
	}
	k := next.Degree()
	prevSets, err := circuitSets(prev)
	if err != nil {
		return PhaseLoad{}, err
	}
	nextSets, err := circuitSets(next)
	if err != nil {
		return PhaseLoad{}, err
	}
	per := make([]int, next.Topology.NumNodes())
	for key, set := range nextSets {
		if !sameSet(set, prevSets[key]) {
			per[key/int64(k)]++
		}
	}
	return tallyLoad(per), nil
}

// idlePerSwitch counts, for every switch, the TDM slots of res's frame in
// which the switch carries no circuit — the slots whose dark register
// entries can be rewritten while the phase is still communicating.
func idlePerSwitch(res *schedule.Result) ([]int, error) {
	k := res.Degree()
	busy := make([]int, res.Topology.NumNodes())
	seen := make([]int, res.Topology.NumNodes())
	for i := range seen {
		seen[i] = -1
	}
	for u, cfg := range res.Configs {
		for _, r := range cfg {
			if err := pathSwitches(res.Topology, r, func(s network.NodeID) {
				if seen[s] != u {
					seen[s] = u
					busy[s]++
				}
			}); err != nil {
				return nil, err
			}
		}
	}
	idle := busy
	for s := range idle {
		idle[s] = k - idle[s]
	}
	return idle, nil
}

// SerializedStall is the stall of loading a phase with nothing to hide
// behind: Max entries back to back plus the barrier. Zero when no switch
// writes anything.
func SerializedStall(load PhaseLoad, perSlot, barrier int) int {
	if load.Max == 0 {
		return 0
	}
	return perSlot*load.Max + barrier
}

// OverlapStall charges a phase boundary overlap-aware: while the previous
// phase communicates for prevComm slots, switch s is idle in idle_s of every
// K-slot frame and can absorb prevComm*idle_s/K register-write slots. The
// phase then stalls only for the largest per-switch remainder plus the
// barrier (switches write in parallel). With prev == nil (cold start) or
// nothing to write the stall degrades to SerializedStall. The second result
// is the number of stall slots hidden relative to serialized loading.
func OverlapStall(prev *schedule.Result, prevComm int, load PhaseLoad, perSlot, barrier int) (stall, hidden int, err error) {
	serialized := SerializedStall(load, perSlot, barrier)
	if load.Max == 0 {
		return 0, 0, nil
	}
	if prev == nil || prevComm <= 0 {
		return serialized, 0, nil
	}
	k := prev.Degree()
	if k == 0 {
		return serialized, 0, nil
	}
	idle, err := idlePerSwitch(prev)
	if err != nil {
		return 0, 0, err
	}
	worst := 0
	for s, entries := range load.PerSwitch {
		if entries == 0 {
			continue
		}
		capacity := 0
		if s < len(idle) {
			capacity = prevComm * idle[s] / k
		}
		rem := perSlot*entries - capacity
		if rem > worst {
			worst = rem
		}
	}
	stall = worst + barrier
	return stall, serialized - stall, nil
}

// PhaseSpec is one phase of a compiled multi-phase program handed to
// RunProgram: the schedule chosen for the phase (by keep, patch, or
// recompile — RunProgram does not decide) and the phase's messages.
type PhaseSpec struct {
	Schedule *schedule.Result
	Messages []Message
}

// PhaseCost is the accounting of one phase inside a program run.
type PhaseCost struct {
	// Stall is the reconfiguration stall charged before the phase.
	Stall int
	// Hidden is the number of stall slots hidden under the previous
	// phase's communication (zero in serialized runs).
	Hidden int
	// SerializedStall is what the same register load would have cost with
	// no overlap.
	SerializedStall int
	// Comm is the phase's communication time on its schedule.
	Comm int
}

// ProgramResult reports a multi-phase program run.
type ProgramResult struct {
	// Total is the iteration time: sum of every phase's stall plus
	// communication.
	Total int
	// Serialized is the same plan charged with serialized register
	// loading — identical schedules, identical message delivery, no
	// hiding.
	Serialized int
	// Costs holds the per-phase accounting.
	Costs []PhaseCost
	// Finish holds each phase's per-message delivery slots (phase-local
	// clock), exactly as RunCompiled would report them.
	Finish [][]int
}

// RunProgram executes a compiled phase sequence and charges the
// reconfiguration between consecutive phases either serialized
// (overlap=false: every boundary pays SerializedStall) or overlap-aware
// (overlap=true: register loads hide under the previous phase's
// communication). The message delivery and the schedules are identical in
// both modes — only the stall accounting differs; the differential tests
// pin that down. The first phase always pays its cold-start load
// serialized.
func RunProgram(specs []PhaseSpec, perSlot, barrier int, overlap bool) (*ProgramResult, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("sim: empty program")
	}
	out := &ProgramResult{
		Costs:  make([]PhaseCost, len(specs)),
		Finish: make([][]int, len(specs)),
	}
	engine := NewCompiledSim()
	var prev *schedule.Result
	prevComm := 0
	for i, spec := range specs {
		if spec.Schedule == nil {
			return nil, fmt.Errorf("sim: program phase %d has no schedule", i)
		}
		load, err := RegisterDelta(prev, spec.Schedule)
		if err != nil {
			return nil, fmt.Errorf("sim: program phase %d: %w", i, err)
		}
		cost := PhaseCost{SerializedStall: SerializedStall(load, perSlot, barrier)}
		if overlap {
			cost.Stall, cost.Hidden, err = OverlapStall(prev, prevComm, load, perSlot, barrier)
			if err != nil {
				return nil, fmt.Errorf("sim: program phase %d: %w", i, err)
			}
		} else {
			cost.Stall = cost.SerializedStall
		}
		var res CompiledResult
		if err := engine.RunInto(spec.Schedule, spec.Messages, TDM, &res); err != nil {
			return nil, fmt.Errorf("sim: program phase %d: %w", i, err)
		}
		cost.Comm = res.Time
		out.Costs[i] = cost
		finish := make([]int, len(res.Finish))
		copy(finish, res.Finish)
		out.Finish[i] = finish
		out.Total += cost.Stall + cost.Comm
		out.Serialized += cost.SerializedStall + cost.Comm
		prev = spec.Schedule
		prevComm = cost.Comm
	}
	return out, nil
}

package sim

import "repro/internal/network"

func nodeID(i int) network.NodeID { return network.NodeID(i) }

// DynamicResult reports a dynamically-controlled run.
type DynamicResult struct {
	// Time is the slot at which the last flit of the last message was
	// delivered.
	Time int
	// Finish holds each message's delivery time, indexed like the input.
	Finish []int
	// Attempts is the total number of reservation attempts (successful and
	// failed) across all messages.
	Attempts int
	// Blocked is the number of reservation attempts that failed because a
	// link on the path had no free virtual channel.
	Blocked int
	// TimedOut reports that MaxTime elapsed before all messages finished;
	// Time is then MaxTime and unfinished messages have Finish == 0.
	TimedOut bool
	// UsefulChannelSlots counts channel-slots that carried payload flits:
	// one per flit per link of its circuit.
	UsefulChannelSlots int
	// HeldChannelSlots counts channel-slots occupied by circuits from lock
	// to release, including slot-alignment and control-latency stretches.
	HeldChannelSlots int
	// WastedChannelSlots counts channel-slots over-locked by in-flight
	// reservations and returned unused (forward locking reserves every
	// free channel until the ack releases the non-selected ones).
	WastedChannelSlots int
	// Lost counts messages a fault disconnected for good: no path of
	// surviving links joins their endpoints. Lost messages keep Finish == 0
	// and do not count against TimedOut. Always 0 outside RunFaulted.
	Lost int
	// Rerouted counts fault-forced route changes: the deterministic route
	// died under a message and a surviving detour was found.
	Rerouted int
	// FaultAborts counts in-flight attempts (reservation in progress or
	// circuit transmitting) torn down by a fault.
	FaultAborts int
}

// Efficiency returns the fraction of occupied channel-slots that carried
// payload — the paper's "bandwidth lost due to the unused time slots"
// metric for dynamic control. Compiled communication with a matching
// degree approaches 1 by construction.
func (r *DynamicResult) Efficiency() float64 {
	denom := r.HeldChannelSlots + r.WastedChannelSlots
	if denom == 0 {
		return 0
	}
	return float64(r.UsefulChannelSlots) / float64(denom)
}

// Dynamic simulates the distributed path-reservation protocol of Section
// 4.1 on the given topology with a fixed multiplexing degree.
//
// Protocol model, per message:
//
//  1. The source sends a reservation packet along the (deterministic) data
//     path. At each hop the packet locks every currently-free virtual
//     channel of the link and intersects its carried channel set with them.
//     Each hop costs CtlHopDelay slots of electronic processing.
//  2. If some hop leaves the carried set empty, a nack walks back,
//     unlocking whatever the reservation locked; the source retries after a
//     backoff.
//  3. At the destination, the lowest-numbered carried channel is selected;
//     the acknowledgement walks the path backward, releasing the
//     non-selected locked channels and configuring each switch.
//  4. When the ack reaches the source, data flows: one flit per frame in
//     the selected slot. After the last flit, a release packet frees the
//     channel hop by hop.
//
// Sources with several messages send them one at a time in input order (the
// single-queue head-of-line behavior the paper attributes to dynamic
// control); a source starts its next reservation when its previous
// message's final flit has been sent.
//
// Dynamic is a convenience wrapper that builds a fresh Simulator per Run;
// sweeps that run many simulations should hold a Simulator (or one per
// worker) and call RunInto to stay allocation-free.
type Dynamic struct {
	Topology network.Topology
	Params   Params
}

// Run executes the protocol for the given messages.
func (d Dynamic) Run(msgs []Message) (*DynamicResult, error) {
	s, err := NewSimulator(d.Topology, d.Params)
	if err != nil {
		return nil, err
	}
	return s.Run(msgs)
}

// backoff computes the retry delay for a message's k-th attempt: a growing
// window (capped at 8 base units) with a deterministic hash-based jitter
// over both message and attempt. The jitter must vary across attempts:
// colliding reservations that retry in lockstep would otherwise collide
// forever (livelock), which dense patterns such as the P3M 26-neighbor
// exchange trigger reliably.
func backoff(base, attempts, msg int) int {
	step := attempts
	if step > 8 {
		step = 8
	}
	window := base * step
	h := uint64(msg)*0x9E3779B97F4A7C15 + uint64(attempts)*0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 29
	return window/2 + int(h%uint64(window+1))
}

// align returns the first slot t >= start with t mod k == slot.
func align(start, slot, k int) int {
	r := start % k
	d := (slot - r + k) % k
	return start + d
}

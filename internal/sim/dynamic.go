package sim

import (
	"container/heap"
	"fmt"
	"math/bits"

	"repro/internal/network"
)

func nodeID(i int) network.NodeID { return network.NodeID(i) }

// DynamicResult reports a dynamically-controlled run.
type DynamicResult struct {
	// Time is the slot at which the last flit of the last message was
	// delivered.
	Time int
	// Finish holds each message's delivery time, indexed like the input.
	Finish []int
	// Attempts is the total number of reservation attempts (successful and
	// failed) across all messages.
	Attempts int
	// Blocked is the number of reservation attempts that failed because a
	// link on the path had no free virtual channel.
	Blocked int
	// TimedOut reports that MaxTime elapsed before all messages finished;
	// Time is then MaxTime and unfinished messages have Finish == 0.
	TimedOut bool
	// UsefulChannelSlots counts channel-slots that carried payload flits:
	// one per flit per link of its circuit.
	UsefulChannelSlots int
	// HeldChannelSlots counts channel-slots occupied by circuits from lock
	// to release, including slot-alignment and control-latency stretches.
	HeldChannelSlots int
	// WastedChannelSlots counts channel-slots over-locked by in-flight
	// reservations and returned unused (forward locking reserves every
	// free channel until the ack releases the non-selected ones).
	WastedChannelSlots int
}

// Efficiency returns the fraction of occupied channel-slots that carried
// payload — the paper's "bandwidth lost due to the unused time slots"
// metric for dynamic control. Compiled communication with a matching
// degree approaches 1 by construction.
func (r *DynamicResult) Efficiency() float64 {
	denom := r.HeldChannelSlots + r.WastedChannelSlots
	if denom == 0 {
		return 0
	}
	return float64(r.UsefulChannelSlots) / float64(denom)
}

// event kinds of the dynamic-control simulation.
const (
	evStart    = iota // source begins (or retries) the head message's reservation
	evResHop          // reservation packet arrives at the entry of path hop i
	evAckHop          // acknowledgement packet finishes processing hop i (walking back)
	evNackHop         // negative ack walks back across hop i, unlocking
	evDataDone        // last flit delivered at destination
	evRelHop          // release packet frees hop i's channel
	evAbortHop        // backward-reservation ack race lost: unlock hop i walking up
)

type event struct {
	time int
	kind int
	msg  int // message index
	hop  int // path hop index for the *_Hop kinds
	seq  int // tie-breaker for determinism
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// linkState tracks one directed link's virtual channels. Bits of free are
// the slots not reserved and not locked by an in-flight reservation.
type linkState struct {
	free uint64
}

// msgState tracks one message through the protocol.
type msgState struct {
	links    []network.LinkID
	flits    int
	carried  uint64 // slot mask carried by the reservation packet
	locked   []uint64
	lockTime []int // per hop, when the current locks were taken
	attempts int
	slot     int // allocated TDM slot once acknowledged
	finish   int
	done     bool
}

// Dynamic simulates the distributed path-reservation protocol of Section
// 4.1 on the given topology with a fixed multiplexing degree.
//
// Protocol model, per message:
//
//  1. The source sends a reservation packet along the (deterministic) data
//     path. At each hop the packet locks every currently-free virtual
//     channel of the link and intersects its carried channel set with them.
//     Each hop costs CtlHopDelay slots of electronic processing.
//  2. If some hop leaves the carried set empty, a nack walks back,
//     unlocking whatever the reservation locked; the source retries after a
//     backoff.
//  3. At the destination, the lowest-numbered carried channel is selected;
//     the acknowledgement walks the path backward, releasing the
//     non-selected locked channels and configuring each switch.
//  4. When the ack reaches the source, data flows: one flit per frame in
//     the selected slot. After the last flit, a release packet frees the
//     channel hop by hop.
//
// Sources with several messages send them one at a time in input order (the
// single-queue head-of-line behavior the paper attributes to dynamic
// control); a source starts its next reservation when its previous
// message's final flit has been sent.
type Dynamic struct {
	Topology network.Topology
	Params   Params
}

// Run executes the protocol for the given messages.
func (d Dynamic) Run(msgs []Message) (*DynamicResult, error) {
	if err := d.Params.validate(); err != nil {
		return nil, err
	}
	k := d.Params.Degree
	fullMask := uint64(1)<<uint(k) - 1
	hopDelay := d.Params.CtlHopDelay

	links := make([]linkState, d.Topology.NumLinks())
	for i := range links {
		links[i].free = fullMask
	}

	states := make([]msgState, len(msgs))
	queues := make(map[network.NodeID][]int) // per-source FIFO of message indices
	order := make([]network.NodeID, 0)
	for i, m := range msgs {
		if err := m.validate(); err != nil {
			return nil, err
		}
		p, err := d.Topology.Route(nodeID(m.Src), nodeID(m.Dst))
		if err != nil {
			return nil, fmt.Errorf("sim: message %d->%d: %w", m.Src, m.Dst, err)
		}
		states[i] = msgState{
			links:    p.Links,
			flits:    m.Flits,
			locked:   make([]uint64, len(p.Links)),
			lockTime: make([]int, len(p.Links)),
		}
		src := nodeID(m.Src)
		if _, ok := queues[src]; !ok {
			order = append(order, src)
		}
		queues[src] = append(queues[src], i)
	}

	var q eventQueue
	seq := 0
	push := func(t, kind, msg, hop int) {
		heap.Push(&q, event{time: t, kind: kind, msg: msg, hop: hop, seq: seq})
		seq++
	}
	// Kick off the head message of every source queue when it becomes
	// ready.
	for _, src := range order {
		head := queues[src][0]
		push(msgs[head].Start, evStart, head, 0)
	}

	res := &DynamicResult{Finish: make([]int, len(msgs))}
	remaining := len(msgs)
	startNext := func(t, msg int) {
		// The source of msg may begin its next queued message once it is
		// ready.
		src := nodeID(msgs[msg].Src)
		fifo := queues[src]
		if len(fifo) == 0 || fifo[0] != msg {
			return // defensive; the head is always the in-flight message
		}
		queues[src] = fifo[1:]
		if len(queues[src]) > 0 {
			next := queues[src][0]
			at := t
			if msgs[next].Start > at {
				at = msgs[next].Start
			}
			push(at, evStart, next, 0)
		}
	}

	// busyUntil models the per-switch control processor when shadow-network
	// queuing is enabled: one control packet served at a time.
	var busyUntil []int
	if d.Params.ShadowQueuing {
		busyUntil = make([]int, d.Topology.NumNodes())
	}

	for q.Len() > 0 {
		e := heap.Pop(&q).(event)
		if e.time > d.Params.MaxTime {
			res.TimedOut = true
			res.Time = d.Params.MaxTime
			return res, nil
		}
		st := &states[e.msg]
		if busyUntil != nil {
			switch e.kind {
			case evResHop, evAckHop, evNackHop, evRelHop, evAbortHop:
				li := d.Topology.Link(st.links[e.hop])
				node := li.From
				if e.kind == evAckHop || e.kind == evNackHop {
					node = li.To // backward-moving packets are served downstream
				}
				if busyUntil[node] > e.time {
					push(busyUntil[node], e.kind, e.msg, e.hop)
					continue
				}
				busyUntil[node] = e.time + hopDelay
			}
		}
		switch e.kind {
		case evStart:
			st.attempts++
			res.Attempts++
			st.carried = fullMask
			push(e.time+hopDelay, evResHop, e.msg, 0)

		case evResHop:
			l := &links[st.links[e.hop]]
			avail := l.free & st.carried
			if avail == 0 {
				// Blocked: unlock everything reserved so far on the way
				// back and retry after a backoff.
				res.Blocked++
				if e.hop == 0 {
					push(e.time+d.backoff(st.attempts, e.msg), evStart, e.msg, 0)
				} else {
					push(e.time+hopDelay, evNackHop, e.msg, e.hop-1)
				}
				continue
			}
			if d.Params.Reservation == LockForward {
				l.free &^= avail
				st.locked[e.hop] = avail
				st.lockTime[e.hop] = e.time
			}
			st.carried = avail
			if e.hop == len(st.links)-1 {
				// Destination reached: select the lowest carried channel
				// and acknowledge backward.
				st.slot = lowestBit(st.carried)
				push(e.time+hopDelay, evAckHop, e.msg, e.hop)
			} else {
				push(e.time+hopDelay, evResHop, e.msg, e.hop+1)
			}

		case evNackHop:
			l := &links[st.links[e.hop]]
			l.free |= st.locked[e.hop]
			res.WastedChannelSlots += (e.time - st.lockTime[e.hop]) * bits.OnesCount64(st.locked[e.hop])
			st.locked[e.hop] = 0
			if e.hop == 0 {
				push(e.time+d.backoff(st.attempts, e.msg), evStart, e.msg, 0)
			} else {
				push(e.time+hopDelay, evNackHop, e.msg, e.hop-1)
			}

		case evAckHop:
			l := &links[st.links[e.hop]]
			sel := uint64(1) << uint(st.slot)
			if d.Params.Reservation == LockBackward {
				// The reservation only observed availability; the ack must
				// win the channel now and can lose the race to a
				// competitor that acked first.
				if l.free&sel == 0 {
					res.Blocked++ // ack race lost (backward locking)
					// Unlock the hops this ack already claimed (above the
					// failure point) and tell the source to retry; nothing
					// below this hop was ever locked.
					if e.hop+1 < len(st.links) {
						push(e.time+hopDelay, evAbortHop, e.msg, e.hop+1)
					}
					push(e.time+(e.hop+1)*hopDelay+d.backoff(st.attempts, e.msg), evStart, e.msg, 0)
					continue
				}
				l.free &^= sel
				st.locked[e.hop] = sel
				st.lockTime[e.hop] = e.time
			} else {
				// Release the locked-but-not-selected channels of this
				// hop; the selected channel stays allocated to the
				// circuit.
				released := st.locked[e.hop] &^ sel
				l.free |= released
				res.WastedChannelSlots += (e.time - st.lockTime[e.hop]) * bits.OnesCount64(released)
				st.locked[e.hop] = sel
			}
			if e.hop == 0 {
				// Ack reached the source: transmit. Under TDM one flit
				// completes in the circuit's slot of every frame; under
				// WDM the circuit owns a full-rate wavelength.
				var finish int
				if d.Params.Mode == WDM {
					finish = e.time + st.flits
				} else {
					first := align(e.time, st.slot, k)
					finish = first + 1 + (st.flits-1)*k
				}
				push(finish, evDataDone, e.msg, 0)
			} else {
				push(e.time+hopDelay, evAckHop, e.msg, e.hop-1)
			}

		case evDataDone:
			st.done = true
			st.finish = e.time
			res.UsefulChannelSlots += st.flits * len(st.links)
			res.Finish[e.msg] = e.time
			if e.time > res.Time {
				res.Time = e.time
			}
			remaining--
			// Free the circuit hop by hop and let the source proceed with
			// its next message.
			push(e.time+hopDelay, evRelHop, e.msg, 0)
			startNext(e.time, e.msg)

		case evRelHop:
			l := &links[st.links[e.hop]]
			l.free |= st.locked[e.hop]
			res.HeldChannelSlots += (e.time - st.lockTime[e.hop]) * bits.OnesCount64(st.locked[e.hop])
			st.locked[e.hop] = 0
			if e.hop < len(st.links)-1 {
				push(e.time+hopDelay, evRelHop, e.msg, e.hop+1)
			}

		case evAbortHop:
			l := &links[st.links[e.hop]]
			l.free |= st.locked[e.hop]
			res.WastedChannelSlots += (e.time - st.lockTime[e.hop]) * bits.OnesCount64(st.locked[e.hop])
			st.locked[e.hop] = 0
			if e.hop < len(st.links)-1 {
				push(e.time+hopDelay, evAbortHop, e.msg, e.hop+1)
			}
		}
	}
	if remaining != 0 {
		return nil, fmt.Errorf("sim: %d messages never completed (internal error)", remaining)
	}
	// Conservation invariant: after every circuit is torn down, every
	// virtual channel of every link must be free again. A leak here would
	// mean the protocol lost track of a lock.
	for i := range links {
		if links[i].free != fullMask {
			return nil, fmt.Errorf("sim: link %d leaked channels (free mask %b, want %b)",
				i, links[i].free, fullMask)
		}
	}
	return res, nil
}

// backoff computes the retry delay for a message's k-th attempt: a growing
// window (capped at 8 base units) with a deterministic hash-based jitter
// over both message and attempt. The jitter must vary across attempts:
// colliding reservations that retry in lockstep would otherwise collide
// forever (livelock), which dense patterns such as the P3M 26-neighbor
// exchange trigger reliably.
func (d Dynamic) backoff(attempts, msg int) int {
	step := attempts
	if step > 8 {
		step = 8
	}
	window := d.Params.RetryBackoff * step
	h := uint64(msg)*0x9E3779B97F4A7C15 + uint64(attempts)*0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 29
	return window/2 + int(h%uint64(window+1))
}

// align returns the first slot t >= start with t mod k == slot.
func align(start, slot, k int) int {
	r := start % k
	d := (slot - r + k) % k
	return start + d
}

func lowestBit(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

package sim_test

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestParamsValidate is the table-driven contract for the exported
// validator: every nonsensical parameter is rejected with an error that
// names it, and the documented defaults pass at every legal degree.
func TestParamsValidate(t *testing.T) {
	base := sim.DefaultParams(4)
	mutate := func(f func(*sim.Params)) sim.Params {
		p := base
		f(&p)
		return p
	}
	cases := []struct {
		name    string
		params  sim.Params
		wantErr string // substring of the error; empty means valid
	}{
		{"defaults", base, ""},
		{"degree-1", sim.DefaultParams(1), ""},
		{"degree-64", sim.DefaultParams(64), ""},
		{"wdm", mutate(func(p *sim.Params) { p.Mode = sim.WDM }), ""},
		{"backward", mutate(func(p *sim.Params) { p.Reservation = sim.LockBackward }), ""},

		{"zero-degree", mutate(func(p *sim.Params) { p.Degree = 0 }), "degree"},
		{"negative-degree", mutate(func(p *sim.Params) { p.Degree = -3 }), "degree"},
		{"degree-overflows-register", mutate(func(p *sim.Params) { p.Degree = 65 }), "64-slot register"},
		{"zero-hop-delay", mutate(func(p *sim.Params) { p.CtlHopDelay = 0 }), "hop delay"},
		{"negative-hop-delay", mutate(func(p *sim.Params) { p.CtlHopDelay = -8 }), "hop delay"},
		{"zero-backoff", mutate(func(p *sim.Params) { p.RetryBackoff = 0 }), "backoff"},
		{"negative-backoff", mutate(func(p *sim.Params) { p.RetryBackoff = -1 }), "backoff"},
		{"zero-max-time", mutate(func(p *sim.Params) { p.MaxTime = 0 }), "max time"},
		{"negative-max-time", mutate(func(p *sim.Params) { p.MaxTime = -50 }), "max time"},
		{"unknown-mode", mutate(func(p *sim.Params) { p.Mode = sim.Mode(9) }), "mode"},
		{"unknown-scheme", mutate(func(p *sim.Params) { p.Reservation = sim.ReservationScheme(9) }), "reservation"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.params.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() accepted %+v", tc.params)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the parameter (want substring %q)", err, tc.wantErr)
			}
		})
	}
}

// TestNewSimulatorRejectsBadInputs: construction surfaces the same
// validation, plus the nil-topology case.
func TestNewSimulatorRejectsBadInputs(t *testing.T) {
	if _, err := sim.NewSimulator(nil, sim.DefaultParams(1)); err == nil {
		t.Error("nil topology accepted")
	}
}

package sim

import (
	"fmt"
	"math/bits"

	"repro/internal/network"
)

// event kinds of the dynamic-control simulation.
const (
	evStart    = iota // source begins (or retries) the head message's reservation
	evResHop          // reservation packet arrives at the entry of path hop i
	evAckHop          // acknowledgement packet finishes processing hop i (walking back)
	evNackHop         // negative ack walks back across hop i, unlocking
	evDataDone        // last flit delivered at destination
	evRelHop          // release packet frees hop i's channel
	evAbortHop        // backward-reservation ack race lost: unlock hop i walking up
	evFault           // a fault event fires (msg indexes the fault list, not a message)
)

// Message lifecycle states (simMsg.state). Waiting messages sit in their
// source's FIFO with no events in flight; active ones have protocol events
// pending; lost ones were disconnected by a fault and will never deliver.
const (
	stWaiting = iota
	stActive
	stDone
	stLost
)

// event is one pending protocol action. Events order by (time, seq); seq is
// the global push counter, so ties replay in insertion order and every run
// of the same input is identical. gen snapshots the message's generation at
// push time: a fault that tears a message down bumps the generation, which
// cancels every event the torn-down attempt still had in flight.
type event struct {
	time int
	seq  int32
	kind int32
	msg  int32
	hop  int32
	gen  int32
}

// simMsg tracks one message through the protocol. The locked/lockTime
// slices are windows into the Simulator's flat per-hop buffers; links
// aliases the (immutable) cached route until a fault forces a reroute, after
// which they are message-owned.
type simMsg struct {
	links    []network.LinkID
	locked   []uint64
	lockTime []int
	flits    int
	carried  uint64 // slot mask carried by the reservation packet
	attempts int
	slot     int   // allocated TDM slot once acknowledged
	next     int32 // next queued message of the same source; -1 at the tail
	gen      int32 // bumped by fault teardown; stale events are discarded
	state    int8  // stWaiting / stActive / stDone / stLost
}

// Simulator is a reusable engine for the dynamic-control protocol of
// Section 4.1 (the same model Dynamic.Run exposes). It owns every piece of
// per-run state as flat preallocated arrays — link channel masks, per-hop
// lock buffers, the event heap — so that repeated runs on the same
// topology allocate nothing in steady state. That matters for the Table 4-5
// sweeps, which run the simulator thousands of times per parameter point.
//
// A Simulator is NOT safe for concurrent use; give each sweep worker its
// own (see Sweep).
type Simulator struct {
	top    network.Topology
	params Params

	fullMask uint64
	// Per-topology tables built once: upstream/downstream switch of each
	// link, avoiding interface calls in the hot loop.
	linkFrom []int32
	linkTo   []int32

	// Per-run state, reset at the top of RunInto.
	links      []uint64 // free-channel mask per directed link
	busyUntil  []int    // per-switch control processor (ShadowQueuing only)
	lastOf     []int32  // per-source FIFO tail while chaining messages
	failedMask []uint64 // failed-channel mask per link; nil until RunFaulted

	states   []simMsg
	locked   []uint64 // flat per-hop lock masks, windowed into states
	lockTime []int    // flat per-hop lock stamps, windowed into states

	heap []event // 4-ary min-heap ordered by (time, seq)
	seq  int32
}

// NewSimulator validates the parameters and builds a reusable simulator for
// the topology. The topology's link table is snapshotted; mutating the
// topology afterwards is not supported.
func NewSimulator(t network.Topology, p Params) (*Simulator, error) {
	if t == nil {
		return nil, fmt.Errorf("sim: nil topology")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{
		top:      t,
		params:   p,
		fullMask: uint64(1)<<uint(p.Degree) - 1,
	}
	nl := t.NumLinks()
	nn := t.NumNodes()
	// The cold-start tables are cut from two slabs sized by the topology's
	// dimensions — one allocation per element type instead of one per table
	// — and the per-run buffers are pre-sized here too (hop windows to two
	// slots per link, heap and states to the node count), so a cold
	// construct-and-run pays a fixed handful of allocations and a reused
	// simulator none.
	i32 := make([]int32, 2*nl+nn)
	s.linkFrom = i32[:nl:nl]
	s.linkTo = i32[nl : 2*nl : 2*nl]
	s.lastOf = i32[2*nl:]
	for i := 0; i < nl; i++ {
		li := t.Link(network.LinkID(i))
		s.linkFrom[i] = int32(li.From)
		s.linkTo[i] = int32(li.To)
	}
	u64 := make([]uint64, 3*nl)
	s.links = u64[:nl:nl]
	s.locked = u64[nl : nl : 3*nl]
	s.lockTime = make([]int, 0, 2*nl)
	s.states = make([]simMsg, 0, nn)
	s.heap = make([]event, 0, 2*nn)
	if p.ShadowQueuing {
		s.busyUntil = make([]int, nn)
	}
	return s, nil
}

// Params returns the parameters the simulator was built with.
func (s *Simulator) Params() Params { return s.params }

// Run executes the protocol for the given messages into a fresh result.
func (s *Simulator) Run(msgs []Message) (*DynamicResult, error) {
	res := &DynamicResult{}
	if err := s.RunInto(msgs, res); err != nil {
		return nil, err
	}
	return res, nil
}

// RunInto is Run with a caller-owned result: res (including its Finish
// slice) is reset and reused, so a steady-state loop of RunInto calls on
// one Simulator performs no heap allocation.
func (s *Simulator) RunInto(msgs []Message, res *DynamicResult) error {
	return s.run(msgs, nil, res)
}

// run is the shared engine behind RunInto and RunFaulted.
func (s *Simulator) run(msgs []Message, faults []FaultEvent, res *DynamicResult) error {
	k := s.params.Degree
	hopDelay := s.params.CtlHopDelay
	s.reset(len(msgs))
	resetResult(res, len(msgs))

	// Per-message state: routes come from the shared route cache (paths are
	// pure functions of the topology), lock buffers are windows of two flat
	// arrays sized to the total hop count.
	if cap(s.states) < len(msgs) {
		s.states = make([]simMsg, len(msgs))
	} else {
		s.states = s.states[:len(msgs)]
	}
	totalHops := 0
	for i, m := range msgs {
		if err := m.validate(); err != nil {
			return err
		}
		p, err := network.CachedRoute(s.top, nodeID(m.Src), nodeID(m.Dst))
		if err != nil {
			return fmt.Errorf("sim: message %d->%d: %w", m.Src, m.Dst, err)
		}
		st := &s.states[i]
		st.links = p.Links
		st.flits = m.Flits
		st.carried = 0
		st.attempts = 0
		st.slot = 0
		st.next = -1
		st.gen = 0
		st.state = stWaiting
		totalHops += len(p.Links)
	}
	if cap(s.locked) < totalHops {
		s.locked = make([]uint64, totalHops)
		s.lockTime = make([]int, totalHops)
	} else {
		s.locked = s.locked[:totalHops]
		s.lockTime = s.lockTime[:totalHops]
	}
	for i := range s.locked {
		s.locked[i] = 0 // lockTime is always written before a locked hop is read
	}
	off := 0
	for i := range s.states {
		st := &s.states[i]
		n := len(st.links)
		st.locked = s.locked[off : off+n : off+n]
		st.lockTime = s.lockTime[off : off+n : off+n]
		off += n
	}

	// Faults go on the heap before any message event: a fault at slot T
	// outranks every same-slot protocol action, so the failure is visible to
	// everything that fires at T.
	if len(faults) > 0 {
		if len(s.failedMask) < len(s.links) {
			s.failedMask = make([]uint64, len(s.links))
		}
		for i, f := range faults {
			if int(f.Link) < 0 || int(f.Link) >= len(s.links) {
				return fmt.Errorf("sim: fault %d: link %d out of range [0, %d)", i, f.Link, len(s.links))
			}
			if f.Slot < 0 {
				return fmt.Errorf("sim: fault %d: negative slot %d", i, f.Slot)
			}
			if f.Slot > s.params.MaxTime {
				continue // can never affect the run; skip to avoid a spurious timeout
			}
			s.push(f.Slot, evFault, int32(i), 0)
		}
	}

	// Chain each source's messages into a FIFO (input order, the paper's
	// single-queue head-of-line model) and kick off every head.
	for i, m := range msgs {
		if last := s.lastOf[m.Src]; last < 0 {
			s.states[i].state = stActive
			s.push(m.Start, evStart, int32(i), 0)
		} else {
			s.states[last].next = int32(i)
		}
		s.lastOf[m.Src] = int32(i)
	}

	remaining := len(msgs)
	for len(s.heap) > 0 {
		e := s.pop()
		if e.time > s.params.MaxTime {
			res.TimedOut = true
			res.Time = s.params.MaxTime
			return nil
		}
		if e.kind == evFault {
			s.applyFault(faults[e.msg], e.time, msgs, res, &remaining)
			continue
		}
		st := &s.states[e.msg]
		if e.gen != st.gen {
			continue // this attempt was torn down by a fault
		}
		if s.busyUntil != nil {
			switch e.kind {
			case evResHop, evAckHop, evNackHop, evRelHop, evAbortHop:
				// Backward-moving packets are served by the downstream switch.
				l := st.links[e.hop]
				node := s.linkFrom[l]
				if e.kind == evAckHop || e.kind == evNackHop {
					node = s.linkTo[l]
				}
				if s.busyUntil[node] > e.time {
					s.push(s.busyUntil[node], int(e.kind), e.msg, e.hop)
					continue
				}
				s.busyUntil[node] = e.time + hopDelay
			}
		}
		switch e.kind {
		case evStart:
			st.attempts++
			res.Attempts++
			st.carried = s.fullMask
			s.push(e.time+hopDelay, evResHop, e.msg, 0)

		case evResHop:
			l := &s.links[st.links[e.hop]]
			avail := *l & st.carried
			if avail == 0 {
				// Blocked: unlock everything reserved so far on the way
				// back and retry after a backoff.
				res.Blocked++
				if e.hop == 0 {
					s.push(e.time+backoff(s.params.RetryBackoff, st.attempts, int(e.msg)), evStart, e.msg, 0)
				} else {
					s.push(e.time+hopDelay, evNackHop, e.msg, e.hop-1)
				}
				continue
			}
			if s.params.Reservation == LockForward {
				*l &^= avail
				st.locked[e.hop] = avail
				st.lockTime[e.hop] = e.time
			}
			st.carried = avail
			if int(e.hop) == len(st.links)-1 {
				// Destination reached: select the lowest carried channel
				// and acknowledge backward.
				st.slot = bits.TrailingZeros64(st.carried)
				s.push(e.time+hopDelay, evAckHop, e.msg, e.hop)
			} else {
				s.push(e.time+hopDelay, evResHop, e.msg, e.hop+1)
			}

		case evNackHop:
			l := &s.links[st.links[e.hop]]
			*l |= s.alive(st.links[e.hop], st.locked[e.hop])
			res.WastedChannelSlots += (e.time - st.lockTime[e.hop]) * bits.OnesCount64(st.locked[e.hop])
			st.locked[e.hop] = 0
			if e.hop == 0 {
				s.push(e.time+backoff(s.params.RetryBackoff, st.attempts, int(e.msg)), evStart, e.msg, 0)
			} else {
				s.push(e.time+hopDelay, evNackHop, e.msg, e.hop-1)
			}

		case evAckHop:
			l := &s.links[st.links[e.hop]]
			sel := uint64(1) << uint(st.slot)
			if s.params.Reservation == LockBackward {
				// The reservation only observed availability; the ack must
				// win the channel now and can lose the race to a
				// competitor that acked first.
				if *l&sel == 0 {
					res.Blocked++ // ack race lost (backward locking)
					// Unlock the hops this ack already claimed (above the
					// failure point) and tell the source to retry; nothing
					// below this hop was ever locked.
					if int(e.hop)+1 < len(st.links) {
						s.push(e.time+hopDelay, evAbortHop, e.msg, e.hop+1)
					}
					s.push(e.time+(int(e.hop)+1)*hopDelay+backoff(s.params.RetryBackoff, st.attempts, int(e.msg)), evStart, e.msg, 0)
					continue
				}
				*l &^= sel
				st.locked[e.hop] = sel
				st.lockTime[e.hop] = e.time
			} else {
				// Release the locked-but-not-selected channels of this
				// hop; the selected channel stays allocated to the
				// circuit.
				released := st.locked[e.hop] &^ sel
				*l |= s.alive(st.links[e.hop], released)
				res.WastedChannelSlots += (e.time - st.lockTime[e.hop]) * bits.OnesCount64(released)
				st.locked[e.hop] = sel
			}
			if e.hop == 0 {
				// Ack reached the source: transmit. Under TDM one flit
				// completes in the circuit's slot of every frame; under
				// WDM the circuit owns a full-rate wavelength.
				var finish int
				if s.params.Mode == WDM {
					finish = e.time + st.flits
				} else {
					first := align(e.time, st.slot, k)
					finish = first + 1 + (st.flits-1)*k
				}
				s.push(finish, evDataDone, e.msg, 0)
			} else {
				s.push(e.time+hopDelay, evAckHop, e.msg, e.hop-1)
			}

		case evDataDone:
			res.UsefulChannelSlots += st.flits * len(st.links)
			res.Finish[e.msg] = e.time
			if e.time > res.Time {
				res.Time = e.time
			}
			remaining--
			st.state = stDone
			// Free the circuit hop by hop and let the source proceed with
			// its next message.
			s.push(e.time+hopDelay, evRelHop, e.msg, 0)
			s.startSuccessor(st, e.time, msgs)

		case evRelHop:
			l := &s.links[st.links[e.hop]]
			*l |= s.alive(st.links[e.hop], st.locked[e.hop])
			res.HeldChannelSlots += (e.time - st.lockTime[e.hop]) * bits.OnesCount64(st.locked[e.hop])
			st.locked[e.hop] = 0
			if int(e.hop) < len(st.links)-1 {
				s.push(e.time+hopDelay, evRelHop, e.msg, e.hop+1)
			}

		case evAbortHop:
			l := &s.links[st.links[e.hop]]
			*l |= s.alive(st.links[e.hop], st.locked[e.hop])
			res.WastedChannelSlots += (e.time - st.lockTime[e.hop]) * bits.OnesCount64(st.locked[e.hop])
			st.locked[e.hop] = 0
			if int(e.hop) < len(st.links)-1 {
				s.push(e.time+hopDelay, evAbortHop, e.msg, e.hop+1)
			}
		}
	}
	if remaining != 0 {
		return fmt.Errorf("sim: %d messages never completed (internal error)", remaining)
	}
	// Conservation invariant: after every circuit is torn down, every
	// surviving virtual channel of every link must be free again. A leak
	// here would mean the protocol lost track of a lock.
	for i := range s.links {
		want := s.fullMask
		if s.failedMask != nil {
			want &^= s.failedMask[i]
		}
		if s.links[i] != want {
			return fmt.Errorf("sim: link %d leaked channels (free mask %b, want %b)",
				i, s.links[i], want)
		}
	}
	return nil
}

// alive masks out a link's failed channels from a lock mask being returned
// to the free pool; failed channels simply vanish rather than becoming
// allocatable again.
func (s *Simulator) alive(l network.LinkID, mask uint64) uint64 {
	if s.failedMask == nil {
		return mask
	}
	return mask &^ s.failedMask[l]
}

// startSuccessor activates the next queued message of st's source FIFO,
// skipping messages a fault has already declared lost.
func (s *Simulator) startSuccessor(st *simMsg, at int, msgs []Message) {
	next := st.next
	for next >= 0 && s.states[next].state == stLost {
		next = s.states[next].next
	}
	if next < 0 {
		return
	}
	if msgs[next].Start > at {
		at = msgs[next].Start
	}
	s.states[next].state = stActive
	s.push(at, evStart, next, 0)
}

// reset restores the per-run arrays, pre-sizing the event heap from the
// message count (a message generates a handful of events at a time; two
// heap slots per message covers every workload in the suite without
// regrowth).
func (s *Simulator) reset(numMsgs int) {
	for i := range s.links {
		s.links[i] = s.fullMask
	}
	for i := range s.lastOf {
		s.lastOf[i] = -1
	}
	if s.busyUntil != nil {
		for i := range s.busyUntil {
			s.busyUntil[i] = 0
		}
	}
	for i := range s.failedMask {
		s.failedMask[i] = 0
	}
	if want := 2 * numMsgs; cap(s.heap) < want {
		s.heap = make([]event, 0, want)
	} else {
		s.heap = s.heap[:0]
	}
	s.seq = 0
}

// resetResult clears a caller-owned result for reuse, growing Finish only
// when the message count does.
func resetResult(res *DynamicResult, numMsgs int) {
	if cap(res.Finish) < numMsgs {
		res.Finish = make([]int, numMsgs)
	} else {
		res.Finish = res.Finish[:numMsgs]
		for i := range res.Finish {
			res.Finish[i] = 0
		}
	}
	res.Time = 0
	res.Attempts = 0
	res.Blocked = 0
	res.TimedOut = false
	res.UsefulChannelSlots = 0
	res.HeldChannelSlots = 0
	res.WastedChannelSlots = 0
	res.Lost = 0
	res.Rerouted = 0
	res.FaultAborts = 0
}

// push inserts an event into the 4-ary heap. A 4-ary layout halves the
// tree depth of the binary heap.Interface version it replaced and, being
// monomorphic, needs no interface boxing per event.
func (s *Simulator) push(t, kind int, msg, hop int32) {
	var gen int32
	if kind != evFault {
		gen = s.states[msg].gen
	}
	e := event{time: t, seq: s.seq, kind: int32(kind), msg: msg, hop: hop, gen: gen}
	s.seq++
	h := append(s.heap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if h[p].time < e.time || (h[p].time == e.time && h[p].seq < e.seq) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
	s.heap = h
}

// pop removes and returns the minimum event.
func (s *Simulator) pop() event {
	h := s.heap
	top := h[0]
	last := h[len(h)-1]
	h = h[:len(h)-1]
	if n := len(h); n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			m := c
			for j := c + 1; j < end; j++ {
				if h[j].time < h[m].time || (h[j].time == h[m].time && h[j].seq < h[m].seq) {
					m = j
				}
			}
			if h[m].time > last.time || (h[m].time == last.time && h[m].seq > last.seq) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	s.heap = h
	return top
}

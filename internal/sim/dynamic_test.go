package sim_test

import (
	"testing"

	"repro/internal/patterns"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestDynamicSingleMessage(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	p := sim.DefaultParams(1)
	// One-hop neighbor message: reservation crosses 1 hop, ack returns over
	// 1 hop, then 3 flits at degree 1.
	out, err := sim.Dynamic{Topology: torus, Params: p}.Run([]sim.Message{{Src: 0, Dst: 1, Flits: 3}})
	if err != nil {
		t.Fatal(err)
	}
	want := 2*p.CtlHopDelay + 3
	if out.Time != want {
		t.Errorf("time = %d, want %d (res+ack %d slots, data 3)", out.Time, want, 2*p.CtlHopDelay)
	}
	if out.Attempts != 1 || out.Blocked != 0 {
		t.Errorf("attempts=%d blocked=%d, want 1/0", out.Attempts, out.Blocked)
	}
}

func TestDynamicControlOverheadScalesWithHops(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	p := sim.DefaultParams(1)
	near, err := sim.Dynamic{Topology: torus, Params: p}.Run([]sim.Message{{Src: 0, Dst: 1, Flits: 1}})
	if err != nil {
		t.Fatal(err)
	}
	far, err := sim.Dynamic{Topology: torus, Params: p}.Run([]sim.Message{{Src: 0, Dst: 27, Flits: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if far.Time <= near.Time {
		t.Errorf("7-hop setup (%d) not slower than 1-hop (%d)", far.Time, near.Time)
	}
}

func TestDynamicHeadOfLineSerialization(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	p := sim.DefaultParams(1)
	// Two messages from the same source to conflict-free destinations: the
	// second cannot begin until the first finishes sending.
	msgs := []sim.Message{{Src: 0, Dst: 1, Flits: 50}, {Src: 0, Dst: 8, Flits: 50}}
	out, err := sim.Dynamic{Topology: torus, Params: p}.Run(msgs)
	if err != nil {
		t.Fatal(err)
	}
	first := 2*p.CtlHopDelay + 50
	if out.Finish[0] != first {
		t.Errorf("first message finished at %d, want %d", out.Finish[0], first)
	}
	if out.Finish[1] < first+50 {
		t.Errorf("second message finished at %d; head-of-line serialization violated (first done %d)",
			out.Finish[1], first)
	}
}

func TestDynamicContentionBlocksAndRetries(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	p := sim.DefaultParams(1)
	// Two different sources in one row, same long row segment, degree 1:
	// the second reservation must fail at least once while the first
	// transmission holds the only channel.
	msgs := []sim.Message{{Src: 0, Dst: 3, Flits: 200}, {Src: 1, Dst: 3, Flits: 200}}
	out, err := sim.Dynamic{Topology: torus, Params: p}.Run(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Blocked == 0 {
		t.Error("expected blocked reservation attempts under contention")
	}
	if out.Attempts <= 2 {
		t.Errorf("attempts = %d, expected retries beyond the initial two", out.Attempts)
	}
	// Destination port conflicts serialize the data phases.
	if out.Time < 400 {
		t.Errorf("time = %d, but 400 flits must cross the shared destination port", out.Time)
	}
}

func TestDynamicHigherDegreeAdmitsConcurrentCircuits(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	// Nested row segments conflict on the middle link at degree 1 but fit
	// two channels at degree 2.
	msgs := []sim.Message{{Src: 0, Dst: 3, Flits: 60}, {Src: 1, Dst: 2, Flits: 60}}
	t1, err := sim.Dynamic{Topology: torus, Params: sim.DefaultParams(1)}.Run(msgs)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := sim.Dynamic{Topology: torus, Params: sim.DefaultParams(2)}.Run(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Blocked == 0 {
		t.Error("degree 1 should have blocked the overlapping reservation")
	}
	// Note: degree 2 may still block once — the reservation packet locks
	// every available channel while in flight (the protocol of Section
	// 4.1), so two simultaneous reservations collide regardless of degree.
	// The win shows up in the data phase, where both circuits coexist.
	if t2.Time >= t1.Time {
		t.Errorf("degree 2 (%d) not faster than degree 1 (%d) under contention", t2.Time, t1.Time)
	}
}

func TestDynamicDegreeSlowsSingleStream(t *testing.T) {
	// Without contention, higher multiplexing degree wastes slots: a lone
	// message gets one flit per frame.
	torus := topology.NewTorus(8, 8)
	msg := []sim.Message{{Src: 0, Dst: 1, Flits: 100}}
	t1, err := sim.Dynamic{Topology: torus, Params: sim.DefaultParams(1)}.Run(msg)
	if err != nil {
		t.Fatal(err)
	}
	t10, err := sim.Dynamic{Topology: torus, Params: sim.DefaultParams(10)}.Run(msg)
	if err != nil {
		t.Fatal(err)
	}
	if t10.Time < t1.Time+800 {
		t.Errorf("degree 10 (%d) should pay ~10x the transmission time of degree 1 (%d)", t10.Time, t1.Time)
	}
}

func TestDynamicAllMessagesComplete(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	hyper, err := patterns.Hypercube(64)
	if err != nil {
		t.Fatal(err)
	}
	msgs := make([]sim.Message, len(hyper))
	for i, r := range hyper {
		msgs[i] = sim.Message{Src: int(r.Src), Dst: int(r.Dst), Flits: 2}
	}
	for _, k := range []int{1, 2, 5, 10} {
		out, err := sim.Dynamic{Topology: torus, Params: sim.DefaultParams(k)}.Run(msgs)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if out.TimedOut {
			t.Fatalf("K=%d: timed out", k)
		}
		for i, f := range out.Finish {
			if f <= 0 {
				t.Fatalf("K=%d: message %d never finished", k, i)
			}
		}
	}
}

// TestDynamicChannelConservation: after a run every virtual channel must be
// free again (no leaked locks). Exercised indirectly: a second identical
// run on the same Dynamic value must produce identical results because the
// simulator state is per-run.
func TestDynamicRunsAreIndependent(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	d := sim.Dynamic{Topology: torus, Params: sim.DefaultParams(2)}
	msgs := make([]sim.Message, 0, 128)
	for _, r := range patterns.Ring(64) {
		msgs = append(msgs, sim.Message{Src: int(r.Src), Dst: int(r.Dst), Flits: 7})
	}
	a, err := d.Run(msgs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Run(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time || a.Attempts != b.Attempts || a.Blocked != b.Blocked {
		t.Errorf("repeat run differs: %+v vs %+v", a, b)
	}
}

func TestDynamicParamValidation(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	msg := []sim.Message{{Src: 0, Dst: 1, Flits: 1}}
	bad := []sim.Params{
		{Degree: 0, CtlHopDelay: 8, RetryBackoff: 16, MaxTime: 1000},
		{Degree: 65, CtlHopDelay: 8, RetryBackoff: 16, MaxTime: 1000},
		{Degree: 1, CtlHopDelay: 0, RetryBackoff: 16, MaxTime: 1000},
		{Degree: 1, CtlHopDelay: 8, RetryBackoff: 0, MaxTime: 1000},
		{Degree: 1, CtlHopDelay: 8, RetryBackoff: 16, MaxTime: 0},
	}
	for i, p := range bad {
		if _, err := (sim.Dynamic{Topology: torus, Params: p}).Run(msg); err == nil {
			t.Errorf("params case %d accepted: %+v", i, p)
		}
	}
}

func TestDynamicTimeout(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	p := sim.DefaultParams(1)
	p.MaxTime = 10 // far too small for even one control round trip
	out, err := sim.Dynamic{Topology: torus, Params: p}.Run([]sim.Message{{Src: 0, Dst: 27, Flits: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if !out.TimedOut {
		t.Error("expected timeout")
	}
	if out.Time != p.MaxTime {
		t.Errorf("timeout time = %d, want %d", out.Time, p.MaxTime)
	}
}

package sim_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestEfficiencyLoneMessage(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	// One 3-hop message at degree 1: the circuit is held from ack to
	// release; useful = flits * 3 links.
	out, err := sim.Dynamic{Topology: torus, Params: sim.DefaultParams(1)}.Run(
		[]sim.Message{{Src: 0, Dst: 3, Flits: 50}})
	if err != nil {
		t.Fatal(err)
	}
	if out.UsefulChannelSlots != 50*3 {
		t.Errorf("useful = %d, want %d", out.UsefulChannelSlots, 150)
	}
	if out.HeldChannelSlots < out.UsefulChannelSlots {
		t.Errorf("held %d below useful %d", out.HeldChannelSlots, out.UsefulChannelSlots)
	}
	eff := out.Efficiency()
	if eff <= 0 || eff > 1 {
		t.Errorf("efficiency %f out of range", eff)
	}
}

// TestEfficiencyDropsWithDegree: at a fixed message size, raising the
// fixed multiplexing degree leaves more of each held channel idle (one
// flit per K slots), so efficiency falls — the paper's bandwidth-loss
// argument against over-provisioned fixed degrees.
func TestEfficiencyDropsWithDegree(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	gs, err := apps.GS(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	prev := 2.0
	for _, k := range []int{1, 2, 10} {
		out, err := sim.Dynamic{Topology: torus, Params: sim.DefaultParams(k)}.Run(gs.Messages)
		if err != nil {
			t.Fatal(err)
		}
		eff := out.Efficiency()
		t.Logf("GS K=%d: efficiency %.2f (useful %d, held %d, wasted %d)",
			k, eff, out.UsefulChannelSlots, out.HeldChannelSlots, out.WastedChannelSlots)
		if eff >= prev {
			t.Errorf("K=%d: efficiency %.3f did not drop below %.3f", k, eff, prev)
		}
		prev = eff
	}
}

func TestEfficiencyAccountedOnContention(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	tscf, err := apps.TSCF(64)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.Dynamic{Topology: torus, Params: sim.DefaultParams(5)}.Run(tscf.Messages)
	if err != nil {
		t.Fatal(err)
	}
	if out.WastedChannelSlots == 0 {
		t.Error("contended run should waste channel-slots on over-locking")
	}
	if out.Efficiency() <= 0 || out.Efficiency() > 1 {
		t.Errorf("efficiency %f out of range", out.Efficiency())
	}
}

func TestEfficiencyZeroOnEmptyRun(t *testing.T) {
	r := &sim.DynamicResult{}
	if r.Efficiency() != 0 {
		t.Error("empty run efficiency should be 0")
	}
}

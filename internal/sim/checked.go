package sim

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/request"
	"repro/internal/schedule"
)

// circuitQueue carries the messages of one compiled circuit in start order;
// a circuit moves one flit per opportunity, so same-circuit messages
// serialize.
type circuitQueue struct {
	slot int
	msgs []int // indices into the message slice, ordered by Start
}

// RunCompiledChecked simulates a compiled TDM phase like RunCompiled while
// physically checking the data plane: in every slot it walks the path of
// every transmitting circuit and asserts that no directed link carries two
// flits at once and that no PE injects or ejects twice. RunCompiled trusts
// the schedule (it was validated at compile time); this variant re-verifies
// it at "runtime", which is how the test suite catches a scheduler bug that
// slips through static validation. It is O(path length) slower per flit.
func RunCompiledChecked(res *schedule.Result, msgs []Message) (*CompiledResult, error) {
	k := res.Degree()
	if k == 0 {
		return nil, fmt.Errorf("sim: empty schedule")
	}
	t := res.Topology
	paths := make(map[request.Request]network.Path)
	byCircuit := make(map[request.Request]*circuitQueue)
	total := 0
	for i, m := range msgs {
		if err := m.validate(); err != nil {
			return nil, err
		}
		r := request.Request{Src: nodeID(m.Src), Dst: nodeID(m.Dst)}
		q, ok := byCircuit[r]
		if !ok {
			u, scheduled := res.Slot[r]
			if !scheduled {
				return nil, fmt.Errorf("sim: message %d->%d has no circuit in the compiled schedule", m.Src, m.Dst)
			}
			p, err := t.Route(r.Src, r.Dst)
			if err != nil {
				return nil, err
			}
			paths[r] = p
			q = &circuitQueue{slot: u}
			byCircuit[r] = q
		}
		q.msgs = append(q.msgs, i)
		total += m.Flits
	}
	type entry struct {
		r request.Request
		q *circuitQueue
	}
	queues := make([]entry, 0, len(byCircuit))
	for r, q := range byCircuit {
		queues = append(queues, entry{r, q})
	}

	remaining := make([]int, len(msgs))
	for i, m := range msgs {
		remaining[i] = m.Flits
	}
	finish := make([]int, len(msgs))
	last := 0
	linkBusy := make([]int, t.NumLinks()) // slot stamp of last use
	injBusy := make(map[network.NodeID]int)
	ejBusy := make(map[network.NodeID]int)
	for i := range linkBusy {
		linkBusy[i] = -1
	}
	for tme := 0; total > 0; tme++ {
		for _, e := range queues {
			q := e.q
			if len(q.msgs) == 0 || tme%k != q.slot {
				continue
			}
			i := q.msgs[0]
			if msgs[i].Start > tme {
				continue
			}
			// Physical check: occupy the circuit for this slot.
			if s, ok := injBusy[e.r.Src]; ok && s == tme {
				return nil, fmt.Errorf("sim: PE %d injects twice in slot %d", e.r.Src, tme)
			}
			if s, ok := ejBusy[e.r.Dst]; ok && s == tme {
				return nil, fmt.Errorf("sim: PE %d ejects twice in slot %d", e.r.Dst, tme)
			}
			injBusy[e.r.Src] = tme
			ejBusy[e.r.Dst] = tme
			for _, l := range paths[e.r].Links {
				if linkBusy[l] == tme {
					return nil, fmt.Errorf("sim: link %d carries two flits in slot %d (schedule conflict)", l, tme)
				}
				linkBusy[l] = tme
			}
			remaining[i]--
			total--
			if remaining[i] == 0 {
				finish[i] = tme + 1
				if tme+1 > last {
					last = tme + 1
				}
				q.msgs = q.msgs[1:]
			}
		}
	}
	return &CompiledResult{Time: last, Degree: k, Finish: finish}, nil
}

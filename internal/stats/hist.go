package stats

import "math/bits"

// Hist is an online histogram with power-of-two buckets, built for cheap
// latency recording on a serving hot path: Observe is a couple of integer
// ops and never allocates. Bucket i holds values v with bit length i, i.e.
// v in (2^(i-1)-1, 2^i-1]; bucket 0 holds exactly zero. That gives ~2x
// resolution across the full int range, which is plenty for latency
// distributions where only the order of magnitude and the tail matter.
//
// A Hist is not safe for concurrent use; callers serialize access (the
// compile service guards one Hist per endpoint with its metrics mutex).
type Hist struct {
	counts [65]uint64
	n      uint64
	sum    uint64
	min    int
	max    int
}

// Observe records one non-negative sample; negative samples clamp to zero
// (a backwards clock step must not corrupt the distribution).
func (h *Hist) Observe(v int) {
	if v < 0 {
		v = 0
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += uint64(v)
	h.counts[bits.Len64(uint64(v))]++
}

// HistBucket is one non-empty bucket of a snapshot: Count samples were <= Le
// and greater than the previous bucket's Le.
type HistBucket struct {
	Le    int64  `json:"le"`
	Count uint64 `json:"count"`
}

// HistSnapshot is the serializable state of a Hist.
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Min     int          `json:"min"`
	Max     int          `json:"max"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot returns the current distribution; empty buckets are elided.
func (h *Hist) Snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.n, Sum: h.sum, Min: h.min, Max: h.max}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		le := int64(0)
		if i > 0 {
			le = int64(1)<<uint(i) - 1
		}
		s.Buckets = append(s.Buckets, HistBucket{Le: le, Count: c})
	}
	return s
}

// Mean returns the average sample, zero for an empty snapshot.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound on the p-th quantile (0 < p <= 1): the Le
// bound of the bucket containing the rank-⌈p·n⌉ sample, tightened to Max for
// the last bucket. Zero for an empty snapshot.
func (s HistSnapshot) Quantile(p float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if p <= 0 {
		return int64(s.Min)
	}
	rank := uint64(p * float64(s.Count))
	if float64(rank) < p*float64(s.Count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen uint64
	for i, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			if i == len(s.Buckets)-1 || b.Le > int64(s.Max) {
				return int64(s.Max)
			}
			return b.Le
		}
	}
	return int64(s.Max)
}

package stats_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestSummarizeBasics(t *testing.T) {
	s := stats.Summarize([]int{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary %+v", s)
	}
	// Sample std dev of this classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev-want) > 1e-9 {
		t.Errorf("stddev = %f, want %f", s.StdDev, want)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := stats.Summarize(nil); s.N != 0 {
		t.Errorf("empty summary %+v", s)
	}
	s := stats.Summarize([]int{42})
	if s.Mean != 42 || s.StdDev != 0 || s.Min != 42 || s.Max != 42 {
		t.Errorf("single summary %+v", s)
	}
}

func TestSummarizeProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]int, len(raw))
		for i, v := range raw {
			samples[i] = int(v)
		}
		s := stats.Summarize(samples)
		if s.Min > s.Max {
			return false
		}
		if s.Mean < float64(s.Min) || s.Mean > float64(s.Max) {
			return false
		}
		return s.StdDev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	samples := []int{10, 20, 30, 40, 50}
	cases := map[float64]int{0: 10, 20: 10, 50: 30, 100: 50}
	for p, want := range cases {
		if got := stats.Percentile(samples, p); got != want {
			t.Errorf("P%.0f = %d, want %d", p, got, want)
		}
	}
	for _, bad := range []func(){
		func() { stats.Percentile(nil, 50) },
		func() { stats.Percentile(samples, -1) },
		func() { stats.Percentile(samples, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestHistogram(t *testing.T) {
	h := stats.Histogram([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 2)
	if h[0]+h[1] != 10 || h[0] != 5 {
		t.Errorf("histogram %v", h)
	}
	if h := stats.Histogram([]int{3, 3, 3}, 4); h[0] != 3 {
		t.Errorf("degenerate histogram %v", h)
	}
	if h := stats.Histogram(nil, 3); h[0]+h[1]+h[2] != 0 {
		t.Errorf("empty histogram %v", h)
	}
}

package stats

import (
	"encoding/json"
	"testing"
)

func TestHistEmpty(t *testing.T) {
	var h Hist
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	if s.Mean() != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("empty snapshot mean/quantile not zero")
	}
}

func TestHistBuckets(t *testing.T) {
	var h Hist
	for _, v := range []int{0, 1, 1, 2, 3, 4, 7, 8, 100, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 10 {
		t.Fatalf("count = %d, want 10", s.Count)
	}
	if s.Min != 0 || s.Max != 100 {
		t.Fatalf("min/max = %d/%d, want 0/100", s.Min, s.Max)
	}
	// Buckets: le=0 {0, clamped -5}, le=1 {1,1}, le=3 {2,3}, le=7 {4,7},
	// le=15 {8}, le=127 {100}.
	want := map[int64]uint64{0: 2, 1: 2, 3: 2, 7: 2, 15: 1, 127: 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want bounds %v", s.Buckets, want)
	}
	var total uint64
	for _, b := range s.Buckets {
		if want[b.Le] != b.Count {
			t.Fatalf("bucket le=%d count=%d, want %d", b.Le, b.Count, want[b.Le])
		}
		total += b.Count
	}
	if total != s.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, s.Count)
	}
}

func TestHistQuantile(t *testing.T) {
	var h Hist
	for i := 0; i < 100; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	// p50 of 0..99 is rank 50, which lands in the le=63 bucket.
	if q := s.Quantile(0.5); q != 63 {
		t.Fatalf("p50 = %d, want 63", q)
	}
	// The tail quantile reports the exact observed max, not the bucket bound.
	if q := s.Quantile(0.99); q != 99 {
		t.Fatalf("p99 = %d, want 99", q)
	}
	if q := s.Quantile(1); q != 99 {
		t.Fatalf("p100 = %d, want 99", q)
	}
	if m := s.Mean(); m != 49.5 {
		t.Fatalf("mean = %v, want 49.5", m)
	}
}

func TestHistSnapshotJSON(t *testing.T) {
	var h Hist
	h.Observe(5)
	data, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back HistSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count != 1 || back.Sum != 5 || len(back.Buckets) != 1 || back.Buckets[0].Le != 7 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

// Package stats provides the small set of summary statistics the
// experiment harness reports: mean, standard deviation, extrema and
// percentiles over integer samples (degrees, slot counts, latencies).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of observations.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1 denominator)
	Min    int
	Max    int
}

// Summarize computes a Summary over the samples; an empty input yields the
// zero Summary.
func Summarize(samples []int) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := Summary{N: len(samples), Min: samples[0], Max: samples[0]}
	sum := 0
	for _, v := range samples {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = float64(sum) / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, v := range samples {
			d := float64(v) - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// String renders "mean ± std [min, max] (n)".
func (s Summary) String() string {
	return fmt.Sprintf("%.1f ± %.1f [%d, %d] (n=%d)", s.Mean, s.StdDev, s.Min, s.Max, s.N)
}

// Percentile returns the p-th percentile (0..100) of the samples using
// nearest-rank on a sorted copy; it panics on an empty sample or an
// out-of-range p, which are programming errors in the harness.
func Percentile(samples []int, p float64) int {
	if len(samples) == 0 {
		panic("stats: percentile of empty sample")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	sorted := append([]int(nil), samples...)
	sort.Ints(sorted)
	if p == 0 {
		return sorted[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	return sorted[rank-1]
}

// Histogram buckets samples into equal-width bins between min and max and
// returns the counts; bins must be positive. Degenerate samples (all equal)
// land in the first bin.
func Histogram(samples []int, bins int) []int {
	if bins < 1 {
		panic("stats: non-positive bin count")
	}
	counts := make([]int, bins)
	if len(samples) == 0 {
		return counts
	}
	s := Summarize(samples)
	width := float64(s.Max-s.Min) / float64(bins)
	for _, v := range samples {
		if width == 0 {
			counts[0]++
			continue
		}
		b := int(float64(v-s.Min) / width)
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	return counts
}

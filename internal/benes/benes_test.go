package benes_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/benes"
	"repro/internal/network"
	"repro/internal/patterns"
	"repro/internal/request"
)

func TestNewRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, 1, 3, 12} {
		if _, err := benes.New(n); err == nil {
			t.Errorf("size %d accepted", n)
		}
	}
	b, err := benes.New(8)
	if err != nil {
		t.Fatal(err)
	}
	if b.Stages() != 5 {
		t.Errorf("stages = %d, want 5", b.Stages())
	}
}

// TestRoutePermutationRealizesEveryPermutation: exhaustively for N=4 and
// N=8 (all 24 / 40320 permutations), the looping algorithm's settings must
// physically realize the requested permutation.
func TestRoutePermutationRealizesEveryPermutation(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		b, err := benes.New(n)
		if err != nil {
			t.Fatal(err)
		}
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		count := 0
		var rec func(k int)
		var failed bool
		rec = func(k int) {
			if failed {
				return
			}
			if k == n {
				st, err := b.RoutePermutation(perm)
				if err != nil {
					t.Errorf("n=%d perm %v: %v", n, perm, err)
					failed = true
					return
				}
				got := st.Apply()
				for i := range perm {
					if got[i] != perm[i] {
						t.Errorf("n=%d perm %v: realized %v", n, perm, got)
						failed = true
						return
					}
				}
				count++
				return
			}
			for j := k; j < n; j++ {
				perm[k], perm[j] = perm[j], perm[k]
				rec(k + 1)
				perm[k], perm[j] = perm[j], perm[k]
			}
		}
		rec(0)
		want := 1
		for i := 2; i <= n; i++ {
			want *= i
		}
		if !failed && count != want {
			t.Errorf("n=%d: tested %d permutations, want %d", n, count, want)
		}
	}
}

func TestRoutePermutationRandomLarge(t *testing.T) {
	b, err := benes.New(64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		perm := rng.Perm(64)
		st, err := b.RoutePermutation(perm)
		if err != nil {
			t.Fatal(err)
		}
		got := st.Apply()
		for i := range perm {
			if got[i] != perm[i] {
				t.Fatalf("trial %d: input %d routed to %d, want %d", trial, i, got[i], perm[i])
			}
		}
	}
}

func TestRoutePartialPermutation(t *testing.T) {
	b, err := benes.New(8)
	if err != nil {
		t.Fatal(err)
	}
	perm := []int{3, -1, -1, 5, -1, -1, 0, -1}
	st, err := b.RoutePermutation(perm)
	if err != nil {
		t.Fatal(err)
	}
	got := st.Apply()
	for i, o := range perm {
		if o >= 0 && got[i] != o {
			t.Fatalf("input %d routed to %d, want %d", i, got[i], o)
		}
	}
}

func TestRoutePermutationErrors(t *testing.T) {
	b, err := benes.New(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.RoutePermutation([]int{0, 1}); err == nil {
		t.Error("short permutation accepted")
	}
	if _, err := b.RoutePermutation([]int{0, 0, 1, 2}); err == nil {
		t.Error("duplicate output accepted")
	}
	if _, err := b.RoutePermutation([]int{0, 1, 2, 9}); err == nil {
		t.Error("out-of-range output accepted")
	}
}

// portBound is the Beneš lower bound: max per-source / per-dest request
// count.
func portBound(reqs request.Set) int {
	b := 0
	for _, c := range reqs.Sources() {
		if c > b {
			b = c
		}
	}
	for _, c := range reqs.Destinations() {
		if c > b {
			b = c
		}
	}
	return b
}

// TestScheduleAchievesPortBound: on every classic pattern and random sets,
// the Beneš plan's degree equals the port bound exactly — no heuristic gap.
func TestScheduleAchievesPortBound(t *testing.T) {
	b, err := benes.New(64)
	if err != nil {
		t.Fatal(err)
	}
	hyper, _ := patterns.Hypercube(64)
	shuffle, _ := patterns.ShuffleExchange(64)
	sets := []request.Set{
		patterns.Ring(64),
		patterns.NearestNeighbor2D(8, 8),
		hyper,
		shuffle,
		patterns.AllToAll(64),
		patterns.NearestNeighbor3D(4, 4, 4),
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5; i++ {
		set, err := patterns.Random(rng, 64, 200+700*i)
		if err != nil {
			t.Fatal(err)
		}
		sets = append(sets, set)
	}
	for si, set := range sets {
		plan, err := b.Schedule(set)
		if err != nil {
			t.Fatalf("set %d: %v", si, err)
		}
		if err := plan.Verify(); err != nil {
			t.Fatalf("set %d: %v", si, err)
		}
		if plan.Degree() != portBound(set) {
			t.Errorf("set %d: degree %d, port bound %d", si, plan.Degree(), portBound(set))
		}
	}
}

func TestEdgeColorProperty(t *testing.T) {
	f := func(pairs [][2]uint8) bool {
		const n = 16
		var set request.Set
		for _, p := range pairs {
			s := network.NodeID(int(p[0]) % n)
			d := network.NodeID(int(p[1]) % n)
			if s != d {
				set = append(set, request.Request{Src: s, Dst: d})
			}
		}
		perms, err := benes.EdgeColor(n, set)
		if err != nil {
			return false
		}
		if len(set) == 0 {
			return perms == nil
		}
		if len(perms) != portBound(set) {
			return false
		}
		// Every request covered with multiplicity; every slot a partial
		// permutation by construction of the perm arrays (indexed by src),
		// so check destinations are unique per slot and count coverage.
		covered := map[request.Request]int{}
		for _, perm := range perms {
			dsts := map[int]bool{}
			for s, d := range perm {
				if d < 0 {
					continue
				}
				if dsts[d] {
					return false
				}
				dsts[d] = true
				covered[request.Request{Src: network.NodeID(s), Dst: network.NodeID(d)}]++
			}
		}
		want := map[request.Request]int{}
		for _, r := range set {
			want[r]++
		}
		for r, c := range want {
			if covered[r] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestScheduleRejectsBadRequests(t *testing.T) {
	b, err := benes.New(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Schedule(request.Set{{Src: 0, Dst: 0}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := b.Schedule(request.Set{{Src: 0, Dst: 9}}); err == nil {
		t.Error("out-of-range accepted")
	}
	if _, err := b.Schedule(request.Set{{Src: 0, Dst: 1}, {Src: 0, Dst: 1}}); err == nil {
		t.Error("duplicate request accepted")
	}
}

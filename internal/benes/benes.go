// Package benes implements connection scheduling on a Beneš rearrangeable
// network — the strongest switching substrate compiled communication can
// target, and a counterpoint to the torus evaluation of the paper.
//
// A Beneš network on N = 2^k terminals (2·k−1 stages of N/2 2x2 switches)
// can realize *any* permutation in a single configuration; the classic
// looping algorithm computes the switch settings. Combined with bipartite
// edge coloring — which partitions an arbitrary request multiset into
// max-port-degree partial permutations (König's theorem) — compiled
// communication on a Beneš network always achieves the injection/ejection
// port lower bound:
//
//	multiplexing degree = max(#requests per source, #requests per dest).
//
// No heuristic gap remains, unlike the torus where link conflicts push the
// degree above the port bound. The price is the fabric: O(N log N)
// switches with global wiring instead of the torus's N switches.
package benes

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/request"
)

// Network is a Beneš network over N terminals.
type Network struct {
	N int
}

// New returns a Beneš network over n terminals (n a power of two >= 2).
func New(n int) (*Network, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("benes: size %d not a power of two >= 2", n)
	}
	return &Network{N: n}, nil
}

// Stages returns the number of switch stages, 2*log2(N) - 1.
func (b *Network) Stages() int {
	k := 0
	for 1<<k < b.N {
		k++
	}
	return 2*k - 1
}

// Settings is the recursive switch configuration of one Beneš pass. For a
// 2-terminal (single switch) network only Cross[0] is meaningful; larger
// networks have an input column, an output column and two half-size
// subnetworks.
type Settings struct {
	Size     int
	Cross    []bool // input-stage switches; Cross[k] swaps inputs 2k/2k+1
	OutCross []bool // output-stage switches; nil when Size == 2
	Upper    *Settings
	Lower    *Settings
}

// RoutePermutation computes switch settings realizing the permutation perm
// (perm[i] is the output terminal of input i). Idle inputs are marked -1;
// they are routed to the idle outputs in ascending order, which is legal
// because a Beneš network realizes every completion.
func (b *Network) RoutePermutation(perm []int) (*Settings, error) {
	if len(perm) != b.N {
		return nil, fmt.Errorf("benes: permutation has %d entries, want %d", len(perm), b.N)
	}
	full := make([]int, b.N)
	usedOut := make([]bool, b.N)
	for i, o := range perm {
		full[i] = o
		if o < 0 {
			continue
		}
		if o >= b.N {
			return nil, fmt.Errorf("benes: output %d out of range", o)
		}
		if usedOut[o] {
			return nil, fmt.Errorf("benes: output %d assigned twice", o)
		}
		usedOut[o] = true
	}
	// Complete the partial permutation.
	next := 0
	for i := range full {
		if full[i] >= 0 {
			continue
		}
		for usedOut[next] {
			next++
		}
		full[i] = next
		usedOut[next] = true
	}
	return loop(full)
}

// loop is the looping algorithm: split the permutation across the upper and
// lower half-size subnetworks so that the two inputs of every input switch
// and the two outputs of every output switch use different halves, then
// recurse.
func loop(perm []int) (*Settings, error) {
	n := len(perm)
	if n == 2 {
		return &Settings{Size: 2, Cross: []bool{perm[0] == 1}}, nil
	}
	inv := make([]int, n)
	for i, o := range perm {
		inv[o] = i
	}
	const unset = -1
	half := make([]int, n) // half[i]: 0 = upper, 1 = lower, per input
	for i := range half {
		half[i] = unset
	}
	for start := 0; start < n; start++ {
		if half[start] != unset {
			continue
		}
		// Walk the constraint cycle: input sibling alternation and output
		// sibling alternation.
		i, h := start, 0
		for {
			half[i] = h
			// Output constraint: the sibling output of perm[i] must come
			// from the other half.
			sibIn := inv[perm[i]^1]
			if half[sibIn] == unset {
				half[sibIn] = 1 - h
			}
			// Input constraint: the sibling input of sibIn takes the other
			// half again.
			nxt := sibIn ^ 1
			if half[nxt] != unset {
				break
			}
			i, h = nxt, 1-half[sibIn]
		}
	}

	s := &Settings{
		Size:     n,
		Cross:    make([]bool, n/2),
		OutCross: make([]bool, n/2),
	}
	upPerm := make([]int, n/2)
	loPerm := make([]int, n/2)
	for k := 0; k < n/2; k++ {
		// Input switch k: through sends 2k up; cross sends 2k down.
		s.Cross[k] = half[2*k] == 1
		// Subnetwork permutations: input switch k feeds subnet position k;
		// output switch perm[i]/2 drains subnet position perm[i]/2.
		for _, i := range []int{2 * k, 2*k + 1} {
			if half[i] == 0 {
				upPerm[k] = perm[i] / 2
			} else {
				loPerm[k] = perm[i] / 2
			}
		}
	}
	for p := 0; p < n/2; p++ {
		// Output switch p: through takes the upper subnet to output 2p.
		srcIn := inv[2*p]
		s.OutCross[p] = half[srcIn] == 1
	}
	var err error
	if s.Upper, err = loop(upPerm); err != nil {
		return nil, err
	}
	if s.Lower, err = loop(loPerm); err != nil {
		return nil, err
	}
	return s, nil
}

// Apply traces every input through the settings and returns the realized
// input-to-output mapping — the verification mirror of RoutePermutation.
func (s *Settings) Apply() []int {
	n := s.Size
	out := make([]int, n)
	if n == 2 {
		if s.Cross[0] {
			out[0], out[1] = 1, 0
		} else {
			out[0], out[1] = 0, 1
		}
		return out
	}
	up := s.Upper.Apply()
	lo := s.Lower.Apply()
	for i := 0; i < n; i++ {
		k := i / 2
		// Which half does input i enter?
		toLower := s.Cross[k] != (i%2 == 1)
		var p int // subnet output position
		if toLower {
			p = lo[k]
		} else {
			p = up[k]
		}
		// Output switch p: through maps upper to 2p.
		if s.OutCross[p] != toLower {
			out[i] = 2*p + 1
		} else {
			out[i] = 2 * p
		}
	}
	return out
}

// EdgeColor partitions a request multiset over n terminals into the minimum
// number of partial permutations: exactly the maximum number of requests
// sharing a source or a destination (König's bipartite edge-coloring
// theorem, via alternating-path recoloring). Slot k's partial permutation
// is returned as perm[k][src] = dst with -1 for idle sources.
func EdgeColor(n int, reqs request.Set) ([][]int, error) {
	if err := validateReqs(n, reqs, true); err != nil {
		return nil, err
	}
	degree := 0
	srcDeg := make([]int, n)
	dstDeg := make([]int, n)
	for _, r := range reqs {
		srcDeg[r.Src]++
		dstDeg[r.Dst]++
		if srcDeg[r.Src] > degree {
			degree = srcDeg[r.Src]
		}
		if dstDeg[r.Dst] > degree {
			degree = dstDeg[r.Dst]
		}
	}
	if degree == 0 {
		return nil, nil
	}
	// color assignment tables: srcColor[s][c] = dst (or -1), dstColor[d][c] = src.
	srcColor := make([][]int, n)
	dstColor := make([][]int, n)
	for i := 0; i < n; i++ {
		srcColor[i] = filled(degree, -1)
		dstColor[i] = filled(degree, -1)
	}
	freeColor := func(table []int) int {
		for c, v := range table {
			if v < 0 {
				return c
			}
		}
		return -1
	}
	for _, r := range reqs {
		s, d := int(r.Src), int(r.Dst)
		a := freeColor(srcColor[s])
		bc := freeColor(dstColor[d])
		if a == -1 || bc == -1 {
			return nil, fmt.Errorf("benes: internal: no free color for %v", r)
		}
		if a == bc {
			srcColor[s][a] = d
			dstColor[d][a] = s
			continue
		}
		// Flip the a/bc alternating path starting at d: every edge on the
		// path swaps colors a and bc, freeing color a at d.
		u, cFrom, cTo := d, a, bc
		onDst := true
		for {
			var v int
			if onDst {
				v = dstColor[u][cFrom]
			} else {
				v = srcColor[u][cFrom]
			}
			if v < 0 {
				break
			}
			if onDst {
				dstColor[u][cFrom], dstColor[u][cTo] = dstColor[u][cTo], dstColor[u][cFrom]
			} else {
				srcColor[u][cFrom], srcColor[u][cTo] = srcColor[u][cTo], srcColor[u][cFrom]
			}
			u = v
			onDst = !onDst
			cFrom, cTo = cTo, cFrom
		}
		if onDst {
			dstColor[u][cFrom], dstColor[u][cTo] = dstColor[u][cTo], dstColor[u][cFrom]
		} else {
			srcColor[u][cFrom], srcColor[u][cTo] = srcColor[u][cTo], srcColor[u][cFrom]
		}
		srcColor[s][a] = d
		dstColor[d][a] = s
	}
	perms := make([][]int, degree)
	for c := 0; c < degree; c++ {
		perms[c] = filled(n, -1)
	}
	for s := 0; s < n; s++ {
		for c, d := range srcColor[s] {
			if d >= 0 {
				perms[c][s] = d
			}
		}
	}
	return perms, nil
}

// Plan is a complete compiled-communication plan on a Beneš network: one
// switch setting per TDM slot, achieving the port lower bound.
type Plan struct {
	Network  *Network
	Slots    []*Settings
	Perms    [][]int
	SlotOf   map[request.Request]int
	Requests request.Set
}

// Degree returns the plan's multiplexing degree.
func (p *Plan) Degree() int { return len(p.Slots) }

// Schedule partitions the requests into port-bound many permutations and
// routes each through the network.
func (b *Network) Schedule(reqs request.Set) (*Plan, error) {
	if err := validateReqs(b.N, reqs, false); err != nil {
		return nil, err
	}
	perms, err := EdgeColor(b.N, reqs)
	if err != nil {
		return nil, err
	}
	plan := &Plan{
		Network:  b,
		Perms:    perms,
		SlotOf:   make(map[request.Request]int, len(reqs)),
		Requests: reqs.Clone(),
	}
	for c, perm := range perms {
		st, err := b.RoutePermutation(perm)
		if err != nil {
			return nil, err
		}
		plan.Slots = append(plan.Slots, st)
		for s, d := range perm {
			if d >= 0 {
				plan.SlotOf[request.Request{Src: network.NodeID(s), Dst: network.NodeID(d)}] = c
			}
		}
	}
	return plan, nil
}

// Verify re-applies every slot's switch settings and confirms each request
// is physically realized in its slot.
func (p *Plan) Verify() error {
	realized := make([][]int, len(p.Slots))
	for c, st := range p.Slots {
		realized[c] = st.Apply()
	}
	for _, r := range p.Requests.Dedup() {
		c, ok := p.SlotOf[r]
		if !ok {
			return fmt.Errorf("benes: request %v has no slot", r)
		}
		if realized[c][int(r.Src)] != int(r.Dst) {
			return fmt.Errorf("benes: slot %d routes input %d to %d, want %d",
				c, r.Src, realized[c][int(r.Src)], r.Dst)
		}
	}
	return nil
}

// validateReqs checks request ranges. Duplicate (s, d) pairs are legal for
// EdgeColor — it colors a multigraph, placing parallel edges in distinct
// slots — but ambiguous for Plan.SlotOf, so Schedule rejects them.
func validateReqs(n int, reqs request.Set, allowDup bool) error {
	for _, r := range reqs {
		if int(r.Src) < 0 || int(r.Src) >= n || int(r.Dst) < 0 || int(r.Dst) >= n {
			return fmt.Errorf("benes: request %v outside 0..%d", r, n-1)
		}
		if r.Src == r.Dst {
			return fmt.Errorf("benes: self-loop %v", r)
		}
	}
	if allowDup {
		return nil
	}
	seen := make(map[request.Request]bool, len(reqs))
	for _, r := range reqs {
		if seen[r] {
			return fmt.Errorf("benes: duplicate request %v", r)
		}
		seen[r] = true
	}
	return nil
}

func filled(n, v int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = v
	}
	return s
}

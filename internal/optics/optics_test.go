package optics_test

import (
	"math/rand"
	"testing"

	"repro/internal/network"
	"repro/internal/optics"
	"repro/internal/patterns"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/switchprog"
	"repro/internal/topology"
)

func compileFor(t *testing.T, topo network.Topology, set request.Set) (*schedule.Result, *optics.Tracer) {
	t.Helper()
	res, err := schedule.Combined{}.Schedule(topo, set)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := switchprog.Compile(res)
	if err != nil {
		t.Fatal(err)
	}
	return res, optics.NewTracer(prog)
}

// TestLightReachesScheduledDestinations is the end-to-end check: for a
// large random pattern on the 8x8 torus, light injected per the compiled
// registers lands exactly at the scheduled destinations.
func TestLightReachesScheduledDestinations(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	rng := rand.New(rand.NewSource(42))
	set, err := patterns.Random(rng, 64, 1500)
	if err != nil {
		t.Fatal(err)
	}
	res, tracer := compileFor(t, torus, set)
	n, err := tracer.VerifySchedule(res.Slot)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(set) {
		t.Errorf("verified %d circuits, want %d", n, len(set))
	}
}

// TestSlotCensusMatchesConfigurations: the physically realized connection
// set of every slot equals the schedule's configuration for that slot.
func TestSlotCensusMatchesConfigurations(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	set := patterns.AllToAll(64)
	res, tracer := compileFor(t, torus, set)
	for slot, cfg := range res.Configs {
		census, err := tracer.SlotCensus(slot)
		if err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
		want := map[request.Request]bool{}
		for _, r := range cfg {
			want[r] = true
		}
		if len(census) != len(cfg) {
			t.Fatalf("slot %d: census %d connections, schedule %d", slot, len(census), len(cfg))
		}
		for _, r := range census {
			if !want[r] {
				t.Fatalf("slot %d: network establishes unscheduled connection %v", slot, r)
			}
		}
	}
}

func TestTraceOnAllTopologies(t *testing.T) {
	topos := []network.Topology{
		topology.NewTorus(4, 4),
		topology.NewMesh(4, 4),
		topology.NewRing(8),
		topology.NewLinear(8),
		topology.NewHypercube(4),
	}
	for _, topo := range topos {
		set := patterns.AllToAll(topo.NumNodes())
		res, tracer := compileFor(t, topo, set)
		if _, err := tracer.VerifySchedule(res.Slot); err != nil {
			t.Fatalf("%s: %v", topo.Name(), err)
		}
	}
}

func TestTraceErrors(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	res, tracer := compileFor(t, torus, request.Set{{Src: 0, Dst: 5}})
	// Slot out of range.
	if _, _, err := tracer.Trace(0, 5); err == nil {
		t.Error("out-of-range slot accepted")
	}
	// Dark port: node 3 injects nothing.
	if _, _, err := tracer.Trace(3, 0); err == nil {
		t.Error("dark injection port traced successfully")
	}
	_ = res
}

// TestTracerDetectsCorruptedRegisters: flipping one register entry makes
// verification fail — the tracer is actually sensitive to the registers.
func TestTracerDetectsCorruptedRegisters(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	set := request.Set{{Src: 0, Dst: 2}}
	res, err := schedule.Combined{}.Schedule(torus, set)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := switchprog.Compile(res)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: reroute the intermediate switch's crossing to the PE port.
	p, err := torus.Route(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	mid := torus.Link(p.Links[0]).To
	slot := res.Slot[set[0]]
	var ins []int
	prog.EachEntry(mid, slot, func(in, out int) { ins = append(ins, in) })
	for _, in := range ins {
		prog.SetEntry(mid, slot, in, network.PEPort)
	}
	tracer := optics.NewTracer(prog)
	dst, _, err := tracer.Trace(0, slot)
	if err == nil && dst == 2 {
		t.Error("tracer did not notice corrupted registers")
	}
}

// Package optics verifies compiled network control at the physical level:
// it traces light through the switch crossbar settings alone, without
// consulting the schedule or the routing function that produced them.
//
// A Tracer injects a probe into the PE injection port of a switch during a
// TDM slot and follows the optical path dictated purely by the loaded
// crossbar states: in-port -> out-port inside each switch, out-port ->
// neighbor in-port along each fiber. Whatever PE ejection port the probe
// reaches is where the data physically lands. Comparing that against the
// intended destinations is the strongest end-to-end check the system has:
// it would catch a correct schedule lowered to wrong register contents, a
// wrong link table, or a routing/lowering disagreement.
package optics

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/request"
	"repro/internal/switchprog"
)

// Tracer follows light through a compiled switch program.
type Tracer struct {
	prog *switchprog.Program
	// Crossbar states and wiring flattened at construction, so one hop is
	// two array reads instead of two map probes: state holds out+1 per
	// (node, slot, in) with 0 meaning dark, linkAt holds link index+1 per
	// (node, outPort) with 0 meaning no fiber.
	ports  int
	stride int // Degree * ports
	state  []int32
	linkAt []int32
	links  []network.LinkInfo
}

// NewTracer indexes the topology's wiring and the program's crossbar
// states. The snapshot is taken here: mutations of the program after
// construction are not seen by this Tracer.
func NewTracer(prog *switchprog.Program) *Tracer {
	topo := prog.Topology
	nn := topo.NumNodes()
	t := &Tracer{prog: prog, links: make([]network.LinkInfo, topo.NumLinks())}
	ports := network.PEPort + 1
	for id := range t.links {
		li := topo.Link(network.LinkID(id))
		t.links[id] = li
		if li.OutPort >= ports {
			ports = li.OutPort + 1
		}
		if li.InPort >= ports {
			ports = li.InPort + 1
		}
	}
	// The program is untrusted here — it may have been compiled against a
	// wider crossbar than the wiring uses — so the port bound must cover
	// its registers too.
	if prog.Ports() > ports {
		ports = prog.Ports()
	}
	t.ports = ports
	t.stride = prog.Degree * ports
	t.linkAt = make([]int32, nn*ports)
	for id := range t.links {
		li := &t.links[id]
		t.linkAt[int(li.From)*ports+li.OutPort] = int32(id + 1)
	}
	t.state = make([]int32, nn*t.stride)
	for n := 0; n < nn; n++ {
		base := n * t.stride
		for slot := 0; slot < prog.Degree; slot++ {
			row := base + slot*ports
			prog.EachEntry(network.NodeID(n), slot, func(in, out int) {
				t.state[row+in] = int32(out + 1)
			})
		}
	}
	return t
}

// Trace injects a probe at src's PE port in the given slot and returns the
// node whose PE ejection port the light reaches, together with the hop
// count. It fails if the injection port is dark (no crossbar entry), if an
// out-port leads to no fiber, or if the path exceeds the network size
// (a miswired loop).
func (t *Tracer) Trace(src network.NodeID, slot int) (network.NodeID, int, error) {
	if slot < 0 || slot >= t.prog.Degree {
		return 0, 0, fmt.Errorf("optics: slot %d outside degree %d", slot, t.prog.Degree)
	}
	node := src
	in := network.PEPort
	hops := 0
	limit := len(t.links) + 1
	for {
		v := t.state[int(node)*t.stride+slot*t.ports+in]
		if v == 0 {
			return 0, 0, fmt.Errorf("optics: dark input: switch %d slot %d port %d", node, slot, in)
		}
		out := int(v - 1)
		if out == network.PEPort {
			return node, hops, nil
		}
		w := t.linkAt[int(node)*t.ports+out]
		if w == 0 {
			return 0, 0, fmt.Errorf("optics: switch %d output port %d leads to no fiber", node, out)
		}
		li := &t.links[w-1]
		node = li.To
		in = li.InPort
		hops++
		if hops > limit {
			return 0, 0, fmt.Errorf("optics: light from %d loops in slot %d", src, slot)
		}
	}
}

// VerifySchedule traces every circuit of a schedule's slot index through
// the program and checks the light lands at the scheduled destination. It
// returns the number of circuits verified.
func (t *Tracer) VerifySchedule(slots map[request.Request]int) (int, error) {
	n := 0
	for r, slot := range slots {
		dst, _, err := t.Trace(r.Src, slot)
		if err != nil {
			return n, fmt.Errorf("optics: circuit %v: %w", r, err)
		}
		if dst != r.Dst {
			return n, fmt.Errorf("optics: circuit %v delivers to %d", r, dst)
		}
		n++
	}
	return n, nil
}

// SlotCensus traces every lit PE injection port of a slot and returns the
// realized connection set — the physical configuration the network
// establishes in that slot.
func (t *Tracer) SlotCensus(slot int) (request.Set, error) {
	var set request.Set
	for node := 0; node < t.prog.Topology.NumNodes(); node++ {
		if t.state[node*t.stride+slot*t.ports+network.PEPort] == 0 {
			continue
		}
		dst, _, err := t.Trace(network.NodeID(node), slot)
		if err != nil {
			return nil, err
		}
		set = append(set, request.Request{Src: network.NodeID(node), Dst: dst})
	}
	return set, nil
}

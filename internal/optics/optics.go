// Package optics verifies compiled network control at the physical level:
// it traces light through the switch crossbar settings alone, without
// consulting the schedule or the routing function that produced them.
//
// A Tracer injects a probe into the PE injection port of a switch during a
// TDM slot and follows the optical path dictated purely by the loaded
// crossbar states: in-port -> out-port inside each switch, out-port ->
// neighbor in-port along each fiber. Whatever PE ejection port the probe
// reaches is where the data physically lands. Comparing that against the
// intended destinations is the strongest end-to-end check the system has:
// it would catch a correct schedule lowered to wrong register contents, a
// wrong link table, or a routing/lowering disagreement.
package optics

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/request"
	"repro/internal/switchprog"
)

// Tracer follows light through a compiled switch program.
type Tracer struct {
	prog *switchprog.Program
	// linkAt maps (node, outPort) to the departing link.
	linkAt map[[2]int]network.LinkInfo
}

// NewTracer indexes the topology's wiring for the program.
func NewTracer(prog *switchprog.Program) *Tracer {
	t := &Tracer{prog: prog, linkAt: make(map[[2]int]network.LinkInfo)}
	topo := prog.Topology
	for id := 0; id < topo.NumLinks(); id++ {
		li := topo.Link(network.LinkID(id))
		t.linkAt[[2]int{int(li.From), li.OutPort}] = li
	}
	return t
}

// Trace injects a probe at src's PE port in the given slot and returns the
// node whose PE ejection port the light reaches, together with the hop
// count. It fails if the injection port is dark (no crossbar entry), if an
// out-port leads to no fiber, or if the path exceeds the network size
// (a miswired loop).
func (t *Tracer) Trace(src network.NodeID, slot int) (network.NodeID, int, error) {
	if slot < 0 || slot >= t.prog.Degree {
		return 0, 0, fmt.Errorf("optics: slot %d outside degree %d", slot, t.prog.Degree)
	}
	node := src
	in := network.PEPort
	hops := 0
	limit := t.prog.Topology.NumLinks() + 1
	for {
		states := t.prog.Switches[node].Slots[slot]
		out, ok := states[in]
		if !ok {
			return 0, 0, fmt.Errorf("optics: dark input: switch %d slot %d port %d", node, slot, in)
		}
		if out == network.PEPort {
			return node, hops, nil
		}
		li, wired := t.linkAt[[2]int{int(node), out}]
		if !wired {
			return 0, 0, fmt.Errorf("optics: switch %d output port %d leads to no fiber", node, out)
		}
		node = li.To
		in = li.InPort
		hops++
		if hops > limit {
			return 0, 0, fmt.Errorf("optics: light from %d loops in slot %d", src, slot)
		}
	}
}

// VerifySchedule traces every circuit of a schedule's slot index through
// the program and checks the light lands at the scheduled destination. It
// returns the number of circuits verified.
func (t *Tracer) VerifySchedule(slots map[request.Request]int) (int, error) {
	n := 0
	for r, slot := range slots {
		dst, _, err := t.Trace(r.Src, slot)
		if err != nil {
			return n, fmt.Errorf("optics: circuit %v: %w", r, err)
		}
		if dst != r.Dst {
			return n, fmt.Errorf("optics: circuit %v delivers to %d", r, dst)
		}
		n++
	}
	return n, nil
}

// SlotCensus traces every lit PE injection port of a slot and returns the
// realized connection set — the physical configuration the network
// establishes in that slot.
func (t *Tracer) SlotCensus(slot int) (request.Set, error) {
	var set request.Set
	for node := range t.prog.Switches {
		states := t.prog.Switches[node].Slots[slot]
		if _, lit := states[network.PEPort]; !lit {
			continue
		}
		dst, _, err := t.Trace(network.NodeID(node), slot)
		if err != nil {
			return nil, err
		}
		set = append(set, request.Request{Src: network.NodeID(node), Dst: dst})
	}
	return set, nil
}

// Package patterns generates the communication patterns used throughout the
// paper's evaluation: uniformly random request sets (Table 1) and the
// frequently used patterns — ring, nearest neighbor, hypercube,
// shuffle-exchange and all-to-all (Table 3). Patterns are logical: they name
// PE pairs and are independent of the physical topology they are later
// scheduled on (the paper embeds them all in the 8x8 torus).
package patterns

import (
	"fmt"
	"math/rand"

	"repro/internal/network"
	"repro/internal/request"
)

// Random generates a pattern of n distinct random connection requests over
// `nodes` PEs. Sources and destinations are drawn from the uniform
// distribution; self-loops and duplicate (s, d) pairs are rejected and
// redrawn, matching the paper's random-pattern workload (up to 4032 distinct
// pairs on 64 nodes).
func Random(rng *rand.Rand, nodes, n int) (request.Set, error) {
	maxPairs := nodes * (nodes - 1)
	if n > maxPairs {
		return nil, fmt.Errorf("patterns: %d requests exceed the %d distinct pairs of %d nodes", n, maxPairs, nodes)
	}
	seen := make(map[request.Request]struct{}, n)
	set := make(request.Set, 0, n)
	for len(set) < n {
		s := network.NodeID(rng.Intn(nodes))
		d := network.NodeID(rng.Intn(nodes))
		if s == d {
			continue
		}
		r := request.Request{Src: s, Dst: d}
		if _, ok := seen[r]; ok {
			continue
		}
		seen[r] = struct{}{}
		set = append(set, r)
	}
	return set, nil
}

// RandomWithRepetition generates n random requests without deduplication,
// used by the ablation experiments to study the effect of repeated pairs.
func RandomWithRepetition(rng *rand.Rand, nodes, n int) request.Set {
	set := make(request.Set, 0, n)
	for len(set) < n {
		s := network.NodeID(rng.Intn(nodes))
		d := network.NodeID(rng.Intn(nodes))
		if s == d {
			continue
		}
		set = append(set, request.Request{Src: s, Dst: d})
	}
	return set
}

// Ring treats the PEs as a logical ring and connects every PE to both of
// its neighbors: 2*nodes requests (the GS pattern; 128 connections for 64
// PEs in Table 3).
func Ring(nodes int) request.Set {
	set := make(request.Set, 0, 2*nodes)
	for i := 0; i < nodes; i++ {
		set = append(set,
			request.Request{Src: network.NodeID(i), Dst: network.NodeID((i + 1) % nodes)},
			request.Request{Src: network.NodeID(i), Dst: network.NodeID((i - 1 + nodes) % nodes)},
		)
	}
	return set
}

// LinearNeighbors is the open-chain variant of Ring: every PE talks to its
// adjacent PEs without wraparound (the exact GS shared-array pattern, where
// boundary PEs have a single neighbor).
func LinearNeighbors(nodes int) request.Set {
	set := make(request.Set, 0, 2*nodes-2)
	for i := 0; i < nodes-1; i++ {
		set = append(set,
			request.Request{Src: network.NodeID(i), Dst: network.NodeID(i + 1)},
			request.Request{Src: network.NodeID(i + 1), Dst: network.NodeID(i)},
		)
	}
	return set
}

// NearestNeighbor2D treats the PEs as a logical w x h wraparound grid and
// connects every PE with its four neighbors: 4*w*h requests (256 for 8x8 in
// Table 3).
func NearestNeighbor2D(w, h int) request.Set {
	node := func(r, c int) network.NodeID {
		return network.NodeID(((r+h)%h)*w + (c+w)%w)
	}
	set := make(request.Set, 0, 4*w*h)
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			src := node(r, c)
			set = append(set,
				request.Request{Src: src, Dst: node(r, c+1)},
				request.Request{Src: src, Dst: node(r, c-1)},
				request.Request{Src: src, Dst: node(r+1, c)},
				request.Request{Src: src, Dst: node(r-1, c)},
			)
		}
	}
	return set
}

// NearestNeighbor3D treats the PEs as a logical x*y*z wraparound grid and
// connects every PE with all 26 surrounding PEs (the P3M 5 pattern).
// Duplicate destinations that arise when a dimension has fewer than 3
// distinct coordinates are removed.
func NearestNeighbor3D(x, y, z int) request.Set {
	node := func(i, j, k int) network.NodeID {
		i, j, k = (i+x)%x, (j+y)%y, (k+z)%z
		return network.NodeID((i*y+j)*z + k)
	}
	var set request.Set
	for i := 0; i < x; i++ {
		for j := 0; j < y; j++ {
			for k := 0; k < z; k++ {
				src := node(i, j, k)
				seen := map[network.NodeID]struct{}{src: {}}
				for di := -1; di <= 1; di++ {
					for dj := -1; dj <= 1; dj++ {
						for dk := -1; dk <= 1; dk++ {
							if di == 0 && dj == 0 && dk == 0 {
								continue
							}
							dst := node(i+di, j+dj, k+dk)
							if _, ok := seen[dst]; ok {
								continue
							}
							seen[dst] = struct{}{}
							set = append(set, request.Request{Src: src, Dst: dst})
						}
					}
				}
			}
		}
	}
	return set
}

// Hypercube connects every PE with its log2(nodes) hypercube neighbors
// (the TSCF pattern; 384 connections for 64 PEs in Table 3). nodes must be
// a power of two.
func Hypercube(nodes int) (request.Set, error) {
	if nodes <= 0 || nodes&(nodes-1) != 0 {
		return nil, fmt.Errorf("patterns: hypercube needs a power-of-two node count, got %d", nodes)
	}
	var set request.Set
	for i := 0; i < nodes; i++ {
		for b := 1; b < nodes; b <<= 1 {
			set = append(set, request.Request{Src: network.NodeID(i), Dst: network.NodeID(i ^ b)})
		}
	}
	return set, nil
}

// ShuffleExchange connects every PE i to shuffle(i) (cyclic left rotation
// of its binary address) and to exchange(i) = i XOR 1. Fixed points of the
// shuffle (nodes 0 and nodes-1) contribute no shuffle request, which yields
// the paper's 126 connections for 64 PEs. nodes must be a power of two.
func ShuffleExchange(nodes int) (request.Set, error) {
	if nodes <= 1 || nodes&(nodes-1) != 0 {
		return nil, fmt.Errorf("patterns: shuffle-exchange needs a power-of-two node count, got %d", nodes)
	}
	logN := 0
	for 1<<logN < nodes {
		logN++
	}
	var set request.Set
	for i := 0; i < nodes; i++ {
		shuffled := ((i << 1) | (i >> (logN - 1))) & (nodes - 1)
		if shuffled != i {
			set = append(set, request.Request{Src: network.NodeID(i), Dst: network.NodeID(shuffled)})
		}
		set = append(set, request.Request{Src: network.NodeID(i), Dst: network.NodeID(i ^ 1)})
	}
	return set, nil
}

// AllToAll connects every PE to every other PE: nodes*(nodes-1) requests
// (4032 for 64 PEs).
func AllToAll(nodes int) request.Set {
	set := make(request.Set, 0, nodes*(nodes-1))
	for s := 0; s < nodes; s++ {
		for d := 0; d < nodes; d++ {
			if s != d {
				set = append(set, request.Request{Src: network.NodeID(s), Dst: network.NodeID(d)})
			}
		}
	}
	return set
}

// Transpose connects PE (r, c) of a logical w x w grid to PE (c, r); PEs on
// the diagonal send nothing. A classic dense pattern used in the extension
// experiments.
func Transpose(w int) request.Set {
	var set request.Set
	for r := 0; r < w; r++ {
		for c := 0; c < w; c++ {
			if r != c {
				set = append(set, request.Request{
					Src: network.NodeID(r*w + c),
					Dst: network.NodeID(c*w + r),
				})
			}
		}
	}
	return set
}

// BitReversal connects every PE to the PE whose address is its bit-reversed
// address. nodes must be a power of two.
func BitReversal(nodes int) (request.Set, error) {
	if nodes <= 1 || nodes&(nodes-1) != 0 {
		return nil, fmt.Errorf("patterns: bit reversal needs a power-of-two node count, got %d", nodes)
	}
	logN := 0
	for 1<<logN < nodes {
		logN++
	}
	var set request.Set
	for i := 0; i < nodes; i++ {
		rev := 0
		for b := 0; b < logN; b++ {
			if i&(1<<b) != 0 {
				rev |= 1 << (logN - 1 - b)
			}
		}
		if rev != i {
			set = append(set, request.Request{Src: network.NodeID(i), Dst: network.NodeID(rev)})
		}
	}
	return set, nil
}

package patterns_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/network"
	"repro/internal/patterns"
	"repro/internal/request"
)

// checkNoSelfLoops asserts a pattern has no self-loops and all endpoints in
// range.
func checkNoSelfLoops(t *testing.T, set request.Set, nodes int) {
	t.Helper()
	for _, r := range set {
		if r.Src == r.Dst {
			t.Fatalf("self-loop %v", r)
		}
		if int(r.Src) < 0 || int(r.Src) >= nodes || int(r.Dst) < 0 || int(r.Dst) >= nodes {
			t.Fatalf("request %v out of range", r)
		}
	}
}

func TestRandomCountAndDistinctness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	set, err := patterns.Random(rng, 64, 4032)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 4032 {
		t.Fatalf("got %d requests, want 4032", len(set))
	}
	checkNoSelfLoops(t, set, 64)
	if len(set.Dedup()) != len(set) {
		t.Error("Random produced duplicate pairs")
	}
}

func TestRandomRejectsOversizedRequest(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := patterns.Random(rng, 8, 8*7+1); err == nil {
		t.Error("Random accepted more requests than distinct pairs")
	}
}

func TestRandomWithRepetition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	set := patterns.RandomWithRepetition(rng, 8, 500)
	if len(set) != 500 {
		t.Fatalf("got %d requests", len(set))
	}
	checkNoSelfLoops(t, set, 8)
	if len(set.Dedup()) == len(set) {
		t.Error("500 draws over 56 pairs produced no duplicates; generator broken")
	}
}

func TestRingPattern(t *testing.T) {
	set := patterns.Ring(64)
	if len(set) != 128 {
		t.Fatalf("ring has %d connections, want 128 (Table 3)", len(set))
	}
	checkNoSelfLoops(t, set, 64)
	src := set.Sources()
	dst := set.Destinations()
	for i := 0; i < 64; i++ {
		if src[network.NodeID(i)] != 2 || dst[network.NodeID(i)] != 2 {
			t.Fatalf("node %d: out=%d in=%d, want 2/2", i, src[network.NodeID(i)], dst[network.NodeID(i)])
		}
	}
}

func TestLinearNeighborsPattern(t *testing.T) {
	set := patterns.LinearNeighbors(64)
	if len(set) != 126 {
		t.Fatalf("linear neighbors has %d connections, want 126", len(set))
	}
	checkNoSelfLoops(t, set, 64)
	src := set.Sources()
	if src[0] != 1 || src[63] != 1 || src[5] != 2 {
		t.Error("boundary PEs must send 1 message, interior PEs 2")
	}
}

func TestNearestNeighbor2DPattern(t *testing.T) {
	set := patterns.NearestNeighbor2D(8, 8)
	if len(set) != 256 {
		t.Fatalf("nearest neighbor has %d connections, want 256 (Table 3)", len(set))
	}
	checkNoSelfLoops(t, set, 64)
	if len(set.Dedup()) != 256 {
		t.Error("duplicate requests in 8x8 nearest neighbor")
	}
	// Symmetry: (s, d) present iff (d, s) present.
	seen := map[request.Request]bool{}
	for _, r := range set {
		seen[r] = true
	}
	for _, r := range set {
		if !seen[request.Request{Src: r.Dst, Dst: r.Src}] {
			t.Fatalf("missing reverse of %v", r)
		}
	}
}

func TestNearestNeighbor3DPattern(t *testing.T) {
	set := patterns.NearestNeighbor3D(4, 4, 4)
	if len(set) != 64*26 {
		t.Fatalf("26-neighbor pattern has %d connections, want %d", len(set), 64*26)
	}
	checkNoSelfLoops(t, set, 64)
	if len(set.Dedup()) != len(set) {
		t.Error("duplicate requests in 4x4x4 26-neighbor pattern")
	}
	// With a dimension of extent 2, wraparound collapses neighbors.
	small := patterns.NearestNeighbor3D(2, 2, 2)
	if len(small) != 8*7 {
		t.Errorf("2x2x2 26-neighbor pattern has %d connections, want %d (all-to-all)", len(small), 8*7)
	}
}

func TestHypercubePattern(t *testing.T) {
	set, err := patterns.Hypercube(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 384 {
		t.Fatalf("hypercube has %d connections, want 384 (Table 3)", len(set))
	}
	checkNoSelfLoops(t, set, 64)
	// Every request flips exactly one address bit.
	for _, r := range set {
		x := int(r.Src) ^ int(r.Dst)
		if x&(x-1) != 0 {
			t.Fatalf("request %v is not a hypercube edge", r)
		}
	}
	if _, err := patterns.Hypercube(48); err == nil {
		t.Error("non-power-of-two accepted")
	}
}

func TestShuffleExchangePattern(t *testing.T) {
	set, err := patterns.ShuffleExchange(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 126 {
		t.Fatalf("shuffle-exchange has %d connections, want 126 (Table 3)", len(set))
	}
	checkNoSelfLoops(t, set, 64)
	// Shuffle requests rotate the 6-bit address left.
	shuffles := 0
	for _, r := range set {
		rot := ((int(r.Src) << 1) | (int(r.Src) >> 5)) & 63
		if int(r.Dst) == rot && rot != int(r.Src) {
			shuffles++
		}
	}
	if shuffles != 62 {
		t.Errorf("found %d shuffle edges, want 62 (64 minus fixed points 0 and 63)", shuffles)
	}
	if _, err := patterns.ShuffleExchange(10); err == nil {
		t.Error("non-power-of-two accepted")
	}
}

func TestAllToAllPattern(t *testing.T) {
	set := patterns.AllToAll(64)
	if len(set) != 4032 {
		t.Fatalf("all-to-all has %d connections, want 4032 (Table 3)", len(set))
	}
	if len(set.Dedup()) != 4032 {
		t.Error("duplicates in all-to-all")
	}
	checkNoSelfLoops(t, set, 64)
}

func TestTransposePattern(t *testing.T) {
	set := patterns.Transpose(8)
	if len(set) != 56 {
		t.Fatalf("transpose has %d connections, want 56", len(set))
	}
	for _, r := range set {
		sr, sc := int(r.Src)/8, int(r.Src)%8
		if int(r.Dst) != sc*8+sr {
			t.Fatalf("request %v is not a transpose pair", r)
		}
	}
}

func TestBitReversalPattern(t *testing.T) {
	set, err := patterns.BitReversal(16)
	if err != nil {
		t.Fatal(err)
	}
	checkNoSelfLoops(t, set, 16)
	for _, r := range set {
		// Reversing twice returns the source.
		rev := 0
		for b := 0; b < 4; b++ {
			if int(r.Dst)&(1<<b) != 0 {
				rev |= 1 << (3 - b)
			}
		}
		if rev != int(r.Src) {
			t.Fatalf("%v is not a bit-reversal pair", r)
		}
	}
	if _, err := patterns.BitReversal(12); err == nil {
		t.Error("non-power-of-two accepted")
	}
}

func TestRandomIsUniformish(t *testing.T) {
	// Property: over many draws every node appears as a source.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		set, err := patterns.Random(rng, 16, 120)
		if err != nil {
			return false
		}
		return len(set.Sources()) >= 14 // 120 draws over 16 sources: all-but-few present
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

package core

import (
	"testing"

	"repro/internal/network"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/topology"
)

func ringProgram(n, phases, flits int) Program {
	prog := Program{Name: "ring-loop"}
	for p := 0; p < phases; p++ {
		ph := Phase{Name: "round"}
		for i := 0; i < n; i++ {
			ph.Messages = append(ph.Messages, sim.Message{Src: i, Dst: (i + 1) % n, Flits: flits})
		}
		prog.Phases = append(prog.Phases, ph)
	}
	return prog
}

func ringPhaseMsgs(n, flits int) []sim.Message {
	msgs := make([]sim.Message, n)
	for i := 0; i < n; i++ {
		msgs[i] = sim.Message{Src: i, Dst: (i + 1) % n, Flits: flits}
	}
	return msgs
}

func mustSchedule(t *testing.T, topo network.Topology, reqs request.Set) *schedule.Result {
	t.Helper()
	res, err := schedule.Combined{}.Schedule(topo, reqs)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	return res
}

// Identical phase pair: the previous schedule covers the pattern with zero
// register writes, so keep must win.
func TestChooseScheduleIdenticalKeeps(t *testing.T) {
	topo := topology.NewRing(8)
	msgs := ringPhaseMsgs(8, 4)
	prev := mustSchedule(t, topo, Phase{Messages: msgs}.Requests())
	scratch := mustSchedule(t, topo, Phase{Messages: msgs}.Requests())
	ev, err := ChooseSchedule(prev, 10, msgs, scratch, DefaultReconfigCost)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Decision != DecisionKeep {
		t.Fatalf("identical pattern decided %q, want keep", ev.Decision)
	}
	if ev.Schedule != prev {
		t.Fatal("keep must reuse the previous schedule verbatim")
	}
	if ev.Stall != 0 || ev.Load.Total != 0 {
		t.Fatalf("keep charged stall %d, load %d; want zero", ev.Stall, ev.Load.Total)
	}
}

// One circuit changed: patch pays only the touched registers and must beat
// a full recompile's cold load.
func TestChooseScheduleOneCircuitChangedPatches(t *testing.T) {
	topo := topology.NewRing(16)
	prevMsgs := ringPhaseMsgs(16, 4)
	prev := mustSchedule(t, topo, Phase{Messages: prevMsgs}.Requests())
	// Replace 0->1 with 0->2: one eviction, one insertion.
	msgs := append([]sim.Message(nil), prevMsgs[1:]...)
	msgs = append(msgs, sim.Message{Src: 0, Dst: 2, Flits: 4})
	scratch := mustSchedule(t, topo, Phase{Messages: msgs}.Requests())
	ev, err := ChooseSchedule(prev, 10, msgs, scratch, DefaultReconfigCost)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Decision != DecisionPatch {
		t.Fatalf("one-circuit change decided %q (stall %d comm %d), want patch", ev.Decision, ev.Stall, ev.Comm)
	}
	if ev.Load.Total == 0 {
		t.Fatal("patch must write the touched registers")
	}
	// The patched schedule serves exactly the new pattern.
	for _, m := range msgs {
		if _, ok := ev.Schedule.Slot[m.Request()]; !ok {
			t.Fatalf("patched schedule misses %v", m.Request())
		}
	}
}

// Disjoint phase pair: nothing to keep, patching would rebuild everything,
// so the decision must be recompile (and use the scratch schedule).
func TestChooseScheduleDisjointRecompiles(t *testing.T) {
	topo := topology.NewRing(16)
	prev := mustSchedule(t, topo, Phase{Messages: ringPhaseMsgs(16, 4)}.Requests())
	msgs := make([]sim.Message, 0, 8)
	for i := 0; i < 16; i += 2 {
		msgs = append(msgs, sim.Message{Src: i, Dst: (i + 3) % 16, Flits: 4})
	}
	scratch := mustSchedule(t, topo, Phase{Messages: msgs}.Requests())
	ev, err := ChooseSchedule(prev, 10, msgs, scratch, DefaultReconfigCost)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Decision != DecisionRecompile {
		t.Fatalf("disjoint pattern decided %q, want recompile", ev.Decision)
	}
	if ev.Schedule != scratch {
		t.Fatal("recompile must use the scratch schedule")
	}
}

// Cold start always recompiles regardless of pattern.
func TestChooseScheduleColdStartRecompiles(t *testing.T) {
	topo := topology.NewRing(8)
	msgs := ringPhaseMsgs(8, 4)
	scratch := mustSchedule(t, topo, Phase{Messages: msgs}.Requests())
	ev, err := ChooseSchedule(nil, 0, msgs, scratch, DefaultReconfigCost)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Decision != DecisionRecompile {
		t.Fatalf("cold start decided %q, want recompile", ev.Decision)
	}
	if ev.Stall != ev.SerializedStall {
		t.Fatalf("cold start stall %d must equal serialized %d", ev.Stall, ev.SerializedStall)
	}
}

func TestPlanOverlapRingLoopKeepsAndWins(t *testing.T) {
	topo := topology.NewRing(16)
	prog := ringProgram(16, 6, 8)
	cp, err := Compiler{Topology: topo}.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := cp.PlanOverlap(DefaultReconfigCost)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Phases[0].Decision != DecisionRecompile {
		t.Fatalf("first phase decided %q, want recompile", plan.Phases[0].Decision)
	}
	for i, ph := range plan.Phases[1:] {
		if ph.Decision != DecisionKeep {
			t.Fatalf("phase %d decided %q, want keep", i+1, ph.Decision)
		}
		if ph.Stall != 0 {
			t.Fatalf("kept phase %d charged stall %d", i+1, ph.Stall)
		}
	}
	if plan.Total >= plan.Baseline {
		t.Fatalf("overlap-aware total %d not below full-reconfig baseline %d", plan.Total, plan.Baseline)
	}
	if plan.Total > plan.Serialized {
		t.Fatalf("overlap-aware total %d above serialized %d", plan.Total, plan.Serialized)
	}
	// Baseline must agree with IterationTime.
	base, _, err := cp.IterationTime(DefaultReconfigCost)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Baseline != base {
		t.Fatalf("plan baseline %d != IterationTime %d", plan.Baseline, base)
	}
}

func TestIterationTimeOverlappedNeverWorse(t *testing.T) {
	topo := topology.NewTorus(4, 4)
	prog := Program{Name: "mixed"}
	// Three phases: ring, same ring again, transpose-ish shift.
	prog.Phases = append(prog.Phases, ringProgram(16, 2, 4).Phases...)
	shift := Phase{Name: "shift"}
	for i := 0; i < 16; i++ {
		shift.Messages = append(shift.Messages, sim.Message{Src: i, Dst: (i + 5) % 16, Flits: 4})
	}
	prog.Phases = append(prog.Phases, shift)
	cp, err := Compiler{Topology: topo}.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	serTotal, serBrk, err := cp.IterationTime(DefaultReconfigCost)
	if err != nil {
		t.Fatal(err)
	}
	ovTotal, ovBrk, err := cp.IterationTimeOverlapped(DefaultReconfigCost)
	if err != nil {
		t.Fatal(err)
	}
	if len(serBrk) != len(ovBrk) {
		t.Fatalf("breakdown lengths differ: %d vs %d", len(serBrk), len(ovBrk))
	}
	for i := range serBrk {
		if serBrk[i][1] != ovBrk[i][1] {
			t.Fatalf("phase %d comm differs: %d vs %d", i, serBrk[i][1], ovBrk[i][1])
		}
		if ovBrk[i][0] > serBrk[i][0] {
			t.Fatalf("phase %d overlapped stall %d exceeds full reconfig %d", i, ovBrk[i][0], serBrk[i][0])
		}
	}
	if ovTotal > serTotal {
		t.Fatalf("overlapped %d exceeds serialized %d", ovTotal, serTotal)
	}
	// The duplicated ring phase shares every circuit: strictly cheaper.
	if ovTotal == serTotal {
		t.Fatal("circuit-sharing phases must make overlap strictly cheaper")
	}
}

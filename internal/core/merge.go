package core

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/sim"
)

// MergePhases is an optimization pass over a compiled program: it merges
// adjacent static phases into one schedule whenever doing so reduces the
// program's iteration time. Merging trades multiplexing degree (the union
// pattern usually needs more slots) against reconfiguration (one register
// load and barrier instead of two) — the knob the paper highlights when it
// says multiplexing "reduces the frequency of network reconfiguration and
// the need for inserting additional synchronization operations".
//
// The pass is greedy left to right: it keeps merging a growing group with
// the next phase while the merged iteration time improves, then starts a
// new group. Dynamic (fallback) phases act as barriers and are never
// merged. The returned program is re-compiled; the input is not modified.
//
// Merging runs two phases' messages concurrently, so it is only legal when
// the phases have no data dependence; the caller asserts that by invoking
// the pass (a full compiler would consult its dependence analysis here).
func (c Compiler) MergePhases(cp *CompiledProgram, rc ReconfigCost) (*CompiledProgram, error) {
	if c.Topology == nil {
		return nil, fmt.Errorf("core: Compiler.Topology is nil")
	}
	sched := c.Scheduler
	if sched == nil {
		sched = schedule.Combined{}
	}
	cost := func(msgs []sim.Message) (int, *schedule.Result, error) {
		var phaseReqs request.Set
		for _, m := range msgs {
			phaseReqs = append(phaseReqs, request.Request{
				Src: network.NodeID(m.Src), Dst: network.NodeID(m.Dst),
			})
		}
		res, err := sched.Schedule(c.Topology, phaseReqs.Dedup())
		if err != nil {
			return 0, nil, err
		}
		out, err := sim.RunCompiled(res, msgs)
		if err != nil {
			return 0, nil, err
		}
		return rc.cost(res.Degree()) + out.Time, res, nil
	}

	merged := Program{Name: cp.Program.Name}
	i := 0
	phases := cp.Program.Phases
	for i < len(phases) {
		cur := phases[i]
		if cur.Dynamic {
			merged.Phases = append(merged.Phases, cur)
			i++
			continue
		}
		group := cur
		groupCost, _, err := cost(group.Messages)
		if err != nil {
			return nil, fmt.Errorf("core: merge pass at %q: %w", cur.Name, err)
		}
		for i+1 < len(phases) && !phases[i+1].Dynamic {
			next := phases[i+1]
			nextCost, _, err := cost(next.Messages)
			if err != nil {
				return nil, fmt.Errorf("core: merge pass at %q: %w", next.Name, err)
			}
			candidate := Phase{
				Name:     group.Name + "+" + next.Name,
				Messages: append(append([]sim.Message{}, group.Messages...), next.Messages...),
			}
			candCost, _, err := cost(candidate.Messages)
			if err != nil {
				return nil, fmt.Errorf("core: merge pass at %q: %w", candidate.Name, err)
			}
			if candCost >= groupCost+nextCost {
				break
			}
			group = candidate
			groupCost = candCost
			i++
		}
		merged.Phases = append(merged.Phases, group)
		i++
	}
	return c.Compile(merged)
}

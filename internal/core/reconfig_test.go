package core_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/topology"
)

func TestIterationTimeBreakdown(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	cp, err := core.Compiler{Topology: torus}.Compile(gsProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	rc := core.ReconfigCost{PerSlot: 1, Barrier: 10}
	total, breakdown, err := cp.IterationTime(rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(breakdown) != 1 {
		t.Fatalf("breakdown has %d entries", len(breakdown))
	}
	wantReconfig := cp.Phases[0].Degree() + 10
	if breakdown[0][0] != wantReconfig {
		t.Errorf("reconfig cost = %d, want %d", breakdown[0][0], wantReconfig)
	}
	if total != breakdown[0][0]+breakdown[0][1] {
		t.Errorf("total %d != %d + %d", total, breakdown[0][0], breakdown[0][1])
	}
}

func TestProgramTimeSinglePhaseAmortizesLoad(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	cp, err := core.Compiler{Topology: torus}.Compile(gsProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	rc := core.DefaultReconfigCost
	one, err := cp.ProgramTime(1, rc)
	if err != nil {
		t.Fatal(err)
	}
	ten, err := cp.ProgramTime(10, rc)
	if err != nil {
		t.Fatal(err)
	}
	_, breakdown, err := cp.IterationTime(rc)
	if err != nil {
		t.Fatal(err)
	}
	comm := breakdown[0][1]
	// Ten iterations add nine communication rounds but no reconfiguration:
	// the single configuration set stays loaded.
	if ten-one != 9*comm {
		t.Errorf("10 iters - 1 iter = %d, want 9*%d", ten-one, comm)
	}
}

func TestProgramTimeMultiPhaseReconfiguresEveryIteration(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	p3m, err := apps.P3M(32)
	if err != nil {
		t.Fatal(err)
	}
	prog := core.Program{Name: "p3m"}
	for _, ph := range p3m[:2] {
		prog.Phases = append(prog.Phases, core.Phase{Name: ph.Name, Messages: ph.Messages})
	}
	cp, err := core.Compiler{Topology: torus}.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	rc := core.DefaultReconfigCost
	iter, _, err := cp.IterationTime(rc)
	if err != nil {
		t.Fatal(err)
	}
	five, err := cp.ProgramTime(5, rc)
	if err != nil {
		t.Fatal(err)
	}
	if five != 5*iter {
		t.Errorf("5 iterations = %d, want %d", five, 5*iter)
	}
	if _, err := cp.ProgramTime(0, rc); err == nil {
		t.Error("zero iterations accepted")
	}
}

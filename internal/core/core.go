// Package core is the compiled-communication compiler: it takes the static
// communication structure of a parallel program — a sequence of
// communication phases, each a set of connection requests with message
// volumes — and produces everything the network needs at runtime: one
// connection schedule and one set of switch programs per phase, each with
// its own (minimal) multiplexing degree.
//
// This is the paper's central mechanism. Because the compiler controls the
// multiplexing degree, different phases of one program run at different
// degrees; reconfiguration happens only at phase boundaries (where compiled
// code rewrites the switch shift registers and synchronizes), not per
// message. Patterns the compiler cannot analyze fall back to a
// predetermined all-to-all configuration set, the paper's proposed strategy
// for dynamic patterns.
package core

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/switchprog"
)

// Phase is one communication phase of a program: a static pattern plus the
// per-connection message volumes (in flits).
type Phase struct {
	// Name identifies the phase for reports.
	Name string
	// Messages carries one entry per connection.
	Messages []sim.Message
	// Dynamic marks a phase whose pattern the compiler could not analyze;
	// it is served by the predetermined AAPC configuration set instead of a
	// pattern-specific schedule.
	Dynamic bool
}

// Requests returns the deduplicated request set of the phase.
func (p Phase) Requests() request.Set {
	set := make(request.Set, len(p.Messages))
	for i, m := range p.Messages {
		set[i] = request.Request{Src: network.NodeID(m.Src), Dst: network.NodeID(m.Dst)}
	}
	return set.Dedup()
}

// Program is a parallel program's communication structure, the input to the
// compiler. Phases execute in order, once per iteration of the program's
// main loop.
type Program struct {
	Name   string
	Phases []Phase
}

// CompiledPhase is the compiler's output for one phase.
type CompiledPhase struct {
	Phase    Phase
	Schedule *schedule.Result
	Program  *switchprog.Program
	// UsedFallback reports that the phase was served by the predetermined
	// AAPC configuration set (dynamic pattern handling).
	UsedFallback bool
}

// Degree returns the phase's multiplexing degree.
func (cp *CompiledPhase) Degree() int { return cp.Schedule.Degree() }

// CompiledProgram is the complete compiled communication plan of a program.
type CompiledProgram struct {
	Program Program
	Phases  []CompiledPhase
}

// Reconfigurations returns the number of network reconfigurations one
// iteration of the program performs: one per phase boundary (the registers
// are rewritten between phases; within a phase TDM cycles without control
// traffic).
func (cp *CompiledProgram) Reconfigurations() int { return len(cp.Phases) }

// MaxDegree returns the largest multiplexing degree any phase uses.
func (cp *CompiledProgram) MaxDegree() int {
	max := 0
	for i := range cp.Phases {
		if d := cp.Phases[i].Degree(); d > max {
			max = d
		}
	}
	return max
}

// Compiler compiles program communication structures for a topology.
type Compiler struct {
	// Topology the program will run on.
	Topology network.Topology
	// Scheduler computes per-phase schedules; nil means the paper's
	// combined algorithm.
	Scheduler schedule.Scheduler
}

// Compile produces the communication plan for a whole program: a schedule
// and switch program per static phase, and the shared AAPC fallback for
// dynamic phases.
func (c Compiler) Compile(prog Program) (*CompiledProgram, error) {
	if c.Topology == nil {
		return nil, fmt.Errorf("core: Compiler.Topology is nil")
	}
	sched := c.Scheduler
	if sched == nil {
		sched = schedule.Combined{}
	}
	out := &CompiledProgram{Program: prog}
	var fallback *schedule.Result
	for _, ph := range prog.Phases {
		if len(ph.Messages) == 0 {
			return nil, fmt.Errorf("core: phase %q has no messages", ph.Name)
		}
		var res *schedule.Result
		var err error
		used := false
		if ph.Dynamic {
			if fallback == nil {
				fallback, err = c.fallbackSchedule()
				if err != nil {
					return nil, fmt.Errorf("core: phase %q: %w", ph.Name, err)
				}
			}
			res = fallback
			used = true
		} else {
			res, err = sched.Schedule(c.Topology, ph.Requests())
			if err != nil {
				return nil, fmt.Errorf("core: phase %q: %w", ph.Name, err)
			}
		}
		sp, err := switchprog.Compile(res)
		if err != nil {
			return nil, fmt.Errorf("core: phase %q: %w", ph.Name, err)
		}
		out.Phases = append(out.Phases, CompiledPhase{
			Phase:        ph,
			Schedule:     res,
			Program:      sp,
			UsedFallback: used,
		})
	}
	return out, nil
}

// fallbackSchedule turns the topology's AAPC decomposition into a schedule
// covering every possible connection: the predetermined configuration set
// the paper proposes for patterns unknown at compile time. Every PE gets a
// slot to reach every other PE.
func (c Compiler) fallbackSchedule() (*schedule.Result, error) {
	set, err := schedule.DecompositionFor(c.Topology)
	if err != nil {
		return nil, err
	}
	configs := make([]request.Set, len(set.Phases))
	slot := make(map[request.Request]int)
	for k, phase := range set.Phases {
		configs[k] = phase.Clone()
		for _, r := range phase {
			slot[r] = k
		}
	}
	return &schedule.Result{
		Algorithm: "aapc-fallback",
		Topology:  c.Topology,
		Configs:   configs,
		Slot:      slot,
	}, nil
}

// PhaseSimulation summarizes one phase's simulated communication time under
// both control regimes.
type PhaseSimulation struct {
	Name         string
	Degree       int
	CompiledTime int
	DynamicTime  map[int]int // fixed degree -> time
}

// Simulate runs every phase of a compiled program under compiled
// communication and under dynamic control at the given fixed degrees.
func (cp *CompiledProgram) Simulate(t network.Topology, fixedDegrees []int, params func(degree int) sim.Params) ([]PhaseSimulation, error) {
	if params == nil {
		params = sim.DefaultParams
	}
	var out []PhaseSimulation
	for i := range cp.Phases {
		ph := &cp.Phases[i]
		comp, err := sim.RunCompiled(ph.Schedule, ph.Phase.Messages)
		if err != nil {
			return nil, fmt.Errorf("core: simulating %q compiled: %w", ph.Phase.Name, err)
		}
		ps := PhaseSimulation{
			Name:         ph.Phase.Name,
			Degree:       ph.Degree(),
			CompiledTime: comp.Time,
			DynamicTime:  make(map[int]int),
		}
		for _, k := range fixedDegrees {
			dyn, err := sim.Dynamic{Topology: t, Params: params(k)}.Run(ph.Phase.Messages)
			if err != nil {
				return nil, fmt.Errorf("core: simulating %q dynamic K=%d: %w", ph.Phase.Name, k, err)
			}
			ps.DynamicTime[k] = dyn.Time
		}
		out = append(out, ps)
	}
	return out, nil
}

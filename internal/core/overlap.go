package core

import (
	"fmt"

	"repro/internal/delta"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/switchprog"
)

// Decision is the per-phase-boundary reconfiguration choice: keep the
// running circuits, patch them incrementally, or load a freshly compiled
// schedule.
type Decision string

const (
	// DecisionKeep reuses the previous phase's schedule verbatim: its
	// circuits already cover the pattern, so no register is written and no
	// barrier is paid.
	DecisionKeep Decision = "keep"
	// DecisionPatch routes through internal/delta: only registers whose
	// (switch, slot) circuit set changed are rewritten.
	DecisionPatch Decision = "patch"
	// DecisionRecompile loads the phase's scratch-compiled schedule.
	DecisionRecompile Decision = "recompile"
)

// BoundaryEval is the outcome of evaluating one phase boundary: the chosen
// schedule and its predicted accounting under the overlap model.
type BoundaryEval struct {
	Decision Decision
	// Schedule is the chosen schedule for the incoming phase.
	Schedule *schedule.Result
	// Load is the register writes the choice requires.
	Load sim.PhaseLoad
	// Stall is the predicted overlap-aware reconfiguration stall.
	Stall int
	// Hidden is the stall hidden under the previous phase's communication.
	Hidden int
	// SerializedStall is the same load charged with no overlap.
	SerializedStall int
	// Comm is the phase's simulated communication time on Schedule.
	Comm int
	// Baseline is what the paper's model charges the phase when it is
	// compiled and loaded independently: ReconfigCost.Cost of the scratch
	// schedule's degree plus the scratch schedule's communication time.
	Baseline int
}

// Slots is the predicted cost the decision minimizes: stall plus
// communication.
func (b BoundaryEval) Slots() int { return b.Stall + b.Comm }

// evalCandidate prices one candidate schedule for a boundary.
func evalCandidate(engine *sim.CompiledSim, prev *schedule.Result, prevComm int, cand *schedule.Result, msgs []sim.Message, rc ReconfigCost) (BoundaryEval, error) {
	load, err := sim.RegisterDelta(prev, cand)
	if err != nil {
		return BoundaryEval{}, err
	}
	stall, hidden, err := sim.OverlapStall(prev, prevComm, load, rc.PerSlot, rc.Barrier)
	if err != nil {
		return BoundaryEval{}, err
	}
	var out sim.CompiledResult
	if err := engine.RunInto(cand, msgs, sim.TDM, &out); err != nil {
		return BoundaryEval{}, err
	}
	return BoundaryEval{
		Schedule:        cand,
		Load:            load,
		Stall:           stall,
		Hidden:          hidden,
		SerializedStall: sim.SerializedStall(load, rc.PerSlot, rc.Barrier),
		Comm:            out.Time,
	}, nil
}

// covers reports whether a schedule assigns a slot to every message's
// connection.
func covers(res *schedule.Result, msgs []sim.Message) bool {
	for _, m := range msgs {
		if _, ok := res.Slot[m.Request()]; !ok {
			return false
		}
	}
	return true
}

// PatchWorthwhile is the gate in front of the patch candidate: patching is
// only meaningful when the incoming pattern is mostly the running one — the
// same half-size cutoff the store's nearest-base lookup uses. Beyond it the
// "touched registers" advantage is gone by construction and first-fit
// insertion only degrades quality. A zero diff needs no patch (keep covers
// it).
func PatchWorthwhile(prev *schedule.Result, target request.Set) bool {
	if prev == nil {
		return false
	}
	d := delta.Compute(delta.Requests(prev), target)
	return d.Size() > 0 && d.Size()*2 <= len(target)
}

// ChooseSchedule decides keep/patch/recompile for the phase boundary from a
// running schedule prev (whose phase communicated for prevComm slots) into
// the phase carrying msgs. scratch is the phase's scratch-compiled schedule
// (the recompile candidate — callers that resolve schedules through a store
// pass whatever they resolved). Candidates are priced with the overlap
// model (register delta, idle-slot hiding, barrier) plus the simulated
// communication time on the candidate's schedule, and the cheapest wins;
// ties break toward keep, then patch, so the decision is deterministic.
//
// prev == nil (cold start) always recompiles.
func ChooseSchedule(prev *schedule.Result, prevComm int, msgs []sim.Message, scratch *schedule.Result, rc ReconfigCost) (BoundaryEval, error) {
	var patched *schedule.Result
	if prev != nil && PatchWorthwhile(prev, requestsOf(msgs)) {
		// Patch failures (unroutable insertions on a masked view,
		// degenerate bases) just drop the candidate — recompile always
		// remains available.
		if q, _, err := delta.Patch(prev, prev.Topology, requestsOf(msgs)); err == nil {
			patched = q
		}
	}
	return ChooseFrom(prev, prevComm, msgs, scratch, patched, rc)
}

// ChooseFrom is ChooseSchedule with a caller-supplied patch candidate —
// the /session serving path produces it through a live delta.Session
// (byte-identical to delta.Patch, cheaper across a stream of boundaries)
// and hands it in here. patched may be nil to drop the candidate.
func ChooseFrom(prev *schedule.Result, prevComm int, msgs []sim.Message, scratch, patched *schedule.Result, rc ReconfigCost) (BoundaryEval, error) {
	if scratch == nil {
		return BoundaryEval{}, fmt.Errorf("core: ChooseSchedule needs a scratch schedule")
	}
	if len(msgs) == 0 {
		return BoundaryEval{}, fmt.Errorf("core: ChooseSchedule: phase has no messages")
	}
	engine := sim.NewCompiledSim()
	recomp, err := evalCandidate(engine, prev, prevComm, scratch, msgs, rc)
	if err != nil {
		return BoundaryEval{}, fmt.Errorf("core: pricing recompile: %w", err)
	}
	recomp.Decision = DecisionRecompile
	baseline := rc.Cost(scratch.Degree()) + recomp.Comm
	recomp.Baseline = baseline
	if prev == nil {
		return recomp, nil
	}
	best := recomp
	if patched != nil {
		pe, err := evalCandidate(engine, prev, prevComm, patched, msgs, rc)
		if err != nil {
			return BoundaryEval{}, fmt.Errorf("core: pricing patch: %w", err)
		}
		pe.Decision = DecisionPatch
		if pe.Slots() < best.Slots() || (pe.Slots() == best.Slots() && best.Decision == DecisionRecompile) {
			best = pe
		}
	}
	if covers(prev, msgs) {
		ke, err := evalCandidate(engine, prev, prevComm, prev, msgs, rc)
		if err != nil {
			return BoundaryEval{}, fmt.Errorf("core: pricing keep: %w", err)
		}
		ke.Decision = DecisionKeep
		if ke.Slots() <= best.Slots() {
			best = ke
		}
	}
	best.Baseline = baseline
	return best, nil
}

// SameMessages reports whether two phases carry the identical message
// list — the unchanged-boundary test gating KeepUnchanged.
func SameMessages(a, b []sim.Message) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// KeepUnchanged is the fast path for a boundary whose message list is
// identical to the running phase's: the running schedule serves the exact
// pattern it was just serving, so it is kept with zero register writes and
// the phase repeats the previous communication time — no scratch compile
// or patch candidate is priced at all. This is where a multi-phase serving
// path recovers the paper's amortization: iterative programs (collectives,
// stencil loops) repeat a phase many times and pay compilation once.
// Baseline charges what serving the phase independently would: a full
// register load of the kept schedule plus its communication time.
func KeepUnchanged(prev *schedule.Result, prevComm int, rc ReconfigCost) BoundaryEval {
	return BoundaryEval{
		Decision: DecisionKeep,
		Schedule: prev,
		Comm:     prevComm,
		Baseline: rc.Cost(prev.Degree()) + prevComm,
	}
}

func requestsOf(msgs []sim.Message) request.Set {
	set := make(request.Set, len(msgs))
	for i, m := range msgs {
		set[i] = m.Request()
	}
	return set.Dedup()
}

// PlannedPhase is one phase of an overlap-aware execution plan.
type PlannedPhase struct {
	Name     string
	Decision Decision
	Schedule *schedule.Result
	Program  *switchprog.Program
	// Stall/Hidden/SerializedStall/Comm are the phase's accounting from
	// the authoritative sim.RunProgram pass over the chosen schedules.
	Stall           int
	Hidden          int
	SerializedStall int
	Comm            int
}

// OverlapPlan is a compiled program's overlap-aware execution plan: per
// boundary the keep/patch/recompile choice, and the iteration accounting
// under overlapped vs serialized register loading.
type OverlapPlan struct {
	Phases []PlannedPhase
	// Total is the overlap-aware iteration time (stall + comm summed).
	Total int
	// Serialized charges the same chosen schedules with serialized
	// register loading — the schedules and message delivery are identical,
	// only stall accounting differs.
	Serialized int
	// Baseline is the paper's model: every phase loads its scratch
	// schedule fully (ReconfigCost.Cost(degree)), i.e. IterationTime.
	Baseline int
}

// PlanOverlap runs the keep/patch/recompile decision over every phase
// boundary of the compiled program and prices the resulting plan with the
// sim-level accounting path. The first phase always pays its cold-start
// load serialized.
func (cp *CompiledProgram) PlanOverlap(rc ReconfigCost) (*OverlapPlan, error) {
	if len(cp.Phases) == 0 {
		return nil, fmt.Errorf("core: empty compiled program")
	}
	plan := &OverlapPlan{Phases: make([]PlannedPhase, len(cp.Phases))}
	specs := make([]sim.PhaseSpec, len(cp.Phases))
	var prev *schedule.Result
	var prevProg *switchprog.Program
	prevComm := 0
	for i := range cp.Phases {
		ph := &cp.Phases[i]
		var ev BoundaryEval
		var err error
		switch {
		case i == 0:
			ev, err = ChooseSchedule(nil, 0, ph.Phase.Messages, ph.Schedule, rc)
		case SameMessages(ph.Phase.Messages, cp.Phases[i-1].Phase.Messages):
			ev = KeepUnchanged(prev, prevComm, rc)
		default:
			ev, err = ChooseSchedule(prev, prevComm, ph.Phase.Messages, ph.Schedule, rc)
		}
		if err != nil {
			return nil, fmt.Errorf("core: phase %q: %w", ph.Phase.Name, err)
		}
		pp := PlannedPhase{Name: ph.Phase.Name, Decision: ev.Decision, Schedule: ev.Schedule}
		switch ev.Decision {
		case DecisionKeep:
			pp.Program = prevProg
		case DecisionRecompile:
			pp.Program = ph.Program
		default:
			sp, err := switchprog.Compile(ev.Schedule)
			if err != nil {
				return nil, fmt.Errorf("core: phase %q: lowering patched schedule: %w", ph.Phase.Name, err)
			}
			pp.Program = sp
		}
		plan.Phases[i] = pp
		specs[i] = sim.PhaseSpec{Schedule: ev.Schedule, Messages: ph.Phase.Messages}
		prev, prevProg, prevComm = ev.Schedule, pp.Program, ev.Comm
	}
	run, err := sim.RunProgram(specs, rc.PerSlot, rc.Barrier, true)
	if err != nil {
		return nil, fmt.Errorf("core: pricing plan: %w", err)
	}
	for i, c := range run.Costs {
		plan.Phases[i].Stall = c.Stall
		plan.Phases[i].Hidden = c.Hidden
		plan.Phases[i].SerializedStall = c.SerializedStall
		plan.Phases[i].Comm = c.Comm
	}
	plan.Total = run.Total
	plan.Serialized = run.Serialized
	baseline, _, err := cp.IterationTime(rc)
	if err != nil {
		return nil, err
	}
	plan.Baseline = baseline
	return plan, nil
}

// Specs returns the plan's phases as sim.PhaseSpecs, the input of the
// sim-level accounting path (and of the overlapped-vs-serialized
// differential tests).
func (p *OverlapPlan) Specs(prog Program) []sim.PhaseSpec {
	specs := make([]sim.PhaseSpec, len(p.Phases))
	for i := range p.Phases {
		specs[i] = sim.PhaseSpec{Schedule: p.Phases[i].Schedule, Messages: prog.Phases[i].Messages}
	}
	return specs
}

// IterationTimeOverlapped is IterationTime under the overlap model: the
// same per-phase schedules (no keep/patch decisions), but register loads
// for phase i+1 that target switches idle in phase i's TDM slots are
// charged overlapped, with the barrier only on the non-hidden remainder.
// The breakdown pairs are (stall, comm) per phase.
func (cp *CompiledProgram) IterationTimeOverlapped(rc ReconfigCost) (total int, breakdown [][2]int, err error) {
	specs := make([]sim.PhaseSpec, len(cp.Phases))
	for i := range cp.Phases {
		specs[i] = sim.PhaseSpec{Schedule: cp.Phases[i].Schedule, Messages: cp.Phases[i].Phase.Messages}
	}
	run, err := sim.RunProgram(specs, rc.PerSlot, rc.Barrier, true)
	if err != nil {
		return 0, nil, fmt.Errorf("core: %w", err)
	}
	breakdown = make([][2]int, len(run.Costs))
	for i, c := range run.Costs {
		breakdown[i] = [2]int{c.Stall, c.Comm}
	}
	return run.Total, breakdown, nil
}

package core_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/topology"
)

func gsProgram(t *testing.T) core.Program {
	t.Helper()
	gs, err := apps.GS(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	return core.Program{Name: "gs", Phases: []core.Phase{{Name: gs.Name, Messages: gs.Messages}}}
}

func TestCompileSinglePhaseProgram(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	cp, err := core.Compiler{Topology: torus}.Compile(gsProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Phases) != 1 || cp.Reconfigurations() != 1 {
		t.Fatalf("compiled %d phases", len(cp.Phases))
	}
	ph := cp.Phases[0]
	if ph.Degree() < 2 {
		t.Errorf("GS degree = %d, want >= 2", ph.Degree())
	}
	if ph.Program == nil || ph.Program.Degree != ph.Degree() {
		t.Error("switch program degree mismatch")
	}
	if err := ph.Schedule.Validate(ph.Phase.Requests()); err != nil {
		t.Fatal(err)
	}
}

func TestCompileMultiPhaseUsesPerPhaseDegrees(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	p3m, err := apps.P3M(32)
	if err != nil {
		t.Fatal(err)
	}
	prog := core.Program{Name: "p3m"}
	for _, ph := range p3m {
		prog.Phases = append(prog.Phases, core.Phase{Name: ph.Name, Messages: ph.Messages})
	}
	cp, err := core.Compiler{Topology: torus}.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Reconfigurations() != 5 {
		t.Errorf("reconfigurations = %d, want 5", cp.Reconfigurations())
	}
	degrees := map[int]bool{}
	for i := range cp.Phases {
		degrees[cp.Phases[i].Degree()] = true
	}
	if len(degrees) < 2 {
		t.Error("all phases compiled to the same degree; per-phase degrees expected (paper section 2)")
	}
	if cp.MaxDegree() < 40 {
		t.Errorf("max degree = %d; the dense redistribution phases should dominate", cp.MaxDegree())
	}
}

func TestDynamicPhaseFallsBackToAAPC(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	prog := core.Program{
		Name: "mixed",
		Phases: []core.Phase{
			{Name: "static", Messages: []sim.Message{{Src: 0, Dst: 1, Flits: 4}}},
			{Name: "unknown", Dynamic: true, Messages: []sim.Message{{Src: 5, Dst: 60, Flits: 4}}},
		},
	}
	cp, err := core.Compiler{Topology: torus}.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Phases[0].UsedFallback {
		t.Error("static phase used the fallback")
	}
	if !cp.Phases[1].UsedFallback {
		t.Error("dynamic phase did not use the fallback")
	}
	if cp.Phases[0].Degree() != 1 {
		t.Errorf("static phase degree = %d, want 1", cp.Phases[0].Degree())
	}
	// The fallback supports every connection: degree equals the AAPC phase
	// count (64 on the 8x8 torus).
	if cp.Phases[1].Degree() != 64 {
		t.Errorf("fallback degree = %d, want 64", cp.Phases[1].Degree())
	}
	// Any message, even one not in the declared set, must have a circuit.
	if _, ok := cp.Phases[1].Schedule.Slot[request.Request{Src: 63, Dst: 0}]; !ok {
		t.Error("fallback schedule misses connection (63, 0)")
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := (core.Compiler{}).Compile(core.Program{}); err == nil {
		t.Error("nil topology accepted")
	}
	torus := topology.NewTorus(8, 8)
	empty := core.Program{Phases: []core.Phase{{Name: "empty"}}}
	if _, err := (core.Compiler{Topology: torus}).Compile(empty); err == nil {
		t.Error("empty phase accepted")
	}
	bad := core.Program{Phases: []core.Phase{{Name: "bad", Messages: []sim.Message{{Src: 0, Dst: 99, Flits: 1}}}}}
	if _, err := (core.Compiler{Topology: torus}).Compile(bad); err == nil {
		t.Error("out-of-range message accepted")
	}
}

func TestCompiledProgramSimulate(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	cp, err := core.Compiler{Topology: torus, Scheduler: schedule.Combined{}}.Compile(gsProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	sims, err := cp.Simulate(torus, []int{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sims) != 1 {
		t.Fatalf("got %d phase simulations", len(sims))
	}
	s := sims[0]
	if s.CompiledTime <= 0 {
		t.Error("compiled time not positive")
	}
	for _, k := range []int{1, 2} {
		if s.DynamicTime[k] <= s.CompiledTime {
			t.Errorf("dynamic K=%d (%d) should exceed compiled (%d)", k, s.DynamicTime[k], s.CompiledTime)
		}
	}
}

func TestPhaseRequestsDedups(t *testing.T) {
	ph := core.Phase{Messages: []sim.Message{
		{Src: 0, Dst: 1, Flits: 1},
		{Src: 0, Dst: 1, Flits: 2},
		{Src: 1, Dst: 2, Flits: 3},
	}}
	if got := len(ph.Requests()); got != 2 {
		t.Errorf("Requests() has %d entries, want 2", got)
	}
}

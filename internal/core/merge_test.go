package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topology"
)

// TestMergePhasesCombinesTinyPhases: many tiny disjoint phases pay a
// barrier each; the merge pass should collapse them when that is cheaper.
func TestMergePhasesCombinesTinyPhases(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	// Four single-message phases with disjoint endpoints: merged they fit
	// one conflict-free configuration, so four barriers become one.
	prog := core.Program{Name: "tiny"}
	for i := 0; i < 4; i++ {
		prog.Phases = append(prog.Phases, core.Phase{
			Name:     string(rune('a' + i)),
			Messages: []sim.Message{{Src: 2 * i, Dst: 2*i + 1, Flits: 2}},
		})
	}
	comp := core.Compiler{Topology: torus}
	cp, err := comp.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	rc := core.DefaultReconfigCost
	before, _, err := cp.IterationTime(rc)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := comp.MergePhases(cp, rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Phases) != 1 {
		t.Fatalf("merged into %d phases, want 1", len(merged.Phases))
	}
	after, _, err := merged.IterationTime(rc)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("merge did not help: %d -> %d slots", before, after)
	}
}

// TestMergePhasesKeepsExpensiveMergesApart: merging a long-message
// degree-1 phase with a high-degree phase would make the long message pay
// the deep frame (one flit every K slots), dwarfing the saved barrier; the
// pass must keep them separate.
func TestMergePhasesKeepsExpensiveMergesApart(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	long := core.Phase{Name: "bulk", Messages: []sim.Message{{Src: 0, Dst: 1, Flits: 1000}}}
	fan := core.Phase{Name: "fan"}
	for d := 3; d <= 10; d++ {
		fan.Messages = append(fan.Messages, sim.Message{Src: 2, Dst: d + 8, Flits: 2})
	}
	prog := core.Program{Name: "dense", Phases: []core.Phase{long, fan}}
	comp := core.Compiler{Topology: torus}
	cp, err := comp.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := comp.MergePhases(cp, core.DefaultReconfigCost)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Phases) != 2 {
		t.Errorf("dense phases merged into %d, want 2 (merge must not pay degree for barriers)", len(merged.Phases))
	}
}

func TestMergePhasesSkipsDynamicBarriers(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	prog := core.Program{
		Name: "barrier",
		Phases: []core.Phase{
			{Name: "a", Messages: []sim.Message{{Src: 0, Dst: 1, Flits: 1}}},
			{Name: "dyn", Dynamic: true, Messages: []sim.Message{{Src: 2, Dst: 3, Flits: 1}}},
			{Name: "b", Messages: []sim.Message{{Src: 4, Dst: 5, Flits: 1}}},
		},
	}
	comp := core.Compiler{Topology: torus}
	cp, err := comp.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := comp.MergePhases(cp, core.DefaultReconfigCost)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Phases) != 3 {
		t.Fatalf("got %d phases, want 3 (dynamic phase is a merge barrier)", len(merged.Phases))
	}
	if !merged.Phases[1].UsedFallback {
		t.Error("dynamic phase lost its fallback")
	}
}

package core

import (
	"fmt"

	"repro/internal/sim"
)

// ReconfigCost models the cost of switching the network between compiled
// phases. Loading a phase's shift registers costs PerSlot slots per TDM
// slot of the incoming phase (the registers are written sequentially) plus
// a fixed Barrier for the global synchronization that makes the register
// rewrite deterministic (Section 2: "writing onto these registers must be
// synchronized to avoid non-deterministic network states").
type ReconfigCost struct {
	PerSlot int
	Barrier int
}

// DefaultReconfigCost is one slot per register entry plus a 16-slot
// barrier.
var DefaultReconfigCost = ReconfigCost{PerSlot: 1, Barrier: 16}

// Cost returns the slots needed to switch into a phase of the given degree.
func (rc ReconfigCost) Cost(degree int) int {
	return rc.PerSlot*degree + rc.Barrier
}

func (rc ReconfigCost) cost(degree int) int { return rc.Cost(degree) }

// IterationTime simulates one full iteration of the compiled program: each
// phase pays its reconfiguration cost (registers + barrier) and then runs
// its messages under compiled communication. It returns the total slots
// and the per-phase breakdown (reconfiguration, communication).
func (cp *CompiledProgram) IterationTime(rc ReconfigCost) (total int, breakdown [][2]int, err error) {
	for i := range cp.Phases {
		ph := &cp.Phases[i]
		out, err := sim.RunCompiled(ph.Schedule, ph.Phase.Messages)
		if err != nil {
			return 0, nil, fmt.Errorf("core: phase %q: %w", ph.Phase.Name, err)
		}
		re := rc.cost(ph.Degree())
		breakdown = append(breakdown, [2]int{re, out.Time})
		total += re + out.Time
	}
	return total, breakdown, nil
}

// ProgramTime returns the communication time of `iterations` iterations of
// the program's main loop. The first iteration pays every reconfiguration;
// later iterations still reconfigure at each phase boundary (the paper's
// model: within a phase TDM needs no control, between phases the compiled
// code rewrites the registers). A single-phase program therefore
// reconfigures only once in total, which is the paper's best case.
func (cp *CompiledProgram) ProgramTime(iterations int, rc ReconfigCost) (int, error) {
	if iterations < 1 {
		return 0, fmt.Errorf("core: iterations must be positive, got %d", iterations)
	}
	iter, breakdown, err := cp.IterationTime(rc)
	if err != nil {
		return 0, err
	}
	if len(cp.Phases) == 1 {
		// The single configuration set persists across iterations: pay the
		// load once, then only communication.
		comm := breakdown[0][1]
		return breakdown[0][0] + iterations*comm, nil
	}
	return iterations * iter, nil
}

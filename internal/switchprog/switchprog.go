// Package switchprog lowers a connection schedule to per-switch control
// programs — the artifact compiled communication actually loads into the
// network before a communication phase executes.
//
// Under TDM, each electro-optical switch is driven by a circular shift
// register that cycles through K states, one per time slot. State k of a
// switch is a partial crossbar setting: a mapping from input ports to
// output ports realizing the slot-k configuration's circuits through that
// switch. This package computes those states from a schedule.Result and
// verifies they are crossbar-legal (no output port used twice per slot).
package switchprog

import (
	"fmt"
	"strings"

	"repro/internal/network"
	"repro/internal/schedule"
)

// Program is the compiled network control for one communication phase. The
// register contents are held in one flat table indexed by (switch, slot,
// input port) — the shape the shift registers physically have — rather than
// per-slot maps: reads are single array loads and compiling a phase costs a
// handful of allocations however many circuits it routes.
type Program struct {
	Topology network.Topology
	Degree   int
	// ports is the crossbar width: one entry per port, PEPort included.
	ports  int
	stride int // Degree * ports
	// state[(node, slot, in)] = out+1; zero means the input is dark.
	state []int32
	// counts[(node, slot)] is the number of lit inputs of that register.
	counts []int32
}

// Ports is the crossbar width the program was compiled for (the number of
// distinct ports per switch, PE ports included).
func (p *Program) Ports() int { return p.ports }

// Entry reads one register: the output port the switch connects input `in`
// to during `slot`, with ok false when the input is dark.
func (p *Program) Entry(node network.NodeID, slot, in int) (out int, ok bool) {
	if slot < 0 || slot >= p.Degree || in < 0 || in >= p.ports {
		return 0, false
	}
	v := p.state[int(node)*p.stride+slot*p.ports+in]
	if v == 0 {
		return 0, false
	}
	return int(v - 1), true
}

// SetEntry overwrites one register unchecked — no crossbar-legality
// enforcement. out < 0 darkens the input. This is the fault-injection hook
// the optics tests use to corrupt a program and confirm the light trace
// notices; production code never mutates a compiled program.
func (p *Program) SetEntry(node network.NodeID, slot, in, out int) {
	if slot < 0 || slot >= p.Degree || in < 0 || in >= p.ports {
		panic(fmt.Sprintf("switchprog: SetEntry(%d, %d, %d) outside degree %d x ports %d", node, slot, in, p.Degree, p.ports))
	}
	idx := int(node)*p.stride + slot*p.ports + in
	prev := p.state[idx]
	if out < 0 {
		p.state[idx] = 0
		if prev != 0 {
			p.counts[int(node)*p.Degree+slot]--
		}
		return
	}
	if out >= p.ports {
		panic(fmt.Sprintf("switchprog: SetEntry output %d outside ports %d", out, p.ports))
	}
	p.state[idx] = int32(out + 1)
	if prev == 0 {
		p.counts[int(node)*p.Degree+slot]++
	}
}

// EachEntry calls fn for every lit register of (node, slot) in input-port
// order.
func (p *Program) EachEntry(node network.NodeID, slot int, fn func(in, out int)) {
	if slot < 0 || slot >= p.Degree {
		return
	}
	base := int(node)*p.stride + slot*p.ports
	for in := 0; in < p.ports; in++ {
		if v := p.state[base+in]; v != 0 {
			fn(in, int(v-1))
		}
	}
}

// SlotEntries is the number of lit inputs of (node, slot).
func (p *Program) SlotEntries(node network.NodeID, slot int) int {
	if slot < 0 || slot >= p.Degree {
		return 0
	}
	return int(p.counts[int(node)*p.Degree+slot])
}

// Compile lowers a schedule to switch programs. Every circuit contributes
// one crossbar entry to each switch it traverses: PE-in to first link at
// the source, link to link at intermediate switches, and last link to
// PE-out at the destination.
//
// Crossbar legality is tracked during the fill in a transient output-claim
// table; the input-side table is the program's register state itself, so
// nothing is materialized afterwards.
func Compile(res *schedule.Result) (*Program, error) {
	t := res.Topology
	degree := res.Degree()
	nn := t.NumNodes()
	prog := &Program{Topology: t, Degree: degree}
	if degree == 0 {
		return prog, nil
	}
	// Route replay touches the same few links in every slot; fetch each
	// LinkInfo through the interface once.
	links := make([]network.LinkInfo, t.NumLinks())
	ports := network.PEPort + 1
	for i := range links {
		links[i] = t.Link(network.LinkID(i))
		if links[i].OutPort >= ports {
			ports = links[i].OutPort + 1
		}
		if links[i].InPort >= ports {
			ports = links[i].InPort + 1
		}
	}
	prog.ports = ports
	prog.stride = degree * ports
	prog.state = make([]int32, nn*prog.stride)
	prog.counts = make([]int32, nn*degree)
	// outClaim[(node,slot,out)] = in+1; zero means the output is free.
	outClaim := make([]int32, nn*prog.stride)
	setting := func(node network.NodeID, slot, in, out int) error {
		base := int(node)*prog.stride + slot*ports
		if prev := prog.state[base+in]; prev != 0 {
			if int(prev-1) != out {
				return fmt.Errorf("switchprog: switch %d slot %d input %d claimed for outputs %d and %d",
					node, slot, in, prev-1, out)
			}
			return nil
		}
		if prev := outClaim[base+out]; prev != 0 {
			return fmt.Errorf("switchprog: switch %d slot %d output %d claimed by inputs %d and %d",
				node, slot, out, prev-1, in)
		}
		prog.state[base+in] = int32(out + 1)
		outClaim[base+out] = int32(in + 1)
		prog.counts[int(node)*degree+slot]++
		return nil
	}
	for slot, config := range res.Configs {
		for _, req := range config {
			p, err := network.CachedRoute(t, req.Src, req.Dst)
			if err != nil {
				return nil, fmt.Errorf("switchprog: routing %v: %w", req, err)
			}
			in := network.PEPort
			node := p.Src
			for _, l := range p.Links {
				li := &links[l]
				if err := setting(node, slot, in, li.OutPort); err != nil {
					return nil, err
				}
				node = li.To
				in = li.InPort
			}
			if err := setting(node, slot, in, network.PEPort); err != nil {
				return nil, err
			}
		}
	}
	return prog, nil
}

// CircuitPorts traces the circuit of (src, dst) through the compiled
// program at the given slot, returning the sequence of (node, inPort,
// outPort) crossbar entries it uses; used by tests to confirm the lowered
// program reconstructs every scheduled circuit.
func (p *Program) CircuitPorts(src, dst network.NodeID, slot int) ([][3]int, error) {
	path, err := network.CachedRoute(p.Topology, src, dst)
	if err != nil {
		return nil, err
	}
	var hops [][3]int
	in := network.PEPort
	node := path.Src
	for _, l := range path.Links {
		li := p.Topology.Link(l)
		out, ok := p.Entry(node, slot, in)
		if !ok || out != li.OutPort {
			return nil, fmt.Errorf("switchprog: circuit %d->%d broken at switch %d slot %d", src, dst, node, slot)
		}
		hops = append(hops, [3]int{int(node), in, out})
		node = li.To
		in = li.InPort
	}
	out, ok := p.Entry(node, slot, in)
	if !ok || out != network.PEPort {
		return nil, fmt.Errorf("switchprog: circuit %d->%d not ejected at switch %d slot %d", src, dst, node, slot)
	}
	hops = append(hops, [3]int{int(node), in, out})
	return hops, nil
}

// ActiveEntries returns the total number of crossbar entries across all
// switches and slots, a proxy for control-register occupancy.
func (p *Program) ActiveEntries() int {
	n := 0
	for _, c := range p.counts {
		n += int(c)
	}
	return n
}

// Dump renders the program in a compact human-readable form, one line per
// (switch, slot) with entries "in->out", for the CLI tools.
func (p *Program) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "network %s, multiplexing degree %d\n", p.Topology.Name(), p.Degree)
	for n := 0; n < p.Topology.NumNodes(); n++ {
		for slot := 0; slot < p.Degree; slot++ {
			if p.SlotEntries(network.NodeID(n), slot) == 0 {
				continue
			}
			fmt.Fprintf(&b, "switch %3d slot %2d:", n, slot)
			p.EachEntry(network.NodeID(n), slot, func(in, out int) {
				fmt.Fprintf(&b, " %d->%d", in, out)
			})
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Package switchprog lowers a connection schedule to per-switch control
// programs — the artifact compiled communication actually loads into the
// network before a communication phase executes.
//
// Under TDM, each electro-optical switch is driven by a circular shift
// register that cycles through K states, one per time slot. State k of a
// switch is a partial crossbar setting: a mapping from input ports to
// output ports realizing the slot-k configuration's circuits through that
// switch. This package computes those states from a schedule.Result and
// verifies they are crossbar-legal (no output port used twice per slot).
package switchprog

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/network"
	"repro/internal/schedule"
)

// SwitchProgram is the shift-register content of one switch: for every TDM
// slot, the crossbar setting as an input-port to output-port mapping.
// Unmapped inputs are dark (no circuit enters through them in that slot).
type SwitchProgram struct {
	Node  network.NodeID
	Slots []map[int]int
}

// Program is the compiled network control for one communication phase.
type Program struct {
	Topology network.Topology
	Degree   int
	Switches []SwitchProgram
}

// Compile lowers a schedule to switch programs. Every circuit contributes
// one crossbar entry to each switch it traverses: PE-in to first link at
// the source, link to link at intermediate switches, and last link to
// PE-out at the destination.
//
// Crossbar legality is tracked in flat claim tables indexed by
// (node, slot, port) rather than in the output maps themselves: one array
// read replaces a map probe plus a linear output scan per hop, and the
// per-slot maps are materialized presized in a single pass at the end.
func Compile(res *schedule.Result) (*Program, error) {
	t := res.Topology
	degree := res.Degree()
	nn := t.NumNodes()
	prog := &Program{
		Topology: t,
		Degree:   degree,
		Switches: make([]SwitchProgram, nn),
	}
	for n := range prog.Switches {
		prog.Switches[n].Node = network.NodeID(n)
		prog.Switches[n].Slots = make([]map[int]int, degree)
	}
	if degree == 0 {
		return prog, nil
	}
	// Route replay touches the same few links in every slot; fetch each
	// LinkInfo through the interface once.
	links := make([]network.LinkInfo, t.NumLinks())
	ports := network.PEPort + 1
	for i := range links {
		links[i] = t.Link(network.LinkID(i))
		if links[i].OutPort >= ports {
			ports = links[i].OutPort + 1
		}
		if links[i].InPort >= ports {
			ports = links[i].InPort + 1
		}
	}
	// inClaim[(node,slot,in)] = out+1, outClaim[(node,slot,out)] = in+1;
	// zero means the port is dark in that slot.
	stride := degree * ports
	inClaim := make([]int32, nn*stride)
	outClaim := make([]int32, nn*stride)
	counts := make([]int32, nn*degree)
	setting := func(node network.NodeID, slot, in, out int) error {
		base := int(node)*stride + slot*ports
		if prev := inClaim[base+in]; prev != 0 {
			if int(prev-1) != out {
				return fmt.Errorf("switchprog: switch %d slot %d input %d claimed for outputs %d and %d",
					node, slot, in, prev-1, out)
			}
			return nil
		}
		if prev := outClaim[base+out]; prev != 0 {
			return fmt.Errorf("switchprog: switch %d slot %d output %d claimed by inputs %d and %d",
				node, slot, out, prev-1, in)
		}
		inClaim[base+in] = int32(out + 1)
		outClaim[base+out] = int32(in + 1)
		counts[int(node)*degree+slot]++
		return nil
	}
	for slot, config := range res.Configs {
		for _, req := range config {
			p, err := network.CachedRoute(t, req.Src, req.Dst)
			if err != nil {
				return nil, fmt.Errorf("switchprog: routing %v: %w", req, err)
			}
			in := network.PEPort
			node := p.Src
			for _, l := range p.Links {
				li := &links[l]
				if err := setting(node, slot, in, li.OutPort); err != nil {
					return nil, err
				}
				node = li.To
				in = li.InPort
			}
			if err := setting(node, slot, in, network.PEPort); err != nil {
				return nil, err
			}
		}
	}
	for n := 0; n < nn; n++ {
		sw := &prog.Switches[n]
		for slot := 0; slot < degree; slot++ {
			c := counts[n*degree+slot]
			if c == 0 {
				continue
			}
			m := make(map[int]int, c)
			base := n*stride + slot*ports
			for in := 0; in < ports; in++ {
				if v := inClaim[base+in]; v != 0 {
					m[in] = int(v - 1)
				}
			}
			sw.Slots[slot] = m
		}
	}
	return prog, nil
}

// CircuitPorts traces the circuit of (src, dst) through the compiled
// program at the given slot, returning the sequence of (node, inPort,
// outPort) crossbar entries it uses; used by tests to confirm the lowered
// program reconstructs every scheduled circuit.
func (p *Program) CircuitPorts(src, dst network.NodeID, slot int) ([][3]int, error) {
	path, err := network.CachedRoute(p.Topology, src, dst)
	if err != nil {
		return nil, err
	}
	var hops [][3]int
	in := network.PEPort
	node := path.Src
	for _, l := range path.Links {
		li := p.Topology.Link(l)
		out, ok := p.Switches[node].Slots[slot][in]
		if !ok || out != li.OutPort {
			return nil, fmt.Errorf("switchprog: circuit %d->%d broken at switch %d slot %d", src, dst, node, slot)
		}
		hops = append(hops, [3]int{int(node), in, out})
		node = li.To
		in = li.InPort
	}
	out, ok := p.Switches[node].Slots[slot][in]
	if !ok || out != network.PEPort {
		return nil, fmt.Errorf("switchprog: circuit %d->%d not ejected at switch %d slot %d", src, dst, node, slot)
	}
	hops = append(hops, [3]int{int(node), in, out})
	return hops, nil
}

// ActiveEntries returns the total number of crossbar entries across all
// switches and slots, a proxy for control-register occupancy.
func (p *Program) ActiveEntries() int {
	n := 0
	for _, sw := range p.Switches {
		for _, m := range sw.Slots {
			n += len(m)
		}
	}
	return n
}

// Dump renders the program in a compact human-readable form, one line per
// (switch, slot) with entries "in->out", for the CLI tools.
func (p *Program) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "network %s, multiplexing degree %d\n", p.Topology.Name(), p.Degree)
	for _, sw := range p.Switches {
		for slot, m := range sw.Slots {
			if len(m) == 0 {
				continue
			}
			ins := make([]int, 0, len(m))
			for in := range m {
				ins = append(ins, in)
			}
			sort.Ints(ins)
			fmt.Fprintf(&b, "switch %3d slot %2d:", sw.Node, slot)
			for _, in := range ins {
				fmt.Fprintf(&b, " %d->%d", in, m[in])
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

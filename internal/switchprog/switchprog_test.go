package switchprog_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/network"
	"repro/internal/patterns"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/switchprog"
	"repro/internal/topology"
)

func compilePattern(t *testing.T, topo network.Topology, set request.Set) (*schedule.Result, *switchprog.Program) {
	t.Helper()
	res, err := schedule.Combined{}.Schedule(topo, set)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := switchprog.Compile(res)
	if err != nil {
		t.Fatal(err)
	}
	return res, prog
}

// TestEveryCircuitReconstructible: the compiled switch programs must
// reproduce every scheduled circuit end to end in its assigned slot.
func TestEveryCircuitReconstructible(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	rng := rand.New(rand.NewSource(17))
	set, err := patterns.Random(rng, 64, 800)
	if err != nil {
		t.Fatal(err)
	}
	res, prog := compilePattern(t, torus, set)
	for r, slot := range res.Slot {
		hops, err := prog.CircuitPorts(r.Src, r.Dst, slot)
		if err != nil {
			t.Fatalf("circuit %v: %v", r, err)
		}
		if len(hops) == 0 {
			t.Fatalf("circuit %v has no hops", r)
		}
		// First hop enters from the PE port, last hop exits to it.
		if hops[0][1] != network.PEPort {
			t.Fatalf("circuit %v does not start at the PE port", r)
		}
		if hops[len(hops)-1][2] != network.PEPort {
			t.Fatalf("circuit %v does not end at the PE port", r)
		}
	}
}

// TestCrossbarLegality: within one slot no switch output port is claimed
// twice — guaranteed by construction, but verified independently here.
func TestCrossbarLegality(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	_, prog := compilePattern(t, torus, patterns.AllToAll(64))
	for n := 0; n < torus.NumNodes(); n++ {
		for slot := 0; slot < prog.Degree; slot++ {
			outs := map[int]bool{}
			prog.EachEntry(network.NodeID(n), slot, func(in, out int) {
				if outs[out] {
					t.Fatalf("switch %d slot %d: output port %d doubly claimed", n, slot, out)
				}
				outs[out] = true
			})
		}
	}
}

func TestCircuitPortsRejectsWrongSlot(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	set := patterns.Ring(64)
	res, prog := compilePattern(t, torus, set)
	r := set[0]
	wrong := (res.Slot[r] + 1) % res.Degree()
	if res.Degree() < 2 {
		t.Skip("pattern compiled to a single slot")
	}
	if _, err := prog.CircuitPorts(r.Src, r.Dst, wrong); err == nil {
		t.Errorf("circuit %v reported present in wrong slot %d", r, wrong)
	}
}

func TestActiveEntriesCountsHops(t *testing.T) {
	lin := topology.NewLinear(4)
	set := request.Set{{Src: 0, Dst: 3}} // 3 links -> 4 switch entries
	_, prog := compilePattern(t, lin, set)
	if prog.ActiveEntries() != 4 {
		t.Errorf("ActiveEntries() = %d, want 4", prog.ActiveEntries())
	}
}

func TestDumpFormat(t *testing.T) {
	lin := topology.NewLinear(3)
	set := request.Set{{Src: 0, Dst: 2}}
	_, prog := compilePattern(t, lin, set)
	out := prog.Dump()
	if !strings.Contains(out, "linear-3") || !strings.Contains(out, "slot  0") {
		t.Errorf("Dump output missing expected content:\n%s", out)
	}
	if !strings.Contains(out, "0->1") {
		t.Errorf("Dump output missing crossbar entry:\n%s", out)
	}
}

// peCount returns the number of PEs a pattern may address: all nodes for
// direct networks, only the endpoints for the multistage Omega network.
func peCount(topo network.Topology) int {
	if o, ok := topo.(*topology.Omega); ok {
		return o.N
	}
	return topo.NumNodes()
}

func TestCompileOnMultipleTopologies(t *testing.T) {
	topos := []network.Topology{
		topology.NewTorus(4, 4),
		topology.NewMesh(4, 4),
		topology.NewRing(8),
		topology.NewHypercube(4),
		topology.NewOmega(8),
	}
	for _, topo := range topos {
		set := patterns.AllToAll(peCount(topo))
		res, err := schedule.Greedy{}.Schedule(topo, set)
		if err != nil {
			t.Fatalf("%s: %v", topo.Name(), err)
		}
		prog, err := switchprog.Compile(res)
		if err != nil {
			t.Fatalf("%s: %v", topo.Name(), err)
		}
		for r, slot := range res.Slot {
			if _, err := prog.CircuitPorts(r.Src, r.Dst, slot); err != nil {
				t.Fatalf("%s: %v", topo.Name(), err)
			}
		}
	}
}

package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/trace"
)

func sampleProgram(t *testing.T) core.Program {
	t.Helper()
	gs, err := apps.GS(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	tscf, err := apps.TSCF(64)
	if err != nil {
		t.Fatal(err)
	}
	return core.Program{
		Name: "sample",
		Phases: []core.Phase{
			{Name: gs.Name, Messages: gs.Messages},
			{Name: tscf.Name, Messages: tscf.Messages, Dynamic: true},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	prog := sampleProgram(t)
	doc := trace.FromProgram(prog, 64)
	var buf bytes.Buffer
	if err := trace.Write(&buf, doc); err != nil {
		t.Fatal(err)
	}
	got, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := got.Program()
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != prog.Name || len(back.Phases) != len(prog.Phases) {
		t.Fatalf("round trip changed structure: %+v", back)
	}
	for i := range prog.Phases {
		if back.Phases[i].Dynamic != prog.Phases[i].Dynamic {
			t.Errorf("phase %d dynamic flag lost", i)
		}
		if len(back.Phases[i].Messages) != len(prog.Phases[i].Messages) {
			t.Fatalf("phase %d message count changed", i)
		}
		for j, m := range prog.Phases[i].Messages {
			if back.Phases[i].Messages[j] != m {
				t.Fatalf("phase %d message %d changed: %+v vs %+v", i, j, back.Phases[i].Messages[j], m)
			}
		}
	}
}

func TestLoadedTraceCompiles(t *testing.T) {
	doc := trace.FromProgram(sampleProgram(t), 64)
	var buf bytes.Buffer
	if err := trace.Write(&buf, doc); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := loaded.Program()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := core.Compiler{Topology: topology.NewTorus(8, 8)}.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Phases) != 2 {
		t.Fatalf("compiled %d phases", len(cp.Phases))
	}
	if !cp.Phases[1].UsedFallback {
		t.Error("dynamic flag did not survive into compilation")
	}
}

func TestReadRejectsBadDocuments(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"name":"x","pes":4,"bogus":1,"phases":[{"name":"p","messages":[{"src":0,"dst":1,"flits":1}]}]}`,
		"no phases":     `{"name":"x","pes":4,"phases":[]}`,
		"bad pes":       `{"name":"x","pes":1,"phases":[{"name":"p","messages":[{"src":0,"dst":1,"flits":1}]}]}`,
		"self loop":     `{"name":"x","pes":4,"phases":[{"name":"p","messages":[{"src":1,"dst":1,"flits":1}]}]}`,
		"zero flits":    `{"name":"x","pes":4,"phases":[{"name":"p","messages":[{"src":0,"dst":1,"flits":0}]}]}`,
		"oob endpoint":  `{"name":"x","pes":4,"phases":[{"name":"p","messages":[{"src":0,"dst":9,"flits":1}]}]}`,
		"neg start":     `{"name":"x","pes":4,"phases":[{"name":"p","messages":[{"src":0,"dst":1,"flits":1,"start":-1}]}]}`,
		"unnamed phase": `{"name":"x","pes":4,"phases":[{"name":"","messages":[{"src":0,"dst":1,"flits":1}]}]}`,
		"empty phase":   `{"name":"x","pes":4,"phases":[{"name":"p","messages":[]}]}`,
		"not json":      `]`,
	}
	for name, doc := range cases {
		if _, err := trace.Read(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadAcceptsMinimalDocument(t *testing.T) {
	doc := `{"name":"m","pes":2,"phases":[{"name":"p","messages":[{"src":0,"dst":1,"flits":3}]}]}`
	got, err := trace.Read(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got.Phases[0].Messages[0].Flits != 3 {
		t.Error("fields not decoded")
	}
}

package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzRead feeds arbitrary bytes through the trace reader. Invariants:
// Read never panics, a document it accepts always passes Validate, converts
// to a core.Program, and survives a Write/Read round trip unchanged (the
// interchange format is self-consistent, not merely parseable).
func FuzzRead(f *testing.F) {
	f.Add([]byte(`{"name":"p","pes":4,"phases":[{"name":"a","messages":[{"src":0,"dst":1,"flits":2}]}]}`))
	f.Add([]byte(`{"name":"x","pes":64,"phases":[{"name":"ph","dynamic":true,"messages":[{"src":5,"dst":9,"flits":1,"start":3}]}]}`))
	f.Add([]byte(`{"pes":2,"phases":[]}`))
	f.Add([]byte(`{"name":"bad","pes":4,"phases":[{"name":"a","messages":[{"src":0,"dst":0,"flits":1}]}]}`))
	f.Add([]byte(`{"name":"neg","pes":4,"phases":[{"name":"a","messages":[{"src":0,"dst":1,"flits":-1}]}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"name":"u","pes":4,"phases":[{"name":"a","messages":[{"src":0,"dst":1,"flits":2}]}],"extra":1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := doc.Validate(); verr != nil {
			t.Fatalf("Read accepted a document Validate rejects: %v", verr)
		}
		if _, perr := doc.Program(); perr != nil {
			t.Fatalf("accepted document does not convert to a program: %v", perr)
		}
		var buf strings.Builder
		if werr := Write(&buf, doc); werr != nil {
			t.Fatalf("accepted document does not re-encode: %v", werr)
		}
		again, rerr := Read(strings.NewReader(buf.String()))
		if rerr != nil {
			t.Fatalf("round-tripped document rejected: %v\n%s", rerr, buf.String())
		}
		if !reflect.DeepEqual(doc, again) {
			t.Fatalf("round trip changed the document:\n%#v\n%#v", doc, again)
		}
	})
}

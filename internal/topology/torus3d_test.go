package topology

import (
	"testing"

	"repro/internal/network"
)

func TestTorus3DCoordRoundTrip(t *testing.T) {
	tr := NewTorus3D(4, 4, 4)
	for n := 0; n < tr.NumNodes(); n++ {
		i, j, k := tr.Coord(network.NodeID(n))
		if tr.Node(i, j, k) != network.NodeID(n) {
			t.Fatalf("node %d -> (%d,%d,%d) -> %d", n, i, j, k, tr.Node(i, j, k))
		}
	}
	if tr.Node(-1, -1, -1) != tr.Node(3, 3, 3) {
		t.Error("Node must wrap negative coordinates")
	}
}

func TestTorus3DLinkTable(t *testing.T) {
	tr := NewTorus3D(4, 3, 2)
	checkLinkTable(t, tr)
	checkPortUniqueness(t, tr)
}

func TestTorus3DRoutesValid(t *testing.T) {
	tr := NewTorus3D(3, 4, 2)
	n := tr.NumNodes()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			p, err := tr.Route(network.NodeID(s), network.NodeID(d))
			if err != nil {
				t.Fatal(err)
			}
			if err := network.Validate(tr, p); err != nil {
				t.Fatal(err)
			}
			di, dj, dk := tr.Offsets(network.NodeID(s), network.NodeID(d))
			if p.Len() != abs(di)+abs(dj)+abs(dk) {
				t.Fatalf("route %d->%d has %d links, want %d", s, d, p.Len(), abs(di)+abs(dj)+abs(dk))
			}
		}
	}
}

func TestTorus3DDimensionOrder(t *testing.T) {
	tr := NewTorus3D(4, 4, 4)
	p, err := tr.Route(tr.Node(0, 0, 0), tr.Node(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatalf("got %d hops", p.Len())
	}
	wantPorts := []int{Port3DXPlus, Port3DYPlus, Port3DZPlus}
	for i, l := range p.Links {
		if tr.Link(l).OutPort != wantPorts[i] {
			t.Fatalf("hop %d uses port %d, want %d", i, tr.Link(l).OutPort, wantPorts[i])
		}
	}
}

func TestTorus3DWraparound(t *testing.T) {
	tr := NewTorus3D(4, 4, 4)
	p, err := tr.Route(tr.Node(3, 0, 0), tr.Node(0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 {
		t.Fatalf("wraparound route has %d links, want 1", p.Len())
	}
}

func TestTorus3DConstructorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTorus3D(1,4,4) did not panic")
		}
	}()
	NewTorus3D(1, 4, 4)
}

func TestTorus3DName(t *testing.T) {
	if got := NewTorus3D(4, 4, 4).Name(); got != "torus3d-4x4x4" {
		t.Errorf("Name() = %q", got)
	}
}

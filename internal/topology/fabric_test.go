package topology

import (
	"testing"

	"repro/internal/network"
)

// TestFabricInvariantsAcrossSizes runs the shared invariant checker over
// dragonfly and fat-tree instances from 16 to 4096 PEs — the 512-4096 range
// the fabrics are specified for plus the tiny instances the exhaustive
// tests use.
func TestFabricInvariantsAcrossSizes(t *testing.T) {
	cases := []struct {
		topo  network.Topology
		terms int
	}{
		{NewDragonfly(4, 4, 1), 16},
		{NewDragonfly(2, 4, 2), 16},
		{NewDragonfly(8, 16, 4), 512},
		{NewDragonfly(8, 33, 4), 1056},
		{NewDragonfly(16, 32, 4), 2048},
		{NewDragonfly(16, 32, 8), 4096},
		{NewFatTree(4), 16},
		{NewFatTree(8), 128},
		{NewFatTree(16), 1024},
		{NewFatTree(22), 2662},
	}
	for _, tc := range cases {
		if got := network.TerminalCount(tc.topo); got != tc.terms {
			t.Errorf("%s: TerminalCount = %d, want %d", tc.topo.Name(), got, tc.terms)
		}
		if err := CheckInvariants(tc.topo, 4096); err != nil {
			t.Errorf("%s: %v", tc.topo.Name(), err)
		}
	}
}

// TestFabricRoutesExhaustive validates every terminal pair on small
// instances and checks the families' diameter bounds: a dragonfly circuit
// needs at most 5 links (inject, local, global, local, eject) and a
// fat-tree circuit at most 6 (inject, up, up, down, down, eject).
func TestFabricRoutesExhaustive(t *testing.T) {
	cases := []struct {
		topo   network.Topology
		maxLen int
	}{
		{NewDragonfly(4, 4, 1), 5},
		{NewDragonfly(2, 4, 2), 5},
		{NewDragonfly(4, 8, 2), 5},
		{NewFatTree(4), 6},
		{NewFatTree(8), 6},
	}
	for _, tc := range cases {
		checkLinkTable(t, tc.topo)
		checkPortUniqueness(t, tc.topo)
		n := network.TerminalCount(tc.topo)
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				p, err := tc.topo.Route(network.NodeID(s), network.NodeID(d))
				if err != nil {
					t.Fatalf("%s: Route(%d,%d): %v", tc.topo.Name(), s, d, err)
				}
				if err := network.Validate(tc.topo, p); err != nil {
					t.Fatalf("%s: %v", tc.topo.Name(), err)
				}
				if p.Len() < 2 || p.Len() > tc.maxLen {
					t.Fatalf("%s: route %d->%d has %d links, want 2..%d", tc.topo.Name(), s, d, p.Len(), tc.maxLen)
				}
			}
		}
	}
}

// TestFabricRejectsSwitchEndpoints mirrors the omega contract: only
// terminal nodes originate or terminate circuits.
func TestFabricRejectsSwitchEndpoints(t *testing.T) {
	for _, topo := range []network.Topology{NewDragonfly(4, 4, 1), NewFatTree(4)} {
		terms := network.TerminalCount(topo)
		if _, err := topo.Route(network.NodeID(terms), 0); err == nil {
			t.Errorf("%s: route from switch node accepted", topo.Name())
		}
		if _, err := topo.Route(0, network.NodeID(terms)); err == nil {
			t.Errorf("%s: route to switch node accepted", topo.Name())
		}
		if _, err := topo.Route(0, network.NodeID(topo.NumNodes())); err == nil {
			t.Errorf("%s: out-of-range destination accepted", topo.Name())
		}
		if _, err := topo.Route(3, 3); err == nil {
			t.Errorf("%s: self-loop accepted", topo.Name())
		}
	}
}

// TestDragonflyLayoutGolden pins hand-derived link-table and route values
// for dragonfly-4x4x1. These are the layout contract: if any of them
// changes, PatternKey/store/cluster hashes of compiled schedules change
// too, which is a breaking change that must be called out in DESIGN.md §15.
func TestDragonflyLayoutGolden(t *testing.T) {
	d := NewDragonfly(4, 4, 1)
	if d.NumNodes() != 32 || d.NumLinks() != 92 {
		t.Fatalf("dragonfly-4x4x1: %d nodes, %d links; want 32, 92", d.NumNodes(), d.NumLinks())
	}
	goldens := map[network.LinkID]network.LinkInfo{
		// Injection: PE 0 enters router 16 (group 0, router 0).
		0: {ID: 0, From: 0, To: 16, OutPort: 1, InPort: 1},
		// First local link: router (0,0) -> router (0,1).
		16: {ID: 16, From: 16, To: 17, OutPort: 2, InPort: 2},
		// First global link: group 0 slot 0 -> group 1, routers 16 -> 20.
		64: {ID: 64, From: 16, To: 20, OutPort: 5, InPort: 5},
		// Ejection: router 16 returns PE 0.
		76: {ID: 76, From: 16, To: 0, OutPort: 1, InPort: 1},
	}
	for id, want := range goldens {
		if got := d.Link(id); got != want {
			t.Errorf("Link(%d) = %+v, want %+v", id, got, want)
		}
	}
	// Cross-group route 0 -> 15: inject, local detour to gateway router 2,
	// global slot 2 toward group 3, local hop to router 3, eject.
	p, err := d.Route(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	want := []network.LinkID{0, 17, 66, 54, 91}
	if len(p.Links) != len(want) {
		t.Fatalf("route 0->15 links = %v, want %v", p.Links, want)
	}
	for i := range want {
		if p.Links[i] != want[i] {
			t.Fatalf("route 0->15 links = %v, want %v", p.Links, want)
		}
	}
}

// TestFatTreeLayoutGolden pins hand-derived values for fattree-4, the same
// layout-stability contract as the dragonfly golden.
func TestFatTreeLayoutGolden(t *testing.T) {
	f := NewFatTree(4)
	if f.NumNodes() != 36 || f.NumLinks() != 96 {
		t.Fatalf("fattree-4: %d nodes, %d links; want 36, 96", f.NumNodes(), f.NumLinks())
	}
	goldens := map[network.LinkID]network.LinkInfo{
		// Injection: PE 0 -> edge switch (pod 0, 0).
		0: {ID: 0, From: 0, To: 16, OutPort: 1, InPort: 1},
		// Edge up: edge (0,0) -> agg (0,0).
		16: {ID: 16, From: 16, To: 24, OutPort: 3, InPort: 1},
		// Core down: core 0 -> agg (0,0).
		64: {ID: 64, From: 32, To: 24, OutPort: 1, InPort: 3},
		// Ejection: edge (0,0) -> PE 0.
		80: {ID: 80, From: 16, To: 0, OutPort: 1, InPort: 1},
	}
	for id, want := range goldens {
		if got := f.Link(id); got != want {
			t.Errorf("Link(%d) = %+v, want %+v", id, got, want)
		}
	}
	// Cross-pod route 0 -> 15 climbs to core 3 (the destination-selected
	// spine) and descends into pod 3.
	p, err := f.Route(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	want := []network.LinkID{0, 17, 51, 79, 47, 95}
	if len(p.Links) != len(want) {
		t.Fatalf("route 0->15 links = %v, want %v", p.Links, want)
	}
	for i := range want {
		if p.Links[i] != want[i] {
			t.Fatalf("route 0->15 links = %v, want %v", p.Links, want)
		}
	}
}

// TestDragonflyGlobalFunnel checks the property that makes dragonfly
// interesting for the crossover atlas: all traffic between an ordered pair
// of groups crosses exactly one global link, whichever PEs communicate.
func TestDragonflyGlobalFunnel(t *testing.T) {
	d := NewDragonfly(4, 4, 2)
	globalBase := d.globalBase()
	ejectBase := d.ejectBase()
	perGroup := d.A * d.H
	seen := make(map[[2]int]map[network.LinkID]bool)
	for s := 0; s < d.N; s++ {
		for dst := 0; dst < d.N; dst++ {
			gi, gj := s/perGroup, dst/perGroup
			if gi == gj {
				continue
			}
			p, err := d.Route(network.NodeID(s), network.NodeID(dst))
			if err != nil {
				t.Fatal(err)
			}
			var globals []network.LinkID
			for _, l := range p.Links {
				if int(l) >= globalBase && int(l) < ejectBase {
					globals = append(globals, l)
				}
			}
			if len(globals) != 1 {
				t.Fatalf("route %d->%d crosses %d global links, want 1", s, dst, len(globals))
			}
			key := [2]int{gi, gj}
			if seen[key] == nil {
				seen[key] = make(map[network.LinkID]bool)
			}
			seen[key][globals[0]] = true
		}
	}
	for key, ids := range seen {
		if len(ids) != 1 {
			t.Errorf("group pair %v uses %d distinct global links, want 1", key, len(ids))
		}
	}
}

func TestFabricConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewDragonfly(0, 4, 1) },
		func() { NewDragonfly(4, 1, 1) },
		func() { NewDragonfly(4, 4, 0) },
		func() { NewDragonfly(2, 8, 2) }, // a*h < g-1
		func() { NewFatTree(3) },
		func() { NewFatTree(5) },
		func() { NewFatTree(66) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: constructor did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestFabricNames(t *testing.T) {
	if got := NewDragonfly(8, 16, 4).Name(); got != "dragonfly-8x16x4" {
		t.Errorf("dragonfly Name() = %q", got)
	}
	if got := NewFatTree(8).Name(); got != "fattree-8" {
		t.Errorf("fattree Name() = %q", got)
	}
	if got := (&Dragonfly{A: 2, G: 4, H: 2, N: 16}).Name(); got != "dragonfly-2x4x2" {
		t.Errorf("zero-value dragonfly Name() = %q", got)
	}
	if got := (&FatTree{K: 4, N: 16}).Name(); got != "fattree-4" {
		t.Errorf("zero-value fattree Name() = %q", got)
	}
}

// TestCheckInvariantsCatchesViolations feeds the checker a topology with a
// broken link table to prove it actually fails on bad wiring.
func TestCheckInvariantsCatchesViolations(t *testing.T) {
	if err := CheckInvariants(brokenTopology{NewTorus(4, 4)}, 0); err == nil {
		t.Fatal("CheckInvariants accepted a duplicated output port")
	}
}

// brokenTopology wraps a torus but reports the same LinkInfo for links 0
// and 1, violating port uniqueness.
type brokenTopology struct{ *Torus }

func (b brokenTopology) Link(id network.LinkID) network.LinkInfo {
	if id == 1 {
		li := b.Torus.Link(0)
		li.ID = 1
		return li
	}
	return b.Torus.Link(id)
}

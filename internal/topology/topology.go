// Package topology provides concrete switched-network topologies for the
// compiled-communication study: the 2-D torus used throughout the paper's
// evaluation, the linear array of the Fig. 3 example, and ring, mesh and
// hypercube variants used by additional experiments.
//
// Every topology implements network.Topology with a deterministic routing
// function. Routing is a compiler decision in compiled communication, so
// the route for a (src, dst) pair never depends on runtime state.
package topology

import (
	"fmt"
)

// TiePolicy decides the direction of travel along a ring dimension when the
// source-to-destination offset is exactly half the ring size, i.e. when both
// directions are shortest paths.
type TiePolicy int

const (
	// TieBalanced alternates the direction with the parity of the source
	// coordinate in the tied dimension, splitting tie traffic evenly over
	// both directions. This balance is required to approach the N^3/8
	// multiplexing-degree bound for all-to-all traffic on an NxN torus.
	TieBalanced TiePolicy = iota
	// TiePositive always takes the increasing direction.
	TiePositive
	// TieNegative always takes the decreasing direction.
	TieNegative
)

func (tp TiePolicy) String() string {
	switch tp {
	case TieBalanced:
		return "balanced"
	case TiePositive:
		return "positive"
	case TieNegative:
		return "negative"
	default:
		return fmt.Sprintf("TiePolicy(%d)", int(tp))
	}
}

// ringOffset returns the signed hop count along a ring of size n from a to
// b, choosing the shortest direction and applying the tie policy when the
// distance is exactly n/2. The returned value is in [-(n-1)/2, n/2].
func ringOffset(a, b, n int, tp TiePolicy) int {
	d := ((b-a)%n + n) % n
	switch {
	case d == 0:
		return 0
	case 2*d < n:
		return d
	case 2*d > n:
		return d - n
	}
	// Exact tie: distance n/2 in both directions.
	switch tp {
	case TiePositive:
		return d
	case TieNegative:
		return d - n
	default:
		if a%2 == 0 {
			return d
		}
		return d - n
	}
}

// abs returns the absolute value of x.
func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

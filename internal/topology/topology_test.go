package topology

import (
	"testing"
	"testing/quick"

	"repro/internal/network"
)

func TestRingOffsetShortest(t *testing.T) {
	for n := 3; n <= 12; n++ {
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				d := ringOffset(a, b, n, TieBalanced)
				if (a+d+n)%n != b%n {
					t.Fatalf("n=%d: offset %d from %d does not reach %d", n, d, a, b)
				}
				fwd := ((b-a)%n + n) % n
				short := fwd
				if n-fwd < short {
					short = n - fwd
				}
				if abs(d) != short {
					t.Fatalf("n=%d a=%d b=%d: |offset|=%d, shortest=%d", n, a, b, abs(d), short)
				}
			}
		}
	}
}

func TestRingOffsetTiePolicies(t *testing.T) {
	n := 8
	// Distance exactly n/2: positive policy goes +4, negative goes -4,
	// balanced goes +4 from even sources and -4 from odd ones.
	for a := 0; a < n; a++ {
		b := (a + 4) % n
		if got := ringOffset(a, b, n, TiePositive); got != 4 {
			t.Errorf("TiePositive: offset(%d,%d)=%d, want 4", a, b, got)
		}
		if got := ringOffset(a, b, n, TieNegative); got != -4 {
			t.Errorf("TieNegative: offset(%d,%d)=%d, want -4", a, b, got)
		}
		want := 4
		if a%2 == 1 {
			want = -4
		}
		if got := ringOffset(a, b, n, TieBalanced); got != want {
			t.Errorf("TieBalanced: offset(%d,%d)=%d, want %d", a, b, got, want)
		}
	}
}

func TestTiePolicyString(t *testing.T) {
	cases := map[TiePolicy]string{TieBalanced: "balanced", TiePositive: "positive", TieNegative: "negative", TiePolicy(9): "TiePolicy(9)"}
	for tp, want := range cases {
		if tp.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(tp), tp.String(), want)
		}
	}
}

// checkLinkTable verifies that every link's LinkInfo is self-consistent:
// IDs round-trip and out/in ports belong to distinct switches.
func checkLinkTable(t *testing.T, topo network.Topology) {
	t.Helper()
	for id := 0; id < topo.NumLinks(); id++ {
		li := topo.Link(network.LinkID(id))
		if li.ID != network.LinkID(id) {
			t.Fatalf("%s: link %d reports id %d", topo.Name(), id, li.ID)
		}
		if li.From == li.To {
			t.Fatalf("%s: link %d is a self-loop at node %d", topo.Name(), id, li.From)
		}
		if int(li.From) < 0 || int(li.From) >= topo.NumNodes() || int(li.To) < 0 || int(li.To) >= topo.NumNodes() {
			t.Fatalf("%s: link %d endpoints out of range", topo.Name(), id)
		}
		if li.OutPort == network.PEPort || li.InPort == network.PEPort {
			t.Fatalf("%s: link %d uses the PE port", topo.Name(), id)
		}
	}
}

// checkPortUniqueness verifies that no two links claim the same (switch,
// port) on either side — the physical wiring must be a matching.
func checkPortUniqueness(t *testing.T, topo network.Topology) {
	t.Helper()
	outSeen := make(map[[2]int]network.LinkID)
	inSeen := make(map[[2]int]network.LinkID)
	for id := 0; id < topo.NumLinks(); id++ {
		li := topo.Link(network.LinkID(id))
		ok := [2]int{int(li.From), li.OutPort}
		if prev, dup := outSeen[ok]; dup {
			t.Fatalf("%s: links %d and %d share output port %v", topo.Name(), prev, id, ok)
		}
		outSeen[ok] = li.ID
		ik := [2]int{int(li.To), li.InPort}
		if prev, dup := inSeen[ik]; dup {
			t.Fatalf("%s: links %d and %d share input port %v", topo.Name(), prev, id, ik)
		}
		inSeen[ik] = li.ID
	}
}

func allTopologies() []network.Topology {
	return []network.Topology{
		NewTorus(4, 4), NewTorus(8, 8), NewTorus(4, 6),
		NewLinear(2), NewLinear(9),
		NewRing(3), NewRing(8),
		NewMesh(4, 4), NewMesh(3, 5),
		NewHypercube(1), NewHypercube(6),
	}
}

func TestLinkTables(t *testing.T) {
	for _, topo := range allTopologies() {
		checkLinkTable(t, topo)
		checkPortUniqueness(t, topo)
	}
}

func TestRoutesAreValidEverywhere(t *testing.T) {
	for _, topo := range allTopologies() {
		n := topo.NumNodes()
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				p, err := topo.Route(network.NodeID(s), network.NodeID(d))
				if err != nil {
					t.Fatalf("%s: Route(%d,%d): %v", topo.Name(), s, d, err)
				}
				if err := network.Validate(topo, p); err != nil {
					t.Fatalf("%s: %v", topo.Name(), err)
				}
			}
		}
	}
}

func TestTorusCoordRoundTrip(t *testing.T) {
	tr := NewTorus(5, 3)
	for n := 0; n < tr.NumNodes(); n++ {
		r, c := tr.Coord(network.NodeID(n))
		if tr.Node(r, c) != network.NodeID(n) {
			t.Fatalf("node %d -> (%d,%d) -> %d", n, r, c, tr.Node(r, c))
		}
	}
	if tr.Node(-1, -1) != tr.Node(2, 4) {
		t.Error("Node must wrap negative coordinates")
	}
}

func TestTorusRouteLengthIsManhattanWithWrap(t *testing.T) {
	tr := NewTorus(8, 8)
	f := func(s, d uint8) bool {
		sn := network.NodeID(int(s) % 64)
		dn := network.NodeID(int(d) % 64)
		if sn == dn {
			return true
		}
		p, err := tr.Route(sn, dn)
		if err != nil {
			return false
		}
		dx, dy := tr.Offsets(sn, dn)
		return p.Len() == abs(dx)+abs(dy)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTorusDimensionOrder(t *testing.T) {
	tr := NewTorus(8, 8)
	// Route (0,0) -> (2,3): all X hops (ports 1/2) must precede Y hops.
	p, err := tr.Route(tr.Node(0, 0), tr.Node(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	seenY := false
	for _, l := range p.Links {
		li := tr.Link(l)
		isY := li.OutPort == PortYPlus || li.OutPort == PortYMinus
		if isY {
			seenY = true
		} else if seenY {
			t.Fatal("X hop after Y hop: not dimension-ordered")
		}
	}
}

func TestTorusWraparound(t *testing.T) {
	tr := NewTorus(8, 8)
	// (0,7) -> (0,0) should take the single +X wraparound link.
	p, err := tr.Route(tr.Node(0, 7), tr.Node(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 {
		t.Fatalf("wraparound route has %d links, want 1", p.Len())
	}
	li := tr.Link(p.Links[0])
	if li.OutPort != PortXPlus {
		t.Fatalf("wraparound used port %d, want X+", li.OutPort)
	}
}

func TestLinearRouteIsDirect(t *testing.T) {
	l := NewLinear(7)
	p, err := l.Route(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatalf("route 2->5 has %d links, want 3", p.Len())
	}
	p, err = l.Route(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatalf("route 5->2 has %d links, want 3", p.Len())
	}
}

func TestRingRouteShortest(t *testing.T) {
	r := NewRing(8)
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if s == d {
				continue
			}
			p, err := r.Route(network.NodeID(s), network.NodeID(d))
			if err != nil {
				t.Fatal(err)
			}
			fwd := ((d-s)%8 + 8) % 8
			short := fwd
			if 8-fwd < short {
				short = 8 - fwd
			}
			if p.Len() != short {
				t.Fatalf("ring route %d->%d has %d links, want %d", s, d, p.Len(), short)
			}
		}
	}
}

func TestMeshNoWraparound(t *testing.T) {
	m := NewMesh(4, 4)
	p, err := m.Route(m.Node(0, 3), m.Node(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatalf("mesh route (0,3)->(0,0) has %d links, want 3 (no wraparound)", p.Len())
	}
}

func TestHypercubeRouteLengthIsHamming(t *testing.T) {
	h := NewHypercube(5)
	for s := 0; s < 32; s++ {
		for d := 0; d < 32; d++ {
			if s == d {
				continue
			}
			p, err := h.Route(network.NodeID(s), network.NodeID(d))
			if err != nil {
				t.Fatal(err)
			}
			hamming := 0
			for x := s ^ d; x != 0; x &= x - 1 {
				hamming++
			}
			if p.Len() != hamming {
				t.Fatalf("hypercube route %d->%d has %d links, want %d", s, d, p.Len(), hamming)
			}
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewTorus(1, 8) },
		func() { NewLinear(1) },
		func() { NewRing(2) },
		func() { NewMesh(1, 2) },
		func() { NewHypercube(0) },
		func() { NewHypercube(21) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: constructor did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestNames(t *testing.T) {
	cases := map[string]network.Topology{
		"torus-8x8":   NewTorus(8, 8),
		"linear-5":    NewLinear(5),
		"ring-8":      NewRing(8),
		"mesh-4x3":    NewMesh(4, 3),
		"hypercube-6": NewHypercube(6),
	}
	for want, topo := range cases {
		if topo.Name() != want {
			t.Errorf("Name() = %q, want %q", topo.Name(), want)
		}
	}
}

package topology

import (
	"fmt"

	"repro/internal/network"
)

// Dragonfly is the canonical two-level direct network (Kim, Dally, Scott &
// Abts, ISCA'08): g groups of a routers each, every router hosting h PEs and
// driving h global channels, with an all-to-all electrical fabric inside each
// group and exactly one optical global channel per ordered pair of groups.
// It is the fabric family where the compiled-vs-dynamic tradeoff is most
// interesting at scale: all traffic between two groups funnels through a
// single global link, so pattern sparsity directly controls the multiplexing
// degree a compiled schedule needs.
//
// Node numbering: nodes 0..N-1 (N = a*g*h) are the PEs; node N + gi*a + r is
// router r of group gi. PE p attaches to router p/h. Only PEs originate or
// terminate circuits (network.Terminals).
//
// The global channels use the "consecutive" arrangement: group gi's global
// channel q (q in [0, g-1), owned by router q/h on its local slot q%h)
// connects to group (q < gi ? q : q+1). The reverse direction is a distinct
// link owned by the peer group under the same rule, so the ordered-pair
// layout is a fixed function of (a, g, h) and link ids are stable across
// processes — the property PatternKey/store/cluster hashing relies on.
//
// Link-id layout (contiguous blocks, documented in DESIGN.md §15):
//
//	[0, N)                       injection   PE p -> router p/h
//	[N, N + g*a*(a-1))           local       complete digraph per group:
//	                             id = N + (gi*a + r)*(a-1) + k targets
//	                             router k (k < r) or k+1 (k >= r)
//	[localEnd, localEnd+g*(g-1)) global      id = base + gi*(g-1) + q
//	[globalEnd, globalEnd + N)   ejection    router p/h -> PE p
//
// Routing is minimal with local detours: inject, at most one local hop to
// the gateway router owning the global channel, the global channel, at most
// one local hop from the landing router to the destination router, eject.
type Dragonfly struct {
	name string // precomputed so Name() never allocates

	A int // routers per group
	G int // groups
	H int // PEs (and global channels) per router
	N int // total PEs = A*G*H
}

// Router port numbering (both sides): PE ports 1..h, local ports
// h+1..h+(a-1), global ports h+a..h+a+h-1. PE nodes use network.PEPort+1
// for their single inter-switch port.

// NewDragonfly returns a Dragonfly with a routers per group, g groups and h
// PEs (and global channels) per router. It requires a >= 1, g >= 2, h >= 1
// and a*h >= g-1 so every ordered pair of groups gets a global channel.
func NewDragonfly(a, g, h int) *Dragonfly {
	if a < 1 || g < 2 || h < 1 {
		panic(fmt.Sprintf("topology: dragonfly a=%d g=%d h=%d: want a >= 1, g >= 2, h >= 1", a, g, h))
	}
	if a*h < g-1 {
		panic(fmt.Sprintf("topology: dragonfly a=%d g=%d h=%d: a*h=%d global channels per group cannot reach the other %d groups", a, g, h, a*h, g-1))
	}
	d := &Dragonfly{
		A: a, G: g, H: h, N: a * g * h,
		name: fmt.Sprintf("dragonfly-%dx%dx%d", a, g, h),
	}
	if err := CheckInvariants(d, invariantSample); err != nil {
		panic(fmt.Sprintf("topology: dragonfly invariant violated: %v", err))
	}
	return d
}

// Name implements network.Topology.
func (d *Dragonfly) Name() string {
	if d.name != "" {
		return d.name
	}
	return fmt.Sprintf("dragonfly-%dx%dx%d", d.A, d.G, d.H)
}

// NumTerminals implements network.Terminals: only the N PEs originate or
// terminate circuits; routers are fabric switches.
func (d *Dragonfly) NumTerminals() int { return d.N }

// NumNodes implements network.Topology: N PEs plus a router per (group,
// position) pair.
func (d *Dragonfly) NumNodes() int { return d.N + d.A*d.G }

// NumLinks implements network.Topology: injection + per-group complete
// digraphs + one global channel per ordered group pair + ejection.
func (d *Dragonfly) NumLinks() int {
	return d.N + d.G*d.A*(d.A-1) + d.G*(d.G-1) + d.N
}

// router returns the node id of router r in group gi.
func (d *Dragonfly) router(gi, r int) network.NodeID {
	return network.NodeID(d.N + gi*d.A + r)
}

// localBase/globalBase/ejectBase delimit the link-id blocks.
func (d *Dragonfly) localBase() int  { return d.N }
func (d *Dragonfly) globalBase() int { return d.N + d.G*d.A*(d.A-1) }
func (d *Dragonfly) ejectBase() int  { return d.globalBase() + d.G*(d.G-1) }

// localLink returns the id of the local channel from router r to router rt
// (r != rt) inside group gi.
func (d *Dragonfly) localLink(gi, r, rt int) network.LinkID {
	k := rt
	if rt > r {
		k = rt - 1
	}
	return network.LinkID(d.localBase() + (gi*d.A+r)*(d.A-1) + k)
}

// globalSlot returns group gi's channel index q toward group gj (gi != gj)
// under the consecutive arrangement.
func globalSlot(gi, gj int) int {
	if gj < gi {
		return gj
	}
	return gj - 1
}

// Link implements network.Topology.
func (d *Dragonfly) Link(id network.LinkID) network.LinkInfo {
	n := int(id)
	switch {
	case n < d.N:
		// Injection: PE p enters its router on PE input port 1 + p%h.
		p := n
		return network.LinkInfo{
			ID: id, From: network.NodeID(p), To: network.NodeID(d.N + p/d.H),
			OutPort: network.PEPort + 1, InPort: 1 + p%d.H,
		}
	case n < d.globalBase():
		// Local channel inside a group's complete digraph.
		rel := n - d.localBase()
		gr := rel / (d.A - 1) // global router index gi*a + r
		k := rel % (d.A - 1)
		gi, r := gr/d.A, gr%d.A
		rt := k
		if k >= r {
			rt = k + 1
		}
		// The reverse neighbor index of r as seen from rt picks the input port.
		kIn := r
		if r > rt {
			kIn = r - 1
		}
		return network.LinkInfo{
			ID: id, From: d.router(gi, r), To: d.router(gi, rt),
			OutPort: d.H + 1 + k, InPort: d.H + 1 + kIn,
		}
	case n < d.ejectBase():
		// Global channel gi -> gj on slot q; it lands on the router of gj
		// that owns gj's reverse slot toward gi.
		rel := n - d.globalBase()
		gi := rel / (d.G - 1)
		q := rel % (d.G - 1)
		gj := q
		if q >= gi {
			gj = q + 1
		}
		qIn := globalSlot(gj, gi)
		return network.LinkInfo{
			ID: id, From: d.router(gi, q/d.H), To: d.router(gj, qIn/d.H),
			OutPort: d.H + d.A + q%d.H, InPort: d.H + d.A + qIn%d.H,
		}
	default:
		// Ejection: router p/h returns to PE p on PE output port 1 + p%h.
		p := n - d.ejectBase()
		return network.LinkInfo{
			ID: id, From: network.NodeID(d.N + p/d.H), To: network.NodeID(p),
			OutPort: 1 + p%d.H, InPort: network.PEPort + 1,
		}
	}
}

// Route implements network.Topology: minimal dragonfly routing. A circuit
// injects at the source router, takes at most one local detour hop to the
// gateway router owning the global channel toward the destination group,
// crosses that channel, takes at most one local hop from the landing router
// to the destination router, and ejects. Same-group circuits use at most one
// local hop.
func (d *Dragonfly) Route(src, dst network.NodeID) (network.Path, error) {
	if int(src) < 0 || int(src) >= d.N || int(dst) < 0 || int(dst) >= d.N {
		if int(src) < 0 || int(src) >= d.NumNodes() || int(dst) < 0 || int(dst) >= d.NumNodes() {
			return network.Path{}, network.ErrBadNode
		}
		return network.Path{}, fmt.Errorf("topology: dragonfly route endpoints must be PEs (0..%d)", d.N-1)
	}
	if src == dst {
		return network.Path{}, network.ErrSelfLoop
	}
	grS, grD := int(src)/d.H, int(dst)/d.H
	giS, rS := grS/d.A, grS%d.A
	giD, rD := grD/d.A, grD%d.A

	links := make([]network.LinkID, 0, 5)
	links = append(links, network.LinkID(int(src))) // injection
	if giS == giD {
		if rS != rD {
			links = append(links, d.localLink(giS, rS, rD))
		}
	} else {
		q := globalSlot(giS, giD)
		if ra := q / d.H; ra != rS {
			links = append(links, d.localLink(giS, rS, ra))
		}
		links = append(links, network.LinkID(d.globalBase()+giS*(d.G-1)+q))
		qIn := globalSlot(giD, giS)
		if rb := qIn / d.H; rb != rD {
			links = append(links, d.localLink(giD, rb, rD))
		}
	}
	links = append(links, network.LinkID(d.ejectBase()+int(dst))) // ejection
	return network.Path{Src: src, Dst: dst, Links: links}, nil
}

var _ network.Topology = (*Dragonfly)(nil)
var _ network.Terminals = (*Dragonfly)(nil)

package topology

import (
	"fmt"
	"math/bits"

	"repro/internal/network"
)

// Omega is an N-PE Omega multistage interconnection network (MIN) built
// from 2x2 electro-optical switches — the network family the paper's TDM
// control lineage (Qiao & Melhem, "Reconfiguration with Time Division
// Multiplexed MINs") studies. N must be a power of two; the network has
// log2(N) stages of N/2 switches with a perfect shuffle between stages.
//
// Node numbering: nodes 0..N-1 are the PEs (sources inject and
// destinations eject there); node N + s*(N/2) + i is switch i of stage s.
// Each PE owns an injection link into stage 0 and receives an ejection link
// from the last stage, so a connection's circuit is
//
//	PE -> stage 0 -> shuffle links -> stage log2(N)-1 -> PE.
//
// Routing is destination-tag: at stage s the circuit leaves through the
// switch output selected by destination bit log2(N)-1-s. Unlike the torus,
// two circuits can conflict *inside* the fabric even with distinct sources
// and destinations, which is what makes MIN scheduling interesting: the
// multiplexing degree of a permutation equals the number of passes the
// Omega network classically needs for it.
type Omega struct {
	name string // precomputed by the constructor so Name() never allocates

	N      int // PEs
	stages int
}

// NewOmega returns an Omega network over n PEs (n a power of two >= 4).
func NewOmega(n int) *Omega {
	if n < 4 || n&(n-1) != 0 {
		panic(fmt.Sprintf("topology: omega size %d not a power of two >= 4", n))
	}
	return &Omega{N: n, stages: bits.TrailingZeros(uint(n)), name: fmt.Sprintf("omega-%d", n)}
}

// Name implements network.Topology.
func (o *Omega) Name() string {
	if o.name != "" {
		return o.name
	}
	return fmt.Sprintf("omega-%d", o.N)
}

// NumTerminals implements network.Terminals: only the N PEs originate or
// terminate circuits; the interior nodes are fabric switches.
func (o *Omega) NumTerminals() int { return o.N }

// Stages returns log2(N), the number of switch stages.
func (o *Omega) Stages() int { return o.stages }

// NumNodes implements network.Topology: the PEs plus every 2x2 switch.
func (o *Omega) NumNodes() int { return o.N + o.stages*o.N/2 }

// NumLinks implements network.Topology. Links are laid out as:
//   - N injection links (PE p -> stage-0 switch), ids [0, N);
//   - (stages-1)*N shuffle links between consecutive stages, ids
//     [N, N + (stages-1)*N): link for stage-s output wire w has id
//     N + s*N + w;
//   - N ejection links (last stage -> PE), ids [N + (stages-1)*N, ...).
func (o *Omega) NumLinks() int { return o.N + (o.stages-1)*o.N + o.N }

// switchNode returns the node id of switch i in stage s.
func (o *Omega) switchNode(s, i int) network.NodeID {
	return network.NodeID(o.N + s*(o.N/2) + i)
}

// shuffle is the perfect-shuffle permutation on wire indices: rotate the
// log2(N)-bit address left by one.
func (o *Omega) shuffle(w int) int {
	return ((w << 1) | (w >> (o.stages - 1))) & (o.N - 1)
}

// Omega switch port numbering: the two inputs are 1 and 2, the two outputs
// are 1 and 2 (top and bottom wire). PE nodes use network.PEPort for their
// single port on each side.
const (
	omegaTop    = 1
	omegaBottom = 2
)

// wirePort converts a wire index entering/leaving a switch into the
// switch-local port: wire w connects to switch w/2, port 1 + w%2.
func wirePort(w int) int { return omegaTop + w%2 }

// Link implements network.Topology.
func (o *Omega) Link(id network.LinkID) network.LinkInfo {
	n := int(id)
	switch {
	case n < o.N:
		// Injection: PE p enters stage 0 at wire shuffle(p) (the classic
		// Omega input shuffle).
		p := n
		w := o.shuffle(p)
		return network.LinkInfo{
			ID: id, From: network.NodeID(p), To: o.switchNode(0, w/2),
			OutPort: network.PEPort + 1, InPort: wirePort(w),
		}
	case n < o.N+(o.stages-1)*o.N:
		// Shuffle link: output wire w of stage s feeds input wire
		// shuffle(w) of stage s+1.
		s := (n - o.N) / o.N
		w := (n - o.N) % o.N
		wNext := o.shuffle(w)
		return network.LinkInfo{
			ID: id, From: o.switchNode(s, w/2), To: o.switchNode(s+1, wNext/2),
			OutPort: wirePort(w), InPort: wirePort(wNext),
		}
	default:
		// Ejection: output wire w of the last stage is PE w.
		w := n - o.N - (o.stages-1)*o.N
		return network.LinkInfo{
			ID: id, From: o.switchNode(o.stages-1, w/2), To: network.NodeID(w),
			OutPort: wirePort(w), InPort: network.PEPort + 1,
		}
	}
}

// Route implements network.Topology with destination-tag routing: after the
// input shuffle the circuit sits on some wire of stage 0; at stage s it
// exits on the wire whose low bit is destination bit stages-1-s.
func (o *Omega) Route(src, dst network.NodeID) (network.Path, error) {
	if int(src) < 0 || int(src) >= o.N || int(dst) < 0 || int(dst) >= o.N {
		// Only PEs originate or terminate circuits.
		if int(src) < 0 || int(src) >= o.NumNodes() || int(dst) < 0 || int(dst) >= o.NumNodes() {
			return network.Path{}, network.ErrBadNode
		}
		return network.Path{}, fmt.Errorf("topology: omega route endpoints must be PEs (0..%d)", o.N-1)
	}
	if src == dst {
		return network.Path{}, network.ErrSelfLoop
	}
	links := make([]network.LinkID, 0, o.stages+1)
	links = append(links, network.LinkID(int(src))) // injection
	w := o.shuffle(int(src))
	for s := 0; s < o.stages; s++ {
		// Leave switch w/2 of stage s on the wire selected by the
		// destination bit for this stage.
		bit := (int(dst) >> (o.stages - 1 - s)) & 1
		wOut := (w &^ 1) | bit
		if s < o.stages-1 {
			links = append(links, network.LinkID(o.N+s*o.N+wOut))
			w = o.shuffle(wOut)
		} else {
			links = append(links, network.LinkID(o.N+(o.stages-1)*o.N+wOut))
			w = wOut
		}
	}
	if w != int(dst) {
		return network.Path{}, fmt.Errorf("topology: omega routing reached wire %d, want %d", w, dst)
	}
	return network.Path{Src: src, Dst: dst, Links: links}, nil
}

var _ network.Topology = (*Omega)(nil)

package topology

import (
	"fmt"

	"repro/internal/network"
)

// Torus3D port numbering. Port 0 is the PE; the six inter-switch ports make
// each switch a 7x7 crossbar.
const (
	Port3DXPlus  = 1
	Port3DXMinus = 2
	Port3DYPlus  = 3
	Port3DYMinus = 4
	Port3DZPlus  = 5
	Port3DZMinus = 6
)

// Torus3D is an X x Y x Z wraparound grid of 7x7 electro-optical crossbar
// switches — the natural substrate for the P3M 26-neighbor exchange, and an
// extension beyond the paper's 2-D evaluation. Nodes are numbered
// node = (i*Y + j)*Z + k. Routing is dimension-ordered X, then Y, then Z
// with shortest wraparound per dimension and the same balanced tie policy
// as the 2-D torus.
type Torus3D struct {
	name string // precomputed by the constructor so Name() never allocates

	X, Y, Z int
	Tie     TiePolicy
}

// NewTorus3D returns an x*y*z torus with balanced tie-breaking.
func NewTorus3D(x, y, z int) *Torus3D {
	if x < 2 || y < 2 || z < 2 {
		panic(fmt.Sprintf("topology: 3-D torus dimensions %dx%dx%d too small", x, y, z))
	}
	return &Torus3D{X: x, Y: y, Z: z, Tie: TieBalanced, name: fmt.Sprintf("torus3d-%dx%dx%d", x, y, z)}
}

// Name implements network.Topology.
func (t *Torus3D) Name() string {
	if t.name != "" {
		return t.name
	}
	return fmt.Sprintf("torus3d-%dx%dx%d", t.X, t.Y, t.Z)
}

// NumNodes implements network.Topology.
func (t *Torus3D) NumNodes() int { return t.X * t.Y * t.Z }

// NumLinks implements network.Topology: six outgoing links per node.
func (t *Torus3D) NumLinks() int { return 6 * t.NumNodes() }

// Coord returns the (i, j, k) coordinates of a node.
func (t *Torus3D) Coord(n network.NodeID) (i, j, k int) {
	k = int(n) % t.Z
	j = (int(n) / t.Z) % t.Y
	i = int(n) / (t.Y * t.Z)
	return
}

// Node returns the node at (i, j, k), with wraparound.
func (t *Torus3D) Node(i, j, k int) network.NodeID {
	i = ((i % t.X) + t.X) % t.X
	j = ((j % t.Y) + t.Y) % t.Y
	k = ((k % t.Z) + t.Z) % t.Z
	return network.NodeID((i*t.Y+j)*t.Z + k)
}

func (t *Torus3D) linkID(n network.NodeID, port int) network.LinkID {
	return network.LinkID(int(n)*6 + port - 1)
}

// Link implements network.Topology.
func (t *Torus3D) Link(id network.LinkID) network.LinkInfo {
	n := network.NodeID(int(id) / 6)
	port := int(id)%6 + 1
	i, j, k := t.Coord(n)
	var to network.NodeID
	var inPort int
	switch port {
	case Port3DXPlus:
		to, inPort = t.Node(i+1, j, k), Port3DXMinus
	case Port3DXMinus:
		to, inPort = t.Node(i-1, j, k), Port3DXPlus
	case Port3DYPlus:
		to, inPort = t.Node(i, j+1, k), Port3DYMinus
	case Port3DYMinus:
		to, inPort = t.Node(i, j-1, k), Port3DYPlus
	case Port3DZPlus:
		to, inPort = t.Node(i, j, k+1), Port3DZMinus
	case Port3DZMinus:
		to, inPort = t.Node(i, j, k-1), Port3DZPlus
	}
	return network.LinkInfo{ID: id, From: n, To: to, OutPort: port, InPort: inPort}
}

// Offsets returns the signed per-dimension hop counts from src to dst.
func (t *Torus3D) Offsets(src, dst network.NodeID) (di, dj, dk int) {
	si, sj, sk := t.Coord(src)
	ti, tj, tk := t.Coord(dst)
	return ringOffset(si, ti, t.X, t.Tie), ringOffset(sj, tj, t.Y, t.Tie), ringOffset(sk, tk, t.Z, t.Tie)
}

// Route implements network.Topology with X-then-Y-then-Z dimension-order
// routing.
func (t *Torus3D) Route(src, dst network.NodeID) (network.Path, error) {
	if int(src) < 0 || int(src) >= t.NumNodes() || int(dst) < 0 || int(dst) >= t.NumNodes() {
		return network.Path{}, network.ErrBadNode
	}
	if src == dst {
		return network.Path{}, network.ErrSelfLoop
	}
	di, dj, dk := t.Offsets(src, dst)
	links := make([]network.LinkID, 0, abs(di)+abs(dj)+abs(dk))
	i, j, k := t.Coord(src)
	step := func(d int, plus, minus int, advance func(int)) {
		for s := 0; s < abs(d); s++ {
			n := t.Node(i, j, k)
			if d > 0 {
				links = append(links, t.linkID(n, plus))
				advance(1)
			} else {
				links = append(links, t.linkID(n, minus))
				advance(-1)
			}
		}
	}
	step(di, Port3DXPlus, Port3DXMinus, func(s int) { i += s })
	step(dj, Port3DYPlus, Port3DYMinus, func(s int) { j += s })
	step(dk, Port3DZPlus, Port3DZMinus, func(s int) { k += s })
	return network.Path{Src: src, Dst: dst, Links: links}, nil
}

var _ network.Topology = (*Torus3D)(nil)

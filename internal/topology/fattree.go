package topology

import (
	"fmt"

	"repro/internal/network"
)

// FatTree is the k-ary three-stage folded-Clos fabric (Al-Fares, Loukissas &
// Vahdat, SIGCOMM'08): k pods of k/2 edge and k/2 aggregation switches plus
// (k/2)^2 core switches, hosting N = k^3/4 PEs. Like Omega it is an indirect
// fabric — interior nodes are switches (network.Terminals) — but unlike
// Omega it is multi-rooted: a circuit climbs at most to one core and comes
// back down, so the stage machinery generalizes from "one wire per stage" to
// "one deterministic up/down spine per destination".
//
// Node numbering: PEs 0..N-1, then edge switch e of pod p at
// N + p*(k/2) + e, then aggregation switch a of pod p at
// N + k^2/2 + p*(k/2) + a, then core c at N + k^2 + c. Aggregation switch a
// of every pod connects to cores [a*k/2, (a+1)*k/2).
//
// Link-id layout: six contiguous N-sized blocks (DESIGN.md §15):
//
//	[0,  N)  injection  PE -> its edge switch
//	[N,  2N) edge up    id = N  + (pod*(k/2)+e)*(k/2) + a  (edge e -> agg a)
//	[2N, 3N) agg down   id = 2N + (pod*(k/2)+a)*(k/2) + e  (agg a -> edge e)
//	[3N, 4N) agg up     id = 3N + (pod*(k/2)+a)*(k/2) + j  (agg a -> core a*k/2+j)
//	[4N, 5N) core down  id = 4N + c*k + pod               (core c -> agg c/(k/2) of pod)
//	[5N, 6N) ejection   edge switch -> PE
//
// Routing is the paper's deterministic two-level lookup: the destination's
// within-pod index selects the core (and therefore both aggregation
// switches), so every (src, dst) pair has exactly one path and link usage is
// a stable function of k — the layout contract PatternKey hashing needs.
type FatTree struct {
	name string // precomputed so Name() never allocates

	K int // switch radix; k even, >= 4
	N int // PEs = k^3/4
}

// NewFatTree returns a k-ary fat-tree. k must be even and >= 4 (and <= 64 to
// keep N = k^3/4 within practical bounds).
func NewFatTree(k int) *FatTree {
	if k < 4 || k%2 != 0 || k > 64 {
		panic(fmt.Sprintf("topology: fattree radix %d: want even k with 4 <= k <= 64", k))
	}
	f := &FatTree{K: k, N: k * k * k / 4, name: fmt.Sprintf("fattree-%d", k)}
	if err := CheckInvariants(f, invariantSample); err != nil {
		panic(fmt.Sprintf("topology: fattree invariant violated: %v", err))
	}
	return f
}

// Name implements network.Topology.
func (f *FatTree) Name() string {
	if f.name != "" {
		return f.name
	}
	return fmt.Sprintf("fattree-%d", f.K)
}

// NumTerminals implements network.Terminals.
func (f *FatTree) NumTerminals() int { return f.N }

// NumNodes implements network.Topology: PEs + k^2/2 edge + k^2/2 agg +
// (k/2)^2 core switches.
func (f *FatTree) NumNodes() int { return f.N + f.K*f.K + f.K*f.K/4 }

// NumLinks implements network.Topology: six N-sized blocks.
func (f *FatTree) NumLinks() int { return 6 * f.N }

func (f *FatTree) edgeNode(pod, e int) network.NodeID {
	return network.NodeID(f.N + pod*(f.K/2) + e)
}

func (f *FatTree) aggNode(pod, a int) network.NodeID {
	return network.NodeID(f.N + f.K*f.K/2 + pod*(f.K/2) + a)
}

func (f *FatTree) coreNode(c int) network.NodeID {
	return network.NodeID(f.N + f.K*f.K + c)
}

// hostLoc decomposes a PE id into (pod, edge index, port index at the edge).
func (f *FatTree) hostLoc(hid int) (pod, e, i int) {
	half := f.K / 2
	perPod := half * half
	pod = hid / perPod
	wp := hid % perPod
	return pod, wp / half, wp % half
}

// Switch port numbering: down-side ports 1..k/2, up-side ports k/2+1..k.
// Core switches use ports 1..k, one per pod, on each side.

// Link implements network.Topology.
func (f *FatTree) Link(id network.LinkID) network.LinkInfo {
	half := f.K / 2
	n := int(id)
	switch {
	case n < f.N:
		// Injection: PE -> edge switch, down-side input port 1+i.
		pod, e, i := f.hostLoc(n)
		return network.LinkInfo{
			ID: id, From: network.NodeID(n), To: f.edgeNode(pod, e),
			OutPort: network.PEPort + 1, InPort: 1 + i,
		}
	case n < 2*f.N:
		// Edge up: edge (pod, e) -> agg (pod, a).
		rel := n - f.N
		pe := rel / half // pod*half + e
		a := rel % half
		pod, e := pe/half, pe%half
		return network.LinkInfo{
			ID: id, From: f.edgeNode(pod, e), To: f.aggNode(pod, a),
			OutPort: half + 1 + a, InPort: 1 + e,
		}
	case n < 3*f.N:
		// Agg down: agg (pod, a) -> edge (pod, e).
		rel := n - 2*f.N
		pa := rel / half
		e := rel % half
		pod, a := pa/half, pa%half
		return network.LinkInfo{
			ID: id, From: f.aggNode(pod, a), To: f.edgeNode(pod, e),
			OutPort: 1 + e, InPort: half + 1 + a,
		}
	case n < 4*f.N:
		// Agg up: agg (pod, a) -> core a*half + j.
		rel := n - 3*f.N
		pa := rel / half
		j := rel % half
		pod, a := pa/half, pa%half
		return network.LinkInfo{
			ID: id, From: f.aggNode(pod, a), To: f.coreNode(a*half + j),
			OutPort: half + 1 + j, InPort: 1 + pod,
		}
	case n < 5*f.N:
		// Core down: core c -> agg (pod, c/half).
		rel := n - 4*f.N
		c := rel / f.K
		pod := rel % f.K
		return network.LinkInfo{
			ID: id, From: f.coreNode(c), To: f.aggNode(pod, c/half),
			OutPort: 1 + pod, InPort: half + 1 + c%half,
		}
	default:
		// Ejection: edge switch -> PE, down-side output port 1+i.
		hid := n - 5*f.N
		pod, e, i := f.hostLoc(hid)
		return network.LinkInfo{
			ID: id, From: f.edgeNode(pod, e), To: network.NodeID(hid),
			OutPort: 1 + i, InPort: network.PEPort + 1,
		}
	}
}

// Route implements network.Topology with the deterministic two-level lookup:
// the destination's within-pod index c = e_d*(k/2) + i_d names the core, so
// the up-path aggregation switch is c/(k/2) = e_d in both pods and the
// circuit is PE -> edge -> agg -> core -> agg -> edge -> PE (shorter when
// src and dst share a pod or an edge switch).
func (f *FatTree) Route(src, dst network.NodeID) (network.Path, error) {
	if int(src) < 0 || int(src) >= f.N || int(dst) < 0 || int(dst) >= f.N {
		if int(src) < 0 || int(src) >= f.NumNodes() || int(dst) < 0 || int(dst) >= f.NumNodes() {
			return network.Path{}, network.ErrBadNode
		}
		return network.Path{}, fmt.Errorf("topology: fattree route endpoints must be PEs (0..%d)", f.N-1)
	}
	if src == dst {
		return network.Path{}, network.ErrSelfLoop
	}
	half := f.K / 2
	podS, eS, _ := f.hostLoc(int(src))
	podD, eD, iD := f.hostLoc(int(dst))

	links := make([]network.LinkID, 0, 6)
	links = append(links, network.LinkID(int(src))) // injection
	switch {
	case podS == podD && eS == eD:
		// Same edge switch: inject then eject.
	case podS == podD:
		// Up to the destination-selected agg, back down to dst's edge.
		a := iD
		links = append(links,
			network.LinkID(f.N+(podS*half+eS)*half+a),
			network.LinkID(2*f.N+(podD*half+a)*half+eD))
	default:
		// Cross-pod: core c = eD*half + iD; agg index c/half = eD on both sides.
		c := eD*half + iD
		a, j := eD, iD
		links = append(links,
			network.LinkID(f.N+(podS*half+eS)*half+a),
			network.LinkID(3*f.N+(podS*half+a)*half+j),
			network.LinkID(4*f.N+c*f.K+podD),
			network.LinkID(2*f.N+(podD*half+a)*half+eD))
	}
	links = append(links, network.LinkID(5*f.N+int(dst))) // ejection
	return network.Path{Src: src, Dst: dst, Links: links}, nil
}

var _ network.Topology = (*FatTree)(nil)
var _ network.Terminals = (*FatTree)(nil)

package topology

import (
	"testing"

	"repro/internal/network"
)

func TestOmegaStructure(t *testing.T) {
	o := NewOmega(8)
	if o.Stages() != 3 {
		t.Fatalf("stages = %d, want 3", o.Stages())
	}
	if o.NumNodes() != 8+3*4 {
		t.Fatalf("nodes = %d, want 20", o.NumNodes())
	}
	if o.NumLinks() != 8+2*8+8 {
		t.Fatalf("links = %d, want 32", o.NumLinks())
	}
	checkLinkTable(t, o)
	checkPortUniqueness(t, o)
}

func TestOmegaRoutesValid(t *testing.T) {
	for _, n := range []int{4, 8, 16, 64} {
		o := NewOmega(n)
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				p, err := o.Route(network.NodeID(s), network.NodeID(d))
				if err != nil {
					t.Fatalf("omega-%d route %d->%d: %v", n, s, d, err)
				}
				if err := network.Validate(o, p); err != nil {
					t.Fatalf("omega-%d: %v", n, err)
				}
				if p.Len() != o.Stages()+1 {
					t.Fatalf("omega-%d route %d->%d has %d links, want %d", n, s, d, p.Len(), o.Stages()+1)
				}
			}
		}
	}
}

func TestOmegaRejectsSwitchEndpoints(t *testing.T) {
	o := NewOmega(8)
	if _, err := o.Route(0, network.NodeID(o.NumNodes()-1)); err == nil {
		t.Error("route to an internal switch accepted")
	}
	if _, err := o.Route(0, 99); err == nil {
		t.Error("out-of-range node accepted")
	}
}

// TestOmegaIdentityPermutationConflictFree: the identity-ish "straight"
// permutations known to pass an Omega network in one pass must be
// conflict-free; the shuffle permutation itself is one of them.
func TestOmegaIdentityBlocking(t *testing.T) {
	o := NewOmega(8)
	// The classic blocking example: 0->0 and 4->1 style pairs share stage-0
	// wires. Build two circuits known to collide: sources 0 and 4 differ
	// only in the top address bit, so after the input shuffle both land on
	// the same stage-0 switch; destinations with equal top bit force the
	// same switch output.
	a, err := o.Route(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := o.Route(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !network.Conflicts(a, b) {
		t.Error("expected internal blocking between 0->1 and 4->2 on omega-8")
	}
}

func TestOmegaConstructorPanics(t *testing.T) {
	for _, n := range []int{0, 2, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewOmega(%d) did not panic", n)
				}
			}()
			NewOmega(n)
		}()
	}
}

func TestOmegaName(t *testing.T) {
	if got := NewOmega(16).Name(); got != "omega-16" {
		t.Errorf("Name() = %q", got)
	}
}

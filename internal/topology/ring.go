package topology

import (
	"fmt"

	"repro/internal/network"
)

// Ring is a cycle of N switches, one link per direction between adjacent
// nodes. It is the one-dimensional specialization of the torus and is used
// by the per-dimension AAPC analysis and additional experiments.
type Ring struct {
	name string // precomputed by the constructor so Name() never allocates

	N   int
	Tie TiePolicy
}

// NewRing returns a ring of n nodes with balanced tie-breaking.
func NewRing(n int) *Ring {
	if n < 3 {
		panic(fmt.Sprintf("topology: ring of %d nodes too small", n))
	}
	return &Ring{N: n, Tie: TieBalanced, name: fmt.Sprintf("ring-%d", n)}
}

// Name implements network.Topology.
func (r *Ring) Name() string {
	if r.name != "" {
		return r.name
	}
	return fmt.Sprintf("ring-%d", r.N)
}

// NumNodes implements network.Topology.
func (r *Ring) NumNodes() int { return r.N }

// NumLinks implements network.Topology. Link 2*i goes i -> i+1 (mod N) and
// link 2*i+1 goes i -> i-1 (mod N).
func (r *Ring) NumLinks() int { return 2 * r.N }

// Link implements network.Topology.
func (r *Ring) Link(id network.LinkID) network.LinkInfo {
	i := int(id) / 2
	if int(id)%2 == 0 {
		return network.LinkInfo{
			ID: id, From: network.NodeID(i), To: network.NodeID((i + 1) % r.N),
			OutPort: PortRight, InPort: PortLeft,
		}
	}
	return network.LinkInfo{
		ID: id, From: network.NodeID(i), To: network.NodeID((i - 1 + r.N) % r.N),
		OutPort: PortLeft, InPort: PortRight,
	}
}

// Route implements network.Topology: shortest wraparound direction with the
// ring's tie policy.
func (r *Ring) Route(src, dst network.NodeID) (network.Path, error) {
	if int(src) < 0 || int(src) >= r.N || int(dst) < 0 || int(dst) >= r.N {
		return network.Path{}, network.ErrBadNode
	}
	if src == dst {
		return network.Path{}, network.ErrSelfLoop
	}
	d := ringOffset(int(src), int(dst), r.N, r.Tie)
	links := make([]network.LinkID, 0, abs(d))
	cur := int(src)
	for step := 0; step < abs(d); step++ {
		if d > 0 {
			links = append(links, network.LinkID(2*cur))
			cur = (cur + 1) % r.N
		} else {
			links = append(links, network.LinkID(2*cur+1))
			cur = (cur - 1 + r.N) % r.N
		}
	}
	return network.Path{Src: src, Dst: dst, Links: links}, nil
}

var _ network.Topology = (*Ring)(nil)

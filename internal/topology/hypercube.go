package topology

import (
	"fmt"
	"math/bits"

	"repro/internal/network"
)

// Hypercube is a d-dimensional binary hypercube with e-cube (dimension
// order, lowest bit first) routing. Port 0 is the PE; port i+1 connects to
// the neighbor across dimension i. It is provided so the schedulers can be
// exercised on a topology with logarithmic diameter; the paper's evaluation
// itself runs on the torus.
type Hypercube struct {
	name string // precomputed by the constructor so Name() never allocates

	Dim int
}

// NewHypercube returns a hypercube of 2^dim nodes.
func NewHypercube(dim int) *Hypercube {
	if dim < 1 || dim > 20 {
		panic(fmt.Sprintf("topology: hypercube dimension %d out of range", dim))
	}
	return &Hypercube{Dim: dim, name: fmt.Sprintf("hypercube-%d", dim)}
}

// Name implements network.Topology.
func (h *Hypercube) Name() string {
	if h.name != "" {
		return h.name
	}
	return fmt.Sprintf("hypercube-%d", h.Dim)
}

// NumNodes implements network.Topology.
func (h *Hypercube) NumNodes() int { return 1 << h.Dim }

// NumLinks implements network.Topology: each node owns one outgoing link per
// dimension. Link id = node*Dim + dim.
func (h *Hypercube) NumLinks() int { return h.NumNodes() * h.Dim }

// Link implements network.Topology.
func (h *Hypercube) Link(id network.LinkID) network.LinkInfo {
	n := network.NodeID(int(id) / h.Dim)
	d := int(id) % h.Dim
	return network.LinkInfo{
		ID: id, From: n, To: network.NodeID(int(n) ^ (1 << d)),
		OutPort: d + 1, InPort: d + 1,
	}
}

// Route implements network.Topology with e-cube routing: differing address
// bits are corrected from least to most significant.
func (h *Hypercube) Route(src, dst network.NodeID) (network.Path, error) {
	if int(src) < 0 || int(src) >= h.NumNodes() || int(dst) < 0 || int(dst) >= h.NumNodes() {
		return network.Path{}, network.ErrBadNode
	}
	if src == dst {
		return network.Path{}, network.ErrSelfLoop
	}
	diff := int(src) ^ int(dst)
	links := make([]network.LinkID, 0, bits.OnesCount(uint(diff)))
	cur := int(src)
	for d := 0; d < h.Dim; d++ {
		if diff&(1<<d) != 0 {
			links = append(links, network.LinkID(cur*h.Dim+d))
			cur ^= 1 << d
		}
	}
	return network.Path{Src: src, Dst: dst, Links: links}, nil
}

var _ network.Topology = (*Hypercube)(nil)

package topology

import (
	"fmt"

	"repro/internal/network"
)

// Mesh is a W x H grid without wraparound links, used to compare the torus
// against a cheaper substrate in the extension experiments. Port numbering
// matches the torus; border switches simply leave the corresponding ports
// unconnected.
type Mesh struct {
	name string // precomputed by the constructor so Name() never allocates

	W, H int
}

// NewMesh returns a W x H mesh.
func NewMesh(w, h int) *Mesh {
	if w < 2 || h < 2 {
		panic(fmt.Sprintf("topology: mesh dimensions %dx%d too small", w, h))
	}
	return &Mesh{W: w, H: h, name: fmt.Sprintf("mesh-%dx%d", w, h)}
}

// Name implements network.Topology.
func (m *Mesh) Name() string {
	if m.name != "" {
		return m.name
	}
	return fmt.Sprintf("mesh-%dx%d", m.W, m.H)
}

// NumNodes implements network.Topology.
func (m *Mesh) NumNodes() int { return m.W * m.H }

// NumLinks implements network.Topology. Horizontal links come first:
// 2*(W-1)*H of them, then 2*W*(H-1) vertical links. Within each group links
// are paired (forward, backward) like the linear array.
func (m *Mesh) NumLinks() int { return 2*(m.W-1)*m.H + 2*m.W*(m.H-1) }

// Coord returns the (row, col) coordinates of a node.
func (m *Mesh) Coord(n network.NodeID) (row, col int) {
	return int(n) / m.W, int(n) % m.W
}

// Node returns the node at (row, col).
func (m *Mesh) Node(row, col int) network.NodeID {
	return network.NodeID(row*m.W + col)
}

// hLink returns the link id for the horizontal link at (row, col)<->(row,
// col+1) in the given direction (true = rightward).
func (m *Mesh) hLink(row, col int, right bool) network.LinkID {
	base := 2 * (row*(m.W-1) + col)
	if right {
		return network.LinkID(base)
	}
	return network.LinkID(base + 1)
}

// vLink returns the link id for the vertical link (row, col)<->(row+1, col)
// in the given direction (true = downward).
func (m *Mesh) vLink(row, col int, down bool) network.LinkID {
	base := 2*(m.W-1)*m.H + 2*(row*m.W+col)
	if down {
		return network.LinkID(base)
	}
	return network.LinkID(base + 1)
}

// Link implements network.Topology.
func (m *Mesh) Link(id network.LinkID) network.LinkInfo {
	h := 2 * (m.W - 1) * m.H
	if int(id) < h {
		pair := int(id) / 2
		row, col := pair/(m.W-1), pair%(m.W-1)
		if int(id)%2 == 0 {
			return network.LinkInfo{ID: id, From: m.Node(row, col), To: m.Node(row, col+1), OutPort: PortXPlus, InPort: PortXMinus}
		}
		return network.LinkInfo{ID: id, From: m.Node(row, col+1), To: m.Node(row, col), OutPort: PortXMinus, InPort: PortXPlus}
	}
	pair := (int(id) - h) / 2
	row, col := pair/m.W, pair%m.W
	if (int(id)-h)%2 == 0 {
		return network.LinkInfo{ID: id, From: m.Node(row, col), To: m.Node(row+1, col), OutPort: PortYPlus, InPort: PortYMinus}
	}
	return network.LinkInfo{ID: id, From: m.Node(row+1, col), To: m.Node(row, col), OutPort: PortYMinus, InPort: PortYPlus}
}

// Route implements network.Topology with X-then-Y dimension-order routing.
func (m *Mesh) Route(src, dst network.NodeID) (network.Path, error) {
	if int(src) < 0 || int(src) >= m.NumNodes() || int(dst) < 0 || int(dst) >= m.NumNodes() {
		return network.Path{}, network.ErrBadNode
	}
	if src == dst {
		return network.Path{}, network.ErrSelfLoop
	}
	sr, sc := m.Coord(src)
	dr, dc := m.Coord(dst)
	links := make([]network.LinkID, 0, abs(dr-sr)+abs(dc-sc))
	for c := sc; c < dc; c++ {
		links = append(links, m.hLink(sr, c, true))
	}
	for c := sc; c > dc; c-- {
		links = append(links, m.hLink(sr, c-1, false))
	}
	for r := sr; r < dr; r++ {
		links = append(links, m.vLink(r, dc, true))
	}
	for r := sr; r > dr; r-- {
		links = append(links, m.vLink(r-1, dc, false))
	}
	return network.Path{Src: src, Dst: dst, Links: links}, nil
}

var _ network.Topology = (*Mesh)(nil)

package topology

import (
	"fmt"

	"repro/internal/network"
)

// Torus port numbering. Port 0 is the PE (network.PEPort); the four
// inter-switch ports make each switch the 5x5 crossbar of the paper.
const (
	PortXPlus  = 1 // toward increasing column (east)
	PortXMinus = 2 // toward decreasing column (west)
	PortYPlus  = 3 // toward increasing row (south)
	PortYMinus = 4 // toward decreasing row (north)
)

// Torus is a W x H wraparound grid of 5x5 electro-optical crossbar switches,
// the network evaluated throughout the paper (8x8 in all experiments).
// Nodes are numbered row-major: node = row*W + col. Routing is
// dimension-ordered: the circuit first travels along the row (X dimension)
// to the destination column, then along that column (Y dimension) to the
// destination row, taking the shorter wraparound direction in each
// dimension.
type Torus struct {
	name string // precomputed by the constructor so Name() never allocates

	W, H int
	Tie  TiePolicy
}

// NewTorus returns a W x H torus with balanced tie-breaking.
func NewTorus(w, h int) *Torus {
	if w < 2 || h < 2 {
		panic(fmt.Sprintf("topology: torus dimensions %dx%d too small", w, h))
	}
	return &Torus{W: w, H: h, Tie: TieBalanced, name: fmt.Sprintf("torus-%dx%d", w, h)}
}

// Name implements network.Topology.
func (t *Torus) Name() string {
	if t.name != "" {
		return t.name
	}
	return fmt.Sprintf("torus-%dx%d", t.W, t.H)
}

// NumNodes implements network.Topology.
func (t *Torus) NumNodes() int { return t.W * t.H }

// NumLinks implements network.Topology. Each node owns four outgoing links,
// one per direction.
func (t *Torus) NumLinks() int { return 4 * t.W * t.H }

// Coord returns the (row, col) coordinates of a node.
func (t *Torus) Coord(n network.NodeID) (row, col int) {
	return int(n) / t.W, int(n) % t.W
}

// Node returns the node at (row, col), with wraparound.
func (t *Torus) Node(row, col int) network.NodeID {
	row = ((row % t.H) + t.H) % t.H
	col = ((col % t.W) + t.W) % t.W
	return network.NodeID(row*t.W + col)
}

// linkID encodes the outgoing link of node n through port p (1..4).
func (t *Torus) linkID(n network.NodeID, port int) network.LinkID {
	return network.LinkID(int(n)*4 + port - 1)
}

// Link implements network.Topology.
func (t *Torus) Link(id network.LinkID) network.LinkInfo {
	n := network.NodeID(int(id) / 4)
	port := int(id)%4 + 1
	row, col := t.Coord(n)
	var to network.NodeID
	var inPort int
	switch port {
	case PortXPlus:
		to, inPort = t.Node(row, col+1), PortXMinus
	case PortXMinus:
		to, inPort = t.Node(row, col-1), PortXPlus
	case PortYPlus:
		to, inPort = t.Node(row+1, col), PortYMinus
	case PortYMinus:
		to, inPort = t.Node(row-1, col), PortYPlus
	}
	return network.LinkInfo{ID: id, From: n, To: to, OutPort: port, InPort: inPort}
}

// Offsets returns the signed per-dimension hop counts the route from src to
// dst takes, after shortest-path wraparound and tie-breaking. It is exported
// because the AAPC decomposition groups connections by these offsets.
func (t *Torus) Offsets(src, dst network.NodeID) (dx, dy int) {
	sr, sc := t.Coord(src)
	dr, dc := t.Coord(dst)
	return ringOffset(sc, dc, t.W, t.Tie), ringOffset(sr, dr, t.H, t.Tie)
}

// Route implements network.Topology with X-then-Y dimension-order routing.
func (t *Torus) Route(src, dst network.NodeID) (network.Path, error) {
	if int(src) < 0 || int(src) >= t.NumNodes() || int(dst) < 0 || int(dst) >= t.NumNodes() {
		return network.Path{}, network.ErrBadNode
	}
	if src == dst {
		return network.Path{}, network.ErrSelfLoop
	}
	dx, dy := t.Offsets(src, dst)
	links := make([]network.LinkID, 0, abs(dx)+abs(dy))
	row, col := t.Coord(src)
	for step := 0; step < abs(dx); step++ {
		n := t.Node(row, col)
		if dx > 0 {
			links = append(links, t.linkID(n, PortXPlus))
			col++
		} else {
			links = append(links, t.linkID(n, PortXMinus))
			col--
		}
	}
	for step := 0; step < abs(dy); step++ {
		n := t.Node(row, col)
		if dy > 0 {
			links = append(links, t.linkID(n, PortYPlus))
			row++
		} else {
			links = append(links, t.linkID(n, PortYMinus))
			row--
		}
	}
	return network.Path{Src: src, Dst: dst, Links: links}, nil
}

var _ network.Topology = (*Torus)(nil)

package topology

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"repro/internal/network"
)

// Parse resolves a topology name of the form every
// network.Topology.Name() produces — "torus-8x8", "mesh-4x4",
// "torus3d-4x4x4", "ring-16", "linear-8", "hypercube-6", "omega-64",
// "dragonfly-8x16x4", "fattree-8" — back to a topology value, validating
// dimensions before construction so bad input yields an error, never a
// panic. (Moved here from internal/cliutil so that low-level packages can
// share cliutil without importing the topology constructors.)
//
// A colon spec form is also accepted for the fabric families —
// "dragonfly:a,g,h" and "fattree:k" — so shell users can write dimensions
// as a comma list; both forms construct the identical topology.
func Parse(name string) (network.Topology, error) {
	var family, arg string
	var dims []int
	var err error
	if f, a, ok := strings.Cut(name, ":"); ok {
		family, arg = f, a
		dims, err = parseList(arg, ",")
	} else {
		var ok bool
		family, arg, ok = strings.Cut(name, "-")
		if !ok || arg == "" {
			return nil, fmt.Errorf("topology: %q not of the form family-dims (e.g. torus-8x8, dragonfly-8x16x4) or family:dims (e.g. dragonfly:8,16,4)", name)
		}
		dims, err = parseDims(arg)
	}
	if err != nil {
		return nil, fmt.Errorf("topology: %q: %w", name, err)
	}
	bad := func(why string) (network.Topology, error) {
		return nil, fmt.Errorf("topology: %q: %s", name, why)
	}
	switch family {
	case "torus":
		if len(dims) != 2 || dims[0] < 2 || dims[1] < 2 {
			return bad("want torus-WxH with W,H >= 2")
		}
		return NewTorus(dims[0], dims[1]), nil
	case "mesh":
		if len(dims) != 2 || dims[0] < 2 || dims[1] < 2 {
			return bad("want mesh-WxH with W,H >= 2")
		}
		return NewMesh(dims[0], dims[1]), nil
	case "torus3d":
		if len(dims) != 3 || dims[0] < 2 || dims[1] < 2 || dims[2] < 2 {
			return bad("want torus3d-XxYxZ with X,Y,Z >= 2")
		}
		return NewTorus3D(dims[0], dims[1], dims[2]), nil
	case "ring":
		if len(dims) != 1 || dims[0] < 3 {
			return bad("want ring-N with N >= 3")
		}
		return NewRing(dims[0]), nil
	case "linear":
		if len(dims) != 1 || dims[0] < 2 {
			return bad("want linear-N with N >= 2")
		}
		return NewLinear(dims[0]), nil
	case "hypercube":
		if len(dims) != 1 || dims[0] < 1 || dims[0] > 20 {
			return bad("want hypercube-D with dimension 1..20")
		}
		return NewHypercube(dims[0]), nil
	case "omega":
		if len(dims) != 1 || dims[0] < 4 || dims[0]&(dims[0]-1) != 0 || bits.Len(uint(dims[0])) > 21 {
			return bad("want omega-N with N a power of two >= 4")
		}
		return NewOmega(dims[0]), nil
	case "dragonfly":
		if len(dims) != 3 || dims[0] < 1 || dims[1] < 2 || dims[2] < 1 {
			return bad("want dragonfly-AxGxH (or dragonfly:a,g,h) with a routers/group >= 1, g groups >= 2, h PEs/router >= 1")
		}
		if a, g, h := dims[0], dims[1], dims[2]; a*h < g-1 {
			return bad(fmt.Sprintf("a*h = %d global channels per group cannot reach the other %d groups (need a*h >= g-1)", a*h, g-1))
		}
		if dims[0]*dims[1]*dims[2] > 1<<20 {
			return bad("dragonfly too large (a*g*h PEs must be <= 2^20)")
		}
		return NewDragonfly(dims[0], dims[1], dims[2]), nil
	case "fattree":
		if len(dims) != 1 || dims[0] < 4 || dims[0]%2 != 0 || dims[0] > 64 {
			return bad("want fattree-K (or fattree:k) with even switch radix 4 <= k <= 64")
		}
		return NewFatTree(dims[0]), nil
	default:
		return bad("unknown family (want torus, mesh, torus3d, ring, linear, hypercube, omega, dragonfly or fattree)")
	}
}

// parseDims splits an "8x8"-style dimension list.
func parseDims(s string) ([]int, error) {
	return parseList(s, "x")
}

// parseList splits a sep-separated dimension list ("8x8", "8,16,4").
func parseList(s, sep string) ([]int, error) {
	parts := strings.Split(s, sep)
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad dimension %q", p)
		}
		dims = append(dims, v)
	}
	return dims, nil
}

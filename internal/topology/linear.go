package topology

import (
	"fmt"

	"repro/internal/network"
)

// Linear port numbering: port 0 is the PE; ports 1 and 2 connect to the
// right and left neighbor respectively.
const (
	PortRight = 1
	PortLeft  = 2
)

// Linear is an array of N switches connected in a line, the topology of the
// paper's Fig. 3 scheduling example. Each adjacent pair is joined by one
// link per direction.
type Linear struct {
	name string // precomputed by the constructor so Name() never allocates

	N int
}

// NewLinear returns a linear array of n nodes.
func NewLinear(n int) *Linear {
	if n < 2 {
		panic(fmt.Sprintf("topology: linear array of %d nodes too small", n))
	}
	return &Linear{N: n, name: fmt.Sprintf("linear-%d", n)}
}

// Name implements network.Topology.
func (l *Linear) Name() string {
	if l.name != "" {
		return l.name
	}
	return fmt.Sprintf("linear-%d", l.N)
}

// NumNodes implements network.Topology.
func (l *Linear) NumNodes() int { return l.N }

// NumLinks implements network.Topology. Link 2*i goes i -> i+1 and link
// 2*i+1 goes i+1 -> i, for i in [0, N-1).
func (l *Linear) NumLinks() int { return 2 * (l.N - 1) }

// Link implements network.Topology.
func (l *Linear) Link(id network.LinkID) network.LinkInfo {
	i := int(id) / 2
	if int(id)%2 == 0 {
		return network.LinkInfo{
			ID: id, From: network.NodeID(i), To: network.NodeID(i + 1),
			OutPort: PortRight, InPort: PortLeft,
		}
	}
	return network.LinkInfo{
		ID: id, From: network.NodeID(i + 1), To: network.NodeID(i),
		OutPort: PortLeft, InPort: PortRight,
	}
}

// Route implements network.Topology: the unique straight-line path.
func (l *Linear) Route(src, dst network.NodeID) (network.Path, error) {
	if int(src) < 0 || int(src) >= l.N || int(dst) < 0 || int(dst) >= l.N {
		return network.Path{}, network.ErrBadNode
	}
	if src == dst {
		return network.Path{}, network.ErrSelfLoop
	}
	links := make([]network.LinkID, 0, abs(int(dst)-int(src)))
	if dst > src {
		for i := int(src); i < int(dst); i++ {
			links = append(links, network.LinkID(2*i))
		}
	} else {
		for i := int(src); i > int(dst); i-- {
			links = append(links, network.LinkID(2*(i-1)+1))
		}
	}
	return network.Path{Src: src, Dst: dst, Links: links}, nil
}

var _ network.Topology = (*Linear)(nil)

package topology_test

import (
	"testing"

	"repro/internal/topology"
)

func TestParseRoundTrip(t *testing.T) {
	for _, name := range []string{
		"torus-8x8", "mesh-4x4", "torus3d-4x4x4", "ring-16", "linear-8",
		"hypercube-6", "omega-64", "dragonfly-4x4x1", "dragonfly-8x16x4",
		"fattree-4", "fattree-8",
	} {
		topo, err := topology.Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if topo.Name() != name {
			t.Fatalf("Parse(%q).Name() = %q", name, topo.Name())
		}
	}
}

func TestParseRejects(t *testing.T) {
	for _, name := range []string{
		"", "torus", "torus-", "torus-8", "torus-8x8x8", "torus-1x8",
		"mesh-8", "ring-2", "linear-1", "hypercube-0", "hypercube-21",
		"omega-6", "omega-2", "klein-8", "torus-axb", "torus-8x-1",
		"dragonfly-8x8", "dragonfly-0x4x1", "dragonfly-2x8x2",
		"dragonfly:2,8", "dragonfly:axgxh", "dragonfly-256x256x256",
		"fattree-3", "fattree-5", "fattree-66", "fattree:2", "fattree:8x8",
	} {
		if _, err := topology.Parse(name); err == nil {
			t.Fatalf("Parse(%q) accepted", name)
		}
	}
}

// TestParseColonSpec verifies the dragonfly:a,g,h / fattree:k spec form
// constructs the identical topology as the canonical Name() form.
func TestParseColonSpec(t *testing.T) {
	cases := map[string]string{
		"dragonfly:4,4,1":  "dragonfly-4x4x1",
		"dragonfly:8,16,4": "dragonfly-8x16x4",
		"fattree:4":        "fattree-4",
		"fattree:16":       "fattree-16",
	}
	for spec, want := range cases {
		topo, err := topology.Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if topo.Name() != want {
			t.Fatalf("Parse(%q).Name() = %q, want %q", spec, topo.Name(), want)
		}
	}
}

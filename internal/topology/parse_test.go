package topology_test

import (
	"testing"

	"repro/internal/topology"
)

func TestParseRoundTrip(t *testing.T) {
	for _, name := range []string{
		"torus-8x8", "mesh-4x4", "torus3d-4x4x4", "ring-16", "linear-8",
		"hypercube-6", "omega-64",
	} {
		topo, err := topology.Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if topo.Name() != name {
			t.Fatalf("Parse(%q).Name() = %q", name, topo.Name())
		}
	}
}

func TestParseRejects(t *testing.T) {
	for _, name := range []string{
		"", "torus", "torus-", "torus-8", "torus-8x8x8", "torus-1x8",
		"mesh-8", "ring-2", "linear-1", "hypercube-0", "hypercube-21",
		"omega-6", "omega-2", "klein-8", "torus-axb", "torus-8x-1",
	} {
		if _, err := topology.Parse(name); err == nil {
			t.Fatalf("Parse(%q) accepted", name)
		}
	}
}

package topology

import (
	"fmt"

	"repro/internal/network"
)

// invariantSample is the number of (src, dst) pairs the constructors
// spot-check for route validity. Small fabrics are checked exhaustively;
// larger ones are sampled with a deterministic stride so construction stays
// cheap even at 4096 nodes.
const invariantSample = 2048

// CheckInvariants verifies the structural contract every topology in this
// package promises:
//
//   - node and link counts are positive and the terminal count is in range;
//   - every link id round-trips through Link (Link(id).ID == id), connects
//     two distinct in-range nodes, and never uses the reserved PE port 0;
//   - no two links share a (switch, output port) or (switch, input port)
//     pair — each crossbar port drives exactly one fiber;
//   - Route succeeds between sampled terminal pairs (exhaustive below
//     `sample` pairs) and every returned path passes network.Validate.
//
// New-family constructors run this after parameter validation and panic on
// violation; tests call it directly table-driven across sizes.
func CheckInvariants(t network.Topology, sample int) error {
	nodes, links := t.NumNodes(), t.NumLinks()
	if nodes <= 0 || links <= 0 {
		return fmt.Errorf("%s: empty topology (%d nodes, %d links)", t.Name(), nodes, links)
	}
	terms := network.TerminalCount(t)
	if terms <= 0 || terms > nodes {
		return fmt.Errorf("%s: terminal count %d out of range (1..%d)", t.Name(), terms, nodes)
	}

	type portKey struct {
		node network.NodeID
		port int
	}
	outSeen := make(map[portKey]network.LinkID, links)
	inSeen := make(map[portKey]network.LinkID, links)
	for id := 0; id < links; id++ {
		li := t.Link(network.LinkID(id))
		if li.ID != network.LinkID(id) {
			return fmt.Errorf("%s: link %d reports id %d", t.Name(), id, li.ID)
		}
		if int(li.From) < 0 || int(li.From) >= nodes || int(li.To) < 0 || int(li.To) >= nodes {
			return fmt.Errorf("%s: link %d endpoints %d->%d out of range", t.Name(), id, li.From, li.To)
		}
		if li.From == li.To {
			return fmt.Errorf("%s: link %d is a self-loop at node %d", t.Name(), id, li.From)
		}
		if li.OutPort == network.PEPort || li.InPort == network.PEPort {
			return fmt.Errorf("%s: link %d uses reserved PE port 0", t.Name(), id)
		}
		if prev, dup := outSeen[portKey{li.From, li.OutPort}]; dup {
			return fmt.Errorf("%s: links %d and %d share output port %d of node %d", t.Name(), prev, id, li.OutPort, li.From)
		}
		outSeen[portKey{li.From, li.OutPort}] = network.LinkID(id)
		if prev, dup := inSeen[portKey{li.To, li.InPort}]; dup {
			return fmt.Errorf("%s: links %d and %d share input port %d of node %d", t.Name(), prev, id, li.InPort, li.To)
		}
		inSeen[portKey{li.To, li.InPort}] = network.LinkID(id)
	}

	if sample <= 0 {
		sample = invariantSample
	}
	pairs := terms * terms
	step := 1
	if pairs > sample {
		step = pairs / sample
	}
	for p := 0; p < pairs; p += step {
		src, dst := network.NodeID(p/terms), network.NodeID(p%terms)
		if src == dst {
			continue
		}
		path, err := t.Route(src, dst)
		if err != nil {
			return fmt.Errorf("%s: route %d->%d: %w", t.Name(), src, dst, err)
		}
		if err := network.Validate(t, path); err != nil {
			return fmt.Errorf("%s: route %d->%d: %w", t.Name(), src, dst, err)
		}
	}
	return nil
}

// Package network defines the basic model of an all-optical switched
// interconnection network: nodes, directed links, optical circuit paths, and
// the conflict relation between paths that determines which connections can
// be established simultaneously.
//
// The model follows the SC'96 paper "Compiled Communication for All-Optical
// TDM Networks" (Yuan, Melhem, Gupta). Every node consists of a processing
// element (PE) attached to a crossbar electro-optical switch. A connection
// from PE s to PE d is realized as an all-optical circuit that enters the
// network through the injection port of s's switch, traverses a sequence of
// directed inter-switch links, and leaves through the ejection port of d's
// switch. Because the switches are crossbars, two circuits conflict if and
// only if they share a directed link, a PE injection port (same source), or
// a PE ejection port (same destination).
package network

import (
	"errors"
	"fmt"
)

// NodeID identifies a node (PE + switch) in the network.
type NodeID int

// LinkID identifies a directed inter-switch link.
type LinkID int

// Port numbers within a switch. Port 0 is always the PE (injection on the
// input side, ejection on the output side); inter-switch link ports are
// topology specific and start at 1.
const PEPort = 0

// LinkInfo describes one directed link of a topology.
type LinkInfo struct {
	ID      LinkID
	From    NodeID // switch the link leaves
	To      NodeID // switch the link enters
	OutPort int    // output port of From occupied by the link
	InPort  int    // input port of To occupied by the link
}

// Topology is the static structure of a switched network together with its
// (deterministic) routing function. Implementations live in
// internal/topology.
type Topology interface {
	// Name returns a short human-readable description, e.g. "torus-8x8".
	Name() string
	// NumNodes returns the number of nodes (PE/switch pairs).
	NumNodes() int
	// NumLinks returns the number of directed inter-switch links.
	NumLinks() int
	// Link returns the description of a directed link.
	Link(id LinkID) LinkInfo
	// Route computes the circuit path from src to dst. The path must be
	// deterministic: routing decisions are made by the compiler, never at
	// runtime.
	Route(src, dst NodeID) (Path, error)
}

// Terminals is implemented by topologies in which only a subset of nodes
// host PEs (multistage networks, whose interior nodes are fabric switches).
// Terminal nodes must occupy ids [0, NumTerminals()); only they originate
// or terminate circuits.
type Terminals interface {
	NumTerminals() int
}

// TerminalCount returns the number of PE-bearing nodes of a topology:
// NumTerminals() when the topology distinguishes fabric switches, otherwise
// every node.
func TerminalCount(t Topology) int {
	if tt, ok := t.(Terminals); ok {
		return tt.NumTerminals()
	}
	return t.NumNodes()
}

// Path is an all-optical circuit: the ordered list of directed links from
// the source switch to the destination switch. A minimal path between a PE
// and itself is invalid; self-communication never enters the network.
type Path struct {
	Src   NodeID
	Dst   NodeID
	Links []LinkID
}

// Len returns the number of links in the path (the connection "length" used
// by the coloring and AAPC heuristics).
func (p Path) Len() int { return len(p.Links) }

// ErrSelfLoop is returned by Route when src == dst.
var ErrSelfLoop = errors.New("network: route from a node to itself")

// ErrBadNode is returned by Route when an endpoint is out of range.
var ErrBadNode = errors.New("network: node out of range")

// Conflicts reports whether two circuit paths cannot be established in the
// same network configuration. Circuits conflict when they share a directed
// link, or when they need the same PE injection port (equal sources) or the
// same PE ejection port (equal destinations).
func Conflicts(a, b Path) bool {
	if a.Src == b.Src || a.Dst == b.Dst {
		return true
	}
	if len(a.Links) > len(b.Links) {
		a, b = b, a
	}
	if len(a.Links) == 0 {
		return false
	}
	set := make(map[LinkID]struct{}, len(a.Links))
	for _, l := range a.Links {
		set[l] = struct{}{}
	}
	for _, l := range b.Links {
		if _, ok := set[l]; ok {
			return true
		}
	}
	return false
}

// Validate checks that a path is structurally sound in the given topology:
// it starts at Src, ends at Dst, and consecutive links share a switch.
func Validate(t Topology, p Path) error {
	if int(p.Src) < 0 || int(p.Src) >= t.NumNodes() || int(p.Dst) < 0 || int(p.Dst) >= t.NumNodes() {
		return ErrBadNode
	}
	if p.Src == p.Dst {
		return ErrSelfLoop
	}
	if len(p.Links) == 0 {
		return fmt.Errorf("network: empty path %d->%d", p.Src, p.Dst)
	}
	cur := p.Src
	for i, id := range p.Links {
		if int(id) < 0 || int(id) >= t.NumLinks() {
			return fmt.Errorf("network: link %d out of range in path %d->%d", id, p.Src, p.Dst)
		}
		li := t.Link(id)
		if li.From != cur {
			return fmt.Errorf("network: link %d of path %d->%d leaves %d, expected %d", i, p.Src, p.Dst, li.From, cur)
		}
		cur = li.To
	}
	if cur != p.Dst {
		return fmt.Errorf("network: path %d->%d ends at %d", p.Src, p.Dst, cur)
	}
	return nil
}

// Occupancy is the set of directed resources a configuration has in use. It
// supports incremental conflict checking in O(path length) per insertion,
// which the greedy scheduler depends on.
type Occupancy struct {
	links   map[LinkID]struct{}
	sources map[NodeID]struct{}
	dests   map[NodeID]struct{}
}

// NewOccupancy returns an empty resource-occupancy tracker.
func NewOccupancy() *Occupancy {
	return &Occupancy{
		links:   make(map[LinkID]struct{}),
		sources: make(map[NodeID]struct{}),
		dests:   make(map[NodeID]struct{}),
	}
}

// CanAdd reports whether the path is conflict-free with everything already
// added.
func (o *Occupancy) CanAdd(p Path) bool {
	if _, ok := o.sources[p.Src]; ok {
		return false
	}
	if _, ok := o.dests[p.Dst]; ok {
		return false
	}
	for _, l := range p.Links {
		if _, ok := o.links[l]; ok {
			return false
		}
	}
	return true
}

// Add marks the path's resources as occupied. It does not re-check
// conflicts; callers use CanAdd first.
func (o *Occupancy) Add(p Path) {
	o.sources[p.Src] = struct{}{}
	o.dests[p.Dst] = struct{}{}
	for _, l := range p.Links {
		o.links[l] = struct{}{}
	}
}

// Reset empties the tracker for reuse.
func (o *Occupancy) Reset() {
	clear(o.links)
	clear(o.sources)
	clear(o.dests)
}

// LinkCount returns the number of occupied links (used to rank AAPC phases
// by utilization).
func (o *Occupancy) LinkCount() int { return len(o.links) }

package network

import (
	"reflect"
	"sync"
	"sync/atomic"
)

// Route caching.
//
// Routing in compiled communication is a pure function of the topology: the
// paper fixes every circuit's path at compile time, so Route(src, dst) always
// returns the same path for the same topology value. The schedulers exploit
// neither purity nor repetition — the combined algorithm routes every request
// twice (once per member scheduler), and the Table 1–3 sweeps route the same
// (src, dst) pairs hundreds of times on one torus. The cache below memoizes
// paths per topology so repeated scheduling runs, the parallel combined
// fan-out, and batch compilation all share one route computation per pair.
//
// Semantics:
//
//   - Keyed by topology identity (the interface value, i.e. pointer identity
//     for the pointer-shaped topologies of internal/topology) plus (src, dst).
//     Two distinct *Torus values never share entries, even with equal
//     dimensions, so mutating one topology cannot poison another's cache.
//   - Cached paths are shared, not copied. Callers must treat Path.Links as
//     immutable (every caller in this repository already does; routes are
//     compiler artifacts, not scratch buffers).
//   - Mutable topologies: a topology whose routing inputs change after first
//     use (e.g. assigning Torus.Tie) must call InvalidateRoutes(t) afterwards,
//     or the process must run with SetRouteCaching(false). Mutating before the
//     first Route call is always safe.
//   - Concurrency-safe: lookups take a read lock per topology; misses take the
//     write lock once. Safe for the parallel Combined fan-out and CompileAll.
//   - Bounded: at most maxCachedTopologies topologies are tracked; inserting
//     one more drops the whole cache (coarse, but keeps long-running sweeps
//     over throwaway topology values from accumulating dead entries).
//
// Routing errors (self-loops, out-of-range nodes) are never cached; they are
// returned directly from the topology.

// maxCachedTopologies bounds the number of distinct topology values with live
// cache entries before the cache resets.
const maxCachedTopologies = 64

// topoRoutes is the per-topology route table.
type topoRoutes struct {
	mu sync.RWMutex
	m  map[[2]NodeID]Path
}

var (
	routeCaches     sync.Map // Topology -> *topoRoutes
	routeCacheCount atomic.Int64
	routeCachingOff atomic.Bool
)

// SetRouteCaching globally enables or disables the route cache and returns
// the previous setting. Disabling also drops every cached entry. It is the
// bypass knob for workloads that mutate topologies between scheduling runs.
func SetRouteCaching(enabled bool) (was bool) {
	was = !routeCachingOff.Load()
	routeCachingOff.Store(!enabled)
	if !enabled {
		clearRouteCaches()
	}
	return was
}

// RouteCachingEnabled reports whether the route cache is active.
func RouteCachingEnabled() bool { return !routeCachingOff.Load() }

// InvalidateRoutes drops every cached route of one topology. Call it after
// mutating a topology value that has already been routed on (for example,
// changing a torus's tie policy between runs).
func InvalidateRoutes(t Topology) {
	if t == nil || !cacheableTopology(t) {
		return
	}
	if _, loaded := routeCaches.LoadAndDelete(t); loaded {
		routeCacheCount.Add(-1)
	}
}

// RouteCacheStats reports the number of cached topologies and total cached
// paths; exposed for tests and capacity monitoring.
func RouteCacheStats() (topologies, paths int) {
	routeCaches.Range(func(_, v any) bool {
		tr := v.(*topoRoutes)
		tr.mu.RLock()
		paths += len(tr.m)
		tr.mu.RUnlock()
		topologies++
		return true
	})
	return topologies, paths
}

// clearRouteCaches drops everything.
func clearRouteCaches() {
	routeCaches.Range(func(k, _ any) bool {
		routeCaches.Delete(k)
		return true
	})
	routeCacheCount.Store(0)
}

// cacheableTopology reports whether the topology's dynamic type can be a map
// key. Every topology in internal/topology is a pointer and qualifies; an
// exotic non-comparable implementation silently bypasses the cache.
func cacheableTopology(t Topology) bool {
	return reflect.TypeOf(t).Comparable()
}

// cacheFor returns (creating if needed) the route table of a topology.
func cacheFor(t Topology) *topoRoutes {
	if v, ok := routeCaches.Load(t); ok {
		return v.(*topoRoutes)
	}
	tr := &topoRoutes{m: make(map[[2]NodeID]Path)}
	if v, loaded := routeCaches.LoadOrStore(t, tr); loaded {
		return v.(*topoRoutes)
	}
	if routeCacheCount.Add(1) > maxCachedTopologies {
		// Too many live topologies (typically throwaway values in a sweep):
		// reset rather than grow without bound. The new table dies with the
		// reset too; the next miss recreates it.
		clearRouteCaches()
	}
	return tr
}

// CachedRoute is Route with memoization: it returns the topology's
// deterministic path for (src, dst), computing it at most once per topology
// value while the cache holds. The returned Path shares its Links slice with
// every other caller and must not be mutated.
func CachedRoute(t Topology, src, dst NodeID) (Path, error) {
	if routeCachingOff.Load() || !cacheableTopology(t) {
		return t.Route(src, dst)
	}
	tr := cacheFor(t)
	key := [2]NodeID{src, dst}
	tr.mu.RLock()
	p, ok := tr.m[key]
	tr.mu.RUnlock()
	if ok {
		return p, nil
	}
	p, err := t.Route(src, dst)
	if err != nil {
		return Path{}, err
	}
	tr.mu.Lock()
	// Another goroutine may have raced the same miss; either wrote the same
	// deterministic path, so last-write-wins is fine.
	tr.m[key] = p
	tr.mu.Unlock()
	return p, nil
}

package network_test

import (
	"testing"

	"repro/internal/network"
	"repro/internal/topology"
)

func mustRoute(t *testing.T, topo network.Topology, s, d int) network.Path {
	t.Helper()
	p, err := topo.Route(network.NodeID(s), network.NodeID(d))
	if err != nil {
		t.Fatalf("Route(%d, %d): %v", s, d, err)
	}
	return p
}

func TestConflictsSharedSource(t *testing.T) {
	topo := topology.NewLinear(5)
	a := mustRoute(t, topo, 0, 2)
	b := mustRoute(t, topo, 0, 3)
	if !network.Conflicts(a, b) {
		t.Error("paths with the same source must conflict (shared injection port)")
	}
}

func TestConflictsSharedDestination(t *testing.T) {
	topo := topology.NewLinear(5)
	a := mustRoute(t, topo, 0, 4)
	b := mustRoute(t, topo, 3, 4)
	if !network.Conflicts(a, b) {
		t.Error("paths with the same destination must conflict (shared ejection port)")
	}
}

func TestConflictsSharedLink(t *testing.T) {
	topo := topology.NewLinear(5)
	a := mustRoute(t, topo, 0, 2) // links 0->1, 1->2
	b := mustRoute(t, topo, 1, 3) // links 1->2, 2->3
	if !network.Conflicts(a, b) {
		t.Error("paths sharing link 1->2 must conflict")
	}
}

func TestConflictsOppositeDirectionsDisjoint(t *testing.T) {
	topo := topology.NewLinear(5)
	a := mustRoute(t, topo, 0, 2)
	b := mustRoute(t, topo, 2, 0)
	if network.Conflicts(a, b) {
		t.Error("opposite directions use distinct directed links and must not conflict")
	}
}

func TestConflictsCrossingAtSwitch(t *testing.T) {
	// Two circuits crossing the same switch on different ports do not
	// conflict: the switch is a crossbar.
	topo := topology.NewTorus(4, 4)
	a := mustRoute(t, topo, 1, 9) // column 1 downward through switch 5
	b := mustRoute(t, topo, 4, 6) // row 1 rightward through switch 5
	shared := false
	for _, l := range a.Links {
		for _, m := range b.Links {
			if l == m {
				shared = true
			}
		}
	}
	if shared {
		t.Fatal("test premise broken: paths share a link")
	}
	if network.Conflicts(a, b) {
		t.Error("crossbar-crossing circuits must not conflict")
	}
}

func TestConflictsIsSymmetric(t *testing.T) {
	topo := topology.NewTorus(4, 4)
	pairs := [][4]int{{0, 5, 5, 10}, {1, 2, 2, 3}, {0, 3, 1, 3}, {7, 8, 8, 9}}
	for _, q := range pairs {
		a := mustRoute(t, topo, q[0], q[1])
		b := mustRoute(t, topo, q[2], q[3])
		if network.Conflicts(a, b) != network.Conflicts(b, a) {
			t.Errorf("Conflicts not symmetric for %v", q)
		}
	}
}

func TestValidateAcceptsRoutes(t *testing.T) {
	topos := []network.Topology{
		topology.NewTorus(4, 4),
		topology.NewTorus(8, 8),
		topology.NewLinear(6),
		topology.NewRing(7),
		topology.NewMesh(4, 3),
		topology.NewHypercube(4),
	}
	for _, topo := range topos {
		n := topo.NumNodes()
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				p := mustRoute(t, topo, s, d)
				if err := network.Validate(topo, p); err != nil {
					t.Fatalf("%s: route %d->%d invalid: %v", topo.Name(), s, d, err)
				}
			}
		}
	}
}

func TestValidateRejectsBrokenPaths(t *testing.T) {
	topo := topology.NewLinear(5)
	good := mustRoute(t, topo, 0, 3)

	broken := network.Path{Src: good.Src, Dst: good.Dst, Links: good.Links[1:]}
	if err := network.Validate(topo, broken); err == nil {
		t.Error("path starting at the wrong switch must be rejected")
	}
	short := network.Path{Src: good.Src, Dst: good.Dst, Links: good.Links[:2]}
	if err := network.Validate(topo, short); err == nil {
		t.Error("path ending before its destination must be rejected")
	}
	empty := network.Path{Src: 0, Dst: 3}
	if err := network.Validate(topo, empty); err == nil {
		t.Error("empty path must be rejected")
	}
	self := network.Path{Src: 2, Dst: 2}
	if err := network.Validate(topo, self); err == nil {
		t.Error("self-loop must be rejected")
	}
	oob := network.Path{Src: 0, Dst: 99, Links: good.Links}
	if err := network.Validate(topo, oob); err == nil {
		t.Error("out-of-range destination must be rejected")
	}
}

func TestRouteErrors(t *testing.T) {
	topo := topology.NewTorus(4, 4)
	if _, err := topo.Route(3, 3); err != network.ErrSelfLoop {
		t.Errorf("self route: got %v, want ErrSelfLoop", err)
	}
	if _, err := topo.Route(-1, 3); err != network.ErrBadNode {
		t.Errorf("negative node: got %v, want ErrBadNode", err)
	}
	if _, err := topo.Route(0, 16); err != network.ErrBadNode {
		t.Errorf("overflow node: got %v, want ErrBadNode", err)
	}
}

func TestOccupancyMatchesPairwiseConflicts(t *testing.T) {
	topo := topology.NewTorus(4, 4)
	n := topo.NumNodes()
	var paths []network.Path
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				paths = append(paths, mustRoute(t, topo, s, d))
			}
		}
	}
	// Greedily build one configuration with Occupancy and verify the
	// accepted set is exactly pairwise conflict-free and maximal.
	occ := network.NewOccupancy()
	var accepted []network.Path
	for _, p := range paths {
		if occ.CanAdd(p) {
			occ.Add(p)
			accepted = append(accepted, p)
		}
	}
	for i := range accepted {
		for j := i + 1; j < len(accepted); j++ {
			if network.Conflicts(accepted[i], accepted[j]) {
				t.Fatalf("occupancy admitted conflicting paths %v and %v", accepted[i], accepted[j])
			}
		}
	}
	for _, p := range paths {
		if occ.CanAdd(p) {
			conflictsAny := false
			for _, q := range accepted {
				if network.Conflicts(p, q) {
					conflictsAny = true
				}
			}
			if conflictsAny {
				t.Fatalf("CanAdd accepts %v which conflicts pairwise", p)
			}
		} else {
			conflictsAny := false
			for _, q := range accepted {
				if network.Conflicts(p, q) {
					conflictsAny = true
				}
			}
			if !conflictsAny {
				t.Fatalf("CanAdd rejects %v which conflicts with nothing", p)
			}
		}
	}
}

func TestOccupancyReset(t *testing.T) {
	topo := topology.NewLinear(4)
	p := mustRoute(t, topo, 0, 3)
	occ := network.NewOccupancy()
	occ.Add(p)
	if occ.CanAdd(p) {
		t.Fatal("occupied path reported addable")
	}
	occ.Reset()
	if !occ.CanAdd(p) {
		t.Fatal("reset occupancy still blocks the path")
	}
	if occ.LinkCount() != 0 {
		t.Fatalf("reset occupancy has %d links", occ.LinkCount())
	}
}

// TestFigure1Configuration reproduces Fig. 1: the five connections
// {(4,1), (5,3), (6,10), (8,9), (11,2)} form a valid configuration on the
// 4x4 torus.
func TestFigure1Configuration(t *testing.T) {
	topo := topology.NewTorus(4, 4)
	conns := [][2]int{{4, 1}, {5, 3}, {6, 10}, {8, 9}, {11, 2}}
	occ := network.NewOccupancy()
	for _, c := range conns {
		p := mustRoute(t, topo, c[0], c[1])
		if !occ.CanAdd(p) {
			t.Fatalf("connection (%d, %d) conflicts within the Fig. 1 configuration", c[0], c[1])
		}
		occ.Add(p)
	}
}

package network

import (
	"fmt"
	"sync"
)

// ErrNoRoute is returned when no path survives between two nodes — every
// route from src to dst crosses an excluded (typically failed) link.
var ErrNoRoute = fmt.Errorf("network: no surviving route")

// bfsScratch is the per-call working set of BFSRoute, pooled so recovery
// paths that reroute many pairs (fresh masked view per failure) do not pay
// six allocations per search. Only the returned Path.Links escapes.
type bfsScratch struct {
	deg    []int32
	infos  []LinkInfo
	use    []bool
	adj    []int32
	fill   []int32
	parent []int32
	queue  []NodeID
}

var bfsPool = sync.Pool{New: func() any { return new(bfsScratch) }}

func (s *bfsScratch) size(n, nl int) {
	if cap(s.deg) < n+1 {
		s.deg = make([]int32, n+1)
		s.fill = make([]int32, n)
		s.parent = make([]int32, n)
		s.queue = make([]NodeID, 0, n)
	}
	s.deg = s.deg[:n+1]
	for i := range s.deg {
		s.deg[i] = 0
	}
	s.fill = s.fill[:n]
	s.parent = s.parent[:n]
	s.queue = s.queue[:0]
	if cap(s.infos) < nl {
		s.infos = make([]LinkInfo, nl)
		s.use = make([]bool, nl)
		s.adj = make([]int32, nl)
	}
	s.infos = s.infos[:nl]
	s.use = s.use[:nl]
	for i := range s.use {
		s.use[i] = false
	}
}

// BFSRoute computes a shortest path from src to dst using only the links
// for which avoid returns false. It is the fallback router of the fault
// subsystem: when a topology's deterministic compile-time route crosses a
// failed link, BFSRoute finds a detour over the surviving fibers, so a
// connection fails only when the failure set actually disconnects its
// endpoints.
//
// The search is deterministic: links are relaxed in increasing LinkID order,
// so for a fixed topology and avoid predicate every call returns the same
// path. avoid == nil means no link is excluded (plain shortest path).
//
// BFSRoute builds the adjacency index on every call (O(links)); it is meant
// for the recovery path, not for hot loops. Callers that reroute many pairs
// against one failure set should wrap the topology in a masked view and use
// CachedRoute.
func BFSRoute(t Topology, src, dst NodeID, avoid func(LinkInfo) bool) (Path, error) {
	n := t.NumNodes()
	if int(src) < 0 || int(src) >= n || int(dst) < 0 || int(dst) >= n {
		return Path{}, ErrBadNode
	}
	if src == dst {
		return Path{}, ErrSelfLoop
	}
	// Outgoing links per node, in LinkID order (the loop below visits ids in
	// increasing order, so each adjacency list is naturally sorted).
	nl := t.NumLinks()
	s := bfsPool.Get().(*bfsScratch)
	defer bfsPool.Put(s)
	s.size(n, nl)
	deg, infos, use := s.deg, s.infos, s.use
	for id := 0; id < nl; id++ {
		li := t.Link(LinkID(id))
		infos[id] = li
		if avoid != nil && avoid(li) {
			continue
		}
		use[id] = true
		deg[li.From+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	adj := s.adj[:deg[n]]
	fill := s.fill
	copy(fill, deg[:n])
	for id := 0; id < nl; id++ {
		if !use[id] {
			continue
		}
		from := infos[id].From
		adj[fill[from]] = int32(id)
		fill[from]++
	}

	// Standard BFS; parent[v] is the link that first reached v.
	parent := s.parent
	for i := range parent {
		parent[i] = -1
	}
	queue := append(s.queue, src)
	parent[src] = -2 // visited, no incoming link
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		if u == dst {
			break
		}
		for _, id := range adj[deg[u]:deg[u+1]] {
			v := infos[id].To
			if parent[v] != -1 {
				continue
			}
			parent[v] = id
			queue = append(queue, v)
		}
	}
	if parent[dst] == -1 {
		return Path{}, fmt.Errorf("%w from %d to %d", ErrNoRoute, src, dst)
	}
	// Walk the parent chain backward and reverse.
	var links []LinkID
	for v := dst; v != src; {
		id := parent[v]
		links = append(links, LinkID(id))
		v = infos[id].From
	}
	for i, j := 0, len(links)-1; i < j; i, j = i+1, j-1 {
		links[i], links[j] = links[j], links[i]
	}
	return Path{Src: src, Dst: dst, Links: links}, nil
}

package network_test

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/network"
	"repro/internal/topology"
)

// TestCachedRouteMatchesRoute: the cache returns exactly the topology's
// deterministic route for every pair, hit or miss.
func TestCachedRouteMatchesRoute(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	network.InvalidateRoutes(torus)
	for pass := 0; pass < 2; pass++ { // pass 0 fills, pass 1 hits
		for s := 0; s < 16; s++ {
			for d := 0; d < 16; d++ {
				if s == d {
					continue
				}
				want, err := torus.Route(network.NodeID(s), network.NodeID(d))
				if err != nil {
					t.Fatal(err)
				}
				got, err := network.CachedRoute(torus, network.NodeID(s), network.NodeID(d))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("pass %d: cached route %d->%d = %v, want %v", pass, s, d, got, want)
				}
			}
		}
	}
	network.InvalidateRoutes(torus)
}

// TestCachedRouteErrorsNotCached: self-loops and bad nodes surface the
// topology's errors and leave no entries behind.
func TestCachedRouteErrorsNotCached(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	network.InvalidateRoutes(torus)
	_, before := network.RouteCacheStats()
	if _, err := network.CachedRoute(torus, 3, 3); err != network.ErrSelfLoop {
		t.Fatalf("self-loop error = %v", err)
	}
	if _, err := network.CachedRoute(torus, -1, 3); err != network.ErrBadNode {
		t.Fatalf("bad-node error = %v", err)
	}
	if _, after := network.RouteCacheStats(); after != before {
		t.Fatalf("%d paths cached after errors only", after-before)
	}
	network.InvalidateRoutes(torus)
}

// TestInvalidateRoutesAfterMutation: the invalidation knob makes a mutated
// topology re-route; without it the stale path would be served.
func TestInvalidateRoutesAfterMutation(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	network.InvalidateRoutes(torus)
	src, dst := torus.Node(0, 0), torus.Node(0, 2) // distance 4/2=2: a wrap tie
	before, err := network.CachedRoute(torus, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	torus.Tie = topology.TieNegative // reverses the tied X direction
	direct, err := torus.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(before, direct) {
		t.Fatal("tie-policy mutation did not change the route; test premise broken")
	}
	// Stale until invalidated.
	stale, err := network.CachedRoute(torus, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stale, before) {
		t.Fatal("cache did not serve the cached path")
	}
	network.InvalidateRoutes(torus)
	fresh, err := network.CachedRoute(torus, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, direct) {
		t.Fatalf("after invalidation got %v, want %v", fresh, direct)
	}
	network.InvalidateRoutes(torus)
}

// TestSetRouteCachingBypass: with caching disabled nothing is stored and
// routes still come back correct.
func TestSetRouteCachingBypass(t *testing.T) {
	was := network.SetRouteCaching(false)
	defer network.SetRouteCaching(was)
	torus := topology.NewTorus(4, 4)
	p, err := network.CachedRoute(torus, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := torus.Route(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, want) {
		t.Fatalf("bypassed route = %v, want %v", p, want)
	}
	if topos, paths := network.RouteCacheStats(); topos != 0 || paths != 0 {
		t.Fatalf("cache grew while disabled: %d topologies, %d paths", topos, paths)
	}
}

// TestRouteCacheDistinctTopologies: two equal-shaped but distinct topology
// values never share entries (identity keying), so mutating one cannot
// poison the other.
func TestRouteCacheDistinctTopologies(t *testing.T) {
	a := topology.NewTorus(4, 4)
	b := topology.NewTorus(4, 4)
	b.Tie = topology.TieNegative
	defer network.InvalidateRoutes(a)
	defer network.InvalidateRoutes(b)
	src, dst := a.Node(0, 0), a.Node(0, 2)
	pa, err := network.CachedRoute(a, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := network.CachedRoute(b, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(pa, pb) {
		t.Fatal("distinct topologies with different tie policies returned the same tied route")
	}
}

// TestRouteCacheBounded: flooding the cache with throwaway topologies
// triggers the reset instead of unbounded growth.
func TestRouteCacheBounded(t *testing.T) {
	for i := 0; i < 200; i++ {
		torus := topology.NewTorus(4, 4)
		if _, err := network.CachedRoute(torus, 0, 5); err != nil {
			t.Fatal(err)
		}
	}
	topos, _ := network.RouteCacheStats()
	if topos > 64 {
		t.Fatalf("%d topologies cached; cap not enforced", topos)
	}
}

// TestCachedRouteConcurrent hammers one topology from many goroutines; run
// with -race to check the locking.
func TestCachedRouteConcurrent(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	defer network.InvalidateRoutes(torus)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for s := 0; s < 64; s++ {
				for d := 0; d < 64; d++ {
					if s == d {
						continue
					}
					p, err := network.CachedRoute(torus, network.NodeID(s), network.NodeID(d))
					if err != nil {
						errs <- err
						return
					}
					if int(p.Src) != s || int(p.Dst) != d {
						errs <- network.ErrBadNode
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

package network_test

import (
	"errors"
	"testing"

	"repro/internal/network"
	"repro/internal/topology"
)

func TestBFSRouteMatchesShortestDistance(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	for src := 0; src < 64; src += 7 {
		for dst := 0; dst < 64; dst++ {
			if src == dst {
				continue
			}
			want, err := torus.Route(network.NodeID(src), network.NodeID(dst))
			if err != nil {
				t.Fatal(err)
			}
			got, err := network.BFSRoute(torus, network.NodeID(src), network.NodeID(dst), nil)
			if err != nil {
				t.Fatalf("BFSRoute(%d, %d): %v", src, dst, err)
			}
			if got.Len() != want.Len() {
				t.Fatalf("BFSRoute(%d, %d) length %d, dimension-order route %d", src, dst, got.Len(), want.Len())
			}
			if err := network.Validate(torus, got); err != nil {
				t.Fatalf("BFSRoute(%d, %d): %v", src, dst, err)
			}
		}
	}
}

func TestBFSRouteAvoidsLinks(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	// Kill every link on the default route; BFS must find a detour that
	// avoids all of them.
	direct, err := torus.Route(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	dead := make(map[network.LinkID]bool, len(direct.Links))
	for _, l := range direct.Links {
		dead[l] = true
	}
	avoid := func(li network.LinkInfo) bool { return dead[li.ID] }
	p, err := network.BFSRoute(torus, 0, 3, avoid)
	if err != nil {
		t.Fatal(err)
	}
	if err := network.Validate(torus, p); err != nil {
		t.Fatal(err)
	}
	for _, l := range p.Links {
		if dead[l] {
			t.Fatalf("detour uses avoided link %d", l)
		}
	}
}

func TestBFSRouteDeterministic(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	avoid := func(li network.LinkInfo) bool { return li.ID%5 == 0 }
	a, err := network.BFSRoute(torus, 1, 50, avoid)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b, err := network.BFSRoute(torus, 1, 50, avoid)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Links) != len(b.Links) {
			t.Fatalf("run %d: length %d != %d", i, len(b.Links), len(a.Links))
		}
		for j := range a.Links {
			if a.Links[j] != b.Links[j] {
				t.Fatalf("run %d: link %d differs", i, j)
			}
		}
	}
}

func TestBFSRouteDisconnected(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	// Sever every link touching node 5: no route can reach it.
	avoid := func(li network.LinkInfo) bool { return li.From == 5 || li.To == 5 }
	if _, err := network.BFSRoute(torus, 0, 5, avoid); !errors.Is(err, network.ErrNoRoute) {
		t.Fatalf("got %v, want ErrNoRoute", err)
	}
	if _, err := network.BFSRoute(torus, 5, 0, avoid); !errors.Is(err, network.ErrNoRoute) {
		t.Fatalf("got %v, want ErrNoRoute", err)
	}
	// Errors for bad endpoints keep their usual identity.
	if _, err := network.BFSRoute(torus, 0, 99, nil); !errors.Is(err, network.ErrBadNode) {
		t.Fatalf("got %v, want ErrBadNode", err)
	}
	if _, err := network.BFSRoute(torus, 3, 3, nil); !errors.Is(err, network.ErrSelfLoop) {
		t.Fatalf("got %v, want ErrSelfLoop", err)
	}
}

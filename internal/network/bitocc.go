package network

// BitOccupancy is the flat-bitset counterpart of Occupancy: one bit per
// directed resource of a fixed topology — links first, then PE injection
// ports (sources), then PE ejection ports (destinations). Conflict probes
// and insertions touch O(path length) bits with no hashing and no
// allocation, which is what lets the bitset scheduler core race orderings
// and patch schedules at sub-millisecond cost. Bind it to a topology once,
// Reset between configurations, and it never allocates again until a
// larger topology is bound.
//
// The map-based Occupancy remains the differential-testing oracle (and the
// convenient choice for one-shot callers); both implement the same
// conflict relation: two circuits conflict iff they share a directed link,
// a source, or a destination.
type BitOccupancy struct {
	nl, nn int
	bits   []uint64
}

// Bind sizes the occupancy for a topology and clears it. Memory is reused
// when the resource space fits; binding the same topology repeatedly is
// allocation-free.
func (o *BitOccupancy) Bind(t Topology) { o.BindSize(t.NumLinks(), t.NumNodes()) }

// BindSize is Bind for callers that already know the resource-space shape.
func (o *BitOccupancy) BindSize(numLinks, numNodes int) {
	o.nl, o.nn = numLinks, numNodes
	words := (numLinks + 2*numNodes + 63) / 64
	if cap(o.bits) < words {
		o.bits = make([]uint64, words)
		return
	}
	o.bits = o.bits[:words]
	o.Reset()
}

// Reset clears every resource without releasing memory.
func (o *BitOccupancy) Reset() { clear(o.bits) }

func (o *BitOccupancy) srcBit(n NodeID) int { return o.nl + int(n) }
func (o *BitOccupancy) dstBit(n NodeID) int { return o.nl + o.nn + int(n) }

func (o *BitOccupancy) has(bit int) bool { return o.bits[bit>>6]&(1<<uint(bit&63)) != 0 }
func (o *BitOccupancy) set(bit int)      { o.bits[bit>>6] |= 1 << uint(bit&63) }
func (o *BitOccupancy) unset(bit int)    { o.bits[bit>>6] &^= 1 << uint(bit&63) }

// CanAdd reports whether the path is conflict-free with everything already
// added, exactly like Occupancy.CanAdd.
func (o *BitOccupancy) CanAdd(p Path) bool {
	if o.has(o.srcBit(p.Src)) || o.has(o.dstBit(p.Dst)) {
		return false
	}
	for _, l := range p.Links {
		if o.has(int(l)) {
			return false
		}
	}
	return true
}

// Add marks the path's resources as occupied. It does not re-check
// conflicts; callers use CanAdd first.
func (o *BitOccupancy) Add(p Path) {
	o.set(o.srcBit(p.Src))
	o.set(o.dstBit(p.Dst))
	for _, l := range p.Links {
		o.set(int(l))
	}
}

// Remove releases the path's resources. Within one conflict-free
// configuration circuits are resource-disjoint, so removing a member
// releases exactly the bits it set — the operation the incremental
// scheduler's evictions rely on.
func (o *BitOccupancy) Remove(p Path) {
	o.unset(o.srcBit(p.Src))
	o.unset(o.dstBit(p.Dst))
	for _, l := range p.Links {
		o.unset(int(l))
	}
}

// Empty reports whether no resource is occupied.
func (o *BitOccupancy) Empty() bool {
	for _, w := range o.bits {
		if w != 0 {
			return false
		}
	}
	return true
}

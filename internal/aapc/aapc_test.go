package aapc

import (
	"testing"

	"repro/internal/topology"
)

func TestDecomposeTorus8x8(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	set, err := Decompose(torus)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	if err := set.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	t.Logf("8x8 torus AAPC phases: %d (paper bound N^3/8 = 64, link-load lower bound 63)", set.NumPhases())
	if set.NumPhases() > 70 {
		t.Errorf("decomposition uses %d phases, want close to 64", set.NumPhases())
	}
}

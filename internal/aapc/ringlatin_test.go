package aapc

import (
	"testing"

	"repro/internal/topology"
)

func TestRingArcsShape(t *testing.T) {
	// +1 arc from 3 on an 8-ring uses +link 3 only.
	plus, minus := ringArcs(3, 4, 8)
	if plus != 1<<3 || minus != 0 {
		t.Errorf("arc 3->4: plus=%b minus=%b", plus, minus)
	}
	// -2 arc from 1 to 7 uses -links 1 and 0.
	plus, minus = ringArcs(1, 7, 8)
	if plus != 0 || minus != (1<<1|1<<0) {
		t.Errorf("arc 1->7: plus=%b minus=%b", plus, minus)
	}
	// Tie distance 4: even source goes clockwise, odd counterclockwise.
	plus, minus = ringArcs(2, 6, 8)
	if minus != 0 || popcount(plus) != 4 {
		t.Errorf("tie arc from even source should go +: plus=%b minus=%b", plus, minus)
	}
	plus, minus = ringArcs(3, 7, 8)
	if plus != 0 || popcount(minus) != 4 {
		t.Errorf("tie arc from odd source should go -: plus=%b minus=%b", plus, minus)
	}
	// Self pair has no arcs.
	plus, minus = ringArcs(5, 5, 8)
	if plus != 0 || minus != 0 {
		t.Error("self pair must occupy no links")
	}
}

// TestRingArcsMatchTorusRouting pins the ringArcs tie rule to the torus
// router's TieBalanced rule; the product decomposition is only sound if the
// two agree.
func TestRingArcsMatchTorusRouting(t *testing.T) {
	tr := topology.NewTorus(8, 8)
	for c := 0; c < 8; c++ {
		for cd := 0; cd < 8; cd++ {
			if c == cd {
				continue
			}
			// Row 0 connection (0,c) -> (0,cd): pure X route.
			p, err := tr.Route(tr.Node(0, c), tr.Node(0, cd))
			if err != nil {
				t.Fatal(err)
			}
			plus, minus := ringArcs(c, cd, 8)
			if p.Len() != popcount(plus)+popcount(minus) {
				t.Fatalf("col %d->%d: route %d hops, arcs %d", c, cd, p.Len(), popcount(plus)+popcount(minus))
			}
			// Direction check via first link's port.
			li := tr.Link(p.Links[0])
			if plus != 0 && li.OutPort != topology.PortXPlus {
				t.Fatalf("col %d->%d: arcs say +, route goes port %d", c, cd, li.OutPort)
			}
			if minus != 0 && li.OutPort != topology.PortXMinus {
				t.Fatalf("col %d->%d: arcs say -, route goes port %d", c, cd, li.OutPort)
			}
		}
	}
}

func TestFindRingLatinProperties(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 6, 7, 8} {
		sq, ok := findRingLatin(n)
		if !ok {
			t.Fatalf("n=%d: no ring Latin square found", n)
		}
		// Latin square: each slot exactly once per row and per column.
		for a := 0; a < n; a++ {
			rowSeen := make([]bool, n)
			colSeen := make([]bool, n)
			for b := 0; b < n; b++ {
				if sq[a][b] < 0 || sq[a][b] >= n {
					t.Fatalf("n=%d: slot %d out of range", n, sq[a][b])
				}
				if rowSeen[sq[a][b]] {
					t.Fatalf("n=%d: row %d repeats slot %d", n, a, sq[a][b])
				}
				rowSeen[sq[a][b]] = true
				if colSeen[sq[b][a]] {
					t.Fatalf("n=%d: column %d repeats slot %d", n, a, sq[b][a])
				}
				colSeen[sq[b][a]] = true
			}
		}
		// Arc disjointness per slot.
		for u := 0; u < n; u++ {
			var plus, minus uint64
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					if sq[a][b] != u {
						continue
					}
					p, m := ringArcs(a, b, n)
					if plus&p != 0 || minus&m != 0 {
						t.Fatalf("n=%d slot %d: overlapping arcs", n, u)
					}
					plus |= p
					minus |= m
				}
			}
		}
	}
}

func TestFindRingLatinRefusesLargeOrders(t *testing.T) {
	if _, ok := findRingLatin(9); ok {
		t.Error("order 9 should be refused (insufficient per-slot link capacity)")
	}
	if _, ok := findRingLatin(1); ok {
		t.Error("order 1 should be refused")
	}
}

func TestRingLatinCached(t *testing.T) {
	a, ok1 := RingLatin(8)
	b, ok2 := RingLatin(8)
	if !ok1 || !ok2 {
		t.Fatal("RingLatin(8) failed")
	}
	if &a[0] != &b[0] {
		t.Error("RingLatin not cached")
	}
}

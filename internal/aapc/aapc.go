// Package aapc constructs phased decompositions of the all-to-all
// personalized communication (AAPC) pattern: partitions of all N*(N-1)
// connection requests into contention-free phases, each of which is a valid
// network configuration.
//
// The ordered-AAPC scheduler (Fig. 5 of the paper) relies on such a set: any
// communication pattern embeds in AAPC, so scheduling requests in AAPC-phase
// order bounds the multiplexing degree for dense patterns by the number of
// AAPC phases — at most N^3/8 for an N x N torus (Hinrichs et al., SPAA'94).
//
// The torus decomposition here groups connections into offset classes
// (dx, dy): all sources translated by the same per-dimension hop counts.
// Within a class, sources whose coordinates agree modulo the offset
// magnitudes have link-disjoint L-shaped circuits, so the class splits into
// structured subphases. Classes are emitted longest-path-first and packed
// first-fit into phases; the structure keeps the packing near the link-load
// lower bound (63 for the paper's 8x8 torus; the paper quotes the N^3/8 = 64
// bound).
package aapc

import (
	"fmt"
	"sort"

	"repro/internal/network"
	"repro/internal/request"
	"repro/internal/topology"
)

// Set is a decomposition of the complete all-to-all pattern on a topology
// into contention-free phases.
type Set struct {
	// Topology the decomposition was built for.
	Topology network.Topology
	// Phases lists the contention-free configurations; their union is the
	// complete all-to-all request set.
	Phases []request.Set

	phaseOf map[request.Request]int
}

// NumPhases returns the number of phases in the decomposition.
func (s *Set) NumPhases() int { return len(s.Phases) }

// PhaseOf returns the index of the phase containing request r, and whether
// the request belongs to the decomposition (it does not when r is a
// self-loop or out of range).
func (s *Set) PhaseOf(r request.Request) (int, bool) {
	k, ok := s.phaseOf[r]
	return k, ok
}

// Validate checks that the set is a true partition of the all-to-all
// pattern into conflict-free configurations.
func (s *Set) Validate() error {
	n := network.TerminalCount(s.Topology)
	seen := make(map[request.Request]int)
	for k, phase := range s.Phases {
		occ := network.NewOccupancy()
		for _, r := range phase {
			p, err := s.Topology.Route(r.Src, r.Dst)
			if err != nil {
				return fmt.Errorf("aapc: phase %d request %v: %w", k, r, err)
			}
			if !occ.CanAdd(p) {
				return fmt.Errorf("aapc: phase %d not contention-free at %v", k, r)
			}
			occ.Add(p)
			seen[r]++
		}
	}
	want := n * (n - 1)
	if len(seen) != want {
		return fmt.Errorf("aapc: decomposition covers %d pairs, want %d", len(seen), want)
	}
	for r, c := range seen {
		if c != 1 {
			return fmt.Errorf("aapc: request %v appears %d times", r, c)
		}
	}
	return nil
}

// Decompose builds an AAPC configuration set for the topology. The torus
// gets the structured offset-class decomposition; other topologies fall
// back to longest-path-first first-fit packing, which is what the generic
// bound in the paper's section 3.3 requires (any fixed contention-free
// partition of AAPC works; structure only improves the constant).
func Decompose(t network.Topology) (*Set, error) {
	switch tt := t.(type) {
	case *topology.Torus:
		return decomposeTorus(tt)
	default:
		return decomposeGeneric(t)
	}
}

// pairKey orders requests for deterministic first-fit packing.
type orderedReq struct {
	req  request.Request
	path network.Path
	key  [4]int // sort key fields, compared lexicographically descending/ascending as built
}

// pack first-fit packs pre-ordered requests into contention-free phases.
func pack(t network.Topology, ordered []orderedReq) (*Set, error) {
	var phases []request.Set
	var occs []*network.Occupancy
	for _, or := range ordered {
		placed := false
		for k := range phases {
			if occs[k].CanAdd(or.path) {
				occs[k].Add(or.path)
				phases[k] = append(phases[k], or.req)
				placed = true
				break
			}
		}
		if !placed {
			occ := network.NewOccupancy()
			occ.Add(or.path)
			occs = append(occs, occ)
			phases = append(phases, request.Set{or.req})
		}
	}
	s := &Set{Topology: t, Phases: phases, phaseOf: make(map[request.Request]int)}
	for k, phase := range phases {
		for _, r := range phase {
			s.phaseOf[r] = k
		}
	}
	return s, nil
}

// decomposeTorus builds the tight product decomposition when per-dimension
// ring Latin squares exist (both dimensions <= 8 with balanced ties, which
// covers the paper's 8x8 torus and reaches its N^3/8 = 64 phase bound), and
// falls back to structured first-fit packing otherwise.
func decomposeTorus(t *topology.Torus) (*Set, error) {
	if t.Tie == topology.TieBalanced {
		lw, okW := RingLatin(t.W)
		lh, okH := RingLatin(t.H)
		if okW && okH {
			return productDecomposition(t, lw, lh)
		}
	}
	return decomposeTorusFirstFit(t)
}

// productDecomposition assigns connection ((r,c) -> (r',c')) to phase
// Lw[c][c'] * H + Lh[r][r']. Latin-square row/column uniqueness bounds each
// PE to one injection and one ejection per phase; per-slot arc disjointness
// of the ring squares makes all x-arcs (same row) and y-arcs (same column)
// of a phase link-disjoint. See ringlatin.go for the argument.
func productDecomposition(t *topology.Torus, lw, lh [][]int) (*Set, error) {
	n := t.NumNodes()
	raw := make([]request.Set, t.W*t.H)
	for s := 0; s < n; s++ {
		sr, sc := t.Coord(network.NodeID(s))
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			dr, dc := t.Coord(network.NodeID(d))
			k := lw[sc][dc]*t.H + lh[sr][dr]
			raw[k] = append(raw[k], request.Request{Src: network.NodeID(s), Dst: network.NodeID(d)})
		}
	}
	set := &Set{Topology: t, phaseOf: make(map[request.Request]int, n*(n-1))}
	for _, phase := range raw {
		if len(phase) == 0 {
			continue // a phase of two identity slots carries only self pairs
		}
		for _, r := range phase {
			set.phaseOf[r] = len(set.Phases)
		}
		set.Phases = append(set.Phases, phase)
	}
	return set, nil
}

// decomposeTorusFirstFit orders all pairs by offset class, longest classes
// first, and within a class by structured subphase (source coordinates
// modulo the offset magnitudes), then first-fit packs.
func decomposeTorusFirstFit(t *topology.Torus) (*Set, error) {
	n := t.NumNodes()
	ordered := make([]orderedReq, 0, n*(n-1))
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			req := request.Request{Src: network.NodeID(s), Dst: network.NodeID(d)}
			p, err := t.Route(req.Src, req.Dst)
			if err != nil {
				return nil, err
			}
			dx, dy := t.Offsets(req.Src, req.Dst)
			mx, my := maxi(1, absi(dx)), maxi(1, absi(dy))
			sr, sc := t.Coord(req.Src)
			ordered = append(ordered, orderedReq{
				req:  req,
				path: p,
				// Class: total length desc, then (dx, dy) for determinism.
				// Subphase within class: (col mod |dx|, row mod |dy|).
				key: [4]int{
					-(absi(dx) + absi(dy)),
					dx*1000 + dy,
					(sc%mx)*1000 + sr%my,
					sr*1000 + sc,
				},
			})
		}
	}
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i].key, ordered[j].key
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return pack(t, ordered)
}

// decomposeGeneric orders all pairs longest-path-first and first-fit packs.
func decomposeGeneric(t network.Topology) (*Set, error) {
	n := network.TerminalCount(t)
	ordered := make([]orderedReq, 0, n*(n-1))
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			req := request.Request{Src: network.NodeID(s), Dst: network.NodeID(d)}
			p, err := t.Route(req.Src, req.Dst)
			if err != nil {
				return nil, err
			}
			ordered = append(ordered, orderedReq{
				req:  req,
				path: p,
				key:  [4]int{-p.Len(), s, d, 0},
			})
		}
	}
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i].key, ordered[j].key
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return pack(t, ordered)
}

func absi(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

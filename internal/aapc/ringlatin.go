package aapc

import (
	"sort"
	"sync"
)

// Ring Latin squares.
//
// The tight torus decomposition builds the AAPC phase of a connection from
// per-dimension ring schedules: phase((r,c)->(r',c')) = Lw[c][c']*H' +
// Lh[r][r'], where L is a Latin square of order n with the property that for
// every slot u the pairs {(a,b) : L[a][b] = u} form a permutation whose
// shortest-path ring arcs are link-disjoint in each direction (self pairs
// occupy no links).
//
// Row/column uniqueness of the Latin square makes every PE source and
// destination of at most one connection per torus phase; arc disjointness
// per slot makes the x-arcs (which share a row) and y-arcs (which share a
// column) of a phase link-disjoint. For n = 8 the + arcs of each slot must
// tile the 8 clockwise links exactly (total demand 64 hops over 8 slots of
// capacity 8), which is why naive packings cannot reach the bound and a
// search is used. The resulting 8x8 torus decomposition has exactly
// 64 = N^3/8 phases, the paper's bound.

// ringArcs returns the + and - direction link masks of the shortest-path
// arc from a to b on a ring of size n with balanced tie-breaking (ties go
// clockwise from even sources). +link i is i->i+1; -link i is i->i-1.
func ringArcs(a, b, n int) (plus, minus uint64) {
	d := ((b-a)%n + n) % n
	if d == 0 {
		return 0, 0
	}
	up := 2*d < n || (2*d == n && a%2 == 0)
	if up {
		for k := 0; k < d; k++ {
			plus |= 1 << uint((a+k)%n)
		}
		return plus, 0
	}
	down := n - d
	for k := 0; k < down; k++ {
		minus |= 1 << uint((a-k+n)%n)
	}
	return 0, minus
}

// ringSlotState tracks one slot's resource usage during the search.
type ringSlotState struct {
	srcUsed, dstUsed uint64
	plus, minus      uint64
}

// findRingLatin searches for a Latin square of order n whose slots have
// link-disjoint arcs. It returns (square, true) on success; the search is
// only attempted for n <= 8, beyond which per-slot link capacity is
// provably insufficient (total clockwise demand exceeds n hops per slot).
func findRingLatin(n int) ([][]int, bool) {
	if n < 2 || n > 8 {
		return nil, false
	}
	type cell struct {
		a, b        int
		plus, minus uint64
		hops        int
	}
	cells := make([]cell, 0, n*n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			p, m := ringArcs(a, b, n)
			cells = append(cells, cell{a, b, p, m, popcount(p) + popcount(m)})
		}
	}
	// Longest arcs first: they are the hardest to place, and deciding them
	// early keeps backtracking shallow.
	sort.SliceStable(cells, func(i, j int) bool { return cells[i].hops > cells[j].hops })

	L := make([][]int, n)
	for i := range L {
		L[i] = make([]int, n)
		for j := range L[i] {
			L[i][j] = -1
		}
	}
	slots := make([]ringSlotState, n)

	var dfs func(i int) bool
	dfs = func(i int) bool {
		if i == len(cells) {
			return true
		}
		c := cells[i]
		for u := 0; u < n; u++ {
			s := &slots[u]
			if s.srcUsed&(1<<uint(c.a)) != 0 || s.dstUsed&(1<<uint(c.b)) != 0 {
				continue
			}
			if s.plus&c.plus != 0 || s.minus&c.minus != 0 {
				continue
			}
			s.srcUsed |= 1 << uint(c.a)
			s.dstUsed |= 1 << uint(c.b)
			s.plus |= c.plus
			s.minus |= c.minus
			L[c.a][c.b] = u
			if dfs(i + 1) {
				return true
			}
			s.srcUsed &^= 1 << uint(c.a)
			s.dstUsed &^= 1 << uint(c.b)
			s.plus &^= c.plus
			s.minus &^= c.minus
			L[c.a][c.b] = -1
		}
		return false
	}
	if !dfs(0) {
		return nil, false
	}
	return L, true
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// ringLatinCache memoizes squares per order.
var ringLatinCache sync.Map // map[int]ringLatinResult

type ringLatinResult struct {
	square [][]int
	ok     bool
}

// RingLatin returns the memoized ring Latin square of order n, if one
// exists.
func RingLatin(n int) ([][]int, bool) {
	if v, ok := ringLatinCache.Load(n); ok {
		r := v.(ringLatinResult)
		return r.square, r.ok
	}
	sq, ok := findRingLatin(n)
	ringLatinCache.Store(n, ringLatinResult{sq, ok})
	return sq, ok
}

package aapc

import (
	"testing"

	"repro/internal/network"
	"repro/internal/request"
	"repro/internal/topology"
)

func TestDecomposePhaseOfCoversAllPairs(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	set, err := Decompose(torus)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 64; s++ {
		for d := 0; d < 64; d++ {
			r := request.Request{Src: network.NodeID(s), Dst: network.NodeID(d)}
			k, ok := set.PhaseOf(r)
			if s == d {
				if ok {
					t.Fatalf("self pair %v assigned to phase %d", r, k)
				}
				continue
			}
			if !ok {
				t.Fatalf("pair %v missing from decomposition", r)
			}
			if k < 0 || k >= set.NumPhases() {
				t.Fatalf("pair %v in out-of-range phase %d", r, k)
			}
		}
	}
}

func TestDecomposeTorus4x4(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	set, err := Decompose(torus)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	// The product construction gives at most W*H phases.
	if set.NumPhases() > 16 {
		t.Errorf("4x4 torus decomposition has %d phases, want <= 16", set.NumPhases())
	}
}

func TestDecomposeRectangularTorus(t *testing.T) {
	torus := topology.NewTorus(4, 8)
	set, err := Decompose(torus)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	if set.NumPhases() > 32 {
		t.Errorf("4x8 torus decomposition has %d phases, want <= 32", set.NumPhases())
	}
}

func TestDecomposeNonBalancedTieFallsBack(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	torus.Tie = topology.TiePositive
	set, err := Decompose(torus)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	// With all ties forced positive, the +x link load of the all-to-all
	// rises to N^2/8 + N/4 per link per row, so more phases are inevitable.
	if set.NumPhases() < 64 {
		t.Errorf("positive-tie decomposition has %d phases, expected >= 64", set.NumPhases())
	}
}

func TestDecomposeGenericTopologies(t *testing.T) {
	topos := []network.Topology{
		topology.NewLinear(6),
		topology.NewRing(8),
		topology.NewMesh(4, 4),
		topology.NewHypercube(4),
	}
	for _, topo := range topos {
		set, err := Decompose(topo)
		if err != nil {
			t.Fatalf("%s: %v", topo.Name(), err)
		}
		if err := set.Validate(); err != nil {
			t.Fatalf("%s: %v", topo.Name(), err)
		}
	}
}

func TestLargeTorusFirstFitPath(t *testing.T) {
	// 10 > 8 per dimension: no ring Latin square exists, so the structured
	// first-fit fallback must produce a valid decomposition.
	torus := topology.NewTorus(10, 10)
	set, err := Decompose(torus)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	t.Logf("10x10 torus: %d phases (link-load lower bound %d)", set.NumPhases(), 10*10*10/8)
}

func TestPhasesAreNonEmpty(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	set, err := Decompose(torus)
	if err != nil {
		t.Fatal(err)
	}
	for k, phase := range set.Phases {
		if len(phase) == 0 {
			t.Fatalf("phase %d is empty", k)
		}
	}
}

package cliutil

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"repro/internal/network"
	"repro/internal/schedule"
	"repro/internal/topology"
)

// ParseScheduler resolves a scheduling-algorithm name to its implementation.
// The names match the -alg flags of the cmd/ tools and the compile service's
// alg parameter: greedy, coloring, aapc, combined, combined-seq, exact. An
// empty name selects the compiler's default, the paper's combined algorithm.
func ParseScheduler(name string) (schedule.Scheduler, error) {
	switch name {
	case "", "combined":
		return schedule.Combined{}, nil
	case "combined-seq":
		return schedule.Combined{Sequential: true}, nil
	case "greedy":
		return schedule.Greedy{}, nil
	case "coloring":
		return schedule.Coloring{}, nil
	case "aapc":
		return schedule.OrderedAAPC{}, nil
	case "exact":
		return schedule.Exact{}, nil
	default:
		return nil, fmt.Errorf("cliutil: unknown scheduler %q (want greedy, coloring, aapc, combined, combined-seq or exact)", name)
	}
}

// ParseTopology resolves a topology name of the form every
// network.Topology.Name() produces — "torus-8x8", "mesh-4x4",
// "torus3d-4x4x4", "ring-16", "linear-8", "hypercube-6", "omega-64" — back
// to a topology value, validating dimensions before construction so bad
// input yields an error, never a panic.
func ParseTopology(name string) (network.Topology, error) {
	family, arg, ok := strings.Cut(name, "-")
	if !ok || arg == "" {
		return nil, fmt.Errorf("cliutil: topology %q not of the form family-dims (e.g. torus-8x8)", name)
	}
	dims, err := parseDims(arg)
	if err != nil {
		return nil, fmt.Errorf("cliutil: topology %q: %w", name, err)
	}
	bad := func(why string) (network.Topology, error) {
		return nil, fmt.Errorf("cliutil: topology %q: %s", name, why)
	}
	switch family {
	case "torus":
		if len(dims) != 2 || dims[0] < 2 || dims[1] < 2 {
			return bad("want torus-WxH with W,H >= 2")
		}
		return topology.NewTorus(dims[0], dims[1]), nil
	case "mesh":
		if len(dims) != 2 || dims[0] < 2 || dims[1] < 2 {
			return bad("want mesh-WxH with W,H >= 2")
		}
		return topology.NewMesh(dims[0], dims[1]), nil
	case "torus3d":
		if len(dims) != 3 || dims[0] < 2 || dims[1] < 2 || dims[2] < 2 {
			return bad("want torus3d-XxYxZ with X,Y,Z >= 2")
		}
		return topology.NewTorus3D(dims[0], dims[1], dims[2]), nil
	case "ring":
		if len(dims) != 1 || dims[0] < 3 {
			return bad("want ring-N with N >= 3")
		}
		return topology.NewRing(dims[0]), nil
	case "linear":
		if len(dims) != 1 || dims[0] < 2 {
			return bad("want linear-N with N >= 2")
		}
		return topology.NewLinear(dims[0]), nil
	case "hypercube":
		if len(dims) != 1 || dims[0] < 1 || dims[0] > 20 {
			return bad("want hypercube-D with dimension 1..20")
		}
		return topology.NewHypercube(dims[0]), nil
	case "omega":
		if len(dims) != 1 || dims[0] < 4 || dims[0]&(dims[0]-1) != 0 || bits.Len(uint(dims[0])) > 21 {
			return bad("want omega-N with N a power of two >= 4")
		}
		return topology.NewOmega(dims[0]), nil
	default:
		return bad("unknown family (want torus, mesh, torus3d, ring, linear, hypercube or omega)")
	}
}

// parseDims splits an "8x8"-style dimension list.
func parseDims(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad dimension %q", p)
		}
		dims = append(dims, v)
	}
	return dims, nil
}

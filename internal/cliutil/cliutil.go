// Package cliutil holds the small flag-parsing helpers the cmd/ tools
// share, so list-valued flags behave identically everywhere.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseIntList parses a comma-separated integer list ("1,2, 5") into its
// values, tolerating whitespace around each element. An empty (or
// all-whitespace) string yields nil, so optional list flags can distinguish
// "not given" from "given badly". Empty elements ("1,,2") are errors, as is
// anything strconv.Atoi rejects; the error names the offending element.
func ParseIntList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for i, part := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("cliutil: element %d of %q: %w", i+1, s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

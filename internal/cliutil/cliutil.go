// Package cliutil holds the small flag-parsing helpers the cmd/ tools
// share, so list-valued flags behave identically everywhere, plus the
// shared worker-count resolution every "-workers N (0 = GOMAXPROCS)" knob
// delegates to. It deliberately has no repro dependencies so that any
// package — including internal/schedule at the bottom of the stack — can
// import it; the scheduler and topology name parsers that used to live
// here moved next to the types they construct (schedule.ParseScheduler,
// topology.Parse).
package cliutil

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
)

// Workers resolves a requested worker count: a positive request is taken
// verbatim, anything else (the conventional "0 = GOMAXPROCS" flag default)
// resolves to runtime.GOMAXPROCS(0). Every pool in the tree — the
// conflict-graph build, batch compilation, trial sweeps, the service worker
// pool — resolves through here so "default" means the same thing
// everywhere.
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// ParseIntList parses a comma-separated integer list ("1,2, 5") into its
// values, tolerating whitespace around each element. An empty (or
// all-whitespace) string yields nil, so optional list flags can distinguish
// "not given" from "given badly". Empty elements ("1,,2") are errors, as is
// anything strconv.Atoi rejects; the error names the offending element.
func ParseIntList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for i, part := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("cliutil: element %d of %q: %w", i+1, s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

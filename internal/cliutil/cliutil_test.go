package cliutil

import (
	"reflect"
	"runtime"
	"testing"
)

func TestWorkers(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64} {
		if got := Workers(n); got != n {
			t.Errorf("Workers(%d) = %d, want the request verbatim", n, got)
		}
	}
	want := runtime.GOMAXPROCS(0)
	for _, n := range []int{0, -1, -100} {
		if got := Workers(n); got != want {
			t.Errorf("Workers(%d) = %d, want GOMAXPROCS = %d", n, got, want)
		}
	}
}

func TestParseIntList(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		err  bool
	}{
		{"", nil, false},
		{"   ", nil, false},
		{"5", []int{5}, false},
		{"1,2,5", []int{1, 2, 5}, false},
		{" 1 , 2 ,\t10", []int{1, 2, 10}, false},
		{"-3,0,3", []int{-3, 0, 3}, false},
		{"1,,2", nil, true},
		{"1,2,", nil, true},
		{"a,b", nil, true},
		{"1.5", nil, true},
	}
	for _, c := range cases {
		got, err := ParseIntList(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseIntList(%q): want error, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseIntList(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseIntList(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

package cliutil

import (
	"testing"

	"repro/internal/schedule"
)

func TestParseScheduler(t *testing.T) {
	for name, want := range map[string]string{
		"":             "combined",
		"combined":     "combined",
		"combined-seq": "combined",
		"greedy":       "greedy",
		"coloring":     "coloring",
		"aapc":         "aapc",
		"exact":        "exact",
	} {
		sch, err := ParseScheduler(name)
		if err != nil {
			t.Fatalf("ParseScheduler(%q): %v", name, err)
		}
		if sch.Name() != want {
			t.Fatalf("ParseScheduler(%q).Name() = %q, want %q", name, sch.Name(), want)
		}
	}
	if _, err := ParseScheduler("nope"); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if c, _ := ParseScheduler("combined-seq"); !c.(schedule.Combined).Sequential {
		t.Fatal("combined-seq not sequential")
	}
}

func TestParseTopologyRoundTrip(t *testing.T) {
	for _, name := range []string{
		"torus-8x8", "mesh-4x4", "torus3d-4x4x4", "ring-16", "linear-8",
		"hypercube-6", "omega-64",
	} {
		topo, err := ParseTopology(name)
		if err != nil {
			t.Fatalf("ParseTopology(%q): %v", name, err)
		}
		if topo.Name() != name {
			t.Fatalf("ParseTopology(%q).Name() = %q", name, topo.Name())
		}
	}
}

func TestParseTopologyRejects(t *testing.T) {
	for _, name := range []string{
		"", "torus", "torus-", "torus-8", "torus-8x8x8", "torus-1x8",
		"mesh-8", "ring-2", "linear-1", "hypercube-0", "hypercube-21",
		"omega-6", "omega-2", "klein-8", "torus-axb", "torus-8x-1",
	} {
		if _, err := ParseTopology(name); err == nil {
			t.Fatalf("ParseTopology(%q) accepted", name)
		}
	}
}

package delta_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/delta"
	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/patterns"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/topology"
)

func mustSchedule(t *testing.T, sch schedule.Scheduler, topo network.Topology, set request.Set) *schedule.Result {
	t.Helper()
	res, err := sch.Schedule(topo, set)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestComputeDiff(t *testing.T) {
	r := func(s, d int) request.Request {
		return request.Request{Src: network.NodeID(s), Dst: network.NodeID(d)}
	}
	cases := []struct {
		name         string
		base, target request.Set
		added, rmvd  int
	}{
		{"identical", request.Set{r(0, 1), r(1, 2)}, request.Set{r(1, 2), r(0, 1)}, 0, 0},
		{"pure add", request.Set{r(0, 1)}, request.Set{r(0, 1), r(2, 3)}, 1, 0},
		{"pure remove", request.Set{r(0, 1), r(2, 3)}, request.Set{r(2, 3)}, 0, 1},
		{"swap", request.Set{r(0, 1), r(2, 3)}, request.Set{r(0, 1), r(4, 5)}, 1, 1},
		{"duplicate counts", request.Set{r(0, 1), r(0, 1), r(0, 1)}, request.Set{r(0, 1)}, 0, 2},
		{"duplicate grows", request.Set{r(0, 1)}, request.Set{r(0, 1), r(0, 1)}, 1, 0},
		{"disjoint", request.Set{r(0, 1)}, request.Set{r(2, 3)}, 1, 1},
		{"empty base", nil, request.Set{r(0, 1)}, 1, 0},
		{"empty target", request.Set{r(0, 1)}, nil, 0, 1},
	}
	for _, tc := range cases {
		d := delta.Compute(tc.base, tc.target)
		if len(d.Added) != tc.added || len(d.Removed) != tc.rmvd {
			t.Errorf("%s: diff = +%d/-%d, want +%d/-%d", tc.name, len(d.Added), len(d.Removed), tc.added, tc.rmvd)
		}
		if d.Size() != tc.added+tc.rmvd {
			t.Errorf("%s: Size() = %d", tc.name, d.Size())
		}
	}
}

func TestPatchDriftedPattern(t *testing.T) {
	// Drift a hypercube pattern by a handful of requests; the patch must
	// serve exactly the target and stay near the from-scratch degree.
	torus := topology.NewTorus(8, 8)
	base, err := patterns.Hypercube(64)
	if err != nil {
		t.Fatal(err)
	}
	baseRes := mustSchedule(t, schedule.Combined{}, torus, base)

	target := base.Clone()[:len(base)-5]
	target = append(target, request.Set{{Src: 0, Dst: 63}, {Src: 17, Dst: 42}, {Src: 5, Dst: 58}}...)

	res, evicted, err := delta.Patch(baseRes, torus, target)
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 0 {
		t.Errorf("evicted %d survivors on an unchanged topology", evicted)
	}
	if err := res.Validate(target); err != nil {
		t.Fatalf("patched schedule invalid: %v", err)
	}
	if res.Algorithm != baseRes.Algorithm+"+delta" {
		t.Errorf("algorithm = %q", res.Algorithm)
	}
	scratch := mustSchedule(t, schedule.Combined{}, torus, target)
	if float64(res.Degree()) > delta.DefaultBound*float64(scratch.Degree()) {
		t.Errorf("patched degree %d too far above from-scratch %d", res.Degree(), scratch.Degree())
	}
	// The base is untouched.
	if err := baseRes.Validate(base); err != nil {
		t.Fatalf("Patch corrupted the base: %v", err)
	}
}

func TestPatchOntoFaultMaskedTopology(t *testing.T) {
	// Rebase a healthy schedule onto a masked view: circuits whose routes
	// die are detoured, everything still validates, and the patched
	// schedule carries real traffic through the compiled simulator.
	torus := topology.NewTorus(8, 8)
	set, err := patterns.Hypercube(64)
	if err != nil {
		t.Fatal(err)
	}
	healthy := mustSchedule(t, schedule.Combined{}, torus, set)

	faults := fault.SetOf(fault.RandomLinkPlan(torus, 1996, 3, 0))
	masked := fault.NewMasked(torus, faults)
	defer network.InvalidateRoutes(masked)

	res, _, err := delta.Patch(healthy, masked, set)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(set); err != nil {
		t.Fatalf("rebased schedule invalid on the masked view: %v", err)
	}
	// Validation of the patched schedule end to end: the compiled
	// simulator must deliver every message over it.
	msgs := make([]sim.Message, len(set))
	for i, q := range set {
		msgs[i] = sim.Message{Src: int(q.Src), Dst: int(q.Dst), Flits: 3}
	}
	out, err := sim.RunCompiled(res, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Time < 1 || len(out.Finish) != len(msgs) {
		t.Fatalf("degenerate compiled run: time %d, %d finish times", out.Time, len(out.Finish))
	}
	for i, fin := range out.Finish {
		if fin < 1 {
			t.Fatalf("message %d never delivered on the patched schedule", i)
		}
	}
}

func TestRecompilePatchesWithinBound(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	base, err := patterns.Hypercube(64)
	if err != nil {
		t.Fatal(err)
	}
	baseRes := mustSchedule(t, schedule.Combined{}, torus, base)
	target := append(base.Clone()[:len(base)-4], request.Request{Src: 9, Dst: 33})

	res, st, err := delta.Recompile(torus, baseRes, target, delta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Patched {
		t.Fatalf("expected patch acceptance, fell back: %s", st.Fallback)
	}
	if st.Added != 1 || st.Removed != 4 || st.BaseDegree != baseRes.Degree() {
		t.Errorf("stats = %+v", st)
	}
	if st.Degree != res.Degree() || st.Estimate < 1 {
		t.Errorf("stats degree/estimate = %+v", st)
	}
	if err := res.Validate(target); err != nil {
		t.Fatal(err)
	}
}

func TestRecompileFallsBackOnBound(t *testing.T) {
	// A bound below 1.0 is unsatisfiable (degree >= lower bound always),
	// so Recompile must reject every patch and run the full compile.
	torus := topology.NewTorus(8, 8)
	base := patterns.Ring(64)
	baseRes := mustSchedule(t, schedule.Combined{}, torus, base)
	target := append(base.Clone(), request.Request{Src: 0, Dst: 32})

	res, st, err := delta.Recompile(torus, baseRes, target, delta.Options{Bound: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if st.Patched {
		t.Fatal("unsatisfiable bound accepted a patch")
	}
	if st.Fallback == "" {
		t.Fatal("fallback reason missing")
	}
	if err := res.Validate(target); err != nil {
		t.Fatal(err)
	}
	// The fallback is exactly what the scheduler produces from scratch.
	scratch := mustSchedule(t, schedule.Combined{}, torus, target)
	if !bytes.Equal(store.EncodeResult(res), store.EncodeResult(scratch)) {
		t.Fatal("fallback result differs from a from-scratch compile")
	}
}

func TestRecompileNoBase(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	target := patterns.Ring(64)
	res, st, err := delta.Recompile(torus, nil, target, delta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Patched || st.Fallback != "no base schedule" {
		t.Fatalf("stats = %+v", st)
	}
	if err := res.Validate(target); err != nil {
		t.Fatal(err)
	}
}

func TestRecompileDisconnectedTarget(t *testing.T) {
	// Failing every link of node 0 disconnects requests touching it; delta
	// must surface the scheduler's canonical error, not invent one.
	torus := topology.NewTorus(4, 4)
	set := patterns.Ring(16)
	healthy := mustSchedule(t, schedule.Combined{}, torus, set)
	faults := fault.NewSet()
	faults.FailNode(0)
	masked := fault.NewMasked(torus, faults)
	defer network.InvalidateRoutes(masked)
	_, st, err := delta.Recompile(masked, healthy, set, delta.Options{})
	if err == nil {
		t.Fatal("disconnected target recompiled successfully")
	}
	if st.Patched {
		t.Fatal("stats claim a patch despite the error")
	}
}

// TestPatchDeterminism is the delta layer's half of the PR's determinism
// guarantee: the same base and target produce byte-identical encodings on
// every run, whatever scheduler rides along in Options (the patch path
// never consults it), and a store round-trip of the patched schedule is a
// fixed point.
func TestPatchDeterminism(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	rng := rand.New(rand.NewSource(1996))
	full, err := patterns.Random(rng, 64, 400)
	if err != nil {
		t.Fatal(err)
	}
	base, extraPool := full[:300], full[300:]
	baseRes := mustSchedule(t, schedule.Combined{}, torus, base)
	target := append(base.Clone()[:280], extraPool...)

	var first []byte
	for i, opt := range []delta.Options{
		{},
		{Scheduler: schedule.Combined{Sequential: true}},
		{Scheduler: schedule.Greedy{}},
	} {
		res, st, err := delta.Recompile(torus, baseRes, target, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Patched {
			t.Fatalf("variant %d fell back (%s); determinism check needs the patch path", i, st.Fallback)
		}
		enc := store.EncodeResult(res)
		if first == nil {
			first = enc
		} else if !bytes.Equal(first, enc) {
			t.Fatalf("variant %d produced a different patched schedule", i)
		}
		// Store round-trip fixed point.
		dec, err := store.DecodeResult(enc)
		if err != nil {
			t.Fatal(err)
		}
		back, err := dec.Result(torus)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(store.EncodeResult(back), enc) {
			t.Fatal("store round-trip is not a fixed point for a patched schedule")
		}
	}
}

func TestRequestsFlatten(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	set := patterns.Ring(16)
	res := mustSchedule(t, schedule.Greedy{}, torus, set)
	flat := delta.Requests(res)
	if d := delta.Compute(flat, set); d.Size() != 0 {
		t.Fatalf("Requests() multiset drifted from the scheduled set: %+v", d)
	}
}

package delta

import (
	"fmt"
	"strings"

	"repro/internal/network"
	"repro/internal/request"
	"repro/internal/schedule"
)

// Session is the streaming form of Recompile: it keeps the colored schedule
// alive between recompiles as a schedule.Incremental, so a sequence of
// drifting patterns on one topology pays the eviction/insertion cost of
// each diff instead of re-walking the whole base schedule per call. The
// produced schedules are byte-identical to chaining the stateless
// Recompile — same patch rules, same quality gate, same fallback — which
// the package tests assert; only the cost differs.
//
// A Session is bound to one topology. Rebasing onto a different (e.g.
// fault-masked) topology view needs survivor re-routing, which the live
// structure does not model; use Patch or Recompile for that.
//
// A Session is not safe for concurrent use.
type Session struct {
	topo network.Topology
	opt  Options
	inc  *schedule.Incremental
	alg  string // algorithm name of the schedule the structure holds
}

// NewSession starts a session on topo. base may be nil: the first
// Recompile then runs a full compile.
func NewSession(topo network.Topology, base *schedule.Result, opt Options) (*Session, error) {
	s := &Session{topo: topo, opt: opt}
	if base != nil {
		if base.Topology.Name() != topo.Name() {
			return nil, fmt.Errorf("delta: session on %s cannot hold a %s schedule", topo.Name(), base.Topology.Name())
		}
		inc, err := schedule.NewIncremental(base)
		if err != nil {
			return nil, err
		}
		s.inc = inc
		s.alg = base.Algorithm
	}
	return s, nil
}

// Degree returns the multiplexing degree of the held schedule, 0 when empty.
func (s *Session) Degree() int {
	if s.inc == nil {
		return 0
	}
	return s.inc.Degree()
}

// Recompile produces a schedule for target, patching the live schedule
// incrementally and falling back to a full compile under exactly the
// Recompile rules (no base, patch failure, quality gate). Either way the
// session afterwards holds the returned schedule, which is detached and
// safe to retain.
func (s *Session) Recompile(target request.Set) (*schedule.Result, Stats, error) {
	var st Stats
	full := func(reason string) (*schedule.Result, Stats, error) {
		st.Patched = false
		st.Fallback = reason
		res, err := s.opt.scheduler().Schedule(s.topo, target)
		if err != nil {
			return nil, st, err
		}
		st.Degree = res.Degree()
		if err := s.rebase(res); err != nil {
			return nil, st, err
		}
		return res, st, nil
	}
	if s.inc == nil {
		return full("no base schedule")
	}
	st.BaseDegree = s.inc.Degree()
	if err := target.Validate(s.topo); err != nil {
		return nil, st, fmt.Errorf("delta: %w", err)
	}
	added, removed, err := s.inc.Update(target)
	if err != nil {
		// The live structure may now hold a half-applied patch; the full
		// compile below rebases it onto a consistent schedule.
		return full(fmt.Sprintf("patch failed: %v", err))
	}
	st.Added, st.Removed = added, removed
	alg := s.alg
	if !strings.HasSuffix(alg, "+delta") {
		alg += "+delta"
	}
	res := s.inc.Result(alg)
	if err := coversExactly(res, target); err != nil {
		return full(fmt.Sprintf("patched schedule invalid: %v", err))
	}
	lb, err := schedule.LowerBound(s.topo, target)
	if err != nil {
		return full(fmt.Sprintf("estimating from-scratch degree: %v", err))
	}
	if lb < 1 {
		lb = 1
	}
	st.Estimate = lb
	if float64(res.Degree()) > s.opt.bound()*float64(lb) {
		return full(fmt.Sprintf("patched degree %d exceeds %.2f x estimate %d", res.Degree(), s.opt.bound(), lb))
	}
	st.Patched = true
	st.Degree = res.Degree()
	s.alg = alg
	return s.inc.Detach(alg), st, nil
}

// rebase rebinds the live structure to a freshly compiled schedule.
func (s *Session) rebase(res *schedule.Result) error {
	if s.inc == nil {
		inc, err := schedule.NewIncremental(res)
		if err != nil {
			return err
		}
		s.inc = inc
	} else if err := s.inc.Reset(res); err != nil {
		return err
	}
	s.alg = res.Algorithm
	return nil
}

package delta_test

import (
	"testing"

	"repro/internal/delta"
	"repro/internal/network"
	"repro/internal/request"
)

// setFromBytes decodes a byte string into a request multiset on a 16-node
// network: consecutive byte pairs become (src, dst) mod 16, self-loops
// skipped. Duplicates are kept — multiset semantics are the point.
func setFromBytes(data []byte) request.Set {
	var out request.Set
	for i := 0; i+1 < len(data); i += 2 {
		src, dst := network.NodeID(data[i]%16), network.NodeID(data[i+1]%16)
		if src == dst {
			continue
		}
		out = append(out, request.Request{Src: src, Dst: dst})
	}
	return out
}

func counts(s request.Set) map[request.Request]int {
	m := make(map[request.Request]int, len(s))
	for _, r := range s {
		m[r]++
	}
	return m
}

// FuzzDiff drives delta.Compute with arbitrary multiset pairs and checks
// the algebra: base − Removed + Added must round-trip to exactly the
// target multiset, Removed must be drawn from the base, Added from the
// target, and no request may sit on both sides of the diff.
func FuzzDiff(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, []byte{0, 1, 4, 5})
	f.Add([]byte{0, 1, 0, 1, 0, 1}, []byte{0, 1})
	f.Add([]byte{}, []byte{7, 8})
	f.Add([]byte{3, 3, 5, 5}, []byte{2, 9, 2, 9, 2, 9})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		base, target := setFromBytes(a), setFromBytes(b)
		d := delta.Compute(base, target)

		got := counts(base)
		for _, r := range d.Removed {
			got[r]--
			if got[r] < 0 {
				t.Fatalf("removed %v more times than the base holds it", r)
			}
		}
		for _, r := range d.Added {
			got[r]++
		}
		want := counts(target)
		for r, n := range got {
			if n != want[r] {
				t.Fatalf("apply(base, diff) has %d of %v, target has %d", n, r, want[r])
			}
		}
		for r, n := range want {
			if n != got[r] {
				t.Fatalf("target has %d of %v, apply(base, diff) has %d", n, r, got[r])
			}
		}

		// Added ⊆ target (multiset-wise).
		addCounts := counts(d.Added)
		for r, n := range addCounts {
			if n > want[r] {
				t.Fatalf("added %d of %v, target only holds %d", n, r, want[r])
			}
		}
		// Minimality: nothing is both added and removed.
		for r := range addCounts {
			for _, q := range d.Removed {
				if q == r {
					t.Fatalf("%v appears on both sides of the diff", r)
				}
			}
		}
	})
}

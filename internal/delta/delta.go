// Package delta is the incremental recompiler: given a previously compiled
// schedule (the base) and a drifted target pattern, it produces a schedule
// for the target by patching the base — evicting departed circuits from
// their configurations and first-fit inserting arrivals — instead of
// rescheduling from scratch.
//
// This is the paper's amortization argument carried one step further:
// compiled communication already pays the scheduling cost once per pattern;
// delta compilation makes a *family* of nearby patterns pay it once. The
// same machinery rebases a healthy schedule onto a fault-masked topology
// view (internal/fault): circuits whose routes survive keep their slots,
// circuits broken by the mask are evicted and reinserted over detour
// routes, so a single failed link perturbs the schedule locally instead of
// forcing a global recompile.
//
// Patching is a heuristic, so quality is guarded, not assumed: Recompile
// accepts a patched schedule only when its multiplexing degree is within a
// configurable bound of the estimated from-scratch degree (the
// schedule.LowerBound of the target); otherwise it falls back to a full
// compile. Either way the returned schedule validates against the target.
//
// Everything here is deterministic: diffs preserve input order, eviction
// walks configurations in slot order, insertion is first-fit — so a patch
// of the same base with the same target is byte-identical (under the
// store's encoding) regardless of worker counts or scheduling of the
// caller.
package delta

import (
	"fmt"
	"strings"

	"repro/internal/network"
	"repro/internal/request"
	"repro/internal/schedule"
)

// DefaultBound is the degree-quality gate: a patched schedule whose
// multiplexing degree exceeds DefaultBound × the from-scratch estimate is
// discarded in favor of a full compile.
const DefaultBound = 1.5

// Diff is the multiset difference between a base pattern and a target:
// applying it to the base (remove Removed, add Added) yields exactly the
// target multiset.
type Diff struct {
	// Added lists requests in the target but not the base, in target order.
	Added request.Set
	// Removed lists requests in the base but not the target, in base order.
	Removed request.Set
}

// Size is the edit distance |Added| + |Removed|.
func (d Diff) Size() int { return len(d.Added) + len(d.Removed) }

// Compute returns the multiset diff from base to target. Duplicates count:
// a request appearing twice in the base and once in the target contributes
// one removal. No request appears in both Added and Removed.
func Compute(base, target request.Set) Diff {
	counts := make(map[request.Request]int, len(base))
	for _, r := range base {
		counts[r]++
	}
	var d Diff
	for _, r := range target {
		if counts[r] > 0 {
			counts[r]--
		} else {
			d.Added = append(d.Added, r)
		}
	}
	// counts now holds the base's excess multiplicities; emit them in base
	// order so the diff is deterministic.
	for _, r := range base {
		if counts[r] > 0 {
			counts[r]--
			d.Removed = append(d.Removed, r)
		}
	}
	return d
}

// Requests flattens a schedule's configurations into the request multiset
// it serves, in slot order.
func Requests(r *schedule.Result) request.Set {
	n := 0
	for _, cfg := range r.Configs {
		n += len(cfg)
	}
	out := make(request.Set, 0, n)
	for _, cfg := range r.Configs {
		out = append(out, cfg...)
	}
	return out
}

// Patch rebases base onto topo so that it serves exactly the target
// multiset:
//
//  1. departed requests (base − target) are evicted from their
//     configurations;
//  2. surviving requests are re-routed on topo (identical routes on the
//     same topology; detours on a fault-masked view) and keep their slot
//     when the route still fits — a survivor whose new route now conflicts
//     within its configuration is evicted too;
//  3. evicted survivors and arrivals (target − base) are first-fit
//     inserted, opening new configurations only when nothing fits, exactly
//     like schedule.Extend;
//  4. configurations left empty are dropped.
//
// The base is never modified. The returned schedule's Algorithm is the
// base's with a "+delta" suffix. evicted counts step-2 evictions — the
// survivors the topology change displaced. An unroutable target request
// (e.g. disconnected by a fault mask) is an error wrapping
// network.ErrNoRoute; no schedule can serve that target.
func Patch(base *schedule.Result, topo network.Topology, target request.Set) (res *schedule.Result, evicted int, err error) {
	if base == nil {
		return nil, 0, fmt.Errorf("delta: nil base schedule")
	}
	if err := target.Validate(topo); err != nil {
		return nil, 0, fmt.Errorf("delta: %w", err)
	}
	return patchDiff(base, topo, Compute(Requests(base), target))
}

func patchDiff(base *schedule.Result, topo network.Topology, d Diff) (res *schedule.Result, evicted int, err error) {
	removeLeft := make(map[request.Request]int, len(d.Removed))
	for _, q := range d.Removed {
		removeLeft[q]++
	}
	nl, nn := topo.NumLinks(), topo.NumNodes()
	var (
		configs []request.Set
		occs    []network.BitOccupancy
		pending request.Set // displaced survivors first, then arrivals
	)
	for _, cfg := range base.Configs {
		keep := make(request.Set, 0, len(cfg))
		occs = append(occs, network.BitOccupancy{})
		occ := &occs[len(occs)-1]
		occ.BindSize(nl, nn)
		for _, q := range cfg {
			if removeLeft[q] > 0 {
				removeLeft[q]--
				continue
			}
			p, err := network.CachedRoute(topo, q.Src, q.Dst)
			if err != nil {
				return nil, 0, fmt.Errorf("delta: request %v: %w", q, err)
			}
			if !occ.CanAdd(p) {
				evicted++
				pending = append(pending, q)
				continue
			}
			occ.Add(p)
			keep = append(keep, q)
		}
		if len(keep) > 0 {
			configs = append(configs, keep)
		} else {
			occs = occs[:len(occs)-1]
		}
	}
	pending = append(pending, d.Added...)
	for _, q := range pending {
		p, err := network.CachedRoute(topo, q.Src, q.Dst)
		if err != nil {
			return nil, 0, fmt.Errorf("delta: request %v: %w", q, err)
		}
		placed := false
		for k := range configs {
			if occs[k].CanAdd(p) {
				occs[k].Add(p)
				configs[k] = append(configs[k], q)
				placed = true
				break
			}
		}
		if !placed {
			occs = append(occs, network.BitOccupancy{})
			occ := &occs[len(occs)-1]
			occ.BindSize(nl, nn)
			occ.Add(p)
			configs = append(configs, request.Set{q})
		}
	}
	alg := base.Algorithm
	if !strings.HasSuffix(alg, "+delta") {
		alg += "+delta"
	}
	slot := make(map[request.Request]int)
	for k, cfg := range configs {
		for _, q := range cfg {
			slot[q] = k
		}
	}
	return &schedule.Result{Algorithm: alg, Topology: topo, Configs: configs, Slot: slot}, evicted, nil
}

// OraclePatch is the retained map-based original of Patch, kept as the
// differential-testing oracle for the bitset patcher (and for
// schedule.Incremental's batch Update, which must match it byte-for-byte on
// an unchanged topology). Same rules, same determinism, hash-set
// occupancies instead of bitsets.
func OraclePatch(base *schedule.Result, topo network.Topology, target request.Set) (res *schedule.Result, evicted int, err error) {
	if base == nil {
		return nil, 0, fmt.Errorf("delta: nil base schedule")
	}
	if err := target.Validate(topo); err != nil {
		return nil, 0, fmt.Errorf("delta: %w", err)
	}
	d := Compute(Requests(base), target)
	removeLeft := make(map[request.Request]int, len(d.Removed))
	for _, q := range d.Removed {
		removeLeft[q]++
	}
	var (
		configs []request.Set
		occs    []*network.Occupancy
		pending request.Set
	)
	for _, cfg := range base.Configs {
		keep := make(request.Set, 0, len(cfg))
		occ := network.NewOccupancy()
		for _, q := range cfg {
			if removeLeft[q] > 0 {
				removeLeft[q]--
				continue
			}
			p, err := network.CachedRoute(topo, q.Src, q.Dst)
			if err != nil {
				return nil, 0, fmt.Errorf("delta: request %v: %w", q, err)
			}
			if !occ.CanAdd(p) {
				evicted++
				pending = append(pending, q)
				continue
			}
			occ.Add(p)
			keep = append(keep, q)
		}
		if len(keep) > 0 {
			configs = append(configs, keep)
			occs = append(occs, occ)
		}
	}
	pending = append(pending, d.Added...)
	for _, q := range pending {
		p, err := network.CachedRoute(topo, q.Src, q.Dst)
		if err != nil {
			return nil, 0, fmt.Errorf("delta: request %v: %w", q, err)
		}
		placed := false
		for k := range configs {
			if occs[k].CanAdd(p) {
				occs[k].Add(p)
				configs[k] = append(configs[k], q)
				placed = true
				break
			}
		}
		if !placed {
			occ := network.NewOccupancy()
			occ.Add(p)
			occs = append(occs, occ)
			configs = append(configs, request.Set{q})
		}
	}
	alg := base.Algorithm
	if !strings.HasSuffix(alg, "+delta") {
		alg += "+delta"
	}
	slot := make(map[request.Request]int)
	for k, cfg := range configs {
		for _, q := range cfg {
			slot[q] = k
		}
	}
	return &schedule.Result{Algorithm: alg, Topology: topo, Configs: configs, Slot: slot}, evicted, nil
}

// coversExactly checks that the schedule serves exactly the target multiset
// with no empty configuration — the O(n) half of schedule.Validate.
func coversExactly(r *schedule.Result, target request.Set) error {
	want := make(map[request.Request]int, len(target))
	for _, q := range target {
		want[q]++
	}
	n := 0
	for k, cfg := range r.Configs {
		if len(cfg) == 0 {
			return fmt.Errorf("configuration %d is empty", k)
		}
		for _, q := range cfg {
			if want[q] == 0 {
				return fmt.Errorf("request %v scheduled more often than the target holds it", q)
			}
			want[q]--
			n++
		}
	}
	if n != len(target) {
		return fmt.Errorf("%d requests scheduled, target has %d", n, len(target))
	}
	return nil
}

// Options configures Recompile. Zero values select defaults.
type Options struct {
	// Bound accepts a patched schedule whose multiplexing degree is at most
	// Bound × the from-scratch estimate; <= 0 means DefaultBound. A tight
	// bound (1.0) demands lower-bound-optimal patches and falls back to a
	// full compile for anything worse.
	Bound float64
	// Scheduler runs the full compile when patching is rejected or no base
	// exists; nil means the paper's combined algorithm.
	Scheduler schedule.Scheduler
}

func (o Options) bound() float64 {
	if o.Bound <= 0 {
		return DefaultBound
	}
	return o.Bound
}

func (o Options) scheduler() schedule.Scheduler {
	if o.Scheduler == nil {
		return schedule.Combined{}
	}
	return o.Scheduler
}

// Stats reports what one Recompile did.
type Stats struct {
	// Added and Removed size the pattern diff against the base.
	Added, Removed int
	// Evicted counts surviving circuits displaced by route changes.
	Evicted int
	// BaseDegree is the base schedule's multiplexing degree (0 if no base).
	BaseDegree int
	// Degree is the returned schedule's multiplexing degree.
	Degree int
	// Estimate is the from-scratch degree estimate (schedule.LowerBound).
	Estimate int
	// Patched reports whether the patched schedule was accepted; when
	// false, Fallback names why a full compile ran instead.
	Patched  bool
	Fallback string
}

// Recompile produces a schedule for target on topo, preferring an
// incremental patch of base and falling back to a full compile when there
// is no base, the patch fails validation, or the patch's degree exceeds the
// quality bound. The returned schedule always validates against target.
func Recompile(topo network.Topology, base *schedule.Result, target request.Set, opt Options) (*schedule.Result, Stats, error) {
	var st Stats
	full := func(reason string) (*schedule.Result, Stats, error) {
		st.Patched = false
		st.Fallback = reason
		res, err := opt.scheduler().Schedule(topo, target)
		if err != nil {
			return nil, st, err
		}
		st.Degree = res.Degree()
		return res, st, nil
	}
	if base == nil {
		return full("no base schedule")
	}
	st.BaseDegree = base.Degree()
	if err := target.Validate(topo); err != nil {
		return nil, st, fmt.Errorf("delta: %w", err)
	}
	d := Compute(Requests(base), target)
	st.Added, st.Removed = len(d.Added), len(d.Removed)
	res, evicted, err := patchDiff(base, topo, d)
	if err != nil {
		// An unroutable target fails the full compile identically; let the
		// scheduler produce the canonical error.
		return full(fmt.Sprintf("patch failed: %v", err))
	}
	st.Evicted = evicted
	// patchDiff enforces conflict-freedom structurally — every insertion is
	// occupancy-checked — so acceptance only needs the cheap half of
	// schedule.Validate: exact multiset coverage of the target. The full
	// route/conflict re-check would walk every route a third time for a
	// property the construction already guarantees; the package tests (and
	// the service's light-trace verification of patched fault schedules)
	// keep the full check honest.
	if err := coversExactly(res, target); err != nil {
		return full(fmt.Sprintf("patched schedule invalid: %v", err))
	}
	lb, err := schedule.LowerBound(topo, target)
	if err != nil {
		return full(fmt.Sprintf("estimating from-scratch degree: %v", err))
	}
	if lb < 1 {
		lb = 1
	}
	st.Estimate = lb
	if float64(res.Degree()) > opt.bound()*float64(lb) {
		return full(fmt.Sprintf("patched degree %d exceeds %.2f x estimate %d", res.Degree(), opt.bound(), lb))
	}
	st.Patched = true
	st.Degree = res.Degree()
	return res, st, nil
}

package delta_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/delta"
	"repro/internal/network"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/topology"
)

// sessionRNG is SplitMix64, matching the schedule package's differential
// suite so failing seeds replay across packages.
type sessionRNG uint64

func (s *sessionRNG) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func randomSet(rng *sessionRNG, nn, n int) request.Set {
	set := make(request.Set, 0, n)
	for len(set) < n {
		s := network.NodeID(rng.next() % uint64(nn))
		d := network.NodeID(rng.next() % uint64(nn))
		if s != d {
			set = append(set, request.Request{Src: s, Dst: d})
		}
	}
	return set
}

func drift(rng *sessionRNG, base request.Set, nn int, frac float64) request.Set {
	keep := int(float64(len(base)) * (1 - frac))
	out := base[:keep:keep].Clone()
	return append(out, randomSet(rng, nn, len(base)-keep)...)
}

// assertSameSchedule compares two results field by field; both come from
// the same package so reflect.DeepEqual is an exact byte-identity check.
func assertSameSchedule(t *testing.T, got, want *schedule.Result) {
	t.Helper()
	if got.Algorithm != want.Algorithm {
		t.Fatalf("algorithm %q, want %q", got.Algorithm, want.Algorithm)
	}
	if !reflect.DeepEqual(got.Configs, want.Configs) {
		t.Fatalf("configs diverge:\ngot:  %v\nwant: %v", got.Configs, want.Configs)
	}
	if !reflect.DeepEqual(got.Slot, want.Slot) {
		t.Fatal("slot index diverges")
	}
}

// TestPatchMatchesOracle differentially tests the bitset patcher against
// the retained map-based original across drift fractions.
func TestPatchMatchesOracle(t *testing.T) {
	topo := topology.NewTorus(8, 8)
	nn := topo.NumNodes()
	for _, frac := range []float64{0.05, 0.25, 0.75, 1.0} {
		frac := frac
		t.Run(fmt.Sprintf("drift=%.2f", frac), func(t *testing.T) {
			rng := sessionRNG(uint64(frac*100) + 1)
			pattern := randomSet(&rng, nn, 3*nn)
			base, err := schedule.Combined{}.Schedule(topo, pattern)
			if err != nil {
				t.Fatal(err)
			}
			target := drift(&rng, pattern, nn, frac)
			got, gotEv, err := delta.Patch(base, topo, target)
			if err != nil {
				t.Fatal(err)
			}
			want, wantEv, err := delta.OraclePatch(base, topo, target)
			if err != nil {
				t.Fatal(err)
			}
			if gotEv != wantEv {
				t.Fatalf("evicted %d, oracle evicted %d", gotEv, wantEv)
			}
			assertSameSchedule(t, got, want)
			if err := got.Validate(target); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSessionMatchesRecompile drives a session and the stateless Recompile
// through the same drifting pattern stream; every schedule and every Stats
// must be identical, including steps that fall back to a full compile.
func TestSessionMatchesRecompile(t *testing.T) {
	topo := topology.NewTorus(8, 8)
	nn := topo.NumNodes()
	opt := delta.Options{}
	sess, err := delta.NewSession(topo, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	rng := sessionRNG(1234)
	pattern := randomSet(&rng, nn, 3*nn)
	var base *schedule.Result
	for step := 0; step < 6; step++ {
		frac := 0.2
		if step == 3 {
			frac = 1.0 // full churn: drives the quality gate toward fallback
		}
		if step > 0 {
			pattern = drift(&rng, pattern, nn, frac)
		}
		want, wantStats, err := delta.Recompile(topo, base, pattern, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, gotStats, err := sess.Recompile(pattern)
		if err != nil {
			t.Fatal(err)
		}
		if gotStats != wantStats {
			t.Fatalf("step %d stats %+v, want %+v", step, gotStats, wantStats)
		}
		assertSameSchedule(t, got, want)
		if sess.Degree() != want.Degree() {
			t.Fatalf("step %d session degree %d, want %d", step, sess.Degree(), want.Degree())
		}
		base = want
	}
}

// TestSessionRejectsForeignBase pins the topology binding rule.
func TestSessionRejectsForeignBase(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	ring := topology.NewRing(16)
	base, err := schedule.Greedy{}.Schedule(ring, request.Set{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := delta.NewSession(torus, base, delta.Options{}); err == nil {
		t.Fatal("session accepted a base compiled for another topology")
	}
}

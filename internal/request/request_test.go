package request_test

import (
	"testing"
	"testing/quick"

	"repro/internal/network"
	"repro/internal/request"
	"repro/internal/topology"
)

func TestString(t *testing.T) {
	r := request.Request{Src: 4, Dst: 1}
	if r.String() != "(4, 1)" {
		t.Errorf("String() = %q, want %q", r.String(), "(4, 1)")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := request.Set{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}
	c := s.Clone()
	c[0] = request.Request{Src: 9, Dst: 9}
	if s[0].Src != 0 {
		t.Error("Clone shares backing storage")
	}
}

func TestSortedOrder(t *testing.T) {
	s := request.Set{{Src: 2, Dst: 1}, {Src: 0, Dst: 3}, {Src: 2, Dst: 0}, {Src: 0, Dst: 1}}
	got := s.Sorted()
	want := request.Set{{Src: 0, Dst: 1}, {Src: 0, Dst: 3}, {Src: 2, Dst: 0}, {Src: 2, Dst: 1}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Original untouched.
	if s[0] != (request.Request{Src: 2, Dst: 1}) {
		t.Error("Sorted mutated its receiver")
	}
}

func TestDedupKeepsFirstOccurrence(t *testing.T) {
	s := request.Set{{Src: 1, Dst: 2}, {Src: 3, Dst: 4}, {Src: 1, Dst: 2}, {Src: 5, Dst: 6}}
	got := s.Dedup()
	if len(got) != 3 {
		t.Fatalf("Dedup left %d requests, want 3", len(got))
	}
	if got[0] != (request.Request{Src: 1, Dst: 2}) || got[1] != (request.Request{Src: 3, Dst: 4}) {
		t.Error("Dedup changed order of first occurrences")
	}
}

func TestDedupProperty(t *testing.T) {
	f := func(pairs [][2]uint8) bool {
		var s request.Set
		for _, p := range pairs {
			s = append(s, request.Request{Src: network.NodeID(p[0]), Dst: network.NodeID(p[1])})
		}
		d := s.Dedup()
		seen := map[request.Request]bool{}
		for _, r := range d {
			if seen[r] {
				return false
			}
			seen[r] = true
		}
		// Every original request is present.
		for _, r := range s {
			if !seen[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	topo := topology.NewTorus(4, 4)
	if err := (request.Set{{Src: 0, Dst: 15}}).Validate(topo); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	if err := (request.Set{{Src: 0, Dst: 16}}).Validate(topo); err == nil {
		t.Error("out-of-range destination accepted")
	}
	if err := (request.Set{{Src: -1, Dst: 3}}).Validate(topo); err == nil {
		t.Error("negative source accepted")
	}
	if err := (request.Set{{Src: 3, Dst: 3}}).Validate(topo); err == nil {
		t.Error("self-loop accepted")
	}
}

func TestSourcesDestinations(t *testing.T) {
	s := request.Set{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2}}
	src := s.Sources()
	if src[0] != 2 || src[1] != 1 {
		t.Errorf("Sources() = %v", src)
	}
	dst := s.Destinations()
	if dst[1] != 1 || dst[2] != 2 {
		t.Errorf("Destinations() = %v", dst)
	}
}

func TestRoutes(t *testing.T) {
	topo := topology.NewLinear(5)
	s := request.Set{{Src: 0, Dst: 2}, {Src: 4, Dst: 1}}
	paths, err := s.Routes(topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 || paths[0].Len() != 2 || paths[1].Len() != 3 {
		t.Errorf("unexpected paths %v", paths)
	}
	bad := request.Set{{Src: 0, Dst: 0}}
	if _, err := bad.Routes(topo); err == nil {
		t.Error("Routes accepted a self-loop")
	}
}

package request

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
)

// Triple is one entry of a canonical communication pattern: a connection
// from Src to Dst carrying Flits flits, optionally injected at slot Start
// (zero for pure patterns with no traced timing). Triples are the unit the
// content-addressed schedule cache hashes: a phase's message list reduced to
// triples, canonically ordered, identifies the compiled artifact regardless
// of the order a caller happened to enumerate its messages in.
type Triple struct {
	Src, Dst, Flits, Start int
}

// Triples converts the request set to unit-flit triples, the form PatternKey
// hashes. Duplicate requests stay duplicated — the multiset is part of the
// pattern's identity.
func (s Set) Triples(flits int) []Triple {
	out := make([]Triple, len(s))
	for i, r := range s {
		out[i] = Triple{Src: int(r.Src), Dst: int(r.Dst), Flits: flits}
	}
	return out
}

// CanonicalTriples returns a copy of the triples in canonical order: sorted
// by (Src, Dst, Start, Flits). Two message lists that are permutations of
// each other canonicalize identically, which is what makes PatternKey
// independent of request order and of map iteration in any producer.
func CanonicalTriples(ts []Triple) []Triple {
	out := make([]Triple, len(ts))
	copy(out, ts)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Flits < b.Flits
	})
	return out
}

// patternKeyDomain separates PatternKey digests from any other SHA-256 use;
// bumping the version invalidates every persisted key on purpose.
const patternKeyDomain = "ccomm-pattern-v1"

// PatternKey returns the canonical content hash of a communication pattern:
// a hex SHA-256 over the canonically ordered triples, the topology name,
// and any extra parameters that select a different compiled artifact
// (scheduler name, fault mask, phase attributes). The encoding is
// injective — every field is length- or count-prefixed — so two inputs
// collide only if SHA-256 itself collides, and the triple ordering is
// canonicalized first, so the key never depends on request order.
func PatternKey(triples []Triple, topology string, params ...string) string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	writeStr := func(s string) {
		writeInt(len(s))
		h.Write([]byte(s))
	}
	writeStr(patternKeyDomain)
	writeStr(topology)
	writeInt(len(params))
	for _, p := range params {
		writeStr(p)
	}
	canon := CanonicalTriples(triples)
	writeInt(len(canon))
	for _, t := range canon {
		writeInt(t.Src)
		writeInt(t.Dst)
		writeInt(t.Flits)
		writeInt(t.Start)
	}
	return hex.EncodeToString(h.Sum(nil))
}

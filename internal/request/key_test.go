package request_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/patterns"
	"repro/internal/request"
)

// tablePatterns enumerates the communication patterns of the paper's Tables
// 1–3 (permutations, redistribution-style shifts, and the dense patterns)
// as named request sets on 64 nodes.
func tablePatterns(t *testing.T) map[string]request.Set {
	t.Helper()
	sets := map[string]request.Set{
		"ring":       patterns.Ring(64),
		"linear":     patterns.LinearNeighbors(64),
		"nn2d":       patterns.NearestNeighbor2D(8, 8),
		"nn3d":       patterns.NearestNeighbor3D(4, 4, 4),
		"transpose":  patterns.Transpose(8),
		"all-to-all": patterns.AllToAll(64),
	}
	hyper, err := patterns.Hypercube(64)
	if err != nil {
		t.Fatal(err)
	}
	sets["hypercube"] = hyper
	shuffle, err := patterns.ShuffleExchange(64)
	if err != nil {
		t.Fatal(err)
	}
	sets["shuffle"] = shuffle
	bitrev, err := patterns.BitReversal(64)
	if err != nil {
		t.Fatal(err)
	}
	sets["bitrev"] = bitrev
	random, err := patterns.Random(rand.New(rand.NewSource(1996)), 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	sets["random64"] = random
	return sets
}

func TestPatternKeyOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for name, set := range tablePatterns(t) {
		triples := set.Triples(4)
		want := request.PatternKey(triples, "torus-8x8", "combined")
		for trial := 0; trial < 8; trial++ {
			shuffled := append([]request.Triple(nil), triples...)
			rng.Shuffle(len(shuffled), func(i, j int) {
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
			})
			if got := request.PatternKey(shuffled, "torus-8x8", "combined"); got != want {
				t.Fatalf("%s: key depends on order: %s vs %s", name, got, want)
			}
		}
	}
}

func TestPatternKeyCollisionFreedom(t *testing.T) {
	seen := make(map[string]string)
	record := func(label, key string) {
		if prev, dup := seen[key]; dup {
			t.Fatalf("key collision between %s and %s", prev, label)
		}
		seen[key] = label
	}
	for name, set := range tablePatterns(t) {
		// Same pattern under different flit counts, topologies and
		// scheduler params must all produce distinct keys.
		record(name+"/f4/torus/combined", request.PatternKey(set.Triples(4), "torus-8x8", "combined"))
		record(name+"/f8/torus/combined", request.PatternKey(set.Triples(8), "torus-8x8", "combined"))
		record(name+"/f4/mesh/combined", request.PatternKey(set.Triples(4), "mesh-8x8", "combined"))
		record(name+"/f4/torus/greedy", request.PatternKey(set.Triples(4), "torus-8x8", "greedy"))
	}
	if len(seen) != 4*len(tablePatterns(t)) {
		t.Fatalf("expected %d distinct keys, got %d", 4*len(tablePatterns(t)), len(seen))
	}
}

func TestPatternKeyEncodingInjective(t *testing.T) {
	// The length-prefixed encoding must not let adjacent strings bleed into
	// each other: ("ab","c") vs ("a","bc") and param/topology swaps differ.
	a := request.PatternKey(nil, "ab", "c")
	b := request.PatternKey(nil, "a", "bc")
	c := request.PatternKey(nil, "c", "ab")
	if a == b || a == c || b == c {
		t.Fatalf("string encoding is not injective: %s %s %s", a, b, c)
	}
	// Start offsets distinguish otherwise-identical traffic.
	t0 := []request.Triple{{Src: 0, Dst: 1, Flits: 2}}
	t1 := []request.Triple{{Src: 0, Dst: 1, Flits: 2, Start: 5}}
	if request.PatternKey(t0, "torus-8x8") == request.PatternKey(t1, "torus-8x8") {
		t.Fatal("start offset ignored by key")
	}
	// Duplicate requests are part of the identity (multiset, not set).
	if request.PatternKey(append(t0, t0...), "torus-8x8") == request.PatternKey(t0, "torus-8x8") {
		t.Fatal("duplicate triple ignored by key")
	}
}

func TestPatternKeyShape(t *testing.T) {
	key := request.PatternKey(nil, "torus-8x8")
	if len(key) != 64 || strings.ToLower(key) != key {
		t.Fatalf("key %q is not lowercase hex sha256", key)
	}
}

func TestCanonicalTriplesDoesNotMutate(t *testing.T) {
	in := []request.Triple{{Src: 3, Dst: 1, Flits: 1}, {Src: 0, Dst: 2, Flits: 1}}
	orig := append([]request.Triple(nil), in...)
	out := request.CanonicalTriples(in)
	if in[0] != orig[0] || in[1] != orig[1] {
		t.Fatal("CanonicalTriples mutated its input")
	}
	if out[0].Src != 0 || out[1].Src != 3 {
		t.Fatalf("not sorted: %v", out)
	}
}

// Package request models sets of connection requests — the input to the
// off-line connection-scheduling algorithms. A request (s, d) asks for an
// all-optical circuit from PE s to PE d.
package request

import (
	"fmt"
	"sort"

	"repro/internal/network"
)

// Request is a single connection request from Src to Dst.
type Request struct {
	Src, Dst network.NodeID
}

// String implements fmt.Stringer in the paper's "(s, d)" notation.
func (r Request) String() string { return fmt.Sprintf("(%d, %d)", r.Src, r.Dst) }

// Set is an ordered collection of requests. Order matters: the greedy
// scheduler is order-sensitive (the whole point of the Fig. 3 example and of
// the ordered-AAPC reordering), so Set preserves insertion order.
type Set []Request

// Clone returns a copy of the set.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Sorted returns a copy sorted by (Src, Dst); useful for deterministic
// comparison in tests.
func (s Set) Sorted() Set {
	out := s.Clone()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// Dedup returns a copy with duplicate (s, d) pairs removed, preserving the
// first occurrence's position.
func (s Set) Dedup() Set {
	seen := make(map[Request]struct{}, len(s))
	out := make(Set, 0, len(s))
	for _, r := range s {
		if _, ok := seen[r]; ok {
			continue
		}
		seen[r] = struct{}{}
		out = append(out, r)
	}
	return out
}

// Validate checks that every request addresses nodes inside the topology
// and is not a self-loop.
func (s Set) Validate(t network.Topology) error {
	n := t.NumNodes()
	for i, r := range s {
		if int(r.Src) < 0 || int(r.Src) >= n || int(r.Dst) < 0 || int(r.Dst) >= n {
			return fmt.Errorf("request %d: %v out of range for %s", i, r, t.Name())
		}
		if r.Src == r.Dst {
			return fmt.Errorf("request %d: %v is a self-loop", i, r)
		}
	}
	return nil
}

// Sources returns the multiset of per-source request counts. The maximum is
// a lower bound on the multiplexing degree (each PE has one injection port).
func (s Set) Sources() map[network.NodeID]int {
	m := make(map[network.NodeID]int)
	for _, r := range s {
		m[r.Src]++
	}
	return m
}

// Destinations returns the multiset of per-destination request counts.
func (s Set) Destinations() map[network.NodeID]int {
	m := make(map[network.NodeID]int)
	for _, r := range s {
		m[r.Dst]++
	}
	return m
}

// Routes computes the circuit path of every request in the set. Paths are
// served from the process-wide route cache (see network.CachedRoute), so
// repeated pairs — within one set or across scheduling runs on the same
// topology value — are routed once. The returned paths share link slices
// with the cache and must not be mutated.
func (s Set) Routes(t network.Topology) ([]network.Path, error) {
	paths := make([]network.Path, len(s))
	for i, r := range s {
		p, err := network.CachedRoute(t, r.Src, r.Dst)
		if err != nil {
			return nil, fmt.Errorf("request %v: %w", r, err)
		}
		paths[i] = p
	}
	return paths, nil
}

package apps_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/schedule"
	"repro/internal/topology"
)

func TestGSPattern(t *testing.T) {
	ph, err := apps.GS(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(ph.Messages) != 126 {
		t.Fatalf("GS has %d messages, want 126 (linear neighbors of 64 PEs)", len(ph.Messages))
	}
	for _, m := range ph.Messages {
		if m.Flits != 64/apps.FlitElements {
			t.Fatalf("GS 64x64 message has %d flits, want %d", m.Flits, 64/apps.FlitElements)
		}
	}
	// Message size scales linearly with the problem edge.
	big, err := apps.GS(256, 64)
	if err != nil {
		t.Fatal(err)
	}
	if big.Messages[0].Flits != 4*ph.Messages[0].Flits {
		t.Errorf("GS 256 message %d flits, want 4x the 64 case", big.Messages[0].Flits)
	}
}

func TestTSCFPattern(t *testing.T) {
	ph, err := apps.TSCF(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(ph.Messages) != 384 {
		t.Fatalf("TSCF has %d messages, want 384 (hypercube on 64 PEs)", len(ph.Messages))
	}
	for _, m := range ph.Messages {
		if m.Flits != 2 {
			t.Fatalf("TSCF message has %d flits; size must not depend on the problem", m.Flits)
		}
	}
	if _, err := apps.TSCF(48); err == nil {
		t.Error("non-power-of-two PE count accepted")
	}
}

func TestP3MPhases(t *testing.T) {
	phases, err := apps.P3M(32)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 5 {
		t.Fatalf("P3M has %d phases, want 5 (Table 4)", len(phases))
	}
	names := []string{"P3M 1", "P3M 2", "P3M 3", "P3M 4", "P3M 5"}
	for i, ph := range phases {
		if ph.Name != names[i] {
			t.Errorf("phase %d named %q, want %q", i, ph.Name, names[i])
		}
		if len(ph.Messages) == 0 {
			t.Errorf("phase %q has no messages", ph.Name)
		}
		if err := ph.Pattern().Validate(topology.NewTorus(8, 8)); err != nil {
			t.Errorf("phase %q: %v", ph.Name, err)
		}
	}
	// P3M 2 and P3M 3 are the same redistribution (Table 4 lists the same
	// source and destination distributions).
	if len(phases[1].Messages) != len(phases[2].Messages) {
		t.Error("P3M 2 and P3M 3 should have identical patterns")
	}
	// P3M 5 is the 26-neighbor exchange: 64*26 messages.
	if len(phases[4].Messages) != 64*26 {
		t.Errorf("P3M 5 has %d messages, want %d", len(phases[4].Messages), 64*26)
	}
}

func TestP3MVolumeScalesWithMesh(t *testing.T) {
	small, err := apps.P3M(32)
	if err != nil {
		t.Fatal(err)
	}
	big, err := apps.P3M(64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range small {
		sumS, sumB := 0, 0
		for _, m := range small[i].Messages {
			sumS += m.Flits
		}
		for _, m := range big[i].Messages {
			sumB += m.Flits
		}
		if sumB <= sumS {
			t.Errorf("%s: 64^3 volume (%d flits) not larger than 32^3 (%d)", small[i].Name, sumB, sumS)
		}
	}
}

func TestP3MRedistributionPhasesAreDense(t *testing.T) {
	phases, err := apps.P3M(64)
	if err != nil {
		t.Fatal(err)
	}
	// (:,:,:block) -> (:block,:block,:) moves every z-slab across the whole
	// xy grid: a dense pattern, which is the paper's explanation for P3M 2's
	// large dynamic-control penalty.
	if len(phases[1].Messages) < 2000 {
		t.Errorf("P3M 2 has %d connections; expected a dense pattern", len(phases[1].Messages))
	}
}

func TestP3MGhostVolumes(t *testing.T) {
	phases, err := apps.P3M(32)
	if err != nil {
		t.Fatal(err)
	}
	p5 := phases[4]
	side := 32 / 4
	wantFace := (side*side + apps.FlitElements - 1) / apps.FlitElements
	wantEdge := (side + apps.FlitElements - 1) / apps.FlitElements
	faces, edges, corners := 0, 0, 0
	for _, m := range p5.Messages {
		switch m.Flits {
		case wantFace:
			faces++
		case wantEdge:
			edges++
		case 1:
			corners++
		default:
			t.Fatalf("unexpected ghost message size %d flits", m.Flits)
		}
	}
	if faces != 64*6 || edges != 64*12 || corners != 64*8 {
		t.Errorf("faces=%d edges=%d corners=%d, want %d/%d/%d", faces, edges, corners, 64*6, 64*12, 64*8)
	}
}

func TestP3MSchedulable(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	phases, err := apps.P3M(32)
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range phases {
		set := ph.Pattern().Dedup()
		res, err := schedule.Combined{}.Schedule(torus, set)
		if err != nil {
			t.Fatalf("%s: %v", ph.Name, err)
		}
		if err := res.Validate(set); err != nil {
			t.Fatalf("%s: %v", ph.Name, err)
		}
	}
}

func TestAppErrors(t *testing.T) {
	if _, err := apps.GS(8, 64); err == nil {
		t.Error("GS problem smaller than PE count accepted")
	}
	if _, err := apps.P3M(2); err == nil {
		t.Error("P3M mesh smaller than the PE grid accepted")
	}
}

func TestFFTPhases(t *testing.T) {
	phases, err := apps.FFT(4096, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 7 {
		t.Fatalf("FFT has %d phases, want 6 butterfly stages + unscramble", len(phases))
	}
	torus := topology.NewTorus(8, 8)
	for i, ph := range phases[:6] {
		if len(ph.Messages) != 64 {
			t.Fatalf("stage %d has %d messages, want 64", i, len(ph.Messages))
		}
		res, err := schedule.Combined{}.Schedule(torus, ph.Pattern().Dedup())
		if err != nil {
			t.Fatal(err)
		}
		// Each butterfly stage is a perfect matching: the compiled degree
		// stays tiny even though the union of stages is the degree-7
		// hypercube.
		if res.Degree() > 2 {
			t.Errorf("stage %d compiled to degree %d, want <= 2", i, res.Degree())
		}
	}
	if phases[6].Name != "FFT unscramble" {
		t.Errorf("last phase %q", phases[6].Name)
	}
	if _, err := apps.FFT(4096, 48); err == nil {
		t.Error("non-power-of-two PE count accepted")
	}
	if _, err := apps.FFT(8, 64); err == nil {
		t.Error("undersized problem accepted")
	}
}

// Package apps models the static communication behavior of the paper's
// three evaluation programs (Table 4):
//
//   - GS: Gauss-Seidel iterations on a discretized unit square. The PEs
//     form a logical linear array; each PE exchanges its boundary row with
//     its two neighbors every iteration.
//   - TSCF: a self-consistent-field N-body code communicating in a
//     hypercube pattern with small, problem-size-independent messages.
//   - P3M: particle-particle particle-mesh, with four block-cyclic data
//     redistributions of its 3-D mesh plus a 26-neighbor ghost exchange on
//     the logical 3-D PE grid.
//
// The program sources are not available, so each model reproduces the
// communication subsystem the paper measures: the exact static pattern from
// Table 4 and message volumes derived from the stated problem sizes (P3M
// redistribution volumes are computed exactly by internal/redist).
package apps

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/patterns"
	"repro/internal/redist"
	"repro/internal/request"
	"repro/internal/sim"
)

// FlitElements is the number of array elements one flit carries. One TDM
// slot moves one flit over a circuit.
const FlitElements = 4

// Phase is one static communication pattern of an application: the request
// set plus the per-message flit counts.
type Phase struct {
	// Name identifies the phase ("GS", "P3M 2", ...).
	Name string
	// Description is the Table 4 pattern description.
	Description string
	// Messages carries one entry per connection with its volume.
	Messages []sim.Message
}

// Pattern returns the connection requests of the phase.
func (p Phase) Pattern() request.Set {
	set := make(request.Set, len(p.Messages))
	for i, m := range p.Messages {
		set[i] = request.Request{Src: network.NodeID(m.Src), Dst: network.NodeID(m.Dst)}
	}
	return set
}

// flits converts an element count to flits.
func flits(elements int) int {
	f := (elements + FlitElements - 1) / FlitElements
	if f < 1 {
		f = 1
	}
	return f
}

// GS returns the Gauss-Seidel boundary-exchange phase for an n x n problem
// on `pes` PEs in a logical linear array: every PE sends one boundary row
// of n elements to each adjacent PE.
func GS(n, pes int) (Phase, error) {
	if n%pes != 0 && n < pes {
		return Phase{}, fmt.Errorf("apps: GS problem %d too small for %d PEs", n, pes)
	}
	set := patterns.LinearNeighbors(pes)
	msgs := make([]sim.Message, len(set))
	for i, r := range set {
		msgs[i] = sim.Message{Src: int(r.Src), Dst: int(r.Dst), Flits: flits(n)}
	}
	return Phase{
		Name:        fmt.Sprintf("GS %dx%d", n, n),
		Description: "PEs logically linear array, each PE communicates with its adjacent PEs",
		Messages:    msgs,
	}, nil
}

// TSCF returns the self-consistent-field phase: a hypercube exchange with
// small messages whose size does not depend on the problem size (the paper
// notes exactly this property for TSCF).
func TSCF(pes int) (Phase, error) {
	set, err := patterns.Hypercube(pes)
	if err != nil {
		return Phase{}, err
	}
	msgs := make([]sim.Message, len(set))
	for i, r := range set {
		msgs[i] = sim.Message{Src: int(r.Src), Dst: int(r.Dst), Flits: 2}
	}
	return Phase{
		Name:        "TSCF",
		Description: "explicit send/receive in a hypercube pattern",
		Messages:    msgs,
	}, nil
}

// FFT returns the communication phases of a radix-2 distributed FFT of n
// points on `pes` PEs: log2(pes) butterfly stages, each exchanging every
// PE's local half-array with its partner one address bit away, followed by
// the bit-reversal permutation that unscrambles the result. It is the
// textbook example of why per-phase compilation wins: each butterfly stage
// alone is a perfect matching (degree 1 after compilation) even though the
// union of all stages is the full hypercube pattern (degree 7 on the 8x8
// torus).
func FFT(n, pes int) ([]Phase, error) {
	if pes < 2 || pes&(pes-1) != 0 {
		return nil, fmt.Errorf("apps: FFT needs a power-of-two PE count, got %d", pes)
	}
	if n < pes {
		return nil, fmt.Errorf("apps: FFT of %d points too small for %d PEs", n, pes)
	}
	local := n / pes
	var phases []Phase
	stage := 0
	for b := 1; b < pes; b <<= 1 {
		msgs := make([]sim.Message, 0, pes)
		for i := 0; i < pes; i++ {
			msgs = append(msgs, sim.Message{Src: i, Dst: i ^ b, Flits: flits(local / 2)})
		}
		phases = append(phases, Phase{
			Name:        fmt.Sprintf("FFT stage %d", stage),
			Description: fmt.Sprintf("butterfly exchange across address bit %d", stage),
			Messages:    msgs,
		})
		stage++
	}
	rev, err := patterns.BitReversal(pes)
	if err != nil {
		return nil, err
	}
	msgs := make([]sim.Message, len(rev))
	for i, r := range rev {
		msgs[i] = sim.Message{Src: int(r.Src), Dst: int(r.Dst), Flits: flits(local)}
	}
	phases = append(phases, Phase{
		Name:        "FFT unscramble",
		Description: "bit-reversal permutation of the distributed result",
		Messages:    msgs,
	})
	return phases, nil
}

// p3mGrids returns the three distributions P3M redistributes between on 64
// PEs: the 3-D block distribution (4x4x4 grid), the z-only distribution
// (1x1x64), and the xy distribution (8x8x1). Block sizes derive from the
// mesh extent n; a dimension hosting more PEs than elements degenerates to
// block size 1 with some PEs owning nothing, exactly as a CRAFT-style
// compiler would lay it out.
func p3mGrids(n int) (blk3, zOnly, xy redist.Dist, err error) {
	bs := func(extent, procs int) int {
		b := extent / procs
		if b < 1 {
			b = 1
		}
		return b
	}
	blk3, err = redist.NewDist([3]redist.DimDist{
		{P: 4, B: bs(n, 4)}, {P: 4, B: bs(n, 4)}, {P: 4, B: bs(n, 4)},
	})
	if err != nil {
		return
	}
	zOnly, err = redist.NewDist([3]redist.DimDist{
		{P: 1, B: n}, {P: 1, B: n}, {P: 64, B: bs(n, 64)},
	})
	if err != nil {
		return
	}
	xy, err = redist.NewDist([3]redist.DimDist{
		{P: 8, B: bs(n, 8)}, {P: 8, B: bs(n, 8)}, {P: 1, B: n},
	})
	return
}

// P3M returns the five static phases of the particle-particle
// particle-mesh code for an n^3 mesh on 64 PEs (Table 4):
//
//	P3M 1: (:block, :block, :block) -> (:, :, :block)
//	P3M 2: (:, :, :block) -> (:block, :block, :)
//	P3M 3: same redistribution as P3M 2
//	P3M 4: (:block, :block, :) -> (:, :, :block)
//	P3M 5: logical 3-D PE grid, each PE exchanges ghost regions with its
//	       26 surrounding PEs
func P3M(n int) ([]Phase, error) {
	if n < 4 {
		return nil, fmt.Errorf("apps: P3M mesh %d^3 too small", n)
	}
	blk3, zOnly, xy, err := p3mGrids(n)
	if err != nil {
		return nil, err
	}
	shape := [3]int{n, n, n}
	redistPhase := func(name string, from, to redist.Dist) (Phase, error) {
		pat, err := redist.Redistribute(shape, from, to)
		if err != nil {
			return Phase{}, err
		}
		msgs := make([]sim.Message, len(pat.Reqs))
		for i, r := range pat.Reqs {
			msgs[i] = sim.Message{Src: int(r.Src), Dst: int(r.Dst), Flits: flits(pat.Volume[r])}
		}
		return Phase{
			Name:        name,
			Description: fmt.Sprintf("data redistribution %s to %s", from, to),
			Messages:    msgs,
		}, nil
	}
	p1, err := redistPhase("P3M 1", blk3, zOnly)
	if err != nil {
		return nil, err
	}
	p2, err := redistPhase("P3M 2", zOnly, xy)
	if err != nil {
		return nil, err
	}
	p3, err := redistPhase("P3M 3", zOnly, xy)
	if err != nil {
		return nil, err
	}
	p4, err := redistPhase("P3M 4", xy, zOnly)
	if err != nil {
		return nil, err
	}

	// P3M 5: ghost exchange on the logical 4x4x4 grid. Face neighbors
	// receive a (n/4)^2 plane, edge neighbors a (n/4) line, corner
	// neighbors a single cell.
	nn := patterns.NearestNeighbor3D(4, 4, 4)
	side := n / 4
	msgs := make([]sim.Message, len(nn))
	for i, r := range nn {
		si, sj, sk := int(r.Src)/16, (int(r.Src)/4)%4, int(r.Src)%4
		di, dj, dk := int(r.Dst)/16, (int(r.Dst)/4)%4, int(r.Dst)%4
		diffs := 0
		for _, d := range [][2]int{{si, di}, {sj, dj}, {sk, dk}} {
			if d[0] != d[1] {
				diffs++
			}
		}
		var elements int
		switch diffs {
		case 1: // face
			elements = side * side
		case 2: // edge
			elements = side
		default: // corner
			elements = 1
		}
		msgs[i] = sim.Message{Src: int(r.Src), Dst: int(r.Dst), Flits: flits(elements)}
	}
	p5 := Phase{
		Name:        "P3M 5",
		Description: "PEs logically 3-D array, each PE communicates with the 26 PEs surrounding it",
		Messages:    msgs,
	}
	return []Phase{p1, p2, p3, p4, p5}, nil
}

package store_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/patterns"
	"repro/internal/schedule"
	"repro/internal/store"
	"repro/internal/topology"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	set, err := patterns.Random(rand.New(rand.NewSource(7)), 64, 300)
	if err != nil {
		t.Fatal(err)
	}
	res, err := schedule.Combined{}.Schedule(torus, set)
	if err != nil {
		t.Fatal(err)
	}
	enc := store.EncodeResult(res)
	dec, err := store.DecodeResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Algorithm != res.Algorithm || dec.Topology != "torus-8x8" {
		t.Fatalf("decoded header = %q/%q", dec.Algorithm, dec.Topology)
	}
	got, err := dec.Result(torus)
	if err != nil {
		t.Fatal(err)
	}
	if got.Degree() != res.Degree() || got.NumRequests() != res.NumRequests() {
		t.Fatalf("decoded shape %d/%d, want %d/%d", got.Degree(), got.NumRequests(), res.Degree(), res.NumRequests())
	}
	for k := range res.Configs {
		if len(got.Configs[k]) != len(res.Configs[k]) {
			t.Fatalf("config %d size changed", k)
		}
		for i := range res.Configs[k] {
			if got.Configs[k][i] != res.Configs[k][i] {
				t.Fatalf("config %d request %d: %v != %v", k, i, got.Configs[k][i], res.Configs[k][i])
			}
		}
	}
	if err := got.Validate(set); err != nil {
		t.Fatalf("decoded schedule invalid: %v", err)
	}
	// encode(decode(encode(x))) == encode(x): the store round-trip is a
	// fixed point, the determinism anchor of the delta layer.
	if again := store.EncodeResult(got); !bytes.Equal(again, enc) {
		t.Fatal("encode -> decode -> encode is not a fixed point")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	res, err := schedule.Greedy{}.Schedule(torus, patterns.Ring(16))
	if err != nil {
		t.Fatal(err)
	}
	enc := store.EncodeResult(res)
	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  append([]byte("XXXXXX\n"), enc[7:]...),
		"truncated":  enc[:len(enc)/2],
		"trailing":   append(append([]byte(nil), enc...), 0x01),
		"count bomb": append(append([]byte(nil), enc[:8]...), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01),
	}
	for name, data := range cases {
		if _, err := store.DecodeResult(data); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
	// Binding to the wrong topology must fail loudly.
	dec, err := store.DecodeResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Result(topology.NewTorus(8, 8)); err == nil {
		t.Error("decoded schedule rebound to a different topology")
	}
}

func TestDecodedRequests(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	set := patterns.Ring(16)
	res, err := schedule.Greedy{}.Schedule(torus, set)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := store.DecodeResult(store.EncodeResult(res))
	if err != nil {
		t.Fatal(err)
	}
	flat := dec.Requests()
	if len(flat) != len(set) {
		t.Fatalf("Requests = %d, want %d", len(flat), len(set))
	}
	want := map[string]int{}
	for _, q := range set {
		want[q.String()]++
	}
	for _, q := range flat {
		want[q.String()]--
	}
	for k, n := range want {
		if n != 0 {
			t.Fatalf("request multiset drifted at %s (%+d)", k, n)
		}
	}
}

func TestBaseKeyCanonical(t *testing.T) {
	set := patterns.Ring(16)
	shuffled := set.Clone()
	rng := rand.New(rand.NewSource(3))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	if store.BaseKey(set, "torus-4x4", "combined") != store.BaseKey(shuffled, "torus-4x4", "combined") {
		t.Fatal("BaseKey depends on request order")
	}
	if store.BaseKey(set, "torus-4x4", "combined") == store.BaseKey(set, "torus-4x4", "coloring") {
		t.Fatal("BaseKey ignores the scheduler")
	}
	if store.BaseKey(set, "torus-4x4", "combined") == store.BaseKey(set, "mesh-4x4", "combined") {
		t.Fatal("BaseKey ignores the topology")
	}
}

package store

import (
	"fmt"
	"testing"
	"time"
)

func quotaKey(i int) string {
	return fmt.Sprintf("%064x", i+1)
}

func openQuotaStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOwnedRoundTrip(t *testing.T) {
	s := openQuotaStore(t)
	if err := s.PutOwned(KindArtifact, quotaKey(0), []byte("gold data"), "gold"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindArtifact, quotaKey(1), []byte("anon data")); err != nil {
		t.Fatal(err)
	}
	payload, owner, ok := s.GetOwned(KindArtifact, quotaKey(0))
	if !ok || string(payload) != "gold data" || owner != "gold" {
		t.Errorf("GetOwned = %q, %q, %v", payload, owner, ok)
	}
	payload, owner, ok = s.GetOwned(KindArtifact, quotaKey(1))
	if !ok || string(payload) != "anon data" || owner != "" {
		t.Errorf("unowned GetOwned = %q, %q, %v", payload, owner, ok)
	}
	// Plain Get still works on owned entries.
	if payload, ok := s.Get(KindArtifact, quotaKey(0)); !ok || string(payload) != "gold data" {
		t.Errorf("Get on owned entry = %q, %v", payload, ok)
	}
}

// TestOwnerSurvivesReopen: ownership lives in the entry frame, so a
// reopened store relearns it (lazily, at Get).
func TestOwnerSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutOwned(KindArtifact, quotaKey(0), []byte("x"), "gold"); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, owner, ok := s2.GetOwned(KindArtifact, quotaKey(0)); !ok || owner != "gold" {
		t.Errorf("reopened owner = %q, ok=%v, want gold", owner, ok)
	}
	// The Get backfilled the index, so usage now bills gold.
	if u := s2.Usage("gold"); u.Entries != 1 {
		t.Errorf("gold usage after reopen = %+v", u)
	}
}

// TestQuotaGCIsolation is the storage half of the tenant-isolation
// guarantee: flooding tenant A's partition evicts only A's entries, never
// tenant B's.
func TestQuotaGCIsolation(t *testing.T) {
	s := openQuotaStore(t)
	// B writes a handful of entries first (oldest in the store — the ones
	// a global LRU would shed first).
	for i := 0; i < 4; i++ {
		if err := s.PutOwned(KindArtifact, quotaKey(i), []byte("victim"), "bronze"); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(5 * time.Millisecond) // strictly newer mod times for the flood
	// A floods far past its quota.
	for i := 4; i < 40; i++ {
		if err := s.PutOwned(KindArtifact, quotaKey(i), []byte("flooder entry payload"), "gold"); err != nil {
			t.Fatal(err)
		}
	}

	stats, err := s.QuotaGC("gold", 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Removed != 26 || stats.Kept != 10 {
		t.Errorf("QuotaGC removed %d kept %d, want 26/10", stats.Removed, stats.Kept)
	}
	if u := s.Usage("gold"); u.Entries != 10 || u.Evictions != 26 {
		t.Errorf("gold usage = %+v, want 10 entries, 26 evictions", u)
	}
	// Every victim entry is still live and readable.
	if u := s.Usage("bronze"); u.Entries != 4 || u.Evictions != 0 {
		t.Errorf("bronze usage = %+v, want 4 entries, 0 evictions", u)
	}
	for i := 0; i < 4; i++ {
		if _, ok := s.Get(KindArtifact, quotaKey(i)); !ok {
			t.Errorf("victim entry %d evicted by flooder's quota GC", i)
		}
	}
	// Survivors are the newest of the flooder's entries.
	for i := 30; i < 40; i++ {
		if _, ok := s.Get(KindArtifact, quotaKey(i)); !ok {
			t.Errorf("flooder entry %d should have survived (newest 10)", i)
		}
	}
}

func TestQuotaGCByteBound(t *testing.T) {
	s := openQuotaStore(t)
	payload := make([]byte, 1000)
	var perEntry int64
	for i := 0; i < 6; i++ {
		if err := s.PutOwned(KindArtifact, quotaKey(i), payload, "gold"); err != nil {
			t.Fatal(err)
		}
		perEntry = s.Usage("gold").Bytes / int64(i+1)
	}
	// Allow three entries' worth of bytes.
	stats, err := s.QuotaGC("gold", 0, 3*perEntry)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Kept != 3 || stats.Removed != 3 {
		t.Errorf("byte-bounded QuotaGC kept %d removed %d, want 3/3", stats.Kept, stats.Removed)
	}
	if u := s.Usage("gold"); u.Bytes > 3*perEntry {
		t.Errorf("gold still over byte quota: %+v", u)
	}
	// Zero bounds are a no-op.
	if stats, err := s.QuotaGC("gold", 0, 0); err != nil || stats.Removed != 0 {
		t.Errorf("unbounded QuotaGC = %+v, %v", stats, err)
	}
}

func TestOwnersEnumeration(t *testing.T) {
	s := openQuotaStore(t)
	if err := s.PutOwned(KindArtifact, quotaKey(0), []byte("a"), "gold"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindArtifact, quotaKey(1), []byte("b")); err != nil {
		t.Fatal(err)
	}
	owners := s.Owners()
	if len(owners) != 2 || owners[0] != "" || owners[1] != "gold" {
		t.Errorf("Owners() = %q", owners)
	}
}

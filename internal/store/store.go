// Package store is the persistent half of the compile service's
// amortization story: a content-addressed on-disk schedule store. The
// paper's premise is that communication patterns are known ahead of time,
// so the expensive work — conflict-free configuration scheduling — is done
// once and reused; this package makes "once" survive a process restart.
//
// Entries are keyed by canonical pattern hashes (request.PatternKey and the
// service's program keys), so the store inherits the cache's
// order-invariance: two traces that are permutations of each other share
// one entry. Two kinds of payload are stored:
//
//   - KindArtifact — the marshaled JSON artifact a /compile reply carries,
//     persisted so a restarted daemon serves byte-identical cache hits;
//   - KindSchedule — a binary-encoded schedule.Result (see codec.go), the
//     base material of the incremental recompiler in internal/delta.
//
// Durability discipline:
//
//   - writes are atomic: payloads go to a temp file in the target
//     directory, are fsynced, and renamed into place — a crash mid-write
//     leaves a *.tmp straggler that the next Open sweeps away, never a
//     half-visible entry;
//   - every entry carries a SHA-256 digest over its header and payload;
//     a corrupt entry (bit rot, truncation, a key that does not match its
//     filename) is quarantined — moved aside, reported in metrics, and
//     treated as a miss — so a bad file can never crash or poison a
//     serving daemon;
//   - the in-memory index built at Open supports size- and age-bounded
//     garbage collection, oldest entries first.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Entry kinds. Kinds partition the key space and the directory layout.
const (
	// KindArtifact holds marshaled service artifacts (JSON), keyed by the
	// service's program key.
	KindArtifact = "artifact"
	// KindSchedule holds binary-encoded schedule.Results (codec.go), keyed
	// by BaseKey — the delta compiler's base material.
	KindSchedule = "schedule"
)

// entryExt is the filename extension of live entries.
const entryExt = ".cse"

// entryMagic leads every entry file; bumping it orphans old stores on
// purpose (they quarantine and recompile).
var entryMagic = []byte("CCSTOR1\n")

// Options bound the store. Zero values mean unbounded.
type Options struct {
	// MaxEntries caps the number of live entries; GC removes the oldest
	// beyond it.
	MaxEntries int
	// MaxAge expires entries not rewritten within the window.
	MaxAge time.Duration
}

// EntryInfo describes one live entry.
type EntryInfo struct {
	Kind string
	Key  string
	// Owner is the tenant (QoS class) the entry is billed to; "" is the
	// default tenant. Ownership is recorded in the entry frame; for entries
	// indexed at Open the owner is learned lazily, at the first Get or Put.
	Owner   string
	Size    int64
	ModTime time.Time
}

// OwnerUsage snapshots one tenant's footprint in the store.
type OwnerUsage struct {
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Evictions uint64 `json:"evictions"` // entries removed by QuotaGC
}

// Metrics snapshots the store's counters.
type Metrics struct {
	Entries     int    `json:"entries"`
	Bytes       int64  `json:"bytes"`
	Puts        uint64 `json:"puts"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Quarantined uint64 `json:"quarantined"`
}

// GCStats reports one garbage-collection pass.
type GCStats struct {
	Removed int // entries deleted
	Kept    int // entries surviving
}

// Store is a content-addressed schedule store rooted at one directory.
// All methods are safe for concurrent use.
type Store struct {
	dir string
	opt Options

	mu          sync.Mutex
	index       map[string]EntryInfo // "kind/key" -> info
	evictions   map[string]uint64    // owner -> QuotaGC removals
	puts        uint64
	hits        uint64
	misses      uint64
	quarantined uint64
}

// Open opens (creating if needed) the store rooted at dir, sweeps crash
// leftovers (*.tmp files from writes that never renamed), and builds the
// entry index. Corrupt entries are detected lazily, at Get.
func Open(dir string, opt Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opt: opt, index: make(map[string]EntryInfo), evictions: make(map[string]uint64)}
	err := filepath.Walk(dir, func(path string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() {
			return err
		}
		if rel, e := filepath.Rel(dir, path); e == nil && strings.HasPrefix(rel, quarantineDir) {
			return nil
		}
		if strings.HasSuffix(path, ".tmp") {
			// A write that died between create and rename; the entry it was
			// replacing (if any) is still intact.
			return os.Remove(path)
		}
		if !strings.HasSuffix(path, entryExt) {
			return nil // foreign file; leave it alone
		}
		kind, key, ok := s.parsePath(path)
		if !ok {
			return nil
		}
		s.index[kind+"/"+key] = EntryInfo{Kind: kind, Key: key, Size: fi.Size(), ModTime: fi.ModTime()}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", dir, err)
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// quarantineDir is where corrupt entries are moved, relative to the root.
const quarantineDir = "quarantine"

// entryPath is dir/kind/key[:2]/key.cse; the two-character shard keeps any
// one directory small under large stores.
func (s *Store) entryPath(kind, key string) string {
	return filepath.Join(s.dir, kind, key[:2], key+entryExt)
}

// parsePath inverts entryPath.
func (s *Store) parsePath(path string) (kind, key string, ok bool) {
	rel, err := filepath.Rel(s.dir, path)
	if err != nil {
		return "", "", false
	}
	parts := strings.Split(filepath.ToSlash(rel), "/")
	if len(parts) != 3 {
		return "", "", false
	}
	kind = parts[0]
	key = strings.TrimSuffix(parts[2], entryExt)
	if validKind(kind) != nil || validKey(key) != nil || parts[1] != key[:2] {
		return "", "", false
	}
	return kind, key, true
}

// validKey accepts lowercase-hex content hashes only, which doubles as the
// path-traversal guard (keys become filenames).
func validKey(key string) error {
	if len(key) < 8 {
		return fmt.Errorf("store: key %q too short", key)
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("store: key %q is not lowercase hex", key)
		}
	}
	return nil
}

func validKind(kind string) error {
	if kind == "" || kind == quarantineDir {
		return fmt.Errorf("store: invalid kind %q", kind)
	}
	for _, c := range kind {
		if c < 'a' || c > 'z' {
			return fmt.Errorf("store: kind %q is not lowercase alpha", kind)
		}
	}
	return nil
}

// encodeEntry frames a payload: magic, kind, key, payload (all length- or
// count-prefixed, so the framing is injective), then a SHA-256 digest over
// everything preceding it. A non-empty owner (the tenant the entry is
// billed to) is framed as an optional fourth field; owner "" keeps the
// historical three-field frame, so pre-tenancy stores and default-tenant
// entries are byte-identical with what older code wrote.
func encodeEntry(kind, key string, payload []byte, owner string) []byte {
	b := make([]byte, 0, len(entryMagic)+len(kind)+len(key)+len(payload)+len(owner)+64)
	b = append(b, entryMagic...)
	b = appendBytes(b, []byte(kind))
	b = appendBytes(b, []byte(key))
	b = appendBytes(b, payload)
	if owner != "" {
		b = appendBytes(b, []byte(owner))
	}
	sum := sha256.Sum256(b)
	return append(b, sum[:]...)
}

func appendBytes(b, v []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

// decodeEntry verifies the frame end to end and returns its parts. The
// owner field is optional: a three-field frame (everything written before
// tenancy, and all default-tenant entries since) decodes with owner "".
func decodeEntry(data []byte) (kind, key string, payload []byte, owner string, err error) {
	if len(data) < len(entryMagic)+sha256.Size || !bytes.Equal(data[:len(entryMagic)], entryMagic) {
		return "", "", nil, "", fmt.Errorf("store: bad entry magic")
	}
	body, digest := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if sum := sha256.Sum256(body); !bytes.Equal(sum[:], digest) {
		return "", "", nil, "", fmt.Errorf("store: entry digest mismatch")
	}
	rest := body[len(entryMagic):]
	kindB, rest, err := readBytes(rest)
	if err != nil {
		return "", "", nil, "", err
	}
	keyB, rest, err := readBytes(rest)
	if err != nil {
		return "", "", nil, "", err
	}
	payload, rest, err = readBytes(rest)
	if err != nil {
		return "", "", nil, "", err
	}
	var ownerB []byte
	if len(rest) != 0 {
		ownerB, rest, err = readBytes(rest)
		if err != nil {
			return "", "", nil, "", err
		}
	}
	if len(rest) != 0 {
		return "", "", nil, "", fmt.Errorf("store: %d trailing bytes after owner", len(rest))
	}
	return string(kindB), string(keyB), payload, string(ownerB), nil
}

func readBytes(b []byte) (v, rest []byte, err error) {
	n, w := binary.Uvarint(b)
	if w <= 0 || n > uint64(len(b)-w) {
		return nil, nil, fmt.Errorf("store: truncated entry")
	}
	return b[w : w+int(n)], b[w+int(n):], nil
}

// Put atomically writes an entry billed to the default tenant. See
// PutOwned.
func (s *Store) Put(kind, key string, payload []byte) error {
	return s.PutOwned(kind, key, payload, "")
}

// PutOwned atomically writes an entry billed to a tenant: temp file in the
// destination directory, fsync, rename. An existing entry under the same
// key is replaced (same content, by construction of content addressing —
// or a deliberate overwrite after a codec change; ownership follows the
// latest writer).
func (s *Store) PutOwned(kind, key string, payload []byte, owner string) error {
	if err := validKind(kind); err != nil {
		return err
	}
	if err := validKey(key); err != nil {
		return err
	}
	path := s.entryPath(kind, key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	f, err := os.CreateTemp(filepath.Dir(path), key+"-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	data := encodeEntry(kind, key, payload, owner)
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: writing %s/%s: %w", kind, key, err)
	}
	s.mu.Lock()
	s.index[kind+"/"+key] = EntryInfo{Kind: kind, Key: key, Owner: owner, Size: int64(len(data)), ModTime: time.Now()}
	s.puts++
	s.mu.Unlock()
	return nil
}

// Get reads and verifies an entry. See GetOwned.
func (s *Store) Get(kind, key string) ([]byte, bool) {
	payload, _, ok := s.GetOwned(kind, key)
	return payload, ok
}

// GetOwned reads and verifies an entry, returning the tenant it is billed
// to. A missing entry is a plain miss; a corrupt one (bad digest,
// truncation, kind/key mismatch with its location) is quarantined and
// reported as a miss — never an error, never a panic. The decoded owner is
// backfilled into the index, so entries discovered at Open gain their
// owner on first read.
func (s *Store) GetOwned(kind, key string) (payload []byte, owner string, ok bool) {
	if validKind(kind) != nil || validKey(key) != nil {
		return nil, "", false
	}
	path := s.entryPath(kind, key)
	data, err := os.ReadFile(path)
	if err != nil {
		s.mu.Lock()
		s.misses++
		delete(s.index, kind+"/"+key)
		s.mu.Unlock()
		return nil, "", false
	}
	gotKind, gotKey, payload, owner, err := decodeEntry(data)
	if err == nil && (gotKind != kind || gotKey != key) {
		err = fmt.Errorf("store: entry claims %s/%s but lives at %s/%s", gotKind, gotKey, kind, key)
	}
	if err != nil {
		s.quarantine(kind, key, path)
		return nil, "", false
	}
	s.mu.Lock()
	s.hits++
	if info, live := s.index[kind+"/"+key]; live && info.Owner != owner {
		info.Owner = owner
		s.index[kind+"/"+key] = info
	}
	s.mu.Unlock()
	return payload, owner, true
}

// Has reports whether a live entry exists for the key (by index; contents
// are verified only at Get).
func (s *Store) Has(kind, key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[kind+"/"+key]
	return ok
}

// quarantine moves a corrupt entry aside so it is never re-read, keeping it
// on disk for post-mortems rather than deleting evidence.
func (s *Store) quarantine(kind, key, path string) {
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if err := os.Rename(path, filepath.Join(qdir, kind+"-"+key+".bad")); err != nil {
			os.Remove(path) // rename across a broken fs boundary: just drop it
		}
	}
	s.mu.Lock()
	delete(s.index, kind+"/"+key)
	s.quarantined++
	s.misses++
	s.mu.Unlock()
}

// Delete removes an entry if present.
func (s *Store) Delete(kind, key string) error {
	if validKind(kind) != nil || validKey(key) != nil {
		return nil
	}
	err := os.Remove(s.entryPath(kind, key))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	delete(s.index, kind+"/"+key)
	s.mu.Unlock()
	return nil
}

// Len returns the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Entries lists live entries of one kind ("" for all), oldest first (ties
// broken by kind then key, so the order is deterministic).
func (s *Store) Entries(kind string) []EntryInfo {
	s.mu.Lock()
	out := make([]EntryInfo, 0, len(s.index))
	for _, info := range s.index {
		if kind == "" || info.Kind == kind {
			out = append(out, info)
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].ModTime.Equal(out[j].ModTime) {
			return out[i].ModTime.Before(out[j].ModTime)
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// GC applies the store's Options bounds: entries older than MaxAge go
// first, then the oldest entries beyond MaxEntries. A zero Options is a
// no-op.
func (s *Store) GC() (GCStats, error) {
	return s.GCWith(s.opt.MaxEntries, s.opt.MaxAge)
}

// GCWith garbage-collects with explicit bounds (for cmd/ccstore).
func (s *Store) GCWith(maxEntries int, maxAge time.Duration) (GCStats, error) {
	all := s.Entries("")
	var stats GCStats
	cutoff := time.Time{}
	if maxAge > 0 {
		cutoff = time.Now().Add(-maxAge)
	}
	drop := func(info EntryInfo) error {
		if err := s.Delete(info.Kind, info.Key); err != nil {
			return err
		}
		stats.Removed++
		return nil
	}
	live := all[:0]
	for _, info := range all {
		if maxAge > 0 && info.ModTime.Before(cutoff) {
			if err := drop(info); err != nil {
				return stats, err
			}
			continue
		}
		live = append(live, info)
	}
	if maxEntries > 0 && len(live) > maxEntries {
		for _, info := range live[:len(live)-maxEntries] {
			if err := drop(info); err != nil {
				return stats, err
			}
		}
		live = live[len(live)-maxEntries:]
	}
	stats.Kept = len(live)
	return stats, nil
}

// Usage snapshots one tenant's store footprint: live entries and bytes
// billed to the owner, plus the running count of quota evictions charged
// to it. Owner "" is the default tenant (which also absorbs pre-tenancy
// entries whose frames carry no owner).
func (s *Store) Usage(owner string) OwnerUsage {
	s.mu.Lock()
	defer s.mu.Unlock()
	u := OwnerUsage{Evictions: s.evictions[owner]}
	for _, info := range s.index {
		if info.Owner == owner {
			u.Entries++
			u.Bytes += info.Size
		}
	}
	return u
}

// Owners returns the distinct owners of live entries, sorted, always
// including "" (the default tenant) if any unowned entry is live.
func (s *Store) Owners() []string {
	s.mu.Lock()
	set := make(map[string]bool)
	for _, info := range s.index {
		set[info.Owner] = true
	}
	s.mu.Unlock()
	out := make([]string, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// QuotaGC enforces one tenant's quota: while the owner holds more than
// maxEntries entries or maxBytes bytes (zero bounds are unbounded), its
// oldest entries are deleted — and only its entries, so one tenant's flood
// can never evict another tenant's warm state. Removals are charged to the
// owner's eviction counter.
func (s *Store) QuotaGC(owner string, maxEntries int, maxBytes int64) (GCStats, error) {
	if maxEntries <= 0 && maxBytes <= 0 {
		return GCStats{}, nil
	}
	var stats GCStats
	var owned []EntryInfo
	var bytes int64
	for _, info := range s.Entries("") { // oldest first
		if info.Owner == owner {
			owned = append(owned, info)
			bytes += info.Size
		}
	}
	for _, info := range owned {
		over := (maxEntries > 0 && len(owned)-stats.Removed > maxEntries) ||
			(maxBytes > 0 && bytes > maxBytes)
		if !over {
			break
		}
		if err := s.Delete(info.Kind, info.Key); err != nil {
			return stats, err
		}
		stats.Removed++
		bytes -= info.Size
		s.mu.Lock()
		s.evictions[owner]++
		s.mu.Unlock()
	}
	stats.Kept = len(owned) - stats.Removed
	return stats, nil
}

// VerifyAll reads and digest-checks every live entry, quarantining the
// corrupt ones. It returns the number verified intact and quarantined.
func (s *Store) VerifyAll() (ok, quarantined int) {
	for _, info := range s.Entries("") {
		if _, hit := s.Get(info.Kind, info.Key); hit {
			ok++
		} else {
			quarantined++
		}
	}
	return ok, quarantined
}

// Metrics snapshots the counters.
func (s *Store) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metrics{
		Entries:     len(s.index),
		Puts:        s.puts,
		Hits:        s.hits,
		Misses:      s.misses,
		Quarantined: s.quarantined,
	}
	for _, info := range s.index {
		m.Bytes += info.Size
	}
	return m
}

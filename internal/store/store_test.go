package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// keyN fabricates a distinct valid (lowercase-hex) key.
func keyN(n byte) string {
	return strings.Repeat("0", 62) + string([]byte{hexDigit(n >> 4), hexDigit(n & 0xf)})
}

func hexDigit(v byte) byte {
	if v < 10 {
		return '0' + v
	}
	return 'a' + v - 10
}

func open(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	payload := []byte("the compiled artifact")
	if err := s.Put(KindArtifact, keyN(1), payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(KindArtifact, keyN(1))
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want payload back", got, ok)
	}
	if _, ok := s.Get(KindArtifact, keyN(2)); ok {
		t.Fatal("Get of absent key reported a hit")
	}
	if _, ok := s.Get(KindSchedule, keyN(1)); ok {
		t.Fatal("kinds share a key space")
	}
	m := s.Metrics()
	if m.Entries != 1 || m.Puts != 1 || m.Hits != 1 || m.Misses != 2 || m.Quarantined != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Bytes <= int64(len(payload)) {
		t.Fatalf("Bytes = %d, want > payload size (framing)", m.Bytes)
	}
}

func TestReopenSeesEntries(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	if err := s.Put(KindSchedule, keyN(3), []byte("sched")); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, Options{})
	if !s2.Has(KindSchedule, keyN(3)) {
		t.Fatal("reopened store lost the entry")
	}
	got, ok := s2.Get(KindSchedule, keyN(3))
	if !ok || string(got) != "sched" {
		t.Fatalf("reopened Get = %q, %v", got, ok)
	}
}

func TestKillMidWriteLeavesOldEntryIntact(t *testing.T) {
	// A crash between temp-file creation and rename leaves a *.tmp
	// straggler; Open must sweep it and the previous entry must survive.
	dir := t.TempDir()
	s := open(t, dir, Options{})
	key := keyN(4)
	if err := s.Put(KindArtifact, key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	shard := filepath.Dir(s.entryPath(KindArtifact, key))
	partial := filepath.Join(shard, key+"-12345.tmp")
	if err := os.WriteFile(partial, []byte("half-writ"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, Options{})
	if _, err := os.Stat(partial); !os.IsNotExist(err) {
		t.Fatalf("Open did not sweep the partial temp file: %v", err)
	}
	got, ok := s2.Get(KindArtifact, key)
	if !ok || string(got) != "v1" {
		t.Fatalf("entry damaged by crash leftovers: %q, %v", got, ok)
	}
	if s2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s2.Len())
	}
}

func TestCorruptEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	key := keyN(5)
	if err := s.Put(KindArtifact, key, []byte("precious bytes")); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte on disk.
	path := s.entryPath(KindArtifact, key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-40] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// A fresh store (daemon reboot) must index it, then skip it at Get
	// without crashing.
	s2 := open(t, dir, Options{})
	if s2.Len() != 1 {
		t.Fatalf("Len = %d, want the (not-yet-verified) entry indexed", s2.Len())
	}
	if _, ok := s2.Get(KindArtifact, key); ok {
		t.Fatal("corrupt entry served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry still live on disk")
	}
	qpath := filepath.Join(dir, quarantineDir, KindArtifact+"-"+key+".bad")
	if _, err := os.Stat(qpath); err != nil {
		t.Fatalf("corrupt entry not in quarantine: %v", err)
	}
	if m := s2.Metrics(); m.Quarantined != 1 || m.Entries != 0 {
		t.Fatalf("metrics after quarantine = %+v", m)
	}
	// Quarantined entries stay out of a reopened index too.
	if s3 := open(t, dir, Options{}); s3.Len() != 0 {
		t.Fatalf("quarantined entry re-indexed: Len = %d", s3.Len())
	}
}

func TestTruncatedEntryQuarantined(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	key := keyN(6)
	if err := s.Put(KindArtifact, key, []byte("soon to be truncated")); err != nil {
		t.Fatal(err)
	}
	path := s.entryPath(KindArtifact, key)
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(KindArtifact, key); ok {
		t.Fatal("truncated entry served")
	}
	if m := s.Metrics(); m.Quarantined != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestMisplacedEntryQuarantined(t *testing.T) {
	// An entry whose embedded key disagrees with its filename is corrupt
	// even if its digest verifies (someone renamed files on disk).
	s := open(t, t.TempDir(), Options{})
	if err := s.Put(KindArtifact, keyN(7), []byte("payload")); err != nil {
		t.Fatal(err)
	}
	src := s.entryPath(KindArtifact, keyN(7))
	dst := s.entryPath(KindArtifact, keyN(8))
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(src, dst); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(KindArtifact, keyN(8)); ok {
		t.Fatal("misplaced entry served under the wrong key")
	}
}

func TestBadKeysRejected(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	for _, key := range []string{"", "short", "../../../etc/passwd", strings.Repeat("Z", 64), strings.Repeat("0", 61) + "/.."} {
		if err := s.Put(KindArtifact, key, []byte("x")); err == nil {
			t.Errorf("Put accepted key %q", key)
		}
		if _, ok := s.Get(KindArtifact, key); ok {
			t.Errorf("Get accepted key %q", key)
		}
	}
	if err := s.Put("Quarantine!", keyN(9), []byte("x")); err == nil {
		t.Error("Put accepted invalid kind")
	}
}

func TestGCBounds(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{MaxEntries: 2})
	base := time.Now().Add(-time.Hour)
	for i := byte(1); i <= 4; i++ {
		key := keyN(i)
		if err := s.Put(KindArtifact, key, []byte{i}); err != nil {
			t.Fatal(err)
		}
		// Spread mtimes a minute apart so age ordering is unambiguous.
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(s.entryPath(KindArtifact, key), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen so the index carries the adjusted mtimes.
	s = open(t, dir, Options{MaxEntries: 2})
	stats, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Removed != 2 || stats.Kept != 2 {
		t.Fatalf("GC stats = %+v, want 2 removed, 2 kept", stats)
	}
	for i := byte(1); i <= 2; i++ {
		if s.Has(KindArtifact, keyN(i)) {
			t.Errorf("old entry %d survived size GC", i)
		}
	}
	for i := byte(3); i <= 4; i++ {
		if !s.Has(KindArtifact, keyN(i)) {
			t.Errorf("recent entry %d removed by size GC", i)
		}
	}
	// Age bound: everything is an hour old.
	stats, err = s.GCWith(0, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Removed != 2 || s.Len() != 0 {
		t.Fatalf("age GC removed %d, %d live; want 2 removed, 0 live", stats.Removed, s.Len())
	}
}

func TestVerifyAll(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	for i := byte(1); i <= 3; i++ {
		if err := s.Put(KindSchedule, keyN(i), []byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt one.
	path := s.entryPath(KindSchedule, keyN(2))
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	ok, quarantined := s.VerifyAll()
	if ok != 2 || quarantined != 1 {
		t.Fatalf("VerifyAll = %d ok, %d quarantined", ok, quarantined)
	}
}

func TestEntriesOrderedOldestFirst(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	base := time.Now().Add(-time.Hour)
	for i := byte(1); i <= 3; i++ {
		if err := s.Put(KindArtifact, keyN(i), []byte{i}); err != nil {
			t.Fatal(err)
		}
		mt := base.Add(time.Duration(4-i) * time.Minute) // reverse order
		if err := os.Chtimes(s.entryPath(KindArtifact, keyN(i)), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	s = open(t, dir, Options{})
	entries := s.Entries(KindArtifact)
	if len(entries) != 3 {
		t.Fatalf("Entries = %d, want 3", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].ModTime.Before(entries[i-1].ModTime) {
			t.Fatalf("entries not oldest-first: %v", entries)
		}
	}
	if entries[0].Key != keyN(3) || entries[2].Key != keyN(1) {
		t.Fatalf("unexpected order: %v", entries)
	}
}

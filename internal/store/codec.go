// codec.go is the injective binary encoding of compiled schedule.Results —
// the payload format of KindSchedule entries. The encoding preserves the
// exact configuration and within-configuration request order, so
// encode→decode→encode is a fixed point and a decoded schedule is
// byte-identical material for the delta compiler's determinism guarantees.
package store

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/network"
	"repro/internal/request"
	"repro/internal/schedule"
)

// resultMagic versions the schedule encoding; bumping it orphans stored
// schedules on purpose (they decode to an error and are recompiled).
var resultMagic = []byte("ccres1\n")

// EncodeResult serializes a schedule to the store's binary form: magic,
// algorithm name, topology name, then the configurations as uvarint-framed
// (src, dst) lists. Every field is length- or count-prefixed, so the
// encoding is injective, and nothing is reordered, so it round-trips
// exactly.
func EncodeResult(r *schedule.Result) []byte {
	n := 0
	for _, cfg := range r.Configs {
		n += len(cfg)
	}
	b := make([]byte, 0, len(resultMagic)+len(r.Algorithm)+32+10*n)
	b = append(b, resultMagic...)
	b = appendBytes(b, []byte(r.Algorithm))
	b = appendBytes(b, []byte(r.Topology.Name()))
	b = binary.AppendUvarint(b, uint64(len(r.Configs)))
	for _, cfg := range r.Configs {
		b = binary.AppendUvarint(b, uint64(len(cfg)))
		for _, q := range cfg {
			b = binary.AppendUvarint(b, uint64(q.Src))
			b = binary.AppendUvarint(b, uint64(q.Dst))
		}
	}
	return b
}

// Decoded is a schedule parsed from the store, not yet bound to a live
// topology value.
type Decoded struct {
	// Algorithm is the producing scheduler's name (possibly "+delta"
	// suffixed by the incremental compiler).
	Algorithm string
	// Topology is the name of the topology the schedule was computed for.
	Topology string
	// Configs is the configuration partition, in stored order.
	Configs []request.Set
}

// DecodeResult parses a stored schedule encoding.
func DecodeResult(data []byte) (*Decoded, error) {
	if len(data) < len(resultMagic) || !bytes.Equal(data[:len(resultMagic)], resultMagic) {
		return nil, fmt.Errorf("store: bad schedule magic")
	}
	rest := data[len(resultMagic):]
	alg, rest, err := readBytes(rest)
	if err != nil {
		return nil, err
	}
	topo, rest, err := readBytes(rest)
	if err != nil {
		return nil, err
	}
	readUvarint := func() (uint64, error) {
		n, w := binary.Uvarint(rest)
		if w <= 0 {
			return 0, fmt.Errorf("store: truncated schedule")
		}
		rest = rest[w:]
		return n, nil
	}
	nc, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if nc > uint64(len(rest)) { // each config costs at least one byte
		return nil, fmt.Errorf("store: schedule claims %d configurations in %d bytes", nc, len(rest))
	}
	d := &Decoded{Algorithm: string(alg), Topology: string(topo), Configs: make([]request.Set, nc)}
	for k := range d.Configs {
		nr, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if nr > uint64(len(rest)) { // each request costs at least two bytes
			return nil, fmt.Errorf("store: configuration claims %d requests in %d bytes", nr, len(rest))
		}
		cfg := make(request.Set, nr)
		for i := range cfg {
			src, err := readUvarint()
			if err != nil {
				return nil, err
			}
			dst, err := readUvarint()
			if err != nil {
				return nil, err
			}
			cfg[i] = request.Request{Src: network.NodeID(src), Dst: network.NodeID(dst)}
		}
		d.Configs[k] = cfg
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("store: %d trailing bytes after schedule", len(rest))
	}
	return d, nil
}

// Requests flattens the decoded configurations into the request multiset
// they serve, in stored order.
func (d *Decoded) Requests() request.Set {
	n := 0
	for _, cfg := range d.Configs {
		n += len(cfg)
	}
	out := make(request.Set, 0, n)
	for _, cfg := range d.Configs {
		out = append(out, cfg...)
	}
	return out
}

// Result binds the decoded schedule to a live topology, rebuilding the slot
// index. The topology's name must match the one the schedule was stored
// for; a decoded schedule is never silently rebound to a different network.
func (d *Decoded) Result(topo network.Topology) (*schedule.Result, error) {
	if topo.Name() != d.Topology {
		return nil, fmt.Errorf("store: schedule is for %s, not %s", d.Topology, topo.Name())
	}
	slot := make(map[request.Request]int)
	for k, cfg := range d.Configs {
		for _, q := range cfg {
			slot[q] = k
		}
	}
	return &schedule.Result{Algorithm: d.Algorithm, Topology: topo, Configs: d.Configs, Slot: slot}, nil
}

// BaseKey is the store key of a pattern's healthy base schedule: the
// canonical PatternKey of the (deduplicated) request set on a topology
// under a scheduling algorithm. cmd/ccsched, the compile service and the
// delta compiler all address base schedules through this one formula, so a
// schedule compiled by any of them warms the others.
func BaseKey(reqs request.Set, topoName, schedName string) string {
	return request.PatternKey(reqs.Triples(0), topoName, "alg="+schedName, "kind=delta-base")
}

package qos_test

import (
	"testing"

	"repro/internal/qos"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestReserveAdmit(t *testing.T) {
	lin := topology.NewLinear(4)
	fan := request.Set{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}}

	wide := qos.Reserve{Tenant: "gold", Frame: 6, Lo: 0, Hi: 3}
	if err := wide.Admit(lin, fan); err != nil {
		t.Errorf("3-slot window rejected a degree-3 pattern: %v", err)
	}
	narrow := qos.Reserve{Tenant: "gold", Frame: 6, Lo: 0, Hi: 2}
	if err := narrow.Admit(lin, fan); err == nil {
		t.Error("2-slot window admitted a pattern whose lower bound is 3")
	}
	bad := qos.Reserve{Tenant: "gold", Frame: 4, Lo: 3, Hi: 2}
	if err := bad.Validate(); err == nil {
		t.Error("inverted window validated")
	}
}

// TestReserveVerifyInvariance is the end-to-end QoS guarantee on a real
// torus: the reserved tenant's simulated delivery times are identical with
// and without a heavy background pattern.
func TestReserveVerifyInvariance(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	r := qos.Reserve{Tenant: "gold", Frame: 8, Lo: 2, Hi: 4}
	reserved := request.Set{{Src: 0, Dst: 8}, {Src: 1, Dst: 9}}
	background := request.Set{
		{Src: 16, Dst: 24}, {Src: 17, Dst: 25}, {Src: 18, Dst: 26},
		{Src: 19, Dst: 27}, {Src: 20, Dst: 28}, {Src: 21, Dst: 29},
		{Src: 40, Dst: 48}, {Src: 41, Dst: 49},
	}
	msgs := []sim.Message{
		{Src: 0, Dst: 8, Flits: 31},
		{Src: 1, Dst: 9, Flits: 7},
	}
	if err := r.VerifyInvariance(torus, schedule.Combined{}, reserved, background, msgs); err != nil {
		t.Fatal(err)
	}
}

func TestReserveScheduleAndDelivery(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	r := qos.Reserve{Tenant: "gold", Frame: 5, Lo: 1, Hi: 2}
	reserved := request.Set{{Src: 0, Dst: 1}}
	res, err := r.Schedule(torus, schedule.Combined{}, reserved, request.Set{{Src: 8, Dst: 9}})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := r.Delivery(res, []sim.Message{{Src: 0, Dst: 1, Flits: 3}})
	if err != nil {
		t.Fatal(err)
	}
	// Circuit in slot 1 of a 5-slot frame: flit f lands at f*5 + 2 (slot
	// indices are 0-based, delivery reported at slot end).
	if len(fin) != 1 || fin[0] != 12 {
		t.Errorf("delivery = %v, want [12]", fin)
	}
}

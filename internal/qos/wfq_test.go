package qos

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func testRegistry(t *testing.T, classes ...Class) *Registry {
	t.Helper()
	reg, err := NewRegistry(classes, Defaults{QueueDepth: 1024, RetryAfter: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// drain dequeues every queued item and returns the class dispatch order.
func drain(q *WFQ) []string {
	var order []string
	for q.Depth() > 0 {
		_, class, _, ok := q.Dequeue()
		if !ok {
			break
		}
		order = append(order, class)
	}
	return order
}

// TestWFQDeterministicSchedule pins the exact dispatch order for a known
// enqueue sequence: WFQ tags are integer virtual times, ties break by
// class name, so the schedule is a pure function of the enqueue order.
func TestWFQDeterministicSchedule(t *testing.T) {
	cases := []struct {
		name    string
		classes []Class
		enq     []string // class per enqueued item, in order
		want    []string // exact dispatch order
	}{
		{
			name:    "weight 2:1 interleave",
			classes: []Class{{Name: "gold", Weight: 2}, {Name: "bronze", Weight: 1}},
			enq:     []string{"gold", "gold", "gold", "gold", "bronze", "bronze"},
			// gold tags: .5 1 1.5 2 (in wfqScale units), bronze tags: 1 2.
			// Ties at 1 and 2 go to bronze < gold alphabetically.
			want: []string{"gold", "bronze", "gold", "gold", "bronze", "gold"},
		},
		{
			name:    "equal weights alternate",
			classes: []Class{{Name: "a", Weight: 1}, {Name: "b", Weight: 1}},
			enq:     []string{"a", "a", "b", "b"},
			want:    []string{"a", "b", "a", "b"},
		},
		{
			name:    "unknown class folds into default",
			classes: []Class{{Name: "gold", Weight: 4}},
			enq:     []string{"mystery", "gold"},
			want:    []string{"gold", "default"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			q := NewWFQ(testRegistry(t, c.classes...))
			for i, class := range c.enq {
				if err := q.Enqueue(class, i); err != nil {
					t.Fatal(err)
				}
			}
			got := drain(q)
			if fmt.Sprint(got) != fmt.Sprint(c.want) {
				t.Errorf("dispatch order = %v, want %v", got, c.want)
			}
		})
	}
}

// TestWFQIdleClassNoCredit: a class returning from idle starts at the
// current virtual time instead of burning banked credit, so it cannot
// leapfrog backlog that accumulated while it was away.
func TestWFQIdleClassNoCredit(t *testing.T) {
	q := NewWFQ(testRegistry(t, Class{Name: "a", Weight: 1}, Class{Name: "b", Weight: 1}))
	for i := 0; i < 3; i++ {
		if err := q.Enqueue("a", i); err != nil {
			t.Fatal(err)
		}
	}
	// a runs alone for two dispatches; virtual time advances to 2·incr.
	for i := 0; i < 2; i++ {
		if _, class, _, _ := q.Dequeue(); class != "a" {
			t.Fatalf("warmup dispatch %d went to %s", i, class)
		}
	}
	// b arrives now. With credit banking its tag would be 1·incr and it
	// would jump ahead of a's remaining item (tag 3·incr); without banking
	// it tags 3·incr and the name tie-break favors a's earlier backlog...
	if err := q.Enqueue("b", 0); err != nil {
		t.Fatal(err)
	}
	if got := drain(q); fmt.Sprint(got) != fmt.Sprint([]string{"a", "b"}) {
		t.Errorf("post-idle dispatch order = %v, want [a b]", got)
	}
}

// TestWFQWeightedShareConverges floods two classes and checks that over a
// long backlog each receives dispatch slots proportional to its weight.
func TestWFQWeightedShareConverges(t *testing.T) {
	for _, ratio := range []struct{ gold, bronze int }{{8, 1}, {3, 2}, {5, 1}} {
		t.Run(fmt.Sprintf("%d:%d", ratio.gold, ratio.bronze), func(t *testing.T) {
			q := NewWFQ(testRegistry(t,
				Class{Name: "gold", Weight: ratio.gold},
				Class{Name: "bronze", Weight: ratio.bronze}))
			const n = 900
			for i := 0; i < n; i++ {
				if err := q.Enqueue("gold", i); err != nil {
					t.Fatal(err)
				}
				if err := q.Enqueue("bronze", i); err != nil {
					t.Fatal(err)
				}
			}
			// While both classes stay backlogged, count the first window of
			// dispatches; past the window the smaller class drains out and
			// the ratio no longer applies.
			window := n * (ratio.gold + ratio.bronze) / max(ratio.gold, ratio.bronze)
			counts := map[string]int{}
			for i := 0; i < window; i++ {
				_, class, _, ok := q.Dequeue()
				if !ok {
					t.Fatal("queue drained early")
				}
				counts[class]++
			}
			wantGold := float64(window) * float64(ratio.gold) / float64(ratio.gold+ratio.bronze)
			got := float64(counts["gold"])
			if diff := got - wantGold; diff < -2 || diff > 2 {
				t.Errorf("gold dispatches = %v, want %.0f ±2 (counts %v)", got, wantGold, counts)
			}
		})
	}
}

func TestWFQClassCapAndClose(t *testing.T) {
	reg, err := NewRegistry(
		[]Class{{Name: "small", QueueDepth: 2}},
		Defaults{QueueDepth: 8, RetryAfter: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	q := NewWFQ(reg)
	if err := q.Enqueue("small", 1); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue("small", 2); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue("small", 3); !errors.Is(err, ErrClassFull) {
		t.Errorf("over-cap enqueue: err = %v, want ErrClassFull", err)
	}
	// The default class has its own cap, unaffected by small's backlog.
	if err := q.Enqueue("default", 1); err != nil {
		t.Errorf("default enqueue: %v", err)
	}
	if d, capacity := q.ClassDepth("small"); d != 2 || capacity != 2 {
		t.Errorf("ClassDepth(small) = %d/%d, want 2/2", d, capacity)
	}

	q.Close()
	if err := q.Enqueue("small", 4); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close enqueue: err = %v, want ErrClosed", err)
	}
	// Queued items still drain after Close, then Dequeue reports done.
	for i := 0; i < 3; i++ {
		if _, _, _, ok := q.Dequeue(); !ok {
			t.Fatalf("drain item %d: queue reported closed early", i)
		}
	}
	if _, _, _, ok := q.Dequeue(); ok {
		t.Error("Dequeue after drain returned ok=true")
	}
}

// TestWFQConcurrentDrain exercises the queue under -race: concurrent
// producers and consumers, every item delivered exactly once.
func TestWFQConcurrentDrain(t *testing.T) {
	q := NewWFQ(testRegistry(t,
		Class{Name: "gold", Weight: 4},
		Class{Name: "bronze", Weight: 1}))
	const perClass = 500
	var wg sync.WaitGroup
	for _, class := range []string{"gold", "bronze", "default"} {
		wg.Add(1)
		go func(class string) {
			defer wg.Done()
			for i := 0; i < perClass; i++ {
				for q.Enqueue(class, i) != nil {
					time.Sleep(time.Microsecond)
				}
			}
		}(class)
	}
	var mu sync.Mutex
	seen := map[string]int{}
	var consumers sync.WaitGroup
	for w := 0; w < 4; w++ {
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			for {
				_, class, wait, ok := q.Dequeue()
				if !ok {
					return
				}
				if wait < 0 {
					t.Error("negative queue wait")
				}
				mu.Lock()
				seen[class]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	q.Close()
	consumers.Wait()
	for _, class := range []string{"gold", "bronze", "default"} {
		if seen[class] != perClass {
			t.Errorf("class %s delivered %d items, want %d", class, seen[class], perClass)
		}
	}
}

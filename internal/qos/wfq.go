package qos

import (
	"errors"
	"sync"
	"time"
)

// ErrClassFull is returned by Enqueue when the item's class has reached
// its queue-depth cap; the serving layer maps it to HTTP 429 with the
// class's Retry-After hint.
var ErrClassFull = errors.New("qos: class queue full")

// ErrClosed is returned by Enqueue after Close; the serving layer maps it
// to HTTP 503 (draining).
var ErrClosed = errors.New("qos: queue closed")

// wfqScale is the fixed-point scale of virtual time: a job of a class with
// weight w advances the class's virtual finish time by wfqScale/w. Integer
// arithmetic keeps the schedule exactly reproducible across platforms.
const wfqScale = 1 << 20

// WFQ is a virtual-time weighted fair queue over opaque items, the
// admission structure behind the compile worker pool. Each class holds a
// FIFO of pending items tagged with virtual finish times; Dequeue always
// releases the item with the smallest tag (ties broken by class name),
// which is the classic WFQ approximation of bit-by-bit round robin: when
// several classes are backlogged, each receives dispatch slots
// proportional to its weight, and an idle class neither accumulates
// credit nor is penalized when it returns.
//
// The dispatch order is a pure function of the enqueue order, so tests can
// assert exact schedules; all methods are safe for concurrent use.
type WFQ struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ready  map[string]*wfqClass
	names  []string // sorted class names, the deterministic tie-break
	vtime  uint64   // virtual time: tag of the last dispatched item
	queued int
	closed bool
}

type wfqClass struct {
	class  Class
	incr   uint64 // wfqScale / weight
	finish uint64 // virtual finish time of the last enqueued item
	items  []wfqItem
	head   int
}

type wfqItem struct {
	v   any
	tag uint64
	enq time.Time
}

// NewWFQ builds the queue over a registry's classes.
func NewWFQ(reg *Registry) *WFQ {
	q := &WFQ{ready: make(map[string]*wfqClass)}
	q.cond = sync.NewCond(&q.mu)
	for _, c := range reg.Classes() {
		q.ready[c.Name] = &wfqClass{class: c, incr: wfqScale / uint64(c.Weight)}
		q.names = append(q.names, c.Name)
	}
	return q
}

// Enqueue admits one item under a class (unknown classes collapse into
// the default class, mirroring Registry.ClassOf). It fails fast with
// ErrClassFull when the class queue is at its cap and ErrClosed after
// Close — admission never blocks.
func (q *WFQ) Enqueue(class string, v any) error {
	now := time.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	cq, ok := q.ready[class]
	if !ok {
		cq = q.ready[DefaultClass]
	}
	if len(cq.items)-cq.head >= cq.class.QueueDepth {
		return ErrClassFull
	}
	// Virtual finish: the class's previous finish chained forward, but
	// never behind current virtual time — a class returning from idle
	// starts fresh instead of burning banked credit.
	start := q.vtime
	if cq.finish > start {
		start = cq.finish
	}
	tag := start + cq.incr
	cq.finish = tag
	cq.items = append(cq.items, wfqItem{v: v, tag: tag, enq: now})
	q.queued++
	q.cond.Signal()
	return nil
}

// Dequeue blocks until an item is available and returns it together with
// its class and the time it spent queued. ok=false means the queue was
// closed and fully drained — the consumer's termination signal.
func (q *WFQ) Dequeue() (v any, class string, wait time.Duration, ok bool) {
	q.mu.Lock()
	for q.queued == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.queued == 0 { // closed and drained
		q.mu.Unlock()
		return nil, "", 0, false
	}
	var best *wfqClass
	for _, name := range q.names {
		cq := q.ready[name]
		if cq.head == len(cq.items) {
			continue
		}
		if best == nil || cq.items[cq.head].tag < best.items[best.head].tag {
			best = cq
		}
	}
	it := best.items[best.head]
	best.items[best.head] = wfqItem{} // release the reference
	best.head++
	if best.head == len(best.items) {
		best.items = best.items[:0]
		best.head = 0
	}
	q.queued--
	if it.tag > q.vtime {
		q.vtime = it.tag
	}
	q.mu.Unlock()
	return it.v, best.class.Name, time.Since(it.enq), true
}

// Close stops admission. Items already queued are still handed out;
// Dequeue returns ok=false once the queue drains.
func (q *WFQ) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Depth returns the total number of queued items.
func (q *WFQ) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued
}

// ClassDepth returns one class's queued item count and cap.
func (q *WFQ) ClassDepth(class string) (depth, capacity int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	cq, ok := q.ready[class]
	if !ok {
		return 0, 0
	}
	return len(cq.items) - cq.head, cq.class.QueueDepth
}

// Capacity returns the sum of the per-class queue caps.
func (q *WFQ) Capacity() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, cq := range q.ready {
		n += cq.class.QueueDepth
	}
	return n
}

// Package qos is the multi-tenant isolation layer of the compile service:
// admission classes, weighted fair queueing over the compile worker pool,
// per-tenant cache/store quotas, and guaranteed-bandwidth TDM slot
// reservations.
//
// Serving millions of users means not all requests are equal. A single
// tenant flooding distinct pattern keys can monopolize a shared worker
// pool and evict everyone else's warm artifacts; the classic answer — in
// the spirit of the NoC rate-guarantee algorithms this repository's paper
// set points at — is to partition admission, capacity and bandwidth per
// class:
//
//   - Class declares one admission class: scheduling weight, queue-depth
//     cap, Retry-After hint, and cache/store quotas. Classes parse from a
//     compact CLI spec ("gold:weight=8,queue=64;bronze:weight=1").
//   - Registry maps tenant IDs (the X-Ccomm-Tenant request header) to
//     classes. A tenant named like a configured class belongs to it;
//     everything else, including anonymous traffic, lands in the default
//     class — so the class set, and with it every per-class structure,
//     stays bounded no matter how many tenant IDs traffic invents.
//   - WFQ is a deterministic virtual-time weighted fair queue: the
//     service's worker pool drains it so each backlogged class receives
//     worker time proportional to its weight, with per-class queue caps
//     rejecting excess load (HTTP 429) instead of queueing without bound.
//   - Reserve pins a tenant's pattern to a guaranteed window of TDM slots
//     in a fixed frame (schedule.ScheduleReserved); background load
//     compiles into the complementary slots, so the reserved tenant's
//     delivery times are byte-identical with and without competition.
package qos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// TenantHeader is the HTTP request header carrying the tenant ID. The
// cluster layer forwards it on peer compiles so cross-node requests are
// billed to the originating tenant, and peer fetch/gossip replies carry it
// back so replicated artifacts land in the owner's quota partition.
const TenantHeader = "X-Ccomm-Tenant"

// DefaultClass is the class of anonymous traffic and of tenants that match
// no configured class.
const DefaultClass = "default"

// Class is one admission class: the scheduling weight and resource bounds
// shared by every tenant mapped to it. Zero fields inherit the service's
// global defaults at registry construction.
type Class struct {
	// Name identifies the class; tenant IDs equal to it map here.
	Name string
	// Weight is the WFQ scheduling weight: a backlogged class receives
	// worker time proportional to its weight relative to the other
	// backlogged classes. Minimum (and default) 1.
	Weight int
	// QueueDepth caps this class's admission queue; submissions beyond it
	// are rejected (HTTP 429).
	QueueDepth int
	// RetryAfter is the Retry-After hint attached to this class's 429s.
	RetryAfter time.Duration
	// CacheEntries bounds the class's partition of the in-memory artifact
	// cache; eviction stays inside the partition.
	CacheEntries int
	// StoreEntries and StoreBytes bound the class's partition of the
	// persistent store (0 = unbounded); quota GC evicts oldest-first and
	// only within the offending class's partition.
	StoreEntries int
	StoreBytes   int64
}

// Defaults supplies the global values zero Class fields inherit.
type Defaults struct {
	QueueDepth   int
	RetryAfter   time.Duration
	CacheEntries int
	StoreEntries int
	StoreBytes   int64
}

// Registry is the immutable tenant→class mapping the serving stack shares.
type Registry struct {
	classes map[string]Class
	names   []string // sorted; deterministic iteration everywhere
}

// NewRegistry builds a registry from configured classes, filling zero
// fields from defaults and synthesizing the default class if absent. A nil
// or empty class list yields a registry with just the default class, which
// reproduces the pre-QoS single-queue behavior exactly (one class, weight
// 1, global bounds).
func NewRegistry(classes []Class, def Defaults) (*Registry, error) {
	r := &Registry{classes: make(map[string]Class, len(classes)+1)}
	add := func(c Class) error {
		if c.Name == "" {
			return fmt.Errorf("qos: class with empty name")
		}
		if _, dup := r.classes[c.Name]; dup {
			return fmt.Errorf("qos: duplicate class %q", c.Name)
		}
		if c.Weight <= 0 {
			c.Weight = 1
		}
		if c.QueueDepth <= 0 {
			c.QueueDepth = def.QueueDepth
		}
		if c.RetryAfter <= 0 {
			c.RetryAfter = def.RetryAfter
		}
		if c.CacheEntries <= 0 {
			c.CacheEntries = def.CacheEntries
		}
		if c.StoreEntries <= 0 {
			c.StoreEntries = def.StoreEntries
		}
		if c.StoreBytes <= 0 {
			c.StoreBytes = def.StoreBytes
		}
		r.classes[c.Name] = c
		return nil
	}
	for _, c := range classes {
		if err := add(c); err != nil {
			return nil, err
		}
	}
	if _, ok := r.classes[DefaultClass]; !ok {
		if err := add(Class{Name: DefaultClass}); err != nil {
			return nil, err
		}
	}
	for name := range r.classes {
		r.names = append(r.names, name)
	}
	sort.Strings(r.names)
	return r, nil
}

// ClassOf maps a tenant ID to its class: the class named like the tenant,
// or the default class. An empty tenant is the default tenant.
func (r *Registry) ClassOf(tenant string) Class {
	if c, ok := r.classes[tenant]; ok {
		return c
	}
	return r.classes[DefaultClass]
}

// Tenant canonicalizes a tenant ID to its accounting identity: the class
// name it maps to. Unknown tenants collapse into the default partition, so
// partition cardinality equals class cardinality.
func (r *Registry) Tenant(tenant string) string { return r.ClassOf(tenant).Name }

// Classes returns every class, sorted by name.
func (r *Registry) Classes() []Class {
	out := make([]Class, 0, len(r.names))
	for _, n := range r.names {
		out = append(out, r.classes[n])
	}
	return out
}

// Names returns the sorted class names.
func (r *Registry) Names() []string { return append([]string(nil), r.names...) }

// ParseClasses parses the CLI class spec: semicolon-separated classes,
// each "name" or "name:key=value,key=value" with keys weight, queue,
// retry-after, cache, store-entries, store-bytes. Example:
//
//	gold:weight=8,queue=64,cache=256,store-entries=512;bronze:weight=1,queue=16
func ParseClasses(spec string) ([]Class, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []Class
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, opts, _ := strings.Cut(part, ":")
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("qos: class spec %q has no name", part)
		}
		c := Class{Name: name}
		if opts != "" {
			for _, kv := range strings.Split(opts, ",") {
				kv = strings.TrimSpace(kv)
				if kv == "" {
					continue
				}
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("qos: class %q option %q is not key=value", name, kv)
				}
				if err := c.setOption(strings.TrimSpace(k), strings.TrimSpace(v)); err != nil {
					return nil, err
				}
			}
		}
		out = append(out, c)
	}
	return out, nil
}

func (c *Class) setOption(k, v string) error {
	atoi := func() (int, error) {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return 0, fmt.Errorf("qos: class %q: %s=%q is not a positive integer", c.Name, k, v)
		}
		return n, nil
	}
	switch k {
	case "weight":
		n, err := atoi()
		if err != nil {
			return err
		}
		c.Weight = n
	case "queue":
		n, err := atoi()
		if err != nil {
			return err
		}
		c.QueueDepth = n
	case "cache":
		n, err := atoi()
		if err != nil {
			return err
		}
		c.CacheEntries = n
	case "store-entries":
		n, err := atoi()
		if err != nil {
			return err
		}
		c.StoreEntries = n
	case "store-bytes":
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n <= 0 {
			return fmt.Errorf("qos: class %q: store-bytes=%q is not a positive integer", c.Name, v)
		}
		c.StoreBytes = n
	case "retry-after":
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return fmt.Errorf("qos: class %q: retry-after=%q is not a positive duration", c.Name, v)
		}
		c.RetryAfter = d
	default:
		return fmt.Errorf("qos: class %q: unknown option %q", c.Name, k)
	}
	return nil
}

// String renders the class back into spec form (diagnostics, logs).
func (c Class) String() string {
	s := fmt.Sprintf("%s:weight=%d,queue=%d", c.Name, c.Weight, c.QueueDepth)
	if c.CacheEntries > 0 {
		s += fmt.Sprintf(",cache=%d", c.CacheEntries)
	}
	if c.StoreEntries > 0 {
		s += fmt.Sprintf(",store-entries=%d", c.StoreEntries)
	}
	if c.StoreBytes > 0 {
		s += fmt.Sprintf(",store-bytes=%d", c.StoreBytes)
	}
	return s
}

package qos

import (
	"strings"
	"testing"
	"time"
)

func TestParseClasses(t *testing.T) {
	classes, err := ParseClasses("gold:weight=8,queue=64,cache=256,store-entries=512,store-bytes=1048576,retry-after=250ms; bronze:weight=1,queue=16 ;plain")
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 3 {
		t.Fatalf("parsed %d classes, want 3", len(classes))
	}
	gold := classes[0]
	if gold.Name != "gold" || gold.Weight != 8 || gold.QueueDepth != 64 ||
		gold.CacheEntries != 256 || gold.StoreEntries != 512 ||
		gold.StoreBytes != 1048576 || gold.RetryAfter != 250*time.Millisecond {
		t.Errorf("gold parsed as %+v", gold)
	}
	if classes[1].Name != "bronze" || classes[1].Weight != 1 || classes[1].QueueDepth != 16 {
		t.Errorf("bronze parsed as %+v", classes[1])
	}
	if classes[2].Name != "plain" || classes[2].Weight != 0 {
		t.Errorf("plain parsed as %+v", classes[2])
	}

	if out, err := ParseClasses("  "); err != nil || out != nil {
		t.Errorf("empty spec: %v, %v", out, err)
	}
	for _, bad := range []string{
		":weight=1",
		"gold:weight",
		"gold:weight=0",
		"gold:weight=-2",
		"gold:queue=x",
		"gold:retry-after=soon",
		"gold:volume=11",
		"gold:store-bytes=0",
	} {
		if _, err := ParseClasses(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

func TestRegistryDefaultsAndMapping(t *testing.T) {
	def := Defaults{QueueDepth: 32, RetryAfter: 2 * time.Second, CacheEntries: 128, StoreEntries: 64, StoreBytes: 1 << 20}
	reg, err := NewRegistry([]Class{{Name: "gold", Weight: 8, QueueDepth: 64}}, def)
	if err != nil {
		t.Fatal(err)
	}

	gold := reg.ClassOf("gold")
	if gold.Weight != 8 || gold.QueueDepth != 64 {
		t.Errorf("explicit fields overwritten: %+v", gold)
	}
	if gold.RetryAfter != def.RetryAfter || gold.CacheEntries != def.CacheEntries ||
		gold.StoreEntries != def.StoreEntries || gold.StoreBytes != def.StoreBytes {
		t.Errorf("zero fields not defaulted: %+v", gold)
	}

	// The default class is synthesized with weight 1 and global bounds.
	d := reg.ClassOf("")
	if d.Name != DefaultClass || d.Weight != 1 || d.QueueDepth != def.QueueDepth {
		t.Errorf("default class = %+v", d)
	}
	// Unknown tenants collapse into the default partition.
	if got := reg.Tenant("attacker-7f3a"); got != DefaultClass {
		t.Errorf("Tenant(unknown) = %q, want %q", got, DefaultClass)
	}
	if got := reg.Tenant("gold"); got != "gold" {
		t.Errorf("Tenant(gold) = %q", got)
	}

	names := reg.Names()
	if strings.Join(names, ",") != "default,gold" {
		t.Errorf("Names() = %v", names)
	}
	if cs := reg.Classes(); len(cs) != 2 || cs[0].Name != "default" || cs[1].Name != "gold" {
		t.Errorf("Classes() = %v", cs)
	}
}

func TestRegistryRejectsBadClasses(t *testing.T) {
	def := Defaults{QueueDepth: 8, RetryAfter: time.Second}
	if _, err := NewRegistry([]Class{{Name: ""}}, def); err == nil {
		t.Error("empty class name accepted")
	}
	if _, err := NewRegistry([]Class{{Name: "a"}, {Name: "a"}}, def); err == nil {
		t.Error("duplicate class accepted")
	}
	// Overriding the default class explicitly is legal.
	reg, err := NewRegistry([]Class{{Name: DefaultClass, Weight: 3}}, def)
	if err != nil {
		t.Fatal(err)
	}
	if reg.ClassOf("").Weight != 3 {
		t.Errorf("explicit default class lost: %+v", reg.ClassOf(""))
	}
}

package qos

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/sim"
)

// Reserve is a guaranteed-bandwidth schedule constraint: a tenant's
// pattern is pinned to the slot window [Lo, Hi) of a fixed TDM frame of
// Frame slots. Whatever the rest of the system schedules into the frame's
// remaining slots, the reserved circuits keep their absolute slot
// positions and frame period — so the tenant's compiled communication
// time is a contract, not a best case.
type Reserve struct {
	// Tenant names the class holding the reservation (accounting only; the
	// schedule math is tenant-agnostic).
	Tenant string
	// Frame and [Lo, Hi) are the fixed TDM frame and the reserved window.
	Frame, Lo, Hi int
}

// Window converts the reservation to the scheduler's slot window.
func (r Reserve) Window() schedule.SlotWindow {
	return schedule.SlotWindow{Frame: r.Frame, Lo: r.Lo, Hi: r.Hi}
}

// Validate checks the reservation's shape.
func (r Reserve) Validate() error { return r.Window().Validate() }

// Admit is the reservation admission test: does the tenant's pattern fit
// the reserved window at all? It compares the scheduler-independent lower
// bound of the pattern's multiplexing degree against the window width, so
// a reservation rejected here is unsatisfiable by any scheduler, not just
// the configured one.
func (r Reserve) Admit(t network.Topology, reserved request.Set) error {
	if err := r.Validate(); err != nil {
		return err
	}
	lb, err := schedule.LowerBound(t, reserved)
	if err != nil {
		return err
	}
	if lb > r.Window().Width() {
		return fmt.Errorf("qos: tenant %s pattern needs at least %d slots, reserved window [%d,%d) has %d",
			r.Tenant, lb, r.Lo, r.Hi, r.Window().Width())
	}
	return nil
}

// Schedule compiles the reserved pattern into its window and the
// background pattern into the frame's remaining slots (background may be
// empty — the solo baseline).
func (r Reserve) Schedule(t network.Topology, s schedule.Scheduler, reserved, background request.Set) (*schedule.Result, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return schedule.ScheduleReserved(t, s, reserved, background, r.Window())
}

// Delivery simulates the reserved tenant's messages on a composed
// reservation schedule and returns each message's delivery slot. Because
// the frame length and the reserved slots are fixed by the reservation,
// Delivery returns identical values for the same msgs whatever background
// set the schedule was composed with — the property VerifyInvariance
// asserts end to end.
func (r Reserve) Delivery(res *schedule.Result, msgs []sim.Message) ([]int, error) {
	out, err := sim.RunCompiled(res, msgs)
	if err != nil {
		return nil, err
	}
	return out.Finish, nil
}

// VerifyInvariance proves the reservation's guarantee on a concrete
// workload: it schedules the reserved pattern solo and again under the
// background pattern, simulates the reserved tenant's messages on both,
// and fails if any delivery time moved. This is the simulator-backed
// acceptance check of the QoS subsystem (and the qos-smoke CI gate).
func (r Reserve) VerifyInvariance(t network.Topology, s schedule.Scheduler, reserved, background request.Set, msgs []sim.Message) error {
	solo, err := r.Schedule(t, s, reserved, nil)
	if err != nil {
		return fmt.Errorf("qos: solo reservation: %w", err)
	}
	loaded, err := r.Schedule(t, s, reserved, background)
	if err != nil {
		return fmt.Errorf("qos: loaded reservation: %w", err)
	}
	if err := schedule.ValidateReserved(loaded, reserved, background, r.Window()); err != nil {
		return err
	}
	fSolo, err := r.Delivery(solo, msgs)
	if err != nil {
		return fmt.Errorf("qos: solo delivery: %w", err)
	}
	fLoaded, err := r.Delivery(loaded, msgs)
	if err != nil {
		return fmt.Errorf("qos: loaded delivery: %w", err)
	}
	for i := range fSolo {
		if fSolo[i] != fLoaded[i] {
			return fmt.Errorf("qos: tenant %s message %d delivery moved under load: solo slot %d, loaded slot %d",
				r.Tenant, i, fSolo[i], fLoaded[i])
		}
	}
	return nil
}

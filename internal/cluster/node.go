package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/qos"
	"repro/internal/service"
)

// DefaultReplication is the replica-set size R: every key has one owner
// plus R-1 clockwise successors that gossip pulls it to, so one node death
// never loses a warm key.
const DefaultReplication = 2

// DefaultGossipInterval paces the background probe/gossip loop.
const DefaultGossipInterval = time.Second

// maxPeerBody bounds peer replies read into memory (forwarded artifacts,
// digests); matches the service's own request bound.
const maxPeerBody = 32 << 20

// Config parameterizes a Node. Self and the service are required; zero
// values elsewhere select production defaults.
type Config struct {
	// Self is this node's advertised base URL, e.g. "http://10.0.0.1:8080".
	// It must match what peers were given in their own Peers lists — ring
	// placement hashes these strings.
	Self string
	// Peers lists the other members' base URLs (Self is filtered out, so
	// passing the full cluster roster to every node is fine).
	Peers []string
	// Replication is the replica-set size R; 0 means DefaultReplication,
	// values beyond the member count are clamped by the ring.
	Replication int
	// VNodes is the per-member virtual-node count; 0 means ring.DefaultVNodes.
	VNodes int
	// GossipInterval paces the probe/gossip loop; 0 means
	// DefaultGossipInterval.
	GossipInterval time.Duration
	// ForwardTimeout bounds one peer-compile hop (the owner may have to run
	// the pipeline); 0 means 60s.
	ForwardTimeout time.Duration
	// ProbeTimeout bounds one liveness probe or digest exchange; 0 means 2s.
	ProbeTimeout time.Duration
	// HTTPClient overrides the transport for all peer traffic (tests).
	HTTPClient *http.Client
	// Logf, when set, receives membership and gossip events.
	Logf func(format string, args ...any)
}

// Node federates one local compile daemon into the cluster: it fronts the
// service's HTTP mux with the peer protocol (/peer/compile, /peer/fetch,
// /peer/digest, /peer/ping) and the /cluster status endpoint, implements
// service.PeerResolver so local misses forward to the key's owner, and
// runs the anti-entropy gossip loop. Construct with NewNode, install with
// service.Server.SetPeers, serve it in place of the service handler, and
// Start the loop.
type Node struct {
	svc      *service.Server
	self     string
	repl     int
	vnodes   int
	interval time.Duration

	fwdTimeout   time.Duration
	probeTimeout time.Duration
	client       *http.Client

	members *membership
	mux     *http.ServeMux
	logf    func(format string, args ...any)

	// ringMu guards the membership-versioned ring cache.
	ringMu      sync.Mutex
	cachedRing  *Ring
	ringVersion uint64
	ringDirty   bool

	// rngMu guards the gossip partner picker.
	rngMu    sync.Mutex
	rngState uint64

	draining atomic.Bool

	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	metrics counters
}

// NewNode builds a Node around a service.Server.
func NewNode(svc *service.Server, cfg Config) (*Node, error) {
	if svc == nil {
		return nil, fmt.Errorf("cluster: service is required")
	}
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Config.Self is required")
	}
	if cfg.Replication <= 0 {
		cfg.Replication = DefaultReplication
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.GossipInterval <= 0 {
		cfg.GossipInterval = DefaultGossipInterval
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 60 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	n := &Node{
		svc:          svc,
		self:         cfg.Self,
		repl:         cfg.Replication,
		vnodes:       cfg.VNodes,
		interval:     cfg.GossipInterval,
		fwdTimeout:   cfg.ForwardTimeout,
		probeTimeout: cfg.ProbeTimeout,
		client:       cfg.HTTPClient,
		members:      newMembership(cfg.Self, cfg.Peers),
		mux:          http.NewServeMux(),
		logf:         cfg.Logf,
		ringDirty:    true,
		rngState:     hash64(cfg.Self) | 1,
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	n.mux.HandleFunc("/peer/compile", func(w http.ResponseWriter, r *http.Request) { n.handlePeerCompile(w, r, false) })
	n.mux.HandleFunc("/peer/recompile", func(w http.ResponseWriter, r *http.Request) { n.handlePeerCompile(w, r, true) })
	n.mux.HandleFunc("/peer/fetch", n.handlePeerFetch)
	n.mux.HandleFunc("/peer/digest", n.handlePeerDigest)
	n.mux.HandleFunc("/peer/ping", n.handlePeerPing)
	n.mux.HandleFunc("/cluster", n.handleStatus)
	n.mux.Handle("/", svc)
	return n, nil
}

// ServeHTTP implements http.Handler: peer and status endpoints first,
// everything else falls through to the wrapped service.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) { n.mux.ServeHTTP(w, r) }

// Self returns this node's advertised URL.
func (n *Node) Self() string { return n.self }

// Replication returns the configured replica-set size R.
func (n *Node) Replication() int { return n.repl }

// SetDraining marks the node as leaving: /peer/ping answers 503 so peers
// cut it from their rings within a few probe rounds instead of waiting for
// connection failures, and gossip partners stop pulling toward it.
func (n *Node) SetDraining(v bool) { n.draining.Store(v) }

// ring returns the consistent-hash ring over the currently non-dead
// membership, rebuilt only when a member crosses the dead boundary.
func (n *Node) ring() *Ring {
	members, version := n.members.ringMembers()
	n.ringMu.Lock()
	defer n.ringMu.Unlock()
	if n.cachedRing == nil || n.ringDirty || n.ringVersion != version {
		n.cachedRing = NewRing(members, n.vnodes)
		n.ringVersion = version
		n.ringDirty = false
	}
	return n.cachedRing
}

// Owners returns the key's current owner + replica list, for status and
// tests.
func (n *Node) Owners(key string) []string { return n.ring().Owners(key, n.repl) }

// responsible reports whether this node is in the key's replica set on the
// current ring.
func (n *Node) responsible(key string) bool {
	for _, o := range n.ring().Owners(key, n.repl) {
		if o == n.self {
			return true
		}
	}
	return false
}

// Resolve implements service.PeerResolver: called by the service on a
// local cache+store miss, inside the key's singleflight slot. An owner or
// replica compiles locally (returns ok=false); a non-owner forwards the
// request to each member of the replica set in ownership order and returns
// the first artifact. If every owner is unreachable the node compiles
// locally — a partitioned cluster degrades to independent daemons, it
// never refuses service.
func (n *Node) Resolve(pc service.PeerContext) (json.RawMessage, bool) {
	owners := n.ring().Owners(pc.Key, n.repl)
	for _, o := range owners {
		if o == n.self {
			n.metrics.ownedLocal.Add(1)
			return nil, false
		}
	}
	for _, o := range owners {
		raw, err := n.forward(o, pc)
		if err == nil {
			n.metrics.forwardHits.Add(1)
			return raw, true
		}
		n.metrics.forwardErrors.Add(1)
		n.members.observeFailure(o)
		n.logf("forward to %s failed: %v", o, err)
	}
	n.metrics.forwardFallbacks.Add(1)
	return nil, false
}

// forward replays one compile request against a peer's /peer/compile (or
// /peer/recompile) and returns the raw artifact from its response
// envelope.
func (n *Node) forward(peer string, pc service.PeerContext) (json.RawMessage, error) {
	endpoint := "/peer/compile"
	if pc.Recompile {
		endpoint = "/peer/recompile"
	}
	u := peer + endpoint
	if enc := pc.Query.Encode(); enc != "" {
		u += "?" + enc
	}
	req, err := http.NewRequest(http.MethodPost, u, bytes.NewReader(pc.Body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(service.ForwardedHeader, n.self)
	if pc.Tenant != "" {
		// Bill the owner-side compile to the originating tenant's class,
		// not the default tenant of a headerless internal request.
		req.Header.Set(qos.TenantHeader, pc.Tenant)
	}
	resp, body, err := n.roundTrip(req, n.fwdTimeout)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: %s answered %d: %s", u, resp.StatusCode, truncate(body))
	}
	var envelope service.Response
	if err := json.Unmarshal(body, &envelope); err != nil {
		return nil, fmt.Errorf("cluster: decoding %s reply: %w", u, err)
	}
	if envelope.Key != pc.Key {
		return nil, fmt.Errorf("cluster: %s resolved key %s, want %s", u, envelope.Key, pc.Key)
	}
	n.members.observeAlive(peer)
	return envelope.Result, nil
}

// roundTrip performs one peer request under a timeout and reads the
// bounded body.
func (n *Node) roundTrip(req *http.Request, timeout time.Duration) (*http.Response, []byte, error) {
	ctx, cancel := contextWithTimeout(req.Context(), timeout)
	defer cancel()
	resp, err := n.client.Do(req.WithContext(ctx))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
	if err != nil {
		return nil, nil, err
	}
	return resp, body, nil
}

// handlePeerCompile serves a forwarded compile: this node is (or recently
// was) the key's owner. It rewrites the request onto the service's own
// /compile path with the forwarded marker intact, so the service's cache,
// singleflight and worker pool apply exactly as they would to a direct
// request — that shared flight is what makes a key compile once
// cluster-wide.
func (n *Node) handlePeerCompile(w http.ResponseWriter, r *http.Request, recompile bool) {
	n.metrics.peerCompiles.Add(1)
	if from := r.Header.Get(service.ForwardedHeader); from != "" {
		n.members.observeAlive(from)
	} else {
		r.Header.Set(service.ForwardedHeader, "direct")
	}
	r2 := r.Clone(r.Context())
	r2.URL = cloneURL(r.URL)
	if recompile {
		r2.URL.Path = "/recompile"
	} else {
		r2.URL.Path = "/compile"
	}
	n.svc.ServeHTTP(w, r2)
}

// handlePeerFetch serves GET /peer/fetch?key=K: the raw warm artifact, 404
// when this node would have to compile it. Gossip anti-entropy pulls
// through here.
func (n *Node) handlePeerFetch(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		http.Error(w, `{"error":"cluster: fetch requires ?key="}`, http.StatusBadRequest)
		return
	}
	raw, tenant, ok := n.svc.ArtifactGetOwned(key)
	if !ok {
		http.Error(w, `{"error":"cluster: artifact not warm here"}`, http.StatusNotFound)
		return
	}
	n.metrics.peerFetches.Add(1)
	w.Header().Set("Content-Type", "application/json")
	// Ownership replicates with content: the puller bills its copy to the
	// same tenant, so replication respects per-tenant quotas cluster-wide.
	w.Header().Set(qos.TenantHeader, tenant)
	_, _ = w.Write(raw)
}

// handlePeerPing serves GET /peer/ping, the liveness probe target. A
// draining node answers 503 so peers shrink their rings ahead of the
// actual exit.
func (n *Node) handlePeerPing(w http.ResponseWriter, r *http.Request) {
	if from := r.Header.Get(service.ForwardedHeader); from != "" {
		n.members.observeAlive(from)
	}
	if n.draining.Load() {
		http.Error(w, `{"status":"draining"}`, http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"node\":%q}\n", n.self)
}

// Status is the /cluster document.
type Status struct {
	Self           string         `json:"self"`
	Replication    int            `json:"replication"`
	VNodes         int            `json:"vnodes"`
	GossipInterval string         `json:"gossip_interval"`
	Draining       bool           `json:"draining"`
	Members        []MemberStatus `json:"members"`
	RingNodes      []string       `json:"ring_nodes"`
	// WarmKeys is how many artifacts this node serves without compiling;
	// OwnedKeys how many of those it currently owns (primary); ReplicaKeys
	// how many it holds as a replica or orphan.
	WarmKeys    int             `json:"warm_keys"`
	OwnedKeys   int             `json:"owned_keys"`
	ReplicaKeys int             `json:"replica_keys"`
	Metrics     MetricsSnapshot `json:"metrics"`
}

// handleStatus serves GET /cluster.
func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, `{"error":"cluster: status requires GET"}`, http.StatusMethodNotAllowed)
		return
	}
	ring := n.ring()
	keys := n.svc.ArtifactKeys()
	owned := 0
	for _, k := range keys {
		if ring.Owner(k) == n.self {
			owned++
		}
	}
	st := Status{
		Self:           n.self,
		Replication:    n.repl,
		VNodes:         n.vnodes,
		GossipInterval: n.interval.String(),
		Draining:       n.draining.Load(),
		Members:        n.members.snapshot(),
		RingNodes:      ring.Nodes(),
		WarmKeys:       len(keys),
		OwnedKeys:      owned,
		ReplicaKeys:    len(keys) - owned,
		Metrics:        n.snapshotMetrics(),
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}

func cloneURL(u *url.URL) *url.URL {
	c := *u
	return &c
}

func truncate(b []byte) string {
	const max = 200
	if len(b) > max {
		b = b[:max]
	}
	return string(bytes.TrimSpace(b))
}

package cluster

import "sync/atomic"

// counters are the node's hot-path counters; all atomics, no lock on the
// serving path.
type counters struct {
	// Forward path.
	forwardHits      atomic.Uint64 // misses resolved by a peer forward
	forwardErrors    atomic.Uint64 // individual forward attempts that failed
	forwardFallbacks atomic.Uint64 // whole replica set unreachable → compiled locally
	ownedLocal       atomic.Uint64 // misses this node was owner/replica for
	peerCompiles     atomic.Uint64 // forwarded compiles served for other nodes
	peerFetches      atomic.Uint64 // artifacts served through /peer/fetch

	// Gossip loop.
	gossipRounds  atomic.Uint64 // digest exchanges attempted
	gossipSkipped atomic.Uint64 // exchanges short-circuited by equal digests
	gossipPulled  atomic.Uint64 // artifacts pulled from peers
	gossipErrors  atomic.Uint64 // failed exchanges or pulls
	probeRounds   atomic.Uint64 // liveness probe sweeps
}

// ForwardMetrics is the /cluster forward-path counter block.
type ForwardMetrics struct {
	// Hits counts local misses resolved by forwarding to an owner; Errors
	// individual peer attempts that failed; Fallbacks misses compiled
	// locally because every owner was unreachable; OwnedLocal misses this
	// node was in the replica set for (compiled here by design).
	Hits       uint64 `json:"hits"`
	Errors     uint64 `json:"errors"`
	Fallbacks  uint64 `json:"fallbacks"`
	OwnedLocal uint64 `json:"owned_local"`
	// PeerCompiles counts forwarded compiles served for other nodes;
	// PeerFetches artifacts served through /peer/fetch.
	PeerCompiles uint64 `json:"peer_compiles"`
	PeerFetches  uint64 `json:"peer_fetches"`
}

// GossipMetrics is the /cluster anti-entropy counter block.
type GossipMetrics struct {
	Rounds  uint64 `json:"rounds"`
	Skipped uint64 `json:"skipped"`
	Pulled  uint64 `json:"pulled"`
	Errors  uint64 `json:"errors"`
	Probes  uint64 `json:"probes"`
}

// MembershipMetrics counts liveness transitions.
type MembershipMetrics struct {
	Deaths   uint64 `json:"deaths"`
	Rejoins  uint64 `json:"rejoins"`
	Suspects uint64 `json:"suspects"`
}

// MetricsSnapshot is the metrics block of /cluster.
type MetricsSnapshot struct {
	Forward    ForwardMetrics    `json:"forward"`
	Gossip     GossipMetrics     `json:"gossip"`
	Membership MembershipMetrics `json:"membership"`
}

func (n *Node) snapshotMetrics() MetricsSnapshot {
	deaths, rejoins, suspects := n.members.transitions()
	return MetricsSnapshot{
		Forward: ForwardMetrics{
			Hits:         n.metrics.forwardHits.Load(),
			Errors:       n.metrics.forwardErrors.Load(),
			Fallbacks:    n.metrics.forwardFallbacks.Load(),
			OwnedLocal:   n.metrics.ownedLocal.Load(),
			PeerCompiles: n.metrics.peerCompiles.Load(),
			PeerFetches:  n.metrics.peerFetches.Load(),
		},
		Gossip: GossipMetrics{
			Rounds:  n.metrics.gossipRounds.Load(),
			Skipped: n.metrics.gossipSkipped.Load(),
			Pulled:  n.metrics.gossipPulled.Load(),
			Errors:  n.metrics.gossipErrors.Load(),
			Probes:  n.metrics.probeRounds.Load(),
		},
		Membership: MembershipMetrics{Deaths: deaths, Rejoins: rejoins, Suspects: suspects},
	}
}

// Metrics returns the node's current counter snapshot (the same block
// /cluster reports).
func (n *Node) Metrics() MetricsSnapshot { return n.snapshotMetrics() }

package cluster

import (
	"context"
	"testing"

	"repro/internal/qos"
	"repro/internal/service"
	"repro/internal/service/client"
)

func qosClasses() []qos.Class {
	return []qos.Class{
		{Name: "gold", Weight: 8},
		{Name: "bronze", Weight: 1},
	}
}

func classMetrics(t *testing.T, url, class string) service.ClassMetrics {
	t.Helper()
	snap, err := (&client.Client{BaseURL: url}).Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cm, ok := snap.QoS[class]
	if !ok {
		t.Fatalf("%s has no QoS class %q in /metrics", url, class)
	}
	return cm
}

// TestForwardCarriesTenant: a tenant-tagged request that misses at a
// non-owner is forwarded to the key's owner, and the owner bills the
// compile to the request's class — not to its own default tenant.
func TestForwardCarriesTenant(t *testing.T) {
	nodes := startClusterClasses(t, 3, 1, qosClasses())
	a, c := nodes[0], nodes[2]
	doc := docOwnedBy(t, a.Node.ring(), c.URL)

	resp, _, err := (&client.Client{BaseURL: a.URL}).Compile(
		context.Background(), doc, client.Options{Tenant: "gold"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cache != service.CachePeer {
		t.Fatalf("non-owner served cache=%q, want %q", resp.Cache, service.CachePeer)
	}
	// The owner's compile is billed to gold; its default class saw nothing.
	if cm := classMetrics(t, c.URL, "gold"); cm.Requests != 1 || cm.Misses != 1 {
		t.Fatalf("owner gold class: %d requests %d misses, want 1 and 1", cm.Requests, cm.Misses)
	}
	if cm := classMetrics(t, c.URL, qos.DefaultClass); cm.Requests != 0 {
		t.Fatalf("owner default class saw %d requests, want 0", cm.Requests)
	}
	// The forwarder's local copy sits in gold's cache partition too.
	if cm := classMetrics(t, a.URL, "gold"); cm.CacheEntries != 1 {
		t.Fatalf("forwarder gold cache holds %d entries, want 1", cm.CacheEntries)
	}
}

// TestGossipPullKeepsOwner: an artifact replicated by anti-entropy is
// billed to the owning tenant's class on the pulling node — replication
// cannot launder one tenant's footprint into another's partition.
func TestGossipPullKeepsOwner(t *testing.T) {
	nodes := startClusterClasses(t, 2, 2, qosClasses())
	a, b := nodes[0], nodes[1]
	doc := docOwnedBy(t, a.Node.ring(), a.URL)

	if _, _, err := (&client.Client{BaseURL: a.URL}).Compile(
		context.Background(), doc, client.Options{Tenant: "gold"}); err != nil {
		t.Fatal(err)
	}
	// One anti-entropy round at b: with a single peer the partner choice is
	// forced, and replication 2 makes b responsible for every key.
	b.Node.GossipRound()
	if m := b.Node.Metrics(); m.Gossip.Pulled != 1 {
		t.Fatalf("gossip pulled %d artifacts, want 1", m.Gossip.Pulled)
	}
	if cm := classMetrics(t, b.URL, "gold"); cm.CacheEntries != 1 {
		t.Fatalf("replica gold cache holds %d entries, want 1", cm.CacheEntries)
	}
	if cm := classMetrics(t, b.URL, "bronze"); cm.CacheEntries != 0 {
		t.Fatalf("replica bronze cache holds %d entries, want 0", cm.CacheEntries)
	}
	// The replica serves the pulled artifact as a local hit, still gold.
	resp, _, err := (&client.Client{BaseURL: b.URL}).Compile(
		context.Background(), doc, client.Options{Tenant: "gold"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cache != service.CacheHit {
		t.Fatalf("replica served cache=%q, want hit", resp.Cache)
	}
}

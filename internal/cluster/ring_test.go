package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// TestRingGolden pins ring placement to golden values: ownership is a pure
// function of (membership, vnodes, key) built on SHA-256, so any process,
// any architecture, any Go version must reproduce these exact assignments.
// This is the cross-process half of the determinism requirement — two
// daemons that agree on the roster agree on every key's owner without
// exchanging a single message.
func TestRingGolden(t *testing.T) {
	nodes := []string{"http://n1:8080", "http://n2:8080", "http://n3:8080", "http://n4:8080"}
	r := NewRing(nodes, 64)
	golden := []struct{ key, owner, replica string }{
		{"key-0", "http://n1:8080", "http://n3:8080"},
		{"key-1", "http://n2:8080", "http://n3:8080"},
		{"key-2", "http://n3:8080", "http://n1:8080"},
		{"key-3", "http://n1:8080", "http://n2:8080"},
		{"key-4", "http://n4:8080", "http://n1:8080"},
		{"key-5", "http://n4:8080", "http://n2:8080"},
		{"key-6", "http://n3:8080", "http://n4:8080"},
		{"key-7", "http://n4:8080", "http://n3:8080"},
	}
	for _, g := range golden {
		owners := r.Owners(g.key, 2)
		if owners[0] != g.owner || owners[1] != g.replica {
			t.Errorf("Owners(%q) = %v, want [%s %s]", g.key, owners, g.owner, g.replica)
		}
	}
}

// TestRingMembershipOrderInvariance builds rings from every rotation and a
// few shuffles of the same membership and demands identical ownership for
// a spread of keys — placement must not depend on roster order, duplicates
// or empties.
func TestRingMembershipOrderInvariance(t *testing.T) {
	base := []string{"n1", "n2", "n3", "n4", "n5"}
	ref := NewRing(base, 32)
	rng := rand.New(rand.NewSource(7))
	variants := [][]string{
		{"n5", "n4", "n3", "n2", "n1"},
		{"n3", "n1", "n5", "n2", "n4"},
		{"n1", "n1", "n2", "n3", "", "n4", "n5", "n2"}, // dups + empty
	}
	for v := 0; v < 3; v++ {
		shuffled := append([]string(nil), base...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		variants = append(variants, shuffled)
	}
	for vi, v := range variants {
		r := NewRing(v, 32)
		if !reflect.DeepEqual(r.Nodes(), ref.Nodes()) {
			t.Fatalf("variant %d: membership %v, want %v", vi, r.Nodes(), ref.Nodes())
		}
		for i := 0; i < 200; i++ {
			key := fmt.Sprintf("key-%d", i)
			if got, want := r.Owners(key, 3), ref.Owners(key, 3); !reflect.DeepEqual(got, want) {
				t.Fatalf("variant %d: Owners(%q) = %v, want %v", vi, key, got, want)
			}
		}
	}
}

// TestRingRebalanceMovesMinimalKeys is the consistent-hashing contract:
// removing a node reassigns only the keys it owned (every other key keeps
// its owner), adding a node only pulls keys toward the new node, and the
// post-removal replica set is always a subset of the pre-removal
// owner+replica+successor set — which is why gossip replication to R
// successors keeps a dead node's keys warm at their new owners.
func TestRingRebalanceMovesMinimalKeys(t *testing.T) {
	members := []string{"n1", "n2", "n3", "n4", "n5"}
	full := NewRing(members, 64)

	keys := make([]string, 1000)
	for i := range keys {
		keys[i] = fmt.Sprintf("pattern-%d", i*7919)
	}

	t.Run("remove", func(t *testing.T) {
		const removed = "n3"
		shrunk := NewRing([]string{"n1", "n2", "n4", "n5"}, 64)
		moved := 0
		for _, key := range keys {
			oldOwner := full.Owner(key)
			newOwner := shrunk.Owner(key)
			if oldOwner != removed && newOwner != oldOwner {
				t.Fatalf("key %q moved %s -> %s though %s was not removed", key, oldOwner, newOwner, removed)
			}
			if oldOwner == removed {
				moved++
			}
			// Successor-list containment: the new replica set comes from the
			// old extended set, so an R-replicated key stays warm.
			oldExt := full.Owners(key, 3)
			for _, o := range shrunk.Owners(key, 2) {
				if !contains(oldExt, o) {
					t.Fatalf("key %q: new replica %s not in old successor set %v", key, o, oldExt)
				}
			}
		}
		if moved == 0 {
			t.Fatal("no key was owned by the removed node; test is vacuous")
		}
	})

	t.Run("add", func(t *testing.T) {
		const added = "n6"
		grown := NewRing(append(append([]string(nil), members...), added), 64)
		moved := 0
		for _, key := range keys {
			oldOwner := full.Owner(key)
			newOwner := grown.Owner(key)
			if newOwner != oldOwner {
				if newOwner != added {
					t.Fatalf("key %q moved %s -> %s on adding %s", key, oldOwner, newOwner, added)
				}
				moved++
			}
		}
		// Virtual nodes spread the new member's share near 1/(n+1); allow a
		// generous band so the test pins the mechanism, not the variance.
		share := float64(moved) / float64(len(keys))
		if share < 0.05 || share > 0.35 {
			t.Fatalf("new node took %.1f%% of keys, want roughly 1/6", share*100)
		}
	})
}

// TestRingOwnersBounds covers the edges: empty ring, n clamped to the
// member count, distinctness of the replica list.
func TestRingOwnersBounds(t *testing.T) {
	if owner := NewRing(nil, 8).Owner("k"); owner != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", owner)
	}
	r := NewRing([]string{"a", "b", "c"}, 8)
	owners := r.Owners("k", 10)
	if len(owners) != 3 {
		t.Fatalf("Owners clamped to %d, want 3", len(owners))
	}
	seen := map[string]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Fatalf("duplicate owner %s in %v", o, owners)
		}
		seen[o] = true
	}
	if r.Owners("k", 0) != nil {
		t.Fatal("Owners(k, 0) should be nil")
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/qos"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// swapHandler lets a httptest server exist before the Node that will
// answer on it: URLs must be known to build the membership roster. It
// stays swappable after start so tests can take a node "down" and bring
// it back without losing the port.
type swapHandler struct{ h atomic.Value }

type handlerBox struct{ h http.Handler }

func (s *swapHandler) Set(h http.Handler) { s.h.Store(&handlerBox{h}) }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if b, ok := s.h.Load().(*handlerBox); ok && b.h != nil {
		b.h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "not ready", http.StatusServiceUnavailable)
}

// testNode is one in-process cluster member.
type testNode struct {
	URL  string
	Svc  *service.Server
	Node *Node
	TS   *httptest.Server
	Swap *swapHandler
}

// Kill closes the member's listener — from the cluster's point of view the
// process died.
func (tn *testNode) Kill() { tn.TS.Close() }

// startCluster boots n federated in-process daemons on loopback.
func startCluster(t *testing.T, n, replication int) []*testNode {
	return startClusterClasses(t, n, replication, nil)
}

// startClusterClasses is startCluster with explicit QoS classes on every
// member daemon.
func startClusterClasses(t *testing.T, n, replication int, classes []qos.Class) []*testNode {
	t.Helper()
	swaps := make([]*swapHandler, n)
	nodes := make([]*testNode, n)
	urls := make([]string, n)
	for i := range nodes {
		swaps[i] = &swapHandler{}
		ts := httptest.NewServer(swaps[i])
		urls[i] = ts.URL
		nodes[i] = &testNode{URL: ts.URL, TS: ts, Swap: swaps[i]}
	}
	for i := range nodes {
		svc, err := service.New(service.Config{Topology: topology.NewTorus(8, 8), QoS: classes})
		if err != nil {
			t.Fatal(err)
		}
		node, err := NewNode(svc, Config{
			Self:        urls[i],
			Peers:       urls,
			Replication: replication,
		})
		if err != nil {
			t.Fatal(err)
		}
		svc.SetPeers(node)
		swaps[i].Set(node)
		nodes[i].Svc, nodes[i].Node = svc, node
	}
	t.Cleanup(func() {
		for _, tn := range nodes {
			tn.Node.Stop()
			tn.TS.Close()
			tn.Svc.Close()
		}
	})
	return nodes
}

// testDoc builds a small, fast-to-compile trace document with a unique
// name (the name participates in the content key).
func testDoc(name string) trace.Document {
	msgs := make([]sim.Message, 0, 16)
	for i := 0; i < 16; i++ {
		msgs = append(msgs, sim.Message{Src: i, Dst: (i + 9) % 64, Flits: 2})
	}
	return trace.FromProgram(core.Program{
		Name:   name,
		Phases: []core.Phase{{Name: "p0", Messages: msgs}},
	}, 64)
}

// docOwnedBy mints a document whose content key's replica set matches
// want: want[0] must be the owner and the rest must all appear in the
// first len(want) positions. Ring placement is deterministic, so scanning
// names always terminates quickly.
func docOwnedBy(t *testing.T, ring *Ring, want ...string) trace.Document {
	t.Helper()
	for i := 0; i < 10000; i++ {
		doc := testDoc(fmt.Sprintf("owned-%s-%d", want[0], i))
		key, err := service.KeyForDocument(doc, "torus-8x8", "combined")
		if err != nil {
			t.Fatal(err)
		}
		owners := ring.Owners(key, len(want))
		if owners[0] != want[0] {
			continue
		}
		ok := true
		for _, w := range want[1:] {
			if !contains(owners, w) {
				ok = false
				break
			}
		}
		if ok {
			return doc
		}
	}
	t.Fatalf("no document found with replica set %v", want)
	panic("unreachable")
}

func compileMisses(t *testing.T, url string) uint64 {
	t.Helper()
	snap, err := (&client.Client{BaseURL: url}).Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return snap.Endpoints["compile"].Misses
}

// TestForwardToOwner: a miss at a non-owner is forwarded to the key's
// owner, compiled exactly there, and the artifact comes back byte-
// identical to what the owner serves directly. The non-owner then serves
// it as a local hit.
func TestForwardToOwner(t *testing.T) {
	nodes := startCluster(t, 3, 1)
	a, c := nodes[0], nodes[2]
	doc := docOwnedBy(t, a.Node.ring(), c.URL)

	ctx := context.Background()
	resp, _, err := (&client.Client{BaseURL: a.URL}).Compile(ctx, doc, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cache != service.CachePeer {
		t.Fatalf("non-owner served cache=%q, want %q", resp.Cache, service.CachePeer)
	}
	// The owner compiled it once; the forwarder compiled nothing.
	if m := compileMisses(t, c.URL); m != 1 {
		t.Fatalf("owner compiled %d times, want 1", m)
	}
	if m := compileMisses(t, a.URL); m != 0 {
		t.Fatalf("forwarder compiled %d times, want 0", m)
	}
	// Byte-identical to the owner's own artifact.
	respC, _, err := (&client.Client{BaseURL: c.URL}).Compile(ctx, doc, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if respC.Cache != service.CacheHit {
		t.Fatalf("owner re-serve cache=%q, want hit", respC.Cache)
	}
	if !bytes.Equal(resp.Result, respC.Result) {
		t.Fatal("forwarded artifact differs from the owner's artifact")
	}
	// The forwarder cached the artifact: second request is a local hit.
	resp2, _, err := (&client.Client{BaseURL: a.URL}).Compile(ctx, doc, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Cache != service.CacheHit {
		t.Fatalf("repeat at forwarder cache=%q, want hit", resp2.Cache)
	}
	if !bytes.Equal(resp.Result, resp2.Result) {
		t.Fatal("cached forwarded artifact drifted")
	}
	if m := a.Node.Metrics(); m.Forward.Hits != 1 {
		t.Fatalf("forward hits = %d, want 1", m.Forward.Hits)
	}
}

// TestExactlyOnceAcrossForwards: a herd of identical requests hitting two
// different non-owners concurrently still results in exactly one compile
// cluster-wide — each node's singleflight collapses its local herd, and
// the owner's singleflight collapses the forwards.
func TestExactlyOnceAcrossForwards(t *testing.T) {
	nodes := startCluster(t, 3, 1)
	a, b, c := nodes[0], nodes[1], nodes[2]
	doc := docOwnedBy(t, a.Node.ring(), c.URL)

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, 8)
	arts := make([]json.RawMessage, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := a.URL
			if i%2 == 1 {
				url = b.URL
			}
			resp, _, err := (&client.Client{BaseURL: url}).Compile(ctx, doc, client.Options{})
			if err != nil {
				errs[i] = err
				return
			}
			arts[i] = resp.Result
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for i := 1; i < 8; i++ {
		if !bytes.Equal(arts[0], arts[i]) {
			t.Fatalf("request %d returned different bytes", i)
		}
	}
	total := compileMisses(t, a.URL) + compileMisses(t, b.URL) + compileMisses(t, c.URL)
	if total != 1 {
		t.Fatalf("cluster compiled the key %d times, want exactly 1", total)
	}
}

// TestForwardFallbackWhenOwnerDead: with the whole replica set
// unreachable, a non-owner compiles locally rather than failing — the
// cluster degrades to independent daemons.
func TestForwardFallbackWhenOwnerDead(t *testing.T) {
	nodes := startCluster(t, 2, 1)
	a, b := nodes[0], nodes[1]
	doc := docOwnedBy(t, a.Node.ring(), b.URL)
	b.Kill()

	resp, res, err := (&client.Client{BaseURL: a.URL}).Compile(context.Background(), doc, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cache != service.CacheMiss {
		t.Fatalf("fallback served cache=%q, want miss", resp.Cache)
	}
	if err := client.Verify(doc, res); err != nil {
		t.Fatalf("fallback artifact invalid: %v", err)
	}
	if m := a.Node.Metrics(); m.Forward.Fallbacks != 1 || m.Forward.Errors == 0 {
		t.Fatalf("forward metrics = %+v, want 1 fallback and >0 errors", m.Forward)
	}
}

// TestClusterClientRetriesDrainingNode extends the service drain test one
// layer up (satellite: graceful peer-drain): a draining daemon answers
// cold compiles 503, and the cluster client retries the next replica so
// the caller never sees the 5xx.
func TestClusterClientRetriesDrainingNode(t *testing.T) {
	nodes := startCluster(t, 2, 2)
	a, b := nodes[0], nodes[1]
	// SIGTERM equivalent: stop gossip, advertise draining, drain the pool.
	a.Node.SetDraining(true)
	a.Svc.Close()

	doc := testDoc("drain-retry")
	ctx := context.Background()

	// Direct client: the drain is a real 503.
	_, _, err := (&client.Client{BaseURL: a.URL}).Compile(ctx, doc, client.Options{})
	he := &client.HTTPError{}
	if err == nil || !asHTTPError(err, &he) || he.Status != http.StatusServiceUnavailable {
		t.Fatalf("direct compile on draining node: err=%v, want HTTP 503", err)
	}

	// Cluster client: rotation starts at the draining node, retries to the
	// healthy one, no error surfaces.
	cc := &client.Cluster{Nodes: []string{a.URL, b.URL}}
	resp, res, node, err := cc.Compile(ctx, doc, client.Options{})
	if err != nil {
		t.Fatalf("cluster compile during drain: %v", err)
	}
	if node != b.URL {
		t.Fatalf("served by %s, want the healthy node %s", node, b.URL)
	}
	if err := client.Verify(doc, res); err != nil {
		t.Fatalf("artifact invalid: %v", err)
	}
	if resp.Cache != service.CacheMiss {
		t.Fatalf("cache=%q, want miss", resp.Cache)
	}
}

func asHTTPError(err error, target **client.HTTPError) bool {
	for ; err != nil; err = unwrap(err) {
		if he, ok := err.(*client.HTTPError); ok {
			*target = he
			return true
		}
	}
	return false
}

func unwrap(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}

// TestStatusEndpoint sanity-checks the /cluster document.
func TestStatusEndpoint(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	a := nodes[0]
	if _, _, err := (&client.Client{BaseURL: a.URL}).Compile(context.Background(), testDoc("status"), client.Options{}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(a.URL + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Self != a.URL || st.Replication != 2 || len(st.Members) != 3 || len(st.RingNodes) != 3 {
		t.Fatalf("status = %+v", st)
	}
	for _, m := range st.Members {
		if m.State != StateAlive {
			t.Fatalf("member %s state %s, want alive", m.Node, m.State)
		}
	}
}

// TestStartStopLifecycle exercises the background loop briefly.
func TestStartStopLifecycle(t *testing.T) {
	nodes := startCluster(t, 2, 2)
	nodes[0].Node.Start()
	nodes[0].Node.Start() // idempotent
	nodes[0].Node.Stop()
	nodes[0].Node.Stop() // idempotent
	nodes[1].Node.Stop() // never started
}

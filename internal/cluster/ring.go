// Package cluster federates N ccserved daemons into one compile cluster:
// the content-addressed pattern-key space is sharded across nodes by a
// consistent-hash ring, a local miss at a non-owner is forwarded to the
// key's owner before anything is compiled (so each key is compiled exactly
// once cluster-wide), and anti-entropy gossip replicates compiled artifacts
// to the key's replica set so any node can serve any warm key — byte
// identically — after its owner dies.
//
// The design leans on the paper's central property: compilation is
// deterministic. Two daemons given the same trace produce the same bytes,
// so replication carries no consistency protocol at all — an artifact
// either exists (and equals what any node would compile) or is recomputed.
// Gossip is therefore pure anti-entropy in the SWIM/gossip-mesh style:
// periodic digest exchange with a random peer, pull what is missing, and
// piggyback liveness so the ring shrinks around dead nodes and re-expands
// on rejoin without losing warm state.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per member: enough that removing
// one node of a handful spreads its keys across the survivors instead of
// dumping them on a single ring successor.
const DefaultVNodes = 64

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring over a membership set. Two
// rings built from the same membership — in any order, in any process —
// are identical: placement is pure SHA-256, ties break lexicographically,
// and no map iteration participates.
type Ring struct {
	vnodes int
	nodes  []string // sorted, deduplicated membership
	points []ringPoint
}

// NewRing builds the ring for a membership set. vnodes <= 0 selects
// DefaultVNodes.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	set := append([]string(nil), nodes...)
	sort.Strings(set)
	dedup := set[:0]
	for i, n := range set {
		if n == "" || (i > 0 && set[i-1] == n) {
			continue
		}
		dedup = append(dedup, n)
	}
	r := &Ring{vnodes: vnodes, nodes: dedup, points: make([]ringPoint, 0, len(dedup)*vnodes)}
	for _, n := range r.nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(n + "#" + strconv.Itoa(v)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// hash64 is the ring's placement hash: the first 8 bytes of SHA-256, which
// matches the content-addressed key space the ring shards (service program
// keys are hex SHA-256 digests).
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Len returns the number of member nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the sorted membership.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// VNodes returns the per-member virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner returns the key's primary owner: the node whose virtual point is
// first at or clockwise of the key's hash. Empty string on an empty ring.
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns the key's owner followed by its successor replicas: the
// first n distinct nodes walking clockwise from the key's hash. Fewer than
// n nodes in the ring returns them all.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/qos"
	"repro/internal/service"
)

// fwdHeader identifies the calling node on every peer request, which
// doubles as passive liveness evidence for the receiver.
const fwdHeader = service.ForwardedHeader

// This file is the anti-entropy half of the cluster: because compilation
// is deterministic and keys are content hashes, replication needs no
// consistency protocol — an artifact either exists everywhere with the
// same bytes or is recomputed identically. Gossip therefore reduces to
// set reconciliation: each tick a node probes its peers (SWIM-style
// suspect/dead/rejoin), then exchanges a summary digest of its warm key
// set with one random non-dead partner and pulls whatever it is missing
// and responsible for. A replica set of R means a key survives R-1
// deaths; after a death the shrunken ring makes the old successor the new
// owner, which — by the successor-list structure of consistent hashing —
// is exactly the replica gossip already warmed.

// digestDoc is the /peer/digest reply: the node's warm key set and its
// summary digest. Equal digests end the exchange without shipping keys
// a second time (the keys ride along so one round trip suffices when they
// differ; at millions of keys this would page, see DESIGN.md §13 for the
// Merkle-tree upgrade path).
type digestDoc struct {
	Node     string   `json:"node"`
	Draining bool     `json:"draining"`
	Digest   string   `json:"digest"`
	Keys     []string `json:"keys"`
}

// summaryDigest hashes a sorted key set; order-independent input, stable
// across processes.
func summaryDigest(keys []string) string {
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	h := sha256.New()
	for _, k := range sorted {
		h.Write([]byte(k))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// handlePeerDigest serves GET /peer/digest.
func (n *Node) handlePeerDigest(w http.ResponseWriter, r *http.Request) {
	if from := r.Header.Get(fwdHeader); from != "" {
		n.members.observeAlive(from)
	}
	keys := n.svc.ArtifactKeys()
	doc := digestDoc{
		Node:     n.self,
		Draining: n.draining.Load(),
		Digest:   summaryDigest(keys),
		Keys:     keys,
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(doc)
}

// Start launches the background loop: every GossipInterval, one probe
// sweep over all configured peers followed by one anti-entropy exchange
// with a random non-dead partner. Stop halts it.
func (n *Node) Start() {
	if !n.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(n.done)
		ticker := time.NewTicker(n.interval)
		defer ticker.Stop()
		for {
			select {
			case <-n.stop:
				return
			case <-ticker.C:
				n.ProbeRound()
				n.GossipRound()
			}
		}
	}()
}

// Stop halts the background loop and waits for it to exit. Idempotent;
// safe on a node that was never started.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stop) })
	if n.started.Load() {
		<-n.done
	}
}

// ProbeRound probes every configured peer once, in parallel, updating the
// liveness state machine. Dead peers are probed too — that is the rejoin
// path. Exported so operators (and tests) can force a sweep.
func (n *Node) ProbeRound() {
	n.metrics.probeRounds.Add(1)
	peers := n.members.all()
	var wg sync.WaitGroup
	for _, p := range peers {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			if n.probe(peer) {
				if n.members.observeAlive(peer) {
					n.logf("peer %s rejoined", peer)
				}
			} else {
				if n.members.observeFailure(peer) {
					n.logf("peer %s declared dead", peer)
				}
			}
		}(p)
	}
	wg.Wait()
}

// probe performs one liveness check.
func (n *Node) probe(peer string) bool {
	req, err := http.NewRequest(http.MethodGet, peer+"/peer/ping", nil)
	if err != nil {
		return false
	}
	req.Header.Set(fwdHeader, n.self)
	resp, _, err := n.roundTrip(req, n.probeTimeout)
	return err == nil && resp.StatusCode == http.StatusOK
}

// GossipRound runs one anti-entropy exchange: fetch a random non-dead
// peer's digest, and pull every artifact it has that this node lacks and
// is responsible for (owner or replica on the current ring). Exported for
// operators and tests; the background loop calls it once per tick.
func (n *Node) GossipRound() {
	peers := n.members.candidates()
	if len(peers) == 0 {
		return
	}
	n.gossipWith(peers[n.pick(len(peers))])
}

// gossipWith reconciles against one specific peer.
func (n *Node) gossipWith(peer string) {
	n.metrics.gossipRounds.Add(1)
	req, err := http.NewRequest(http.MethodGet, peer+"/peer/digest", nil)
	if err != nil {
		n.metrics.gossipErrors.Add(1)
		return
	}
	req.Header.Set(fwdHeader, n.self)
	resp, body, err := n.roundTrip(req, n.probeTimeout)
	if err != nil || resp.StatusCode != http.StatusOK {
		n.metrics.gossipErrors.Add(1)
		n.members.observeFailure(peer)
		return
	}
	n.members.observeAlive(peer)
	var doc digestDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		n.metrics.gossipErrors.Add(1)
		return
	}
	local := make(map[string]bool)
	for _, k := range n.svc.ArtifactKeys() {
		local[k] = true
	}
	if doc.Digest == summaryDigest(keysOf(local)) {
		n.metrics.gossipSkipped.Add(1)
		return
	}
	for _, k := range doc.Keys {
		if local[k] || !n.responsible(k) {
			continue
		}
		if err := n.pull(peer, k); err != nil {
			n.metrics.gossipErrors.Add(1)
			n.logf("gossip pull %s from %s failed: %v", k[:12], peer, err)
			continue
		}
		n.metrics.gossipPulled.Add(1)
	}
}

// pull fetches one artifact from a peer and installs it locally.
func (n *Node) pull(peer, key string) error {
	req, err := http.NewRequest(http.MethodGet, peer+"/peer/fetch?key="+key, nil)
	if err != nil {
		return err
	}
	req.Header.Set(fwdHeader, n.self)
	resp, body, err := n.roundTrip(req, n.fwdTimeout)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: fetch answered %d", resp.StatusCode)
	}
	if !json.Valid(body) {
		return fmt.Errorf("cluster: fetched artifact is not JSON")
	}
	// The fetch reply names the owning tenant; the local copy is billed to
	// the same class so replication cannot launder one tenant's footprint
	// into another's partition.
	n.svc.ArtifactPutOwned(key, resp.Header.Get(qos.TenantHeader), json.RawMessage(body))
	return nil
}

// pick returns a pseudo-random index in [0, n) from the node's own
// SplitMix64 stream — no global rand, deterministic per (self, call
// count), which keeps gossip partner choice reproducible in tests that
// control the call sequence.
func (n *Node) pick(count int) int {
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	n.rngState += 0x9e3779b97f4a7c15
	z := n.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(count))
}

func keysOf(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func contextWithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(parent, d)
}

package cluster

import (
	"sort"
	"sync"
	"time"
)

// Member liveness states, SWIM-style: a member is alive until a probe
// fails, suspect while recent probes fail (it still participates in the
// ring — a suspect node is usually just slow), and dead after
// deadThreshold consecutive failures, at which point the ring shrinks
// around it. A successful probe or gossip exchange from a dead member
// rejoins it immediately — its warm state was never discarded, so rejoin
// costs nothing.
const (
	StateAlive   = "alive"
	StateSuspect = "suspect"
	StateDead    = "dead"
)

// deadThreshold is the number of consecutive probe failures that moves a
// suspect member to dead. With one probe per gossip tick, a node is cut
// from the ring roughly deadThreshold gossip intervals after it stops
// answering.
const deadThreshold = 3

// MemberStatus is one member's liveness as reported by /cluster.
type MemberStatus struct {
	Node  string `json:"node"`
	State string `json:"state"`
	// Fails is the current consecutive probe-failure count.
	Fails int `json:"fails"`
	// LastSeenMs is milliseconds since the member last answered; -1 if it
	// never has (members start alive on trust).
	LastSeenMs int64 `json:"last_seen_ms"`
}

type memberInfo struct {
	state    string
	fails    int
	lastSeen time.Time
}

// membership tracks the liveness of every configured member. The version
// counter increments whenever any member crosses the dead boundary in
// either direction — the only transitions that change the ring — so ring
// construction can be cached against it.
type membership struct {
	mu      sync.Mutex
	self    string
	peers   map[string]*memberInfo
	version uint64

	deaths   uint64
	rejoins  uint64
	suspects uint64
}

// newMembership starts every peer alive: a booting node trusts its
// configuration and lets probing discover reality.
func newMembership(self string, peers []string) *membership {
	m := &membership{self: self, peers: make(map[string]*memberInfo, len(peers))}
	for _, p := range peers {
		if p == "" || p == self {
			continue
		}
		m.peers[p] = &memberInfo{state: StateAlive}
	}
	return m
}

// observeAlive records a successful exchange with peer and reports whether
// this was a rejoin from the dead state.
func (m *membership) observeAlive(peer string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	info, ok := m.peers[peer]
	if !ok {
		return false
	}
	rejoined := info.state == StateDead
	if rejoined {
		m.version++
		m.rejoins++
	}
	info.state = StateAlive
	info.fails = 0
	info.lastSeen = time.Now()
	return rejoined
}

// observeFailure records a failed exchange with peer and reports whether
// the failure crossed the dead threshold.
func (m *membership) observeFailure(peer string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	info, ok := m.peers[peer]
	if !ok || info.state == StateDead {
		return false
	}
	info.fails++
	if info.fails >= deadThreshold {
		info.state = StateDead
		m.version++
		m.deaths++
		return true
	}
	if info.state == StateAlive {
		info.state = StateSuspect
		m.suspects++
	}
	return false
}

// ringMembers returns the sorted member set the ring should be built from
// — self plus every peer not known dead (suspects stay in: cutting a
// merely slow node would reshuffle ownership for nothing) — and the
// membership version for cache invalidation.
func (m *membership) ringMembers() ([]string, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.peers)+1)
	out = append(out, m.self)
	for p, info := range m.peers {
		if info.state != StateDead {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out, m.version
}

// all returns every configured peer (any state), sorted. Probing targets
// all of them — dead members must keep being probed or they could never
// rejoin.
func (m *membership) all() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.peers))
	for p := range m.peers {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// candidates returns the non-dead peers, sorted — the pool gossip picks a
// random partner from.
func (m *membership) candidates() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.peers))
	for p, info := range m.peers {
		if info.state != StateDead {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// snapshot reports every member's status (self included, always alive),
// sorted by node name.
func (m *membership) snapshot() []MemberStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	out := make([]MemberStatus, 0, len(m.peers)+1)
	out = append(out, MemberStatus{Node: m.self, State: StateAlive, LastSeenMs: 0})
	for p, info := range m.peers {
		ms := int64(-1)
		if !info.lastSeen.IsZero() {
			ms = now.Sub(info.lastSeen).Milliseconds()
		}
		out = append(out, MemberStatus{Node: p, State: info.state, Fails: info.fails, LastSeenMs: ms})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// transitions snapshots the death/rejoin/suspect counters.
func (m *membership) transitions() (deaths, rejoins, suspects uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.deaths, m.rejoins, m.suspects
}

package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/trace"
)

// mintAvoiding scans document names for a key that is NOT replicated on
// avoid — so forwarding/gossip for it must cross the network. Returns the
// document plus its owner and first replica. Deterministic: names are
// fixed strings and ring placement is a pure function.
func mintAvoiding(t *testing.T, nodes []*testNode, avoid *testNode) (trace.Document, *testNode, *testNode) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		doc := testDoc(fmt.Sprintf("away-%d", i))
		key, err := service.KeyForDocument(doc, "torus-8x8", "combined")
		if err != nil {
			t.Fatal(err)
		}
		owners := avoid.Node.Owners(key)
		if contains(owners, avoid.URL) {
			continue
		}
		return doc, byURL(nodes, owners[0]), byURL(nodes, owners[1])
	}
	t.Fatalf("no key found avoiding %s", avoid.URL)
	panic("unreachable")
}

// TestGossipReplication: an artifact compiled at its owner is pulled by
// the replica in one anti-entropy round, after which the replica serves
// it as a local hit; a second round against an already-synced peer is
// skipped on digest equality.
func TestGossipReplication(t *testing.T) {
	nodes := startCluster(t, 2, 2)
	a, b := nodes[0], nodes[1]
	doc := docOwnedBy(t, a.Node.ring(), a.URL)

	ctx := context.Background()
	resp, _, err := (&client.Client{BaseURL: a.URL}).Compile(ctx, doc, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cache != service.CacheMiss {
		t.Fatalf("owner compile cache=%q, want miss", resp.Cache)
	}

	// One deterministic anti-entropy exchange: B pulls what A has.
	b.Node.gossipWith(a.URL)
	if m := b.Node.Metrics(); m.Gossip.Pulled < 1 {
		t.Fatalf("gossip pulled %d artifacts, want >=1", m.Gossip.Pulled)
	}

	// The replica now serves the key warm, byte-identical, no compile.
	resp2, _, err := (&client.Client{BaseURL: b.URL}).Compile(ctx, doc, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Cache != service.CacheHit {
		t.Fatalf("replica cache=%q, want hit", resp2.Cache)
	}
	if !bytes.Equal(resp.Result, resp2.Result) {
		t.Fatal("replicated artifact differs from the original")
	}
	if m := compileMisses(t, b.URL); m != 0 {
		t.Fatalf("replica compiled %d times, want 0", m)
	}

	// Digests now agree; the next exchange is a no-op.
	before := b.Node.Metrics().Gossip.Skipped
	b.Node.gossipWith(a.URL)
	if after := b.Node.Metrics().Gossip.Skipped; after != before+1 {
		t.Fatalf("synced exchange skipped=%d, want %d", after, before+1)
	}
}

// TestGossipSkipsUnownedKeys: a node pulls only keys it is responsible
// for — gossip replicates to the R-member replica set, not everywhere.
func TestGossipSkipsUnownedKeys(t *testing.T) {
	nodes := startCluster(t, 4, 2)
	a := nodes[0]
	doc, owner, _ := mintAvoiding(t, nodes, a)
	if _, _, err := (&client.Client{BaseURL: owner.URL}).Compile(context.Background(), doc, client.Options{}); err != nil {
		t.Fatal(err)
	}
	a.Node.gossipWith(owner.URL)
	if m := a.Node.Metrics(); m.Gossip.Pulled != 0 {
		t.Fatalf("pulled %d artifacts for keys outside the replica set, want 0", m.Gossip.Pulled)
	}
	if got := len(a.Svc.ArtifactKeys()); got != 0 {
		t.Fatalf("node A holds %d artifacts, want 0", got)
	}
}

// TestOwnerDeathWarmReplica is the headline failure-mode scenario: an
// artifact is compiled at its owner and gossip-replicated to its replica.
// The owner dies; probes mark it dead, which shrinks the ring so the old
// replica becomes the new owner. A request to a surviving non-replica is
// then served from the replica's warm copy — byte-identical, zero
// recompiles anywhere.
func TestOwnerDeathWarmReplica(t *testing.T) {
	nodes := startCluster(t, 4, 2)
	a := nodes[0]

	// Mint a key kept off node A both before AND after the owner's death —
	// otherwise A inherits replica duty on the shrunken ring and rightly
	// compiles locally instead of forwarding.
	var doc trace.Document
	var owner, replica *testNode
	for i := 0; i < 10000 && owner == nil; i++ {
		d := testDoc(fmt.Sprintf("death-%d", i))
		key, err := service.KeyForDocument(d, "torus-8x8", "combined")
		if err != nil {
			t.Fatal(err)
		}
		owners := a.Node.Owners(key)
		if contains(owners, a.URL) {
			continue
		}
		survivors := make([]string, 0, len(nodes)-1)
		for _, tn := range nodes {
			if tn.URL != owners[0] {
				survivors = append(survivors, tn.URL)
			}
		}
		if contains(NewRing(survivors, DefaultVNodes).Owners(key, 2), a.URL) {
			continue
		}
		doc = d
		owner, replica = byURL(nodes, owners[0]), byURL(nodes, owners[1])
	}
	if owner == nil {
		t.Fatal("could not mint a key avoiding A before and after the owner's death")
	}

	ctx := context.Background()
	origin, _, err := (&client.Client{BaseURL: owner.URL}).Compile(ctx, doc, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	replica.Node.gossipWith(owner.URL)
	if m := replica.Node.Metrics(); m.Gossip.Pulled < 1 {
		t.Fatalf("replica pulled %d, want >=1", m.Gossip.Pulled)
	}

	owner.Kill()
	// deadThreshold consecutive probe failures declare the owner dead on
	// every survivor, shrinking their rings identically.
	for i := 0; i < deadThreshold; i++ {
		for _, tn := range nodes {
			if tn != owner {
				tn.Node.ProbeRound()
			}
		}
	}
	for _, tn := range nodes {
		if tn == owner {
			continue
		}
		if st := stateOf(tn.Node.members.snapshot(), owner.URL); st != StateDead {
			t.Fatalf("node %s sees dead owner as %s", tn.URL, st)
		}
	}
	key, err := service.KeyForDocument(doc, "torus-8x8", "combined")
	if err != nil {
		t.Fatal(err)
	}
	if newOwner := a.Node.Owners(key)[0]; newOwner != replica.URL {
		t.Fatalf("post-death owner = %s, want old replica %s", newOwner, replica.URL)
	}

	// A's request forwards to the new owner, which serves its warm copy.
	resp, _, err := (&client.Client{BaseURL: a.URL}).Compile(ctx, doc, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cache != service.CachePeer {
		t.Fatalf("survivor served cache=%q, want peer", resp.Cache)
	}
	if !bytes.Equal(origin.Result, resp.Result) {
		t.Fatal("artifact after owner death differs from the original bytes")
	}
	if m := compileMisses(t, replica.URL); m != 0 {
		t.Fatalf("replica compiled %d times, want 0 (warm copy)", m)
	}
}

// TestProbeRejoin: a dead peer that comes back is re-admitted to the ring
// after one successful probe, bumping the membership version.
func TestProbeRejoin(t *testing.T) {
	nodes := startCluster(t, 2, 2)
	a, b := nodes[0], nodes[1]

	// Take B down at the handler so the port survives the outage.
	b.Swap.Set(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	for i := 0; i < deadThreshold; i++ {
		a.Node.ProbeRound()
	}
	if st := stateOf(a.Node.members.snapshot(), b.URL); st != StateDead {
		t.Fatalf("B is %s after %d failed probes, want dead", st, deadThreshold)
	}
	if got := a.Node.ring().Len(); got != 1 {
		t.Fatalf("ring has %d members with B dead, want 1", got)
	}
	if deaths := a.Node.Metrics().Membership.Deaths; deaths != 1 {
		t.Fatalf("deaths = %d, want 1", deaths)
	}

	// B recovers.
	b.Swap.Set(b.Node)
	a.Node.ProbeRound()
	if st := stateOf(a.Node.members.snapshot(), b.URL); st != StateAlive {
		t.Fatalf("B is %s after recovery, want alive", st)
	}
	if got := a.Node.ring().Len(); got != 2 {
		t.Fatalf("ring has %d members after rejoin, want 2", got)
	}
	if m := a.Node.Metrics().Membership; m.Rejoins != 1 {
		t.Fatalf("rejoins = %d, want 1", m.Rejoins)
	}
}

// TestMembershipStateMachine drives suspect/dead/rejoin transitions
// directly.
func TestMembershipStateMachine(t *testing.T) {
	m := newMembership("self", []string{"self", "p1", "p2", ""})
	if got, _ := m.ringMembers(); len(got) != 3 {
		t.Fatalf("ring members = %v, want self+2 peers", got)
	}
	if m.observeFailure("p1") {
		t.Fatal("first failure should not declare death")
	}
	if stateOf(m.snapshot(), "p1") != StateSuspect {
		t.Fatal("one failure should mark suspect")
	}
	_, v1 := m.ringMembers()
	if m.observeFailure("p1") {
		t.Fatal("second failure should not declare death")
	}
	if !m.observeFailure("p1") {
		t.Fatalf("failure %d should cross the dead threshold", deadThreshold)
	}
	members, v2 := m.ringMembers()
	if v2 == v1 {
		t.Fatal("death must bump the membership version")
	}
	if contains(members, "p1") {
		t.Fatal("dead peer still in ring members")
	}
	// Repeat failures on a dead peer change nothing.
	if m.observeFailure("p1") {
		t.Fatal("re-declared death on an already-dead peer")
	}
	// Suspect recovery without death: no version bump.
	m.observeFailure("p2")
	_, v3 := m.ringMembers()
	if m.observeAlive("p2") {
		t.Fatal("suspect recovery reported as rejoin")
	}
	if _, v4 := m.ringMembers(); v4 != v3 {
		t.Fatal("suspect recovery must not bump the version")
	}
	// Dead recovery: rejoin + version bump.
	if !m.observeAlive("p1") {
		t.Fatal("dead recovery not reported as rejoin")
	}
	if members, v5 := m.ringMembers(); !contains(members, "p1") || v5 == v2 {
		t.Fatalf("rejoin: members=%v version %d (old %d)", members, v5, v2)
	}
	// Unknown peers are ignored, not adopted.
	m.observeAlive("stranger")
	if members, _ := m.ringMembers(); contains(members, "stranger") {
		t.Fatal("membership adopted an unconfigured peer")
	}
}

// TestSummaryDigestOrderIndependent pins the digest to content, not order.
func TestSummaryDigestOrderIndependent(t *testing.T) {
	a := summaryDigest([]string{"k1", "k2", "k3"})
	b := summaryDigest([]string{"k3", "k1", "k2"})
	if a != b {
		t.Fatal("digest depends on key order")
	}
	if a == summaryDigest([]string{"k1", "k2"}) {
		t.Fatal("digest ignores membership")
	}
	if summaryDigest(nil) != summaryDigest([]string{}) {
		t.Fatal("empty digests differ")
	}
}

func byURL(nodes []*testNode, url string) *testNode {
	for _, tn := range nodes {
		if tn.URL == url {
			return tn
		}
	}
	return nil
}

func stateOf(statuses []MemberStatus, node string) string {
	for _, st := range statuses {
		if st.Node == node {
			return st.State
		}
	}
	return "missing"
}

// Package frontend is the compiler front end of the compiled-communication
// system: it recognizes communication patterns in a (miniature) data-
// parallel intermediate representation and emits the communication phases
// the back end (internal/core) schedules.
//
// The paper's section 3 lists pattern recognition as the first of the three
// issues compiled communication must address and points at the existing
// literature (stencil compilers, collective-communication extraction). This
// package models the part of that machinery the rest of the system needs:
//
//   - ShiftRef    — a shared-array reference with constant offsets
//     (A[i+1, j]); generates neighbor communication from the
//     array's block-cyclic distribution (the "shared array
//     ref." rows of Table 4: GS, P3M 5).
//   - Redistribute — an explicit redistribution statement (CRAFT-style
//     REDISTRIBUTE); generates the Table 2 / P3M 1-4 patterns
//     and updates the array's distribution for subsequent
//     statements (the extraction is flow sensitive).
//   - SendRecv    — explicit message passing with compile-time known
//     endpoints (the TSCF hypercube row of Table 4).
//   - IrregularRef — a reference whose subscripts are unknown until run
//     time; the extractor marks the phase Dynamic so the
//     back end serves it with the predetermined AAPC
//     configuration set.
package frontend

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/redist"
	"repro/internal/request"
	"repro/internal/sim"
)

// Array declares a distributed array: its shape and initial block-cyclic
// distribution.
type Array struct {
	Name  string
	Shape [3]int
	Dist  redist.Dist
}

// Stmt is one communication-relevant statement of the program IR.
type Stmt interface {
	stmtName() string
}

// ShiftRef is a data-parallel statement whose body reads the named array at
// constant offsets from the iteration point, e.g. A[i-1], A[i+1] in a
// relaxation sweep. Each distinct offset generates one boundary exchange.
type ShiftRef struct {
	Name    string
	Array   string
	Offsets [][3]int
}

func (s ShiftRef) stmtName() string { return s.Name }

// Redistribute changes the named array's distribution.
type Redistribute struct {
	Name  string
	Array string
	To    redist.Dist
}

func (s Redistribute) stmtName() string { return s.Name }

// SendRecv is explicit message passing with statically known endpoints and
// a fixed per-message element count.
type SendRecv struct {
	Name     string
	Pairs    request.Set
	Elements int
}

func (s SendRecv) stmtName() string { return s.Name }

// IrregularRef is an array reference with runtime-dependent subscripts
// (indirection, input-dependent gather). The compiler cannot enumerate its
// connections; the phase is marked Dynamic. RepresentativeMessages, if any,
// are a profile used only for simulation.
type IrregularRef struct {
	Name                   string
	Array                  string
	RepresentativeMessages []sim.Message
}

func (s IrregularRef) stmtName() string { return s.Name }

// Program is the IR of one parallel program.
type Program struct {
	Name   string
	PEs    int
	Arrays []Array
	Stmts  []Stmt
}

// Options tune extraction.
type Options struct {
	// FlitElements is the number of array elements per flit; zero means 4
	// (the repository-wide default documented in internal/apps).
	FlitElements int
}

// Extract recognizes the communication pattern of every statement and
// returns the core.Program the scheduling back end consumes. Distribution
// state flows through the statement list: a Redistribute changes what later
// ShiftRefs on the same array generate.
func Extract(p Program, opts Options) (core.Program, error) {
	flitElems := opts.FlitElements
	if flitElems == 0 {
		flitElems = 4
	}
	if p.PEs < 2 {
		return core.Program{}, fmt.Errorf("frontend: program needs >= 2 PEs, got %d", p.PEs)
	}
	dists := make(map[string]*Array, len(p.Arrays))
	for i := range p.Arrays {
		a := p.Arrays[i]
		if a.Dist.Procs() != p.PEs {
			return core.Program{}, fmt.Errorf("frontend: array %q distributed over %d PEs, program has %d",
				a.Name, a.Dist.Procs(), p.PEs)
		}
		if _, dup := dists[a.Name]; dup {
			return core.Program{}, fmt.Errorf("frontend: duplicate array %q", a.Name)
		}
		dists[a.Name] = &p.Arrays[i]
	}
	flits := func(elements int) int {
		f := (elements + flitElems - 1) / flitElems
		if f < 1 {
			f = 1
		}
		return f
	}
	patternMessages := func(pat redist.Pattern) []sim.Message {
		msgs := make([]sim.Message, len(pat.Reqs))
		for i, r := range pat.Reqs {
			msgs[i] = sim.Message{Src: int(r.Src), Dst: int(r.Dst), Flits: flits(pat.Volume[r])}
		}
		return msgs
	}

	out := core.Program{Name: p.Name}
	for _, st := range p.Stmts {
		switch s := st.(type) {
		case ShiftRef:
			a, ok := dists[s.Array]
			if !ok {
				return core.Program{}, fmt.Errorf("frontend: %q references undeclared array %q", s.Name, s.Array)
			}
			if len(s.Offsets) == 0 {
				return core.Program{}, fmt.Errorf("frontend: %q has no offsets", s.Name)
			}
			// Merge the exchanges of all offsets into one phase: they
			// belong to one data-parallel statement and overlap in time.
			volume := make(map[request.Request]int)
			var order request.Set
			for _, off := range s.Offsets {
				pat, err := redist.ShiftPattern(a.Shape, a.Dist, off)
				if err != nil {
					return core.Program{}, fmt.Errorf("frontend: %q: %w", s.Name, err)
				}
				for _, r := range pat.Reqs {
					if _, seen := volume[r]; !seen {
						order = append(order, r)
					}
					volume[r] += pat.Volume[r]
				}
			}
			if len(order) == 0 {
				return core.Program{}, fmt.Errorf("frontend: %q generates no communication (offsets stay on-PE)", s.Name)
			}
			msgs := make([]sim.Message, len(order))
			for i, r := range order {
				msgs[i] = sim.Message{Src: int(r.Src), Dst: int(r.Dst), Flits: flits(volume[r])}
			}
			out.Phases = append(out.Phases, core.Phase{Name: s.Name, Messages: msgs})

		case Redistribute:
			a, ok := dists[s.Array]
			if !ok {
				return core.Program{}, fmt.Errorf("frontend: %q redistributes undeclared array %q", s.Name, s.Array)
			}
			pat, err := redist.Redistribute(a.Shape, a.Dist, s.To)
			if err != nil {
				return core.Program{}, fmt.Errorf("frontend: %q: %w", s.Name, err)
			}
			a.Dist = s.To // flow-sensitive: later statements see the new layout
			if len(pat.Reqs) == 0 {
				continue // identical layouts: no communication, no phase
			}
			out.Phases = append(out.Phases, core.Phase{Name: s.Name, Messages: patternMessages(pat)})

		case SendRecv:
			if len(s.Pairs) == 0 {
				return core.Program{}, fmt.Errorf("frontend: %q has no endpoints", s.Name)
			}
			if s.Elements < 1 {
				return core.Program{}, fmt.Errorf("frontend: %q has %d elements per message", s.Name, s.Elements)
			}
			msgs := make([]sim.Message, len(s.Pairs))
			for i, r := range s.Pairs {
				msgs[i] = sim.Message{Src: int(r.Src), Dst: int(r.Dst), Flits: flits(s.Elements)}
			}
			out.Phases = append(out.Phases, core.Phase{Name: s.Name, Messages: msgs})

		case IrregularRef:
			if _, ok := dists[s.Array]; !ok {
				return core.Program{}, fmt.Errorf("frontend: %q references undeclared array %q", s.Name, s.Array)
			}
			msgs := s.RepresentativeMessages
			if len(msgs) == 0 {
				// No profile: a placeholder message keeps the phase
				// simulatable; the fallback schedule covers all pairs
				// anyway.
				msgs = []sim.Message{{Src: 0, Dst: p.PEs - 1, Flits: 1}}
			}
			out.Phases = append(out.Phases, core.Phase{Name: s.Name, Messages: msgs, Dynamic: true})

		default:
			return core.Program{}, fmt.Errorf("frontend: unknown statement type %T", st)
		}
	}
	if len(out.Phases) == 0 {
		return core.Program{}, fmt.Errorf("frontend: program %q has no communication", p.Name)
	}
	return out, nil
}

// StaticFraction returns the fraction of phases (and of messages) the
// extractor classified as static — the quantity the paper cites at over
// 95% for scientific codes.
func StaticFraction(p core.Program) (phaseFrac, msgFrac float64) {
	if len(p.Phases) == 0 {
		return 0, 0
	}
	staticPhases, staticMsgs, totalMsgs := 0, 0, 0
	for _, ph := range p.Phases {
		totalMsgs += len(ph.Messages)
		if !ph.Dynamic {
			staticPhases++
			staticMsgs += len(ph.Messages)
		}
	}
	if totalMsgs == 0 {
		return float64(staticPhases) / float64(len(p.Phases)), 0
	}
	return float64(staticPhases) / float64(len(p.Phases)), float64(staticMsgs) / float64(totalMsgs)
}

package frontend_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/frontend"
	"repro/internal/patterns"
	"repro/internal/redist"
	"repro/internal/request"
	"repro/internal/sim"
	"repro/internal/topology"
)

func dist(t *testing.T, p0, b0, p1, b1, p2, b2 int) redist.Dist {
	t.Helper()
	d, err := redist.NewDist([3]redist.DimDist{{P: p0, B: b0}, {P: p1, B: b1}, {P: p2, B: b2}})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// gsIR is the GS program in the frontend IR: an n x n grid distributed by
// rows over 64 PEs, one relaxation sweep reading the rows above and below.
func gsIR(t *testing.T, n int) frontend.Program {
	t.Helper()
	return frontend.Program{
		Name: "GS",
		PEs:  64,
		Arrays: []frontend.Array{
			{Name: "u", Shape: [3]int{n, n, 1}, Dist: dist(t, 64, n/64, 1, n, 1, 1)},
		},
		Stmts: []frontend.Stmt{
			frontend.ShiftRef{Name: "relax", Array: "u", Offsets: [][3]int{{-1, 0, 0}, {1, 0, 0}}},
		},
	}
}

// TestExtractGSMatchesHandModel: the pattern the frontend recognizes from
// the GS IR equals the hand-built apps.GS model (Table 4 row 1).
func TestExtractGSMatchesHandModel(t *testing.T) {
	prog, err := frontend.Extract(gsIR(t, 64), frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Phases) != 1 {
		t.Fatalf("extracted %d phases", len(prog.Phases))
	}
	got := map[[2]int]int{}
	for _, m := range prog.Phases[0].Messages {
		got[[2]int{m.Src, m.Dst}] = m.Flits
	}
	want, err := apps.GS(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want.Messages) {
		t.Fatalf("extracted %d connections, hand model has %d", len(got), len(want.Messages))
	}
	for _, m := range want.Messages {
		f, ok := got[[2]int{m.Src, m.Dst}]
		if !ok {
			t.Fatalf("connection %d->%d missing from extraction", m.Src, m.Dst)
		}
		if f != m.Flits {
			t.Fatalf("connection %d->%d: %d flits extracted, hand model %d", m.Src, m.Dst, f, m.Flits)
		}
	}
}

// TestExtractRedistributeIsFlowSensitive: a second redistribution starts
// from the layout the first one produced, and redistributing to the same
// layout is recognized as communication-free.
func TestExtractRedistributeIsFlowSensitive(t *testing.T) {
	a := dist(t, 4, 16, 4, 16, 4, 16)
	b := dist(t, 1, 64, 1, 64, 64, 1)
	prog := frontend.Program{
		Name:   "flow",
		PEs:    64,
		Arrays: []frontend.Array{{Name: "m", Shape: [3]int{64, 64, 64}, Dist: a}},
		Stmts: []frontend.Stmt{
			frontend.Redistribute{Name: "to-z", Array: "m", To: b},
			frontend.Redistribute{Name: "same", Array: "m", To: b}, // no-op
			frontend.Redistribute{Name: "back", Array: "m", To: a}, // b -> a
		},
	}
	out, err := frontend.Extract(prog, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Phases) != 2 {
		t.Fatalf("extracted %d phases, want 2 (the no-op redistribution vanishes)", len(out.Phases))
	}
	if out.Phases[0].Name != "to-z" || out.Phases[1].Name != "back" {
		t.Fatalf("unexpected phases %q, %q", out.Phases[0].Name, out.Phases[1].Name)
	}
	// "back" must be the reverse redistribution b -> a, not a -> b.
	wantPat, err := redist.Redistribute([3]int{64, 64, 64}, b, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Phases[1].Messages) != len(wantPat.Reqs) {
		t.Fatalf("back phase has %d connections, want %d", len(out.Phases[1].Messages), len(wantPat.Reqs))
	}
}

func TestExtractSendRecvAndIrregular(t *testing.T) {
	hyper, err := patterns.Hypercube(64)
	if err != nil {
		t.Fatal(err)
	}
	prog := frontend.Program{
		Name:   "tscf-like",
		PEs:    64,
		Arrays: []frontend.Array{{Name: "f", Shape: [3]int{64, 64, 1}, Dist: dist(t, 64, 1, 1, 64, 1, 1)}},
		Stmts: []frontend.Stmt{
			frontend.SendRecv{Name: "exchange", Pairs: hyper, Elements: 8},
			frontend.IrregularRef{Name: "gather", Array: "f"},
		},
	}
	out, err := frontend.Extract(prog, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Phases) != 2 {
		t.Fatalf("extracted %d phases", len(out.Phases))
	}
	if out.Phases[0].Dynamic || !out.Phases[1].Dynamic {
		t.Error("static/dynamic classification wrong")
	}
	if out.Phases[0].Messages[0].Flits != 2 {
		t.Errorf("8 elements should be 2 flits, got %d", out.Phases[0].Messages[0].Flits)
	}
	pf, mf := frontend.StaticFraction(out)
	if pf != 0.5 {
		t.Errorf("static phase fraction = %f", pf)
	}
	if mf < 0.99 {
		t.Errorf("static message fraction = %f, want ~1 (384 static vs 1 dynamic)", mf)
	}
}

// TestExtractedProgramCompilesEndToEnd: IR -> extraction -> scheduling ->
// switch programs -> simulation, the full pipeline.
func TestExtractedProgramCompilesEndToEnd(t *testing.T) {
	out, err := frontend.Extract(gsIR(t, 128), frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	torus := topology.NewTorus(8, 8)
	cp, err := core.Compiler{Topology: torus}.Compile(out)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Phases[0].Degree() != 2 {
		t.Errorf("GS degree = %d, want 2", cp.Phases[0].Degree())
	}
	res, err := sim.RunCompiled(cp.Phases[0].Schedule, cp.Phases[0].Phase.Messages)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Error("simulation produced no time")
	}
}

func TestExtractErrors(t *testing.T) {
	d := dist(t, 64, 1, 1, 64, 1, 1)
	base := frontend.Program{
		PEs:    64,
		Arrays: []frontend.Array{{Name: "a", Shape: [3]int{64, 64, 1}, Dist: d}},
	}
	cases := []frontend.Program{
		{PEs: 1, Arrays: base.Arrays, Stmts: []frontend.Stmt{frontend.IrregularRef{Name: "x", Array: "a"}}},
		{PEs: 64, Arrays: base.Arrays}, // no statements
		{PEs: 64, Arrays: base.Arrays, Stmts: []frontend.Stmt{frontend.ShiftRef{Name: "x", Array: "nope", Offsets: [][3]int{{1, 0, 0}}}}},
		{PEs: 64, Arrays: base.Arrays, Stmts: []frontend.Stmt{frontend.ShiftRef{Name: "x", Array: "a"}}},
		{PEs: 64, Arrays: base.Arrays, Stmts: []frontend.Stmt{frontend.SendRecv{Name: "x"}}},
		{PEs: 64, Arrays: base.Arrays, Stmts: []frontend.Stmt{frontend.SendRecv{Name: "x", Pairs: request.Set{{Src: 0, Dst: 1}}, Elements: 0}}},
		{PEs: 64, Arrays: append(append([]frontend.Array{}, base.Arrays...), base.Arrays...), Stmts: []frontend.Stmt{frontend.IrregularRef{Name: "x", Array: "a"}}},
		{PEs: 64, Arrays: []frontend.Array{{Name: "a", Shape: [3]int{64, 64, 1}, Dist: dist(t, 4, 16, 1, 64, 1, 1)}}, Stmts: []frontend.Stmt{frontend.IrregularRef{Name: "x", Array: "a"}}},
	}
	for i, p := range cases {
		if _, err := frontend.Extract(p, frontend.Options{}); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestShiftWithinPEIsFree: offsets that stay inside each PE's block
// generate no communication and are rejected as a no-communication program.
func TestShiftWithinPEIsFree(t *testing.T) {
	prog := frontend.Program{
		Name:   "local",
		PEs:    4,
		Arrays: []frontend.Array{{Name: "a", Shape: [3]int{64, 1, 1}, Dist: dist(t, 4, 16, 1, 1, 1, 1)}},
		Stmts:  []frontend.Stmt{frontend.ShiftRef{Name: "x", Array: "a", Offsets: [][3]int{{0, 0, 0}}}},
	}
	if _, err := frontend.Extract(prog, frontend.Options{}); err == nil {
		t.Error("zero-offset reference should yield no communication and fail extraction")
	}
}

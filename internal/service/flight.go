package service

import (
	"encoding/json"
	"sync"
)

// flightGroup coalesces concurrent compiles of the same key: the first
// caller (the leader) runs the function, every caller that arrives while it
// is in flight blocks on the shared result instead of compiling again. This
// is what turns a thundering herd of identical requests into exactly one
// pipeline invocation.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done    chan struct{}
	val     json.RawMessage
	err     error
	waiters int
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flightCall)}
}

// Do runs fn once per concurrent key and reports whether this caller led
// the flight (leader == false means the result was coalesced).
func (g *flightGroup) Do(key string, fn func() (json.RawMessage, error)) (val json.RawMessage, err error, leader bool) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		c.waiters++
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, false
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, true
}

// waiters reports how many callers are currently blocked on the key's
// in-flight compile (0 if none is in flight). Test instrumentation.
func (g *flightGroup) waitersFor(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c.waiters
	}
	return 0
}

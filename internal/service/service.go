// Package service is the compile daemon of the compiled-communication
// stack: a long-running HTTP/JSON server that accepts communication
// programs in the internal/trace format, runs them through the scheduling
// pipeline (request extraction → connection scheduling → switch-program
// lowering), and returns the compiled configurations plus predicted
// communication time.
//
// The paper's premise is that compilation happens once, off-line, and is
// reused across communication phases. This package is that amortization
// made operational:
//
//   - a content-addressed schedule cache, keyed by the canonical pattern
//     hash of internal/request (normalized request list + topology +
//     heuristic parameters), bounded LRU with hit/miss/eviction counters;
//   - singleflight coalescing, so a thundering herd of identical requests
//     shares exactly one pipeline invocation;
//   - a bounded worker pool with queue-depth admission control — under
//     overload the daemon answers 429 + Retry-After instead of queueing
//     without limit;
//   - /recompile, which applies an internal/fault mask and reuses
//     fault.Recompile (including its light-trace verification) for
//     degraded-network compilation;
//   - /metrics (JSON counters + latency histograms via internal/stats) and
//     optional net/http/pprof wiring.
//
// Canonical semantics: the service sorts each phase's messages by
// (src, dst, start, flits) before hashing AND before compiling, so two
// traces that are permutations of each other share one cache entry and one
// compile — and the greedy scheduler's order sensitivity cannot make the
// cached artifact diverge from a cold compile. Cache hits return the
// byte-identical artifact the cold compile produced.
package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"net/url"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/qos"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/topology"
	"repro/internal/trace"
)

// maxBodyBytes bounds a request body; a 64-PE trace with thousands of
// messages is well under a megabyte.
const maxBodyBytes = 32 << 20

// Config parameterizes a Server. Zero values select production defaults.
type Config struct {
	// Topology is the default network compiled against; required.
	Topology network.Topology
	// Scheduler is the default scheduling algorithm; nil means the paper's
	// combined algorithm.
	Scheduler schedule.Scheduler
	// Workers is the compile worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the admission queue; 0 means 64. Requests beyond
	// workers+queue are answered 429.
	QueueDepth int
	// CacheEntries bounds the schedule cache; 0 means 256.
	CacheEntries int
	// RetryAfter is the Retry-After hint on 429 replies; 0 means 1s.
	RetryAfter time.Duration
	// QoS declares the multi-tenant admission classes (weights, per-class
	// queue caps and Retry-After, cache/store quotas). Tenants are named by
	// the X-Ccomm-Tenant header; a tenant named like a class belongs to it,
	// everything else — including anonymous traffic — lands in the default
	// class. Empty means a single default class with the global bounds
	// above, which reproduces single-tenant behavior exactly.
	QoS []qos.Class
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool

	// StoreDir, when non-empty, enables the persistent schedule store
	// rooted there: compiled artifacts and per-phase base schedules survive
	// restarts (warm boot preloads them), and the delta recompiler patches
	// stored bases instead of compiling from scratch.
	StoreDir string
	// StoreMaxEntries and StoreMaxAge bound the store; GC runs at startup.
	// Zero means unbounded.
	StoreMaxEntries int
	StoreMaxAge     time.Duration
	// DeltaBound accepts an incrementally patched schedule only when its
	// multiplexing degree is at most DeltaBound x the from-scratch estimate;
	// 0 means delta.DefaultBound.
	DeltaBound float64

	// Reconfig is the reconfiguration cost model /session prices its
	// keep/patch/recompile decisions under; the zero value means
	// core.DefaultReconfigCost.
	Reconfig core.ReconfigCost
}

// Server is the compile service. It implements http.Handler.
type Server struct {
	topo      network.Topology
	topoPEs   int
	scheduler schedule.Scheduler
	retry     time.Duration

	// qos maps tenant IDs to admission classes; always non-nil (a
	// registry holding just the default class when Config.QoS is empty).
	qos *qos.Registry

	mux     *http.ServeMux
	cache   *lruCache
	flight  *flightGroup
	pool    *workerPool
	metrics *metricsState

	// store is the persistent schedule store; nil when disabled. bases is
	// the in-memory nearest-base candidate index over its schedule entries,
	// deltaBound the patch-quality gate.
	store      *store.Store
	bases      *baseIndex
	deltaBound float64
	reconfig   core.ReconfigCost

	// maskedViews shares fault-masked topology views (and their route
	// caches) across recompile requests with the same fault mask.
	maskedViews maskedViewCache

	// peersV holds the PeerResolver of the cluster layer (a *peerBox);
	// nil means this daemon serves alone. Atomic because SetPeers races
	// with early requests during daemon startup.
	peersV atomic.Value

	// compileHook, when set, runs inside a pool worker immediately before a
	// pipeline invocation. Test instrumentation: counting calls counts
	// compiles, blocking it holds a compile in flight.
	compileHook func(key string)
}

// ForwardedHeader marks a request forwarded from a cluster peer: the
// receiving daemon is the key's owner and must resolve it locally rather
// than forward again. Set by internal/cluster on the peer hop.
const ForwardedHeader = "X-Ccomm-Forwarded"

// PeerContext describes one compile request to the cluster layer: the
// content key the local caches missed, plus everything needed to replay the
// request against the key's owner.
type PeerContext struct {
	// Key is the content-address the request resolves to.
	Key string
	// Tenant is the canonical tenant (QoS class) of the originating
	// request; the cluster layer forwards it so the owner daemon bills the
	// compile to the right class instead of the default tenant.
	Tenant string
	// Query carries the original request's query parameters (topology, alg,
	// fault mask) and Body its raw trace document.
	Query url.Values
	Body  []byte
	// Recompile distinguishes /recompile from /compile.
	Recompile bool
}

// PeerResolver intercedes between a local cache miss and a local compile.
// The cluster layer implements it: a non-owner forwards the request to the
// key's owner and returns the owner's artifact; ok=false (wrong role, every
// owner unreachable) falls through to the local compile, so a degraded
// cluster degrades to N independent daemons, never to an outage.
type PeerResolver interface {
	Resolve(pc PeerContext) (json.RawMessage, bool)
}

// peerBox wraps the resolver so atomic.Value stores one concrete type.
type peerBox struct{ p PeerResolver }

// SetPeers installs the cluster layer's resolver. Safe to call while
// serving; nil resolvers are ignored.
func (s *Server) SetPeers(p PeerResolver) {
	if p != nil {
		s.peersV.Store(&peerBox{p})
	}
}

func (s *Server) peers() PeerResolver {
	if b, ok := s.peersV.Load().(*peerBox); ok {
		return b.p
	}
	return nil
}

// New builds a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("service: Config.Topology is required")
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = schedule.Combined{}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = defaultWorkers()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 256
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.DeltaBound <= 0 {
		cfg.DeltaBound = delta.DefaultBound
	}
	if cfg.Reconfig == (core.ReconfigCost{}) {
		cfg.Reconfig = core.DefaultReconfigCost
	}
	reg, err := qos.NewRegistry(cfg.QoS, qos.Defaults{
		QueueDepth:   cfg.QueueDepth,
		RetryAfter:   cfg.RetryAfter,
		CacheEntries: cfg.CacheEntries,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		topo:       cfg.Topology,
		topoPEs:    network.TerminalCount(cfg.Topology),
		scheduler:  cfg.Scheduler,
		retry:      cfg.RetryAfter,
		qos:        reg,
		mux:        http.NewServeMux(),
		cache:      newLRUCache(cfg.CacheEntries),
		flight:     newFlightGroup(),
		metrics:    newMetricsState(),
		bases:      newBaseIndex(),
		deltaBound: cfg.DeltaBound,
		reconfig:   cfg.Reconfig,
	}
	for _, c := range reg.Classes() {
		s.cache.configure(c.Name, c.CacheEntries)
	}
	s.pool = newWorkerPool(cfg.Workers, reg, s.metrics.observeQueueWait)
	if cfg.StoreDir != "" {
		st, err := store.Open(cfg.StoreDir, store.Options{MaxEntries: cfg.StoreMaxEntries, MaxAge: cfg.StoreMaxAge})
		if err != nil {
			return nil, err
		}
		if _, err := st.GC(); err != nil {
			return nil, err
		}
		s.store = st
		s.cache.onEvict = s.writeEvicted
		s.warmBoot(cfg.CacheEntries)
	}
	s.mux.HandleFunc("/compile", s.handleCompile)
	s.mux.HandleFunc("/recompile", s.handleRecompile)
	s.mux.HandleFunc("/session", s.handleSession)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close drains the worker pool: queued and running compiles finish, new
// submissions fail with ErrDraining. Call after http.Server.Shutdown has
// stopped accepting requests.
func (s *Server) Close() { s.pool.Close() }

// compileError wraps failures of the pipeline itself (unroutable pattern,
// disconnected fault mask), mapped to 422 rather than 500: the daemon is
// healthy, the program is not compilable on this network.
type compileError struct{ err error }

func (e compileError) Error() string { return e.err.Error() }
func (e compileError) Unwrap() error { return e.err }

// parsedRequest is a validated compile/recompile request.
type parsedRequest struct {
	doc       trace.Document
	prog      core.Program // canonicalized message order
	topo      network.Topology
	topoName  string
	scheduler schedule.Scheduler
	schedName string
	faults    *fault.Set
	mask      *FaultMask
	key       string

	// tenant is the canonical tenant identity (the QoS class name the
	// X-Ccomm-Tenant header mapped to); class is that class's config.
	tenant string
	class  qos.Class

	// query and body preserve the request as received so the cluster layer
	// can replay it verbatim against the key's owner; recompile selects the
	// peer endpoint, forwarded stops a forwarded request from forwarding
	// again.
	query     url.Values
	body      []byte
	recompile bool
	forwarded bool
}

// parse validates the HTTP request into a parsedRequest.
func (s *Server) parse(r *http.Request, w http.ResponseWriter, recompile bool) (*parsedRequest, error) {
	q := r.URL.Query()
	p := &parsedRequest{
		topo:      s.topo,
		scheduler: s.scheduler,
		query:     q,
		recompile: recompile,
		forwarded: r.Header.Get(ForwardedHeader) != "",
		tenant:    s.qos.Tenant(r.Header.Get(qos.TenantHeader)),
	}
	p.class = s.qos.ClassOf(p.tenant)
	pes := s.topoPEs
	if name := q.Get("topology"); name != "" {
		topo, err := topology.Parse(name)
		if err != nil {
			return nil, err
		}
		p.topo = topo
		pes = network.TerminalCount(topo)
	}
	p.topoName = p.topo.Name()
	if name := q.Get("alg"); name != "" {
		sch, err := schedule.ParseScheduler(name)
		if err != nil {
			return nil, err
		}
		p.scheduler = sch
	}
	p.schedName = p.scheduler.Name()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		return nil, err
	}
	p.body = body
	doc, err := trace.Read(bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if doc.PEs != pes {
		return nil, fmt.Errorf("service: trace targets %d PEs but topology %s hosts %d", doc.PEs, p.topoName, pes)
	}
	p.doc = doc
	prog, err := doc.Program()
	if err != nil {
		return nil, err
	}
	p.prog = canonicalProgram(prog)

	faultsParam := ""
	if recompile {
		links, err := cliutil.ParseIntList(q.Get("links"))
		if err != nil {
			return nil, err
		}
		nodes, err := cliutil.ParseIntList(q.Get("nodes"))
		if err != nil {
			return nil, err
		}
		set := fault.NewSet()
		for _, l := range links {
			if l < 0 || l >= p.topo.NumLinks() {
				return nil, fmt.Errorf("service: link %d outside 0..%d of %s", l, p.topo.NumLinks()-1, p.topoName)
			}
			set.FailLink(network.LinkID(l))
		}
		for _, n := range nodes {
			if n < 0 || n >= p.topo.NumNodes() {
				return nil, fmt.Errorf("service: node %d outside 0..%d of %s", n, p.topo.NumNodes()-1, p.topoName)
			}
			set.FailNode(network.NodeID(n))
		}
		p.faults = set
		if !set.Empty() {
			faultsParam = set.String()
			sort.Ints(links)
			sort.Ints(nodes)
			p.mask = &FaultMask{Links: links, Nodes: nodes}
		}
	}
	p.key = programKey(p.prog, doc.PEs, p.topoName, p.schedName, faultsParam)
	return p, nil
}

// canonicalProgram sorts every phase's messages by (src, dst, start, flits),
// the normalization that makes pattern hashing and scheduling independent of
// the order a caller enumerated its messages in.
func canonicalProgram(prog core.Program) core.Program {
	out := core.Program{Name: prog.Name, Phases: make([]core.Phase, len(prog.Phases))}
	for i, ph := range prog.Phases {
		msgs := append([]sim.Message(nil), ph.Messages...)
		sort.Slice(msgs, func(a, b int) bool {
			x, y := msgs[a], msgs[b]
			if x.Src != y.Src {
				return x.Src < y.Src
			}
			if x.Dst != y.Dst {
				return x.Dst < y.Dst
			}
			if x.Start != y.Start {
				return x.Start < y.Start
			}
			return x.Flits < y.Flits
		})
		out.Phases[i] = core.Phase{Name: ph.Name, Messages: msgs, Dynamic: ph.Dynamic}
	}
	return out
}

// programKey derives the content-address of a whole program's compiled
// artifact: a SHA-256 over the per-phase canonical pattern keys of
// internal/request plus the program attributes that select a different
// artifact. Phase names participate deliberately — the artifact echoes
// them — but message order never does (PatternKey canonicalizes).
func programKey(prog core.Program, pes int, topoName, schedName, faultsParam string) string {
	h := sha256.New()
	var scratch [8]byte
	writeStr := func(str string) {
		n := len(str)
		for i := 0; i < 8; i++ {
			scratch[i] = byte(n >> (8 * i))
		}
		h.Write(scratch[:])
		h.Write([]byte(str))
	}
	writeStr("ccomm-program-v1")
	writeStr(prog.Name)
	writeStr(strconv.Itoa(pes))
	writeStr(strconv.Itoa(len(prog.Phases)))
	for _, ph := range prog.Phases {
		triples := make([]request.Triple, len(ph.Messages))
		for i, m := range ph.Messages {
			triples[i] = request.Triple{Src: m.Src, Dst: m.Dst, Flits: m.Flits, Start: m.Start}
		}
		writeStr(request.PatternKey(triples, topoName,
			"alg="+schedName,
			"faults="+faultsParam,
			"phase="+ph.Name,
			"dynamic="+strconv.FormatBool(ph.Dynamic),
		))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// KeyForDocument computes the content-address a fault-free /compile of doc
// resolves to on the named topology and scheduler, without compiling
// anything. The cluster layer and its tests use it to reason about key
// ownership (which daemon a request will be forwarded to) ahead of time.
func KeyForDocument(doc trace.Document, topoName, schedName string) (string, error) {
	prog, err := doc.Program()
	if err != nil {
		return "", err
	}
	return programKey(canonicalProgram(prog), doc.PEs, topoName, schedName, ""), nil
}

// ArtifactKeys lists every program key this daemon can serve without a
// pipeline invocation: the in-memory cache union the persistent store. The
// cluster gossip layer exchanges this set (hashed into a digest) for
// anti-entropy replication.
func (s *Server) ArtifactKeys() []string {
	keys := s.cache.Keys()
	if s.store == nil {
		return keys
	}
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		seen[k] = true
	}
	for _, info := range s.store.Entries(store.KindArtifact) {
		if !seen[info.Key] {
			keys = append(keys, info.Key)
		}
	}
	return keys
}

// ArtifactGet returns a warm artifact — cache or store — and never
// compiles. It backs the cluster's /peer/fetch endpoint.
func (s *Server) ArtifactGet(key string) (json.RawMessage, bool) {
	raw, _, ok := s.ArtifactGetOwned(key)
	return raw, ok
}

// ArtifactGetOwned is ArtifactGet plus the tenant the artifact is billed
// to, so the cluster fetch path can replicate ownership alongside content
// and the receiving daemon bills the copy to the same class.
func (s *Server) ArtifactGetOwned(key string) (json.RawMessage, string, bool) {
	if v, tenant, ok := s.cache.GetOwned(key); ok {
		return v, tenant, true
	}
	if v, owner, ok := s.storeGetArtifactOwned(key); ok {
		tenant := s.tenantOfOwner(owner)
		s.cache.Add(key, tenant, v)
		return v, tenant, true
	}
	return nil, "", false
}

// ArtifactPut installs an artifact fetched from a cluster peer into the
// cache and (best-effort) the store, billed to the default tenant. See
// ArtifactPutOwned.
func (s *Server) ArtifactPut(key string, raw json.RawMessage) {
	s.ArtifactPutOwned(key, "", raw)
}

// ArtifactPutOwned installs a replicated artifact billed to a tenant, so it
// is served as a local hit from now on and counts against the owner's
// quotas, not the default tenant's. Compilation is deterministic and keys
// are content hashes, so a replicated artifact is byte-identical to what
// this daemon would have compiled itself.
func (s *Server) ArtifactPutOwned(key, tenant string, raw json.RawMessage) {
	tenant = s.qos.Tenant(tenant)
	s.cache.Add(key, tenant, raw)
	s.storePutArtifact(key, tenant, raw)
}

// tenantOfOwner maps a store owner tag back to a canonical tenant: the
// store encodes the default tenant as "" (backward compatible with
// pre-tenancy entries), every other owner is canonicalized through the
// registry.
func (s *Server) tenantOfOwner(owner string) string {
	if owner == "" {
		return qos.DefaultClass
	}
	return s.qos.Tenant(owner)
}

// ownerOfTenant is the inverse mapping for writes: the default class is
// stored as owner "" so default-tenant entries keep the historical frame.
func ownerOfTenant(tenant string) string {
	if tenant == qos.DefaultClass {
		return ""
	}
	return tenant
}

// handleCompile serves POST /compile.
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.serveCompile(w, r, false)
}

// handleRecompile serves POST /recompile.
func (s *Server) handleRecompile(w http.ResponseWriter, r *http.Request) {
	s.serveCompile(w, r, true)
}

func (s *Server) serveCompile(w http.ResponseWriter, r *http.Request, recompile bool) {
	endpoint := "compile"
	if recompile {
		endpoint = "recompile"
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, endpoint, http.StatusMethodNotAllowed, fmt.Errorf("service: %s requires POST", endpoint))
		return
	}
	start := time.Now()
	p, err := s.parse(r, w, recompile)
	if err != nil {
		s.writeError(w, endpoint, http.StatusBadRequest, err)
		return
	}
	raw, state, err := s.serve(p, func() (json.RawMessage, error) {
		return s.buildArtifact(p)
	})
	if err != nil {
		switch {
		case errors.Is(err, ErrOverloaded):
			// The overloaded queue is the tenant's own class queue; the
			// Retry-After hint is the class's too.
			w.Header().Set("Retry-After", strconv.Itoa(int((p.class.RetryAfter+time.Second-1)/time.Second)))
			s.metrics.observeFailure(endpoint, p.tenant, true)
			writeJSON(w, http.StatusTooManyRequests, ErrorBody{Error: err.Error()})
		case errors.Is(err, ErrDraining):
			s.writeErrorClass(w, endpoint, p.tenant, http.StatusServiceUnavailable, err)
		default:
			var ce compileError
			if errors.As(err, &ce) {
				s.writeErrorClass(w, endpoint, p.tenant, http.StatusUnprocessableEntity, err)
			} else {
				s.writeErrorClass(w, endpoint, p.tenant, http.StatusInternalServerError, err)
			}
		}
		return
	}
	s.metrics.observeSuccess(endpoint, p.tenant, state, time.Since(start))
	writeJSON(w, http.StatusOK, Response{Key: p.key, Cache: state, Result: raw})
}

// serve resolves a request to its artifact: the in-memory cache, then the
// persistent store, then — inside the singleflight slot — the cluster peer
// layer (a non-owner forwards to the key's owner), and finally a coalesced
// local compile through the admission-controlled worker pool.
func (s *Server) serve(p *parsedRequest, build func() (json.RawMessage, error)) (json.RawMessage, string, error) {
	key := p.key
	if v, ok := s.cache.Get(key); ok {
		return v, CacheHit, nil
	}
	// An artifact evicted from memory — or compiled by a previous process —
	// is a disk read, not a pipeline invocation.
	if v, ok := s.storeGetArtifact(key); ok {
		s.cache.Add(key, p.tenant, v)
		return v, CacheStore, nil
	}
	lateHit := false
	peerHit := false
	raw, err, leader := s.flight.Do(key, func() (json.RawMessage, error) {
		// A compile of this key may have finished between the outer cache
		// probe and winning the flight slot; don't compile again.
		if v, ok := s.cache.Get(key); ok {
			lateHit = true
			return v, nil
		}
		// Inside the flight, so a herd of misses makes one forward, and a
		// forwarded request (owner role) never forwards onward. The peer hop
		// is network wait, not compute — it deliberately does not occupy a
		// worker-pool slot.
		if peers := s.peers(); peers != nil && !p.forwarded {
			if v, ok := peers.Resolve(PeerContext{Key: key, Tenant: p.tenant, Query: p.query, Body: p.body, Recompile: p.recompile}); ok {
				peerHit = true
				s.cache.Add(key, p.tenant, v)
				s.storePutArtifact(key, p.tenant, v)
				return v, nil
			}
		}
		type result struct {
			raw json.RawMessage
			err error
		}
		done := make(chan result, 1)
		if err := s.pool.TrySubmit(p.tenant, func() {
			if s.compileHook != nil {
				s.compileHook(key)
			}
			raw, err := build()
			done <- result{raw, err}
		}); err != nil {
			return nil, err
		}
		out := <-done
		if out.err == nil {
			s.cache.Add(key, p.tenant, out.raw)
			s.storePutArtifact(key, p.tenant, out.raw)
		}
		return out.raw, out.err
	})
	state := CacheMiss
	switch {
	case lateHit:
		state = CacheHit
	case peerHit:
		state = CachePeer
	case !leader:
		state = CacheCoalesced
	}
	return raw, state, err
}

// buildArtifact runs the pipeline for a parsed request and marshals the
// Result. This is the unit of work the cache, the singleflight group and
// the worker pool all guard.
func (s *Server) buildArtifact(p *parsedRequest) (json.RawMessage, error) {
	var cp *core.CompiledProgram
	var err error
	if p.faults == nil || p.faults.Empty() {
		cp, err = s.compileHealthy(p)
	} else {
		cp, err = s.compileMasked(p)
	}
	if err != nil {
		return nil, compileError{err}
	}
	res, err := buildResult(cp, p.doc.PEs, p.topoName, p.schedName, p.mask)
	if err != nil {
		return nil, compileError{err}
	}
	raw, err := json.Marshal(res)
	if err != nil {
		return nil, err
	}
	return raw, nil
}

// buildResult renders a compiled program to the wire shape, predicting each
// phase's communication time on its schedule and the total iteration time
// including reconfiguration.
func buildResult(cp *core.CompiledProgram, pes int, topoName, schedName string, mask *FaultMask) (*Result, error) {
	res := &Result{
		Program:          cp.Program.Name,
		PEs:              pes,
		Topology:         topoName,
		Scheduler:        schedName,
		Faults:           mask,
		MaxDegree:        cp.MaxDegree(),
		Reconfigurations: cp.Reconfigurations(),
	}
	// One RunCompiled per phase covers both the per-phase prediction and the
	// single-iteration program time: ProgramTime(1, rc) is exactly
	// sum(rc.Cost(degree) + comm) whether or not the program is one phase.
	total := 0
	for i := range cp.Phases {
		ph := &cp.Phases[i]
		out, err := sim.RunCompiled(ph.Schedule, ph.Phase.Messages)
		if err != nil {
			return nil, fmt.Errorf("predicting phase %q: %w", ph.Phase.Name, err)
		}
		total += core.DefaultReconfigCost.Cost(ph.Degree()) + out.Time
		configs := make([][]Pair, len(ph.Schedule.Configs))
		for k, c := range ph.Schedule.Configs {
			configs[k] = make([]Pair, len(c))
			for j, q := range c {
				configs[k][j] = Pair{int(q.Src), int(q.Dst)}
			}
		}
		res.Phases = append(res.Phases, PhaseResult{
			Name:           ph.Phase.Name,
			Dynamic:        ph.Phase.Dynamic,
			Fallback:       ph.UsedFallback,
			Algorithm:      ph.Schedule.Algorithm,
			Degree:         ph.Degree(),
			PredictedSlots: out.Time,
			Configs:        configs,
		})
	}
	res.TotalSlots = total
	return res, nil
}

// handleMetrics serves GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, ErrorBody{Error: "service: metrics requires GET"})
		return
	}
	var st StoreMetrics
	if s.store != nil {
		m := s.store.Metrics()
		st = StoreMetrics{
			Enabled:     true,
			Entries:     m.Entries,
			Bytes:       m.Bytes,
			Puts:        m.Puts,
			Hits:        m.Hits,
			Misses:      m.Misses,
			Quarantined: m.Quarantined,
		}
	}
	// Structural per-class state (queue depth, cache partition, store
	// usage) is gathered here; the metricsState merges in its per-class
	// counters and histograms.
	classes := make(map[string]ClassMetrics, len(s.qos.Names()))
	for _, c := range s.qos.Classes() {
		cm := ClassMetrics{Weight: c.Weight}
		cm.QueueDepth, cm.QueueCapacity = s.pool.ClassDepth(c.Name)
		cm.CacheEntries, cm.CacheCapacity, cm.CacheEvictions = s.cache.PartitionMetrics(c.Name)
		if s.store != nil {
			u := s.store.Usage(ownerOfTenant(c.Name))
			cm.StoreEntries, cm.StoreBytes, cm.StoreEvictions = u.Entries, u.Bytes, u.Evictions
		}
		classes[c.Name] = cm
	}
	snap := s.metrics.snapshot(s.topo.Name(), s.scheduler.Name(), s.cache.Metrics(), st, s.deltaBound, s.pool.Metrics(), classes)
	writeJSON(w, http.StatusOK, snap)
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) writeError(w http.ResponseWriter, endpoint string, status int, err error) {
	s.writeErrorClass(w, endpoint, qos.DefaultClass, status, err)
}

// writeErrorClass is writeError billed to a specific tenant class.
func (s *Server) writeErrorClass(w http.ResponseWriter, endpoint, tenant string, status int, err error) {
	s.metrics.observeFailure(endpoint, tenant, false)
	writeJSON(w, status, ErrorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

package service

import (
	"sync"
	"time"

	"repro/internal/stats"
)

// metricsState accumulates per-endpoint counters and latency histograms.
// One mutex guards everything: observation is a handful of integer ops, and
// the compile itself dominates any serving latency by orders of magnitude.
type metricsState struct {
	mu        sync.Mutex
	start     time.Time
	endpoints map[string]*endpointState
	classes   map[string]*classState

	// queueWait is the service-wide admission→worker-pickup histogram; the
	// per-class copies live in classState. This is the latency WFQ exists
	// to shape, so it is observed independently of endpoint latency (which
	// includes the compile itself).
	queueWait stats.Hist

	// Persistent-store and delta-recompiler counters, service-wide.
	warmLoaded     int
	evictionWrites uint64
	scheduleHits   uint64
	deltaPatched   uint64
	deltaFull      uint64

	// Session pipeline counters.
	sessions          uint64
	sessionPhases     uint64
	sessionKeep       uint64
	sessionPatch      uint64
	sessionRecompile  uint64
	sessionPipelined  uint64
	sessionHiddenSlot uint64
}

type endpointState struct {
	requests, hits, storeHits, peerHits, misses, coalesced, rejected, errors uint64

	latency stats.Hist
}

// classState accumulates one QoS class's serving counters: warm responses
// (in-memory, store, or peer), compiles (miss/coalesced), rejections, and
// the latency and queue-wait distributions.
type classState struct {
	requests, hits, misses, rejected, errors uint64

	latency   stats.Hist
	queueWait stats.Hist
}

func newMetricsState() *metricsState {
	return &metricsState{
		start:     time.Now(),
		endpoints: make(map[string]*endpointState),
		classes:   make(map[string]*classState),
	}
}

func (m *metricsState) endpoint(name string) *endpointState {
	ep, ok := m.endpoints[name]
	if !ok {
		ep = &endpointState{}
		m.endpoints[name] = ep
	}
	return ep
}

func (m *metricsState) class(name string) *classState {
	cs, ok := m.classes[name]
	if !ok {
		cs = &classState{}
		m.classes[name] = cs
	}
	return cs
}

// observeSuccess records a served request, its tenant class and cache
// state.
func (m *metricsState) observeSuccess(endpoint, class, cacheState string, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ep := m.endpoint(endpoint)
	ep.requests++
	switch cacheState {
	case CacheHit:
		ep.hits++
	case CacheStore:
		ep.storeHits++
	case CachePeer:
		ep.peerHits++
	case CacheMiss:
		ep.misses++
	case CacheCoalesced:
		ep.coalesced++
	}
	ep.latency.Observe(int(elapsed.Microseconds()))
	cs := m.class(class)
	cs.requests++
	switch cacheState {
	case CacheHit, CacheStore, CachePeer:
		cs.hits++
	default:
		cs.misses++
	}
	cs.latency.Observe(int(elapsed.Microseconds()))
}

// observeQueueWait records one job's admission→worker-pickup delay; it is
// the worker pool's dequeue hook.
func (m *metricsState) observeQueueWait(class string, wait time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	us := int(wait.Microseconds())
	m.queueWait.Observe(us)
	m.class(class).queueWait.Observe(us)
}

// observeWarmBoot records how many artifacts warm boot preloaded.
func (m *metricsState) observeWarmBoot(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.warmLoaded = n
}

// observeEvictionWrite counts an LRU eviction written through to the store.
func (m *metricsState) observeEvictionWrite() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evictionWrites++
}

// observeDelta records the outcome of one phase of delta recompilation:
// served verbatim from a stored schedule, incrementally patched, or fallen
// back to a full compile.
func (m *metricsState) observeDelta(scheduleHit, patched bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch {
	case scheduleHit:
		m.scheduleHits++
	case patched:
		m.deltaPatched++
	default:
		m.deltaFull++
	}
}

// observeSession records one completed session stream: its decision mix,
// how many compiles overlapped the previous phase's write, and how many
// reconfiguration slots the overlap accounting hid.
func (m *metricsState) observeSession(decisions map[string]int, pipelined, hidden int, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ep := m.endpoint("session")
	ep.requests++
	ep.misses++
	ep.latency.Observe(int(elapsed.Microseconds()))
	m.sessions++
	for d, n := range decisions {
		m.sessionPhases += uint64(n)
		switch d {
		case "keep":
			m.sessionKeep += uint64(n)
		case "patch":
			m.sessionPatch += uint64(n)
		case "recompile":
			m.sessionRecompile += uint64(n)
		}
	}
	m.sessionPipelined += uint64(pipelined)
	m.sessionHiddenSlot += uint64(hidden)
}

// observeFailure records a rejected (overload) or failed request against
// its tenant class.
func (m *metricsState) observeFailure(endpoint, class string, rejected bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ep := m.endpoint(endpoint)
	ep.requests++
	cs := m.class(class)
	cs.requests++
	if rejected {
		ep.rejected++
		cs.rejected++
	} else {
		ep.errors++
		cs.errors++
	}
}

// snapshot assembles the /metrics document. classes carries the per-class
// structural state (queue depth, cache partition, store usage) the serving
// layer gathered; snapshot merges in the per-class counters and histograms
// it accumulated itself.
func (m *metricsState) snapshot(topo, sched string, cache CacheMetrics, st StoreMetrics, deltaBound float64, queue QueueMetrics, classes map[string]ClassMetrics) MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	st.WarmLoaded = m.warmLoaded
	st.EvictionWrites = m.evictionWrites
	queue.WaitUs = m.queueWait.Snapshot()
	for name, cm := range classes {
		if cs, ok := m.classes[name]; ok {
			cm.Requests = cs.requests
			cm.Hits = cs.hits
			cm.Misses = cs.misses
			cm.Rejected = cs.rejected
			cm.Errors = cs.errors
			cm.LatencyUs = cs.latency.Snapshot()
			cm.QueueWaitUs = cs.queueWait.Snapshot()
		}
		classes[name] = cm
	}
	out := MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Topology:      topo,
		Scheduler:     sched,
		Cache:         cache,
		Store:         st,
		Delta: DeltaMetrics{
			Bound:        deltaBound,
			ScheduleHits: m.scheduleHits,
			Patched:      m.deltaPatched,
			Full:         m.deltaFull,
		},
		Session: SessionMetrics{
			Sessions:          m.sessions,
			PhasesServed:      m.sessionPhases,
			Keep:              m.sessionKeep,
			Patch:             m.sessionPatch,
			Recompile:         m.sessionRecompile,
			PipelinedCompiles: m.sessionPipelined,
			HiddenSlots:       m.sessionHiddenSlot,
		},
		Queue:     queue,
		QoS:       classes,
		Endpoints: make(map[string]EndpointMetrics, len(m.endpoints)),
	}
	for name, ep := range m.endpoints {
		out.Endpoints[name] = EndpointMetrics{
			Requests:  ep.requests,
			Hits:      ep.hits,
			StoreHits: ep.storeHits,
			PeerHits:  ep.peerHits,
			Misses:    ep.misses,
			Coalesced: ep.coalesced,
			Rejected:  ep.rejected,
			Errors:    ep.errors,
			LatencyUs: ep.latency.Snapshot(),
		}
	}
	return out
}

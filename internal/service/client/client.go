// Package client is the Go client of the compile service (internal/service
// + cmd/ccserved): typed Compile/Recompile/Metrics calls over HTTP, plus a
// Verify helper that reconstructs the returned schedules and proves them
// conflict-free with schedule.Result.Validate — the same check the
// repository's own pipelines run on every schedule they produce.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/qos"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/service"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Client talks to one compile daemon.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient is the transport; nil means a client with a 30s timeout.
	HTTPClient *http.Client
}

// Options select per-request compile parameters; zero values use the
// daemon's configured defaults.
type Options struct {
	// Topology overrides the daemon's default network, e.g. "torus-8x8".
	Topology string
	// Scheduler overrides the scheduling algorithm, e.g. "coloring".
	Scheduler string
	// Tenant names the QoS class the request is billed to; empty means the
	// daemon's default class. Sent as the X-Ccomm-Tenant header.
	Tenant string
}

// HTTPError is a non-2xx reply, carrying the decoded error body and the
// Retry-After hint of a 429.
type HTTPError struct {
	Status     int
	Msg        string
	RetryAfter time.Duration
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("service: HTTP %d: %s", e.Status, e.Msg)
}

// IsOverloaded reports whether the daemon rejected the request under
// admission control (HTTP 429).
func (e *HTTPError) IsOverloaded() bool { return e.Status == http.StatusTooManyRequests }

// defaultHTTPClient is shared by every Client without an explicit transport,
// so keep-alive connections are reused across calls.
var defaultHTTPClient = &http.Client{Timeout: 30 * time.Second}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return defaultHTTPClient
}

// Compile posts a trace document to /compile.
func (c *Client) Compile(ctx context.Context, doc trace.Document, opt Options) (*service.Response, *service.Result, error) {
	return c.post(ctx, "/compile", doc, opt, nil)
}

// Recompile posts a trace document to /recompile with a fault mask.
func (c *Client) Recompile(ctx context.Context, doc trace.Document, mask service.FaultMask, opt Options) (*service.Response, *service.Result, error) {
	return c.post(ctx, "/recompile", doc, opt, &mask)
}

func (c *Client) post(ctx context.Context, path string, doc trace.Document, opt Options, mask *service.FaultMask) (*service.Response, *service.Result, error) {
	// Compact encoding: trace.Write's indentation is for humans reading
	// files; on the wire it only inflates the body the server has to scan.
	var body bytes.Buffer
	if err := json.NewEncoder(&body).Encode(doc); err != nil {
		return nil, nil, fmt.Errorf("client: encode trace: %w", err)
	}
	q := url.Values{}
	if opt.Topology != "" {
		q.Set("topology", opt.Topology)
	}
	if opt.Scheduler != "" {
		q.Set("alg", opt.Scheduler)
	}
	if mask != nil {
		if len(mask.Links) > 0 {
			q.Set("links", intList(mask.Links))
		}
		if len(mask.Nodes) > 0 {
			q.Set("nodes", intList(mask.Nodes))
		}
	}
	u := strings.TrimSuffix(c.BaseURL, "/") + path
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, &body)
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if opt.Tenant != "" {
		req.Header.Set(qos.TenantHeader, opt.Tenant)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, decodeError(resp, data)
	}
	var envelope service.Response
	if err := json.Unmarshal(data, &envelope); err != nil {
		return nil, nil, fmt.Errorf("service: decoding response: %w", err)
	}
	var result service.Result
	if err := json.Unmarshal(envelope.Result, &result); err != nil {
		return nil, nil, fmt.Errorf("service: decoding result: %w", err)
	}
	return &envelope, &result, nil
}

// SessionResult is a fully drained /session stream.
type SessionResult struct {
	// Header is the "session" chunk the stream opened with.
	Header service.SessionChunk
	// Phases holds one "phase" chunk per phase, in phase order.
	Phases []service.SessionChunk
	// Trailer is the closing "done" chunk with the iteration totals.
	Trailer service.SessionChunk
}

// Decisions tallies the per-phase keep/patch/recompile choices.
func (r *SessionResult) Decisions() map[string]int {
	out := make(map[string]int, 3)
	for _, ph := range r.Phases {
		out[ph.Decision]++
	}
	return out
}

// Session posts a trace document to /session and drains the NDJSON stream.
// onPhase, when non-nil, is called for every phase chunk as it arrives —
// before the stream has finished — which is how a caller observes the
// pipelining rather than just its result.
func (c *Client) Session(ctx context.Context, doc trace.Document, opt Options, onPhase func(service.SessionChunk)) (*SessionResult, error) {
	var body bytes.Buffer
	if err := json.NewEncoder(&body).Encode(doc); err != nil {
		return nil, fmt.Errorf("client: encode trace: %w", err)
	}
	q := url.Values{}
	if opt.Topology != "" {
		q.Set("topology", opt.Topology)
	}
	if opt.Scheduler != "" {
		q.Set("alg", opt.Scheduler)
	}
	u := strings.TrimSuffix(c.BaseURL, "/") + "/session"
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, &body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if opt.Tenant != "" {
		req.Header.Set(qos.TenantHeader, opt.Tenant)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return nil, decodeError(resp, data)
	}
	out := &SessionResult{}
	dec := json.NewDecoder(resp.Body)
	sawDone := false
	for {
		var chunk service.SessionChunk
		if err := dec.Decode(&chunk); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("service: decoding session stream: %w", err)
		}
		switch chunk.Type {
		case service.SessionChunkHeader:
			out.Header = chunk
		case service.SessionChunkPhase:
			out.Phases = append(out.Phases, chunk)
			if onPhase != nil {
				onPhase(chunk)
			}
		case service.SessionChunkDone:
			out.Trailer = chunk
			sawDone = true
		case service.SessionChunkError:
			return nil, fmt.Errorf("service: session failed: %s", chunk.Error)
		default:
			return nil, fmt.Errorf("service: unknown session chunk type %q", chunk.Type)
		}
	}
	if !sawDone {
		return nil, fmt.Errorf("service: session stream ended without a done chunk")
	}
	if len(out.Phases) != len(doc.Phases) {
		return nil, fmt.Errorf("service: session returned %d phases, trace has %d", len(out.Phases), len(doc.Phases))
	}
	return out, nil
}

// Cluster talks to a federation of compile daemons (internal/cluster):
// requests round-robin across the node list, and any reply that is the
// node's fault rather than the request's — a transport error, a 5xx from a
// draining or dying daemon, a 429 from a saturated one — retries against
// the next node. Because compilation is deterministic and keys are
// content-addressed, any node's answer is byte-identical, so failover
// needs no affinity or stickiness.
type Cluster struct {
	// Nodes are the member daemons' base URLs.
	Nodes []string
	// HTTPClient is the shared transport; nil means the package default.
	HTTPClient *http.Client

	next atomic.Uint32
}

// node builds the single-node client for index i.
func (c *Cluster) node(i int) *Client {
	return &Client{BaseURL: c.Nodes[i], HTTPClient: c.HTTPClient}
}

// retryable reports whether an error indicts the node rather than the
// request: transport failures, every 5xx (503 drain included), and 429
// overload — another replica may have capacity. A 4xx like 400/404/422 is
// the request's own problem and would fail identically everywhere.
func retryable(err error) bool {
	var he *HTTPError
	if errors.As(err, &he) {
		return he.Status >= 500 || he.Status == http.StatusTooManyRequests
	}
	return true // transport error: node unreachable
}

// Compile posts a trace document to the cluster, returning the reply and
// the node that served it. Nodes are tried in rotation order until one
// answers; only request-level errors (4xx) surface immediately.
func (c *Cluster) Compile(ctx context.Context, doc trace.Document, opt Options) (*service.Response, *service.Result, string, error) {
	var resp *service.Response
	var res *service.Result
	node, err := c.each(func(cl *Client) error {
		var e error
		resp, res, e = cl.Compile(ctx, doc, opt)
		return e
	})
	return resp, res, node, err
}

// CompileFrom is Compile with the rotation pinned: the attempt order
// starts at node i mod len(Nodes) instead of the shared round-robin
// counter. Drivers that pre-shard a request stream use it to make the
// request-to-node pairing deterministic (the shared counter is claimed in
// goroutine-scheduling order, which shuffles the pairing under
// concurrency); the retry-on-next-replica behavior is identical.
func (c *Cluster) CompileFrom(ctx context.Context, i int, doc trace.Document, opt Options) (*service.Response, *service.Result, string, error) {
	var resp *service.Response
	var res *service.Result
	node, err := c.eachFrom(i, func(cl *Client) error {
		var e error
		resp, res, e = cl.Compile(ctx, doc, opt)
		return e
	})
	return resp, res, node, err
}

// Recompile posts a trace document with a fault mask to the cluster.
func (c *Cluster) Recompile(ctx context.Context, doc trace.Document, mask service.FaultMask, opt Options) (*service.Response, *service.Result, string, error) {
	var resp *service.Response
	var res *service.Result
	node, err := c.each(func(cl *Client) error {
		var e error
		resp, res, e = cl.Recompile(ctx, doc, mask, opt)
		return e
	})
	return resp, res, node, err
}

// each runs fn against nodes in rotation order until it succeeds or every
// node has failed retryably. The returned node is the one that answered
// (on success) or the last one attempted (on failure, also named in the
// error so load drivers can attribute it).
func (c *Cluster) each(fn func(cl *Client) error) (string, error) {
	return c.eachFrom(int(c.next.Add(1)-1), fn)
}

func (c *Cluster) eachFrom(from int, fn func(cl *Client) error) (string, error) {
	if len(c.Nodes) == 0 {
		return "", fmt.Errorf("client: cluster has no nodes")
	}
	start := ((from % len(c.Nodes)) + len(c.Nodes)) % len(c.Nodes)
	var lastNode string
	var lastErr error
	for k := 0; k < len(c.Nodes); k++ {
		i := (start + k) % len(c.Nodes)
		err := fn(c.node(i))
		if err == nil {
			return c.Nodes[i], nil
		}
		lastNode, lastErr = c.Nodes[i], err
		if !retryable(err) {
			return lastNode, fmt.Errorf("%s: %w", lastNode, err)
		}
	}
	return lastNode, fmt.Errorf("client: all %d cluster nodes failed, last %s: %w", len(c.Nodes), lastNode, lastErr)
}

// Metrics fetches /metrics.
func (c *Client) Metrics(ctx context.Context) (*service.MetricsSnapshot, error) {
	u := strings.TrimSuffix(c.BaseURL, "/") + "/metrics"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp, data)
	}
	var snap service.MetricsSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("service: decoding metrics: %w", err)
	}
	return &snap, nil
}

func decodeError(resp *http.Response, data []byte) error {
	he := &HTTPError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(data))}
	var body service.ErrorBody
	if err := json.Unmarshal(data, &body); err == nil && body.Error != "" {
		he.Msg = body.Error
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			he.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return he
}

func intList(vs []int) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}

// VerifySession proves a session result correct against its trace. A
// "keep" phase reuses the previous phase's (possibly larger) circuit set,
// so it is checked like a fallback phase — the configs must be
// conflict-free among themselves and every request of the phase must hold
// a slot. Patch and recompile phases serve exactly the phase's pattern and
// get the full exact-multiset Validate.
func VerifySession(doc trace.Document, res *SessionResult) error {
	base, err := topology.Parse(res.Header.Topology)
	if err != nil {
		return fmt.Errorf("client: verify session: %w", err)
	}
	if len(res.Phases) != len(doc.Phases) {
		return fmt.Errorf("client: verify session: result has %d phases, trace has %d", len(res.Phases), len(doc.Phases))
	}
	for i, ph := range res.Phases {
		if ph.Result == nil {
			return fmt.Errorf("client: verify session phase %d: no result", i)
		}
		want := make(request.Set, 0, len(doc.Phases[i].Messages))
		for _, m := range doc.Phases[i].Messages {
			want = append(want, request.Request{Src: network.NodeID(m.Src), Dst: network.NodeID(m.Dst)})
		}
		want = want.Dedup()
		configs := make([]request.Set, len(ph.Result.Configs))
		slot := make(map[request.Request]int)
		own := make(request.Set, 0, len(want))
		for k, c := range ph.Result.Configs {
			configs[k] = make(request.Set, len(c))
			for j, pair := range c {
				q := request.Request{Src: network.NodeID(pair[0]), Dst: network.NodeID(pair[1])}
				configs[k][j] = q
				slot[q] = k
				own = append(own, q)
			}
		}
		rebuilt := &schedule.Result{
			Algorithm: ph.Result.Algorithm,
			Topology:  base,
			Configs:   configs,
			Slot:      slot,
		}
		if ph.Decision == "keep" || ph.Result.Fallback {
			// Conflict-freedom over the kept circuits, coverage for the
			// phase's own pattern.
			if err := rebuilt.Validate(own); err != nil {
				return fmt.Errorf("client: verify session phase %q: %w", ph.Result.Name, err)
			}
			for _, q := range want {
				if _, ok := slot[q]; !ok {
					return fmt.Errorf("client: verify session phase %q: kept schedule has no slot for %v", ph.Result.Name, q)
				}
			}
			continue
		}
		if err := rebuilt.Validate(want); err != nil {
			return fmt.Errorf("client: verify session phase %q: %w", ph.Result.Name, err)
		}
	}
	return nil
}

// Verify proves a compile result correct against the trace that produced
// it: it rebuilds the topology named in the result (applying the echoed
// fault mask for recompile results), reconstructs every non-fallback
// phase's schedule.Result, and runs Validate — every request scheduled
// exactly once, no conflicting circuits in any slot. Fallback phases are
// checked for coverage instead: every request of the phase must hold a slot
// in the predetermined configuration set.
func Verify(doc trace.Document, res *service.Result) error {
	base, err := topology.Parse(res.Topology)
	if err != nil {
		return fmt.Errorf("client: verify: %w", err)
	}
	var topo network.Topology = base
	if res.Faults != nil && !res.Faults.Empty() {
		set := fault.NewSet()
		for _, l := range res.Faults.Links {
			set.FailLink(network.LinkID(l))
		}
		for _, n := range res.Faults.Nodes {
			set.FailNode(network.NodeID(n))
		}
		topo = fault.NewMasked(base, set)
		defer network.InvalidateRoutes(topo)
	}
	if len(res.Phases) != len(doc.Phases) {
		return fmt.Errorf("client: verify: result has %d phases, trace has %d", len(res.Phases), len(doc.Phases))
	}
	for i, ph := range res.Phases {
		want := make(request.Set, 0, len(doc.Phases[i].Messages))
		for _, m := range doc.Phases[i].Messages {
			want = append(want, request.Request{Src: network.NodeID(m.Src), Dst: network.NodeID(m.Dst)})
		}
		want = want.Dedup()
		configs := make([]request.Set, len(ph.Configs))
		slot := make(map[request.Request]int)
		for k, c := range ph.Configs {
			configs[k] = make(request.Set, len(c))
			for j, pair := range c {
				q := request.Request{Src: network.NodeID(pair[0]), Dst: network.NodeID(pair[1])}
				configs[k][j] = q
				slot[q] = k
			}
		}
		if ph.Fallback {
			// The predetermined configuration set covers every pair; the
			// phase's own requests must each hold a slot.
			for _, q := range want {
				if _, ok := slot[q]; !ok {
					return fmt.Errorf("client: verify phase %q: fallback set has no slot for %v", ph.Name, q)
				}
			}
			continue
		}
		rebuilt := &schedule.Result{
			Algorithm: ph.Algorithm,
			Topology:  topo,
			Configs:   configs,
			Slot:      slot,
		}
		if err := rebuilt.Validate(want); err != nil {
			return fmt.Errorf("client: verify phase %q: %w", ph.Name, err)
		}
	}
	return nil
}

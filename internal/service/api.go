package service

import (
	"encoding/json"

	"repro/internal/stats"
)

// This file defines the JSON wire contract of the compile service. The
// request body of /compile and /recompile is a plain internal/trace
// Document — the same file a user feeds ccrun — so `curl --data-binary
// @prog.json /compile` works with no wrapping. Everything else rides in
// query parameters: topology, alg, and (for /recompile) the fault mask.

// Pair is one scheduled connection, serialized compactly as [src, dst].
type Pair [2]int

// PhaseResult is the compiled artifact of one phase.
type PhaseResult struct {
	Name    string `json:"name"`
	Dynamic bool   `json:"dynamic,omitempty"`
	// Fallback marks a phase served by the predetermined AAPC configuration
	// set rather than a pattern-specific schedule.
	Fallback  bool   `json:"fallback,omitempty"`
	Algorithm string `json:"algorithm"`
	Degree    int    `json:"degree"`
	// PredictedSlots is the simulated communication time of the phase's
	// messages on the compiled schedule (excluding reconfiguration).
	PredictedSlots int `json:"predicted_slots"`
	// Configs is the connection schedule: Configs[k] lists the circuits
	// established during TDM slot k of every frame.
	Configs [][]Pair `json:"configs"`
}

// FaultMask names the failed resources a /recompile request masks out.
type FaultMask struct {
	Links []int `json:"links,omitempty"`
	Nodes []int `json:"nodes,omitempty"`
}

// Empty reports whether the mask fails nothing.
func (m FaultMask) Empty() bool { return len(m.Links) == 0 && len(m.Nodes) == 0 }

// Result is the full compiled communication plan for one trace document.
type Result struct {
	Program   string `json:"program"`
	PEs       int    `json:"pes"`
	Topology  string `json:"topology"`
	Scheduler string `json:"scheduler"`
	// Faults echoes the mask a /recompile applied; omitted for /compile.
	Faults    *FaultMask `json:"faults,omitempty"`
	MaxDegree int        `json:"max_degree"`
	// Reconfigurations is the number of network reconfigurations one
	// iteration of the program performs (one per phase boundary).
	Reconfigurations int `json:"reconfigurations"`
	// TotalSlots is the predicted communication time of one iteration
	// including register reload and barrier costs.
	TotalSlots int           `json:"total_slots"`
	Phases     []PhaseResult `json:"phases"`
}

// Response is the envelope of /compile and /recompile replies. Result is
// kept as raw JSON so a cache hit returns the byte-identical artifact the
// cold compile produced.
type Response struct {
	// Key is the content hash the artifact is cached under.
	Key string `json:"key"`
	// Cache reports how the request was served: "miss" (this request
	// compiled), "hit" (served from the in-memory cache), "store" (read
	// back from the persistent schedule store), or "coalesced" (shared an
	// in-flight compile of the same key).
	Cache  string          `json:"cache"`
	Result json.RawMessage `json:"result"`
}

// Cache states reported in Response.Cache. CacheUnchanged appears only in
// /session phase chunks: the phase's message list is identical to the
// previous phase's, so the running schedule was kept without resolving a
// recompile candidate at all. CachePeer marks an artifact resolved by
// forwarding the request to the key's cluster owner instead of compiling
// locally (internal/cluster).
const (
	CacheMiss      = "miss"
	CacheHit       = "hit"
	CacheStore     = "store"
	CacheCoalesced = "coalesced"
	CacheUnchanged = "unchanged"
	CachePeer      = "peer"
)

// SessionChunk is one line of the /session NDJSON stream. The server
// writes a "session" header, one "phase" chunk per phase — in order, each
// flushed as soon as its compile(i) finished, while compile(i+1) is already
// running — and a "done" trailer. A mid-stream failure ends the stream with
// an "error" chunk (the HTTP status is already 200 by then).
type SessionChunk struct {
	Type string `json:"type"`

	// Header fields ("session").
	Key       string `json:"key,omitempty"`
	Program   string `json:"program,omitempty"`
	PEs       int    `json:"pes,omitempty"`
	Topology  string `json:"topology,omitempty"`
	Scheduler string `json:"scheduler,omitempty"`
	Phases    int    `json:"phases,omitempty"`

	// Phase fields ("phase"). Decision is the keep/patch/recompile choice;
	// Cache reports how the recompile candidate was resolved ("hit" for a
	// stored schedule reused verbatim, "patched" for a nearest-base delta,
	// "miss" for a full compile). Stall/Hidden/SerializedStall are the
	// overlap accounting of the phase's reconfiguration in slots.
	Index           int          `json:"index,omitempty"`
	Decision        string       `json:"decision,omitempty"`
	Cache           string       `json:"cache,omitempty"`
	Stall           int          `json:"stall,omitempty"`
	Hidden          int          `json:"hidden,omitempty"`
	SerializedStall int          `json:"serialized_stall,omitempty"`
	Result          *PhaseResult `json:"result,omitempty"`

	// Trailer fields ("done"). TotalSlots is the overlap-aware iteration
	// time of the served plan; SerializedSlots the same plan with
	// serialized register loading; PipelinedCompiles counts phases whose
	// compile began before the previous phase's chunk was flushed.
	TotalSlots        int            `json:"total_slots,omitempty"`
	SerializedSlots   int            `json:"serialized_slots,omitempty"`
	BaselineSlots     int            `json:"baseline_slots,omitempty"`
	Reconfigurations  int            `json:"reconfigurations,omitempty"`
	PipelinedCompiles int            `json:"pipelined_compiles,omitempty"`
	Decisions         map[string]int `json:"decisions,omitempty"`

	// Error field ("error").
	Error string `json:"error,omitempty"`
}

// SessionChunk.Type values.
const (
	SessionChunkHeader = "session"
	SessionChunkPhase  = "phase"
	SessionChunkDone   = "done"
	SessionChunkError  = "error"
)

// CachePatched is the per-phase cache state of a /session phase resolved by
// patching the nearest stored base (the other states reuse the Response
// constants).
const CachePatched = "patched"

// ErrorBody is the JSON shape of every non-2xx reply.
type ErrorBody struct {
	Error string `json:"error"`
}

// EndpointMetrics is the per-endpoint counter block of /metrics.
type EndpointMetrics struct {
	Requests uint64 `json:"requests"`
	// Hits counts in-memory (LRU) cache hits; StoreHits counts requests
	// served by reading the persistent schedule store — separated so an
	// operator can tell warm memory from warm disk.
	Hits      uint64 `json:"hits"`
	StoreHits uint64 `json:"store_hits"`
	// PeerHits counts requests resolved by forwarding to the key's cluster
	// owner rather than compiling locally; zero outside cluster mode.
	PeerHits  uint64 `json:"peer_hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Rejected  uint64 `json:"rejected"`
	Errors    uint64 `json:"errors"`
	// LatencyUs is the end-to-end handler latency distribution in
	// microseconds, successful requests only.
	LatencyUs stats.HistSnapshot `json:"latency_us"`
}

// CacheMetrics reports the schedule cache's state.
type CacheMetrics struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// StoreMetrics reports the persistent schedule store's state; all-zero
// (with Enabled false) when the daemon runs without -store-dir.
type StoreMetrics struct {
	Enabled     bool   `json:"enabled"`
	Entries     int    `json:"entries"`
	Bytes       int64  `json:"bytes"`
	Puts        uint64 `json:"puts"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Quarantined uint64 `json:"quarantined"`
	// WarmLoaded is how many stored artifacts the daemon preloaded into
	// the LRU at boot.
	WarmLoaded int `json:"warm_loaded"`
	// EvictionWrites counts LRU evictions written through to the store.
	EvictionWrites uint64 `json:"eviction_writes"`
}

// DeltaMetrics reports the incremental recompiler's activity.
type DeltaMetrics struct {
	// Bound is the configured degree-quality gate.
	Bound float64 `json:"bound"`
	// ScheduleHits counts phases served verbatim from a stored schedule.
	ScheduleHits uint64 `json:"schedule_hits"`
	// Patched counts phases served by an accepted incremental patch;
	// Full counts phases where delta fell back to a from-scratch compile.
	Patched uint64 `json:"patched"`
	Full    uint64 `json:"full"`
}

// SessionMetrics reports the multi-phase /session pipeline's activity.
type SessionMetrics struct {
	// Sessions counts completed session streams; PhasesServed the phase
	// chunks they delivered.
	Sessions     uint64 `json:"sessions"`
	PhasesServed uint64 `json:"phases_served"`
	// Keep/Patch/Recompile count the per-boundary decisions.
	Keep      uint64 `json:"keep"`
	Patch     uint64 `json:"patch"`
	Recompile uint64 `json:"recompile"`
	// PipelinedCompiles counts phase compiles that began before the
	// previous phase's chunk had been written to the client — the direct
	// evidence that compile(i+1) overlaps serve(i).
	PipelinedCompiles uint64 `json:"pipelined_compiles"`
	// HiddenSlots accumulates reconfiguration slots hidden under
	// communication across all served phases.
	HiddenSlots uint64 `json:"hidden_slots"`
}

// QueueMetrics reports the worker pool's state.
type QueueMetrics struct {
	Workers  int   `json:"workers"`
	Capacity int   `json:"capacity"`
	Depth    int   `json:"depth"`
	InFlight int64 `json:"in_flight"`
	// WaitUs is the admission→worker-pickup delay distribution in
	// microseconds across all classes — the queue delay the weighted fair
	// scheduler shapes (per-class copies live in ClassMetrics).
	WaitUs stats.HistSnapshot `json:"wait_us"`
}

// ClassMetrics is one QoS class's block in /metrics: its scheduling
// weight, serving counters, queue state and wait distribution, and its
// cache/store partition usage. Hits count responses served warm (memory,
// store, or peer); Misses count pipeline compiles (including coalesced
// followers).
type ClassMetrics struct {
	Weight   int    `json:"weight"`
	Requests uint64 `json:"requests"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Rejected uint64 `json:"rejected"`
	Errors   uint64 `json:"errors"`

	QueueDepth    int                `json:"queue_depth"`
	QueueCapacity int                `json:"queue_capacity"`
	QueueWaitUs   stats.HistSnapshot `json:"queue_wait_us"`
	LatencyUs     stats.HistSnapshot `json:"latency_us"`

	CacheEntries   int    `json:"cache_entries"`
	CacheCapacity  int    `json:"cache_capacity"`
	CacheEvictions uint64 `json:"cache_evictions"`
	// Store usage of the class's partition; StoreEvictions counts entries
	// removed by the class's own quota GC (never another class's).
	StoreEntries   int    `json:"store_entries"`
	StoreBytes     int64  `json:"store_bytes"`
	StoreEvictions uint64 `json:"store_evictions"`
}

// MetricsSnapshot is the /metrics document.
type MetricsSnapshot struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	Topology      string         `json:"topology"`
	Scheduler     string         `json:"scheduler"`
	Cache         CacheMetrics   `json:"cache"`
	Store         StoreMetrics   `json:"store"`
	Delta         DeltaMetrics   `json:"delta"`
	Session       SessionMetrics `json:"session"`
	Queue         QueueMetrics   `json:"queue"`
	// QoS maps each admission class to its serving, queue and quota state.
	QoS       map[string]ClassMetrics    `json:"qos"`
	Endpoints map[string]EndpointMetrics `json:"endpoints"`
}

package service

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/optics"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/store"
	"repro/internal/switchprog"
)

// This file is the service's persistence and incremental-recompilation
// layer: the glue between the in-memory LRU, the on-disk schedule store
// (internal/store) and the delta recompiler (internal/delta).
//
//   - whole-program JSON artifacts are written through to the store under
//     their program key, read back on LRU misses ("store" cache state) and
//     preloaded into the LRU at boot, so a restarted daemon serves
//     byte-identical hits with zero pipeline invocations;
//   - per-phase schedules are written under store.BaseKey as delta base
//     material; /compile reuses an exact base verbatim or patches the
//     nearest one, and /recompile rebases a healthy base onto the fault
//     mask instead of running fault.Recompile from scratch — keeping the
//     same switch-program lowering and light-trace verification.

// maxBaseCandidates bounds the per-topology candidate list of the
// nearest-base index. Diffing a target against every candidate is linear in
// pattern size, so the list stays small; the exact-key path does not go
// through it and is unbounded.
const maxBaseCandidates = 32

// maxMaskedViews bounds the masked-view cache: a real fault persists across
// many recompile requests, so the daemon keeps the handful of fault masks
// it is actively serving (with their warm route caches) instead of building
// a cold view per request. Evicted views release their route-cache entry,
// so the process-wide cache cannot churn without bound.
const maxMaskedViews = 8

// maskedViewCache caches fault-masked topology views keyed by topology name
// plus the canonical fault-set string.
type maskedViewCache struct {
	mu sync.Mutex
	m  map[string]*fault.Masked
}

// view returns the shared masked view for (topoName, faults), building and
// caching it on first use. Views are read-only after construction, so
// concurrent requests with the same mask share one view and one route-cache
// table.
func (c *maskedViewCache) view(topoName string, topo network.Topology, faults *fault.Set) *fault.Masked {
	key := topoName + "|" + faults.String()
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.m[key]; ok {
		return m
	}
	if c.m == nil {
		c.m = make(map[string]*fault.Masked, maxMaskedViews)
	}
	for len(c.m) >= maxMaskedViews { // rare: more live masks than the cap
		for k, victim := range c.m {
			network.InvalidateRoutes(victim)
			delete(c.m, k)
			break
		}
	}
	m := fault.NewMasked(topo, faults)
	c.m[key] = m
	return m
}

type baseCandidate struct {
	key  string
	reqs request.Set
	// res caches the decoded schedule so the delta path patches from memory
	// instead of re-reading, re-decoding and re-validating the store entry
	// on every request. nil until first decoded (warm boot registers
	// patterns only); bounded by maxBaseCandidates like everything else in
	// the index. Cached results are shared read-only.
	res *schedule.Result
	// checked records whether res passed the exact-multiset validation the
	// exact-key path demands; nearest-base material is cached unchecked and
	// validated once if an exact hit ever needs it.
	checked bool
}

// baseIndex is the small in-memory candidate index over the store's base
// schedules: per topology, the most recently saved patterns with their
// store keys and decoded schedules, so nearest-base selection never scans
// the disk and steady-state patching never touches it at all.
type baseIndex struct {
	mu   sync.Mutex
	topo map[string][]baseCandidate
}

func newBaseIndex() *baseIndex { return &baseIndex{topo: make(map[string][]baseCandidate)} }

func (b *baseIndex) add(topoName, key string, reqs request.Set, res *schedule.Result) {
	b.mu.Lock()
	defer b.mu.Unlock()
	list := b.topo[topoName]
	for i := range list {
		if list[i].key == key {
			list[i].reqs = reqs
			if res != nil {
				list[i].res, list[i].checked = res, true
			}
			return
		}
	}
	list = append(list, baseCandidate{key: key, reqs: reqs, res: res, checked: res != nil})
	if len(list) > maxBaseCandidates {
		list = list[len(list)-maxBaseCandidates:]
	}
	b.topo[topoName] = list
}

// cached returns the decoded schedule for a key, if the index holds one,
// and whether it has passed exact-multiset validation.
func (b *baseIndex) cached(topoName, key string) (*schedule.Result, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, c := range b.topo[topoName] {
		if c.key == key {
			return c.res, c.checked
		}
	}
	return nil, false
}

// fill attaches a freshly decoded schedule to an already registered key; a
// key no longer in the index (trimmed since) is ignored.
func (b *baseIndex) fill(topoName, key string, res *schedule.Result, checked bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	list := b.topo[topoName]
	for i := range list {
		if list[i].key == key {
			list[i].res = res
			list[i].checked = list[i].checked || checked
			return
		}
	}
}

// nearest returns the store key of the candidate whose pattern has the
// smallest multiset diff against target (earliest-saved wins ties, so the
// choice is deterministic), skipping exclude. A base farther than half the
// target's size is no base at all — patching it would rewrite most of the
// schedule — so none is returned.
func (b *baseIndex) nearest(topoName string, target request.Set, exclude string) (string, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	bestKey, bestSize := "", -1
	for _, c := range b.topo[topoName] {
		if c.key == exclude {
			continue
		}
		if d := delta.Compute(c.reqs, target).Size(); bestSize < 0 || d < bestSize {
			bestKey, bestSize = c.key, d
		}
	}
	if bestSize < 0 || bestSize*2 > len(target) {
		return "", false
	}
	return bestKey, true
}

// storeGetArtifact reads a whole-program artifact back from the store.
func (s *Server) storeGetArtifact(key string) (json.RawMessage, bool) {
	raw, _, ok := s.storeGetArtifactOwned(key)
	return raw, ok
}

// storeGetArtifactOwned is storeGetArtifact plus the entry's owner tag
// ("" is the default tenant).
func (s *Server) storeGetArtifactOwned(key string) (json.RawMessage, string, bool) {
	if s.store == nil {
		return nil, "", false
	}
	payload, owner, ok := s.store.GetOwned(store.KindArtifact, key)
	if !ok {
		return nil, "", false
	}
	return json.RawMessage(payload), owner, true
}

// storePutArtifact writes a freshly compiled artifact through to the
// store, billed to the tenant, then enforces the tenant's store quota —
// evicting only the tenant's own oldest entries when it runs over.
// Persistence is best-effort: a full disk degrades the daemon to
// memory-only caching, it never fails a compile that already succeeded.
func (s *Server) storePutArtifact(key, tenant string, raw json.RawMessage) {
	if s.store == nil {
		return
	}
	owner := ownerOfTenant(tenant)
	if s.store.PutOwned(store.KindArtifact, key, raw, owner) == nil {
		s.enforceStoreQuota(tenant, owner)
	}
}

// enforceStoreQuota applies one tenant's configured store bounds.
func (s *Server) enforceStoreQuota(tenant, owner string) {
	c := s.qos.ClassOf(tenant)
	if c.StoreEntries > 0 || c.StoreBytes > 0 {
		_, _ = s.store.QuotaGC(owner, c.StoreEntries, c.StoreBytes)
	}
}

// writeEvicted is the LRU's eviction callback: an artifact falling out of
// memory is written through to the store if it is not already there —
// billed to the evicting partition's tenant — so it stays one disk read
// away. This is the safety net behind the compile-time write-through — it
// only pays a disk write when that write failed or the entry was GCed
// since.
func (s *Server) writeEvicted(key, tenant string, val json.RawMessage) {
	if s.store == nil || s.store.Has(store.KindArtifact, key) {
		return
	}
	owner := ownerOfTenant(tenant)
	if s.store.PutOwned(store.KindArtifact, key, val, owner) == nil {
		s.metrics.observeEvictionWrite()
		s.enforceStoreQuota(tenant, owner)
	}
}

// warmBoot preloads the store into memory: the newest artifacts fill the
// LRU (so a restarted daemon answers previously compiled programs as plain
// cache hits), and every stored base schedule registers in the nearest-base
// index. Corrupt entries quarantine inside Get and are simply skipped —
// warm boot never fails.
func (s *Server) warmBoot(cacheEntries int) {
	if s.store == nil {
		return
	}
	arts := s.store.Entries(store.KindArtifact)
	if len(arts) > cacheEntries {
		arts = arts[len(arts)-cacheEntries:]
	}
	loaded := 0
	for _, info := range arts {
		if payload, owner, ok := s.store.GetOwned(store.KindArtifact, info.Key); ok {
			s.cache.Add(info.Key, s.tenantOfOwner(owner), json.RawMessage(payload))
			loaded++
		}
	}
	s.metrics.observeWarmBoot(loaded)
	for _, info := range s.store.Entries(store.KindSchedule) {
		payload, ok := s.store.Get(store.KindSchedule, info.Key)
		if !ok {
			continue
		}
		dec, err := store.DecodeResult(payload)
		if err != nil {
			continue
		}
		s.bases.add(dec.Topology, info.Key, dec.Requests(), nil)
	}
}

// loadBase fetches a stored base schedule bound to topo, preferring the
// index's in-memory decoded copy and falling back to a store read. When
// reqs is non-nil the decoded schedule must serve exactly that multiset —
// the guard against codec drift and key collisions (already-cached
// schedules passed that guard when they were cached, or were produced by
// this process). Any failure is a miss, never an error: the caller falls
// back to compiling.
func (s *Server) loadBase(key string, topo network.Topology, reqs request.Set) *schedule.Result {
	if res, checked := s.bases.cached(topo.Name(), key); res != nil {
		if reqs == nil || checked {
			return res
		}
		// Cached off the nearest-base path, now needed for an exact hit:
		// run the multiset guard it skipped, once.
		if res.Validate(reqs) != nil {
			return nil
		}
		s.bases.fill(topo.Name(), key, res, true)
		return res
	}
	payload, ok := s.store.Get(store.KindSchedule, key)
	if !ok {
		return nil
	}
	dec, err := store.DecodeResult(payload)
	if err != nil {
		return nil
	}
	res, err := dec.Result(topo)
	if err != nil {
		return nil
	}
	if reqs != nil && res.Validate(reqs) != nil {
		return nil
	}
	s.bases.fill(topo.Name(), key, res, reqs != nil)
	return res
}

// saveBase persists a phase's schedule as delta base material and registers
// it — pattern and decoded schedule both — in the candidate index.
// Best-effort, like storePutArtifact.
func (s *Server) saveBase(key, topoName string, res *schedule.Result, reqs request.Set) {
	if s.store == nil {
		return
	}
	if s.store.Put(store.KindSchedule, key, store.EncodeResult(res)) == nil {
		s.bases.add(topoName, key, reqs, res)
	}
}

// compileHealthy compiles a program on the healthy topology. Without a
// store it is exactly core.Compiler.Compile; with one, each static phase is
// resolved through the store — exact stored schedule reused verbatim,
// nearest stored base patched by the delta recompiler (full compile when
// the patch misses the quality bound) — and written back as future base
// material. Dynamic phases take the AAPC fallback either way.
func (s *Server) compileHealthy(p *parsedRequest) (*core.CompiledProgram, error) {
	if s.store == nil {
		return core.Compiler{Topology: p.topo, Scheduler: p.scheduler}.Compile(p.prog)
	}
	out := &core.CompiledProgram{Program: p.prog}
	for _, ph := range p.prog.Phases {
		if ph.Dynamic || len(ph.Messages) == 0 {
			one, err := core.Compiler{Topology: p.topo, Scheduler: p.scheduler}.Compile(
				core.Program{Name: p.prog.Name, Phases: []core.Phase{ph}})
			if err != nil {
				return nil, err
			}
			out.Phases = append(out.Phases, one.Phases[0])
			continue
		}
		res, err := s.schedulePhase(p, ph.Requests())
		if err != nil {
			return nil, fmt.Errorf("phase %q: %w", ph.Name, err)
		}
		sp, err := switchprog.Compile(res)
		if err != nil {
			return nil, fmt.Errorf("phase %q: %w", ph.Name, err)
		}
		out.Phases = append(out.Phases, core.CompiledPhase{Phase: ph, Schedule: res, Program: sp})
	}
	return out, nil
}

// schedulePhase resolves one static phase's schedule through the store.
func (s *Server) schedulePhase(p *parsedRequest, reqs request.Set) (*schedule.Result, error) {
	res, _, err := s.resolvePhase(p, reqs)
	return res, err
}

// resolvePhase resolves one static phase's schedule, reporting how: "hit"
// (stored schedule of exactly this pattern reused verbatim), "patched"
// (nearest stored base patched by the delta recompiler), or "miss" (full
// compile — also the only path without a store). This is /compile's
// per-phase store resolution and /session's recompile-candidate source.
func (s *Server) resolvePhase(p *parsedRequest, reqs request.Set) (*schedule.Result, string, error) {
	if s.store == nil {
		res, err := p.scheduler.Schedule(p.topo, reqs)
		if err != nil {
			return nil, "", err
		}
		return res, CacheMiss, nil
	}
	key := store.BaseKey(reqs, p.topoName, p.schedName)
	if res := s.loadBase(key, p.topo, reqs); res != nil {
		s.metrics.observeDelta(true, false)
		return res, CacheHit, nil
	}
	var base *schedule.Result
	if candKey, ok := s.bases.nearest(p.topoName, reqs, key); ok {
		base = s.loadBase(candKey, p.topo, nil)
	}
	res, st, err := delta.Recompile(p.topo, base, reqs, delta.Options{Bound: s.deltaBound, Scheduler: p.scheduler})
	if err != nil {
		return nil, "", err
	}
	s.metrics.observeDelta(false, st.Patched)
	s.saveBase(key, p.topoName, res, reqs)
	if st.Patched {
		return res, CachePatched, nil
	}
	return res, CacheMiss, nil
}

// compileMasked compiles a program against a fault-masked topology. Static
// phases prefer the delta path — rebase a stored healthy schedule onto the
// masked view — and fall back to fault.Recompile (scheduling on the masked
// view from scratch) when no usable base exists. Both paths end in
// switch-program lowering and light-trace verification that the degraded
// programs drive the surviving hardware correctly. Dynamic phases fall back
// to the predetermined AAPC configuration set recomputed on the masked
// topology. The masked view (and its route-cache table) is shared across
// requests carrying the same fault mask via the bounded masked-view cache,
// so a persistent failure is routed once, not once per request.
func (s *Server) compileMasked(p *parsedRequest) (*core.CompiledProgram, error) {
	masked := s.maskedViews.view(p.topoName, p.topo, p.faults)
	out := &core.CompiledProgram{Program: p.prog}
	for _, ph := range p.prog.Phases {
		if ph.Dynamic {
			one, err := core.Compiler{Topology: masked, Scheduler: p.scheduler}.Compile(
				core.Program{Name: p.prog.Name, Phases: []core.Phase{ph}})
			if err != nil {
				return nil, err
			}
			out.Phases = append(out.Phases, one.Phases[0])
			continue
		}
		reqs := ph.Requests()
		if res, sp, ok := s.deltaMasked(masked, p, reqs); ok {
			out.Phases = append(out.Phases, core.CompiledPhase{Phase: ph, Schedule: res, Program: sp})
			continue
		}
		res, sp, err := fault.Recompile(masked, reqs, p.scheduler)
		if err != nil {
			return nil, fmt.Errorf("phase %q: %w", ph.Name, err)
		}
		out.Phases = append(out.Phases, core.CompiledPhase{Phase: ph, Schedule: res, Program: sp})
	}
	return out, nil
}

// deltaMasked serves one static phase of a fault-masked compile through the
// incremental recompiler: the stored healthy schedule of the same pattern
// (or the nearest stored base) is rebased onto the masked view — surviving
// circuits keep their slots, broken ones detour — and the result is
// accepted only after the same switch-program lowering and light-trace
// verification fault.Recompile performs. Any miss or failure returns
// ok=false and the caller runs the full recovery path.
func (s *Server) deltaMasked(masked network.Topology, p *parsedRequest, reqs request.Set) (*schedule.Result, *switchprog.Program, bool) {
	if s.store == nil {
		return nil, nil, false
	}
	base := s.loadBase(store.BaseKey(reqs, p.topoName, p.schedName), p.topo, reqs)
	if base == nil {
		if candKey, ok := s.bases.nearest(p.topoName, reqs, ""); ok {
			base = s.loadBase(candKey, p.topo, nil)
		}
	}
	if base == nil {
		return nil, nil, false
	}
	res, st, err := delta.Recompile(masked, base, reqs, delta.Options{Bound: s.deltaBound, Scheduler: p.scheduler})
	if err != nil {
		return nil, nil, false
	}
	prog, err := switchprog.Compile(res)
	if err != nil {
		return nil, nil, false
	}
	if _, err := optics.NewTracer(prog).VerifySchedule(res.Slot); err != nil {
		return nil, nil, false
	}
	s.metrics.observeDelta(false, st.Patched)
	return res, prog, true
}

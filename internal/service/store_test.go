package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/store"
	"repro/internal/trace"
)

// traceBodyMsgs is traceBody with an explicit message list, for tests that
// drift a pattern request by request.
func traceBodyMsgs(t *testing.T, name string, msgs []trace.Message) []byte {
	t.Helper()
	doc := trace.Document{
		Name:   name,
		PEs:    16,
		Phases: []trace.Phase{{Name: "ring", Messages: msgs}},
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, doc); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func decodeResponse(t *testing.T, rec *httptest.ResponseRecorder) Response {
	t.Helper()
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp Response
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func getMetrics(t *testing.T, s *Server) MetricsSnapshot {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestWarmBootServesWithoutCompiling is the restart end-to-end: a daemon
// compiles a trace, dies, and a second daemon on the same store directory
// answers the same trace byte-identically with zero pipeline invocations —
// the warm boot preloaded the artifact into the LRU.
func TestWarmBootServesWithoutCompiling(t *testing.T) {
	dir := t.TempDir()
	body := traceBody(t, "warm-boot")

	s1 := newWhiteboxServer(t, Config{StoreDir: dir})
	first := decodeResponse(t, postTrace(s1, "/compile", body))
	if first.Cache != CacheMiss {
		t.Fatalf("cold compile reported %q", first.Cache)
	}
	s1.Close()

	s2 := newWhiteboxServer(t, Config{StoreDir: dir})
	var compiles atomic.Int64
	s2.compileHook = func(string) { compiles.Add(1) }

	snap := getMetrics(t, s2)
	if !snap.Store.Enabled || snap.Store.WarmLoaded < 1 {
		t.Fatalf("store metrics after warm boot = %+v", snap.Store)
	}
	second := decodeResponse(t, postTrace(s2, "/compile", body))
	if second.Cache != CacheHit {
		t.Fatalf("restarted daemon reported %q, want %q", second.Cache, CacheHit)
	}
	if second.Key != first.Key || !bytes.Equal(second.Result, first.Result) {
		t.Fatal("restarted daemon's artifact differs from the original compile")
	}
	if n := compiles.Load(); n != 0 {
		t.Fatalf("restart ran %d pipeline invocations, want 0", n)
	}
}

// TestStoreStateServesEvictedArtifact evicts an artifact from a one-entry
// LRU and proves the next request for it is a disk read — the "store" cache
// state, counted separately from LRU hits — not a recompile.
func TestStoreStateServesEvictedArtifact(t *testing.T) {
	s := newWhiteboxServer(t, Config{StoreDir: t.TempDir(), CacheEntries: 1})
	var compiles atomic.Int64
	s.compileHook = func(string) { compiles.Add(1) }

	bodyA := traceBody(t, "evict-a")
	first := decodeResponse(t, postTrace(s, "/compile", bodyA))
	decodeResponse(t, postTrace(s, "/compile", traceBody(t, "evict-b"))) // evicts A
	before := compiles.Load()

	again := decodeResponse(t, postTrace(s, "/compile", bodyA))
	if again.Cache != CacheStore {
		t.Fatalf("evicted artifact served as %q, want %q", again.Cache, CacheStore)
	}
	if !bytes.Equal(again.Result, first.Result) {
		t.Fatal("store read returned different bytes than the original compile")
	}
	if compiles.Load() != before {
		t.Fatal("store hit ran the pipeline")
	}
	ep := getMetrics(t, s).Endpoints["compile"]
	if ep.StoreHits != 1 || ep.Hits != 0 {
		t.Fatalf("endpoint hits/store_hits = %d/%d, want 0/1", ep.Hits, ep.StoreHits)
	}
}

// TestEvictionWriteThrough exercises the safety net: when the store lost an
// artifact (here: deleted out from under the daemon, as GC would), the LRU
// eviction callback writes it back so it stays one disk read away.
func TestEvictionWriteThrough(t *testing.T) {
	s := newWhiteboxServer(t, Config{StoreDir: t.TempDir(), CacheEntries: 1})

	bodyA := traceBody(t, "through-a")
	first := decodeResponse(t, postTrace(s, "/compile", bodyA))
	if err := s.store.Delete(store.KindArtifact, first.Key); err != nil {
		t.Fatal(err)
	}

	decodeResponse(t, postTrace(s, "/compile", traceBody(t, "through-b"))) // evicts A
	if !s.store.Has(store.KindArtifact, first.Key) {
		t.Fatal("evicted artifact was not written through to the store")
	}
	if snap := getMetrics(t, s); snap.Store.EvictionWrites != 1 {
		t.Fatalf("eviction_writes = %d, want 1", snap.Store.EvictionWrites)
	}
	again := decodeResponse(t, postTrace(s, "/compile", bodyA))
	if again.Cache != CacheStore || !bytes.Equal(again.Result, first.Result) {
		t.Fatalf("written-through artifact served as %q", again.Cache)
	}
}

// TestExactScheduleReuse compiles two programs that differ only in name:
// their program keys differ (the artifact echoes the name) but the phase
// pattern is identical, so the second compile must reuse the stored phase
// schedule verbatim instead of scheduling again.
func TestExactScheduleReuse(t *testing.T) {
	s := newWhiteboxServer(t, Config{StoreDir: t.TempDir()})
	msgs := []trace.Message{{Src: 0, Dst: 5, Flits: 2}, {Src: 5, Dst: 10, Flits: 2}, {Src: 10, Dst: 0, Flits: 2}}

	a := decodeResponse(t, postTrace(s, "/compile", traceBodyMsgs(t, "alpha", msgs)))
	b := decodeResponse(t, postTrace(s, "/compile", traceBodyMsgs(t, "beta", msgs)))
	if a.Key == b.Key || a.Cache != CacheMiss || b.Cache != CacheMiss {
		t.Fatalf("expected two distinct cold compiles, got %q/%q", a.Cache, b.Cache)
	}
	snap := getMetrics(t, s)
	if snap.Delta.ScheduleHits != 1 {
		t.Fatalf("schedule_hits = %d, want 1 (second program reuses the stored phase schedule)", snap.Delta.ScheduleHits)
	}
	// Identical phases must compile to identical configuration sets even
	// though the artifacts differ (they echo the program name).
	var ra, rb Result
	if err := json.Unmarshal(a.Result, &ra); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b.Result, &rb); err != nil {
		t.Fatal(err)
	}
	if ra.MaxDegree != rb.MaxDegree || len(ra.Phases) != len(rb.Phases) {
		t.Fatal("schedule reuse changed the compiled shape")
	}
}

// TestRecompileUsesDeltaPath compiles a trace healthy (seeding the base
// store), then recompiles it under a single-link fault mask and asserts the
// incremental path — patch of the stored healthy base onto the masked view
// — served it rather than a from-scratch fault.Recompile.
func TestRecompileUsesDeltaPath(t *testing.T) {
	s := newWhiteboxServer(t, Config{StoreDir: t.TempDir()})
	body := traceBody(t, "delta-mask")

	decodeResponse(t, postTrace(s, "/compile", body))
	rec := postTrace(s, "/recompile?links=3", body)
	resp := decodeResponse(t, rec)
	if resp.Cache != CacheMiss {
		t.Fatalf("masked recompile served as %q", resp.Cache)
	}
	var res Result
	if err := json.Unmarshal(resp.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Faults == nil || len(res.Faults.Links) != 1 {
		t.Fatalf("artifact does not echo the mask: %+v", res.Faults)
	}
	snap := getMetrics(t, s)
	if snap.Delta.Patched < 1 {
		t.Fatalf("delta metrics = %+v, want at least one accepted patch", snap.Delta)
	}
	if snap.Delta.Bound != s.deltaBound {
		t.Fatalf("reported bound %v != configured %v", snap.Delta.Bound, s.deltaBound)
	}
}

// TestDeltaDeterminismAcrossWorkers replays one drifting request sequence
// against two daemons that differ only in worker count (and store
// directory) and asserts every response — including the delta-patched ones
// — is byte-identical. The patch path must not depend on scheduling or
// parallelism of the serving process.
func TestDeltaDeterminismAcrossWorkers(t *testing.T) {
	ring := []trace.Message{
		{Src: 0, Dst: 1, Flits: 2}, {Src: 1, Dst: 2, Flits: 2},
		{Src: 2, Dst: 3, Flits: 2}, {Src: 3, Dst: 0, Flits: 2},
	}
	drift1 := append(append([]trace.Message(nil), ring...), trace.Message{Src: 4, Dst: 5, Flits: 2})
	drift2 := append(append([]trace.Message(nil), ring[:3]...), trace.Message{Src: 8, Dst: 9, Flits: 2})
	steps := [][]byte{
		traceBodyMsgs(t, "seq", ring),
		traceBodyMsgs(t, "seq", drift1),
		traceBodyMsgs(t, "seq", drift2),
	}

	s1 := newWhiteboxServer(t, Config{StoreDir: t.TempDir(), Workers: 1})
	s8 := newWhiteboxServer(t, Config{StoreDir: t.TempDir(), Workers: 8})
	for i, body := range steps {
		r1 := decodeResponse(t, postTrace(s1, "/compile", body))
		r8 := decodeResponse(t, postTrace(s8, "/compile", body))
		if r1.Key != r8.Key {
			t.Fatalf("step %d: program keys diverge", i)
		}
		if !bytes.Equal(r1.Result, r8.Result) {
			t.Fatalf("step %d: artifacts diverge across worker counts", i)
		}
	}
	for _, s := range []*Server{s1, s8} {
		if snap := getMetrics(t, s); snap.Delta.Patched < 1 {
			t.Fatalf("delta metrics = %+v, want the drifted steps patched", snap.Delta)
		}
	}
}

package service_test

import (
	"context"
	"net/http"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/schedule"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// ringAllReduceDoc is the canonical keep workload: the first `phases` rounds
// of a 64-rank ring all-reduce, every round the identical circuit set.
func ringAllReduceDoc(t *testing.T, phases int) trace.Document {
	t.Helper()
	coll, err := collective.RingAllReduce(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	prog := coll.Program(1)
	if phases > 0 && phases < len(prog.Phases) {
		prog.Phases = prog.Phases[:phases]
	}
	return trace.FromProgram(prog, 64)
}

// mixedDoc exercises all three decisions: a ring phase, the same ring with
// one circuit swapped (patchable), a disjoint shift (recompile), and the
// ring again (recompile — the shift's circuits share nothing with it).
func mixedDoc(t *testing.T) trace.Document {
	t.Helper()
	ring := func() []sim.Message {
		msgs := make([]sim.Message, 64)
		for i := 0; i < 64; i++ {
			msgs[i] = sim.Message{Src: i, Dst: (i + 1) % 64, Flits: 4}
		}
		return msgs
	}
	patched := ring()
	patched[0].Dst = 2 // 0->1 becomes 0->2
	shift := make([]sim.Message, 64)
	for i := 0; i < 64; i++ {
		shift[i] = sim.Message{Src: i, Dst: (i + 32) % 64, Flits: 4}
	}
	prog := core.Program{Name: "mixed", Phases: []core.Phase{
		{Name: "ring", Messages: ring()},
		{Name: "ring-patched", Messages: patched},
		{Name: "shift", Messages: shift},
		{Name: "ring-again", Messages: ring()},
	}}
	return trace.FromProgram(prog, 64)
}

func TestSessionRingAllReduceKeeps(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	doc := ringAllReduceDoc(t, 8)
	res, err := c.Session(context.Background(), doc, client.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Header.Program != "ring-all-reduce" || res.Header.Phases != 8 || res.Header.Topology != "torus-8x8" {
		t.Fatalf("header = %+v", res.Header)
	}
	if len(res.Phases) != 8 {
		t.Fatalf("got %d phase chunks, want 8", len(res.Phases))
	}
	if res.Phases[0].Decision != string(core.DecisionRecompile) {
		t.Fatalf("cold-start decision = %q, want recompile", res.Phases[0].Decision)
	}
	for _, ph := range res.Phases[1:] {
		if ph.Decision != string(core.DecisionKeep) {
			t.Fatalf("phase %d decision = %q, want keep (identical pattern)", ph.Index, ph.Decision)
		}
		if ph.Stall != 0 || ph.SerializedStall != 0 {
			t.Fatalf("keep phase %d charged stall %d/%d, want 0", ph.Index, ph.Stall, ph.SerializedStall)
		}
	}
	tr := res.Trailer
	if tr.Decisions["keep"] != 7 || tr.Decisions["recompile"] != 1 {
		t.Fatalf("trailer decisions = %v", tr.Decisions)
	}
	if tr.TotalSlots > tr.SerializedSlots {
		t.Fatalf("overlap total %d > serialized %d", tr.TotalSlots, tr.SerializedSlots)
	}
	// Seven kept boundaries skip their register loads entirely, so the plan
	// must beat the paper's per-phase full-reconfiguration baseline.
	if tr.TotalSlots >= tr.BaselineSlots {
		t.Fatalf("session plan %d slots not better than independent-load baseline %d", tr.TotalSlots, tr.BaselineSlots)
	}
	if tr.PipelinedCompiles < 1 {
		t.Fatalf("no compile overlapped serving: pipelined = %d", tr.PipelinedCompiles)
	}
	if err := client.VerifySession(doc, res); err != nil {
		t.Fatalf("session schedules fail validation: %v", err)
	}

	snap, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s := snap.Session
	if s.Sessions != 1 || s.PhasesServed != 8 || s.Keep != 7 || s.Recompile != 1 {
		t.Fatalf("session metrics = %+v", s)
	}
	if s.PipelinedCompiles < 1 {
		t.Fatalf("metrics pipelined_compiles = %d, want >= 1", s.PipelinedCompiles)
	}
	if snap.Endpoints["session"].Requests != 1 {
		t.Fatalf("session endpoint metrics = %+v", snap.Endpoints["session"])
	}
}

func TestSessionMixedDecisions(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	doc := mixedDoc(t)
	res, err := c.Session(context.Background(), doc, client.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"recompile", "patch", "recompile", "recompile"}
	for i, ph := range res.Phases {
		if ph.Decision != want[i] {
			t.Fatalf("phase %d (%s) decision = %q, want %q", i, res.Phases[i].Result.Name, ph.Decision, want[i])
		}
	}
	// Every boundary's overlap stall is bounded by its serialized stall, and
	// the hidden slots account for exactly the difference.
	for i, ph := range res.Phases {
		if ph.Stall > ph.SerializedStall {
			t.Fatalf("phase %d overlap stall %d > serialized %d", i, ph.Stall, ph.SerializedStall)
		}
		if ph.Hidden != ph.SerializedStall-ph.Stall {
			t.Fatalf("phase %d hidden %d != serialized %d - stall %d", i, ph.Hidden, ph.SerializedStall, ph.Stall)
		}
	}
	if err := client.VerifySession(doc, res); err != nil {
		t.Fatalf("session schedules fail validation: %v", err)
	}
}

// TestSessionMatchesPlanOverlap is the differential test of the acceptance
// criterion: a storeless daemon's /session stream must make byte-identical
// decisions and serve byte-identical schedules to the in-process
// core.PlanOverlap on the same canonicalized program.
func TestSessionMatchesPlanOverlap(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	for _, doc := range []trace.Document{mixedDoc(t), ringAllReduceDoc(t, 6)} {
		res, err := c.Session(context.Background(), doc, client.Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := doc.Program()
		if err != nil {
			t.Fatal(err)
		}
		for i := range prog.Phases {
			msgs := prog.Phases[i].Messages
			sort.Slice(msgs, func(a, b int) bool {
				x, y := msgs[a], msgs[b]
				if x.Src != y.Src {
					return x.Src < y.Src
				}
				if x.Dst != y.Dst {
					return x.Dst < y.Dst
				}
				if x.Start != y.Start {
					return x.Start < y.Start
				}
				return x.Flits < y.Flits
			})
		}
		cp, err := core.Compiler{Topology: topology.NewTorus(8, 8), Scheduler: schedule.Combined{}}.Compile(prog)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := cp.PlanOverlap(core.DefaultReconfigCost)
		if err != nil {
			t.Fatal(err)
		}
		for i, ph := range res.Phases {
			pp := plan.Phases[i]
			if ph.Decision != string(pp.Decision) {
				t.Fatalf("%s phase %d: session decision %q, plan decision %q", doc.Name, i, ph.Decision, pp.Decision)
			}
			wantConfigs := make([][]service.Pair, len(pp.Schedule.Configs))
			for k, cfg := range pp.Schedule.Configs {
				wantConfigs[k] = make([]service.Pair, len(cfg))
				for j, q := range cfg {
					wantConfigs[k][j] = service.Pair{int(q.Src), int(q.Dst)}
				}
			}
			if !reflect.DeepEqual(ph.Result.Configs, wantConfigs) {
				t.Fatalf("%s phase %d: session schedule differs from PlanOverlap", doc.Name, i)
			}
		}
		if res.Trailer.TotalSlots != plan.Total || res.Trailer.SerializedSlots != plan.Serialized {
			t.Fatalf("%s: trailer (%d, %d) != plan (%d, %d)", doc.Name,
				res.Trailer.TotalSlots, res.Trailer.SerializedSlots, plan.Total, plan.Serialized)
		}
		if res.Trailer.BaselineSlots != plan.Baseline {
			t.Fatalf("%s: trailer baseline %d != plan baseline %d", doc.Name, res.Trailer.BaselineSlots, plan.Baseline)
		}
	}
}

// TestSessionDeterministicAcrossWorkers pins the decision stream against the
// pool size: all of a session's compile work runs sequentially in one
// producer, so worker count must not change a single chunk.
func TestSessionDeterministicAcrossWorkers(t *testing.T) {
	doc := mixedDoc(t)
	var base *client.SessionResult
	for _, workers := range []int{1, 4, 8} {
		_, c := newTestServer(t, service.Config{Workers: workers})
		res, err := c.Session(context.Background(), doc, client.Options{}, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// PipelinedCompiles is timing-dependent by design; everything else
		// must be bit-equal.
		res.Trailer.PipelinedCompiles = 0
		if base == nil {
			base = res
			continue
		}
		if !reflect.DeepEqual(res.Phases, base.Phases) {
			t.Fatalf("workers=%d: phase chunks differ from workers=1", workers)
		}
		if !reflect.DeepEqual(res.Trailer, base.Trailer) {
			t.Fatalf("workers=%d: trailer differs: %+v vs %+v", workers, res.Trailer, base.Trailer)
		}
	}
}

// TestSessionStoreBacked checks the store integration: after a /compile
// warmed the store, a session resolves its recompile candidates as exact
// stored bases ("hit") instead of fresh compiles.
func TestSessionStoreBacked(t *testing.T) {
	dir := t.TempDir()
	_, c := newTestServer(t, service.Config{StoreDir: dir})
	doc := mixedDoc(t)
	ctx := context.Background()
	if _, _, err := c.Compile(ctx, doc, client.Options{}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Session(ctx, doc, client.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases[0].Cache != service.CacheHit {
		t.Fatalf("phase 0 cache = %q, want hit from the warmed store", res.Phases[0].Cache)
	}
	// Decisions are unchanged by where the candidates came from.
	if res.Phases[0].Decision != "recompile" || res.Phases[1].Decision != "patch" {
		t.Fatalf("store-backed decisions = %q, %q", res.Phases[0].Decision, res.Phases[1].Decision)
	}
	if err := client.VerifySession(doc, res); err != nil {
		t.Fatal(err)
	}
}

func TestSessionBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{})
	resp, err := http.Get(ts.URL + "/session")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /session -> %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/session", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed /session body -> %d, want 400", resp.StatusCode)
	}
}

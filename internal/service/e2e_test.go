package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/topology"
	"repro/internal/trace"
)

// newTestServer starts an in-process daemon on the 8x8 torus.
func newTestServer(t *testing.T, cfg service.Config) (*httptest.Server, *client.Client) {
	t.Helper()
	if cfg.Topology == nil {
		cfg.Topology = topology.NewTorus(8, 8)
	}
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts, &client.Client{BaseURL: ts.URL, HTTPClient: ts.Client()}
}

// p3mDoc builds the P3M trace document the paper's Table 4 uses.
func p3mDoc(t *testing.T) trace.Document {
	t.Helper()
	phases, err := apps.P3M(32)
	if err != nil {
		t.Fatal(err)
	}
	prog := core.Program{Name: "p3m-32"}
	for _, ph := range phases {
		prog.Phases = append(prog.Phases, core.Phase{Name: ph.Name, Messages: ph.Messages})
	}
	return trace.FromProgram(prog, 64)
}

func TestCompileEndToEnd(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	doc := p3mDoc(t)
	ctx := context.Background()

	resp, res, err := c.Compile(ctx, doc, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cache != service.CacheMiss {
		t.Fatalf("first compile cache state = %q, want miss", resp.Cache)
	}
	if len(resp.Key) != 64 {
		t.Fatalf("key %q not a sha256 hex digest", resp.Key)
	}
	if res.Program != "p3m-32" || res.PEs != 64 || res.Topology != "torus-8x8" || res.Scheduler != "combined" {
		t.Fatalf("result header wrong: %+v", res)
	}
	if len(res.Phases) != len(doc.Phases) {
		t.Fatalf("result has %d phases, want %d", len(res.Phases), len(doc.Phases))
	}
	if res.MaxDegree < 1 || res.TotalSlots < 1 {
		t.Fatalf("degenerate result: max degree %d, total %d", res.MaxDegree, res.TotalSlots)
	}
	for _, ph := range res.Phases {
		if ph.Degree != len(ph.Configs) || ph.Degree < 1 || ph.PredictedSlots < 1 {
			t.Fatalf("degenerate phase %+v", ph)
		}
	}
	if err := client.Verify(doc, res); err != nil {
		t.Fatalf("compiled schedules fail validation: %v", err)
	}

	// The same document again: a cache hit with the byte-identical artifact.
	resp2, _, err := c.Compile(ctx, doc, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Cache != service.CacheHit {
		t.Fatalf("second compile cache state = %q, want hit", resp2.Cache)
	}
	if resp2.Key != resp.Key {
		t.Fatalf("key changed between identical requests: %s vs %s", resp.Key, resp2.Key)
	}
	if !bytes.Equal(resp.Result, resp2.Result) {
		t.Fatal("cache hit is not byte-identical to the cold compile")
	}
}

func TestCompileOrderInvariance(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	doc := p3mDoc(t)
	ctx := context.Background()
	resp, _, err := c.Compile(ctx, doc, client.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Shuffle every phase's message list; the canonical key must not move
	// and the permuted request must be served from cache.
	rng := rand.New(rand.NewSource(42))
	shuffled := doc
	shuffled.Phases = append([]trace.Phase(nil), doc.Phases...)
	for i := range shuffled.Phases {
		msgs := append([]trace.Message(nil), shuffled.Phases[i].Messages...)
		rng.Shuffle(len(msgs), func(a, b int) { msgs[a], msgs[b] = msgs[b], msgs[a] })
		shuffled.Phases[i].Messages = msgs
	}
	resp2, _, err := c.Compile(ctx, shuffled, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Key != resp.Key {
		t.Fatal("message order changed the cache key")
	}
	if resp2.Cache != service.CacheHit {
		t.Fatalf("permuted request state = %q, want hit", resp2.Cache)
	}
	if !bytes.Equal(resp.Result, resp2.Result) {
		t.Fatal("permuted request returned a different artifact")
	}
}

func TestCompileDynamicPhaseFallback(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	doc := p3mDoc(t)
	doc.Phases[0].Dynamic = true
	_, res, err := c.Compile(context.Background(), doc, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Phases[0].Fallback || res.Phases[0].Algorithm != "aapc-fallback" {
		t.Fatalf("dynamic phase not served by fallback: %+v", res.Phases[0])
	}
	if err := client.Verify(doc, res); err != nil {
		t.Fatalf("fallback coverage check failed: %v", err)
	}
}

func TestRecompileWithFaultMask(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	doc := p3mDoc(t)
	ctx := context.Background()
	if _, _, err := c.Compile(ctx, doc, client.Options{}); err != nil {
		t.Fatal(err)
	}

	mask := service.FaultMask{Links: []int{3, 17, 42}}
	resp, degraded, err := c.Recompile(ctx, doc, mask, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if degraded.Faults == nil || len(degraded.Faults.Links) != 3 {
		t.Fatalf("fault mask not echoed: %+v", degraded.Faults)
	}
	if err := client.Verify(doc, degraded); err != nil {
		t.Fatalf("degraded schedules fail validation: %v", err)
	}
	// The degraded artifact is cached under its own key.
	if resp.Cache != service.CacheMiss {
		t.Fatalf("first recompile state = %q, want miss", resp.Cache)
	}
	resp2, _, err := c.Recompile(ctx, doc, mask, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Cache != service.CacheHit || resp2.Key != resp.Key {
		t.Fatalf("repeat recompile state=%q key match=%v", resp2.Cache, resp2.Key == resp.Key)
	}

	// An empty mask routes through the healthy pipeline and shares its key.
	respEmpty, _, err := c.Recompile(ctx, doc, service.FaultMask{}, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if respEmpty.Cache != service.CacheHit {
		t.Fatalf("empty-mask recompile state = %q, want hit against the /compile entry", respEmpty.Cache)
	}
}

func TestRecompileDisconnected(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	doc := p3mDoc(t)
	// Failing a switch disconnects every request that starts or ends there:
	// the compile must fail with 422, not 500.
	_, _, err := c.Recompile(context.Background(), doc, service.FaultMask{Nodes: []int{0}}, client.Options{})
	he, ok := err.(*client.HTTPError)
	if !ok || he.Status != http.StatusUnprocessableEntity {
		t.Fatalf("disconnected recompile: got %v, want HTTP 422", err)
	}
}

func TestTopologyAndSchedulerOverride(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	doc := p3mDoc(t)
	_, res, err := c.Compile(context.Background(), doc, client.Options{Topology: "mesh-8x8", Scheduler: "coloring"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Topology != "mesh-8x8" || res.Scheduler != "coloring" {
		t.Fatalf("override ignored: %+v", res)
	}
	if err := client.Verify(doc, res); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, c := newTestServer(t, service.Config{})
	doc := p3mDoc(t)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, _, err := c.Compile(ctx, doc, client.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ep := snap.Endpoints["compile"]
	if ep.Requests != 3 || ep.Misses != 1 || ep.Hits != 2 {
		t.Fatalf("compile metrics = %+v, want 3 requests, 1 miss, 2 hits", ep)
	}
	if ep.LatencyUs.Count != 3 || ep.LatencyUs.Quantile(1) < 1 {
		t.Fatalf("latency histogram not recording: %+v", ep.LatencyUs)
	}
	if snap.Cache.Entries != 1 || snap.Cache.Hits < 2 {
		t.Fatalf("cache metrics = %+v", snap.Cache)
	}
	if snap.Queue.Workers < 1 || snap.Queue.Capacity < 1 {
		t.Fatalf("queue metrics = %+v", snap.Queue)
	}
	if snap.Topology != "torus-8x8" || snap.Scheduler != "combined" {
		t.Fatalf("metrics header = %+v", snap)
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{})
	post := func(path, body string) int {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var eb service.ErrorBody
		if resp.StatusCode != http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
				t.Fatalf("%s: non-2xx reply without JSON error body (decode err %v)", path, err)
			}
		}
		return resp.StatusCode
	}
	valid := `{"name":"x","pes":64,"phases":[{"name":"p","messages":[{"src":0,"dst":1,"flits":1}]}]}`

	if code := post("/compile", "{not json"); code != http.StatusBadRequest {
		t.Fatalf("malformed JSON -> %d, want 400", code)
	}
	if code := post("/compile", `{"name":"x","pes":16,"phases":[{"name":"p","messages":[{"src":0,"dst":1,"flits":1}]}]}`); code != http.StatusBadRequest {
		t.Fatalf("PE mismatch -> %d, want 400", code)
	}
	if code := post("/compile?topology=klein-8", valid); code != http.StatusBadRequest {
		t.Fatalf("bad topology -> %d, want 400", code)
	}
	if code := post("/compile?alg=quantum", valid); code != http.StatusBadRequest {
		t.Fatalf("bad scheduler -> %d, want 400", code)
	}
	if code := post("/recompile?links=9999", valid); code != http.StatusBadRequest {
		t.Fatalf("out-of-range link -> %d, want 400", code)
	}
	if code := post("/recompile?links=1,,2", valid); code != http.StatusBadRequest {
		t.Fatalf("malformed link list -> %d, want 400", code)
	}
	resp, err := http.Get(ts.URL + "/compile")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /compile -> %d, want 405", resp.StatusCode)
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz -> %d", hz.StatusCode)
	}
}

func TestPprofWiring(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{EnablePprof: true})
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index -> %d", resp.StatusCode)
	}
}

package service

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cliutil"
	"repro/internal/qos"
)

// defaultWorkers sizes the pool to the machine when Config.Workers is zero.
func defaultWorkers() int { return cliutil.Workers(0) }

// ErrOverloaded is returned by the pool when the submitting class's compile
// queue is full; the HTTP layer maps it to 429 + Retry-After. Rejecting at
// admission keeps the daemon's memory and latency bounded under overload
// instead of queueing without limit — and per-class caps mean one tenant's
// overload never consumes another tenant's queue space.
var ErrOverloaded = errors.New("service: compile queue full")

// ErrDraining is returned once the pool has begun shutting down; the HTTP
// layer maps it to 503.
var ErrDraining = errors.New("service: draining")

// workerPool runs compile jobs on a fixed set of goroutines fed by a
// weighted fair queue: each backlogged QoS class receives worker time
// proportional to its weight. Admission is non-blocking: TrySubmit either
// enqueues under the submitter's class or fails fast with ErrOverloaded.
type workerPool struct {
	q        *qos.WFQ
	wg       sync.WaitGroup
	workers  int
	inFlight atomic.Int64

	// onDequeue observes every job's class and queue wait at worker pickup
	// — the queue-delay signal WFQ exists to control.
	onDequeue func(class string, wait time.Duration)
}

func newWorkerPool(workers int, reg *qos.Registry, onDequeue func(string, time.Duration)) *workerPool {
	p := &workerPool{q: qos.NewWFQ(reg), workers: workers, onDequeue: onDequeue}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for {
				v, class, wait, ok := p.q.Dequeue()
				if !ok {
					return
				}
				if p.onDequeue != nil {
					p.onDequeue(class, wait)
				}
				p.inFlight.Add(1)
				v.(func())()
				p.inFlight.Add(-1)
			}
		}()
	}
	return p
}

// TrySubmit enqueues a job under a QoS class or fails immediately.
func (p *workerPool) TrySubmit(class string, job func()) error {
	switch err := p.q.Enqueue(class, job); {
	case err == nil:
		return nil
	case errors.Is(err, qos.ErrClosed):
		return ErrDraining
	default: // qos.ErrClassFull
		return ErrOverloaded
	}
}

// Close stops admission and waits for queued and running jobs to finish.
func (p *workerPool) Close() {
	p.q.Close()
	p.wg.Wait()
}

// ClassDepth reports one class's queued jobs and cap.
func (p *workerPool) ClassDepth(class string) (depth, capacity int) {
	return p.q.ClassDepth(class)
}

// Metrics snapshots the pool's state.
func (p *workerPool) Metrics() QueueMetrics {
	return QueueMetrics{
		Workers:  p.workers,
		Capacity: p.q.Capacity(),
		Depth:    p.q.Depth(),
		InFlight: p.inFlight.Load(),
	}
}

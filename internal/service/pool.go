package service

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/cliutil"
)

// defaultWorkers sizes the pool to the machine when Config.Workers is zero.
func defaultWorkers() int { return cliutil.Workers(0) }

// ErrOverloaded is returned by the pool when the compile queue is full; the
// HTTP layer maps it to 429 + Retry-After. Rejecting at admission keeps the
// daemon's memory and latency bounded under overload instead of queueing
// without limit.
var ErrOverloaded = errors.New("service: compile queue full")

// ErrDraining is returned once the pool has begun shutting down; the HTTP
// layer maps it to 503.
var ErrDraining = errors.New("service: draining")

// workerPool runs compile jobs on a fixed set of goroutines behind a
// bounded queue. Admission is non-blocking: TrySubmit either enqueues or
// fails fast with ErrOverloaded.
type workerPool struct {
	mu       sync.RWMutex
	jobs     chan func()
	closed   bool
	wg       sync.WaitGroup
	workers  int
	inFlight atomic.Int64
}

func newWorkerPool(workers, queueDepth int) *workerPool {
	p := &workerPool{jobs: make(chan func(), queueDepth), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				p.inFlight.Add(1)
				job()
				p.inFlight.Add(-1)
			}
		}()
	}
	return p
}

// TrySubmit enqueues a job or fails immediately.
func (p *workerPool) TrySubmit(job func()) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrDraining
	}
	select {
	case p.jobs <- job:
		return nil
	default:
		return ErrOverloaded
	}
}

// Close stops admission and waits for queued and running jobs to finish.
func (p *workerPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}

// Metrics snapshots the pool's state.
func (p *workerPool) Metrics() QueueMetrics {
	return QueueMetrics{
		Workers:  p.workers,
		Capacity: cap(p.jobs),
		Depth:    len(p.jobs),
		InFlight: p.inFlight.Load(),
	}
}

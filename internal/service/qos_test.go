package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/qos"
)

// postTraceTenant is postTrace with a tenant header, exercising the same
// admission path a real client takes through qos.TenantHeader.
func postTraceTenant(s *Server, path, tenant string, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(qos.TenantHeader, tenant)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// TestPerClassAdmission saturates one class's queue and proves admission
// control is per class: bronze overflows with its own Retry-After while a
// gold request still enters the (shared) worker pool, and the rejection is
// billed to bronze alone in the QoS metrics block.
func TestPerClassAdmission(t *testing.T) {
	s := newWhiteboxServer(t, Config{
		Workers: 1,
		QoS: []qos.Class{
			{Name: "gold", Weight: 8, QueueDepth: 8},
			{Name: "bronze", Weight: 1, QueueDepth: 1, RetryAfter: 7 * time.Second},
		},
	})

	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	var first atomic.Bool
	s.compileHook = func(string) {
		if first.CompareAndSwap(false, true) {
			entered <- struct{}{}
			<-release
		}
	}

	// A occupies the only worker.
	recA := make(chan *httptest.ResponseRecorder, 1)
	go func() { recA <- postTraceTenant(s, "/compile", "gold", traceBody(t, "qos-a")) }()
	<-entered

	// B fills bronze's only queue slot.
	recB := make(chan *httptest.ResponseRecorder, 1)
	go func() { recB <- postTraceTenant(s, "/compile", "bronze", traceBody(t, "qos-b")) }()
	waitFor(t, "bronze job to queue", func() bool { d, _ := s.pool.ClassDepth("bronze"); return d == 1 })

	// C overflows bronze: rejected with bronze's Retry-After.
	recC := postTraceTenant(s, "/compile", "bronze", traceBody(t, "qos-c"))
	if recC.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated bronze answered %d, want 429", recC.Code)
	}
	if ra := recC.Header().Get("Retry-After"); ra != "7" {
		t.Fatalf("bronze Retry-After = %q, want \"7\"", ra)
	}

	// D is gold: its queue has room, so it is admitted despite bronze
	// being full — the caps are per class, not global.
	recD := make(chan *httptest.ResponseRecorder, 1)
	go func() { recD <- postTraceTenant(s, "/compile", "gold", traceBody(t, "qos-d")) }()
	waitFor(t, "gold job to queue", func() bool { d, _ := s.pool.ClassDepth("gold"); return d == 1 })

	close(release)
	for _, ch := range []chan *httptest.ResponseRecorder{recA, recB, recD} {
		rec := <-ch
		if rec.Code != http.StatusOK {
			t.Fatalf("admitted request finished %d: %s", rec.Code, rec.Body.String())
		}
	}

	snap := metricsSnapshot(t, s)
	if got := snap.QoS["bronze"].Rejected; got != 1 {
		t.Fatalf("bronze rejected = %d, want 1", got)
	}
	if got := snap.QoS["gold"].Rejected; got != 0 {
		t.Fatalf("gold rejected = %d, want 0", got)
	}
}

// metricsSnapshot fetches and decodes /metrics.
func metricsSnapshot(t *testing.T, s *Server) *MetricsSnapshot {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics answered %d", rec.Code)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	return &snap
}

// TestCachePartitionIsolation floods one tenant's cache partition far past
// its capacity and proves the other tenant's entries survive: eviction
// happens only inside the flooding tenant's partition.
func TestCachePartitionIsolation(t *testing.T) {
	s := newWhiteboxServer(t, Config{
		QoS: []qos.Class{
			{Name: "gold", Weight: 4, CacheEntries: 4},
			{Name: "bronze", Weight: 1, CacheEntries: 2},
		},
	})

	// Bronze warms its two entries first (oldest in global LRU age).
	victims := [][]byte{traceBody(t, "victim-0"), traceBody(t, "victim-1")}
	for _, body := range victims {
		if rec := postTraceTenant(s, "/compile", "bronze", body); rec.Code != http.StatusOK {
			t.Fatalf("bronze warmup failed: %d", rec.Code)
		}
	}
	// Gold floods 12 distinct keys through a 4-entry partition.
	for i := 0; i < 12; i++ {
		body := traceBody(t, fmt.Sprintf("flood-%d", i))
		if rec := postTraceTenant(s, "/compile", "gold", body); rec.Code != http.StatusOK {
			t.Fatalf("gold flood failed: %d", rec.Code)
		}
	}
	// Bronze's entries are still cached: the flood evicted only gold keys.
	for i, body := range victims {
		rec := postTraceTenant(s, "/compile", "bronze", body)
		if !strings.Contains(rec.Body.String(), `"cache":"hit"`) {
			t.Fatalf("victim %d not cached after flood: %s", i, rec.Body.String())
		}
	}

	snap := metricsSnapshot(t, s)
	gold, bronze := snap.QoS["gold"], snap.QoS["bronze"]
	if gold.CacheEvictions != 8 {
		t.Fatalf("gold evictions = %d, want 8 (12 keys through 4 slots)", gold.CacheEvictions)
	}
	if bronze.CacheEvictions != 0 {
		t.Fatalf("bronze evictions = %d, want 0", bronze.CacheEvictions)
	}
	if bronze.CacheEntries != 2 || bronze.CacheCapacity != 2 {
		t.Fatalf("bronze partition %d/%d, want 2/2", bronze.CacheEntries, bronze.CacheCapacity)
	}
	if gold.CacheEntries != 4 || gold.CacheCapacity != 4 {
		t.Fatalf("gold partition %d/%d, want 4/4", gold.CacheEntries, gold.CacheCapacity)
	}
}

// TestQoSMetricsBlock drives traffic under two tenants (one of them an
// unknown name that must fold into the default class) and checks the
// per-class accounting in /metrics: requests, hits, weights, queue capacity
// and the queue-wait histogram.
func TestQoSMetricsBlock(t *testing.T) {
	s := newWhiteboxServer(t, Config{
		QoS: []qos.Class{{Name: "gold", Weight: 8, QueueDepth: 16}},
	})

	body := traceBody(t, "metrics-doc")
	if rec := postTraceTenant(s, "/compile", "gold", body); rec.Code != http.StatusOK {
		t.Fatalf("gold compile failed: %d", rec.Code)
	}
	if rec := postTraceTenant(s, "/compile", "gold", body); rec.Code != http.StatusOK {
		t.Fatalf("gold re-compile failed: %d", rec.Code)
	}
	// Unknown tenant: billed to the default class.
	if rec := postTraceTenant(s, "/compile", "stranger", traceBody(t, "stranger-doc")); rec.Code != http.StatusOK {
		t.Fatalf("stranger compile failed: %d", rec.Code)
	}

	snap := metricsSnapshot(t, s)
	gold, ok := snap.QoS["gold"]
	if !ok {
		t.Fatalf("metrics QoS block missing gold: %v", snap.QoS)
	}
	def, ok := snap.QoS[qos.DefaultClass]
	if !ok {
		t.Fatalf("metrics QoS block missing default class: %v", snap.QoS)
	}
	if gold.Requests != 2 || gold.Hits != 1 || gold.Misses != 1 {
		t.Fatalf("gold counters %+v, want 2 requests, 1 hit, 1 miss", gold)
	}
	if def.Requests != 1 || def.Misses != 1 {
		t.Fatalf("default counters %+v, want the stranger's 1 request, 1 miss", def)
	}
	if gold.Weight != 8 || gold.QueueCapacity != 16 {
		t.Fatalf("gold weight/capacity = %d/%d, want 8/16", gold.Weight, gold.QueueCapacity)
	}
	// Two gold submissions passed through the worker pool (the hit did
	// not), plus the stranger's: wait histogram counts pool pickups.
	if gold.QueueWaitUs.Count != 1 || def.QueueWaitUs.Count != 1 {
		t.Fatalf("queue-wait counts gold=%d default=%d, want 1 and 1",
			gold.QueueWaitUs.Count, def.QueueWaitUs.Count)
	}
	if snap.Queue.WaitUs.Count != 2 {
		t.Fatalf("global queue-wait count = %d, want 2", snap.Queue.WaitUs.Count)
	}
}

// TestTenantStoreQuota bounds one tenant's store partition and floods it:
// the offender's oldest artifacts are evicted, the victim tenant's artifact
// survives, and evictions are attributed in /metrics.
func TestTenantStoreQuota(t *testing.T) {
	s := newWhiteboxServer(t, Config{
		StoreDir: t.TempDir(),
		QoS: []qos.Class{
			{Name: "gold", Weight: 4, StoreEntries: 3},
			{Name: "bronze", Weight: 1},
		},
	})

	victim := traceBody(t, "stored-victim")
	if rec := postTraceTenant(s, "/compile", "bronze", victim); rec.Code != http.StatusOK {
		t.Fatalf("bronze compile failed: %d", rec.Code)
	}
	for i := 0; i < 9; i++ {
		body := traceBody(t, fmt.Sprintf("stored-flood-%d", i))
		if rec := postTraceTenant(s, "/compile", "gold", body); rec.Code != http.StatusOK {
			t.Fatalf("gold flood failed: %d", rec.Code)
		}
	}

	snap := metricsSnapshot(t, s)
	gold, bronze := snap.QoS["gold"], snap.QoS["bronze"]
	if gold.StoreEntries != 3 {
		t.Fatalf("gold store entries = %d, want quota of 3", gold.StoreEntries)
	}
	if gold.StoreEvictions != 6 {
		t.Fatalf("gold store evictions = %d, want 6 (9 artifacts through 3 slots)", gold.StoreEvictions)
	}
	if bronze.StoreEntries != 1 || bronze.StoreEvictions != 0 {
		t.Fatalf("bronze store %d entries %d evictions, want 1 and 0",
			bronze.StoreEntries, bronze.StoreEvictions)
	}
}

package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/topology"
	"repro/internal/trace"
)

// traceBody builds a small valid trace document body for the 4x4 torus. The
// name seeds the content hash, so distinct names force distinct cache keys.
func traceBody(t *testing.T, name string) []byte {
	t.Helper()
	doc := trace.Document{
		Name: name,
		PEs:  16,
		Phases: []trace.Phase{{
			Name: "ring",
			Messages: []trace.Message{
				{Src: 0, Dst: 1, Flits: 2},
				{Src: 1, Dst: 2, Flits: 2},
				{Src: 2, Dst: 3, Flits: 2},
				{Src: 3, Dst: 0, Flits: 2},
			},
		}},
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, doc); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newWhiteboxServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Topology == nil {
		cfg.Topology = topology.NewTorus(4, 4)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func postTrace(s *Server, path string, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalescingExactlyOneCompile hammers one key from many goroutines and
// proves the singleflight group collapses the herd to a single pipeline
// invocation: the leader's compile is held open until every other request
// has joined the flight, so no request can slip through to a second compile
// or a cache hit. Run under -race this also exercises the cache, flight
// group and pool for data races.
func TestCoalescingExactlyOneCompile(t *testing.T) {
	const herd = 16
	s := newWhiteboxServer(t, Config{Workers: 2, QueueDepth: herd})

	var compiles atomic.Int64
	release := make(chan struct{})
	entered := make(chan string, 1)
	s.compileHook = func(key string) {
		if compiles.Add(1) == 1 {
			entered <- key
			<-release
		}
	}

	body := traceBody(t, "herd")
	results := make(chan *httptest.ResponseRecorder, herd)
	var wg sync.WaitGroup

	// The leader: first request reaches the hook and blocks.
	wg.Add(1)
	go func() {
		defer wg.Done()
		results <- postTrace(s, "/compile", body)
	}()
	key := <-entered

	// The herd: they must all join the in-flight compile before we let the
	// leader finish.
	for i := 1; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- postTrace(s, "/compile", body)
		}()
	}
	waitFor(t, "herd to join the flight", func() bool {
		return s.flight.waitersFor(key) == herd-1
	})
	close(release)
	wg.Wait()
	close(results)

	var miss, coalesced int
	for rec := range results {
		if rec.Code != http.StatusOK {
			t.Fatalf("request failed: %d %s", rec.Code, rec.Body.String())
		}
		var resp Response
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		switch resp.Cache {
		case CacheMiss:
			miss++
		case CacheCoalesced:
			coalesced++
		default:
			t.Fatalf("unexpected cache state %q", resp.Cache)
		}
	}
	if got := compiles.Load(); got != 1 {
		t.Fatalf("%d requests ran %d compiles, want exactly 1", herd, got)
	}
	if miss != 1 || coalesced != herd-1 {
		t.Fatalf("states: %d miss, %d coalesced; want 1 and %d", miss, coalesced, herd-1)
	}
}

// TestManyKeysCompileOncePerKey drives a mixed concurrent load — several
// distinct patterns, several requests each — and asserts the invariant the
// cache and flight group jointly guarantee: one compile per unique key, and
// every response for a key carries the byte-identical artifact.
func TestManyKeysCompileOncePerKey(t *testing.T) {
	const keys, perKey = 8, 8
	s := newWhiteboxServer(t, Config{QueueDepth: keys * perKey})

	var mu sync.Mutex
	compiles := make(map[string]int)
	s.compileHook = func(key string) {
		mu.Lock()
		compiles[key]++
		mu.Unlock()
	}

	type reply struct {
		name string
		resp Response
	}
	replies := make(chan reply, keys*perKey)
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		body := traceBody(t, fmt.Sprintf("pattern-%d", k))
		name := fmt.Sprintf("pattern-%d", k)
		for r := 0; r < perKey; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rec := postTrace(s, "/compile", body)
				if rec.Code != http.StatusOK {
					t.Errorf("request failed: %d %s", rec.Code, rec.Body.String())
					return
				}
				var resp Response
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					t.Error(err)
					return
				}
				replies <- reply{name, resp}
			}()
		}
	}
	wg.Wait()
	close(replies)
	if t.Failed() {
		t.FailNow()
	}

	artifacts := make(map[string]string)
	for rp := range replies {
		if prev, ok := artifacts[rp.resp.Key]; ok {
			if prev != string(rp.resp.Result) {
				t.Fatalf("key %s served two different artifacts", rp.resp.Key)
			}
		} else {
			artifacts[rp.resp.Key] = string(rp.resp.Result)
		}
	}
	if len(artifacts) != keys {
		t.Fatalf("saw %d distinct keys, want %d", len(artifacts), keys)
	}
	for key, n := range compiles {
		if n != 1 {
			t.Fatalf("key %s compiled %d times, want 1", key, n)
		}
	}
	if len(compiles) != keys {
		t.Fatalf("%d keys compiled, want %d", len(compiles), keys)
	}
}

// TestOverloadReturns429 saturates a 1-worker, 1-slot daemon and asserts
// admission control answers 429 + Retry-After instead of queueing, and that
// the queued work still completes once the worker frees up.
func TestOverloadReturns429(t *testing.T) {
	s := newWhiteboxServer(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})

	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	s.compileHook = func(string) {
		entered <- struct{}{}
		<-release
	}

	// A occupies the only worker.
	recA := make(chan *httptest.ResponseRecorder, 1)
	go func() { recA <- postTrace(s, "/compile", traceBody(t, "job-a")) }()
	<-entered

	// B fills the only queue slot.
	recB := make(chan *httptest.ResponseRecorder, 1)
	go func() { recB <- postTrace(s, "/compile", traceBody(t, "job-b")) }()
	waitFor(t, "job B to queue", func() bool { return s.pool.Metrics().Depth == 1 })

	// C is over capacity: rejected at admission.
	recC := postTrace(s, "/compile", traceBody(t, "job-c"))
	if recC.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated daemon answered %d, want 429", recC.Code)
	}
	if ra := recC.Header().Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	var eb ErrorBody
	if err := json.Unmarshal(recC.Body.Bytes(), &eb); err != nil || eb.Error == "" {
		t.Fatalf("429 without JSON error body: %v %q", err, recC.Body.String())
	}

	// Release the worker: A and B (and B's hook) complete normally.
	close(release)
	for _, ch := range []chan *httptest.ResponseRecorder{recA, recB} {
		rec := <-ch
		if rec.Code != http.StatusOK {
			t.Fatalf("queued request finished %d: %s", rec.Code, rec.Body.String())
		}
	}
	snap := s.metrics.snapshot(s.topo.Name(), s.scheduler.Name(), s.cache.Metrics(), StoreMetrics{}, s.deltaBound, s.pool.Metrics(), nil)
	ep := snap.Endpoints["compile"]
	if ep.Rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", ep.Rejected)
	}
}

// TestDrainingReturns503 closes the pool and asserts new compiles are turned
// away as 503 while cached artifacts keep being served.
func TestDrainingReturns503(t *testing.T) {
	s := newWhiteboxServer(t, Config{})
	warm := traceBody(t, "warm")
	if rec := postTrace(s, "/compile", warm); rec.Code != http.StatusOK {
		t.Fatalf("warmup failed: %d", rec.Code)
	}
	s.Close()

	if rec := postTrace(s, "/compile", traceBody(t, "cold")); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining daemon answered %d to a cold compile, want 503", rec.Code)
	}
	// The cache needs no workers; hits survive the drain.
	rec := postTrace(s, "/compile", warm)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"cache":"hit"`) {
		t.Fatalf("cached artifact not served while draining: %d %s", rec.Code, rec.Body.String())
	}
}

// TestCacheEviction bounds the cache at 2 entries and walks 3 keys through
// it, checking the LRU order and the eviction counter.
func TestCacheEviction(t *testing.T) {
	s := newWhiteboxServer(t, Config{CacheEntries: 2})
	var compiles atomic.Int64
	s.compileHook = func(string) { compiles.Add(1) }

	a, b, c := traceBody(t, "a"), traceBody(t, "b"), traceBody(t, "c")
	for _, body := range [][]byte{a, b, c} { // c evicts a
		if rec := postTrace(s, "/compile", body); rec.Code != http.StatusOK {
			t.Fatalf("compile failed: %d", rec.Code)
		}
	}
	if rec := postTrace(s, "/compile", b); !strings.Contains(rec.Body.String(), `"cache":"hit"`) {
		t.Fatalf("b should still be cached: %s", rec.Body.String())
	}
	if rec := postTrace(s, "/compile", a); !strings.Contains(rec.Body.String(), `"cache":"miss"`) {
		t.Fatalf("a should have been evicted: %s", rec.Body.String())
	}
	m := s.cache.Metrics()
	if m.Entries != 2 || m.Evictions != 2 {
		t.Fatalf("cache metrics %+v, want 2 entries and 2 evictions (a then b)", m)
	}
	if got := compiles.Load(); got != 4 {
		t.Fatalf("%d compiles, want 4 (a, b, c, re-a)", got)
	}
}

package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/schedule"
)

// This file is the multi-phase /session serving path. A client posts a
// phase sequence (a plain trace.Document, like /compile) and the daemon
// streams one NDJSON chunk per phase: while the client is still reading
// phase i's chunk, the producer is already resolving phase i+1 — nearest-
// base store lookup plus the core keep/patch/recompile decision — so the
// compile of the next phase pipelines with the serving of the current one.
//
// The per-boundary state (the running schedule, its communication time, a
// live delta.Session holding the colored schedule) lives in the producer
// goroutine only; one session occupies exactly one worker-pool slot for
// its whole duration, so admission control applies to sessions the same
// way it applies to single compiles.

// sessionDeltaBound effectively disables delta's degree-quality gate for
// the patch *candidate*: the cost model arbitrates quality itself (a bad
// patch loses on simulated communication time), and keeping the candidate
// a pure patch keeps /session byte-identical to core.ChooseSchedule's
// stateless delta.Patch.
const sessionDeltaBound = 1e9

// handleSession serves POST /session.
func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	const endpoint = "session"
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, endpoint, http.StatusMethodNotAllowed, fmt.Errorf("service: %s requires POST", endpoint))
		return
	}
	start := time.Now()
	p, err := s.parse(r, w, false)
	if err != nil {
		s.writeError(w, endpoint, http.StatusBadRequest, err)
		return
	}

	// Lookahead-1 channel: the producer may finish compiling phase i+1
	// while phase i's chunk still sits unflushed — deeper lookahead would
	// only hold schedules alive without making the stream faster.
	ch := make(chan sessionMsg, 1)
	// flushed is the index of the last phase chunk written to the client;
	// the producer reads it to detect that it started a compile while the
	// consumer was still serving the previous phase.
	var flushed atomic.Int64
	flushed.Store(-1)

	if err := s.pool.TrySubmit(p.tenant, func() {
		defer close(ch)
		s.runSession(p, ch, &flushed)
	}); err != nil {
		switch {
		case errors.Is(err, ErrOverloaded):
			w.Header().Set("Retry-After", strconv.Itoa(int((p.class.RetryAfter+time.Second-1)/time.Second)))
			s.metrics.observeFailure(endpoint, p.tenant, true)
			writeJSON(w, http.StatusTooManyRequests, ErrorBody{Error: err.Error()})
		default:
			s.writeErrorClass(w, endpoint, p.tenant, http.StatusServiceUnavailable, err)
		}
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	writeChunk := func(c SessionChunk) {
		_ = enc.Encode(c)
		if flusher != nil {
			flusher.Flush()
		}
	}
	writeChunk(SessionChunk{
		Type:      SessionChunkHeader,
		Key:       p.key,
		Program:   p.prog.Name,
		PEs:       p.doc.PEs,
		Topology:  p.topoName,
		Scheduler: p.schedName,
		Phases:    len(p.prog.Phases),
	})
	failed := false
	var trailer *SessionChunk
	for c := range ch {
		if c.err != nil {
			writeChunk(SessionChunk{Type: SessionChunkError, Error: c.err.Error()})
			failed = true
			break
		}
		writeChunk(c.chunk)
		if c.chunk.Type == SessionChunkPhase {
			flushed.Store(int64(c.chunk.Index))
		} else if c.chunk.Type == SessionChunkDone {
			trailer = &c.chunk
		}
	}
	if failed {
		// Drain so the producer never blocks on a dead channel.
		for range ch {
		}
		s.metrics.observeFailure(endpoint, p.tenant, false)
		return
	}
	if trailer != nil {
		hidden := trailer.SerializedSlots - trailer.TotalSlots
		s.metrics.observeSession(trailer.Decisions, trailer.PipelinedCompiles, hidden, time.Since(start))
	}
}

// sessionMsg is what the producer hands the consumer: a chunk to write, or
// the error that ends the stream.
type sessionMsg struct {
	chunk SessionChunk
	err   error
}

// runSession is the producer: it walks the phase sequence, resolves each
// phase's recompile candidate through the store, runs the keep/patch/
// recompile decision against the running schedule, and emits one chunk per
// phase plus the trailer.
func (s *Server) runSession(p *parsedRequest, ch chan<- sessionMsg, flushed *atomic.Int64) {
	emit := func(c SessionChunk, err error) {
		ch <- sessionMsg{c, err}
	}
	rc := s.reconfig
	var prev *schedule.Result
	prevComm := 0
	// The live colored schedule producing patch candidates. It is
	// re-anchored whenever the decision did not serve its output (the
	// session structure then holds a schedule the network never loaded).
	var patchSess *delta.Session
	sessHolds := (*schedule.Result)(nil)
	decisions := make(map[string]int, 3)
	pipelined := 0
	totalSlots, serializedSlots, baselineSlots := 0, 0, 0
	for i, ph := range p.prog.Phases {
		if i > 0 && flushed.Load() < int64(i-1) {
			// The previous phase's chunk is not on the wire yet: this
			// compile overlaps serving it.
			pipelined++
		}
		var ev core.BoundaryEval
		var cacheState string
		if prev != nil && !ph.Dynamic && core.SameMessages(ph.Messages, p.prog.Phases[i-1].Messages) {
			// Unchanged phase: keep the running schedule outright, no
			// candidate resolution. This is the amortization an iterative
			// program buys from a session — N identical phases, one compile.
			ev = core.KeepUnchanged(prev, prevComm, rc)
			cacheState = CacheUnchanged
		} else {
			if s.compileHook != nil {
				s.compileHook(p.key)
			}
			scratch, state, err := s.resolveSessionPhase(p, ph)
			if err != nil {
				emit(SessionChunk{}, compileError{fmt.Errorf("phase %q: %w", ph.Name, err)})
				return
			}
			cacheState = state
			var patched *schedule.Result
			if prev != nil && !ph.Dynamic && core.PatchWorthwhile(prev, ph.Requests()) {
				if patchSess == nil || sessHolds != prev {
					patchSess, err = delta.NewSession(p.topo, prev, delta.Options{Bound: sessionDeltaBound, Scheduler: p.scheduler})
					if err != nil {
						patchSess = nil
					}
				}
				if patchSess != nil {
					if res, st, err := patchSess.Recompile(ph.Requests()); err == nil {
						sessHolds = res
						if st.Patched {
							patched = res
						}
					} else {
						patchSess = nil
					}
				}
			}
			ev, err = core.ChooseFrom(prev, prevComm, ph.Messages, scratch, patched, rc)
			if err != nil {
				emit(SessionChunk{}, compileError{fmt.Errorf("phase %q: %w", ph.Name, err)})
				return
			}
		}
		decisions[string(ev.Decision)]++
		totalSlots += ev.Stall + ev.Comm
		serializedSlots += ev.SerializedStall + ev.Comm
		baselineSlots += ev.Baseline
		configs := make([][]Pair, len(ev.Schedule.Configs))
		for k, c := range ev.Schedule.Configs {
			configs[k] = make([]Pair, len(c))
			for j, q := range c {
				configs[k][j] = Pair{int(q.Src), int(q.Dst)}
			}
		}
		emit(SessionChunk{
			Type:            SessionChunkPhase,
			Index:           i,
			Decision:        string(ev.Decision),
			Cache:           cacheState,
			Stall:           ev.Stall,
			Hidden:          ev.Hidden,
			SerializedStall: ev.SerializedStall,
			Result: &PhaseResult{
				Name:           ph.Name,
				Dynamic:        ph.Dynamic,
				Fallback:       ph.Dynamic,
				Algorithm:      ev.Schedule.Algorithm,
				Degree:         ev.Schedule.Degree(),
				PredictedSlots: ev.Comm,
				Configs:        configs,
			},
		}, nil)
		prev, prevComm = ev.Schedule, ev.Comm
	}
	emit(SessionChunk{
		Type:              SessionChunkDone,
		TotalSlots:        totalSlots,
		SerializedSlots:   serializedSlots,
		BaselineSlots:     baselineSlots,
		Reconfigurations:  len(p.prog.Phases),
		PipelinedCompiles: pipelined,
		Decisions:         decisions,
	}, nil)
}

// resolveSessionPhase produces the recompile candidate for one phase:
// dynamic phases take the AAPC fallback, static ones resolve through the
// store (exact stored schedule, nearest-base patch, full compile).
func (s *Server) resolveSessionPhase(p *parsedRequest, ph core.Phase) (*schedule.Result, string, error) {
	if ph.Dynamic {
		one, err := core.Compiler{Topology: p.topo, Scheduler: p.scheduler}.Compile(
			core.Program{Name: p.prog.Name, Phases: []core.Phase{ph}})
		if err != nil {
			return nil, "", err
		}
		return one.Phases[0].Schedule, CacheMiss, nil
	}
	return s.resolvePhase(p, ph.Requests())
}

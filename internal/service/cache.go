package service

import (
	"container/list"
	"encoding/json"
	"sync"
)

// lruCache is the content-addressed schedule cache: a bounded
// least-recently-used map from pattern key to the marshaled compile
// artifact. Values are immutable json.RawMessage blobs, so a hit hands out
// the exact bytes the cold compile produced and no copying is needed.
type lruCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64

	// onEvict, when set, receives every entry the cache evicts — the
	// serving layer uses it to write evicted artifacts through to the
	// persistent store so they stay one disk-read away. Called after the
	// cache lock is released (it does disk I/O and must not stall Get).
	onEvict func(key string, val json.RawMessage)
}

type cacheEntry struct {
	key string
	val json.RawMessage
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element, capacity)}
}

// Get returns the cached artifact and bumps its recency.
func (c *lruCache) Get(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Add inserts (or refreshes) an artifact, evicting the least recently used
// entries when over capacity.
func (c *lruCache) Add(key string, val json.RawMessage) {
	c.mu.Lock()
	var evicted []*cacheEntry
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
		for c.ll.Len() > c.cap {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			e := oldest.Value.(*cacheEntry)
			delete(c.items, e.key)
			c.evictions++
			evicted = append(evicted, e)
		}
	}
	onEvict := c.onEvict
	c.mu.Unlock()
	if onEvict != nil {
		for _, e := range evicted {
			onEvict(e.key, e.val)
		}
	}
}

// Keys lists every cached key, most recently used first. The cluster
// gossip layer enumerates it (together with the store) to build the
// anti-entropy digest of what this daemon can serve without compiling.
func (c *lruCache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).key)
	}
	return out
}

// Metrics snapshots the cache counters.
func (c *lruCache) Metrics() CacheMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheMetrics{
		Entries:   c.ll.Len(),
		Capacity:  c.cap,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

package service

import (
	"container/list"
	"encoding/json"
	"sync"
)

// lruCache is the content-addressed schedule cache: a bounded
// least-recently-used map from pattern key to the marshaled compile
// artifact, partitioned by tenant (QoS class). Lookups go through one
// global key index — content addressing makes artifacts tenant-agnostic,
// so any tenant may hit any cached entry — but capacity and eviction are
// per partition: an entry is billed to the tenant that inserted it, and a
// tenant filling its partition evicts only its own entries, never another
// tenant's warm state. Values are immutable json.RawMessage blobs, so a
// hit hands out the exact bytes the cold compile produced and no copying
// is needed.
type lruCache struct {
	mu         sync.Mutex
	defaultCap int
	parts      map[string]*cachePartition
	items      map[string]*list.Element // global: key -> element in its partition's list
	hits       uint64
	misses     uint64
	evictions  uint64

	// onEvict, when set, receives every entry the cache evicts — the
	// serving layer uses it to write evicted artifacts through to the
	// persistent store (billed to the owning tenant) so they stay one
	// disk-read away. Called after the cache lock is released (it does disk
	// I/O and must not stall Get).
	onEvict func(key, tenant string, val json.RawMessage)
}

// cachePartition is one tenant's share of the cache.
type cachePartition struct {
	cap       int
	ll        *list.List // front = most recently used within the partition
	evictions uint64
}

type cacheEntry struct {
	key    string
	tenant string
	val    json.RawMessage
}

// newLRUCache builds the cache. defaultCap bounds any partition created on
// demand (a tenant first seen at runtime — e.g. the owner of a replicated
// artifact); known classes get their configured caps via configure.
func newLRUCache(defaultCap int) *lruCache {
	return &lruCache{
		defaultCap: defaultCap,
		parts:      make(map[string]*cachePartition),
		items:      make(map[string]*list.Element),
	}
}

// configure pre-creates a tenant's partition with an explicit capacity.
func (c *lruCache) configure(tenant string, capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.partition(tenant).cap = capacity
}

func (c *lruCache) partition(tenant string) *cachePartition {
	p, ok := c.parts[tenant]
	if !ok {
		p = &cachePartition{cap: c.defaultCap, ll: list.New()}
		c.parts[tenant] = p
	}
	return p
}

// Get returns the cached artifact and bumps its recency within the owning
// tenant's partition.
func (c *lruCache) Get(key string) (json.RawMessage, bool) {
	val, _, ok := c.GetOwned(key)
	return val, ok
}

// GetOwned is Get plus the tenant the hit entry is billed to (the cluster
// fetch path reports it so replicas land in the owner's partition).
func (c *lruCache) GetOwned(key string) (json.RawMessage, string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, "", false
	}
	c.hits++
	e := el.Value.(*cacheEntry)
	c.parts[e.tenant].ll.MoveToFront(el)
	return e.val, e.tenant, true
}

// Add inserts (or refreshes) an artifact billed to a tenant, evicting the
// least recently used entries of that tenant's partition when it runs over
// capacity. A key that is already cached keeps its original owner — the
// first tenant paid for the compile — and only has its recency bumped.
func (c *lruCache) Add(key, tenant string, val json.RawMessage) {
	c.mu.Lock()
	var evicted []*cacheEntry
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		c.parts[e.tenant].ll.MoveToFront(el)
		e.val = val
	} else {
		p := c.partition(tenant)
		c.items[key] = p.ll.PushFront(&cacheEntry{key: key, tenant: tenant, val: val})
		for p.ll.Len() > p.cap {
			oldest := p.ll.Back()
			p.ll.Remove(oldest)
			e := oldest.Value.(*cacheEntry)
			delete(c.items, e.key)
			c.evictions++
			p.evictions++
			evicted = append(evicted, e)
		}
	}
	onEvict := c.onEvict
	c.mu.Unlock()
	if onEvict != nil {
		for _, e := range evicted {
			onEvict(e.key, e.tenant, e.val)
		}
	}
}

// Keys lists every cached key, most recently used first within each
// partition (partitions in map order). The cluster gossip layer enumerates
// it (together with the store) to build the anti-entropy digest of what
// this daemon can serve without compiling.
func (c *lruCache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.items))
	for _, p := range c.parts {
		for el := p.ll.Front(); el != nil; el = el.Next() {
			out = append(out, el.Value.(*cacheEntry).key)
		}
	}
	return out
}

// Metrics snapshots the cache counters. Capacity is the sum of the live
// partitions' caps.
func (c *lruCache) Metrics() CacheMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := CacheMetrics{
		Entries:   len(c.items),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
	for _, p := range c.parts {
		m.Capacity += p.cap
	}
	return m
}

// PartitionMetrics snapshots one tenant's partition.
func (c *lruCache) PartitionMetrics(tenant string) (entries, capacity int, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.parts[tenant]
	if !ok {
		return 0, 0, 0
	}
	return p.ll.Len(), p.cap, p.evictions
}

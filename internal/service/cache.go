package service

import (
	"container/list"
	"encoding/json"
	"sync"
)

// lruCache is the content-addressed schedule cache: a bounded
// least-recently-used map from pattern key to the marshaled compile
// artifact. Values are immutable json.RawMessage blobs, so a hit hands out
// the exact bytes the cold compile produced and no copying is needed.
type lruCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key string
	val json.RawMessage
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element, capacity)}
}

// Get returns the cached artifact and bumps its recency.
func (c *lruCache) Get(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Add inserts (or refreshes) an artifact, evicting the least recently used
// entry when over capacity.
func (c *lruCache) Add(key string, val json.RawMessage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Metrics snapshots the cache counters.
func (c *lruCache) Metrics() CacheMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheMetrics{
		Entries:   c.ll.Len(),
		Capacity:  c.cap,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

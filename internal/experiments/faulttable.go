package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"text/tabwriter"

	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/sim"
)

// FaultConfig parameterizes the fault-degradation sweep: how compiled
// communication (recompile-and-reload) and dynamic control (retry and
// reroute) degrade as link failures accumulate.
type FaultConfig struct {
	// FaultCounts lists the injected-failure counts, one table row each;
	// nil means {1, 2, 4, 8}.
	FaultCounts []int
	// Trials is the number of random fault plans averaged per row; zero
	// means 50.
	Trials int
	// Seed drives the fault-plan generator.
	Seed int64
	// Stride and Flits shape the workload: a shift-by-Stride permutation
	// (every terminal sends Flits flits). Zeros mean 9 and 32.
	Stride, Flits int
	// Degree is the dynamic protocol's multiplexing degree; zero means the
	// healthy compiled schedule's degree, so both sides multiplex alike.
	Degree int
	// MaxSlot is the latest injection slot; zero means half the healthy
	// compiled phase time, so faults land mid-phase.
	MaxSlot int
	// Recovery configures the compiled side's recompilation path.
	Recovery fault.Options
	// Workers bounds the trial worker pool; zero means GOMAXPROCS. The
	// results are identical for any value.
	Workers int
}

// FaultRow is one row of the degradation table: trial means for one
// injected-failure count.
type FaultRow struct {
	Faults int
	Trials int

	// Compiled side: recompile-and-reload recovery.
	CompiledTotal  float64 // end-to-end slots including stalls
	CompiledStall  float64 // detect + recompile + reload slots
	CompiledDegree float64 // degraded multiplexing degree
	CompiledLost   float64 // disconnected messages
	FallbackFlits  float64 // flits the predetermined fallback moved

	// Dynamic side: retries and reroutes on the thinned network.
	DynamicTime     float64
	DynamicAborts   float64 // attempts torn down by faults
	DynamicRerouted float64
	DynamicLost     float64
	DynamicTimedOut int // trials that hit MaxTime (excluded from DynamicTime)
}

// FaultTableResult is the degradation table plus its healthy baselines.
type FaultTableResult struct {
	HealthyCompiled int // fault-free compiled phase slots
	HealthyDegree   int
	HealthyDynamic  int // fault-free dynamic protocol slots
	DynamicDegree   int
	Rows            []FaultRow
}

// FaultTable sweeps fault plans over one workload and reports, per
// injected-failure count, the mean degradation of compiled recovery
// (fault.RecoverCompiled) and of the dynamic protocol
// (sim.Simulator.RunFaulted). Each trial derives its fault plan only from
// (Seed, row, trial), so the table is byte-identical for any worker count.
func FaultTable(t network.Topology, cfg FaultConfig) (*FaultTableResult, error) {
	counts := cfg.FaultCounts
	if counts == nil {
		counts = []int{1, 2, 4, 8}
	}
	trials := cfg.Trials
	if trials == 0 {
		trials = 50
	}
	stride := cfg.Stride
	if stride == 0 {
		stride = 9
	}
	flits := cfg.Flits
	if flits == 0 {
		flits = 32
	}
	nodes := network.TerminalCount(t)
	msgs := make([]sim.Message, nodes)
	for i := range msgs {
		msgs[i] = sim.Message{Src: i, Dst: (i + stride) % nodes, Flits: flits}
	}

	// Healthy baselines fix the defaults the sweep scales against.
	base, err := fault.RecoverCompiled(t, msgs, nil, cfg.Recovery)
	if err != nil {
		return nil, fmt.Errorf("experiments: fault table baseline: %w", err)
	}
	degree := cfg.Degree
	if degree == 0 {
		degree = base.HealthyDegree
	}
	maxSlot := cfg.MaxSlot
	if maxSlot == 0 {
		maxSlot = base.HealthyTime / 2
	}
	dynBase, err := sim.Dynamic{Topology: t, Params: sim.DefaultParams(degree)}.Run(msgs)
	if err != nil {
		return nil, fmt.Errorf("experiments: fault table baseline: %w", err)
	}
	out := &FaultTableResult{
		HealthyCompiled: base.HealthyTime,
		HealthyDegree:   base.HealthyDegree,
		HealthyDynamic:  dynBase.Time,
		DynamicDegree:   degree,
	}

	type trialResult struct {
		rec      *fault.Recovery
		dyn      sim.DynamicResult
		timedOut bool
	}
	for row, nf := range counts {
		all, err := RunSweep(trials, cfg.Workers, sim.TrialSeed(cfg.Seed, row),
			func(_ int, rng *rand.Rand) (trialResult, error) {
				plan := fault.RandomLinkPlan(t, rng.Int63(), nf, maxSlot)
				rec, err := fault.RecoverCompiled(t, msgs, plan, cfg.Recovery)
				if err != nil {
					return trialResult{}, err
				}
				s, err := sim.NewSimulator(t, sim.DefaultParams(degree))
				if err != nil {
					return trialResult{}, err
				}
				var dyn sim.DynamicResult
				if err := s.RunFaulted(msgs, fault.SimPlan(t, plan), &dyn); err != nil {
					return trialResult{}, err
				}
				dyn.Finish = nil // only aggregates are tabulated
				return trialResult{rec: rec, dyn: dyn, timedOut: dyn.TimedOut}, nil
			})
		if err != nil {
			return nil, err
		}
		r := FaultRow{Faults: nf, Trials: trials}
		dynOK := 0
		for _, tr := range all {
			r.CompiledTotal += float64(tr.rec.TotalTime)
			r.CompiledStall += float64(tr.rec.StallSlots)
			r.CompiledDegree += float64(tr.rec.DegradedDegree)
			r.CompiledLost += float64(tr.rec.Lost)
			r.FallbackFlits += float64(tr.rec.FallbackFlits)
			r.DynamicAborts += float64(tr.dyn.FaultAborts)
			r.DynamicRerouted += float64(tr.dyn.Rerouted)
			r.DynamicLost += float64(tr.dyn.Lost)
			if tr.timedOut {
				r.DynamicTimedOut++
			} else {
				r.DynamicTime += float64(tr.dyn.Time)
				dynOK++
			}
		}
		n := float64(trials)
		r.CompiledTotal /= n
		r.CompiledStall /= n
		r.CompiledDegree /= n
		r.CompiledLost /= n
		r.FallbackFlits /= n
		r.DynamicAborts /= n
		r.DynamicRerouted /= n
		r.DynamicLost /= n
		if dynOK > 0 {
			r.DynamicTime /= float64(dynOK)
		}
		out.Rows = append(out.Rows, r)
	}
	return out, nil
}

// FormatFaultTable renders the degradation table the way cmd/ccfault prints
// it. Rendering lives next to the sweep so the byte-identical-across-workers
// guarantee can be asserted on the exact user-visible output.
func FormatFaultTable(res *FaultTableResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "healthy: compiled %d slots (degree %d), dynamic %d slots (degree %d)\n\n",
		res.HealthyCompiled, res.HealthyDegree, res.HealthyDynamic, res.DynamicDegree)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "faults\tcompiled total\tstall\tdegree\tlost\tfallback flits\tdynamic time\taborts\trerouted\tlost\ttimeouts")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%.2f\t%.2f\t%.1f\t%.1f\t%.2f\t%.2f\t%.2f\t%d\n",
			r.Faults, r.CompiledTotal, r.CompiledStall, r.CompiledDegree, r.CompiledLost,
			r.FallbackFlits, r.DynamicTime, r.DynamicAborts, r.DynamicRerouted, r.DynamicLost,
			r.DynamicTimedOut)
	}
	w.Flush()
	return b.String()
}

// Package experiments generates the paper's evaluation tables as data —
// the single implementation behind the cmd/cctables and cmd/ccsim tools and
// the root benchmark harness, so the numbers in every output channel come
// from one tested code path.
package experiments

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/apps"
	"repro/internal/cliutil"
	"repro/internal/network"
	"repro/internal/patterns"
	"repro/internal/redist"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Algorithms are the four scheduler columns of Tables 1-3, in the paper's
// order.
func Algorithms() []schedule.Scheduler {
	return []schedule.Scheduler{
		schedule.Greedy{},
		schedule.Coloring{},
		schedule.OrderedAAPC{},
		schedule.Combined{},
	}
}

// AlgorithmNames returns the column headers matching Algorithms().
func AlgorithmNames() []string {
	return []string{"greedy", "coloring", "aapc", "combined"}
}

// degreesFor schedules one request set with every algorithm.
func degreesFor(t network.Topology, set request.Set) ([]int, error) {
	out := make([]int, 0, 4)
	for _, s := range Algorithms() {
		res, err := s.Schedule(t, set)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", s.Name(), err)
		}
		out = append(out, res.Degree())
	}
	return out, nil
}

// degreesForAll schedules many request sets concurrently (schedulers are
// pure, so the sweep parallelizes trivially) and returns degrees indexed
// like the input. The sets themselves are generated sequentially by the
// callers, keeping the sweep deterministic for a fixed seed.
func degreesForAll(t network.Topology, sets []request.Set) ([][]int, error) {
	out := make([][]int, len(sets))
	errs := make([]error, len(sets))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cliutil.Workers(0))
	for i := range sets {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i], errs[i] = degreesFor(t, sets[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RunSweep runs gen once per trial on sim.Sweep's worker pool and collects
// the results in trial order. Each trial draws randomness only from its own
// rng (seeded by sim.TrialSeed), so the returned slice is byte-identical for
// any worker count; workers <= 0 means GOMAXPROCS. This is the engine behind
// the trial loops of Tables 1, 2 and 5.
func RunSweep[T any](trials, workers int, seed int64, gen func(trial int, rng *rand.Rand) (T, error)) ([]T, error) {
	out := make([]T, trials)
	err := sim.Sweep(trials, workers, seed, func(trial int, rng *rand.Rand) error {
		v, err := gen(trial, rng)
		if err != nil {
			return err
		}
		out[trial] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Improvement is the paper's last column: the percentage reduction of the
// combined algorithm's degree relative to greedy's.
func Improvement(greedy, combined float64) float64 {
	if greedy == 0 {
		return 0
	}
	return 100 * (greedy - combined) / greedy
}

// --- Table 1 -----------------------------------------------------------------

// Table1Config parameterizes the random-pattern sweep.
type Table1Config struct {
	// Sizes lists the connection counts; nil means the paper's 100..4000.
	Sizes []int
	// Trials is the number of random patterns averaged per row; zero means
	// the paper's 100.
	Trials int
	// Seed drives the generator.
	Seed int64
	// Nodes is the PE count; zero means 64.
	Nodes int
	// Workers bounds the trial worker pool; zero means GOMAXPROCS. The
	// results are identical for any value.
	Workers int
}

// Table1Row is one row of Table 1.
type Table1Row struct {
	Conns       int
	Degrees     []float64 // one per Algorithms() column
	Spread      []stats.Summary
	Improvement float64
}

// Table1 runs the random-pattern sweep.
func Table1(t network.Topology, cfg Table1Config) ([]Table1Row, error) {
	sizes := cfg.Sizes
	if sizes == nil {
		sizes = []int{100, 400, 800, 1200, 1600, 2000, 2400, 2800, 3200, 3600, 4000}
	}
	trials := cfg.Trials
	if trials == 0 {
		trials = 100
	}
	nodes := cfg.Nodes
	if nodes == 0 {
		nodes = 64
	}
	var rows []Table1Row
	for si, n := range sizes {
		// Each row gets its own decorrelated seed, and each trial within it
		// generates and schedules one pattern on the worker pool.
		all, err := RunSweep(trials, cfg.Workers, sim.TrialSeed(cfg.Seed, si),
			func(_ int, rng *rand.Rand) ([]int, error) {
				set, err := patterns.Random(rng, nodes, n)
				if err != nil {
					return nil, err
				}
				return degreesFor(t, set)
			})
		if err != nil {
			return nil, err
		}
		samples := make([][]int, 4)
		for _, degs := range all {
			for i, d := range degs {
				samples[i] = append(samples[i], d)
			}
		}
		row := Table1Row{Conns: n, Degrees: make([]float64, 4), Spread: make([]stats.Summary, 4)}
		for i := range samples {
			row.Spread[i] = stats.Summarize(samples[i])
			row.Degrees[i] = row.Spread[i].Mean
		}
		row.Improvement = Improvement(row.Degrees[0], row.Degrees[3])
		rows = append(rows, row)
	}
	return rows, nil
}

// --- Table 2 -----------------------------------------------------------------

// Table2Config parameterizes the redistribution sweep.
type Table2Config struct {
	// Redistributions is the number of random redistributions; zero means
	// the paper's 500.
	Redistributions int
	// Seed drives the generator.
	Seed int64
	// Shape is the array shape; zero means 64x64x64.
	Shape [3]int
	// Procs is the PE count; zero means 64.
	Procs int
	// Workers bounds the trial worker pool; zero means GOMAXPROCS. The
	// results are identical for any value.
	Workers int
}

// Table2Row is one connection-count bucket of Table 2.
type Table2Row struct {
	Lo, Hi      int
	Patterns    int
	Degrees     []float64
	Improvement float64
}

// table2Buckets are the paper's connection-count buckets.
func table2Buckets() []Table2Row {
	bounds := [][2]int{
		{0, 100}, {101, 200}, {201, 400}, {401, 800}, {801, 1200},
		{1201, 1600}, {1601, 2000}, {2001, 2400}, {2401, 4031}, {4032, 4032},
	}
	rows := make([]Table2Row, len(bounds))
	for i, b := range bounds {
		rows[i] = Table2Row{Lo: b[0], Hi: b[1], Degrees: make([]float64, 4)}
	}
	return rows
}

// Table2 runs the random-redistribution sweep.
func Table2(t network.Topology, cfg Table2Config) ([]Table2Row, error) {
	n := cfg.Redistributions
	if n == 0 {
		n = 500
	}
	shape := cfg.Shape
	if shape == ([3]int{}) {
		shape = [3]int{64, 64, 64}
	}
	procs := cfg.Procs
	if procs == 0 {
		procs = 64
	}
	rows := table2Buckets()
	// One trial = draw one redistribution and schedule it with every
	// algorithm; bucketing happens afterwards, in trial order.
	type t2trial struct {
		conns   int
		degrees []int
	}
	all, err := RunSweep(n, cfg.Workers, cfg.Seed, func(_ int, rng *rand.Rand) (t2trial, error) {
		pat, _, _, err := redist.RandomRedistribution(rng, shape, procs)
		if err != nil {
			return t2trial{}, err
		}
		degs, err := degreesFor(t, pat.Reqs)
		if err != nil {
			return t2trial{}, err
		}
		return t2trial{conns: len(pat.Reqs), degrees: degs}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, tr := range all {
		for r := range rows {
			if tr.conns >= rows[r].Lo && tr.conns <= rows[r].Hi {
				rows[r].Patterns++
				for c, d := range tr.degrees {
					rows[r].Degrees[c] += float64(d)
				}
				break
			}
		}
	}
	for r := range rows {
		if rows[r].Patterns == 0 {
			continue
		}
		for c := range rows[r].Degrees {
			rows[r].Degrees[c] /= float64(rows[r].Patterns)
		}
		rows[r].Improvement = Improvement(rows[r].Degrees[0], rows[r].Degrees[3])
	}
	return rows, nil
}

// --- Table 3 -----------------------------------------------------------------

// Table3Row is one frequently-used-pattern row.
type Table3Row struct {
	Name        string
	Conns       int
	Degrees     []int
	Improvement float64
}

// PatternEntry names one of Table 3's frequently used patterns.
type PatternEntry struct {
	Name string
	Set  request.Set
}

// Table3Patterns returns the five classic patterns of Table 3 sized for the
// topology's terminal count. Exported so the CLI tools can feed the same
// pattern list through the public batch compiler (ccomm.Compiler.CompileAll)
// that production phase compilation uses.
func Table3Patterns(t network.Topology) ([]PatternEntry, error) {
	nodes := network.TerminalCount(t)
	hyper, err := patterns.Hypercube(nodes)
	if err != nil {
		return nil, err
	}
	shuffle, err := patterns.ShuffleExchange(nodes)
	if err != nil {
		return nil, err
	}
	side := 1
	for side*side < nodes {
		side++
	}
	return []PatternEntry{
		{"ring", patterns.Ring(nodes)},
		{"nearest neighbor", patterns.NearestNeighbor2D(side, nodes/side)},
		{"hypercube", hyper},
		{"shuffle-exchange", shuffle},
		{"all-to-all", patterns.AllToAll(nodes)},
	}, nil
}

// Table3 schedules the five classic patterns, all concurrently.
func Table3(t network.Topology) ([]Table3Row, error) {
	entries, err := Table3Patterns(t)
	if err != nil {
		return nil, err
	}
	sets := make([]request.Set, len(entries))
	for i, e := range entries {
		sets[i] = e.Set
	}
	all, err := degreesForAll(t, sets)
	if err != nil {
		return nil, err
	}
	rows := make([]Table3Row, len(entries))
	for i, e := range entries {
		rows[i] = Table3Row{
			Name:        e.Name,
			Conns:       len(e.Set),
			Degrees:     all[i],
			Improvement: Improvement(float64(all[i][0]), float64(all[i][3])),
		}
	}
	return rows, nil
}

// --- Table 5 -----------------------------------------------------------------

// Table5Config parameterizes the compiled-vs-dynamic comparison.
type Table5Config struct {
	// FixedDegrees are the dynamic-control degrees; nil means {1, 2, 5, 10}.
	FixedDegrees []int
	// Params builds the dynamic simulator parameters per degree; nil means
	// sim.DefaultParams.
	Params func(degree int) sim.Params
	// GSSizes, P3MSizes select problem sizes; nil means the paper's.
	GSSizes, P3MSizes []int
	// Workers bounds the worker pool for the per-row scheduling and the
	// per-(row, degree) dynamic simulations; zero means GOMAXPROCS. The
	// results are identical for any value.
	Workers int
}

// Table5Row is one workload row.
type Table5Row struct {
	Pattern  string
	Size     string
	Conns    int
	Degree   int
	Compiled int
	Dynamic  map[int]int // fixed degree -> slots; missing on timeout
	TimedOut []int       // degrees that exceeded MaxTime
}

// Table5 runs the full compiled-vs-dynamic comparison.
func Table5(t network.Topology, cfg Table5Config) ([]Table5Row, error) {
	fixed := cfg.FixedDegrees
	if fixed == nil {
		fixed = []int{1, 2, 5, 10}
	}
	params := cfg.Params
	if params == nil {
		params = sim.DefaultParams
	}
	gsSizes := cfg.GSSizes
	if gsSizes == nil {
		gsSizes = []int{64, 128, 256}
	}
	p3mSizes := cfg.P3MSizes
	if p3mSizes == nil {
		p3mSizes = []int{32, 64}
	}

	type workload struct {
		pattern, size string
		msgs          []sim.Message
	}
	var work []workload
	for _, n := range gsSizes {
		ph, err := apps.GS(n, 64)
		if err != nil {
			return nil, err
		}
		work = append(work, workload{"GS", fmt.Sprintf("%d x %d", n, n), ph.Messages})
	}
	tscf, err := apps.TSCF(64)
	if err != nil {
		return nil, err
	}
	work = append(work, workload{"TSCF", "5120", tscf.Messages})
	for _, n := range p3mSizes {
		phases, err := apps.P3M(n)
		if err != nil {
			return nil, err
		}
		for _, ph := range phases {
			work = append(work, workload{ph.Name, fmt.Sprintf("%d^3", n), ph.Messages})
		}
	}

	// Phase 1: schedule every workload and simulate its compiled execution,
	// one row per worker-pool trial (the work list is deterministic, so the
	// rng is unused).
	type prep struct {
		degree, compiled int
	}
	preps, err := RunSweep(len(work), cfg.Workers, 0, func(i int, _ *rand.Rand) (prep, error) {
		w := work[i]
		set := (apps.Phase{Messages: w.msgs}).Pattern().Dedup()
		res, err := schedule.Combined{}.Schedule(t, set)
		if err != nil {
			return prep{}, fmt.Errorf("%s %s: %w", w.pattern, w.size, err)
		}
		comp, err := sim.RunCompiled(res, w.msgs)
		if err != nil {
			return prep{}, fmt.Errorf("%s %s: %w", w.pattern, w.size, err)
		}
		return prep{degree: res.Degree(), compiled: comp.Time}, nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: every (workload, fixed degree) dynamic simulation is an
	// independent cell; sweep them all on the pool. The simulator itself is
	// deterministic, so cells carry no randomness either.
	type cell struct {
		time     int
		timedOut bool
	}
	cells, err := RunSweep(len(work)*len(fixed), cfg.Workers, 0, func(ci int, _ *rand.Rand) (cell, error) {
		w, k := work[ci/len(fixed)], fixed[ci%len(fixed)]
		s, err := sim.NewSimulator(t, params(k))
		if err != nil {
			return cell{}, fmt.Errorf("%s %s K=%d: %w", w.pattern, w.size, k, err)
		}
		dyn, err := s.Run(w.msgs)
		if err != nil {
			return cell{}, fmt.Errorf("%s %s K=%d: %w", w.pattern, w.size, k, err)
		}
		return cell{time: dyn.Time, timedOut: dyn.TimedOut}, nil
	})
	if err != nil {
		return nil, err
	}

	rows := make([]Table5Row, len(work))
	for i, w := range work {
		row := Table5Row{
			Pattern:  w.pattern,
			Size:     w.size,
			Conns:    len(w.msgs),
			Degree:   preps[i].degree,
			Compiled: preps[i].compiled,
			Dynamic:  make(map[int]int),
		}
		for ki, k := range fixed {
			c := cells[i*len(fixed)+ki]
			if c.timedOut {
				row.TimedOut = append(row.TimedOut, k)
				continue
			}
			row.Dynamic[k] = c.time
		}
		rows[i] = row
	}
	return rows, nil
}

package experiments

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/topology"
)

// TestFaultTableDeterministicAcrossWorkers pins the fault sweep's central
// guarantee: the rendered degradation table is byte-identical whatever the
// worker count (and, under -race, that the parallel sweep is clean).
func TestFaultTableDeterministicAcrossWorkers(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	cfg := FaultConfig{
		FaultCounts: []int{1, 3},
		Trials:      6,
		Seed:        7,
		Stride:      3,
		Flits:       8,
		Recovery:    fault.Options{Fallback: true, DetectSlots: 16, CompileSlots: 64},
	}
	var tables []string
	for _, workers := range []int{1, 4} {
		cfg.Workers = workers
		res, err := FaultTable(torus, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tables = append(tables, FormatFaultTable(res))
	}
	if tables[0] != tables[1] {
		t.Fatalf("degradation table depends on the worker count:\n--- workers=1\n%s--- workers=4\n%s", tables[0], tables[1])
	}
}

func TestFaultTableShape(t *testing.T) {
	torus := topology.NewTorus(4, 4)
	res, err := FaultTable(torus, FaultConfig{FaultCounts: []int{2}, Trials: 3, Seed: 1, Stride: 3, Flits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Faults != 2 || res.Rows[0].Trials != 3 {
		t.Fatalf("table shape wrong: %+v", res)
	}
	if res.HealthyCompiled <= 0 || res.HealthyDynamic <= 0 || res.HealthyDegree <= 0 {
		t.Fatalf("healthy baselines missing: %+v", res)
	}
	r := res.Rows[0]
	if r.CompiledTotal < float64(res.HealthyCompiled) {
		t.Fatalf("mean degraded time %.1f below healthy %d", r.CompiledTotal, res.HealthyCompiled)
	}
	if r.CompiledStall <= 0 {
		t.Fatalf("no recovery stall recorded: %+v", r)
	}
}

package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"text/tabwriter"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
)

// The crossover atlas maps where compiled communication beats dynamic
// control — and where it does not — across {topology family, scale,
// pattern sparsity}. The workload is the MoE-style sparse all-to-all
// (dispatch + combine), whose top-k fan-out is a direct sparsity dial: at
// top-k 2 on a torus the pattern is nearly contention-free and the
// compiled side's per-phase reconfiguration barrier dominates, while at
// top-k 8 on a dragonfly every group pair funnels through one global link
// and the dynamic protocol collapses into retries. Per "To Reconfigure or
// Not to Reconfigure", the switch-programming cost is what moves the
// crossover, so it is a first-class knob here (CrossoverReconfig) rather
// than the paper's register-write default.

// CrossoverConfig parameterizes the atlas sweep.
type CrossoverConfig struct {
	// Topologies lists topology.Parse specs, one table block each; nil
	// means DefaultCrossoverTopologies.
	Topologies []string
	// TopKs lists the MoE fan-outs (sparsity levels); nil means {2, 8}.
	TopKs []int
	// Flits is the token payload per selected expert, in flits; zero
	// means 4.
	Flits int
	// Seed drives the MoE gate draw.
	Seed uint64
	// Reconfig is the compiled side's phase-switch cost; nil means
	// CrossoverReconfig.
	Reconfig *core.ReconfigCost
	// Workers bounds the row worker pool; zero means GOMAXPROCS. The
	// table is byte-identical for any value.
	Workers int
}

// DefaultCrossoverTopologies spans three families at three scales each,
// 256 to 2116 PEs.
var DefaultCrossoverTopologies = []string{
	"torus-16x16", "torus-32x32", "torus-46x46",
	"fattree-8", "fattree-16", "fattree-20",
	"dragonfly-8x16x4", "dragonfly-8x33x4", "dragonfly-16x32x4",
}

// CrossoverReconfig is the atlas default phase-switch cost: an
// optical-circuit-switch-style reconfiguration (4 slots per register entry
// plus a 2048-slot settling barrier) rather than DefaultReconfigCost's
// cheap register rewrite. Modern OCS hardware settles milliseconds against
// nanosecond flit times — a ratio of 10^3 and up — and it is exactly this
// cost that creates the regime where dynamic control wins: a sparse
// exchange finishes under the reservation protocol before the compiled
// side's switches have even settled, while on a dense exchange the
// protocol's retry storms dwarf any settling time.
var CrossoverReconfig = core.ReconfigCost{PerSlot: 4, Barrier: 2048}

// CrossoverRow is one (topology, sparsity) cell of the atlas.
type CrossoverRow struct {
	Topology string // canonical Name() of the fabric
	Nodes    int    // terminal count
	TopK     int
	Conns    int // connections per phase (nodes * topk)

	Degree    int // max compiled phase degree
	Compiled  int // slots for dispatch+combine incl. reconfiguration
	DynDegree int // fixed degree the dynamic run used
	Dynamic   int // slots for dispatch+combine under dynamic control
	TimedOut  bool

	Winner string // "compiled", "dynamic" or "tie"
}

// Crossover runs the atlas: for every topology × top-k cell it generates
// the seeded MoE exchange, compiles it (paying Reconfig per phase) and
// runs the same messages under the dynamic reservation protocol at the
// matching multiplexing degree (capped at the 64-slot register model).
// Rows derive only from (spec, topk, Seed), so the result is
// byte-identical across worker counts.
func Crossover(cfg CrossoverConfig) ([]CrossoverRow, error) {
	specs := cfg.Topologies
	if specs == nil {
		specs = DefaultCrossoverTopologies
	}
	topks := cfg.TopKs
	if topks == nil {
		topks = []int{2, 8}
	}
	flits := cfg.Flits
	if flits == 0 {
		flits = 4
	}
	rc := CrossoverReconfig
	if cfg.Reconfig != nil {
		rc = *cfg.Reconfig
	}

	type cell struct {
		spec string
		topk int
	}
	var grid []cell
	for _, spec := range specs {
		for _, k := range topks {
			grid = append(grid, cell{spec, k})
		}
	}
	return RunSweep(len(grid), cfg.Workers, 0, func(i int, _ *rand.Rand) (CrossoverRow, error) {
		c := grid[i]
		t, err := topology.Parse(c.spec)
		if err != nil {
			return CrossoverRow{}, fmt.Errorf("experiments: crossover: %w", err)
		}
		nodes := network.TerminalCount(t)
		moe, err := collective.MoEAllToAll(nodes, c.topk, flits, cfg.Seed)
		if err != nil {
			return CrossoverRow{}, fmt.Errorf("experiments: crossover %s top-%d: %w", t.Name(), c.topk, err)
		}
		prog := moe.Program(1)

		cp, err := core.Compiler{Topology: t}.Compile(prog)
		if err != nil {
			return CrossoverRow{}, fmt.Errorf("experiments: crossover %s top-%d: %w", t.Name(), c.topk, err)
		}
		compiled, _, err := cp.IterationTime(rc)
		if err != nil {
			return CrossoverRow{}, fmt.Errorf("experiments: crossover %s top-%d: %w", t.Name(), c.topk, err)
		}

		// The dynamic side multiplexes like the compiled schedule, as in
		// the fault table, but within the 64-slot register model.
		degree := cp.MaxDegree()
		dynDegree := degree
		if dynDegree > 64 {
			dynDegree = 64
		}
		// The atlas only needs to know which side wins, so the dynamic run
		// is cut off once it has lost by 2x: past that point the simulator
		// would grind through retry storms for minutes (its default guard is
		// 50M slots) just to report a larger losing number.
		params := sim.DefaultParams(dynDegree)
		params.MaxTime = 2*compiled + 4096
		dynamic := 0
		timedOut := false
		for _, ph := range prog.Phases {
			res, err := sim.Dynamic{Topology: t, Params: params}.Run(ph.Messages)
			if err != nil {
				return CrossoverRow{}, fmt.Errorf("experiments: crossover %s top-%d: %w", t.Name(), c.topk, err)
			}
			dynamic += res.Time
			timedOut = timedOut || res.TimedOut
		}

		row := CrossoverRow{
			Topology: t.Name(), Nodes: nodes, TopK: c.topk,
			Conns:  len(prog.Phases[0].Messages),
			Degree: degree, Compiled: compiled,
			DynDegree: dynDegree, Dynamic: dynamic, TimedOut: timedOut,
		}
		switch {
		case timedOut || compiled < dynamic:
			row.Winner = "compiled"
		case dynamic < compiled:
			row.Winner = "dynamic"
		default:
			row.Winner = "tie"
		}
		return row, nil
	})
}

// FormatCrossoverTable renders the atlas the way cmd/cctables prints it.
// Rendering lives next to the sweep so the byte-identical-across-workers
// guarantee can be asserted on the exact user-visible output.
func FormatCrossoverTable(rows []CrossoverRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "topology\tnodes\ttop-k\tconns\tdegree\tcompiled\tdyn degree\tdynamic\twinner")
	for _, r := range rows {
		dyn := fmt.Sprintf("%d", r.Dynamic)
		if r.TimedOut {
			dyn = "timeout"
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%s\t%s\n",
			r.Topology, r.Nodes, r.TopK, r.Conns, r.Degree, r.Compiled,
			r.DynDegree, dyn, r.Winner)
	}
	w.Flush()
	return b.String()
}

package experiments

import (
	"strings"
	"testing"
)

// quickCrossoverGrid is a small atlas — one fabric per family at modest
// scale, one sparse and one dense top-k — that still exhibits both win
// regimes under the default OCS-style reconfiguration cost.
var quickCrossoverGrid = CrossoverConfig{
	Topologies: []string{"torus-8x8", "fattree-8", "dragonfly-4x8x2"},
	TopKs:      []int{2, 8},
	Seed:       1,
}

// TestCrossoverDeterministicAcrossWorkers pins the atlas's central
// guarantee: the rendered table is byte-identical whatever the worker
// count (and, under -race, that the parallel sweep is clean).
func TestCrossoverDeterministicAcrossWorkers(t *testing.T) {
	var tables []string
	for _, workers := range []int{1, 4} {
		cfg := quickCrossoverGrid
		cfg.Workers = workers
		rows, err := Crossover(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tables = append(tables, FormatCrossoverTable(rows))
	}
	if tables[0] != tables[1] {
		t.Fatalf("crossover table depends on the worker count:\n--- workers=1\n%s--- workers=4\n%s", tables[0], tables[1])
	}
}

// TestCrossoverExhibitsBothRegimes is the atlas's reason to exist: under
// the OCS-style reconfiguration cost there must be at least one cell where
// dynamic control wins (sparse exchange, barrier dominates) and one where
// compiled communication wins (dense exchange, retry storms dominate).
func TestCrossoverExhibitsBothRegimes(t *testing.T) {
	rows, err := Crossover(quickCrossoverGrid)
	if err != nil {
		t.Fatal(err)
	}
	wins := map[string]int{}
	for _, r := range rows {
		wins[r.Winner]++
	}
	if wins["compiled"] == 0 || wins["dynamic"] == 0 {
		t.Fatalf("atlas lost a regime: wins = %v\n%s", wins, FormatCrossoverTable(rows))
	}
}

func TestCrossoverRowShape(t *testing.T) {
	rows, err := Crossover(quickCrossoverGrid)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(quickCrossoverGrid.Topologies)*len(quickCrossoverGrid.TopKs) {
		t.Fatalf("got %d rows, want %d", len(rows), len(quickCrossoverGrid.Topologies)*len(quickCrossoverGrid.TopKs))
	}
	for _, r := range rows {
		if r.Nodes <= 0 || r.TopK <= 0 {
			t.Fatalf("row missing dimensions: %+v", r)
		}
		// Dispatch sends top-k messages per rank.
		if r.Conns != r.Nodes*r.TopK {
			t.Fatalf("row %s top-%d: conns %d != nodes*topk %d", r.Topology, r.TopK, r.Conns, r.Nodes*r.TopK)
		}
		if r.Degree < 1 || r.DynDegree < 1 || r.DynDegree > 64 || r.DynDegree > r.Degree {
			t.Fatalf("row degrees inconsistent: %+v", r)
		}
		if r.Compiled <= 0 {
			t.Fatalf("row has no compiled time: %+v", r)
		}
		if !r.TimedOut && r.Dynamic <= 0 {
			t.Fatalf("row has no dynamic time: %+v", r)
		}
		switch {
		case r.TimedOut && r.Winner != "compiled":
			t.Fatalf("timed-out row must go to compiled: %+v", r)
		case !r.TimedOut && r.Compiled < r.Dynamic && r.Winner != "compiled",
			!r.TimedOut && r.Dynamic < r.Compiled && r.Winner != "dynamic":
			t.Fatalf("row winner inconsistent: %+v", r)
		}
	}
}

func TestCrossoverTableRendering(t *testing.T) {
	rows := []CrossoverRow{
		{Topology: "torus-8x8", Nodes: 64, TopK: 2, Conns: 128, Degree: 5,
			Compiled: 4192, DynDegree: 5, Dynamic: 1292, Winner: "dynamic"},
		{Topology: "dragonfly-8x16x4", Nodes: 512, TopK: 8, Conns: 4096, Degree: 70,
			Compiled: 5000, DynDegree: 64, TimedOut: true, Winner: "compiled"},
	}
	out := FormatCrossoverTable(rows)
	for _, want := range []string{"topology", "torus-8x8", "dragonfly-8x16x4", "timeout", "dynamic", "compiled"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

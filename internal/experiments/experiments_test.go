package experiments_test

import (
	"reflect"
	"testing"

	"repro/internal/experiments"
	"repro/internal/topology"
)

func TestTable1Shape(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	rows, err := experiments.Table1(torus, experiments.Table1Config{
		Sizes:  []int{100, 1200, 4000},
		Trials: 8,
		Seed:   1996,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, row := range rows {
		if len(row.Degrees) != 4 {
			t.Fatalf("row %d has %d degree columns", i, len(row.Degrees))
		}
		// The paper's structural findings: coloring <= greedy on average,
		// combined <= both coloring and aapc, improvement >= 0.
		greedy, coloring, aapc, combined := row.Degrees[0], row.Degrees[1], row.Degrees[2], row.Degrees[3]
		if coloring > greedy {
			t.Errorf("n=%d: coloring %.1f above greedy %.1f", row.Conns, coloring, greedy)
		}
		if combined > coloring+1e-9 || combined > aapc+1e-9 {
			t.Errorf("n=%d: combined %.1f not the minimum of coloring %.1f / aapc %.1f",
				row.Conns, combined, coloring, aapc)
		}
		if row.Improvement < 0 {
			t.Errorf("n=%d: negative improvement %.1f%%", row.Conns, row.Improvement)
		}
		// Degrees grow with connection count.
		if i > 0 && row.Degrees[3] <= rows[i-1].Degrees[3] {
			t.Errorf("combined degree not increasing: %.1f after %.1f", row.Degrees[3], rows[i-1].Degrees[3])
		}
	}
	// Dense random patterns saturate at the AAPC bound.
	last := rows[len(rows)-1]
	if last.Degrees[2] != 64 || last.Degrees[3] != 64 {
		t.Errorf("4000-connection aapc/combined = %.1f/%.1f, want 64/64", last.Degrees[2], last.Degrees[3])
	}
}

func TestTable2Shape(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	rows, err := experiments.Table2(torus, experiments.Table2Config{
		Redistributions: 60,
		Seed:            1996,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("got %d buckets", len(rows))
	}
	total := 0
	for _, row := range rows {
		total += row.Patterns
		if row.Patterns == 0 {
			continue
		}
		if row.Degrees[3] > row.Degrees[0] {
			t.Errorf("bucket %d-%d: combined above greedy", row.Lo, row.Hi)
		}
	}
	if total != 60 {
		t.Fatalf("buckets hold %d patterns, want 60", total)
	}
	// The structurally impossible buckets stay empty (paper's zeros).
	for _, row := range rows {
		if (row.Lo == 1201 || row.Lo == 2401) && row.Patterns != 0 {
			t.Errorf("bucket %d-%d should be structurally empty, has %d", row.Lo, row.Hi, row.Patterns)
		}
	}
}

func TestTable3MatchesPaperCombined(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	rows, err := experiments.Table3(torus)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{ // the paper's combined column
		"ring":             2,
		"nearest neighbor": 4,
		"hypercube":        7,
		"shuffle-exchange": 4,
		"all-to-all":       64,
	}
	wantConns := map[string]int{
		"ring":             128,
		"nearest neighbor": 256,
		"hypercube":        384,
		"shuffle-exchange": 126,
		"all-to-all":       4032,
	}
	for _, row := range rows {
		if row.Conns != wantConns[row.Name] {
			t.Errorf("%s: %d connections, want %d", row.Name, row.Conns, wantConns[row.Name])
		}
		if row.Degrees[3] != want[row.Name] {
			t.Errorf("%s: combined degree %d, paper has %d", row.Name, row.Degrees[3], want[row.Name])
		}
	}
}

func TestTable5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	torus := topology.NewTorus(8, 8)
	rows, err := experiments.Table5(torus, experiments.Table5Config{
		FixedDegrees: []int{1, 5},
		GSSizes:      []int{64},
		P3MSizes:     []int{32},
	})
	if err != nil {
		t.Fatal(err)
	}
	// GS 64, TSCF, P3M 1-5: seven rows.
	if len(rows) != 7 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if len(row.TimedOut) > 0 {
			t.Errorf("%s %s: timed out at degrees %v", row.Pattern, row.Size, row.TimedOut)
		}
		for k, dt := range row.Dynamic {
			if dt <= row.Compiled {
				t.Errorf("%s %s: dynamic K=%d (%d) not slower than compiled (%d)",
					row.Pattern, row.Size, k, dt, row.Compiled)
			}
		}
	}
}

// TestTablesDeterministicAcrossWorkers locks in the sweep-engine contract at
// the table level: every randomized or simulated table must come out
// byte-identical whether its trials ran serially or on a pool.
func TestTablesDeterministicAcrossWorkers(t *testing.T) {
	torus := topology.NewTorus(8, 8)

	t1 := func(workers int) interface{} {
		rows, err := experiments.Table1(torus, experiments.Table1Config{
			Sizes: []int{400, 1600}, Trials: 6, Seed: 1996, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	t2 := func(workers int) interface{} {
		rows, err := experiments.Table2(torus, experiments.Table2Config{
			Redistributions: 20, Seed: 1996, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	t5 := func(workers int) interface{} {
		rows, err := experiments.Table5(torus, experiments.Table5Config{
			FixedDegrees: []int{2, 5}, GSSizes: []int{64}, P3MSizes: []int{32}, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	for _, tc := range []struct {
		name string
		run  func(workers int) interface{}
	}{
		{"table1", t1},
		{"table2", t2},
		{"table5", t5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if tc.name == "table5" && testing.Short() {
				t.Skip("short mode")
			}
			serial := tc.run(1)
			for _, workers := range []int{4, 0} {
				if got := tc.run(workers); !reflect.DeepEqual(serial, got) {
					t.Fatalf("workers=%d: rows differ from the serial run", workers)
				}
			}
		})
	}
}

func TestImprovement(t *testing.T) {
	if got := experiments.Improvement(100, 50); got != 50 {
		t.Errorf("Improvement(100, 50) = %f", got)
	}
	if got := experiments.Improvement(0, 0); got != 0 {
		t.Errorf("Improvement(0, 0) = %f", got)
	}
}

func TestAlgorithmNamesAligned(t *testing.T) {
	if len(experiments.Algorithms()) != len(experiments.AlgorithmNames()) {
		t.Fatal("algorithms and names misaligned")
	}
	for i, s := range experiments.Algorithms() {
		if s.Name() != experiments.AlgorithmNames()[i] {
			t.Errorf("column %d: %q vs %q", i, s.Name(), experiments.AlgorithmNames()[i])
		}
	}
}

// Package multihop implements the paper's second strategy for
// communication patterns unknown at compile time (Section 3.3): use static
// TDM to embed a low-degree *logical* topology into the physical network
// and emulate a multihop machine over it. Messages travel the virtual
// topology hop by hop, with store-and-forward at intermediate PEs; no
// runtime circuit establishment is ever needed, and the TDM degree is that
// of the small embedded pattern (6 for a hypercube on 64 PEs) instead of
// the 64-slot all-to-all fallback.
//
// The trade: each virtual hop re-injects the message, so latency grows
// with the virtual path length and intermediate PEs spend cycles
// forwarding. The paper says a detailed comparison of the two strategies
// is beyond its scope; RunEmulation plus the AAPC fallback simulation make
// that comparison runnable.
package multihop

import (
	"container/heap"
	"fmt"

	"repro/internal/network"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/sim"
)

// VirtualTopology is the logical graph embedded by static TDM. Neighbor
// returns the next virtual hop from `cur` toward `dst` and must converge
// (strictly reduce some distance metric).
type VirtualTopology interface {
	// Name describes the virtual topology.
	Name() string
	// Links returns the virtual links to embed (one circuit per ordered
	// neighbor pair).
	Links(nodes int) (request.Set, error)
	// NextHop returns the neighbor to forward to on the route cur -> dst.
	NextHop(nodes, cur, dst int) (int, error)
}

// HypercubeVirtual routes e-cube over a virtual hypercube: correct the
// lowest differing address bit first.
type HypercubeVirtual struct{}

// Name implements VirtualTopology.
func (HypercubeVirtual) Name() string { return "virtual-hypercube" }

// Links implements VirtualTopology.
func (HypercubeVirtual) Links(nodes int) (request.Set, error) {
	if nodes <= 1 || nodes&(nodes-1) != 0 {
		return nil, fmt.Errorf("multihop: hypercube needs a power-of-two PE count, got %d", nodes)
	}
	var set request.Set
	for i := 0; i < nodes; i++ {
		for b := 1; b < nodes; b <<= 1 {
			set = append(set, request.Request{Src: network.NodeID(i), Dst: network.NodeID(i ^ b)})
		}
	}
	return set, nil
}

// NextHop implements VirtualTopology.
func (HypercubeVirtual) NextHop(nodes, cur, dst int) (int, error) {
	diff := cur ^ dst
	if diff == 0 {
		return 0, fmt.Errorf("multihop: next hop of %d toward itself", cur)
	}
	bit := diff & (-diff)
	return cur ^ bit, nil
}

// RingVirtual routes around a virtual ring, taking the shorter direction.
type RingVirtual struct{}

// Name implements VirtualTopology.
func (RingVirtual) Name() string { return "virtual-ring" }

// Links implements VirtualTopology.
func (RingVirtual) Links(nodes int) (request.Set, error) {
	if nodes < 3 {
		return nil, fmt.Errorf("multihop: ring needs >= 3 PEs, got %d", nodes)
	}
	var set request.Set
	for i := 0; i < nodes; i++ {
		set = append(set,
			request.Request{Src: network.NodeID(i), Dst: network.NodeID((i + 1) % nodes)},
			request.Request{Src: network.NodeID(i), Dst: network.NodeID((i - 1 + nodes) % nodes)},
		)
	}
	return set, nil
}

// NextHop implements VirtualTopology.
func (RingVirtual) NextHop(nodes, cur, dst int) (int, error) {
	if cur == dst {
		return 0, fmt.Errorf("multihop: next hop of %d toward itself", cur)
	}
	fwd := ((dst-cur)%nodes + nodes) % nodes
	if 2*fwd <= nodes {
		return (cur + 1) % nodes, nil
	}
	return (cur - 1 + nodes) % nodes, nil
}

// Emulation is a compiled multihop fabric: the virtual topology's links
// scheduled into TDM slots on the physical network.
type Emulation struct {
	Virtual  VirtualTopology
	Nodes    int
	Schedule *schedule.Result
}

// Compile embeds the virtual topology on the physical one.
func Compile(phys network.Topology, v VirtualTopology, sched schedule.Scheduler) (*Emulation, error) {
	if sched == nil {
		sched = schedule.Combined{}
	}
	nodes := network.TerminalCount(phys)
	links, err := v.Links(nodes)
	if err != nil {
		return nil, err
	}
	res, err := sched.Schedule(phys, links.Dedup())
	if err != nil {
		return nil, err
	}
	return &Emulation{Virtual: v, Nodes: nodes, Schedule: res}, nil
}

// Degree returns the TDM degree of the embedded virtual fabric.
func (e *Emulation) Degree() int { return e.Schedule.Degree() }

// Result reports an emulation run.
type Result struct {
	// Time is the slot of the last delivery.
	Time int
	// Finish holds per-message delivery slots.
	Finish []int
	// VirtualHops is the total number of virtual-link traversals.
	VirtualHops int
}

// hopEvent drives the per-virtual-link FIFO simulation.
type hopEvent struct {
	time int
	msg  int
	at   int // current PE
	seq  int
}

type hopQueue []hopEvent

func (q hopQueue) Len() int { return len(q) }
func (q hopQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q hopQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *hopQueue) Push(x any)   { *q = append(*q, x.(hopEvent)) }
func (q *hopQueue) Pop() any {
	old := *q
	e := old[len(old)-1]
	*q = old[:len(old)-1]
	return e
}

// RunEmulation sends the messages over the virtual fabric. Each virtual
// link is a compiled circuit in TDM slot u of the K-slot frame carrying one
// flit per frame; a message of F flits occupies its current virtual link
// for F frames, and virtual links serve messages FIFO (store-and-forward at
// the intermediate PEs, ForwardDelay slots per store).
func (e *Emulation) RunEmulation(msgs []sim.Message, forwardDelay int) (*Result, error) {
	if forwardDelay < 0 {
		return nil, fmt.Errorf("multihop: negative forward delay")
	}
	k := e.Degree()
	res := &Result{Finish: make([]int, len(msgs))}
	free := make(map[request.Request]int) // virtual link -> next free slot time
	var q hopQueue
	seq := 0
	push := func(t, msg, at int) {
		heap.Push(&q, hopEvent{time: t, msg: msg, at: at, seq: seq})
		seq++
	}
	for i, m := range msgs {
		if m.Src == m.Dst || m.Flits < 1 {
			return nil, fmt.Errorf("multihop: bad message %+v", m)
		}
		if m.Src < 0 || m.Src >= e.Nodes || m.Dst < 0 || m.Dst >= e.Nodes {
			return nil, fmt.Errorf("multihop: message %+v outside 0..%d", m, e.Nodes-1)
		}
		push(m.Start, i, m.Src)
	}
	remaining := len(msgs)
	for q.Len() > 0 {
		ev := heap.Pop(&q).(hopEvent)
		m := msgs[ev.msg]
		if ev.at == m.Dst {
			res.Finish[ev.msg] = ev.time
			if ev.time > res.Time {
				res.Time = ev.time
			}
			remaining--
			continue
		}
		next, err := e.Virtual.NextHop(e.Nodes, ev.at, m.Dst)
		if err != nil {
			return nil, err
		}
		vlink := request.Request{Src: network.NodeID(ev.at), Dst: network.NodeID(next)}
		slot, ok := e.Schedule.Slot[vlink]
		if !ok {
			return nil, fmt.Errorf("multihop: virtual link %v not embedded", vlink)
		}
		// The message queues on the virtual link, then streams one flit per
		// frame starting at the link's slot.
		start := ev.time
		if free[vlink] > start {
			start = free[vlink]
		}
		first := align(start, slot, k)
		done := first + 1 + (m.Flits-1)*k
		free[vlink] = done
		res.VirtualHops++
		push(done+forwardDelay, ev.msg, next)
	}
	if remaining != 0 {
		return nil, fmt.Errorf("multihop: %d messages undelivered (internal error)", remaining)
	}
	return res, nil
}

// align returns the first t' >= t with t' mod k == slot.
func align(t, slot, k int) int {
	r := t % k
	return t + (slot-r+k)%k
}

package multihop_test

import (
	"math/rand"
	"testing"

	"repro/internal/multihop"
	"repro/internal/patterns"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/topology"
)

func hypercubeEmulation(t *testing.T) *multihop.Emulation {
	t.Helper()
	torus := topology.NewTorus(8, 8)
	e, err := multihop.Compile(torus, multihop.HypercubeVirtual{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCompileEmbedsHypercubeAtLowDegree(t *testing.T) {
	e := hypercubeEmulation(t)
	if e.Degree() > 8 {
		t.Errorf("virtual hypercube degree %d; expected near the port bound 6", e.Degree())
	}
	if e.Degree() >= 64 {
		t.Error("embedding is no cheaper than the all-to-all fallback")
	}
}

func TestNextHopConverges(t *testing.T) {
	for _, v := range []multihop.VirtualTopology{multihop.HypercubeVirtual{}, multihop.RingVirtual{}} {
		for s := 0; s < 64; s++ {
			for d := 0; d < 64; d++ {
				if s == d {
					continue
				}
				cur, hops := s, 0
				for cur != d {
					next, err := v.NextHop(64, cur, d)
					if err != nil {
						t.Fatalf("%s: %v", v.Name(), err)
					}
					cur = next
					hops++
					if hops > 64 {
						t.Fatalf("%s: route %d->%d does not converge", v.Name(), s, d)
					}
				}
			}
		}
	}
}

func TestRunEmulationDeliversEverything(t *testing.T) {
	e := hypercubeEmulation(t)
	rng := rand.New(rand.NewSource(3))
	var msgs []sim.Message
	for i := 0; i < 200; i++ {
		s := rng.Intn(64)
		d := rng.Intn(64)
		if s == d {
			continue
		}
		msgs = append(msgs, sim.Message{Src: s, Dst: d, Flits: 1 + rng.Intn(4)})
	}
	out, err := e.RunEmulation(msgs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range out.Finish {
		if f <= 0 {
			t.Fatalf("message %d undelivered", i)
		}
	}
	if out.VirtualHops < len(msgs) {
		t.Error("fewer virtual hops than messages")
	}
}

func TestRunEmulationSingleMessageLatency(t *testing.T) {
	e := hypercubeEmulation(t)
	// 1 -> 2: addresses differ in two bits -> exactly two virtual hops.
	out, err := e.RunEmulation([]sim.Message{{Src: 1, Dst: 2, Flits: 1}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.VirtualHops != 2 {
		t.Errorf("virtual hops = %d, want 2", out.VirtualHops)
	}
	k := e.Degree()
	if out.Time > 2*(k+1) {
		t.Errorf("latency %d exceeds two full frames (K=%d)", out.Time, k)
	}
}

func TestRunEmulationSerializesOnVirtualLinks(t *testing.T) {
	e := hypercubeEmulation(t)
	// Two messages over the same single virtual link 0 -> 1.
	msgs := []sim.Message{
		{Src: 0, Dst: 1, Flits: 10},
		{Src: 0, Dst: 1, Flits: 10},
	}
	out, err := e.RunEmulation(msgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := e.Degree()
	if out.Time < 20*k-k {
		t.Errorf("time %d; 20 flits must serialize on one virtual link (K=%d)", out.Time, k)
	}
}

// TestEmulationVsFallbackTradeoff runs the comparison the paper deferred:
// virtual-hypercube emulation against the direct AAPC fallback on uniform
// random traffic. The emulation runs a 8-10x shallower TDM frame but pays
// multiple hops; neither dominates universally, which is exactly why the
// paper calls it a trade-off.
func TestEmulationVsFallbackTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	torus := topology.NewTorus(8, 8)
	e := hypercubeEmulation(t)
	fallback, err := schedule.OrderedAAPC{}.Schedule(torus, patterns.AllToAll(64))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	msgs, err := sim.OpenLoop(rng, sim.OpenLoopConfig{Nodes: 64, MessagesPerNode: 10, Flits: 2, MeanGap: 500})
	if err != nil {
		t.Fatal(err)
	}
	emu, err := e.RunEmulation(msgs, 2)
	if err != nil {
		t.Fatal(err)
	}
	emuLat, err := sim.MeanLatency(msgs, emu.Finish)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sim.RunCompiled(fallback, msgs)
	if err != nil {
		t.Fatal(err)
	}
	directLat, err := sim.MeanLatency(msgs, direct.Finish)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("uniform traffic: virtual-hypercube emulation %.1f slots/msg (degree %d), AAPC fallback %.1f slots/msg (degree %d)",
		emuLat, e.Degree(), directLat, fallback.Degree())
	if emuLat <= 0 || directLat <= 0 {
		t.Error("latencies must be positive")
	}
}

func TestRunEmulationErrors(t *testing.T) {
	e := hypercubeEmulation(t)
	if _, err := e.RunEmulation([]sim.Message{{Src: 0, Dst: 0, Flits: 1}}, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := e.RunEmulation([]sim.Message{{Src: 0, Dst: 99, Flits: 1}}, 0); err == nil {
		t.Error("out-of-range accepted")
	}
	if _, err := e.RunEmulation([]sim.Message{{Src: 0, Dst: 1, Flits: 1}}, -1); err == nil {
		t.Error("negative forward delay accepted")
	}
}

func TestVirtualLinkErrors(t *testing.T) {
	if _, err := (multihop.HypercubeVirtual{}).Links(48); err == nil {
		t.Error("non-power-of-two hypercube accepted")
	}
	if _, err := (multihop.RingVirtual{}).Links(2); err == nil {
		t.Error("2-node ring accepted")
	}
	if _, err := (multihop.HypercubeVirtual{}).NextHop(64, 5, 5); err == nil {
		t.Error("self next-hop accepted")
	}
}

func TestRingEmulation(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	e, err := multihop.Compile(torus, multihop.RingVirtual{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.Degree() != 2 {
		t.Errorf("virtual ring degree %d, want 2", e.Degree())
	}
	out, err := e.RunEmulation([]sim.Message{{Src: 0, Dst: 32, Flits: 1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.VirtualHops != 32 {
		t.Errorf("0->32 on a 64-ring took %d hops, want 32", out.VirtualHops)
	}
}

// Package redist implements block-cyclic data distributions of a 3-D array
// and computes the interprocessor communication generated when an array is
// redistributed between two distributions — the Table 2 workload and the
// P3M patterns of the paper.
//
// A dimension distributed as p:block(s) assigns index x to processor
// coordinate (x/s) mod p. A dimension written ":" is not distributed
// (p = 1). Processor coordinates are linearized row-major into PE ranks, so
// a (4,4,4) grid and a (1,1,64) grid both address the same 64 PEs.
package redist

import (
	"fmt"
	"math/rand"

	"repro/internal/network"
	"repro/internal/request"
)

// DimDist is the distribution of one array dimension: P processors with
// block size B. P == 1 means the dimension is not distributed.
type DimDist struct {
	P int
	B int
}

// Dist is a block-cyclic distribution of a 3-D array over a 3-D processor
// grid. The grid dimensions multiply to the total PE count.
type Dist struct {
	Dims [3]DimDist
}

// NewDist builds a distribution and validates it against the array shape:
// every processor count and block size must be positive.
func NewDist(dims [3]DimDist) (Dist, error) {
	for i, d := range dims {
		if d.P < 1 {
			return Dist{}, fmt.Errorf("redist: dimension %d has %d processors", i, d.P)
		}
		if d.B < 1 {
			return Dist{}, fmt.Errorf("redist: dimension %d has block size %d", i, d.B)
		}
	}
	return Dist{Dims: dims}, nil
}

// Procs returns the total number of processors in the grid.
func (d Dist) Procs() int { return d.Dims[0].P * d.Dims[1].P * d.Dims[2].P }

// Owner returns the PE rank owning array element idx.
func (d Dist) Owner(idx [3]int) int {
	c0 := (idx[0] / d.Dims[0].B) % d.Dims[0].P
	c1 := (idx[1] / d.Dims[1].B) % d.Dims[1].P
	c2 := (idx[2] / d.Dims[2].B) % d.Dims[2].P
	return (c0*d.Dims[1].P+c1)*d.Dims[2].P + c2
}

// String renders the distribution in the paper's (p:block(s), ...) notation.
func (d Dist) String() string {
	part := func(dd DimDist) string {
		if dd.P == 1 {
			return ":"
		}
		return fmt.Sprintf("%d:block(%d)", dd.P, dd.B)
	}
	return fmt.Sprintf("(%s, %s, %s)", part(d.Dims[0]), part(d.Dims[1]), part(d.Dims[2]))
}

// Pattern is a redistribution communication pattern: the connection
// requests plus the number of array elements each connection carries.
type Pattern struct {
	Reqs   request.Set
	Volume map[request.Request]int
}

// TotalElements returns the number of elements that change owner.
func (p Pattern) TotalElements() int {
	sum := 0
	for _, v := range p.Volume {
		sum += v
	}
	return sum
}

// Redistribute computes the communication pattern that moves an array of
// the given shape from distribution `from` to distribution `to`. The two
// grids must address the same number of PEs. Per-dimension transfer-count
// matrices are combined by the product rule (ownership factorizes across
// dimensions), so the cost is O(shape[0]+shape[1]+shape[2]) scans plus one
// pass over the nonzero (source, destination) coordinate combinations.
func Redistribute(shape [3]int, from, to Dist) (Pattern, error) {
	if from.Procs() != to.Procs() {
		return Pattern{}, fmt.Errorf("redist: grids address %d and %d PEs", from.Procs(), to.Procs())
	}
	for i, n := range shape {
		if n < 1 {
			return Pattern{}, fmt.Errorf("redist: dimension %d has extent %d", i, n)
		}
	}
	// counts[i][cs*to.P+cd] = number of indices x in dimension i owned by
	// source coordinate cs under `from` and destination coordinate cd under
	// `to`. Dense per-dimension matrices (the coordinate spaces are tiny)
	// iterate in index order, so Reqs comes out in one canonical order on
	// every run — map iteration here used to scramble it, which leaked
	// run-to-run jitter into every downstream scheduler and simulator.
	var counts [3][]int
	for i := 0; i < 3; i++ {
		fd, td := from.Dims[i], to.Dims[i]
		counts[i] = make([]int, fd.P*td.P)
		for x := 0; x < shape[i]; x++ {
			cs := (x / fd.B) % fd.P
			cd := (x / td.B) % td.P
			counts[i][cs*td.P+cd]++
		}
	}
	pat := Pattern{Volume: make(map[request.Request]int)}
	for k0, n0 := range counts[0] {
		if n0 == 0 {
			continue
		}
		for k1, n1 := range counts[1] {
			if n1 == 0 {
				continue
			}
			for k2, n2 := range counts[2] {
				if n2 == 0 {
					continue
				}
				s0, d0 := k0/to.Dims[0].P, k0%to.Dims[0].P
				s1, d1 := k1/to.Dims[1].P, k1%to.Dims[1].P
				s2, d2 := k2/to.Dims[2].P, k2%to.Dims[2].P
				src := (s0*from.Dims[1].P+s1)*from.Dims[2].P + s2
				dst := (d0*to.Dims[1].P+d1)*to.Dims[2].P + d2
				if src == dst {
					continue
				}
				r := request.Request{Src: network.NodeID(src), Dst: network.NodeID(dst)}
				if _, seen := pat.Volume[r]; !seen {
					pat.Reqs = append(pat.Reqs, r)
				}
				pat.Volume[r] += n0 * n1 * n2
			}
		}
	}
	return pat, nil
}

// RedistributeBrute computes the same pattern by enumerating every array
// element; it exists to cross-check Redistribute in tests.
func RedistributeBrute(shape [3]int, from, to Dist) (Pattern, error) {
	if from.Procs() != to.Procs() {
		return Pattern{}, fmt.Errorf("redist: grids address %d and %d PEs", from.Procs(), to.Procs())
	}
	pat := Pattern{Volume: make(map[request.Request]int)}
	for x := 0; x < shape[0]; x++ {
		for y := 0; y < shape[1]; y++ {
			for z := 0; z < shape[2]; z++ {
				idx := [3]int{x, y, z}
				src, dst := from.Owner(idx), to.Owner(idx)
				if src == dst {
					continue
				}
				r := request.Request{Src: network.NodeID(src), Dst: network.NodeID(dst)}
				if _, seen := pat.Volume[r]; !seen {
					pat.Reqs = append(pat.Reqs, r)
				}
				pat.Volume[r]++
			}
		}
	}
	return pat, nil
}

// RandomDist draws a random block-cyclic distribution of an array with the
// given shape over `procs` PEs, following the paper's Table 2 recipe: the
// processor count of each dimension is a random power-of-two factorization
// of `procs`, and each block size is a random power of two small enough
// that every processor of the dimension owns a part of the array
// (B * P <= extent).
func RandomDist(rng *rand.Rand, shape [3]int, procs int) (Dist, error) {
	if procs <= 0 || procs&(procs-1) != 0 {
		return Dist{}, fmt.Errorf("redist: processor count %d not a power of two", procs)
	}
	logP := 0
	for 1<<logP < procs {
		logP++
	}
	// Random composition of logP into three parts, rejecting assignments
	// where some dimension cannot host its processors (P > extent).
	for {
		a := rng.Intn(logP + 1)
		b := rng.Intn(logP + 1 - a)
		parts := [3]int{a, b, logP - a - b}
		ok := true
		var dims [3]DimDist
		for i := 0; i < 3; i++ {
			p := 1 << parts[i]
			if p > shape[i] {
				ok = false
				break
			}
			maxB := shape[i] / p // largest block size that keeps every PE non-empty
			// Draw a power-of-two block size in [1, maxB].
			choices := 0
			for 1<<choices <= maxB {
				choices++
			}
			dims[i] = DimDist{P: p, B: 1 << rng.Intn(choices)}
		}
		if !ok {
			continue
		}
		return NewDist(dims)
	}
}

// RandomRedistribution draws a random source/destination distribution pair
// and returns the resulting pattern, redrawing when the redistribution
// produces no communication at all (identical distributions).
func RandomRedistribution(rng *rand.Rand, shape [3]int, procs int) (Pattern, Dist, Dist, error) {
	for {
		from, err := RandomDist(rng, shape, procs)
		if err != nil {
			return Pattern{}, Dist{}, Dist{}, err
		}
		to, err := RandomDist(rng, shape, procs)
		if err != nil {
			return Pattern{}, Dist{}, Dist{}, err
		}
		pat, err := Redistribute(shape, from, to)
		if err != nil {
			return Pattern{}, Dist{}, Dist{}, err
		}
		if len(pat.Reqs) == 0 {
			continue
		}
		return pat, from, to, nil
	}
}

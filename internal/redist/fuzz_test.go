package redist_test

import (
	"testing"

	"repro/internal/redist"
)

// FuzzRedistribute cross-checks the factorized redistribution computation
// against brute-force element enumeration for arbitrary distribution
// parameters.
func FuzzRedistribute(f *testing.F) {
	f.Add(uint8(2), uint8(2), uint8(1), uint8(4), uint8(1), uint8(2), uint8(4), uint8(1))
	f.Add(uint8(4), uint8(1), uint8(1), uint8(1), uint8(2), uint8(2), uint8(2), uint8(4))
	// Identity redistribution: source and target distributions coincide, so
	// every transfer is a processor-local (p, p) pair — the degenerate
	// pattern whose requests all disappear as self-loops downstream, and
	// whose repeated (s, d) pairs are pure route-cache hits when scheduled.
	f.Add(uint8(2), uint8(2), uint8(1), uint8(4), uint8(2), uint8(2), uint8(1), uint8(4))
	f.Add(uint8(3), uint8(0), uint8(0), uint8(3), uint8(3), uint8(0), uint8(0), uint8(3))
	// Single-processor blocks: maximal duplication of communicating pairs
	// (every element pair between the same two PEs), the Dedup stress case.
	f.Add(uint8(0), uint8(3), uint8(3), uint8(0), uint8(3), uint8(3), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, p0, b0, p1, b1, q0, c0, q1, c1 uint8) {
		norm := func(v uint8, max int) int {
			n := 1 << (int(v) % 4)
			if n > max {
				n = max
			}
			return n
		}
		shape := [3]int{8, 8, 4}
		from := redist.Dist{Dims: [3]redist.DimDist{
			{P: norm(p0, 8), B: norm(b0, 8)},
			{P: norm(p1, 8), B: norm(b1, 8)},
			{P: 1, B: 4},
		}}
		to := redist.Dist{Dims: [3]redist.DimDist{
			{P: norm(q0, 8), B: norm(c0, 8)},
			{P: norm(q1, 8), B: norm(c1, 8)},
			{P: 1, B: 4},
		}}
		if from.Procs() != to.Procs() {
			return
		}
		fast, err := redist.Redistribute(shape, from, to)
		if err != nil {
			t.Fatal(err)
		}
		brute, err := redist.RedistributeBrute(shape, from, to)
		if err != nil {
			t.Fatal(err)
		}
		if len(fast.Volume) != len(brute.Volume) {
			t.Fatalf("pair counts differ: %d vs %d", len(fast.Volume), len(brute.Volume))
		}
		for r, v := range brute.Volume {
			if fast.Volume[r] != v {
				t.Fatalf("pair %v: %d vs %d", r, fast.Volume[r], v)
			}
		}
	})
}

// FuzzShiftPattern cross-checks shifted-reference communication against
// brute force for arbitrary offsets.
func FuzzShiftPattern(f *testing.F) {
	f.Add(int8(1), int8(0), int8(-1))
	f.Add(int8(-7), int8(3), int8(2))
	// Zero offset: the shift degenerates to pure self-communication and the
	// request set under Dedup collapses to nothing schedulable.
	f.Add(int8(0), int8(0), int8(0))
	// Offsets that are exact multiples of the per-PE block extent keep all
	// traffic between the same few PE pairs — repeated (s, d) pairs that
	// exercise the route cache and duplicate-request handling downstream.
	f.Add(int8(4), int8(-4), int8(1))
	f.Add(int8(8), int8(2), int8(-2))
	f.Fuzz(func(t *testing.T, o0, o1, o2 int8) {
		shape := [3]int{8, 8, 8}
		d := redist.Dist{Dims: [3]redist.DimDist{{P: 2, B: 4}, {P: 4, B: 2}, {P: 2, B: 1}}}
		off := [3]int{int(o0) % 8, int(o1) % 8, int(o2) % 8}
		fast, err := redist.ShiftPattern(shape, d, off)
		if err != nil {
			t.Fatal(err)
		}
		brute, err := redist.ShiftPatternBrute(shape, d, off)
		if err != nil {
			t.Fatal(err)
		}
		if len(fast.Volume) != len(brute.Volume) {
			t.Fatalf("pair counts differ: %d vs %d", len(fast.Volume), len(brute.Volume))
		}
		for r, v := range brute.Volume {
			if fast.Volume[r] != v {
				t.Fatalf("pair %v: %d vs %d", r, fast.Volume[r], v)
			}
		}
	})
}

package redist_test

import (
	"testing"
	"testing/quick"

	"repro/internal/redist"
)

func TestShiftPatternMatchesBrute(t *testing.T) {
	shape := [3]int{16, 16, 16}
	d := mustDist(t, 4, 4, 2, 8, 2, 8)
	offsets := [][3]int{
		{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, 0, -1},
		{1, 1, 0}, {-3, 0, 5}, {4, -4, 4},
	}
	for _, off := range offsets {
		fast, err := redist.ShiftPattern(shape, d, off)
		if err != nil {
			t.Fatalf("off %v: %v", off, err)
		}
		brute, err := redist.ShiftPatternBrute(shape, d, off)
		if err != nil {
			t.Fatalf("off %v: %v", off, err)
		}
		if len(fast.Volume) != len(brute.Volume) {
			t.Fatalf("off %v: %d vs %d pairs", off, len(fast.Volume), len(brute.Volume))
		}
		for r, v := range brute.Volume {
			if fast.Volume[r] != v {
				t.Fatalf("off %v pair %v: %d vs %d", off, r, fast.Volume[r], v)
			}
		}
	}
}

func TestShiftPatternProperty(t *testing.T) {
	shape := [3]int{8, 8, 8}
	d := mustDist(t, 2, 4, 2, 2, 2, 4)
	f := func(o0, o1, o2 int8) bool {
		off := [3]int{int(o0) % 8, int(o1) % 8, int(o2) % 8}
		fast, err := redist.ShiftPattern(shape, d, off)
		if err != nil {
			return false
		}
		brute, err := redist.ShiftPatternBrute(shape, d, off)
		if err != nil {
			return false
		}
		if len(fast.Volume) != len(brute.Volume) {
			return false
		}
		for r, v := range brute.Volume {
			if fast.Volume[r] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestShiftPatternNeighborExchange(t *testing.T) {
	// 1-D block distribution, shift +1: PE p receives its upper boundary
	// element from PE p+1 — the GS pattern, one element per boundary.
	d := mustDist(t, 4, 4, 1, 1, 1, 1)
	pat, err := redist.ShiftPattern([3]int{16, 1, 1}, d, [3]int{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(pat.Reqs) != 3 {
		t.Fatalf("got %d connections, want 3 (open chain)", len(pat.Reqs))
	}
	for _, r := range pat.Reqs {
		if int(r.Src) != int(r.Dst)+1 {
			t.Fatalf("unexpected connection %v for +1 shift", r)
		}
		if pat.Volume[r] != 1 {
			t.Fatalf("boundary volume %d, want 1", pat.Volume[r])
		}
	}
}

func TestShiftPatternRejectsHugeOffsets(t *testing.T) {
	d := mustDist(t, 4, 4, 1, 1, 1, 1)
	if _, err := redist.ShiftPattern([3]int{16, 1, 1}, d, [3]int{16, 0, 0}); err == nil {
		t.Error("offset equal to extent accepted")
	}
	if _, err := redist.ShiftPattern([3]int{0, 1, 1}, d, [3]int{0, 0, 0}); err == nil {
		t.Error("zero extent accepted")
	}
}

func TestShiftPatternCyclicDistribution(t *testing.T) {
	// Pure cyclic (block 1) distribution: a +1 shift makes *every* element
	// cross PEs — the compiler would see a dense pattern where block
	// layouts see a thin boundary. Both are computed; the contrast is what
	// makes layout choice matter.
	cyclic := mustDist(t, 4, 1, 1, 1, 1, 1)
	block := mustDist(t, 4, 4, 1, 1, 1, 1)
	pc, err := redist.ShiftPattern([3]int{16, 1, 1}, cyclic, [3]int{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := redist.ShiftPattern([3]int{16, 1, 1}, block, [3]int{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if pc.TotalElements() <= pb.TotalElements() {
		t.Errorf("cyclic shift moves %d elements, block moves %d; cyclic must move more",
			pc.TotalElements(), pb.TotalElements())
	}
	if pc.TotalElements() != 15 {
		t.Errorf("cyclic +1 shift moves %d elements, want 15 (all interior)", pc.TotalElements())
	}
}

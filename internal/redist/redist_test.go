package redist_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/redist"
	"repro/internal/request"
)

func mustDist(t *testing.T, p0, b0, p1, b1, p2, b2 int) redist.Dist {
	t.Helper()
	d, err := redist.NewDist([3]redist.DimDist{{P: p0, B: b0}, {P: p1, B: b1}, {P: p2, B: b2}})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDistRejectsBadInputs(t *testing.T) {
	if _, err := redist.NewDist([3]redist.DimDist{{P: 0, B: 1}, {P: 1, B: 1}, {P: 1, B: 1}}); err == nil {
		t.Error("zero processor count accepted")
	}
	if _, err := redist.NewDist([3]redist.DimDist{{P: 1, B: 0}, {P: 1, B: 1}, {P: 1, B: 1}}); err == nil {
		t.Error("zero block size accepted")
	}
}

func TestOwnerBlockCyclic(t *testing.T) {
	// 4 processors, block 2, one dimension: indices 0,1 -> 0; 2,3 -> 1; ...
	// 8,9 -> 0 again (cyclic).
	d := mustDist(t, 4, 2, 1, 1, 1, 1)
	cases := map[int]int{0: 0, 1: 0, 2: 1, 4: 2, 6: 3, 8: 0, 9: 0, 10: 1}
	for x, want := range cases {
		if got := d.Owner([3]int{x, 0, 0}); got != want {
			t.Errorf("Owner(x=%d) = %d, want %d", x, got, want)
		}
	}
}

func TestOwnerLinearization(t *testing.T) {
	// 2x2x2 grid: coordinates linearize row-major.
	d := mustDist(t, 2, 4, 2, 4, 2, 4)
	if got := d.Owner([3]int{0, 0, 0}); got != 0 {
		t.Errorf("Owner(0,0,0) = %d", got)
	}
	if got := d.Owner([3]int{0, 0, 4}); got != 1 {
		t.Errorf("Owner(0,0,4) = %d", got)
	}
	if got := d.Owner([3]int{0, 4, 0}); got != 2 {
		t.Errorf("Owner(0,4,0) = %d", got)
	}
	if got := d.Owner([3]int{4, 0, 0}); got != 4 {
		t.Errorf("Owner(4,0,0) = %d", got)
	}
}

func TestDistString(t *testing.T) {
	d := mustDist(t, 4, 16, 1, 64, 64, 1)
	want := "(4:block(16), :, 64:block(1))"
	if d.String() != want {
		t.Errorf("String() = %q, want %q", d.String(), want)
	}
}

func TestRedistributeMatchesBruteForce(t *testing.T) {
	shape := [3]int{16, 16, 16}
	cases := [][2]redist.Dist{
		{mustDist(t, 4, 4, 4, 4, 1, 16), mustDist(t, 1, 16, 1, 16, 16, 1)},
		{mustDist(t, 2, 8, 2, 8, 4, 4), mustDist(t, 4, 4, 2, 8, 2, 8)},
		{mustDist(t, 16, 1, 1, 16, 1, 16), mustDist(t, 1, 16, 16, 1, 1, 16)},
		{mustDist(t, 4, 2, 2, 2, 2, 2), mustDist(t, 2, 2, 4, 2, 2, 2)},
	}
	for i, c := range cases {
		fast, err := redist.Redistribute(shape, c[0], c[1])
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		brute, err := redist.RedistributeBrute(shape, c[0], c[1])
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(fast.Volume) != len(brute.Volume) {
			t.Fatalf("case %d: %d pairs fast vs %d brute", i, len(fast.Volume), len(brute.Volume))
		}
		for r, v := range brute.Volume {
			if fast.Volume[r] != v {
				t.Fatalf("case %d: pair %v volume %d fast vs %d brute", i, r, fast.Volume[r], v)
			}
		}
	}
}

func TestRedistributePropertyMatchesBrute(t *testing.T) {
	shape := [3]int{8, 8, 8}
	f := func(s0, s1, s2, d0, d1, d2 uint8) bool {
		pow2 := func(b uint8, max int) int {
			v := 1 << (int(b) % 4) // 1,2,4,8
			if v > max {
				v = max
			}
			return v
		}
		from := redist.Dist{Dims: [3]redist.DimDist{
			{P: pow2(s0, 8), B: pow2(s1, 8)},
			{P: pow2(s1, 8), B: pow2(s2, 8)},
			{P: pow2(s2, 8), B: pow2(s0, 8)},
		}}
		to := redist.Dist{Dims: [3]redist.DimDist{
			{P: pow2(d0, 8), B: pow2(d1, 8)},
			{P: pow2(d1, 8), B: pow2(d2, 8)},
			{P: pow2(d2, 8), B: pow2(d0, 8)},
		}}
		if from.Procs() != to.Procs() {
			return true // incomparable draw; nothing to test
		}
		fast, err := redist.Redistribute(shape, from, to)
		if err != nil {
			return false
		}
		brute, err := redist.RedistributeBrute(shape, from, to)
		if err != nil {
			return false
		}
		if len(fast.Volume) != len(brute.Volume) {
			return false
		}
		for r, v := range brute.Volume {
			if fast.Volume[r] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRedistributeIdentityIsEmpty(t *testing.T) {
	d := mustDist(t, 4, 4, 4, 4, 4, 4)
	pat, err := redist.Redistribute([3]int{16, 16, 16}, d, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(pat.Reqs) != 0 || pat.TotalElements() != 0 {
		t.Errorf("identity redistribution moved %d elements over %d pairs", pat.TotalElements(), len(pat.Reqs))
	}
}

func TestRedistributeConservesElements(t *testing.T) {
	// Total moved elements + stationary elements = array size.
	shape := [3]int{16, 16, 16}
	from := mustDist(t, 4, 4, 4, 4, 1, 16)
	to := mustDist(t, 1, 16, 1, 16, 16, 1)
	pat, err := redist.Redistribute(shape, from, to)
	if err != nil {
		t.Fatal(err)
	}
	stationary := 0
	for x := 0; x < 16; x++ {
		for y := 0; y < 16; y++ {
			for z := 0; z < 16; z++ {
				if from.Owner([3]int{x, y, z}) == to.Owner([3]int{x, y, z}) {
					stationary++
				}
			}
		}
	}
	if pat.TotalElements()+stationary != 16*16*16 {
		t.Errorf("moved %d + stationary %d != %d", pat.TotalElements(), stationary, 16*16*16)
	}
}

func TestRedistributeRejectsMismatchedGrids(t *testing.T) {
	a := mustDist(t, 4, 4, 4, 4, 4, 4)
	b := mustDist(t, 2, 8, 2, 8, 2, 8)
	if _, err := redist.Redistribute([3]int{16, 16, 16}, a, b); err == nil {
		t.Error("mismatched PE counts accepted")
	}
	if _, err := redist.Redistribute([3]int{0, 16, 16}, a, a); err == nil {
		t.Error("zero extent accepted")
	}
}

func TestRandomDistConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shape := [3]int{64, 64, 64}
	for i := 0; i < 200; i++ {
		d, err := redist.RandomDist(rng, shape, 64)
		if err != nil {
			t.Fatal(err)
		}
		if d.Procs() != 64 {
			t.Fatalf("draw %d: %d processors, want 64", i, d.Procs())
		}
		for dim := 0; dim < 3; dim++ {
			p, b := d.Dims[dim].P, d.Dims[dim].B
			if p&(p-1) != 0 || b&(b-1) != 0 {
				t.Fatalf("draw %d dim %d: non-power-of-two p=%d b=%d", i, dim, p, b)
			}
			if b*p > shape[dim] {
				t.Fatalf("draw %d dim %d: block %d x procs %d exceeds extent %d (some PE would be empty)",
					i, dim, b, p, shape[dim])
			}
		}
	}
	if _, err := redist.RandomDist(rng, shape, 48); err == nil {
		t.Error("non-power-of-two processor count accepted")
	}
}

func TestRandomRedistributionNonEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		pat, from, to, err := redist.RandomRedistribution(rng, [3]int{64, 64, 64}, 64)
		if err != nil {
			t.Fatal(err)
		}
		if len(pat.Reqs) == 0 {
			t.Fatalf("draw %d: empty redistribution %s -> %s", i, from, to)
		}
		for _, r := range pat.Reqs {
			if r.Src == r.Dst {
				t.Fatalf("draw %d: self-loop %v", i, r)
			}
			if pat.Volume[r] <= 0 {
				t.Fatalf("draw %d: request %v with volume %d", i, r, pat.Volume[r])
			}
		}
	}
}

func TestTable2ConnectionCountsPlausible(t *testing.T) {
	// The paper's Table 2 buckets redistributions by connection count with
	// a maximum of 4032 (the all-to-all); verify the generator stays in
	// range and can produce dense patterns.
	rng := rand.New(rand.NewSource(5))
	max := 0
	for i := 0; i < 150; i++ {
		pat, _, _, err := redist.RandomRedistribution(rng, [3]int{64, 64, 64}, 64)
		if err != nil {
			t.Fatal(err)
		}
		if len(pat.Reqs) > 4032 {
			t.Fatalf("draw %d: %d connections exceed 4032", i, len(pat.Reqs))
		}
		if len(pat.Reqs) > max {
			max = len(pat.Reqs)
		}
	}
	if max < 1000 {
		t.Errorf("densest of 150 draws has only %d connections; generator too tame", max)
	}
}

func TestPatternRequestsMatchVolumeKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pat, _, _, err := redist.RandomRedistribution(rng, [3]int{64, 64, 64}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(pat.Reqs) != len(pat.Volume) {
		t.Fatalf("%d requests vs %d volume entries", len(pat.Reqs), len(pat.Volume))
	}
	seen := map[request.Request]bool{}
	for _, r := range pat.Reqs {
		if seen[r] {
			t.Fatalf("duplicate request %v", r)
		}
		seen[r] = true
		if _, ok := pat.Volume[r]; !ok {
			t.Fatalf("request %v missing volume", r)
		}
	}
}

package schedule_test

import (
	"math/rand"
	"testing"

	"repro/internal/network"
	"repro/internal/patterns"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/topology"
)

func TestExtendReusesExistingSlots(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	base := request.Set{{Src: 0, Dst: 1}}
	res, err := schedule.Combined{}.Schedule(torus, base)
	if err != nil {
		t.Fatal(err)
	}
	// A conflict-free addition fits the existing slot.
	ext, err := schedule.Extend(res, request.Set{{Src: 8, Dst: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if ext.Degree() != 1 {
		t.Errorf("degree %d, want 1 (new request shares the slot)", ext.Degree())
	}
	if err := ext.Validate(append(base.Clone(), request.Request{Src: 8, Dst: 9})); err != nil {
		t.Fatal(err)
	}
	// The original schedule is untouched.
	if len(res.Configs[0]) != 1 {
		t.Error("Extend mutated the input schedule")
	}
}

func TestExtendAppendsSlotsWhenNeeded(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	base := request.Set{{Src: 0, Dst: 1}}
	res, err := schedule.Combined{}.Schedule(torus, base)
	if err != nil {
		t.Fatal(err)
	}
	// Conflicting additions (same source) must open new slots.
	extra := request.Set{{Src: 0, Dst: 2}, {Src: 0, Dst: 3}}
	ext, err := schedule.Extend(res, extra)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Degree() != 3 {
		t.Errorf("degree %d, want 3", ext.Degree())
	}
	if err := ext.Validate(append(base.Clone(), extra...)); err != nil {
		t.Fatal(err)
	}
}

// TestExtendConflictsOpenNewConfigs drives Extend with requests that
// conflict with every existing configuration — and with each other — so
// every addition must open a fresh configuration. Each case asserts the
// exact degree growth, that the extended schedule validates against the
// union, and that the base Result is not corrupted in the process.
func TestExtendConflictsOpenNewConfigs(t *testing.T) {
	cases := []struct {
		name       string
		topo       network.Topology
		base       request.Set
		extra      request.Set
		wantDegree int
	}{
		{
			// Every extra shares its source with the base circuit and with
			// each other: an optical terminal transmits one circuit per
			// configuration, so none can coexist.
			name:       "same-source",
			topo:       topology.NewTorus(8, 8),
			base:       request.Set{{Src: 0, Dst: 1}},
			extra:      request.Set{{Src: 0, Dst: 2}, {Src: 0, Dst: 3}},
			wantDegree: 3,
		},
		{
			// Symmetric case at the receiver: one circuit per destination
			// per configuration.
			name:       "same-destination",
			topo:       topology.NewTorus(8, 8),
			base:       request.Set{{Src: 1, Dst: 0}},
			extra:      request.Set{{Src: 2, Dst: 0}, {Src: 3, Dst: 0}},
			wantDegree: 3,
		},
		{
			// On a linear array the 0→7 route occupies every forward link;
			// the extras have distinct endpoints but nest inside it (and
			// inside each other), so each must open its own configuration.
			name:       "shared-link",
			topo:       topology.NewLinear(8),
			base:       request.Set{{Src: 0, Dst: 7}},
			extra:      request.Set{{Src: 2, Dst: 5}, {Src: 3, Dst: 4}},
			wantDegree: 3,
		},
		{
			// Duplicates of an already scheduled request conflict with the
			// base and with themselves: three copies need three slots.
			name:       "duplicate-requests",
			topo:       topology.NewTorus(8, 8),
			base:       request.Set{{Src: 0, Dst: 1}},
			extra:      request.Set{{Src: 0, Dst: 1}, {Src: 0, Dst: 1}},
			wantDegree: 3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := schedule.Combined{}.Schedule(tc.topo, tc.base)
			if err != nil {
				t.Fatal(err)
			}
			// Deep snapshot of the base so corruption is detectable even if
			// Extend were to append into shared backing arrays.
			baseConfigs := make([]request.Set, len(res.Configs))
			for k, cfg := range res.Configs {
				baseConfigs[k] = cfg.Clone()
			}
			baseSlots := make(map[request.Request]int, len(res.Slot))
			for q, k := range res.Slot {
				baseSlots[q] = k
			}

			ext, err := schedule.Extend(res, tc.extra)
			if err != nil {
				t.Fatal(err)
			}
			if ext.Degree() != tc.wantDegree {
				t.Errorf("degree %d, want %d (every extra must open a new configuration)", ext.Degree(), tc.wantDegree)
			}
			if err := ext.Validate(append(tc.base.Clone(), tc.extra...)); err != nil {
				t.Errorf("extended schedule invalid: %v", err)
			}
			// The new configurations hold exactly the extras; the originals
			// are carried over unchanged in slot order.
			for k, cfg := range baseConfigs {
				if len(ext.Configs) <= k {
					t.Fatalf("extended schedule lost configuration %d", k)
				}
				if !equalSets(ext.Configs[k], cfg) {
					t.Errorf("configuration %d changed: %v, want %v", k, ext.Configs[k], cfg)
				}
			}

			// The base Result is untouched.
			if len(res.Configs) != len(baseConfigs) {
				t.Fatalf("Extend changed the base degree: %d, want %d", len(res.Configs), len(baseConfigs))
			}
			for k, cfg := range res.Configs {
				if !equalSets(cfg, baseConfigs[k]) {
					t.Errorf("Extend mutated base configuration %d: %v, want %v", k, cfg, baseConfigs[k])
				}
			}
			if len(res.Slot) != len(baseSlots) {
				t.Fatalf("Extend changed the base slot map size: %d, want %d", len(res.Slot), len(baseSlots))
			}
			for q, k := range baseSlots {
				if res.Slot[q] != k {
					t.Errorf("Extend moved base request %v to slot %d, want %d", q, res.Slot[q], k)
				}
			}
		})
	}
}

func equalSets(a, b request.Set) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestExtendMatchesFullRecomputeQuality(t *testing.T) {
	// Extending a parametric pattern should stay close to scheduling the
	// union from scratch; assert within 30% on random splits.
	torus := topology.NewTorus(8, 8)
	rng := rand.New(rand.NewSource(41))
	full, err := patterns.Random(rng, 64, 900)
	if err != nil {
		t.Fatal(err)
	}
	base, extra := full[:600], full[600:]
	res, err := schedule.Combined{}.Schedule(torus, base)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := schedule.Extend(res, extra)
	if err != nil {
		t.Fatal(err)
	}
	if err := ext.Validate(full); err != nil {
		t.Fatal(err)
	}
	scratch, err := schedule.Combined{}.Schedule(torus, full)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("incremental degree %d vs from-scratch %d", ext.Degree(), scratch.Degree())
	if float64(ext.Degree()) > 1.3*float64(scratch.Degree()) {
		t.Errorf("incremental degree %d too far above from-scratch %d", ext.Degree(), scratch.Degree())
	}
}

func TestExtendRejectsInvalid(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	res, err := schedule.Combined{}.Schedule(torus, request.Set{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := schedule.Extend(res, request.Set{{Src: 2, Dst: 2}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := schedule.Extend(res, request.Set{{Src: 0, Dst: 99}}); err == nil {
		t.Error("out-of-range accepted")
	}
}

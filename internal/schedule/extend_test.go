package schedule_test

import (
	"math/rand"
	"testing"

	"repro/internal/patterns"
	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/topology"
)

func TestExtendReusesExistingSlots(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	base := request.Set{{Src: 0, Dst: 1}}
	res, err := schedule.Combined{}.Schedule(torus, base)
	if err != nil {
		t.Fatal(err)
	}
	// A conflict-free addition fits the existing slot.
	ext, err := schedule.Extend(res, request.Set{{Src: 8, Dst: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if ext.Degree() != 1 {
		t.Errorf("degree %d, want 1 (new request shares the slot)", ext.Degree())
	}
	if err := ext.Validate(append(base.Clone(), request.Request{Src: 8, Dst: 9})); err != nil {
		t.Fatal(err)
	}
	// The original schedule is untouched.
	if len(res.Configs[0]) != 1 {
		t.Error("Extend mutated the input schedule")
	}
}

func TestExtendAppendsSlotsWhenNeeded(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	base := request.Set{{Src: 0, Dst: 1}}
	res, err := schedule.Combined{}.Schedule(torus, base)
	if err != nil {
		t.Fatal(err)
	}
	// Conflicting additions (same source) must open new slots.
	extra := request.Set{{Src: 0, Dst: 2}, {Src: 0, Dst: 3}}
	ext, err := schedule.Extend(res, extra)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Degree() != 3 {
		t.Errorf("degree %d, want 3", ext.Degree())
	}
	if err := ext.Validate(append(base.Clone(), extra...)); err != nil {
		t.Fatal(err)
	}
}

func TestExtendMatchesFullRecomputeQuality(t *testing.T) {
	// Extending a parametric pattern should stay close to scheduling the
	// union from scratch; assert within 30% on random splits.
	torus := topology.NewTorus(8, 8)
	rng := rand.New(rand.NewSource(41))
	full, err := patterns.Random(rng, 64, 900)
	if err != nil {
		t.Fatal(err)
	}
	base, extra := full[:600], full[600:]
	res, err := schedule.Combined{}.Schedule(torus, base)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := schedule.Extend(res, extra)
	if err != nil {
		t.Fatal(err)
	}
	if err := ext.Validate(full); err != nil {
		t.Fatal(err)
	}
	scratch, err := schedule.Combined{}.Schedule(torus, full)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("incremental degree %d vs from-scratch %d", ext.Degree(), scratch.Degree())
	if float64(ext.Degree()) > 1.3*float64(scratch.Degree()) {
		t.Errorf("incremental degree %d too far above from-scratch %d", ext.Degree(), scratch.Degree())
	}
}

func TestExtendRejectsInvalid(t *testing.T) {
	torus := topology.NewTorus(8, 8)
	res, err := schedule.Combined{}.Schedule(torus, request.Set{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := schedule.Extend(res, request.Set{{Src: 2, Dst: 2}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := schedule.Extend(res, request.Set{{Src: 0, Dst: 99}}); err == nil {
		t.Error("out-of-range accepted")
	}
}

package schedule_test

import (
	"testing"

	"repro/internal/request"
	"repro/internal/schedule"
	"repro/internal/topology"
)

// benchPattern is the compile-miss workload: a dense random multiset on the
// paper's 8x8 torus, the shape the service schedules per cache miss.
func benchPattern(b *testing.B) (request.Set, *topology.Torus) {
	b.Helper()
	torus := topology.NewTorus(8, 8)
	rng := splitmix64(1996)
	return randomPattern(&rng, 64, 192), torus
}

// BenchmarkCompileMiss measures the arena compile path — what one service
// cache miss costs at the scheduling layer, steady state.
func BenchmarkCompileMiss(b *testing.B) {
	reqs, torus := benchPattern(b)
	st := schedule.NewCompileState()
	var combined schedule.Scheduler = schedule.Combined{} // one interface conversion, outside the loop
	if _, err := st.Compile(combined, torus, reqs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Compile(combined, torus, reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileMissOracle is the same compile on the retained map-based
// core; the ratio to BenchmarkCompileMiss is the bitset-core speedup.
func BenchmarkCompileMissOracle(b *testing.B) {
	reqs, torus := benchPattern(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (schedule.OracleCombined{}.Schedule(torus, reqs)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConflictGraph measures the word-parallel CSR graph build alone.
func BenchmarkConflictGraph(b *testing.B) {
	reqs, torus := benchPattern(b)
	paths, err := reqs.Routes(torus)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		schedule.BuildConflictGraph(torus, paths)
	}
}

// BenchmarkIncrementalUpdate measures one live-schedule patch cycle: Update
// to a drifted target plus Result, alternating between two targets so every
// iteration carries a real diff.
func BenchmarkIncrementalUpdate(b *testing.B) {
	reqs, torus := benchPattern(b)
	drifted := append(reqs[:144:144].Clone(), func() request.Set {
		rng := splitmix64(7)
		return randomPattern(&rng, 64, 48)
	}()...)
	base, err := schedule.Coloring{}.Schedule(torus, reqs)
	if err != nil {
		b.Fatal(err)
	}
	inc, err := schedule.NewIncremental(base)
	if err != nil {
		b.Fatal(err)
	}
	targets := [2]request.Set{drifted, reqs}
	for i := 0; i < 4; i++ { // settle capacities
		if _, _, err := inc.Update(targets[i%2]); err != nil {
			b.Fatal(err)
		}
		inc.Result("coloring+delta")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := inc.Update(targets[i%2]); err != nil {
			b.Fatal(err)
		}
		inc.Result("coloring+delta")
	}
}

package schedule

import (
	"fmt"

	"repro/internal/request"
)

// SplitByDepth adapts a schedule to hardware whose circular shift registers
// hold at most maxDegree states. A pattern whose minimal configuration set
// exceeds the register depth cannot run as one TDM phase; it must execute
// as a sequence of sub-phases of at most maxDegree configurations each,
// with a register rewrite between consecutive sub-phases.
//
// The split preserves configuration contents (each sub-phase is a valid
// schedule on its own) and packs configurations greedily in order, so the
// number of sub-phases is ceil(Degree / maxDegree).
func SplitByDepth(r *Result, maxDegree int) ([]*Result, error) {
	if maxDegree < 1 {
		return nil, fmt.Errorf("schedule: register depth %d < 1", maxDegree)
	}
	if r.Degree() == 0 {
		return nil, nil
	}
	var out []*Result
	for start := 0; start < r.Degree(); start += maxDegree {
		end := start + maxDegree
		if end > r.Degree() {
			end = r.Degree()
		}
		configs := make([]request.Set, end-start)
		copy(configs, r.Configs[start:end])
		out = append(out, newResult(
			fmt.Sprintf("%s[depth<=%d %d/%d]", r.Algorithm, maxDegree, len(out)+1, (r.Degree()+maxDegree-1)/maxDegree),
			r.Topology, configs))
	}
	return out, nil
}

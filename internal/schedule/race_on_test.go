//go:build race

package schedule_test

// raceEnabled reports whether the race detector is active; the allocation
// pins skip under it (instrumentation allocates, and sync.Pool drops puts
// at random to widen the race window).
const raceEnabled = true

package schedule

import (
	"math/bits"
	"sync"

	"repro/internal/cliutil"
	"repro/internal/network"
)

// ConflictGraph is the graph whose vertices are connection requests and
// whose edges join pairs of requests that cannot share a configuration. The
// coloring scheduler colors this graph; the number of colors equals the
// multiplexing degree.
//
// Adjacency is stored as one bitset row per vertex so that degree updates
// and neighborhood scans during coloring stay cache-friendly even for the
// 4032-request all-to-all pattern of the paper's 8x8 torus.
type ConflictGraph struct {
	n    int
	rows [][]uint64
	deg  []int
}

// Parallel-build knobs. They are read once at the start of every
// BuildConflictGraph call; set them during initialization or from tests, not
// concurrently with scheduling.
var (
	// ConflictGraphParallelCutoff is the vertex count below which the graph
	// is built serially: for small request sets the inverted-index pass is
	// already cheap and goroutine fan-out only adds overhead.
	ConflictGraphParallelCutoff = 1024
	// ConflictGraphWorkers is the number of row-construction workers for
	// large graphs; 0 means runtime.GOMAXPROCS(0).
	ConflictGraphWorkers = 0
)

// resourceIndex is the inverted index from each resource (directed link,
// then source port, then destination port) to the requests occupying it, in
// compressed-sparse-row form: resource r's users are
// user[start[r]:start[r+1]]. The flat layout is what the arena reuses
// across compiles — rebuilding it touches no allocator.
type resourceIndex struct {
	start []int32 // len nres+1, prefix sums
	pos   []int32 // scratch: per-resource fill cursor
	user  []int32 // concatenated user lists, in ascending request order
}

// build fills the index for pre-routed requests on a resource space of
// nl links and nn nodes, reusing the receiver's memory.
func (ix *resourceIndex) build(nl, nn int, paths []network.Path) {
	nres := nl + 2*nn
	ix.start = growZero(ix.start, nres+1)
	for _, p := range paths {
		for _, l := range p.Links {
			ix.start[int(l)+1]++
		}
		ix.start[nl+int(p.Src)+1]++
		ix.start[nl+nn+int(p.Dst)+1]++
	}
	for r := 1; r <= nres; r++ {
		ix.start[r] += ix.start[r-1]
	}
	ix.pos = grow(ix.pos, nres)
	copy(ix.pos, ix.start[:nres])
	ix.user = grow(ix.user, int(ix.start[nres]))
	for i, p := range paths {
		for _, l := range p.Links {
			ix.user[ix.pos[l]] = int32(i)
			ix.pos[l]++
		}
		ix.user[ix.pos[nl+int(p.Src)]] = int32(i)
		ix.pos[nl+int(p.Src)]++
		ix.user[ix.pos[nl+nn+int(p.Dst)]] = int32(i)
		ix.pos[nl+nn+int(p.Dst)]++
	}
}

// users returns the requests occupying resource r.
func (ix *resourceIndex) users(r int) []int32 { return ix.user[ix.start[r]:ix.start[r+1]] }

// fillRows constructs adjacency rows [lo, hi): each vertex or-s in the
// users of every resource on its path, clears its own bit, and counts its
// degree. Visiting each edge once from either endpoint, the result is the
// same set-valued adjacency a pairwise resource scan produces, at a word
// write per incidence instead of a read-modify-write per pair.
func fillRows(g *ConflictGraph, nl, nn int, paths []network.Path, ix *resourceIndex, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := g.rows[i]
		p := paths[i]
		for _, l := range p.Links {
			markUsers(row, ix.users(int(l)))
		}
		markUsers(row, ix.users(nl+int(p.Src)))
		markUsers(row, ix.users(nl+nn+int(p.Dst)))
		// The vertex saw itself through every one of its resources.
		row[i>>6] &^= 1 << uint(i&63)
		d := 0
		for _, word := range row {
			d += bits.OnesCount64(word)
		}
		g.deg[i] = d
	}
}

func markUsers(row []uint64, users []int32) {
	for _, j := range users {
		row[j>>6] |= 1 << uint(j&63)
	}
}

// fillAllRows runs fillRows serially or sharded across workers according to
// the package knobs. Worker w owns a contiguous shard of rows, so no two
// workers ever write the same word and the output is identical to the
// serial build: adjacency is a set, so row content does not depend on
// visit order, and degrees are the row population counts either way.
func fillAllRows(g *ConflictGraph, nl, nn int, paths []network.Path, ix *resourceIndex) {
	n := g.n
	workers := cliutil.Workers(ConflictGraphWorkers)
	if n < ConflictGraphParallelCutoff || workers <= 1 {
		fillRows(g, nl, nn, paths, ix, 0, n)
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fillRows(g, nl, nn, paths, ix, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// BuildConflictGraph constructs the conflict graph for pre-routed requests.
// Instead of testing all O(|R|^2) pairs directly, it builds an inverted
// index from each resource to the requests occupying it and or-s each
// vertex's resource user lists into its adjacency row — a word-parallel
// sweep whose cost is one bit write per (vertex, resource-sharing request)
// incidence.
//
// For graphs of at least ConflictGraphParallelCutoff vertices the rows are
// built by ConflictGraphWorkers goroutines. The differential-testing oracle
// for this construction is OracleConflictGraph, the direct O(|R|^2)
// pairwise build.
func BuildConflictGraph(t network.Topology, paths []network.Path) *ConflictGraph {
	n := len(paths)
	words := (n + 63) / 64
	g := &ConflictGraph{n: n, rows: make([][]uint64, n), deg: make([]int, n)}
	flat := make([]uint64, n*words)
	for i := range g.rows {
		g.rows[i] = flat[i*words : (i+1)*words]
	}
	var ix resourceIndex
	ix.build(t.NumLinks(), t.NumNodes(), paths)
	fillAllRows(g, t.NumLinks(), t.NumNodes(), paths, &ix)
	return g
}

// Len returns the number of vertices.
func (g *ConflictGraph) Len() int { return g.n }

// Degree returns the degree of vertex i in the full graph.
func (g *ConflictGraph) Degree(i int) int { return g.deg[i] }

// Adjacent reports whether vertices i and j conflict.
func (g *ConflictGraph) Adjacent(i, j int) bool {
	return g.rows[i][j/64]&(1<<uint(j%64)) != 0
}

// Neighbors calls fn for every neighbor of vertex i.
func (g *ConflictGraph) Neighbors(i int, fn func(j int)) {
	for w, word := range g.rows[i] {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			fn(w*64 + b)
			word &^= 1 << uint(b)
		}
	}
}

// Words returns the number of 64-bit words per adjacency row, for callers
// that maintain vertex bitsets of their own.
func (g *ConflictGraph) Words() int { return (g.n + 63) / 64 }

// OrInto ors vertex i's adjacency row into dst, which must have Words()
// elements. It lets the coloring scheduler accumulate the set of vertices
// blocked by the configuration under construction in O(n/64) per insertion.
func (g *ConflictGraph) OrInto(dst []uint64, i int) {
	for w, word := range g.rows[i] {
		dst[w] |= word
	}
}

// AndInto intersects dst with vertex i's adjacency row.
func (g *ConflictGraph) AndInto(dst []uint64, i int) {
	for w, word := range g.rows[i] {
		dst[w] &= word
	}
}

// CountWithin returns the number of vertex i's neighbors inside the set.
func (g *ConflictGraph) CountWithin(set []uint64, i int) int {
	n := 0
	for w, word := range g.rows[i] {
		n += bits.OnesCount64(word & set[w])
	}
	return n
}

// Edges returns the total number of edges.
func (g *ConflictGraph) Edges() int {
	sum := 0
	for _, d := range g.deg {
		sum += d
	}
	return sum / 2
}
